/**
 * @file
 * Quickstart: train an Instant-3D radiance field on a procedural scene,
 * evaluate reconstruction quality, and estimate what the same training
 * run costs on the Instant-3D accelerator at paper scale.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [scene] [iterations]
 */

#include <cstdio>
#include <string>

#include "accel/accelerator.hh"
#include "accel/energy_model.hh"
#include "core/instant3d_config.hh"
#include "devices/registry.hh"
#include "nerf/trainer.hh"
#include "scene/scene.hh"

using namespace instant3d;

int
main(int argc, char **argv)
{
    std::string scene_name = argc > 1 ? argv[1] : "lego";
    int iterations = argc > 2 ? std::atoi(argv[2]) : 200;

    // 1. Ground-truth views of a procedural scene (the dataset).
    DatasetConfig dcfg;
    dcfg.numTrainViews = 8;
    dcfg.numTestViews = 2;
    dcfg.imageWidth = 28;
    dcfg.imageHeight = 28;
    Dataset dataset = makeDataset(makeSyntheticScene(scene_name), dcfg);
    std::printf("scene '%s': %zu train views, %zu test views\n",
                scene_name.c_str(), dataset.trainViews.size(),
                dataset.testViews.size());

    // 2. The Instant-3D algorithm: decoupled color/density grids with
    //    S_D:S_C = 1:0.25 and F_D:F_C = 1:0.5.
    Instant3dConfig algo = instant3dShippedConfig();
    HashEncodingConfig base_grid;
    base_grid.numLevels = 5;
    base_grid.log2TableSize = 13;
    base_grid.baseResolution = 8;
    base_grid.growthFactor = 1.6f;
    FieldConfig field_cfg = algo.makeFieldConfig(base_grid);
    field_cfg.hiddenDim = 16;

    TrainConfig train_cfg;
    train_cfg.raysPerBatch = 128;
    train_cfg.samplesPerRay = 40;
    algo.applyTo(train_cfg);

    // 3. Train (the six-step pipeline of the paper's Fig 2).
    Trainer trainer(dataset, field_cfg, train_cfg);
    std::printf("training %d iterations (%s)...\n", iterations,
                algo.label().c_str());
    for (int i = 0; i < iterations; i++) {
        TrainStats s = trainer.trainIteration();
        if (i % 50 == 0)
            std::printf("  iter %4d  loss %.5f\n", i, s.loss);
    }
    std::printf("final test PSNR: %.2f dB\n", trainer.evalPsnr());

    Image img = trainer.renderImage(dataset.testViews[0].camera);
    if (img.writePpm("quickstart_render.ppm"))
        std::printf("wrote quickstart_render.ppm\n");

    // 4. What would this cost at paper scale on the accelerator?
    TrainingWorkload w =
        makeInstant3dWorkload("NeRF-Synthetic", algo);
    Accelerator accel(AcceleratorConfig{},
                      TraceCalibration::defaults());
    AcceleratorResult res = accel.simulate(w);
    EnergyReport er = EnergyModel().report(res, w.iterations);
    std::printf("\nInstant-3D accelerator @ paper scale: %.2f s per "
                "scene at %.2f W average\n",
                res.totalSeconds, er.avgPowerWatts);
    std::printf("Xavier NX running Instant-NGP would take %.0f s "
                "(%.0fx slower).\n",
                xavierNx().trainingSeconds(
                    makeNgpWorkload("NeRF-Synthetic")),
                xavierNx().trainingSeconds(
                    makeNgpWorkload("NeRF-Synthetic")) /
                    res.totalSeconds);
    return 0;
}
