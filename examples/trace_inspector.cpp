/**
 * @file
 * Trace inspector: trains a scene briefly, captures the embedding-grid
 * memory trace, and prints the Sec 4.2 pattern analyses plus the
 * FRM/BUM calibration the accelerator model would use -- a debugging
 * window into the co-design.
 *
 * Run: ./build/examples/trace_inspector [scene]
 */

#include <cstdio>
#include <string>

#include "accel/calibration.hh"
#include "core/instant3d_config.hh"
#include "nerf/trainer.hh"
#include "scene/scene.hh"
#include "trace/pattern.hh"

using namespace instant3d;

int
main(int argc, char **argv)
{
    std::string scene_name = argc > 1 ? argv[1] : "ficus";

    DatasetConfig dcfg;
    dcfg.numTrainViews = 5;
    dcfg.numTestViews = 1;
    dcfg.imageWidth = 20;
    dcfg.imageHeight = 20;
    Dataset dataset = makeDataset(makeSyntheticScene(scene_name), dcfg);

    HashEncodingConfig grid;
    grid.numLevels = 4;
    grid.log2TableSize = 14;
    grid.baseResolution = 16;
    FieldConfig fcfg = FieldConfig::instant3dDefault(grid);
    fcfg.hiddenDim = 16;
    TrainConfig tcfg;
    tcfg.raysPerBatch = 96;
    tcfg.samplesPerRay = 48;

    Trainer trainer(dataset, fcfg, tcfg);
    std::printf("warming up 40 iterations on '%s'...\n",
                scene_name.c_str());
    for (int i = 0; i < 40; i++)
        trainer.trainIteration();

    MemTraceCollector collector;
    trainer.field().densityGrid().setTraceSink(&collector);
    trainer.trainIteration();
    trainer.field().densityGrid().setTraceSink(nullptr);

    auto reads = batchMajorOrder(collector.reads(),
                                 tcfg.samplesPerRay);
    auto writes = collector.writes();
    std::printf("captured %zu reads, %zu writes\n\n", reads.size(),
                writes.size());

    // Fig 8 / Fig 9 analyses.
    GroupDistanceStats groups = analyzeVertexGroups(reads);
    std::printf("vertex groups (Fig 8/9):\n");
    std::printf("  intra-group |distance| mean: %.2f\n",
                groups.intraGroupAbs.mean());
    std::printf("  inter-group |distance| mean: %.0f\n",
                groups.interGroupAbs.mean());
    std::printf("  within [-5, 5]: %.1f %%\n\n",
                100.0 * groups.fractionWithin(5.0));
    std::printf("%s\n", groups.intraHistogram.toAscii(40).c_str());

    // Fig 10 analysis.
    SlidingWindowStats ff = uniqueAddressWindows(reads, 1000);
    SlidingWindowStats bp = uniqueAddressWindows(writes, 1000);
    std::printf("sliding 1000-access windows (Fig 10):\n");
    std::printf("  FF unique: %.1f   BP unique: %.1f   BP sharing "
                "factor: %.2f\n\n",
                ff.meanUnique(), bp.meanUnique(),
                meanSharingFactor(bp));

    // FRM/BUM calibration.
    TraceCalibration calib = calibrateFromTrace(reads, writes);
    std::printf("accelerator calibration from this trace:\n");
    std::printf("  FRM util (8/16/32 banks):      %.3f / %.3f / %.3f\n",
                calib.frmUtil8, calib.frmUtil16, calib.frmUtil32);
    std::printf("  in-order util (8/16/32 banks): %.3f / %.3f / %.3f\n",
                calib.inOrderUtil8, calib.inOrderUtil16,
                calib.inOrderUtil32);
    std::printf("  BUM merge ratio:               %.3f\n",
                calib.bumMergeRatio);
    return 0;
}
