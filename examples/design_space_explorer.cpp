/**
 * @file
 * Design-space exploration of the Instant-3D accelerator: sweeps grid-
 * core count, banks per core, FRM window depth, BUM capacity, and MLP
 * array size, reporting runtime, area, and average power for each
 * point. Shows why the paper's configuration (4 cores x 8 banks,
 * depth-16 FRM, 16-entry BUM, 64x64 systolic) is a balanced choice.
 *
 * Run: ./build/examples/design_space_explorer
 */

#include <cstdio>

#include "accel/accelerator.hh"
#include "accel/energy_model.hh"
#include "common/table.hh"
#include "core/instant3d_config.hh"

using namespace instant3d;

namespace {

void
evaluate(Table &t, const std::string &label,
         const AcceleratorConfig &cfg)
{
    TraceCalibration calib = TraceCalibration::defaults();
    TrainingWorkload w = makeInstant3dWorkload(
        "NeRF-Synthetic", instant3dShippedConfig());
    Accelerator accel(cfg, calib);
    AcceleratorResult res = accel.simulate(w);
    EnergyReport er = EnergyModel().report(res, w.iterations);
    AreaReport ar = areaReport(cfg);
    t.row()
        .cell(label)
        .cell(res.totalSeconds, 2)
        .cell(ar.totalMm2, 2)
        .cell(er.avgPowerWatts, 2)
        .cell(res.totalSeconds < 5.0 ? "yes" : "no");
}

} // namespace

int
main()
{
    Table t({"Configuration", "Train time (s)", "Area (mm2)",
             "Power (W)", "Instant (<5 s)"});

    evaluate(t, "paper design (4x8 banks, FRM16, BUM16, 64x64 MLP)",
             AcceleratorConfig{});

    {
        AcceleratorConfig c;
        c.numGridCores = 2;
        evaluate(t, "2 grid cores", c);
    }
    {
        AcceleratorConfig c;
        c.numGridCores = 8;
        evaluate(t, "8 grid cores", c);
    }
    {
        AcceleratorConfig c;
        c.frmWindowDepth = 4;
        evaluate(t, "shallow FRM window (4)", c);
    }
    {
        AcceleratorConfig c;
        c.enableBum = false;
        evaluate(t, "no BUM (unmerged writes)", c);
    }
    {
        AcceleratorConfig c;
        c.enableFusion = false;
        evaluate(t, "no fusion (density grid spills to DRAM)", c);
    }
    {
        AcceleratorConfig c;
        c.mlp.systolicRows = 32;
        c.mlp.systolicCols = 32;
        evaluate(t, "32x32 systolic array", c);
    }
    {
        AcceleratorConfig c;
        c.mlp.systolicRows = 128;
        c.mlp.systolicCols = 64;
        evaluate(t, "128x64 systolic array", c);
    }
    {
        AcceleratorConfig c;
        c.sramBytesPerCore = 512 * 1024;
        evaluate(t, "512 KB SRAM per core", c);
    }
    t.print();

    std::printf("\nNote: shallow-FRM and no-BUM rows use the full "
                "design's measured calibration for FRM-on paths; see "
                "bench_ablation_microarch for the window-depth "
                "sensitivity measured directly on traces.\n");
    return 0;
}
