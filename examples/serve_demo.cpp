/**
 * @file
 * Render-serving demo: train two small scenes, register them with a
 * SceneRegistry, fire a concurrent mixed request load (two scenes,
 * three quality tiers, full images and tiles) at a RenderService from
 * several client threads, then overload a degradation-enabled service
 * with a burst and show the served-tier histogram, round-trip a scene
 * through a crash-safe checkpoint (including the typed error a corrupt
 * file produces), and print the service + cache stats block.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/serve_demo [iterations] [requests_per_client]
 */

#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "nerf/serialize.hh"
#include "nerf/trainer.hh"
#include "scene/scene.hh"
#include "serve/render_service.hh"
#include "serve/scene_registry.hh"

using namespace instant3d;

namespace {

Dataset
demoDataset(const std::string &scene_name)
{
    DatasetConfig dcfg;
    dcfg.numTrainViews = 6;
    dcfg.numTestViews = 2;
    dcfg.imageWidth = 20;
    dcfg.imageHeight = 20;
    dcfg.renderOpts.numSteps = 64;
    return makeDataset(makeSyntheticScene(scene_name), dcfg);
}

std::unique_ptr<Trainer>
demoTrainer(const Dataset &dataset, int iterations)
{
    HashEncodingConfig grid;
    grid.numLevels = 4;
    grid.featuresPerEntry = 2;
    grid.log2TableSize = 12;
    grid.baseResolution = 8;
    grid.growthFactor = 1.6f;
    FieldConfig fcfg = FieldConfig::instant3dDefault(grid);
    fcfg.hiddenDim = 16;

    TrainConfig tcfg;
    tcfg.raysPerBatch = 96;
    tcfg.samplesPerRay = 32;
    tcfg.adam.lr = 1e-2f;
    tcfg.useOccupancyGrid = true;
    tcfg.occupancyUpdatePeriod = 16;

    auto trainer = std::make_unique<Trainer>(dataset, fcfg, tcfg);
    for (int i = 0; i < iterations; i++)
        trainer->trainIteration();
    return trainer;
}

CameraSpec
demoCamera(int view)
{
    static const float eyes[][3] = {
        {1.25f, 0.5f, 1.0f}, {0.5f, 1.25f, 1.0f},
        {-0.25f, 0.5f, 1.0f}, {1.0f, 1.0f, 1.25f}};
    const float *e = eyes[view % 4];
    CameraSpec spec;
    spec.eye = {e[0], e[1], e[2]};
    spec.target = {0.5f, 0.5f, 0.5f};
    spec.up = {0.0f, 0.0f, 1.0f};
    spec.vfovDeg = 45.0f;
    spec.width = 48;
    spec.height = 48;
    return spec;
}

} // namespace

int
main(int argc, char **argv)
{
    int iterations = argc > 1 ? std::atoi(argv[1]) : 100;
    int per_client = argc > 2 ? std::atoi(argv[2]) : 8;

    // 1. Train two scenes and publish them.
    std::printf("training 2 scenes (%d iterations each)...\n",
                iterations);
    Dataset lego = demoDataset("lego");
    Dataset materials = demoDataset("materials");
    auto lego_trainer = demoTrainer(lego, iterations);
    auto materials_trainer = demoTrainer(materials, iterations);

    SceneRegistry registry;
    registry.registerFromTrainer("lego", *lego_trainer);
    registry.registerFromTrainer("materials", *materials_trainer);
    std::printf("registered %zu scenes\n", registry.size());

    // 2. Serve a concurrent mixed load: 4 clients x full/tile
    //    requests over both scenes and all three quality tiers.
    RenderServiceConfig cfg;
    cfg.tilePixels = 16;
    cfg.chunkRays = 2048;
    cfg.cacheTiles = 128;
    RenderService service(registry, cfg);
    std::printf("serving with %d worker(s)\n", service.workerCount());

    std::vector<std::thread> clients;
    std::vector<int> ok_counts(4, 0);
    for (int c = 0; c < 4; c++) {
        clients.emplace_back([&, c] {
            for (int i = 0; i < per_client; i++) {
                RenderRequest req;
                req.sceneId = (c + i) % 2 ? "materials" : "lego";
                req.camera = demoCamera(i);
                req.quality =
                    static_cast<QualityTier>((c + i) % 3);
                if (i % 3 == 2)
                    req.roi = {16, 16, 16, 16};
                if (service.render(req).status == RequestStatus::Ok)
                    ok_counts[c]++;
            }
        });
    }
    for (auto &t : clients)
        t.join();

    int ok_total = 0;
    for (int c = 0; c < 4; c++)
        ok_total += ok_counts[c];
    std::printf("%d/%d requests served ok\n", ok_total,
                4 * per_client);

    // 3. Overload a degradation-enabled service: one worker, an
    //    admission window of exactly one 9-tile frame, and a burst of
    //    24 full-frame requests. Instead of shedding the burst, the
    //    service serves the overflow at lower quality tiers.
    std::printf("--- overload burst (degradation on) ---\n");
    {
        RenderServiceConfig ocfg;
        ocfg.workers = 1;
        ocfg.tilePixels = 16;
        ocfg.maxQueueTiles = 9;
        ocfg.degradeUnderLoad = true;
        ocfg.maxQueueTilesDegraded = 512;
        RenderService overload(registry, ocfg);

        std::vector<std::future<RenderResponse>> burst;
        for (int i = 0; i < 24; i++) {
            RenderRequest req;
            req.sceneId = "lego";
            req.camera = demoCamera(i);
            burst.push_back(overload.submit(req));
        }
        int tier_counts[numQualityTiers] = {0, 0, 0};
        int burst_rejected = 0;
        for (auto &f : burst) {
            RenderResponse resp = f.get();
            if (resp.status == RequestStatus::Ok)
                tier_counts[static_cast<int>(resp.servedQuality)]++;
            else if (resp.status == RequestStatus::Rejected)
                burst_rejected++;
        }
        ServeStats os = overload.stats();
        std::printf("served full %d, half %d, preview %d; "
                    "rejected %d\n",
                    tier_counts[0], tier_counts[1], tier_counts[2],
                    burst_rejected);
        std::printf("degraded requests: %llu "
                    "(admission %llu, deadline %llu)\n",
                    static_cast<unsigned long long>(
                        os.requestsDegraded),
                    static_cast<unsigned long long>(
                        os.admissionDegradations),
                    static_cast<unsigned long long>(
                        os.deadlineDegradations));
    }

    // 4. Crash-safe checkpoint round trip: save (atomic tmp+rename,
    //    CRC-sealed), republish through the registry, and show the
    //    typed error a truncated copy produces.
    std::printf("--- checkpoint round trip ---\n");
    const std::string ckpt = "serve_demo_ckpt.bin";
    CheckpointError err = lego_trainer->saveCheckpoint(ckpt);
    std::printf("saveCheckpoint: %s\n", checkpointErrorName(err));
    if (err == CheckpointError::None) {
        SceneSpec spec;
        spec.field = lego_trainer->field().config();
        spec.renderer = lego_trainer->renderer().config();
        spec.useOccupancy = true;
        spec.occupancy = lego_trainer->occupancyGrid()->config();
        uint64_t gen =
            registry.registerFromCheckpoint("lego_restored", spec,
                                            ckpt);
        std::printf("registerFromCheckpoint: generation %llu\n",
                    static_cast<unsigned long long>(gen));

        // A corrupt copy is rejected with a typed error, not served.
        const std::string bad = "serve_demo_ckpt_bad.bin";
        if (std::FILE *in = std::fopen(ckpt.c_str(), "rb")) {
            std::FILE *out = std::fopen(bad.c_str(), "wb");
            for (int i = 0; i < 64; i++) // keep only the first 64 B
                std::fputc(std::fgetc(in), out);
            std::fclose(out);
            std::fclose(in);
            NerfField probe(spec.field, spec.seed);
            CheckpointError bad_err =
                loadCheckpoint(probe, nullptr, bad);
            std::printf("truncated copy rejected: %s\n",
                        checkpointErrorName(bad_err));
            std::remove(bad.c_str());
        }
        std::remove(ckpt.c_str());
    }

    // 5. The stats block.
    ServeStats s = service.stats();
    TileCache::Stats cs = service.cacheStats();
    std::printf("--- service stats ---\n");
    std::printf("requests: accepted %llu, completed %llu, "
                "rejected %llu, degraded %llu\n",
                static_cast<unsigned long long>(s.requestsAccepted),
                static_cast<unsigned long long>(s.requestsCompleted),
                static_cast<unsigned long long>(s.requestsRejected),
                static_cast<unsigned long long>(s.requestsDegraded));
    std::printf("served per tier: full %llu, half %llu, "
                "preview %llu\n",
                static_cast<unsigned long long>(
                    s.requestsServedPerTier[0]),
                static_cast<unsigned long long>(
                    s.requestsServedPerTier[1]),
                static_cast<unsigned long long>(
                    s.requestsServedPerTier[2]));
    std::printf("tiles: rendered %llu, from cache %llu\n",
                static_cast<unsigned long long>(s.tilesRendered),
                static_cast<unsigned long long>(s.tilesFromCache));
    std::printf("rays rendered: %llu in %llu chunks "
                "(%llu cross-request)\n",
                static_cast<unsigned long long>(s.raysRendered),
                static_cast<unsigned long long>(s.chunksRendered),
                static_cast<unsigned long long>(s.crossRequestChunks));
    std::printf("queue depth highwater: %llu tiles\n",
                static_cast<unsigned long long>(
                    s.queueDepthHighwater));
    std::printf("cache: %llu hits / %llu misses, %zu entries\n",
                static_cast<unsigned long long>(cs.hits),
                static_cast<unsigned long long>(cs.misses),
                cs.entries);
    return 0;
}
