/**
 * @file
 * Render-serving demo: train two small scenes, register them with a
 * SceneRegistry, fire a concurrent mixed request load (two scenes,
 * three quality tiers, full images and tiles) at a RenderService from
 * several client threads, then overload a degradation-enabled service
 * with a burst and show the served-tier histogram, run a sharded fleet
 * (4 shards x R=2) through a mid-load shard crash to show failover and
 * breaker counters, round-trip a scene through a crash-safe checkpoint
 * (including the typed error a corrupt file produces), and print the
 * service + cache stats block.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/serve_demo [iterations] [requests_per_client]
 */

#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.hh"
#include "nerf/serialize.hh"
#include "nerf/trainer.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "scene/scene.hh"
#include "serve/render_service.hh"
#include "serve/scene_registry.hh"
#include "serve/shard_router.hh"

using namespace instant3d;

namespace {

Dataset
demoDataset(const std::string &scene_name)
{
    DatasetConfig dcfg;
    dcfg.numTrainViews = 6;
    dcfg.numTestViews = 2;
    dcfg.imageWidth = 20;
    dcfg.imageHeight = 20;
    dcfg.renderOpts.numSteps = 64;
    return makeDataset(makeSyntheticScene(scene_name), dcfg);
}

std::unique_ptr<Trainer>
demoTrainer(const Dataset &dataset, int iterations)
{
    HashEncodingConfig grid;
    grid.numLevels = 4;
    grid.featuresPerEntry = 2;
    grid.log2TableSize = 12;
    grid.baseResolution = 8;
    grid.growthFactor = 1.6f;
    FieldConfig fcfg = FieldConfig::instant3dDefault(grid);
    fcfg.hiddenDim = 16;

    TrainConfig tcfg;
    tcfg.raysPerBatch = 96;
    tcfg.samplesPerRay = 32;
    tcfg.adam.lr = 1e-2f;
    tcfg.useOccupancyGrid = true;
    tcfg.occupancyUpdatePeriod = 16;

    auto trainer = std::make_unique<Trainer>(dataset, fcfg, tcfg);
    for (int i = 0; i < iterations; i++)
        trainer->trainIteration();
    return trainer;
}

CameraSpec
demoCamera(int view)
{
    static const float eyes[][3] = {
        {1.25f, 0.5f, 1.0f}, {0.5f, 1.25f, 1.0f},
        {-0.25f, 0.5f, 1.0f}, {1.0f, 1.0f, 1.25f}};
    const float *e = eyes[view % 4];
    CameraSpec spec;
    spec.eye = {e[0], e[1], e[2]};
    spec.target = {0.5f, 0.5f, 0.5f};
    spec.up = {0.0f, 0.0f, 1.0f};
    spec.vfovDeg = 45.0f;
    spec.width = 48;
    spec.height = 48;
    return spec;
}

} // namespace

int
main(int argc, char **argv)
{
    int iterations = argc > 1 ? std::atoi(argv[1]) : 100;
    int per_client = argc > 2 ? std::atoi(argv[2]) : 8;

    // 1. Train two scenes and publish them.
    std::printf("training 2 scenes (%d iterations each)...\n",
                iterations);
    Dataset lego = demoDataset("lego");
    Dataset materials = demoDataset("materials");
    auto lego_trainer = demoTrainer(lego, iterations);
    auto materials_trainer = demoTrainer(materials, iterations);

    SceneRegistry registry;
    registry.registerFromTrainer("lego", *lego_trainer);
    registry.registerFromTrainer("materials", *materials_trainer);
    std::printf("registered %zu scenes\n", registry.size());

    // 2. Serve a concurrent mixed load: 4 clients x full/tile
    //    requests over both scenes and all three quality tiers.
    RenderServiceConfig cfg;
    cfg.tilePixels = 16;
    cfg.chunkRays = 2048;
    cfg.cacheTiles = 128;
    RenderService service(registry, cfg);
    std::printf("serving with %d worker(s)\n", service.workerCount());

    std::vector<std::thread> clients;
    std::vector<int> ok_counts(4, 0);
    for (int c = 0; c < 4; c++) {
        clients.emplace_back([&, c] {
            for (int i = 0; i < per_client; i++) {
                RenderRequest req;
                req.sceneId = (c + i) % 2 ? "materials" : "lego";
                req.camera = demoCamera(i);
                req.quality =
                    static_cast<QualityTier>((c + i) % 3);
                if (i % 3 == 2)
                    req.roi = {16, 16, 16, 16};
                if (service.render(req).status == RequestStatus::Ok)
                    ok_counts[c]++;
            }
        });
    }
    for (auto &t : clients)
        t.join();

    int ok_total = 0;
    for (int c = 0; c < 4; c++)
        ok_total += ok_counts[c];
    std::printf("%d/%d requests served ok\n", ok_total,
                4 * per_client);

    // 3. Overload a degradation-enabled service: one worker, an
    //    admission window of exactly one 9-tile frame, and a burst of
    //    24 full-frame requests. Instead of shedding the burst, the
    //    service serves the overflow at lower quality tiers.
    std::printf("--- overload burst (degradation on) ---\n");
    {
        RenderServiceConfig ocfg;
        ocfg.workers = 1;
        ocfg.tilePixels = 16;
        ocfg.maxQueueTiles = 9;
        ocfg.degradeUnderLoad = true;
        ocfg.maxQueueTilesDegraded = 512;
        RenderService overload(registry, ocfg);

        std::vector<std::future<RenderResponse>> burst;
        for (int i = 0; i < 24; i++) {
            RenderRequest req;
            req.sceneId = "lego";
            req.camera = demoCamera(i);
            burst.push_back(overload.submit(req));
        }
        int tier_counts[numQualityTiers] = {0, 0, 0};
        int burst_rejected = 0;
        for (auto &f : burst) {
            RenderResponse resp = f.get();
            if (resp.status == RequestStatus::Ok)
                tier_counts[static_cast<int>(resp.servedQuality)]++;
            else if (resp.status == RequestStatus::Rejected)
                burst_rejected++;
        }
        ServeStats os = overload.stats();
        std::printf("served full %d, half %d, preview %d; "
                    "rejected %d\n",
                    tier_counts[0], tier_counts[1], tier_counts[2],
                    burst_rejected);
        std::printf("degraded requests: %llu "
                    "(admission %llu, deadline %llu)\n",
                    static_cast<unsigned long long>(
                        os.requestsDegraded),
                    static_cast<unsigned long long>(
                        os.admissionDegradations),
                    static_cast<unsigned long long>(
                        os.deadlineDegradations));
    }

    // 4. Fault-tolerant fleet: both scenes placed on 2 of 4 shards by
    //    rendezvous hashing, a mixed load in flight, and one shard
    //    crashed mid-run via the deterministic `shard.crash` fault
    //    point. Every request is expected to complete by failing over
    //    to the surviving replica.
    std::printf("--- sharded fleet (kill one shard mid-load) ---\n");
    {
        ShardRouterConfig rcfg;
        rcfg.numShards = 4;
        rcfg.replication = 2;
        rcfg.routerThreads = 4;
        rcfg.shard.workers = 2;
        rcfg.shard.tilePixels = 16;
        rcfg.shard.chunkRays = 2048;
        rcfg.shard.cacheTiles = 128;
        ShardRouter router(rcfg);
        router.addScene("lego", *lego_trainer);
        router.addScene("materials", *materials_trainer);
        for (const char *id : {"lego", "materials"}) {
            std::printf("scene %-9s -> shards [", id);
            bool first = true;
            for (int s : router.placement(id)) {
                std::printf("%s%d", first ? "" : ", ", s);
                first = false;
            }
            std::printf("]\n");
        }

        // The eighth router->shard dispatch crashes its shard.
        fault::Spec crash;
        crash.mode = fault::Mode::OneShot;
        crash.n = 8;
        fault::arm(fault::Point::ShardCrash, crash);

        std::vector<std::future<RenderResponse>> flights;
        for (int i = 0; i < 32; i++) {
            RenderRequest req;
            req.sceneId = i % 2 ? "materials" : "lego";
            req.camera = demoCamera(i);
            req.quality = static_cast<QualityTier>(i % 3);
            flights.push_back(router.submit(req));
        }
        int fleet_status[4] = {0, 0, 0, 0}; // ok/rejected/deadline/other
        for (auto &f : flights) {
            switch (f.get().status) {
            case RequestStatus::Ok: fleet_status[0]++; break;
            case RequestStatus::Rejected: fleet_status[1]++; break;
            case RequestStatus::DeadlineExceeded:
                fleet_status[2]++;
                break;
            default: fleet_status[3]++; break;
            }
        }
        fault::disarmAll();

        std::printf("completed: %d ok, %d rejected, %d expired, "
                    "%d other (of %d)\n",
                    fleet_status[0], fleet_status[1], fleet_status[2],
                    fleet_status[3], 32);
        FleetStats fs = router.fleetStats();
        std::printf("fleet: %llu routed, %llu failovers, "
                    "%llu retries, %llu crashed, %llu hedges\n",
                    static_cast<unsigned long long>(fs.requestsRouted),
                    static_cast<unsigned long long>(fs.failovers),
                    static_cast<unsigned long long>(fs.retries),
                    static_cast<unsigned long long>(fs.shardsCrashed),
                    static_cast<unsigned long long>(fs.hedgesIssued));
        for (size_t s = 0; s < fs.shards.size(); s++) {
            const ShardStats &ss = fs.shards[s];
            std::printf("shard %zu: %-5s breaker=%-9s scenes=%zu "
                        "dispatched=%llu served=%llu failed=%llu\n",
                        s, ss.alive ? "alive" : "dead",
                        breakerStateName(ss.breaker), ss.scenes,
                        static_cast<unsigned long long>(ss.dispatched),
                        static_cast<unsigned long long>(ss.served),
                        static_cast<unsigned long long>(ss.failed));
        }
    }

    // 5. Crash-safe checkpoint round trip: save (atomic tmp+rename,
    //    CRC-sealed), republish through the registry, and show the
    //    typed error a truncated copy produces.
    std::printf("--- checkpoint round trip ---\n");
    const std::string ckpt = "serve_demo_ckpt.bin";
    CheckpointError err = lego_trainer->saveCheckpoint(ckpt);
    std::printf("saveCheckpoint: %s\n", checkpointErrorName(err));
    if (err == CheckpointError::None) {
        SceneSpec spec;
        spec.field = lego_trainer->field().config();
        spec.renderer = lego_trainer->renderer().config();
        spec.useOccupancy = true;
        spec.occupancy = lego_trainer->occupancyGrid()->config();
        uint64_t gen =
            registry.registerFromCheckpoint("lego_restored", spec,
                                            ckpt);
        std::printf("registerFromCheckpoint: generation %llu\n",
                    static_cast<unsigned long long>(gen));

        // A corrupt copy is rejected with a typed error, not served.
        const std::string bad = "serve_demo_ckpt_bad.bin";
        if (std::FILE *in = std::fopen(ckpt.c_str(), "rb")) {
            std::FILE *out = std::fopen(bad.c_str(), "wb");
            for (int i = 0; i < 64; i++) // keep only the first 64 B
                std::fputc(std::fgetc(in), out);
            std::fclose(out);
            std::fclose(in);
            NerfField probe(spec.field, spec.seed);
            CheckpointError bad_err =
                loadCheckpoint(probe, nullptr, bad);
            std::printf("truncated copy rejected: %s\n",
                        checkpointErrorName(bad_err));
            std::remove(bad.c_str());
        }
        std::remove(ckpt.c_str());
    }

    // 6. Capacity & eviction: eight checkpoint-backed scenes against
    //    a byte budget sized for three. Registration churns the LRU
    //    into cold stubs; a request for a cold scene answers
    //    ColdStart (single-flight reload begun), and the blocking
    //    render() absorbs it -- wait for warm, resubmit, same bits.
    std::printf("--- capacity: 8 scenes, budget for 3 ---\n");
    const std::string cap_ckpt = "serve_demo_capacity_ckpt.bin";
    if (lego_trainer->saveCheckpoint(cap_ckpt) ==
        CheckpointError::None) {
        SceneSpec spec;
        spec.field = lego_trainer->field().config();
        spec.renderer = lego_trainer->renderer().config();
        spec.useOccupancy = true;
        spec.occupancy = lego_trainer->occupancyGrid()->config();

        size_t scene_bytes = 0;
        {
            SceneRegistry probe;
            probe.registerFromCheckpoint("probe", spec, cap_ckpt);
            scene_bytes = probe.stats().bytesWarm;
        }
        SceneRegistryConfig rcfg;
        rcfg.memoryBudgetBytes = 3 * scene_bytes + scene_bytes / 2;
        rcfg.maxConcurrentLoads = 2;
        SceneRegistry budgeted(rcfg);
        for (int i = 0; i < 8; i++)
            budgeted.registerFromCheckpoint(
                "cap-" + std::to_string(i), spec, cap_ckpt);

        SceneRegistryStats rs = budgeted.stats();
        std::printf("registered %zu scenes (%zu KiB each) against a "
                    "%zu KiB budget: %zu warm, %zu cold, "
                    "%llu evictions\n",
                    rs.scenes, scene_bytes / 1024,
                    rcfg.memoryBudgetBytes / 1024, rs.warm, rs.cold,
                    static_cast<unsigned long long>(rs.evictions));

        RenderServiceConfig ccfg;
        ccfg.workers = 2;
        ccfg.tilePixels = 16;
        RenderService cold_service(budgeted, ccfg);
        RenderRequest req;
        req.sceneId = "cap-0"; // the first-registered scene: LRU, cold
        req.camera = demoCamera(0);
        RenderResponse first = cold_service.submit(req).get();
        std::printf("cold request: %s (retry after %d ms)\n",
                    first.status == RequestStatus::ColdStart
                        ? "ColdStart"
                        : "unexpected status",
                    first.retryAfterMs);
        RenderResponse warmed = cold_service.render(req);
        rs = budgeted.stats();
        std::printf("blocking render: %s (cold loads %llu, reloads "
                    "%llu, joins %llu, last load %.2f ms)\n",
                    warmed.status == RequestStatus::Ok ? "ok"
                                                       : "failed",
                    static_cast<unsigned long long>(
                        rs.coldLoadsStarted),
                    static_cast<unsigned long long>(rs.reloads),
                    static_cast<unsigned long long>(
                        rs.singleFlightJoins),
                    rs.lastLoadMs);
        std::remove(cap_ckpt.c_str());
    }

    // 7. Observability: the slow-request log and the telemetry page.
    //    A small fleet serves requests while the `shard.stall` fault
    //    point delays every third dispatch far past the trace ring's
    //    slow threshold; each stalled request dumps its per-span
    //    breakdown through warn() at completion, and the slowest
    //    ringed trace is re-printed here, alongside an excerpt of the
    //    Prometheus-style metrics page and the Perfetto export size.
    std::printf("--- slow-request tracing (stall fault armed) ---\n");
    {
        obs::TraceRing &ring = obs::TraceRing::global();
        ring.clear();
        ring.setSlowThresholdMs(25.0);

        ShardRouterConfig rcfg;
        rcfg.numShards = 2;
        rcfg.replication = 1; // no failover: the stall must be felt
        rcfg.routerThreads = 2;
        rcfg.shard.workers = 2;
        rcfg.shard.tilePixels = 16;
        rcfg.shard.cacheTiles = 0;
        ShardRouter slow_router(rcfg);
        slow_router.addScene("lego", *lego_trainer);

        fault::Spec stall;
        stall.mode = fault::Mode::EveryN;
        stall.n = 3;
        stall.delayMs = 60;
        fault::arm(fault::Point::ShardStall, stall);
        for (int i = 0; i < 6; i++) {
            RenderRequest req;
            req.sceneId = "lego";
            req.camera = demoCamera(i);
            slow_router.render(req);
        }
        fault::disarmAll();

        std::printf("slow threshold %.0f ms: %llu traces completed, "
                    "%llu slow\n",
                    ring.slowThresholdMs(),
                    static_cast<unsigned long long>(
                        ring.completedCount()),
                    static_cast<unsigned long long>(ring.slowCount()));
        obs::RequestTracePtr slowest;
        for (const auto &t : ring.traces())
            if (!slowest || t->totalMs() > slowest->totalMs())
                slowest = t;
        if (slowest)
            std::printf("slowest request breakdown:\n%s",
                        slowest->summary().c_str());
        ring.setSlowThresholdMs(0.0);

        std::string page = obs::MetricsRegistry::global()
                               .snapshot()
                               .prometheusText();
        std::printf("--- metrics page (first 10 lines) ---\n");
        int lines = 0;
        size_t pos = 0;
        while (lines < 10 && pos < page.size()) {
            size_t nl = page.find('\n', pos);
            if (nl == std::string::npos)
                nl = page.size();
            std::printf("%.*s\n", static_cast<int>(nl - pos),
                        page.c_str() + pos);
            pos = nl + 1;
            lines++;
        }
        std::printf("chrome trace export: %zu bytes "
                    "(load in ui.perfetto.dev)\n",
                    ring.exportChromeTrace().size());
    }

    // 8. The stats block.
    ServeStats s = service.stats();
    TileCache::Stats cs = service.cacheStats();
    std::printf("--- service stats ---\n");
    std::printf("requests: accepted %llu, completed %llu, "
                "rejected %llu, degraded %llu\n",
                static_cast<unsigned long long>(s.requestsAccepted),
                static_cast<unsigned long long>(s.requestsCompleted),
                static_cast<unsigned long long>(s.requestsRejected),
                static_cast<unsigned long long>(s.requestsDegraded));
    std::printf("served per tier: full %llu, half %llu, "
                "preview %llu\n",
                static_cast<unsigned long long>(
                    s.requestsServedPerTier[0]),
                static_cast<unsigned long long>(
                    s.requestsServedPerTier[1]),
                static_cast<unsigned long long>(
                    s.requestsServedPerTier[2]));
    std::printf("tiles: rendered %llu, from cache %llu\n",
                static_cast<unsigned long long>(s.tilesRendered),
                static_cast<unsigned long long>(s.tilesFromCache));
    std::printf("rays rendered: %llu in %llu chunks "
                "(%llu cross-request)\n",
                static_cast<unsigned long long>(s.raysRendered),
                static_cast<unsigned long long>(s.chunksRendered),
                static_cast<unsigned long long>(s.crossRequestChunks));
    std::printf("queue depth highwater: %llu tiles\n",
                static_cast<unsigned long long>(
                    s.queueDepthHighwater));
    std::printf("cache: %llu hits / %llu misses, %zu entries\n",
                static_cast<unsigned long long>(cs.hits),
                static_cast<unsigned long long>(cs.misses),
                cs.entries);
    return 0;
}
