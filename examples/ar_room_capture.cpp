/**
 * @file
 * AR room capture: the virtual-telepresence scenario from the paper's
 * introduction. Reconstructs a ScanNet-like indoor room, compares the
 * Instant-NGP baseline against the Instant-3D algorithm at equal
 * iteration count, and reports whether each deployment option meets
 * the < 2 s telepresence latency target [23, 25] at its power budget.
 *
 * Run: ./build/examples/ar_room_capture [variant 0-3]
 */

#include <cstdio>

#include "accel/accelerator.hh"
#include "accel/energy_model.hh"
#include "common/table.hh"
#include "core/instant3d_config.hh"
#include "devices/registry.hh"
#include "nerf/trainer.hh"
#include "scene/scene.hh"

using namespace instant3d;

namespace {

double
trainRoom(const Dataset &dataset, bool decoupled, int iterations)
{
    HashEncodingConfig grid;
    grid.numLevels = 5;
    grid.log2TableSize = 13;
    grid.baseResolution = 8;
    grid.growthFactor = 1.6f;

    FieldConfig fcfg;
    TrainConfig tcfg;
    tcfg.raysPerBatch = 128;
    tcfg.samplesPerRay = 40;
    if (decoupled) {
        Instant3dConfig algo = instant3dShippedConfig();
        fcfg = algo.makeFieldConfig(grid);
        algo.applyTo(tcfg);
    } else {
        fcfg = FieldConfig::ngpBaseline(grid);
    }
    fcfg.hiddenDim = 16;

    Trainer trainer(dataset, fcfg, tcfg);
    for (int i = 0; i < iterations; i++)
        trainer.trainIteration();
    return trainer.evalPsnr();
}

} // namespace

int
main(int argc, char **argv)
{
    int variant = argc > 1 ? std::atoi(argv[1]) : 0;

    DatasetConfig dcfg;
    dcfg.numTrainViews = 10;
    dcfg.numTestViews = 2;
    dcfg.imageWidth = 24;
    dcfg.imageHeight = 24;
    dcfg.cameraRadius = 0.85f; // inside-the-room capture rig
    Dataset dataset = makeDataset(makeScanNetScene(variant), dcfg);

    std::printf("Reconstructing room variant %d...\n", variant);
    double psnr_ngp = trainRoom(dataset, false, 200);
    double psnr_i3d = trainRoom(dataset, true, 200);
    std::printf("  Instant-NGP baseline PSNR: %.2f dB\n", psnr_ngp);
    std::printf("  Instant-3D algorithm PSNR: %.2f dB\n\n", psnr_i3d);

    // Deployment study at paper scale on the ScanNet workload.
    TrainingWorkload ngp = makeNgpWorkload("ScanNet");
    TrainingWorkload i3d =
        makeInstant3dWorkload("ScanNet", instant3dShippedConfig());
    Accelerator accel(AcceleratorConfig{},
                      TraceCalibration::defaults());
    AcceleratorResult res = accel.simulate(i3d);
    double accel_power = EnergyModel()
                             .report(res, i3d.iterations)
                             .avgPowerWatts;

    Table t({"Deployment", "Reconstruction time", "Power",
             "Instant (<5 s)"});
    for (const auto *dev : baselineDevices()) {
        double secs = dev->trainingSeconds(ngp);
        t.row()
            .cell(dev->spec().name + " (Instant-NGP)")
            .cell(formatDouble(secs, 0) + " s")
            .cell(formatDouble(dev->spec().typicalPowerW, 0) + " W")
            .cell(secs < 5.0 ? "yes" : "no");
    }
    t.row()
        .cell("Instant-3D accelerator")
        .cell(formatDouble(res.totalSeconds, 1) + " s")
        .cell(formatDouble(accel_power, 1) + " W")
        .cell(res.totalSeconds < 5.0 ? "yes" : "no");
    t.print();
    return 0;
}
