/**
 * @file
 * Figure 15: accelerator specifications and area/energy breakdowns.
 * Paper: 28 nm, 6.8 mm^2, 1 V, 800 MHz, 1.5 MB SRAM, 1.9 W; area 78%
 * grid cores / 22% MLP; energy 81% / 19%.
 */

#include <cstdio>

#include "accel/energy_model.hh"
#include "common/table.hh"
#include "devices/registry.hh"

using namespace instant3d;

int
main()
{
    printBanner("Figure 15: accelerator specs, area & energy breakdown");

    AcceleratorConfig cfg;
    Accelerator accel(cfg, TraceCalibration::defaults());
    TrainingWorkload w = makeInstant3dWorkload(
        "NeRF-Synthetic", instant3dShippedConfig());
    AcceleratorResult res = accel.simulate(w);
    EnergyReport er = EnergyModel().report(res, w.iterations);
    AreaReport ar = areaReport(cfg);

    const DeviceSpec &spec = instant3dAcceleratorSpec();
    Table specs({"Spec", "Value", "Paper"});
    specs.row().cell("Technology").cell("28 nm").cell("28 nm");
    specs.row()
        .cell("Area")
        .cell(formatDouble(ar.totalMm2, 2) + " mm2")
        .cell("6.8 mm2");
    specs.row()
        .cell("Frequency")
        .cell(formatDouble(spec.frequencyGHz * 1000, 0) + " MHz")
        .cell("800 MHz");
    specs.row()
        .cell("SRAM (hash banks + buffers)")
        .cell(formatDouble(spec.sramMB, 1) + " MB")
        .cell("1.5 MB");
    specs.row()
        .cell("Average power")
        .cell(formatDouble(er.avgPowerWatts, 2) + " W")
        .cell("1.9 W");
    specs.print();

    Table brk({"Component", "Area share", "Energy share"});
    brk.row()
        .cell("Grid cores (SRAM, FRM, BUM, interp)")
        .cell(formatDouble(100.0 * ar.gridFraction(), 1) + " %")
        .cell(formatDouble(100.0 * er.gridFraction, 1) + " %");
    brk.row()
        .cell("MLP units (systolic + adder tree)")
        .cell(formatDouble(100.0 * ar.mlpFraction(), 1) + " %")
        .cell(formatDouble(100.0 * er.mlpFraction, 1) + " %");
    std::printf("\n");
    brk.print();

    std::printf("\nScheduling-logic detail: FRM %.2f mm2, BUM %.2f mm2; "
                "FRM+BUM dynamic-energy slice %.1f %%.\n",
                ar.frmMm2, ar.bumMm2, 100.0 * er.frmBumFraction);
    std::printf("Paper: area 78 %% / 22 %%, energy 81 %% / 19 %%.\n");
    return 0;
}
