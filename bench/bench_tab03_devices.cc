/**
 * @file
 * Table 3: summary of the considered devices' specifications.
 */

#include "common/table.hh"
#include "devices/registry.hh"

using namespace instant3d;

int
main()
{
    printBanner("Table 3: Device specifications");

    Table t({"Device", "Technology", "SRAM", "Area", "Frequency", "DRAM",
             "Bandwidth", "Typical Power"});
    auto add = [&t](const DeviceSpec &s) {
        t.row()
            .cell(s.name)
            .cell(std::to_string(s.technologyNm) + " nm")
            .cell(formatDouble(s.sramMB, 1) + " MB")
            .cell(s.areaMm2 > 0 ? formatDouble(s.areaMm2, 1) + " mm2"
                                : std::string("N/A"))
            .cell(formatDouble(s.frequencyGHz, 1) + " GHz")
            .cell(s.dramType)
            .cell(formatDouble(s.dramBandwidthGBs, 1) + " GB/s")
            .cell(formatDouble(s.typicalPowerW, 1) + " W");
    };
    for (const auto *dev : baselineDevices())
        add(dev->spec());
    add(instant3dAcceleratorSpec());
    t.print();
    return 0;
}
