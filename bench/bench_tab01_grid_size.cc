/**
 * @file
 * Table 1: reconstruction quality (PSNR) vs training time when the
 * density/color grid-size ratio S_D : S_C varies. Quality is measured
 * by real (reduced-scale) training over the eight NeRF-Synthetic-like
 * scenes; runtime comes from the calibrated Xavier NX model at paper
 * scale.
 *
 * Paper: 1:1 = 72 s @ 26.0 dB; 0.25:1 = 65 s @ 25.4 dB (density
 * sensitive); 1:0.25 = 63 s @ 26.0 dB (color robust).
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/table.hh"
#include "devices/registry.hh"

using namespace instant3d;
using namespace instant3d::bench;

int
main()
{
    printBanner("Table 1: grid-size ratios S_D : S_C (Xavier NX)");

    // Smaller tables than the other benches: grid capacity must be the
    // binding constraint for size sensitivity to show (see DESIGN.md).
    SmallScale scale;
    scale.log2Table = 10;
    const int iters = 200;
    const std::vector<std::string> scenes = {"lego", "ficus",
                                             "materials", "mic"};

    struct RatioCase
    {
        const char *label;
        float density, color;
        bool is_ngp;
    };
    const RatioCase cases[] = {
        {"1:1 (Instant-NGP)", 1.0f, 1.0f, true},
        {"0.25:1", 0.25f, 1.0f, false},
        {"1:0.25", 1.0f, 0.25f, false},
    };

    Table t({"S_D : S_C", "Avg Train Runtime (s)", "Avg Test PSNR (dB)",
             "Runtime vs NGP"});
    double base_runtime = 0.0;

    for (const auto &c : cases) {
        double runtime;
        double psnr = 0.0;
        if (c.is_ngp) {
            runtime = xavierNx().trainingSeconds(
                makeNgpWorkload("NeRF-Synthetic"));
            for (const auto &s : scenes)
                psnr += trainNgpPsnr(makeSceneDataset(s, scale), scale,
                                     iters);
            base_runtime = runtime;
        } else {
            Instant3dConfig cfg;
            cfg.densitySizeRatio = c.density;
            cfg.colorSizeRatio = c.color;
            cfg.colorUpdateRate = 1.0f; // isolate the size effect
            runtime = xavierNx().trainingSeconds(
                makeInstant3dWorkload("NeRF-Synthetic", cfg));
            for (const auto &s : scenes)
                psnr += trainInstant3dPsnr(makeSceneDataset(s, scale),
                                           scale, cfg, iters);
        }
        psnr /= scenes.size();
        t.row()
            .cell(c.label)
            .cell(runtime, 1)
            .cell(psnr, 2)
            .cell(formatDouble(
                      100.0 * (1.0 - runtime / base_runtime), 1) +
                  " % lower");
    }
    t.print();
    std::printf("\nPaper: 72 s / 26.0 dB; 65 s / 25.4 dB; 63 s / 26.0 "
                "dB. Expected shape: shrinking the color grid keeps "
                "PSNR, shrinking the density grid loses PSNR.\n");
    return 0;
}
