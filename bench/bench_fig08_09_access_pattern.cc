/**
 * @file
 * Figures 8 and 9: memory-access patterns during embedding-grid
 * interpolation. Captures a real training trace and reports:
 *  - Fig 8: the 8 vertex addresses cluster into 4 groups (pairs share
 *    y and z); inter-group distances are huge, intra-group tiny.
 *  - Fig 9: the distribution of intra-group (x-neighbour) address
 *    distances; the paper reports >90% within [-5, 5].
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/table.hh"

using namespace instant3d;
using namespace instant3d::bench;

int
main()
{
    printBanner("Figures 8-9: embedding-grid access patterns");

    SmallScale scale;
    Table t({"Scene", "Points", "Intra-group mean |d|",
             "Inter-group mean |d|", "Within [-5,5]"});

    double worst_within = 1.0;
    for (const auto &scene : {"lego", "ficus", "materials", "ship"}) {
        CapturedTrace trace = captureSceneTrace(scene, scale);
        GroupDistanceStats stats = analyzeVertexGroups(trace.reads);
        double within = stats.fractionWithin(5.0);
        worst_within = std::min(worst_within, within);
        t.row()
            .cell(scene)
            .cell(static_cast<long long>(stats.pointsAnalyzed))
            .cell(stats.intraGroupAbs.mean(), 2)
            .cell(stats.interGroupAbs.mean(), 0)
            .cell(formatDouble(100.0 * within, 1) + " %");
    }
    t.print();

    // Fig 9 histogram for one representative scene.
    CapturedTrace trace = captureSceneTrace("lego", scale);
    GroupDistanceStats stats = analyzeVertexGroups(trace.reads);
    std::printf("\nFig 9 histogram of signed intra-group distances "
                "(lego):\n%s\n",
                stats.intraHistogram.toAscii(48).c_str());
    std::printf("Paper: intra-group distances ~1 (pi1 = 1 locality), "
                "inter-group ~60000 on 2^19-entry tables (pi2/pi3 "
                "remoteness), >90%% of intra distances in [-5, 5].\n");
    return 0;
}
