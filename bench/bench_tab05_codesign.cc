/**
 * @file
 * Table 5: co-design ablation -- normalized training runtime of
 * (a) Instant-NGP @ Xavier NX (100%),
 * (b) the Instant-3D algorithm @ Xavier NX,
 * (c) the Instant-3D algorithm @ the Instant-3D accelerator,
 * on the three datasets.
 *
 * Paper: (b) = 83.3 / 82.2 / 85.7 %, (c) = 2.3 / 3.4 / 3.2 %.
 */

#include <cstdio>

#include "accel/accelerator.hh"
#include "common/table.hh"
#include "devices/registry.hh"

using namespace instant3d;

int
main()
{
    printBanner("Table 5: necessity of algorithm-hardware co-design");

    TraceCalibration calib = TraceCalibration::defaults();
    Accelerator accel{AcceleratorConfig{}, calib};
    Instant3dConfig shipped = instant3dShippedConfig();

    Table t({"NeRF training solution", "NeRF-Synthetic", "SILVR",
             "ScanNet"});
    auto &ngp_row = t.row().cell("Instant-NGP @ Xavier NX");
    auto &algo_row_vals = t; // filled below
    (void)algo_row_vals;

    std::vector<double> base;
    for (const auto &ds : workloadDatasetNames()) {
        base.push_back(
            xavierNx().trainingSeconds(makeNgpWorkload(ds)));
        ngp_row.cell("100.0 %");
    }

    auto &algo_row = t.row().cell("Instant-3D algorithm @ Xavier NX");
    size_t i = 0;
    for (const auto &ds : workloadDatasetNames()) {
        double secs = xavierNx().trainingSeconds(
            makeInstant3dWorkload(ds, shipped));
        algo_row.cell(formatDouble(100.0 * secs / base[i++], 1) + " %");
    }

    auto &accel_row =
        t.row().cell("Instant-3D algorithm @ Instant-3D accelerator");
    i = 0;
    for (const auto &ds : workloadDatasetNames()) {
        double secs = accel.trainingSeconds(
            makeInstant3dWorkload(ds, shipped));
        accel_row.cell(formatDouble(100.0 * secs / base[i++], 1) + " %");
    }
    t.print();

    std::printf("\nPaper: 100 / 100 / 100; 83.3 / 82.2 / 85.7; "
                "2.3 / 3.4 / 3.2 (%%).\n");
    return 0;
}
