/**
 * @file
 * Figure 7: runtime breakdown of the Instant-3D *algorithm* (decoupled
 * grids, S_D:S_C = 1:0.25, F_D:F_C = 1:0.5) on Xavier NX. The paper's
 * observations: ~17% faster than Instant-NGP, yet Step 3-1 and its BP
 * still dominate (~80%), motivating the dedicated accelerator.
 */

#include <cstdio>

#include "common/table.hh"
#include "devices/registry.hh"

using namespace instant3d;

int
main()
{
    printBanner(
        "Figure 7: Instant-3D algorithm runtime breakdown on Xavier NX");

    TrainingWorkload ngp = makeNgpWorkload("NeRF-Synthetic");
    TrainingWorkload i3d = makeInstant3dWorkload(
        "NeRF-Synthetic", instant3dShippedConfig());

    StepBreakdown bd = xavierNx().breakdown(i3d);
    Table t({"Step", "Seconds/iter", "Share"});
    for (auto step : allPipelineSteps()) {
        t.row()
            .cell(pipelineStepName(step))
            .cell(formatDouble(bd[step], 4))
            .cell(formatDouble(100.0 * bd.fraction(step), 1) + " %");
    }
    t.print();

    double t_ngp = xavierNx().trainingSeconds(ngp);
    double t_i3d = xavierNx().trainingSeconds(i3d);
    std::printf("\nInstant-NGP:            %.1f s\n", t_ngp);
    std::printf("Instant-3D algorithm:   %.1f s  (%.1f %% faster)\n",
                t_i3d, 100.0 * (1.0 - t_i3d / t_ngp));
    std::printf("Step 3-1 + BP share:    %.1f %%\n",
                100.0 * bd.gridShare());
    std::printf("\nPaper: 17.0 %% average speedup; grid step still ~80 "
                "%%.\n");
    return 0;
}
