/**
 * @file
 * Table 2: reconstruction quality (PSNR) vs training time when the
 * density/color update-frequency ratio F_D : F_C varies (grid sizes
 * held equal). Quality from real reduced-scale training; runtime from
 * the Xavier NX model at paper scale.
 *
 * Paper: 1:1 = 72 s @ 26.0 dB; 0.5:1 = 67 s @ 24.3 dB (density
 * sensitive); 1:0.5 = 65 s @ 25.9 dB (color robust).
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/table.hh"
#include "devices/registry.hh"

using namespace instant3d;
using namespace instant3d::bench;

int
main()
{
    printBanner("Table 2: update-frequency ratios F_D : F_C (Xavier NX)");

    SmallScale scale;
    const int iters = 150;
    const std::vector<std::string> scenes = {"lego", "materials",
                                             "chair", "mic"};

    struct RatioCase
    {
        const char *label;
        float density_rate, color_rate;
        bool is_ngp;
    };
    const RatioCase cases[] = {
        {"1:1 (Instant-NGP)", 1.0f, 1.0f, true},
        {"0.5:1", 0.5f, 1.0f, false},
        {"1:0.5", 1.0f, 0.5f, false},
    };

    Table t({"F_D : F_C", "Avg Train Runtime (s)", "Avg Test PSNR (dB)",
             "Runtime vs NGP"});
    double base_runtime = 0.0;

    for (const auto &c : cases) {
        double runtime;
        double psnr = 0.0;
        if (c.is_ngp) {
            runtime = xavierNx().trainingSeconds(
                makeNgpWorkload("NeRF-Synthetic"));
            for (const auto &s : scenes)
                psnr += trainNgpPsnr(makeSceneDataset(s, scale), scale,
                                     iters);
            base_runtime = runtime;
        } else {
            Instant3dConfig cfg;
            cfg.colorSizeRatio = 1.0f; // isolate the frequency effect
            cfg.densityUpdateRate = c.density_rate;
            cfg.colorUpdateRate = c.color_rate;
            runtime = xavierNx().trainingSeconds(
                makeInstant3dWorkload("NeRF-Synthetic", cfg));
            for (const auto &s : scenes)
                psnr += trainInstant3dPsnr(makeSceneDataset(s, scale),
                                           scale, cfg, iters);
        }
        psnr /= scenes.size();
        t.row()
            .cell(c.label)
            .cell(runtime, 1)
            .cell(psnr, 2)
            .cell(formatDouble(
                      100.0 * (1.0 - runtime / base_runtime), 1) +
                  " % lower");
    }
    t.print();
    std::printf("\nPaper: 72 s / 26.0 dB; 67 s / 24.3 dB; 65 s / 25.9 "
                "dB. Expected shape: halving color updates keeps PSNR, "
                "halving density updates loses PSNR.\n");
    return 0;
}
