/**
 * @file
 * Training-throughput benchmark of the hot-path rewrite: rays/s and
 * points/s for one training iteration of the quickstart workload.
 *
 * Two mode families are timed:
 *  - No occupancy grid: the original scalar reference path vs the
 *    batched arena path at 1, 2, 4, and 8 threads (the PR 1 numbers).
 *  - With a converged occupancy grid: the dense per-ray batched path
 *    ("dense_occ") vs the chunk-level compacted sample stream
 *    ("compacted") vs compaction plus merged hash-gradient writes
 *    ("compacted+merged") vs compaction with the full-table-scan dense
 *    optimizer ("compacted+dense_opt", the sparse-optimizer regression
 *    baseline), at 1 and 8 threads. Every mode row carries a
 *    per-phase breakdown (march / forward / backward / reduce /
 *    optimizer / zero_grad / occ_refresh) so "which phase dominates"
 *    is tracked across PRs.
 *
 * The JSON records std::thread::hardware_concurrency() and each mode's
 * occupancy-grid occupied fraction, so flat thread scaling on a 1-core
 * CI container is distinguishable from a real regression, and
 * "effective" points/s (rays/s * samplesPerRay, counting skipped
 * samples as processed) which is the paper's headline win once the
 * grid converges.
 *
 * Usage: bench_train_throughput [output.json] [timed_iterations]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "common/cpu_features.hh"
#include "core/instant3d_config.hh"
#include "kernels/kernel_backend.hh"

namespace instant3d {
namespace {

struct ModeResult
{
    std::string mode;
    std::string backend; //!< Resolved kernel-backend name of the run.
    int threads = 1;
    int iterations = 0;
    double seconds = 0.0;        //!< Hot-path iterations only.
    double updateSeconds = 0.0;  //!< Occupancy-refresh iterations.
    double raysPerSec = 0.0;
    double pointsPerSec = 0.0;
    double pointsPerSecEffective = 0.0;
    double occupiedFraction = 1.0;
    double gradMergeRatio = 1.0; //!< Grid-grad writes per table update.
    double sparseEntriesPerIter = 0.0; //!< Touched entries per step.
    double sparseActiveEntries = 0.0;  //!< Steady sweep-set size.
    TrainPhaseTimes phases;      //!< Summed over the timed iterations.
};

struct Workload
{
    Dataset dataset;
    FieldConfig field;
    TrainConfig train;
};

/** The quickstart workload (examples/quickstart.cpp) at its defaults. */
Workload
quickstartWorkload()
{
    Workload w{Dataset{}, FieldConfig{}, TrainConfig{}};

    DatasetConfig dcfg;
    dcfg.numTrainViews = 8;
    dcfg.numTestViews = 2;
    dcfg.imageWidth = 28;
    dcfg.imageHeight = 28;
    w.dataset = makeDataset(makeSyntheticScene("lego"), dcfg);

    Instant3dConfig algo = instant3dShippedConfig();
    HashEncodingConfig base_grid;
    base_grid.numLevels = 5;
    base_grid.log2TableSize = 13;
    base_grid.baseResolution = 8;
    base_grid.growthFactor = 1.6f;
    w.field = algo.makeFieldConfig(base_grid);
    w.field.hiddenDim = 16;

    w.train.raysPerBatch = 128;
    w.train.samplesPerRay = 40;
    algo.applyTo(w.train);
    return w;
}

/**
 * The converged-grid (occupancy) family runs with 4x larger hash
 * tables. At the quickstart's 2^13 entries/level the toy scene's
 * surface hashes onto nearly every slot, so a touched-entry optimizer
 * has no sparsity to exploit -- an artifact of the scaled-down table,
 * not of the algorithm (the paper's tables are 2^19..2^24, far larger
 * than any scene's touched set). 2^15 restores the paper-regime shape
 * (touched << table) while keeping the bench in CI range; per-query
 * encode cost is table-size-independent, so the hot-path numbers stay
 * comparable and the optimizer scan cost is the honest variable.
 */
Workload
occupancyWorkload()
{
    Workload w = quickstartWorkload();
    Instant3dConfig algo = instant3dShippedConfig();
    HashEncodingConfig base_grid;
    base_grid.numLevels = 5;
    base_grid.log2TableSize = 15;
    base_grid.baseResolution = 8;
    base_grid.growthFactor = 1.6f;
    w.field = algo.makeFieldConfig(base_grid);
    w.field.hiddenDim = 16;
    return w;
}

double
now()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

struct ModeSpec
{
    std::string name;
    int threads = 1;
    bool scalar = false;
    bool compact = false;
    bool merge = false;
    bool sparseOpt = true; //!< The new default; false = dense Adam.
    /**
     * Kernel backend of the run. The historical rows pin scalar_ref
     * so their numbers stay comparable across hosts and PRs (under
     * "auto" a multicore host would silently switch them to
     * threaded_sweep); the explicit +simd / +threaded rows measure
     * the backends.
     */
    std::string backend = "scalar_ref";
};

TrainConfig
modeConfig(const Workload &w, const ModeSpec &spec, bool use_occupancy)
{
    TrainConfig tcfg = w.train;
    tcfg.numThreads = spec.threads;
    tcfg.scalarReference = spec.scalar;
    tcfg.compactSamples = spec.compact;
    tcfg.mergeHashGrads = spec.merge;
    tcfg.sparseOptimizer = spec.sparseOpt;
    tcfg.kernelBackend = spec.backend;
    tcfg.collectPhaseTimes = true;
    if (use_occupancy) {
        // Converge the grid during warmup: frequent refreshes and a
        // fast decay clear empty space within a few dozen iterations
        // while the 0.1 threshold keeps the lego surfaces occupied
        // (loss stays within noise of the dense path).
        tcfg.useOccupancyGrid = true;
        tcfg.occupancyUpdatePeriod = 4;
        tcfg.occupancy.resolution = 32;
        tcfg.occupancy.decay = 0.8f;
        tcfg.occupancy.occupancyThreshold = 0.1f;
    }
    return tcfg;
}

void
addPhases(TrainPhaseTimes &acc, const TrainPhaseTimes &p)
{
    acc.march += p.march;
    acc.forward += p.forward;
    acc.backward += p.backward;
    acc.reduce += p.reduce;
    acc.optimizer += p.optimizer;
    acc.zeroGrad += p.zeroGrad;
    acc.occRefresh += p.occRefresh;
}

/** One mode, no occupancy grid: a single timed run. */
ModeResult
runMode(const Workload &w, const ModeSpec &spec, int iters)
{
    TrainConfig tcfg = modeConfig(w, spec, false);
    Trainer trainer(w.dataset, w.field, tcfg);

    const int warmup = 10;
    for (int i = 0; i < warmup; i++)
        trainer.trainIteration();

    ModeResult acc;
    uint64_t points_before = trainer.totalPointsQueried();
    uint64_t sparse_stepped = 0;
    double t0 = now();
    for (int i = 0; i < iters; i++) {
        TrainStats st = trainer.trainIteration();
        addPhases(acc.phases, st.phases);
        sparse_stepped += st.sparseEntriesStepped;
    }
    double secs = now() - t0;
    uint64_t points = trainer.totalPointsQueried() - points_before;

    ModeResult r;
    r.mode = spec.name;
    r.backend = trainer.kernelBackendName();
    r.threads = spec.threads;
    r.iterations = iters;
    r.seconds = secs;
    r.raysPerSec =
        static_cast<double>(iters) * tcfg.raysPerBatch / secs;
    r.pointsPerSec = static_cast<double>(points) / secs;
    r.pointsPerSecEffective = r.raysPerSec * tcfg.samplesPerRay;
    r.phases = acc.phases;
    r.sparseEntriesPerIter =
        static_cast<double>(sparse_stepped) / iters;
    r.sparseActiveEntries =
        static_cast<double>(trainer.sparseActiveEntries());
    return r;
}

/**
 * The occupancy-grid family (dense vs compacted vs compacted+merged)
 * at one thread count. All modes run concurrently constructed trainers
 * and are timed in interleaved blocks, so machine drift hits every
 * mode equally; occupancy-refresh iterations (identical work in every
 * mode) are timed separately from hot-path iterations so the refresh
 * cost cannot drown the mode comparison.
 */
std::vector<ModeResult>
runOccupancyFamily(const Workload &w, const std::vector<ModeSpec> &specs,
                   int iters)
{
    // Warm up until the workload is genuinely steady-state: the grid
    // converges to its steady occupied fraction within ~12 refreshes
    // (period 4, decay 0.8), but the sparse optimizer's sweep set
    // keeps shrinking until the entries touched only during the
    // early full-occupancy iterations retire (~400 iterations; see
    // Adam::stepSparse). Timing earlier would overstate the sparse
    // optimizer's steady-state cost.
    const int warmup = 400;
    const int block = 16;

    std::vector<std::unique_ptr<Trainer>> trainers;
    std::vector<ModeResult> results;
    for (const auto &spec : specs) {
        trainers.push_back(std::make_unique<Trainer>(
            w.dataset, w.field, modeConfig(w, spec, true)));
        ModeResult r;
        r.mode = spec.name;
        r.backend = trainers.back()->kernelBackendName();
        r.threads = spec.threads;
        results.push_back(r);
    }
    for (auto &t : trainers)
        for (int i = 0; i < warmup; i++)
            t->trainIteration();

    std::vector<uint64_t> points(specs.size(), 0);
    std::vector<uint64_t> writes(specs.size(), 0);
    std::vector<uint64_t> merged_writes(specs.size(), 0);
    std::vector<uint64_t> sparse_stepped(specs.size(), 0);
    const int period = modeConfig(w, specs[0], true).occupancyUpdatePeriod;

    for (int done = 0; done < iters; done += block) {
        const int n = std::min(block, iters - done);
        for (size_t m = 0; m < specs.size(); m++) {
            Trainer &t = *trainers[m];
            for (int i = 0; i < n; i++) {
                const bool is_update = (t.iteration() % period) == 0;
                double t0 = now();
                TrainStats st = t.trainIteration();
                double dt = now() - t0;
                if (is_update) {
                    results[m].updateSeconds += dt;
                    // The refresh itself is the only phase credited to
                    // update iterations; their training work is
                    // excluded from the hot-path phase breakdown.
                    results[m].phases.occRefresh += st.phases.occRefresh;
                } else {
                    results[m].seconds += dt;
                    results[m].iterations++;
                    points[m] += st.pointsQueried;
                    addPhases(results[m].phases, st.phases);
                    sparse_stepped[m] += st.sparseEntriesStepped;
                }
                writes[m] += st.gridGradWrites;
                merged_writes[m] += st.gridGradWritesMerged;
            }
        }
    }

    for (size_t m = 0; m < specs.size(); m++) {
        ModeResult &r = results[m];
        const TrainConfig tcfg = modeConfig(w, specs[m], true);
        r.raysPerSec = static_cast<double>(r.iterations) *
                       tcfg.raysPerBatch / r.seconds;
        r.pointsPerSec = static_cast<double>(points[m]) / r.seconds;
        r.pointsPerSecEffective = r.raysPerSec * tcfg.samplesPerRay;
        r.occupiedFraction =
            trainers[m]->occupancyGrid()->occupiedFraction();
        r.gradMergeRatio =
            merged_writes[m] > 0
                ? static_cast<double>(writes[m]) /
                      static_cast<double>(merged_writes[m])
                : 1.0;
        r.sparseEntriesPerIter =
            static_cast<double>(sparse_stepped[m]) /
            std::max(1, r.iterations);
        r.sparseActiveEntries =
            static_cast<double>(trainers[m]->sparseActiveEntries());
    }
    return results;
}

/**
 * Kernel-level speedup probes, decoupled from the full-pipeline rows
 * so the CI gate measures the kernels themselves (a tiny workload's
 * pipeline can hide a kernel regression behind fixed costs).
 */

/** Seconds for one batch of MLP forward panels through `kb` (best of
 *  several repetitions; the panel shape matches a training chunk). */
double
mlpPanelSeconds(const KernelBackend &kb)
{
    const int n = 1024, n_in = 32, n_out = 32, calls = 24;
    Rng r(3);
    std::vector<float> in(static_cast<size_t>(n) * n_in);
    std::vector<float> w(static_cast<size_t>(n_out) * n_in);
    std::vector<float> b(n_out);
    std::vector<float> out(static_cast<size_t>(n) * n_out);
    for (auto &v : in)
        v = r.nextFloat(-1.0f, 1.0f);
    for (auto &v : w)
        v = r.nextFloat(-1.0f, 1.0f);
    for (auto &v : b)
        v = r.nextFloat(-1.0f, 1.0f);

    Workspace ws;
    double best = 1e30;
    for (int rep = 0; rep < 5; rep++) {
        double t0 = now();
        for (int c = 0; c < calls; c++) {
            ws.reset();
            kb.mlpForwardPanel(in.data(), n, n_in, n_out, w.data(),
                               b.data(), out.data(), ws);
        }
        best = std::min(best, now() - t0);
    }
    // Fold the result into a sink the optimizer cannot remove.
    volatile float sink = out[0];
    (void)sink;
    return best;
}

/** Seconds for a block of sparse-Adam sweeps through `kb` on a
 *  grid-sized group (2^15 entries, 2048 touched per step). */
double
sparseSweepSeconds(const KernelBackend *kb)
{
    constexpr uint32_t span = 2;
    constexpr size_t entries = 1 << 15;
    constexpr size_t n = entries * span;
    AdamConfig acfg;
    Adam adam(n, acfg);
    adam.setKernelBackend(kb);
    adam.enableSparse(span);

    Rng r(9);
    std::vector<uint32_t> touched;
    std::vector<uint8_t> seen(entries, 0);
    while (touched.size() < 2048) {
        uint32_t e = r.nextU32(entries);
        if (!seen[e]) {
            seen[e] = 1;
            touched.push_back(e * span);
        }
    }
    std::vector<float> params(n, 0.1f);
    std::vector<float> grads(n, 0.0f);
    for (uint32_t off : touched)
        for (uint32_t f = 0; f < span; f++)
            grads[off + f] = r.nextFloat(-1.0f, 1.0f);

    for (int s = 0; s < 3; s++) // reach the steady active set
        adam.stepSparse(params, grads, touched);
    const int steps = 40;
    double t0 = now();
    for (int s = 0; s < steps; s++)
        adam.stepSparse(params, grads, touched);
    return now() - t0;
}

const ModeResult &
find(const std::vector<ModeResult> &results, const std::string &mode,
     int threads)
{
    for (const auto &r : results)
        if (r.mode == mode && r.threads == threads)
            return r;
    return results.front();
}

} // namespace
} // namespace instant3d

int
main(int argc, char **argv)
{
    using namespace instant3d;

    // Every row pins its backend explicitly (that is the experiment);
    // a leftover INSTANT3D_KERNEL_BACKEND from a manual parity check
    // would silently override all of them and flatten the per-backend
    // speedups, so drop it up front.
    ::unsetenv("INSTANT3D_KERNEL_BACKEND");

    std::string out_path =
        argc > 1 ? argv[1] : "BENCH_train_throughput.json";
    int iters = argc > 2 ? std::atoi(argv[2]) : 0;

    Workload w = quickstartWorkload();

    // Auto-calibrate so the scalar baseline runs ~1.5 s when no
    // iteration count is given.
    if (iters <= 0) {
        TrainConfig probe_cfg = w.train;
        probe_cfg.scalarReference = true;
        Trainer probe(w.dataset, w.field, probe_cfg);
        probe.trainIteration(); // warm caches
        double t0 = now();
        const int probe_iters = 5;
        for (int i = 0; i < probe_iters; i++)
            probe.trainIteration();
        double per_iter = (now() - t0) / probe_iters;
        iters = static_cast<int>(1.5 / per_iter);
        if (iters < 20)
            iters = 20;
        if (iters > 2000)
            iters = 2000;
    }

    std::vector<ModeResult> results;
    results.push_back(
        runMode(w, {"scalar_seed", 1, true, false, false, false}, iters));
    for (int threads : {1, 2, 4, 8})
        results.push_back(
            runMode(w, {"batched", threads, false, false, false, true},
                    iters));
    // Converged-grid iterations are ~10x cheaper than dense ones, so
    // run more of them for a stable mode comparison. All modes except
    // "+dense_opt" step the grids with the sparse lazy optimizer (the
    // shipping default); "compacted+dense_opt" is the full-table-scan
    // baseline the sparse_vs_dense_optimizer speedup (and the CI
    // regression gate) is measured against.
    const int occ_iters = std::min(iters * 4, 2000);
    Workload occ_w = occupancyWorkload();
    for (int threads : {1, 8}) {
        std::vector<ModeSpec> occ_specs = {
            {"dense_occ", threads, false, false, false, true},
            {"compacted", threads, false, true, false, true},
            {"compacted+merged", threads, false, true, true, true},
            {"compacted+dense_opt", threads, false, true, false, false},
            // Per-backend end-to-end rows: same compacted pipeline,
            // different kernel backend.
            {"compacted+simd", threads, false, true, false, true,
             "simd"},
            {"compacted+threaded", threads, false, true, false, true,
             "threaded_sweep"},
        };
        for (auto &r : runOccupancyFamily(occ_w, occ_specs, occ_iters))
            results.push_back(r);
    }

    // Kernel-level probes: the CI gate for the simd backend and the
    // recorded (not gated -- a 1-core host cannot fan out) threaded-
    // sweep ratio.
    auto scalar_kb = makeScalarRefBackend();
    auto simd_kb = makeSimdBackend();
    double panel_scalar_s = mlpPanelSeconds(*scalar_kb);
    double panel_simd_s = mlpPanelSeconds(*simd_kb);
    double simd_vs_scalar_kernels = panel_scalar_s / panel_simd_s;

    ThreadPool sweep_pool(0); // auto: hardware concurrency
    auto threaded_kb = makeThreadedSweepBackend(&sweep_pool);
    double sweep_serial_s = sparseSweepSeconds(nullptr);
    double sweep_threaded_s = sparseSweepSeconds(threaded_kb.get());
    double threaded_sweep_vs_serial = sweep_serial_s / sweep_threaded_s;

    // The backend an untouched default config resolves to on this
    // host (auto: threaded_sweep iff the pool has >1 worker).
    std::string default_backend =
        createKernelBackend("auto", &sweep_pool)->name();

    const ModeResult &scalar = results.front();
    double speedup_1t =
        find(results, "batched", 1).raysPerSec / scalar.raysPerSec;
    double speedup_8t =
        find(results, "batched", 8).raysPerSec / scalar.raysPerSec;
    double compact_vs_dense_1t =
        find(results, "compacted", 1).raysPerSec /
        find(results, "dense_occ", 1).raysPerSec;
    double compact_vs_dense_8t =
        find(results, "compacted", 8).raysPerSec /
        find(results, "dense_occ", 8).raysPerSec;
    double merged_vs_dense_1t =
        find(results, "compacted+merged", 1).raysPerSec /
        find(results, "dense_occ", 1).raysPerSec;
    double sparse_vs_dense_opt =
        find(results, "compacted", 1).raysPerSec /
        find(results, "compacted+dense_opt", 1).raysPerSec;
    double merged_vs_compacted_1t =
        find(results, "compacted+merged", 1).raysPerSec /
        find(results, "compacted", 1).raysPerSec;
    double simd_e2e_1t = find(results, "compacted+simd", 1).raysPerSec /
                         find(results, "compacted", 1).raysPerSec;
    double threaded_e2e_1t =
        find(results, "compacted+threaded", 1).raysPerSec /
        find(results, "compacted", 1).raysPerSec;

    std::string json;
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "{\n"
        "  \"bench\": \"train_throughput\",\n"
        "  \"hardware_concurrency\": %u,\n"
        "  \"kernel_backends\": {\n"
        "    \"default\": \"%s\",\n"
        "    \"cpu_features\": \"%s\",\n"
        "    \"simd_compiled\": \"%s\",\n"
        "    \"mlp_panel_seconds\": {\"scalar_ref\": %.6f, "
        "\"simd\": %.6f},\n"
        "    \"sparse_sweep_seconds\": {\"scalar_ref\": %.6f, "
        "\"threaded_sweep\": %.6f}\n"
        "  },\n"
        "  \"workload\": {\"scene\": \"lego\", \"rays_per_batch\": %d, "
        "\"samples_per_ray\": %d, \"grid_levels\": %d, "
        "\"log2_table\": %u, \"hidden_dim\": %d},\n"
        "  \"occ_workload\": {\"log2_table\": %u},\n"
        "  \"results\": [\n",
        std::thread::hardware_concurrency(), default_backend.c_str(),
        cpuFeatureString().c_str(), compiledSimdString().c_str(),
        panel_scalar_s, panel_simd_s, sweep_serial_s, sweep_threaded_s,
        w.train.raysPerBatch, w.train.samplesPerRay,
        w.field.densityGrid.numLevels,
        w.field.densityGrid.log2TableSize, w.field.hiddenDim,
        occ_w.field.densityGrid.log2TableSize);
    json += buf;
    for (size_t i = 0; i < results.size(); i++) {
        const auto &r = results[i];
        std::snprintf(
            buf, sizeof(buf),
            "    {\"mode\": \"%s\", \"backend\": \"%s\", "
            "\"threads\": %d, "
            "\"iterations\": %d, \"seconds\": %.4f, "
            "\"occ_update_seconds\": %.4f, "
            "\"rays_per_s\": %.1f, \"points_per_s\": %.1f, "
            "\"points_per_s_effective\": %.1f, "
            "\"occupied_fraction\": %.4f, "
            "\"grad_merge_ratio\": %.3f, "
            "\"sparse_entries_per_iter\": %.1f, "
            "\"sparse_active_entries\": %.0f,\n"
            "     \"phases\": {\"march\": %.4f, \"forward\": %.4f, "
            "\"backward\": %.4f, \"reduce\": %.4f, "
            "\"optimizer\": %.4f, \"zero_grad\": %.4f, "
            "\"occ_refresh\": %.4f}}%s\n",
            r.mode.c_str(), r.backend.c_str(), r.threads,
            r.iterations, r.seconds,
            r.updateSeconds, r.raysPerSec, r.pointsPerSec,
            r.pointsPerSecEffective, r.occupiedFraction,
            r.gradMergeRatio, r.sparseEntriesPerIter,
            r.sparseActiveEntries, r.phases.march,
            r.phases.forward, r.phases.backward, r.phases.reduce,
            r.phases.optimizer, r.phases.zeroGrad, r.phases.occRefresh,
            i + 1 < results.size() ? "," : "");
        json += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "  ],\n"
                  "  \"speedups\": {\n"
                  "    \"batched_1t_vs_scalar\": %.3f,\n"
                  "    \"batched_8t_vs_scalar\": %.3f,\n"
                  "    \"compacted_vs_dense_occ_1t\": %.3f,\n"
                  "    \"compacted_vs_dense_occ_8t\": %.3f,\n"
                  "    \"merged_vs_dense_occ_1t\": %.3f,\n"
                  "    \"merged_vs_compacted_1t\": %.3f,\n"
                  "    \"sparse_vs_dense_optimizer\": %.3f,\n"
                  "    \"simd_vs_scalar_kernels\": %.3f,\n"
                  "    \"threaded_sweep_vs_serial\": %.3f,\n"
                  "    \"simd_backend_e2e_1t\": %.3f,\n"
                  "    \"threaded_backend_e2e_1t\": %.3f\n"
                  "  },\n"
                  "  \"speedup_batched_1t_vs_scalar\": %.3f,\n"
                  "  \"speedup_batched_8t_vs_scalar\": %.3f\n"
                  "}\n",
                  speedup_1t, speedup_8t, compact_vs_dense_1t,
                  compact_vs_dense_8t, merged_vs_dense_1t,
                  merged_vs_compacted_1t, sparse_vs_dense_opt,
                  simd_vs_scalar_kernels, threaded_sweep_vs_serial,
                  simd_e2e_1t, threaded_e2e_1t,
                  speedup_1t, speedup_8t);
    json += buf;

    std::fputs(json.c_str(), stdout);
    if (FILE *f = std::fopen(out_path.c_str(), "w")) {
        std::fputs(json.c_str(), f);
        std::fclose(f);
        std::fprintf(stderr, "wrote %s\n", out_path.c_str());
    } else {
        std::fprintf(stderr, "could not write %s\n", out_path.c_str());
        return 1;
    }
    return 0;
}
