/**
 * @file
 * Training-throughput benchmark of the hot-path rewrite: rays/s and
 * points/s for one training iteration of the quickstart workload,
 * comparing the original scalar reference path against the batched
 * arena path at 1, 2, 4, and 8 threads. Emits JSON (stdout and a file,
 * default BENCH_train_throughput.json) to seed the BENCH trajectory.
 *
 * Usage: bench_train_throughput [output.json] [timed_iterations]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/instant3d_config.hh"

namespace instant3d {
namespace {

struct ModeResult
{
    std::string mode;
    int threads = 1;
    int iterations = 0;
    double seconds = 0.0;
    double raysPerSec = 0.0;
    double pointsPerSec = 0.0;
};

struct Workload
{
    Dataset dataset;
    FieldConfig field;
    TrainConfig train;
};

/** The quickstart workload (examples/quickstart.cpp) at its defaults. */
Workload
quickstartWorkload()
{
    Workload w{Dataset{}, FieldConfig{}, TrainConfig{}};

    DatasetConfig dcfg;
    dcfg.numTrainViews = 8;
    dcfg.numTestViews = 2;
    dcfg.imageWidth = 28;
    dcfg.imageHeight = 28;
    w.dataset = makeDataset(makeSyntheticScene("lego"), dcfg);

    Instant3dConfig algo = instant3dShippedConfig();
    HashEncodingConfig base_grid;
    base_grid.numLevels = 5;
    base_grid.log2TableSize = 13;
    base_grid.baseResolution = 8;
    base_grid.growthFactor = 1.6f;
    w.field = algo.makeFieldConfig(base_grid);
    w.field.hiddenDim = 16;

    w.train.raysPerBatch = 128;
    w.train.samplesPerRay = 40;
    algo.applyTo(w.train);
    return w;
}

double
now()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

ModeResult
runMode(const Workload &w, const std::string &mode, int threads,
        bool scalar, int warmup, int iters)
{
    TrainConfig tcfg = w.train;
    tcfg.numThreads = threads;
    tcfg.scalarReference = scalar;
    Trainer trainer(w.dataset, w.field, tcfg);

    for (int i = 0; i < warmup; i++)
        trainer.trainIteration();

    uint64_t points_before = trainer.totalPointsQueried();
    double t0 = now();
    for (int i = 0; i < iters; i++)
        trainer.trainIteration();
    double secs = now() - t0;
    uint64_t points = trainer.totalPointsQueried() - points_before;

    ModeResult r;
    r.mode = mode;
    r.threads = threads;
    r.iterations = iters;
    r.seconds = secs;
    r.raysPerSec =
        static_cast<double>(iters) * tcfg.raysPerBatch / secs;
    r.pointsPerSec = static_cast<double>(points) / secs;
    return r;
}

} // namespace
} // namespace instant3d

int
main(int argc, char **argv)
{
    using namespace instant3d;

    std::string out_path =
        argc > 1 ? argv[1] : "BENCH_train_throughput.json";
    int iters = argc > 2 ? std::atoi(argv[2]) : 0;

    Workload w = quickstartWorkload();

    // Auto-calibrate so the scalar baseline runs ~1.5 s when no
    // iteration count is given.
    if (iters <= 0) {
        TrainConfig probe_cfg = w.train;
        probe_cfg.scalarReference = true;
        Trainer probe(w.dataset, w.field, probe_cfg);
        probe.trainIteration(); // warm caches
        double t0 = now();
        const int probe_iters = 5;
        for (int i = 0; i < probe_iters; i++)
            probe.trainIteration();
        double per_iter = (now() - t0) / probe_iters;
        iters = static_cast<int>(1.5 / per_iter);
        if (iters < 20)
            iters = 20;
        if (iters > 2000)
            iters = 2000;
    }

    const int warmup = 10;
    std::vector<ModeResult> results;
    results.push_back(
        runMode(w, "scalar_seed", 1, true, warmup, iters));
    for (int threads : {1, 2, 4, 8}) {
        results.push_back(
            runMode(w, "batched", threads, false, warmup, iters));
    }

    const ModeResult &scalar = results[0];
    auto find = [&](int threads) -> const ModeResult & {
        for (const auto &r : results)
            if (r.mode == "batched" && r.threads == threads)
                return r;
        return scalar;
    };
    double speedup_1t = find(1).raysPerSec / scalar.raysPerSec;
    double speedup_8t = find(8).raysPerSec / scalar.raysPerSec;

    std::string json;
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\n"
        "  \"bench\": \"train_throughput\",\n"
        "  \"workload\": {\"scene\": \"lego\", \"rays_per_batch\": %d, "
        "\"samples_per_ray\": %d, \"grid_levels\": %d, "
        "\"log2_table\": %u, \"hidden_dim\": %d},\n"
        "  \"results\": [\n",
        w.train.raysPerBatch, w.train.samplesPerRay,
        w.field.densityGrid.numLevels, w.field.densityGrid.log2TableSize,
        w.field.hiddenDim);
    json += buf;
    for (size_t i = 0; i < results.size(); i++) {
        const auto &r = results[i];
        std::snprintf(
            buf, sizeof(buf),
            "    {\"mode\": \"%s\", \"threads\": %d, "
            "\"iterations\": %d, \"seconds\": %.4f, "
            "\"rays_per_s\": %.1f, \"points_per_s\": %.1f}%s\n",
            r.mode.c_str(), r.threads, r.iterations, r.seconds,
            r.raysPerSec, r.pointsPerSec,
            i + 1 < results.size() ? "," : "");
        json += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "  ],\n"
                  "  \"speedup_batched_1t_vs_scalar\": %.3f,\n"
                  "  \"speedup_batched_8t_vs_scalar\": %.3f\n"
                  "}\n",
                  speedup_1t, speedup_8t);
    json += buf;

    std::fputs(json.c_str(), stdout);
    if (FILE *f = std::fopen(out_path.c_str(), "w")) {
        std::fputs(json.c_str(), f);
        std::fclose(f);
        std::fprintf(stderr, "wrote %s\n", out_path.c_str());
    } else {
        std::fprintf(stderr, "could not write %s\n", out_path.c_str());
        return 1;
    }
    return 0;
}
