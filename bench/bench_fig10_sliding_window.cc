/**
 * @file
 * Figure 10: unique accessed addresses within a sliding window of 1000
 * contiguous accesses, feed-forward vs back-propagation. FF reads
 * stream in batch-parallel order (coordinate buffer); BP updates
 * arrive in compositing order, where occluded samples are skipped and
 * surface cells repeat -- far fewer unique addresses.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/table.hh"

using namespace instant3d;
using namespace instant3d::bench;

int
main()
{
    printBanner("Figure 10: unique addresses per 1000-access window");

    SmallScale scale;
    const int window = 1000;

    Table t({"Scene", "FF mean unique", "BP mean unique",
             "BP sharing factor"});
    for (const auto &scene : {"lego", "ficus", "materials", "ship"}) {
        CapturedTrace trace = captureSceneTrace(scene, scale);
        SlidingWindowStats ff =
            uniqueAddressWindows(trace.reads, window);
        SlidingWindowStats bp =
            uniqueAddressWindows(trace.writes, window);
        t.row()
            .cell(scene)
            .cell(ff.meanUnique(), 1)
            .cell(bp.meanUnique(), 1)
            .cell(meanSharingFactor(bp), 2);
    }
    t.print();

    std::printf("\nPaper shape: FF windows are ~all-unique; BP windows "
                "show ~200 unique per 1000 accesses (shared embeddings "
                "mergeable by the BUM).\n");
    return 0;
}
