/**
 * @file
 * Google-benchmark microbenchmarks of the core kernels: hash-grid
 * encoding forward/backward, MLP forward/backward, the full field
 * query, volume rendering, FRM scheduling throughput, and BUM merge
 * throughput.
 */

#include <benchmark/benchmark.h>

#include "accel/bum.hh"
#include "accel/frm.hh"
#include "common/rng.hh"
#include "kernels/kernel_backend.hh"
#include "nerf/adam.hh"
#include "nerf/renderer.hh"

namespace instant3d {
namespace {

/** Backend selector for the per-backend micro-benches: benchmark
 *  args are indices into this table. */
std::unique_ptr<KernelBackend>
benchBackend(int64_t idx)
{
    return idx == 0 ? makeScalarRefBackend() : makeSimdBackend();
}

HashEncodingConfig
benchGrid()
{
    HashEncodingConfig cfg;
    cfg.numLevels = 8;
    cfg.log2TableSize = 16;
    cfg.baseResolution = 16;
    return cfg;
}

void
BM_HashEncodeForward(benchmark::State &state)
{
    HashEncoding enc(benchGrid(), 1);
    std::vector<float> out(enc.outputDim());
    Rng r(2);
    for (auto _ : state) {
        Vec3 p(r.nextFloat(), r.nextFloat(), r.nextFloat());
        enc.encode(p, out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashEncodeForward);

void
BM_HashEncodeBackward(benchmark::State &state)
{
    HashEncoding enc(benchGrid(), 1);
    std::vector<float> out(enc.outputDim());
    std::vector<float> grad(enc.outputDim(), 1.0f);
    EncodeRecord rec;
    enc.encode({0.4f, 0.5f, 0.6f}, out.data(), &rec);
    for (auto _ : state)
        enc.backward(rec, grad.data());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashEncodeBackward);

void
BM_MlpForward(benchmark::State &state)
{
    Mlp mlp({32, 64, 64, 16}, OutputActivation::None, 3);
    std::vector<float> in(32, 0.1f), out(16);
    for (auto _ : state) {
        mlp.forward(in.data(), out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * mlp.macsPerForward());
}
BENCHMARK(BM_MlpForward);

void
BM_MlpBackward(benchmark::State &state)
{
    Mlp mlp({32, 64, 64, 16}, OutputActivation::None, 3);
    std::vector<float> in(32, 0.1f), out(16), d_out(16, 1.0f), d_in(32);
    MlpRecord rec;
    mlp.forward(in.data(), out.data(), &rec);
    for (auto _ : state) {
        mlp.backward(rec, d_out.data(), d_in.data());
        benchmark::DoNotOptimize(d_in.data());
    }
    state.SetItemsProcessed(state.iterations() * mlp.macsPerForward());
}
BENCHMARK(BM_MlpBackward);

/**
 * The GEMM-style MLP forward panel through one kernel backend
 * (arg 0 = scalar_ref, 1 = simd): one training chunk's worth of
 * samples through a hidden-width-32 layer.
 */
void
BM_MlpForwardPanel(benchmark::State &state)
{
    auto kb = benchBackend(state.range(0));
    state.SetLabel(kb->name());
    const int n = 1024, n_in = 32, n_out = 32;
    Rng r(4);
    std::vector<float> in(static_cast<size_t>(n) * n_in);
    std::vector<float> w(static_cast<size_t>(n_out) * n_in);
    std::vector<float> b(n_out);
    std::vector<float> out(static_cast<size_t>(n) * n_out);
    for (auto &v : in)
        v = r.nextFloat(-1.0f, 1.0f);
    for (auto &v : w)
        v = r.nextFloat(-1.0f, 1.0f);
    for (auto &v : b)
        v = r.nextFloat(-1.0f, 1.0f);

    Workspace ws;
    for (auto _ : state) {
        ws.reset();
        kb->mlpForwardPanel(in.data(), n, n_in, n_out, w.data(),
                            b.data(), out.data(), ws);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(n) * n_in * n_out);
}
BENCHMARK(BM_MlpForwardPanel)->Arg(0)->Arg(1);

/**
 * A chunk-sized encodeBatch through one kernel backend (arg 0 =
 * scalar_ref, 1 = simd): the interpolation gather is the backend
 * seam; the integer corner phase is shared.
 */
void
BM_EncodeBatch(benchmark::State &state)
{
    HashEncoding enc(benchGrid(), 1);
    auto kb = benchBackend(state.range(0));
    state.SetLabel(kb->name());
    enc.setKernelBackend(kb.get());

    const int n = 16 * 48; // one chunk: rays x samples
    Rng r(6);
    std::vector<Vec3> pts;
    for (int i = 0; i < n; i++)
        pts.push_back({r.nextFloat(), r.nextFloat(), r.nextFloat()});
    std::vector<float> out(static_cast<size_t>(n) * enc.outputDim());

    Workspace ws;
    for (auto _ : state) {
        ws.reset();
        // Recorded, like the training hot path: the no-record path
        // keeps the fused scalar loop and never dispatches.
        EncodeBatchRecord rec;
        enc.encodeBatch(pts.data(), n, out.data(), &rec, ws);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EncodeBatch)->Arg(0)->Arg(1);

void
BM_FieldQuery(benchmark::State &state)
{
    FieldConfig cfg = FieldConfig::instant3dDefault(benchGrid());
    NerfField field(cfg, 7);
    Rng r(8);
    for (auto _ : state) {
        Vec3 p(r.nextFloat(), r.nextFloat(), r.nextFloat());
        FieldSample s = field.query(p, {0, 0, 1});
        benchmark::DoNotOptimize(s);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FieldQuery);

void
BM_RenderRay(benchmark::State &state)
{
    FieldConfig cfg = FieldConfig::instant3dDefault(benchGrid());
    NerfField field(cfg, 9);
    RendererConfig rcfg;
    rcfg.samplesPerRay = static_cast<int>(state.range(0));
    VolumeRenderer renderer(rcfg);
    Ray ray{{0.5f, 0.5f, -0.5f}, {0.0f, 0.0f, 1.0f}};
    for (auto _ : state) {
        RayResult res = renderer.renderRay(field, ray);
        benchmark::DoNotOptimize(res);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RenderRay)->Arg(16)->Arg(48)->Arg(128);

/**
 * The stream-compaction kernel in isolation: march a 16-ray chunk
 * against an occupancy grid whose occupied fraction is the benchmark
 * argument (percent), emitting the compacted SoA stream.
 */
void
BM_MarchRays(benchmark::State &state)
{
    RendererConfig rcfg;
    rcfg.samplesPerRay = 48;
    VolumeRenderer renderer(rcfg);

    OccupancyGridConfig ocfg;
    OccupancyGrid grid(ocfg);
    Rng r(13);
    const float occ = static_cast<float>(state.range(0)) / 100.0f;
    for (size_t i = 0; i < grid.numCells(); i++)
        grid.setCellDensity(i, r.nextFloat() < occ
                                   ? ocfg.occupancyThreshold * 2.0f
                                   : 0.0f);
    renderer.setOccupancyGrid(&grid);

    const int num_rays = 16;
    std::vector<Ray> rays;
    for (int i = 0; i < num_rays; i++) {
        Vec3 o(r.nextFloat(), r.nextFloat(), -0.2f);
        rays.push_back({o, Vec3(0.0f, 0.0f, 1.0f)});
    }
    std::vector<Rng> rngs(num_rays, Rng(7));

    Workspace ws;
    for (auto _ : state) {
        ws.reset();
        SampleStream stream;
        renderer.marchRays(rays.data(), num_rays, rngs.data(), stream,
                           ws);
        benchmark::DoNotOptimize(stream.totalSamples);
    }
    state.SetItemsProcessed(state.iterations() * num_rays *
                            rcfg.samplesPerRay);
}
BENCHMARK(BM_MarchRays)->Arg(100)->Arg(25)->Arg(5);

/**
 * The full compacted forward stage (march + one queryStream + per-ray
 * compositing) for a 16-ray chunk, vs per-ray renderRayBatch calls on
 * the same rays -- the end-to-end cost the compacted trainer pays.
 */
void
BM_RenderStream(benchmark::State &state)
{
    FieldConfig cfg = FieldConfig::instant3dDefault(benchGrid());
    NerfField field(cfg, 9);
    RendererConfig rcfg;
    rcfg.samplesPerRay = 48;
    VolumeRenderer renderer(rcfg);

    OccupancyGridConfig ocfg;
    OccupancyGrid grid(ocfg);
    Rng r(14);
    const float occ = static_cast<float>(state.range(0)) / 100.0f;
    for (size_t i = 0; i < grid.numCells(); i++)
        grid.setCellDensity(i, r.nextFloat() < occ
                                   ? ocfg.occupancyThreshold * 2.0f
                                   : 0.0f);
    renderer.setOccupancyGrid(&grid);

    const int num_rays = 16;
    std::vector<Ray> rays;
    for (int i = 0; i < num_rays; i++) {
        Vec3 o(r.nextFloat(), r.nextFloat(), -0.2f);
        rays.push_back({o, Vec3(0.0f, 0.0f, 1.0f)});
    }

    Workspace ws;
    std::vector<RayResult> results(num_rays);
    uint64_t samples = 0;
    for (auto _ : state) {
        ws.reset();
        SampleStream stream;
        renderer.marchRays(rays.data(), num_rays, nullptr, stream, ws);
        StreamRecord rec;
        renderer.renderStream(field, stream, results.data(), &rec, ws);
        samples += static_cast<uint64_t>(stream.totalSamples);
        benchmark::DoNotOptimize(results.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(samples));
}
BENCHMARK(BM_RenderStream)->Arg(100)->Arg(25)->Arg(5);

/**
 * The BUM-style gradient-write merge kernel: push one chunk's worth of
 * scatters whose addresses collide within a table of `range` entries
 * (the benchmark argument), then sort-merge-apply. Compare against
 * BM_HashEncodeBackward for the direct-scatter cost.
 */
void
BM_HashGradMerge(benchmark::State &state)
{
    constexpr uint32_t span = 2;
    const uint32_t range = static_cast<uint32_t>(state.range(0));
    Rng r(15);
    const int writes = 16 * 48 * 8; // one chunk: rays x samples x corners
    std::vector<uint32_t> addrs;
    for (int i = 0; i < writes; i++)
        addrs.push_back(r.nextU32(range) * span);
    const float d_out[span] = {0.5f, -0.25f};

    std::vector<float> grad(static_cast<size_t>(range) * span, 0.0f);
    std::vector<uint32_t> touched;
    HashGradMerger merger;
    for (auto _ : state) {
        merger.reset(span);
        for (uint32_t a : addrs)
            merger.push(a, 1.0f, d_out);
        touched.clear();
        merger.flushInto(grad.data(), &touched);
        benchmark::DoNotOptimize(grad.data());
    }
    state.SetItemsProcessed(state.iterations() * writes);
}
BENCHMARK(BM_HashGradMerge)->Arg(64)->Arg(1024)->Arg(65536);

/**
 * The sparse lazy Adam step on a grid-sized group: `range` touched
 * entries per step out of 2^16 (span 2), steady state (the same
 * entries every step, so the active set equals the touched set).
 * Compare against BM_DenseAdamStep for the full-table-scan cost the
 * sparse path replaces.
 */
void
BM_SparseAdamStep(benchmark::State &state)
{
    constexpr uint32_t span = 2;
    constexpr size_t entries = 1 << 16;
    constexpr size_t n = entries * span;
    AdamConfig acfg;
    Adam adam(n, acfg);
    adam.enableSparse(span);

    Rng r(21);
    const uint32_t k = static_cast<uint32_t>(state.range(0));
    std::vector<uint32_t> touched;
    std::vector<uint8_t> seen(entries, 0);
    while (touched.size() < k) {
        uint32_t e = r.nextU32(entries);
        if (!seen[e]) {
            seen[e] = 1;
            touched.push_back(e * span);
        }
    }
    std::vector<float> params(n, 0.1f);
    std::vector<float> grads(n, 0.0f);
    for (uint32_t off : touched)
        for (uint32_t f = 0; f < span; f++)
            grads[off + f] = r.nextFloat(-1.0f, 1.0f);

    for (auto _ : state) {
        adam.stepSparse(params, grads, touched);
        adam.catchUp(params);
        benchmark::DoNotOptimize(params.data());
    }
    state.SetItemsProcessed(state.iterations() * k * span);
}
BENCHMARK(BM_SparseAdamStep)->Arg(64)->Arg(1024)->Arg(16384);

/** Dense Adam over the same 2^17-param group: the replaced scan. */
void
BM_DenseAdamStep(benchmark::State &state)
{
    constexpr size_t n = (1 << 16) * 2;
    AdamConfig acfg;
    Adam adam(n, acfg);
    std::vector<float> params(n, 0.1f);
    std::vector<float> grads(n, 0.0f);
    for (auto _ : state) {
        adam.step(params, grads);
        benchmark::DoNotOptimize(params.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DenseAdamStep);

void
BM_FrmSchedule(benchmark::State &state)
{
    Rng r(10);
    std::vector<uint32_t> addrs;
    for (int i = 0; i < 4096; i++)
        addrs.push_back(r.nextU32(1 << 14));
    for (auto _ : state) {
        SramArray sram(static_cast<int>(state.range(0)), 4, 1 << 20,
                       1 << 14);
        FrmUnit frm(sram, 16);
        FrmStats s = frm.process(addrs);
        benchmark::DoNotOptimize(s);
    }
    state.SetItemsProcessed(state.iterations() * addrs.size());
}
BENCHMARK(BM_FrmSchedule)->Arg(8)->Arg(16)->Arg(32);

void
BM_BumMerge(benchmark::State &state)
{
    Rng r(11);
    std::vector<uint32_t> addrs;
    for (int i = 0; i < 4096; i++)
        addrs.push_back(r.nextU32(static_cast<uint32_t>(state.range(0))));
    for (auto _ : state) {
        BumUnit bum({.numEntries = 16, .timeoutCycles = 64});
        for (uint32_t a : addrs)
            bum.pushUpdate(a, 1.0f);
        bum.flushAll();
        benchmark::DoNotOptimize(bum.stats());
    }
    state.SetItemsProcessed(state.iterations() * addrs.size());
}
BENCHMARK(BM_BumMerge)->Arg(64)->Arg(1024)->Arg(65536);

} // namespace
} // namespace instant3d

BENCHMARK_MAIN();
