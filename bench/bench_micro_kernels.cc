/**
 * @file
 * Google-benchmark microbenchmarks of the core kernels: hash-grid
 * encoding forward/backward, MLP forward/backward, the full field
 * query, volume rendering, FRM scheduling throughput, and BUM merge
 * throughput.
 */

#include <benchmark/benchmark.h>

#include "accel/bum.hh"
#include "accel/frm.hh"
#include "common/rng.hh"
#include "nerf/renderer.hh"

namespace instant3d {
namespace {

HashEncodingConfig
benchGrid()
{
    HashEncodingConfig cfg;
    cfg.numLevels = 8;
    cfg.log2TableSize = 16;
    cfg.baseResolution = 16;
    return cfg;
}

void
BM_HashEncodeForward(benchmark::State &state)
{
    HashEncoding enc(benchGrid(), 1);
    std::vector<float> out(enc.outputDim());
    Rng r(2);
    for (auto _ : state) {
        Vec3 p(r.nextFloat(), r.nextFloat(), r.nextFloat());
        enc.encode(p, out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashEncodeForward);

void
BM_HashEncodeBackward(benchmark::State &state)
{
    HashEncoding enc(benchGrid(), 1);
    std::vector<float> out(enc.outputDim());
    std::vector<float> grad(enc.outputDim(), 1.0f);
    EncodeRecord rec;
    enc.encode({0.4f, 0.5f, 0.6f}, out.data(), &rec);
    for (auto _ : state)
        enc.backward(rec, grad.data());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashEncodeBackward);

void
BM_MlpForward(benchmark::State &state)
{
    Mlp mlp({32, 64, 64, 16}, OutputActivation::None, 3);
    std::vector<float> in(32, 0.1f), out(16);
    for (auto _ : state) {
        mlp.forward(in.data(), out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * mlp.macsPerForward());
}
BENCHMARK(BM_MlpForward);

void
BM_MlpBackward(benchmark::State &state)
{
    Mlp mlp({32, 64, 64, 16}, OutputActivation::None, 3);
    std::vector<float> in(32, 0.1f), out(16), d_out(16, 1.0f), d_in(32);
    MlpRecord rec;
    mlp.forward(in.data(), out.data(), &rec);
    for (auto _ : state) {
        mlp.backward(rec, d_out.data(), d_in.data());
        benchmark::DoNotOptimize(d_in.data());
    }
    state.SetItemsProcessed(state.iterations() * mlp.macsPerForward());
}
BENCHMARK(BM_MlpBackward);

void
BM_FieldQuery(benchmark::State &state)
{
    FieldConfig cfg = FieldConfig::instant3dDefault(benchGrid());
    NerfField field(cfg, 7);
    Rng r(8);
    for (auto _ : state) {
        Vec3 p(r.nextFloat(), r.nextFloat(), r.nextFloat());
        FieldSample s = field.query(p, {0, 0, 1});
        benchmark::DoNotOptimize(s);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FieldQuery);

void
BM_RenderRay(benchmark::State &state)
{
    FieldConfig cfg = FieldConfig::instant3dDefault(benchGrid());
    NerfField field(cfg, 9);
    RendererConfig rcfg;
    rcfg.samplesPerRay = static_cast<int>(state.range(0));
    VolumeRenderer renderer(rcfg);
    Ray ray{{0.5f, 0.5f, -0.5f}, {0.0f, 0.0f, 1.0f}};
    for (auto _ : state) {
        RayResult res = renderer.renderRay(field, ray);
        benchmark::DoNotOptimize(res);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RenderRay)->Arg(16)->Arg(48)->Arg(128);

void
BM_FrmSchedule(benchmark::State &state)
{
    Rng r(10);
    std::vector<uint32_t> addrs;
    for (int i = 0; i < 4096; i++)
        addrs.push_back(r.nextU32(1 << 14));
    for (auto _ : state) {
        SramArray sram(static_cast<int>(state.range(0)), 4, 1 << 20,
                       1 << 14);
        FrmUnit frm(sram, 16);
        FrmStats s = frm.process(addrs);
        benchmark::DoNotOptimize(s);
    }
    state.SetItemsProcessed(state.iterations() * addrs.size());
}
BENCHMARK(BM_FrmSchedule)->Arg(8)->Arg(16)->Arg(32);

void
BM_BumMerge(benchmark::State &state)
{
    Rng r(11);
    std::vector<uint32_t> addrs;
    for (int i = 0; i < 4096; i++)
        addrs.push_back(r.nextU32(static_cast<uint32_t>(state.range(0))));
    for (auto _ : state) {
        BumUnit bum({.numEntries = 16, .timeoutCycles = 64});
        for (uint32_t a : addrs)
            bum.pushUpdate(a, 1.0f);
        bum.flushAll();
        benchmark::DoNotOptimize(bum.stats());
    }
    state.SetItemsProcessed(state.iterations() * addrs.size());
}
BENCHMARK(BM_BumMerge)->Arg(64)->Arg(1024)->Arg(65536);

} // namespace
} // namespace instant3d

BENCHMARK_MAIN();
