/**
 * @file
 * Figure 5: color features are learned faster than density features.
 * Trains a coupled NGP-style field and reports the RGB-image PSNR and
 * the depth-image PSNR (the paper's proxy for density quality) along
 * the training trajectory, averaged over several scenes.
 *
 * Paper: the color curve sits above the density curve throughout; 160
 * vs 200 iterations to reach 24 dB.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/table.hh"

using namespace instant3d;
using namespace instant3d::bench;

int
main()
{
    printBanner("Figure 5: color vs density learning pace");

    SmallScale scale;
    const std::vector<std::string> scenes = {"ficus", "lego",
                                             "materials"};
    const std::vector<int> checkpoints = {0, 20, 40, 80, 120, 160, 200,
                                          240};

    std::vector<double> rgb(checkpoints.size(), 0.0);
    std::vector<double> depth(checkpoints.size(), 0.0);

    for (const auto &scene : scenes) {
        Dataset ds = makeSceneDataset(scene, scale);
        FieldConfig fcfg =
            FieldConfig::ngpBaseline(benchBaseGrid(scale));
        fcfg.hiddenDim = scale.hiddenDim;
        TrainConfig tcfg;
        tcfg.raysPerBatch = scale.raysPerBatch;
        tcfg.samplesPerRay = scale.samplesPerRay;
        Trainer trainer(ds, fcfg, tcfg);

        size_t next = 0;
        for (int it = 0; it <= checkpoints.back(); it++) {
            if (next < checkpoints.size() && it == checkpoints[next]) {
                rgb[next] += trainer.evalPsnr();
                depth[next] += trainer.evalDepthPsnr();
                next++;
            }
            trainer.trainIteration();
        }
    }

    Table t({"Iteration", "RGB PSNR (color)", "Depth PSNR (density)",
             "Color lead"});
    for (size_t i = 0; i < checkpoints.size(); i++) {
        double r = rgb[i] / scenes.size();
        double d = depth[i] / scenes.size();
        t.row()
            .cell(static_cast<long long>(checkpoints[i]))
            .cell(r, 2)
            .cell(d, 2)
            .cell(r - d, 2);
    }
    t.print();
    std::printf("\nPaper shape: the color (RGB) PSNR curve stays above "
                "the density (depth) curve during training.\n");
    return 0;
}
