/**
 * @file
 * Microarchitecture ablations beyond the paper's figures, validating
 * the design choices DESIGN.md calls out:
 *  - FRM reorder-window depth sweep (the paper picks 16, Sec 5.1);
 *  - BUM buffer-size and timeout sweeps (the paper picks 16 entries);
 *  - bank-count sensitivity of FRM utilization;
 *  - hash pi-constant ablation: with pi1 != 1 the intra-group locality
 *    of Eq. 3 disappears and the clustered access pattern changes.
 */

#include <cstdio>

#include "accel/bum.hh"
#include "accel/frm.hh"
#include "bench_common.hh"
#include "common/table.hh"

using namespace instant3d;
using namespace instant3d::bench;

namespace {

std::vector<uint32_t>
levelAddresses(const std::vector<GridAccess> &accesses, uint16_t level)
{
    std::vector<uint32_t> out;
    for (const auto &a : accesses)
        if (a.level == level)
            out.push_back(a.address);
    return out;
}

} // namespace

int
main()
{
    printBanner("Microarchitecture ablations (beyond the paper)");

    SmallScale scale;
    CapturedTrace trace = captureSceneTrace("lego", scale);
    auto reads = levelAddresses(trace.reads, 3);  // finest level
    auto writes = levelAddresses(trace.writes, 3);

    // --- FRM window-depth sweep -----------------------------------
    Table wt({"FRM window depth", "Cycles", "Utilization (8 banks)"});
    for (int depth : {1, 2, 4, 8, 16, 32, 64}) {
        SramArray sram(8, 4, 1 << 20, 1 << 12);
        FrmUnit frm(sram, depth);
        FrmStats s = frm.process(reads);
        wt.row()
            .cell(static_cast<long long>(depth))
            .cell(static_cast<long long>(s.cycles))
            .cell(s.utilization(8), 3);
    }
    wt.print();
    std::printf("Design point: depth 16 captures nearly all the gain "
                "(Sec 5.1).\n\n");

    // --- BUM buffer-size sweep -------------------------------------
    Table bt({"BUM entries", "Merge ratio", "SRAM writes"});
    for (int entries : {2, 4, 8, 16, 32, 64}) {
        BumUnit bum({.numEntries = entries, .timeoutCycles = 64});
        for (uint32_t a : writes)
            bum.pushUpdate(a, 1.0f);
        bum.flushAll();
        bt.row()
            .cell(static_cast<long long>(entries))
            .cell(bum.stats().mergeRatio(), 3)
            .cell(static_cast<long long>(bum.stats().sramWrites));
    }
    bt.print();
    std::printf("Design point: 16 entries; larger buffers add CAM area "
                "for little extra merging.\n\n");

    // --- BUM timeout sweep -------------------------------------------
    Table tt({"BUM timeout (cycles)", "Merge ratio"});
    for (int timeout : {4, 16, 64, 256, 1024}) {
        BumUnit bum({.numEntries = 16, .timeoutCycles = timeout});
        for (uint32_t a : writes)
            bum.pushUpdate(a, 1.0f);
        bum.flushAll();
        tt.row()
            .cell(static_cast<long long>(timeout))
            .cell(bum.stats().mergeRatio(), 3);
    }
    tt.print();
    std::printf("\n");

    // --- Bank-count sensitivity --------------------------------------
    Table kt({"Banks", "FRM util", "In-order util", "FRM gain"});
    for (int banks : {8, 16, 32}) {
        double f = trace.calibration.utilization(banks, true);
        double io = trace.calibration.utilization(banks, false);
        kt.row()
            .cell(static_cast<long long>(banks))
            .cell(f, 3)
            .cell(io, 3)
            .cell(formatDouble(f / io, 2) + "x");
    }
    kt.print();
    std::printf("\n");

    // --- Hash pi-constant ablation ------------------------------------
    // Re-hash the captured vertex stream with pi1 = large prime: the
    // x-neighbour locality that the FRM exploits disappears.
    GroupDistanceStats eq3 = analyzeVertexGroups(trace.reads);
    std::printf("Hash-constant ablation (Eq. 3 pi1 = 1 vs pi1 = "
                "2971215073):\n");
    std::printf("  Eq. 3    : intra-group mean |d| = %.2f, within "
                "[-5,5] = %.1f %%\n",
                eq3.intraGroupAbs.mean(),
                100.0 * eq3.fractionWithin(5.0));
    // Synthetic re-hash: x and x+1 with the alternative constant.
    Rng r(5);
    RunningStats alt;
    Histogram alt_hist(-20.5, 20.5, 41);
    for (int i = 0; i < 20000; i++) {
        uint32_t x = r.nextU32(1 << 18);
        uint32_t y = r.nextU32(1 << 18);
        uint32_t z = r.nextU32(1 << 18);
        auto h = [](uint32_t xx, uint32_t yy, uint32_t zz) {
            return ((xx * 2971215073u) ^ (yy * 2654435761u) ^
                    (zz * 805459861u)) & ((1u << 12) - 1);
        };
        double d = static_cast<double>(h(x + 1, y, z)) - h(x, y, z);
        alt.add(std::fabs(d));
        alt_hist.add(d);
    }
    std::printf("  pi1 large: intra-group mean |d| = %.2f, within "
                "[-5,5] = %.1f %%\n",
                alt.mean(), 100.0 * alt_hist.fractionInRange(-5, 5));
    std::printf("The FRM/BUM co-design depends on Eq. 3's pi1 = 1 "
                "locality; a generic hash destroys it.\n");
    return 0;
}
