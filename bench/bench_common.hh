/**
 * @file
 * Shared helpers for the per-figure/per-table bench binaries: reduced-
 * scale training runs (fast enough for one CPU core), trace capture,
 * and per-scene calibration of the accelerator model.
 *
 * Scale note: quality numbers (PSNR) come from *real training* at
 * reduced resolution; runtime/energy numbers come from the calibrated
 * device models and the accelerator simulator at paper scale. See
 * DESIGN.md ("Training-at-scale vs training-in-CI").
 */

#ifndef INSTANT3D_BENCH_COMMON_HH
#define INSTANT3D_BENCH_COMMON_HH

#include <memory>
#include <string>

#include "accel/calibration.hh"
#include "core/instant3d_config.hh"
#include "nerf/trainer.hh"
#include "scene/scene.hh"
#include "trace/pattern.hh"

namespace instant3d {
namespace bench {

/** Reduced-scale experiment knobs shared by the training benches. */
struct SmallScale
{
    int imageSize = 20;
    int trainViews = 6;
    int testViews = 2;
    int gtSteps = 64;        //!< Ground-truth ray-march steps.
    int raysPerBatch = 96;
    int samplesPerRay = 32;
    int gridLevels = 4;
    uint32_t log2Table = 12; //!< Baseline (NGP) table size.
    int hiddenDim = 16;
    uint64_t seed = 42;
};

/** Build a dataset for a named scene ("lego", "silvr", "scannet"...). */
Dataset makeSceneDataset(const std::string &scene_name,
                         const SmallScale &scale);

/** The baseline grid config at bench scale. */
HashEncodingConfig benchBaseGrid(const SmallScale &scale);

/**
 * Train an Instant-NGP-style coupled field; returns final test PSNR.
 */
double trainNgpPsnr(const Dataset &dataset, const SmallScale &scale,
                    int iterations);

/**
 * Train a decoupled Instant-3D field under the given algorithm config;
 * returns final test PSNR.
 */
double trainInstant3dPsnr(const Dataset &dataset,
                          const SmallScale &scale,
                          const Instant3dConfig &config, int iterations);

/** A captured density-grid trace from a short training run. */
struct CapturedTrace
{
    std::vector<GridAccess> reads;  //!< Batch-major (hardware) order.
    std::vector<GridAccess> writes; //!< Compositing (arrival) order.
    TraceCalibration calibration;
};

/**
 * Train `warmup` iterations on the scene, then capture one iteration's
 * density-grid accesses and calibrate the FRM/BUM models from them.
 */
CapturedTrace captureSceneTrace(const std::string &scene_name,
                                const SmallScale &scale,
                                int warmup = 60);

} // namespace bench
} // namespace instant3d

#endif // INSTANT3D_BENCH_COMMON_HH
