/**
 * @file
 * Figure 18: per-scene runtime of the Instant-3D accelerator without
 * the FRM unit and/or the BUM unit, normalized to the no-FRM/no-BUM
 * configuration. Uses per-scene trace calibrations.
 *
 * Paper: the FRM alone trims runtime 31.1% on average; FRM + BUM
 * together trim 68.6%.
 */

#include <cstdio>

#include "accel/accelerator.hh"
#include "bench_common.hh"
#include "common/table.hh"

using namespace instant3d;
using namespace instant3d::bench;

int
main()
{
    printBanner("Figure 18: FRM / BUM ablation per scene");

    SmallScale scale;
    TrainingWorkload i3d = makeInstant3dWorkload(
        "NeRF-Synthetic", instant3dShippedConfig());

    AcceleratorConfig none, frm_only, full;
    none.enableFrm = false;
    none.enableBum = false;
    frm_only.enableBum = false;

    Table t({"Scene", "w/o FRM & BUM (s)", "w/ FRM (s)",
             "w/ FRM + BUM (s)", "FRM cut", "FRM+BUM cut"});
    double sum_frm = 0.0, sum_full = 0.0;
    int n = 0;
    for (const auto &scene : syntheticSceneNames()) {
        CapturedTrace trace = captureSceneTrace(scene, scale);
        double t_none =
            Accelerator(none, trace.calibration).trainingSeconds(i3d);
        double t_frm = Accelerator(frm_only, trace.calibration)
                           .trainingSeconds(i3d);
        double t_full =
            Accelerator(full, trace.calibration).trainingSeconds(i3d);
        double frm_cut = 1.0 - t_frm / t_none;
        double full_cut = 1.0 - t_full / t_none;
        sum_frm += frm_cut;
        sum_full += full_cut;
        n++;
        t.row()
            .cell(scene)
            .cell(t_none, 2)
            .cell(t_frm, 2)
            .cell(t_full, 2)
            .cell(formatDouble(100.0 * frm_cut, 1) + " %")
            .cell(formatDouble(100.0 * full_cut, 1) + " %");
    }
    t.print();

    std::printf("\nAverage runtime reduction: FRM %.1f %%, FRM+BUM "
                "%.1f %%.\nPaper: 31.1 %% and 68.6 %%.\n",
                100.0 * sum_frm / n, 100.0 * sum_full / n);
    return 0;
}
