/**
 * @file
 * Figure 4: Instant-NGP training-runtime breakdown on Jetson Nano,
 * Jetson TX2, and Xavier NX. The paper's observation: Step 3-1 (grid
 * interpolation) plus its back-propagation dominates (~80%) on every
 * device.
 */

#include <cstdio>

#include "common/table.hh"
#include "devices/registry.hh"

using namespace instant3d;

int
main()
{
    printBanner("Figure 4: Instant-NGP runtime breakdown per device");

    TrainingWorkload w = makeNgpWorkload("NeRF-Synthetic");

    Table t({"Step", "Jetson Nano", "Jetson TX2", "Xavier NX"});
    std::vector<StepBreakdown> bds;
    for (const auto *dev : baselineDevices())
        bds.push_back(dev->breakdown(w));

    for (auto step : allPipelineSteps()) {
        auto &row = t.row().cell(pipelineStepName(step));
        for (const auto &bd : bds)
            row.cell(formatDouble(100.0 * bd.fraction(step), 1) + " %");
    }
    t.print();

    std::printf("\nStep 3-1 + its BP share of total runtime:\n");
    size_t i = 0;
    for (const auto *dev : baselineDevices()) {
        std::printf("  %-12s %.1f %%  (total training %.0f s)\n",
                    dev->spec().name.c_str(),
                    100.0 * bds[i].gridShare(),
                    dev->trainingSeconds(w));
        i++;
    }
    std::printf("\nPaper: ~80%% on all three devices.\n");
    return 0;
}
