/**
 * @file
 * Table 4: the Instant-3D algorithm vs Instant-NGP on the three
 * datasets (NeRF-Synthetic, SILVR, ScanNet): training runtime on
 * Xavier NX (workload model at paper scale) and reconstruction PSNR
 * (real reduced-scale training on representative scenes of each
 * dataset family).
 *
 * Paper: runtimes 72/135/84 s -> 60/111/72 s at matched PSNR
 * (26.0/25.0/24.9 -> 26.0/25.1/25.1).
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/table.hh"
#include "devices/registry.hh"

using namespace instant3d;
using namespace instant3d::bench;

int
main()
{
    printBanner("Table 4: Instant-3D algorithm vs Instant-NGP");

    SmallScale scale;
    const int iters = 150;
    // Representative reduced-scale scenes per dataset family.
    const std::vector<std::pair<std::string, std::vector<std::string>>>
        families = {
            {"NeRF-Synthetic", {"lego", "materials", "chair"}},
            {"SILVR", {"silvr"}},
            {"ScanNet", {"scannet"}},
        };

    Instant3dConfig shipped = instant3dShippedConfig();
    Table t({"Dataset", "NGP runtime (s)", "I3D runtime (s)",
             "NGP PSNR", "I3D PSNR"});

    for (const auto &[dataset, scenes] : families) {
        double t_ngp = xavierNx().trainingSeconds(
            makeNgpWorkload(dataset));
        double t_i3d = xavierNx().trainingSeconds(
            makeInstant3dWorkload(dataset, shipped));

        double p_ngp = 0.0, p_i3d = 0.0;
        for (const auto &s : scenes) {
            Dataset ds = makeSceneDataset(s, scale);
            p_ngp += trainNgpPsnr(ds, scale, iters);
            p_i3d += trainInstant3dPsnr(ds, scale, shipped, iters);
        }
        p_ngp /= scenes.size();
        p_i3d /= scenes.size();

        t.row()
            .cell(dataset)
            .cell(t_ngp, 0)
            .cell(t_i3d, 0)
            .cell(p_ngp, 2)
            .cell(p_i3d, 2);
    }
    t.print();
    std::printf("\nPaper: 72->60 s, 135->111 s, 84->72 s at matched "
                "PSNR (26.0, 25.0->25.1, 24.9->25.1).\n");
    return 0;
}
