#include "bench_common.hh"

#include "common/logging.hh"

namespace instant3d {
namespace bench {

Dataset
makeSceneDataset(const std::string &scene_name, const SmallScale &scale)
{
    ScenePtr scene;
    if (scene_name.rfind("silvr", 0) == 0)
        scene = makeSilvrScene(0);
    else if (scene_name.rfind("scannet", 0) == 0)
        scene = makeScanNetScene(0);
    else
        scene = makeSyntheticScene(scene_name);

    DatasetConfig cfg;
    cfg.numTrainViews = scale.trainViews;
    cfg.numTestViews = scale.testViews;
    cfg.imageWidth = scale.imageSize;
    cfg.imageHeight = scale.imageSize;
    cfg.renderOpts.numSteps = scale.gtSteps;
    return makeDataset(scene, cfg);
}

HashEncodingConfig
benchBaseGrid(const SmallScale &scale)
{
    HashEncodingConfig grid;
    grid.numLevels = scale.gridLevels;
    grid.featuresPerEntry = 2;
    grid.log2TableSize = scale.log2Table;
    grid.baseResolution = 8;
    grid.growthFactor = 1.6f;
    return grid;
}

namespace {

TrainConfig
benchTrainConfig(const SmallScale &scale)
{
    TrainConfig tcfg;
    tcfg.raysPerBatch = scale.raysPerBatch;
    tcfg.samplesPerRay = scale.samplesPerRay;
    tcfg.adam.lr = 1e-2f;
    tcfg.seed = scale.seed;
    return tcfg;
}

} // namespace

double
trainNgpPsnr(const Dataset &dataset, const SmallScale &scale,
             int iterations)
{
    FieldConfig fcfg = FieldConfig::ngpBaseline(benchBaseGrid(scale));
    fcfg.hiddenDim = scale.hiddenDim;
    Trainer trainer(dataset, fcfg, benchTrainConfig(scale));
    for (int i = 0; i < iterations; i++)
        trainer.trainIteration();
    return trainer.evalPsnr();
}

double
trainInstant3dPsnr(const Dataset &dataset, const SmallScale &scale,
                   const Instant3dConfig &config, int iterations)
{
    FieldConfig fcfg = config.makeFieldConfig(benchBaseGrid(scale));
    fcfg.hiddenDim = scale.hiddenDim;
    TrainConfig tcfg = benchTrainConfig(scale);
    config.applyTo(tcfg);
    Trainer trainer(dataset, fcfg, tcfg);
    for (int i = 0; i < iterations; i++)
        trainer.trainIteration();
    return trainer.evalPsnr();
}

CapturedTrace
captureSceneTrace(const std::string &scene_name, const SmallScale &scale,
                  int warmup)
{
    Dataset dataset = makeSceneDataset(scene_name, scale);

    FieldConfig fcfg = FieldConfig::instant3dDefault(
        benchBaseGrid(scale));
    fcfg.hiddenDim = scale.hiddenDim;
    TrainConfig tcfg = benchTrainConfig(scale);
    tcfg.samplesPerRay = 48;
    // Per-scene pixel-sampling stream: traces must reflect each
    // scene's own ray/occlusion structure, not one shared schedule.
    for (char ch : scene_name)
        tcfg.seed = tcfg.seed * 131 + static_cast<unsigned char>(ch);
    Trainer trainer(dataset, fcfg, tcfg);
    for (int i = 0; i < warmup; i++)
        trainer.trainIteration();

    MemTraceCollector collector;
    trainer.field().densityGrid().setTraceSink(&collector);
    trainer.trainIteration();
    trainer.field().densityGrid().setTraceSink(nullptr);

    CapturedTrace out;
    out.reads = batchMajorOrder(collector.reads(), tcfg.samplesPerRay);
    out.writes = collector.writes();
    out.calibration = calibrateFromTrace(out.reads, out.writes);
    return out;
}

} // namespace bench
} // namespace instant3d
