/**
 * @file
 * Substrate-level ablations grounding three quantitative claims the
 * paper makes outside its numbered figures:
 *
 *  - Sec 2.1: vanilla NeRF needs ~353,895 trillion FLOPs per scene
 *    (> 1 day on a V100), which is why hash-grid training exists;
 *  - Sec 5.1: the fp16 datapath causes minimal quality degradation;
 *  - Instant-NGP's occupancy grid (part of the substrate) reduces
 *    Step 3-1 traffic by skipping empty space.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/workload.hh"
#include "common/table.hh"
#include "nerf/serialize.hh"

using namespace instant3d;
using namespace instant3d::bench;

int
main()
{
    printBanner("Substrate ablations (Sec 2.1 cost, fp16, occupancy)");

    // --- Vanilla-NeRF training cost (Sec 2.1) ---
    VanillaNerfCost vanilla;
    TrainingWorkload ngp = makeNgpWorkload("NeRF-Synthetic");
    double ngp_mlp_flops =
        (ngp.mlpFlopsPerIterFF() + ngp.mlpFlopsPerIterBP()) *
        ngp.iterations;
    Table vt({"Quantity", "Value", "Paper"});
    vt.row()
        .cell("Vanilla NeRF total training FLOPs")
        .cell(formatDouble(vanilla.totalFlops() / 1e15, 0) +
              " PFLOPs")
        .cell("353,895 trillion");
    vt.row()
        .cell("Vanilla NeRF time on one V100")
        .cell(formatDouble(vanilla.daysOnV100(), 1) + " days")
        .cell("> 1 day");
    vt.row()
        .cell("Instant-NGP MLP FLOPs (full training)")
        .cell(formatDouble(ngp_mlp_flops / 1e12, 1) + " TFLOPs")
        .cell("-");
    vt.row()
        .cell("Vanilla / Instant-NGP MLP-FLOP ratio")
        .cell(formatDouble(vanilla.totalFlops() / ngp_mlp_flops, 0) +
              "x")
        .cell("-");
    vt.print();

    // --- Vanilla NeRF vs hash-grid convergence at equal budget ---
    {
        SmallScale s;
        Dataset ds = makeSceneDataset("materials", s);
        TrainConfig tc;
        tc.raysPerBatch = s.raysPerBatch;
        tc.samplesPerRay = s.samplesPerRay;
        Trainer vanilla(ds, FieldConfig::vanillaBaseline(32, 3), tc);
        FieldConfig grid_cfg = FieldConfig::ngpBaseline(benchBaseGrid(s));
        grid_cfg.hiddenDim = s.hiddenDim;
        Trainer grid(ds, grid_cfg, tc);
        for (int i = 0; i < 150; i++) {
            vanilla.trainIteration();
            grid.trainIteration();
        }
        std::printf("\nconvergence at 150 iterations (materials): "
                    "vanilla MLP %.2f dB vs hash grid %.2f dB\n",
                    vanilla.evalPsnr(), grid.evalPsnr());
        std::printf("Paper motivation (Sec 2.1-2.2): grid encodings "
                    "converge far faster than pure MLPs.\n");
    }

    // --- fp16 quantization of trained tables (Sec 5.1) ---
    SmallScale scale;
    Dataset ds = makeSceneDataset("lego", scale);
    FieldConfig fcfg = instant3dShippedConfig().makeFieldConfig(
        benchBaseGrid(scale));
    fcfg.hiddenDim = scale.hiddenDim;
    TrainConfig tcfg;
    tcfg.raysPerBatch = scale.raysPerBatch;
    tcfg.samplesPerRay = scale.samplesPerRay;
    Trainer trainer(ds, fcfg, tcfg);
    for (int i = 0; i < 200; i++)
        trainer.trainIteration();
    double psnr32 = trainer.evalPsnr();
    trainer.field().densityGrid().quantizeToHalf();
    trainer.field().colorGrid().quantizeToHalf();
    double psnr16 = trainer.evalPsnr();

    std::printf("\nfp16 embedding tables (lego, 200 iters): "
                "%.2f dB fp32 -> %.2f dB fp16 (delta %+.3f dB)\n",
                psnr32, psnr16, psnr16 - psnr32);
    std::printf("Paper (Sec 5.1): 16-bit half precision ensures "
                "minimal quality degradation.\n");
    std::printf("Trained model wire size: %.2f MB (the Sec 1 "
                "telepresence argument: model << captures).\n",
                fieldStorageBytes(trainer.field()) / 1048576.0);

    // --- Occupancy-grid empty-space skipping ---
    TrainConfig occ = tcfg;
    occ.useOccupancyGrid = true;
    occ.occupancyUpdatePeriod = 8;
    occ.occupancy.occupancyThreshold = 0.2f;
    occ.occupancy.samplesPerCellUpdate = 3;
    occ.occupancy.resolution = 16;
    occ.occupancy.decay = 0.9f;
    Trainer plain(ds, fcfg, tcfg);
    Trainer skipping(ds, fcfg, occ);
    uint64_t plain_pts = 0, skip_pts = 0;
    for (int i = 0; i < 120; i++) {
        plain_pts += plain.trainIteration().pointsQueried;
        skip_pts += skipping.trainIteration().pointsQueried;
    }
    std::printf("\noccupancy grid: %.1f %% of Step 3-1 point queries "
                "skipped (PSNR %.2f vs %.2f dB without)\n",
                100.0 * (1.0 - static_cast<double>(skip_pts) /
                                   plain_pts),
                skipping.evalPsnr(), plain.evalPsnr());
    return 0;
}
