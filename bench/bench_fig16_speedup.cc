/**
 * @file
 * Figure 16: normalized speedup and energy efficiency of the Instant-3D
 * accelerator over Jetson Nano / Jetson TX2 / Xavier NX on the eight
 * NeRF-Synthetic scenes. Per-scene accelerator runtimes use per-scene
 * trace calibrations (captured from real reduced-scale training);
 * baselines run Instant-NGP on the calibrated GPU models.
 *
 * Paper: average 224x / 132x / 45x speedup and 1198x / 1089x / 479x
 * energy efficiency vs Nano / TX2 / NX.
 */

#include <cstdio>

#include "accel/energy_model.hh"
#include "accel/accelerator.hh"
#include "bench_common.hh"
#include "common/table.hh"
#include "devices/registry.hh"

using namespace instant3d;
using namespace instant3d::bench;

int
main()
{
    printBanner("Figure 16: per-scene speedup & energy efficiency");

    SmallScale scale;
    TrainingWorkload ngp = makeNgpWorkload("NeRF-Synthetic");
    TrainingWorkload i3d = makeInstant3dWorkload(
        "NeRF-Synthetic", instant3dShippedConfig());

    Table t({"Scene", "Instant-3D (s)", "vs Nano", "vs TX2", "vs NX",
             "E-eff vs Nano", "E-eff vs TX2", "E-eff vs NX"});

    double sum_t = 0.0, sum_sp[3] = {}, sum_ee[3] = {};
    int n = 0;
    for (const auto &scene : syntheticSceneNames()) {
        CapturedTrace trace = captureSceneTrace(scene, scale);
        Accelerator accel(AcceleratorConfig{}, trace.calibration);
        AcceleratorResult res = accel.simulate(i3d);
        EnergyReport er = EnergyModel().report(res, i3d.iterations);

        auto &row = t.row().cell(scene).cell(res.totalSeconds, 2);
        int d = 0;
        double sp[3], ee[3];
        for (const auto *dev : baselineDevices()) {
            sp[d] = dev->trainingSeconds(ngp) / res.totalSeconds;
            ee[d] = dev->trainingEnergyJoules(ngp) / er.totalJoules;
            d++;
        }
        for (int i = 0; i < 3; i++)
            row.cell(formatDouble(sp[i], 0) + "x");
        for (int i = 0; i < 3; i++)
            row.cell(formatDouble(ee[i], 0) + "x");

        sum_t += res.totalSeconds;
        for (int i = 0; i < 3; i++) {
            sum_sp[i] += sp[i];
            sum_ee[i] += ee[i];
        }
        n++;
    }
    auto &avg = t.row().cell("AVERAGE").cell(sum_t / n, 2);
    for (int i = 0; i < 3; i++)
        avg.cell(formatDouble(sum_sp[i] / n, 0) + "x");
    for (int i = 0; i < 3; i++)
        avg.cell(formatDouble(sum_ee[i] / n, 0) + "x");
    t.print();

    std::printf("\nPaper averages: speedup 224x / 132x / 45x; energy "
                "efficiency 1198x / 1089x / 479x (Nano / TX2 / NX).\n");
    return 0;
}
