/**
 * @file
 * Figure 17: cumulative speedup ladder over Instant-NGP on Xavier NX,
 * decomposed by technique:
 *   (1) the Instant-3D algorithm (still on the edge GPU),
 *   (2) moving Step 3 onto dedicated grid cores/MLP units (naive
 *       issue, no merging, no fusion -- large tables spill to DRAM),
 *   (3) the FRM + BUM units,
 *   (4) the multi-core-fusion reconfigurable scheduling.
 *
 * The paper decomposes its 45x as 2.7x (algorithm) x 3.1x (FRM & BUM)
 * x 5.3x (scheduling); our simulator's attribution differs per stage
 * (documented in EXPERIMENTS.md) but the total lands in the same
 * place.
 */

#include <cstdio>

#include "accel/accelerator.hh"
#include "common/table.hh"
#include "devices/registry.hh"

using namespace instant3d;

int
main()
{
    printBanner("Figure 17: speedup ladder over Instant-NGP @ Xavier NX");

    TraceCalibration calib = TraceCalibration::defaults();
    TrainingWorkload ngp = makeNgpWorkload("NeRF-Synthetic");
    TrainingWorkload i3d = makeInstant3dWorkload(
        "NeRF-Synthetic", instant3dShippedConfig());

    double base = xavierNx().trainingSeconds(ngp);

    // Stage 1: algorithm on the GPU.
    double algo = xavierNx().trainingSeconds(i3d);

    // Stage 2: dedicated accelerator, everything naive.
    AcceleratorConfig naive;
    naive.enableFrm = false;
    naive.enableBum = false;
    naive.enableFusion = false;
    double accel_naive = Accelerator(naive, calib).trainingSeconds(i3d);

    // Stage 3: + FRM + BUM.
    AcceleratorConfig frm_bum = naive;
    frm_bum.enableFrm = true;
    frm_bum.enableBum = true;
    double accel_frm_bum =
        Accelerator(frm_bum, calib).trainingSeconds(i3d);

    // Stage 4: + multi-core fusion (full design).
    double full =
        Accelerator(AcceleratorConfig{}, calib).trainingSeconds(i3d);

    Table t({"Configuration", "Runtime (s)", "Stage factor",
             "Cumulative speedup"});
    double prev = base;
    auto stage = [&](const char *name, double secs) {
        t.row()
            .cell(name)
            .cell(secs, 2)
            .cell(formatDouble(prev / secs, 2) + "x")
            .cell(formatDouble(base / secs, 1) + "x");
        prev = secs;
    };
    t.row().cell("Instant-NGP @ Xavier NX").cell(base, 1).cell("-")
        .cell("1.0x");
    stage("+ Instant-3D algorithm (GPU)", algo);
    stage("+ dedicated grid cores (naive)", accel_naive);
    stage("+ FRM + BUM units", accel_frm_bum);
    stage("+ multi-core fusion (full)", full);
    t.print();

    std::printf("\nPaper: total ~45x, attributed as 2.7x (algorithm) x "
                "3.1x (FRM & BUM) x 5.3x (scheduling).\n");
    return 0;
}
