/**
 * @file
 * Render-serving bench: train two small scenes, register them, and
 * measure (1) the single-client Trainer::renderImage baseline at one
 * thread, (2) served closed-loop throughput at one worker (the
 * cross-request-batching gate: served must stay >= 0.9x the baseline),
 * and (3) an open-loop synthetic request mix -- two scenes, three
 * quality tiers, mixed tile sizes, configurable offered load --
 * reporting throughput plus p50/p95/p99 latency per tier, cache and
 * backpressure counters.
 *
 * A fleet mode then runs the same open-loop mix through a ShardRouter
 * (4 shards x R=2): once unhedged and once hedged against an identical
 * slow-replica stall schedule (per-tier latency with and without
 * hedging), and once with a deterministic mid-run shard crash
 * (availability under kill + failover counters). The `fleet` JSON
 * block and the `fleet_kill_completion` speedup feed the smoke gate.
 *
 * Usage: bench_serve [output.json] [open_loop_seconds]
 *
 * Emits BENCH_serve_latency.json (path = argv[1]).
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "common/fault_injection.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "nerf/trainer.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "serve/render_service.hh"
#include "serve/scene_registry.hh"
#include "serve/shard_router.hh"

namespace instant3d {
namespace {

double
now()
{
    return monotonicSeconds();
}

/** Lattice-aligned serving camera over the unit-cube scene. */
CameraSpec
servingCamera(int view, int size)
{
    // A small set of distinct viewpoints, all exactly on the 1/4096
    // quantization lattice so repeats hash to the same cache keys.
    static const float eyes[][3] = {
        {1.25f, 0.5f, 1.0f},   {0.5f, 1.25f, 1.0f},
        {-0.25f, 0.5f, 1.0f},  {0.5f, -0.25f, 1.0f},
        {1.0f, 1.0f, 1.25f},   {0.0f, 1.0f, 1.25f},
        {1.0f, 0.0f, 0.75f},   {0.0f, 0.0f, 0.75f},
    };
    const float *e = eyes[view % 8];
    CameraSpec spec;
    spec.eye = {e[0], e[1], e[2]};
    spec.target = {0.5f, 0.5f, 0.5f};
    spec.up = {0.0f, 0.0f, 1.0f};
    spec.vfovDeg = 45.0f;
    spec.width = size;
    spec.height = size;
    return spec;
}

std::unique_ptr<Trainer>
trainScene(const Dataset &dataset, const bench::SmallScale &scale,
           int iterations)
{
    FieldConfig fcfg =
        FieldConfig::instant3dDefault(bench::benchBaseGrid(scale));
    fcfg.hiddenDim = scale.hiddenDim;
    TrainConfig tcfg;
    tcfg.raysPerBatch = scale.raysPerBatch;
    tcfg.samplesPerRay = scale.samplesPerRay;
    tcfg.adam.lr = 1e-2f;
    tcfg.useOccupancyGrid = true;
    tcfg.occupancyUpdatePeriod = 16;
    tcfg.numThreads = 1; // the 1t baseline renders through this pool
    tcfg.seed = scale.seed;
    auto trainer = std::make_unique<Trainer>(dataset, fcfg, tcfg);
    for (int i = 0; i < iterations; i++)
        trainer->trainIteration();
    return trainer;
}

double
percentile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    size_t idx = static_cast<size_t>(
        std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
    if (idx > 0)
        idx--;
    return sorted[std::min(idx, sorted.size() - 1)];
}

struct TierLatency
{
    const char *name;
    std::vector<double> ms;
};

} // namespace
} // namespace instant3d

int
main(int argc, char **argv)
{
    using namespace instant3d;

    std::string out_path =
        argc > 1 ? argv[1] : "BENCH_serve_latency.json";
    double open_loop_seconds = argc > 2 ? std::atof(argv[2]) : 3.0;
    if (open_loop_seconds <= 0)
        open_loop_seconds = 3.0;

    constexpr int image_size = 64;
    constexpr int tile = 16;
    const uint64_t image_rays =
        static_cast<uint64_t>(image_size) * image_size;

    // ------------------------------------------------- scene setup
    bench::SmallScale scale;
    std::fprintf(stderr, "bench_serve: training 2 scenes...\n");
    Dataset lego = bench::makeSceneDataset("lego", scale);
    Dataset materials = bench::makeSceneDataset("materials", scale);
    auto lego_trainer = trainScene(lego, scale, 150);
    auto materials_trainer = trainScene(materials, scale, 150);

    SceneRegistry registry;
    registry.registerFromTrainer("lego", *lego_trainer);
    registry.registerFromTrainer("materials", *materials_trainer);

    // ------------------------------- baseline: renderImage at 1 thread
    CameraSpec cam = servingCamera(0, image_size);
    Camera camera = cam.makeCamera();
    lego_trainer->renderImage(camera); // warm
    double t0 = now();
    int base_frames = 0;
    double base_seconds = 0.0;
    while (base_seconds < 1.0) {
        lego_trainer->renderImage(camera);
        base_frames++;
        base_seconds = now() - t0;
    }
    double base_rays_per_s =
        static_cast<double>(base_frames) * image_rays / base_seconds;

    // ------------------- served closed loop, 1 worker, cache disabled
    double served_rays_per_s = 0.0;
    uint64_t closed_chunks = 0, closed_cross = 0;
    {
        RenderServiceConfig cfg;
        cfg.workers = 1;
        cfg.tilePixels = tile;
        cfg.chunkRays = image_rays; // whole image -> one stream chunk
        cfg.cacheTiles = 0;
        RenderService service(registry, cfg);

        RenderRequest req;
        req.sceneId = "lego";
        req.camera = cam;
        service.render(req); // warm
        double s0 = now();
        int frames = 0;
        double seconds = 0.0;
        while (seconds < 1.0) {
            RenderResponse resp = service.render(req);
            if (resp.status != RequestStatus::Ok) {
                std::fprintf(stderr,
                             "bench_serve: closed-loop render failed\n");
                return 1;
            }
            frames++;
            seconds = now() - s0;
        }
        served_rays_per_s =
            static_cast<double>(frames) * image_rays / seconds;
        ServeStats st = service.stats();
        closed_chunks = st.chunksRendered;
        closed_cross = st.crossRequestChunks;
    }
    double served_vs_render_image =
        served_rays_per_s / base_rays_per_s;

    // --------------------------------- open loop: synthetic request mix
    // Offered load targets ~60% of the measured 1-worker ray capacity
    // (auto-worker services on multicore hosts have headroom above
    // that), over a deterministic mix: 2 scenes x 3 tiers x 3 sizes x
    // 8 viewpoints, with repeats so the tile cache sees hits.
    const int sizes[3] = {image_size, image_size / 2, tile};
    double mean_request_rays = 0.0;
    for (int s : sizes)
        mean_request_rays += static_cast<double>(s) * s;
    mean_request_rays /= 3.0;
    double offered_rps =
        0.6 * served_rays_per_s / mean_request_rays;
    if (offered_rps < 4.0)
        offered_rps = 4.0;

    TierLatency tiers[numQualityTiers] = {
        {"full", {}}, {"half", {}}, {"preview", {}}};
    uint64_t submitted = 0, completed = 0, rejected = 0, expired = 0;
    double open_elapsed = 0.0;
    ServeStats open_stats;
    TileCache::Stats open_cache;
    int open_workers = 0;
    {
        RenderServiceConfig cfg;
        cfg.workers = 0; // auto
        cfg.tilePixels = tile;
        cfg.chunkRays = 2048;
        cfg.cacheTiles = 256;
        cfg.maxQueueTiles = 4096;
        RenderService service(registry, cfg);
        open_workers = service.workerCount();

        struct Flight
        {
            std::future<RenderResponse> future;
            int tier;
        };
        std::vector<Flight> flights;
        flights.reserve(
            static_cast<size_t>(offered_rps * open_loop_seconds) + 8);

        Rng mix_rng(1234);
        auto start = std::chrono::steady_clock::now();
        double o0 = now();
        for (uint64_t i = 0;; i++) {
            double due = static_cast<double>(i) / offered_rps;
            if (due > open_loop_seconds)
                break;
            std::this_thread::sleep_until(
                start + std::chrono::duration<double>(due));

            RenderRequest req;
            req.sceneId = mix_rng.nextU32(2) ? "materials" : "lego";
            req.camera =
                servingCamera(static_cast<int>(mix_rng.nextU32(8)),
                              image_size);
            int tier = static_cast<int>(mix_rng.nextU32(3));
            req.quality = static_cast<QualityTier>(tier);
            int size = sizes[mix_rng.nextU32(3)];
            if (size < image_size) {
                int off = static_cast<int>(
                    mix_rng.nextU32(static_cast<uint32_t>(
                        (image_size - size) / tile + 1))) * tile;
                req.roi = {off, off, size, size};
            }
            flights.push_back({service.submit(req), tier});
            submitted++;
        }
        for (auto &fl : flights) {
            RenderResponse resp = fl.future.get();
            switch (resp.status) {
            case RequestStatus::Ok:
                completed++;
                tiers[fl.tier].ms.push_back(resp.totalMs);
                break;
            case RequestStatus::Rejected:
                rejected++;
                break;
            case RequestStatus::DeadlineExceeded:
                expired++;
                break;
            default:
                break;
            }
        }
        open_elapsed = now() - o0;
        open_stats = service.stats();
        open_cache = service.cacheStats();
    }

    std::vector<double> all_ms;
    for (auto &t : tiers) {
        std::sort(t.ms.begin(), t.ms.end());
        all_ms.insert(all_ms.end(), t.ms.begin(), t.ms.end());
    }
    std::sort(all_ms.begin(), all_ms.end());

    // ------------------------------------ overload: backpressure probe
    uint64_t overload_submitted = 0, overload_rejected = 0;
    {
        RenderServiceConfig cfg;
        cfg.workers = 1;
        cfg.tilePixels = tile;
        cfg.maxQueueTiles = 64;
        cfg.retryAfterMs = 5;
        RenderService service(registry, cfg);
        std::vector<std::future<RenderResponse>> fut;
        for (int i = 0; i < 96; i++) {
            RenderRequest req;
            req.sceneId = "lego";
            req.camera = cam;
            fut.push_back(service.submit(req));
            overload_submitted++;
        }
        for (auto &f : fut)
            if (f.get().status == RequestStatus::Rejected)
                overload_rejected++;
    }

    // -------------------- overload again, with degradation enabled:
    // the same 96-request burst against a 64-tile admission window,
    // but with QoS degradation on and a deep degraded cap, so the
    // service downshifts tiers instead of shedding load.
    uint64_t degraded_submitted = 0, degraded_completed = 0;
    uint64_t degraded_rejected = 0;
    uint64_t degraded_per_tier[numQualityTiers] = {0, 0, 0};
    uint64_t degraded_admissions = 0;
    {
        RenderServiceConfig cfg;
        cfg.workers = 1;
        cfg.tilePixels = tile;
        cfg.maxQueueTiles = 64;
        cfg.retryAfterMs = 5;
        cfg.degradeUnderLoad = true;
        cfg.maxQueueTilesDegraded = 4096;
        RenderService service(registry, cfg);
        std::vector<std::future<RenderResponse>> fut;
        for (int i = 0; i < 96; i++) {
            RenderRequest req;
            req.sceneId = "lego";
            req.camera = cam;
            fut.push_back(service.submit(req));
            degraded_submitted++;
        }
        for (auto &f : fut) {
            RenderResponse resp = f.get();
            if (resp.status == RequestStatus::Ok) {
                degraded_completed++;
                degraded_per_tier[static_cast<int>(
                    resp.servedQuality)]++;
            } else if (resp.status == RequestStatus::Rejected) {
                degraded_rejected++;
            }
        }
        degraded_admissions = service.stats().admissionDegradations;
    }
    double degraded_completion_rate =
        degraded_submitted
            ? static_cast<double>(degraded_completed) /
                  static_cast<double>(degraded_submitted)
            : 0.0;

    // ------------------------------------------------- fleet passes
    // The same open-loop mix through a 4-shard x R=2 router, three
    // times: unhedged and hedged against the same 5%-probability
    // slow-replica stall spec (fixed seed -- the fault draws are a
    // pure function of the per-point hit index), then unhedged with a
    // deterministic mid-run shard crash to measure availability under
    // kill and failover.
    struct FleetPass
    {
        uint64_t submitted = 0, completed = 0, rejected = 0;
        std::vector<double> tierMs[numQualityTiers];
        FleetStats stats;
    };
    const double fleet_seconds = std::min(open_loop_seconds, 2.0);
    const double fleet_rps = std::max(8.0, offered_rps);
    constexpr int fleet_shards = 4, fleet_replication = 2;
    constexpr int fleet_workers_per_shard = 2;

    auto fleet_pass = [&](bool hedged, bool kill) {
        FleetPass pass;
        ShardRouterConfig fcfg;
        fcfg.numShards = fleet_shards;
        fcfg.replication = fleet_replication;
        fcfg.routerThreads = 4;
        fcfg.maxAttempts = 3;
        fcfg.shard.workers = fleet_workers_per_shard;
        fcfg.shard.tilePixels = tile;
        fcfg.shard.chunkRays = 2048;
        fcfg.shard.cacheTiles = 256;
        fcfg.hedgeRequests = hedged;
        // Above the typical render span, below the stall tail: hedges
        // fire for stalled replicas, not for healthy ones.
        fcfg.hedgeDelayMs = 120.0;
        ShardRouter router(fcfg);
        router.addScene("lego", *lego_trainer);
        router.addScene("materials", *materials_trainer);

        fault::disarmAll();
        fault::resetCounts();
        if (kill) {
            fault::Spec crash;
            crash.mode = fault::Mode::OneShot;
            crash.n = 5; // the fifth dispatch crashes its shard
            fault::arm(fault::Point::ShardCrash, crash);
        } else {
            fault::Spec stall;
            stall.mode = fault::Mode::Probability;
            stall.probability = 0.1;
            stall.seed = 42;
            stall.delayMs = 400; // the slow-replica tail to hedge away
            fault::arm(fault::Point::ShardStall, stall);
        }

        struct Flight
        {
            std::future<RenderResponse> future;
            int tier;
        };
        std::vector<Flight> flights;
        flights.reserve(
            static_cast<size_t>(fleet_rps * fleet_seconds) + 8);
        Rng mix_rng(777);
        auto start = std::chrono::steady_clock::now();
        for (uint64_t i = 0;; i++) {
            double due = static_cast<double>(i) / fleet_rps;
            if (due > fleet_seconds)
                break;
            std::this_thread::sleep_until(
                start + std::chrono::duration<double>(due));

            RenderRequest req;
            req.sceneId = mix_rng.nextU32(2) ? "materials" : "lego";
            req.camera =
                servingCamera(static_cast<int>(mix_rng.nextU32(8)),
                              image_size);
            int tier = static_cast<int>(mix_rng.nextU32(3));
            req.quality = static_cast<QualityTier>(tier);
            int size = sizes[mix_rng.nextU32(3)];
            if (size < image_size) {
                int off = static_cast<int>(
                    mix_rng.nextU32(static_cast<uint32_t>(
                        (image_size - size) / tile + 1))) * tile;
                req.roi = {off, off, size, size};
            }
            flights.push_back({router.submit(req), tier});
            pass.submitted++;
        }
        for (auto &fl : flights) {
            RenderResponse resp = fl.future.get();
            if (resp.status == RequestStatus::Ok) {
                pass.completed++;
                // totalMs is router-stamped: client-observed latency
                // including queueing, retries, failover, hedging.
                pass.tierMs[fl.tier].push_back(resp.totalMs);
            } else if (resp.status == RequestStatus::Rejected) {
                pass.rejected++;
            }
        }
        for (auto &ms : pass.tierMs)
            std::sort(ms.begin(), ms.end());
        pass.stats = router.fleetStats();
        fault::disarmAll();
        return pass;
    };

    std::fprintf(stderr, "bench_serve: fleet passes...\n");
    FleetPass fleet_unhedged = fleet_pass(false, false);
    FleetPass fleet_hedged = fleet_pass(true, false);
    FleetPass fleet_kill = fleet_pass(false, true);
    fault::resetCounts();
    double fleet_kill_completion =
        fleet_kill.submitted
            ? static_cast<double>(fleet_kill.completed) /
                  static_cast<double>(fleet_kill.submitted)
            : 0.0;

    // ------------------------------------------------ capacity phase
    // A scene working set ~8x the byte budget: 120 registered scenes
    // against room for 15, so registration itself churns the LRU and
    // a large fraction of the request mix lands on cold stubs. The
    // mix skews 70% onto 16 hot scenes (which should stay warm under
    // LRU) and 30% uniform (eviction + cold-start churn); ColdStart
    // answers are retried per their load-aware hint in bounded
    // rounds. The smoke gate wants completion >= 0.9.
    std::fprintf(stderr, "bench_serve: capacity phase...\n");
    constexpr int cap_scenes = 120;
    constexpr int cap_budget_scenes = 15;
    constexpr int cap_hot = 16;
    uint64_t cap_submitted = 0, cap_completed = 0, cap_failed = 0;
    uint64_t cap_cold_responses = 0, cap_retry_rounds = 0;
    size_t cap_scene_bytes = 0, cap_budget = 0;
    double cap_elapsed = 0.0, cap_rps = 0.0, cap_seconds = 0.0;
    std::vector<double> cold_ms;
    SceneRegistryStats cap_reg;
    ServeStats cap_serve;
    {
        const std::string lego_ckpt = "BENCH_serve_capacity_lego.bin";
        const std::string mat_ckpt =
            "BENCH_serve_capacity_materials.bin";
        if (lego_trainer->saveCheckpoint(lego_ckpt) !=
                CheckpointError::None ||
            materials_trainer->saveCheckpoint(mat_ckpt) !=
                CheckpointError::None) {
            std::fprintf(stderr,
                         "bench_serve: capacity checkpoint save "
                         "failed\n");
            return 1;
        }
        auto spec_of = [](Trainer &t) {
            SceneSpec s;
            s.field = t.field().config();
            s.renderer = t.renderer().config();
            s.useOccupancy = true;
            s.occupancy = t.occupancyGrid()->config();
            s.loadRetryBackoffMs = 1;
            return s;
        };
        SceneSpec lego_spec = spec_of(*lego_trainer);
        SceneSpec mat_spec = spec_of(*materials_trainer);

        // Probe one warm scene's accounted bytes to size the budget.
        {
            SceneRegistry probe;
            probe.registerFromCheckpoint("probe", lego_spec,
                                         lego_ckpt);
            cap_scene_bytes = probe.stats().bytesWarm;
        }
        cap_budget = cap_scene_bytes * cap_budget_scenes;
        SceneRegistryConfig rcfg;
        rcfg.memoryBudgetBytes = cap_budget;
        rcfg.maxConcurrentLoads = 2;
        SceneRegistry registry(rcfg);

        std::vector<std::string> ids;
        ids.reserve(cap_scenes);
        for (int i = 0; i < cap_scenes; i++) {
            char idbuf[32];
            std::snprintf(idbuf, sizeof(idbuf), "cap-%03d", i);
            ids.emplace_back(idbuf);
            uint64_t gen = registry.registerFromCheckpoint(
                ids.back(), (i & 1) ? mat_spec : lego_spec,
                (i & 1) ? mat_ckpt : lego_ckpt);
            if (gen == 0) {
                std::fprintf(stderr,
                             "bench_serve: capacity registration "
                             "failed at %s\n",
                             ids.back().c_str());
                return 1;
            }
        }

        RenderServiceConfig cfg;
        cfg.workers = 0; // auto
        cfg.tilePixels = tile;
        cfg.chunkRays = 2048;
        cfg.cacheTiles = 256;
        cfg.cacheBytes = 4ll << 20;
        cfg.maxQueueTiles = 8192;
        RenderService service(registry, cfg);

        struct Flight
        {
            std::future<RenderResponse> future;
            RenderRequest request;
            double firstSubmit = 0.0;
            bool sawCold = false;
            bool resubmit = false;
            bool settled = false;
        };
        cap_seconds = std::min(open_loop_seconds, 2.0);
        cap_rps = std::max(24.0, offered_rps);
        std::vector<Flight> flights;
        flights.reserve(
            static_cast<size_t>(cap_rps * cap_seconds) + 8);

        Rng mix_rng(4242);
        auto start = std::chrono::steady_clock::now();
        double c0 = now();
        for (uint64_t i = 0;; i++) {
            double due = static_cast<double>(i) / cap_rps;
            if (due > cap_seconds)
                break;
            std::this_thread::sleep_until(
                start + std::chrono::duration<double>(due));

            RenderRequest req;
            uint32_t pick = mix_rng.nextU32(10);
            size_t scene = pick < 7
                ? mix_rng.nextU32(cap_hot)
                : mix_rng.nextU32(cap_scenes);
            req.sceneId = ids[scene];
            req.camera =
                servingCamera(static_cast<int>(mix_rng.nextU32(8)),
                              image_size / 2);
            req.quality = static_cast<QualityTier>(mix_rng.nextU32(3));
            Flight fl;
            fl.request = req;
            fl.firstSubmit = now();
            fl.future = service.submit(req);
            flights.push_back(std::move(fl));
            cap_submitted++;
        }

        // Drain with bounded retry rounds: ColdStart (and Rejected)
        // responses re-submit after the largest hint seen that round.
        for (int round = 0; round < 8; round++) {
            int max_hint = 0;
            size_t pending = 0;
            for (auto &fl : flights) {
                if (fl.settled)
                    continue;
                RenderResponse resp = fl.future.get();
                switch (resp.status) {
                case RequestStatus::Ok:
                    cap_completed++;
                    fl.settled = true;
                    if (fl.sawCold)
                        cold_ms.push_back(
                            (now() - fl.firstSubmit) * 1e3);
                    break;
                case RequestStatus::ColdStart:
                    cap_cold_responses++;
                    fl.sawCold = true;
                    fl.resubmit = true;
                    pending++;
                    max_hint =
                        std::max(max_hint, resp.retryAfterMs);
                    break;
                case RequestStatus::Rejected:
                    fl.resubmit = true;
                    pending++;
                    max_hint =
                        std::max(max_hint, resp.retryAfterMs);
                    break;
                default:
                    cap_failed++;
                    fl.settled = true;
                    break;
                }
            }
            if (pending == 0)
                break;
            cap_retry_rounds++;
            std::this_thread::sleep_for(std::chrono::milliseconds(
                std::min(max_hint, 100)));
            for (auto &fl : flights) {
                if (fl.settled || !fl.resubmit)
                    continue;
                fl.resubmit = false;
                fl.future = service.submit(fl.request);
            }
        }
        for (auto &fl : flights)
            if (!fl.settled)
                cap_failed++;
        cap_elapsed = now() - c0;
        cap_serve = service.stats();
        cap_reg = registry.stats();
        std::remove(lego_ckpt.c_str());
        std::remove(mat_ckpt.c_str());
    }
    std::sort(cold_ms.begin(), cold_ms.end());
    double capacity_completion =
        cap_submitted ? static_cast<double>(cap_completed) /
                            static_cast<double>(cap_submitted)
                      : 0.0;
    double cold_start_p99_ms = percentile(cold_ms, 99);

    // ------------------------------------------------- orbit phase
    // A single paced viewer orbiting the lego scene at Preview tier
    // with a coarse 1/64 camera lattice and speculative prefetch on:
    // consecutive frames collapse onto shared lattice cells (cross-
    // frame cache reuse) and the constant-velocity predictor
    // pre-renders the next cell during the inter-frame gap. The
    // smoke gate wants orbit_preview_hit_rate >= 0.5.
    std::fprintf(stderr, "bench_serve: orbit phase...\n");
    constexpr int orbit_frames = 120;
    constexpr float orbit_lattice = 64.0f;
    uint64_t orbit_tiles_cache = 0, orbit_tiles_rendered = 0;
    ServeStats orbit_stats;
    TileCache::Stats orbit_cache;
    int orbit_workers = 0;
    {
        RenderServiceConfig cfg;
        cfg.workers = 0; // auto
        cfg.tilePixels = tile;
        cfg.chunkRays = 2048;
        cfg.cacheTiles = 1024;
        cfg.cameraLattice[static_cast<int>(QualityTier::Preview)] =
            orbit_lattice;
        cfg.prefetch = true;
        RenderService service(registry, cfg);
        orbit_workers = service.workerCount();

        RenderRequest req;
        req.sceneId = "lego";
        req.quality = QualityTier::Preview;
        req.viewerId = "orbit";
        for (int i = 0; i < orbit_frames; i++) {
            double theta = 0.005 * static_cast<double>(i);
            req.camera = servingCamera(0, image_size);
            req.camera.eye = {
                0.5f +
                    0.75f * static_cast<float>(std::cos(theta)),
                0.5f +
                    0.75f * static_cast<float>(std::sin(theta)),
                1.0f};
            RenderResponse resp = service.render(req);
            if (resp.status != RequestStatus::Ok) {
                std::fprintf(stderr,
                             "bench_serve: orbit render failed\n");
                return 1;
            }
            orbit_tiles_cache += resp.tilesFromCache;
            orbit_tiles_rendered += resp.tilesRendered;
            // Frame pacing: the idle gap between frames is where the
            // speculative tiles get rendered.
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        orbit_stats = service.stats();
        orbit_cache = service.cacheStats();
    }
    double orbit_hit_rate =
        (orbit_tiles_cache + orbit_tiles_rendered)
            ? static_cast<double>(orbit_tiles_cache) /
                  static_cast<double>(orbit_tiles_cache +
                                      orbit_tiles_rendered)
            : 0.0;
    double prefetch_hit_rate =
        orbit_stats.prefetchTilesRendered
            ? static_cast<double>(orbit_stats.prefetchHits) /
                  static_cast<double>(
                      orbit_stats.prefetchTilesRendered)
            : 0.0;

    // --------------------------------------------- telemetry phase
    // Cost of the telemetry layer on the hot serving path, measured
    // closed-loop with enabled/disabled blocks interleaved (best-of
    // per arm shaves scheduler noise), plus a fidelity cross-check:
    // the mergeable histogram's percentiles against the exact
    // sort-based tracker, required to agree within one bucket width.
    std::fprintf(stderr, "bench_serve: telemetry phase...\n");
    double telem_enabled_fps = 0.0, telem_disabled_fps = 0.0;
    double telem_overhead = 0.0;
    size_t telem_samples = 0;
    double telem_hist_p[3] = {0.0, 0.0, 0.0};
    double telem_exact_p[3] = {0.0, 0.0, 0.0};
    bool telem_within_one_bucket = true;
    uint64_t telem_traces = 0;
    {
        RenderServiceConfig cfg;
        cfg.workers = 1;
        cfg.tilePixels = tile;
        cfg.chunkRays = 2048;
        cfg.cacheTiles = 0; // every frame really renders
        RenderService service(registry, cfg);

        RenderRequest req;
        req.sceneId = "lego";
        req.camera = servingCamera(2, image_size / 2);
        service.render(req); // warm

        obs::LatencyHistogram hist;
        PercentileTracker exact;
        const uint64_t traces0 =
            obs::TraceRing::global().completedCount();

        // Strictly alternating enabled/disabled frames spread both
        // arms evenly across any thermal or scheduler drift; the
        // minimum per-frame latency of each arm is then compared.
        // Min-latency is the lowest-variance paired estimator here:
        // scheduler noise only ever inflates a frame, while the
        // telemetry cost (a few allocations and mutex hops per
        // request) shifts the whole distribution, floor included.
        const int frames_per_arm = 40;
        std::vector<double> arm_ms[2];
        arm_ms[0].reserve(frames_per_arm);
        arm_ms[1].reserve(frames_per_arm);
        for (int i = 0; i < 2 * frames_per_arm; i++) {
            const bool on = (i % 2) != 0;
            obs::setEnabled(on);
            const double f0 = now();
            RenderResponse resp = service.render(req);
            const double ms = (now() - f0) * 1e3;
            obs::setEnabled(true);
            if (resp.status != RequestStatus::Ok) {
                std::fprintf(stderr,
                             "bench_serve: telemetry render failed\n");
                std::exit(1);
            }
            arm_ms[on ? 1 : 0].push_back(ms);
            if (on) {
                hist.record(ms);
                exact.add(ms);
            }
        }
        const double min_on =
            *std::min_element(arm_ms[1].begin(), arm_ms[1].end());
        const double min_off =
            *std::min_element(arm_ms[0].begin(), arm_ms[0].end());
        telem_enabled_fps = min_on > 0.0 ? 1e3 / min_on : 0.0;
        telem_disabled_fps = min_off > 0.0 ? 1e3 / min_off : 0.0;
        telem_overhead =
            min_off > 0.0 ? std::max(0.0, min_on / min_off - 1.0)
                          : 0.0;
        telem_traces =
            obs::TraceRing::global().completedCount() - traces0;

        obs::HistogramSnapshot snap = hist.snapshot();
        telem_samples = exact.count();
        // Under -DINSTANT3D_DISABLE_TELEMETRY nothing records; the
        // fidelity check is then vacuous rather than failing.
        if (snap.count > 0) {
            const double ps[3] = {50.0, 95.0, 99.0};
            for (int i = 0; i < 3; i++) {
                telem_exact_p[i] = exact.percentile(ps[i]);
                telem_hist_p[i] = snap.percentile(ps[i]);
                const int b = obs::LatencyHistogram::bucketIndex(
                    telem_exact_p[i]);
                const double width =
                    obs::LatencyHistogram::bucketRight(b) -
                    obs::LatencyHistogram::bucketLeft(b);
                if (std::abs(telem_hist_p[i] - telem_exact_p[i]) >
                    width)
                    telem_within_one_bucket = false;
            }
        }
    }

    // ------------------------------------------------------- report
    std::string json;
    char buf[2048];
    std::snprintf(
        buf, sizeof(buf),
        "{\n"
        "  \"bench\": \"serve_latency\",\n"
        "  \"hardware_concurrency\": %u,\n"
        "  \"scenes\": 2,\n"
        "  \"image\": {\"width\": %d, \"height\": %d, \"tile\": %d},\n"
        "  \"baseline_renderimage_1t\": {\"frames\": %d, "
        "\"seconds\": %.4f, \"rays_per_s\": %.1f},\n"
        "  \"served_closed_loop_1t\": {\"rays_per_s\": %.1f, "
        "\"chunks\": %llu, \"cross_request_chunks\": %llu},\n",
        std::thread::hardware_concurrency(), image_size, image_size,
        tile, base_frames, base_seconds, base_rays_per_s,
        served_rays_per_s,
        static_cast<unsigned long long>(closed_chunks),
        static_cast<unsigned long long>(closed_cross));
    json += buf;
    std::snprintf(
        buf, sizeof(buf),
        "  \"open_loop\": {\n"
        "    \"workers\": %d,\n"
        "    \"offered_rps\": %.2f,\n"
        "    \"duration_s\": %.3f,\n"
        "    \"submitted\": %llu,\n"
        "    \"completed\": %llu,\n"
        "    \"rejected\": %llu,\n"
        "    \"deadline_exceeded\": %llu,\n"
        "    \"throughput_rps\": %.2f,\n"
        "    \"tiles_rendered\": %llu,\n"
        "    \"tiles_from_cache\": %llu,\n"
        "    \"cross_request_chunks\": %llu,\n"
        "    \"queue_depth_highwater\": %llu,\n"
        "    \"latency_ms\": {\n"
        "      \"all\": {\"count\": %zu, \"p50\": %.3f, "
        "\"p95\": %.3f, \"p99\": %.3f},\n",
        open_workers, offered_rps, open_elapsed,
        static_cast<unsigned long long>(submitted),
        static_cast<unsigned long long>(completed),
        static_cast<unsigned long long>(rejected),
        static_cast<unsigned long long>(expired),
        completed / (open_elapsed > 0 ? open_elapsed : 1.0),
        static_cast<unsigned long long>(open_stats.tilesRendered),
        static_cast<unsigned long long>(open_stats.tilesFromCache),
        static_cast<unsigned long long>(open_stats.crossRequestChunks),
        static_cast<unsigned long long>(open_stats.queueDepthHighwater),
        all_ms.size(), percentile(all_ms, 50), percentile(all_ms, 95),
        percentile(all_ms, 99));
    json += buf;
    for (int t = 0; t < numQualityTiers; t++) {
        std::snprintf(
            buf, sizeof(buf),
            "      \"%s\": {\"count\": %zu, \"p50\": %.3f, "
            "\"p95\": %.3f, \"p99\": %.3f}%s\n",
            tiers[t].name, tiers[t].ms.size(),
            percentile(tiers[t].ms, 50), percentile(tiers[t].ms, 95),
            percentile(tiers[t].ms, 99),
            t + 1 < numQualityTiers ? "," : "");
        json += buf;
    }
    std::snprintf(
        buf, sizeof(buf),
        "    },\n"
        "    \"cache\": {\"hits\": %llu, \"misses\": %llu, "
        "\"insertions\": %llu, \"evictions\": %llu, "
        "\"entries\": %zu}\n"
        "  },\n"
        "  \"overload\": {\"submitted\": %llu, \"rejected\": %llu, "
        "\"retry_after_ms\": 5},\n"
        "  \"overload_degraded\": {\n"
        "    \"submitted\": %llu,\n"
        "    \"completed\": %llu,\n"
        "    \"rejected\": %llu,\n"
        "    \"served_full\": %llu,\n"
        "    \"served_half\": %llu,\n"
        "    \"served_preview\": %llu,\n"
        "    \"admission_degradations\": %llu,\n"
        "    \"completion_rate\": %.3f\n"
        "  },\n",
        static_cast<unsigned long long>(open_cache.hits),
        static_cast<unsigned long long>(open_cache.misses),
        static_cast<unsigned long long>(open_cache.insertions),
        static_cast<unsigned long long>(open_cache.evictions),
        open_cache.entries,
        static_cast<unsigned long long>(overload_submitted),
        static_cast<unsigned long long>(overload_rejected),
        static_cast<unsigned long long>(degraded_submitted),
        static_cast<unsigned long long>(degraded_completed),
        static_cast<unsigned long long>(degraded_rejected),
        static_cast<unsigned long long>(degraded_per_tier[0]),
        static_cast<unsigned long long>(degraded_per_tier[1]),
        static_cast<unsigned long long>(degraded_per_tier[2]),
        static_cast<unsigned long long>(degraded_admissions),
        degraded_completion_rate);
    json += buf;

    // Fleet block: per-tier latency with and without hedging over the
    // same stall schedule, plus availability under the kill pass.
    const char *tier_names[numQualityTiers] = {"full", "half",
                                               "preview"};
    auto fleet_block = [&](const char *name, const FleetPass &pass,
                           bool last) {
        std::snprintf(
            buf, sizeof(buf),
            "    \"%s\": {\n"
            "      \"submitted\": %llu,\n"
            "      \"completed\": %llu,\n"
            "      \"rejected\": %llu,\n"
            "      \"failovers\": %llu,\n"
            "      \"retries\": %llu,\n"
            "      \"hedges_issued\": %llu,\n"
            "      \"hedges_won\": %llu,\n"
            "      \"shards_crashed\": %llu,\n"
            "      \"latency_ms\": {\n",
            name, static_cast<unsigned long long>(pass.submitted),
            static_cast<unsigned long long>(pass.completed),
            static_cast<unsigned long long>(pass.rejected),
            static_cast<unsigned long long>(pass.stats.failovers),
            static_cast<unsigned long long>(pass.stats.retries),
            static_cast<unsigned long long>(pass.stats.hedgesIssued),
            static_cast<unsigned long long>(pass.stats.hedgesWon),
            static_cast<unsigned long long>(pass.stats.shardsCrashed));
        json += buf;
        for (int t = 0; t < numQualityTiers; t++) {
            std::snprintf(
                buf, sizeof(buf),
                "        \"%s\": {\"count\": %zu, \"p50\": %.3f, "
                "\"p95\": %.3f, \"p99\": %.3f}%s\n",
                tier_names[t], pass.tierMs[t].size(),
                percentile(pass.tierMs[t], 50),
                percentile(pass.tierMs[t], 95),
                percentile(pass.tierMs[t], 99),
                t + 1 < numQualityTiers ? "," : "");
            json += buf;
        }
        json += "      }\n";
        json += last ? "    }\n" : "    },\n";
    };
    std::snprintf(
        buf, sizeof(buf),
        "  \"fleet\": {\n"
        "    \"shards\": %d,\n"
        "    \"replication\": %d,\n"
        "    \"workers_per_shard\": %d,\n"
        "    \"offered_rps\": %.2f,\n"
        "    \"duration_s\": %.3f,\n"
        "    \"kill_availability\": %.3f,\n",
        fleet_shards, fleet_replication, fleet_workers_per_shard,
        fleet_rps, fleet_seconds, fleet_kill_completion);
    json += buf;
    fleet_block("unhedged", fleet_unhedged, false);
    fleet_block("hedged", fleet_hedged, false);
    fleet_block("kill", fleet_kill, true);
    json += "  },\n";

    // Capacity block: the over-budget scene sweep with eviction and
    // cold-start churn. capacity_completion and cold_start_p99_ms
    // feed the smoke gate.
    std::snprintf(
        buf, sizeof(buf),
        "  \"capacity\": {\n"
        "    \"scenes\": %d,\n"
        "    \"hot_scenes\": %d,\n"
        "    \"scene_bytes\": %zu,\n"
        "    \"budget_bytes\": %zu,\n"
        "    \"overcommit\": %.2f,\n"
        "    \"offered_rps\": %.2f,\n"
        "    \"duration_s\": %.3f,\n"
        "    \"elapsed_s\": %.3f,\n"
        "    \"submitted\": %llu,\n"
        "    \"completed\": %llu,\n"
        "    \"failed\": %llu,\n"
        "    \"cold_start_responses\": %llu,\n"
        "    \"retry_rounds\": %llu,\n"
        "    \"completion\": %.3f,\n",
        cap_scenes, cap_hot, cap_scene_bytes, cap_budget,
        cap_budget ? static_cast<double>(cap_scene_bytes) *
                         cap_scenes / static_cast<double>(cap_budget)
                   : 0.0,
        cap_rps, cap_seconds, cap_elapsed,
        static_cast<unsigned long long>(cap_submitted),
        static_cast<unsigned long long>(cap_completed),
        static_cast<unsigned long long>(cap_failed),
        static_cast<unsigned long long>(cap_cold_responses),
        static_cast<unsigned long long>(cap_retry_rounds),
        capacity_completion);
    json += buf;
    std::snprintf(
        buf, sizeof(buf),
        "    \"cold_start_latency_ms\": {\"count\": %zu, "
        "\"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f},\n"
        "    \"service\": {\"cold_start\": %llu, "
        "\"completed\": %llu},\n"
        "    \"registry\": {\n"
        "      \"warm\": %zu,\n"
        "      \"cold\": %zu,\n"
        "      \"bytes_warm\": %zu,\n"
        "      \"evictions\": %llu,\n"
        "      \"evictions_while_referenced\": %llu,\n"
        "      \"cold_loads_started\": %llu,\n"
        "      \"reloads\": %llu,\n"
        "      \"single_flight_joins\": %llu,\n"
        "      \"load_failures\": %llu,\n"
        "      \"ewma_load_ms\": %.3f\n"
        "    }\n"
        "  },\n",
        cold_ms.size(), percentile(cold_ms, 50),
        percentile(cold_ms, 95), cold_start_p99_ms,
        static_cast<unsigned long long>(cap_serve.requestsColdStart),
        static_cast<unsigned long long>(cap_serve.requestsCompleted),
        cap_reg.warm, cap_reg.cold, cap_reg.bytesWarm,
        static_cast<unsigned long long>(cap_reg.evictions),
        static_cast<unsigned long long>(
            cap_reg.evictionsWhileReferenced),
        static_cast<unsigned long long>(cap_reg.coldLoadsStarted),
        static_cast<unsigned long long>(cap_reg.reloads),
        static_cast<unsigned long long>(cap_reg.singleFlightJoins),
        static_cast<unsigned long long>(cap_reg.loadFailures),
        cap_reg.ewmaLoadMs);
    json += buf;

    // Orbit block: cross-frame cache reuse on the coarse Preview
    // lattice plus speculative-prefetch accounting.
    const int pv_tier = static_cast<int>(QualityTier::Preview);
    std::snprintf(
        buf, sizeof(buf),
        "  \"orbit\": {\n"
        "    \"frames\": %d,\n"
        "    \"workers\": %d,\n"
        "    \"preview_lattice\": %.0f,\n"
        "    \"tiles_from_cache\": %llu,\n"
        "    \"tiles_rendered\": %llu,\n"
        "    \"preview_hit_rate\": %.3f,\n"
        "    \"cache_hits_preview\": %llu,\n"
        "    \"cache_misses_preview\": %llu,\n"
        "    \"prefetch\": {\n"
        "      \"enqueued\": %llu,\n"
        "      \"rendered\": %llu,\n"
        "      \"cancelled\": %llu,\n"
        "      \"insertions\": %llu,\n"
        "      \"hits\": %llu,\n"
        "      \"wasted\": %llu,\n"
        "      \"hit_rate\": %.3f\n"
        "    }\n"
        "  },\n",
        orbit_frames, orbit_workers,
        static_cast<double>(orbit_lattice),
        static_cast<unsigned long long>(orbit_tiles_cache),
        static_cast<unsigned long long>(orbit_tiles_rendered),
        orbit_hit_rate,
        static_cast<unsigned long long>(
            orbit_stats.cacheHitsPerTier[pv_tier]),
        static_cast<unsigned long long>(
            orbit_stats.cacheMissesPerTier[pv_tier]),
        static_cast<unsigned long long>(
            orbit_stats.prefetchTilesEnqueued),
        static_cast<unsigned long long>(
            orbit_stats.prefetchTilesRendered),
        static_cast<unsigned long long>(
            orbit_stats.prefetchTilesCancelled),
        static_cast<unsigned long long>(
            orbit_cache.prefetchInsertions),
        static_cast<unsigned long long>(orbit_stats.prefetchHits),
        static_cast<unsigned long long>(orbit_stats.prefetchWasted),
        prefetch_hit_rate);
    json += buf;

    // Telemetry block: layer overhead on the closed-loop path and
    // histogram-vs-exact percentile fidelity. telemetry_overhead
    // feeds the smoke gate (<= 2%).
    std::snprintf(
        buf, sizeof(buf),
        "  \"telemetry\": {\n"
        "    \"enabled_fps\": %.2f,\n"
        "    \"disabled_fps\": %.2f,\n"
        "    \"telemetry_overhead\": %.4f,\n"
        "    \"traces_completed\": %llu,\n"
        "    \"histogram_check\": {\n"
        "      \"samples\": %zu,\n"
        "      \"within_one_bucket\": %s,\n"
        "      \"hist\": {\"p50\": %.3f, \"p95\": %.3f, "
        "\"p99\": %.3f},\n"
        "      \"exact\": {\"p50\": %.3f, \"p95\": %.3f, "
        "\"p99\": %.3f}\n"
        "    }\n"
        "  },\n",
        telem_enabled_fps, telem_disabled_fps, telem_overhead,
        static_cast<unsigned long long>(telem_traces),
        telem_samples, telem_within_one_bucket ? "true" : "false",
        telem_hist_p[0], telem_hist_p[1], telem_hist_p[2],
        telem_exact_p[0], telem_exact_p[1], telem_exact_p[2]);
    json += buf;

    json += "  \"fault_points\": {\n";
    for (int p = 0; p < fault::numPoints; p++) {
        auto point = static_cast<fault::Point>(p);
        std::snprintf(buf, sizeof(buf),
                      "    \"%s\": {\"hits\": %llu, \"fires\": %llu}%s\n",
                      fault::pointName(point),
                      static_cast<unsigned long long>(
                          fault::hitCount(point)),
                      static_cast<unsigned long long>(
                          fault::fireCount(point)),
                      p + 1 < fault::numPoints ? "," : "");
        json += buf;
    }
    std::snprintf(
        buf, sizeof(buf),
        "  },\n"
        "  \"speedups\": {\n"
        "    \"served_vs_renderImage_1t\": %.3f,\n"
        "    \"overload_degraded_completion\": %.3f,\n"
        "    \"fleet_kill_completion\": %.3f,\n"
        "    \"capacity_completion\": %.3f,\n"
        "    \"cold_start_p99_ms\": %.3f,\n"
        "    \"orbit_preview_hit_rate\": %.3f,\n"
        "    \"prefetch_hit_rate\": %.3f,\n"
        "    \"prefetch_waste\": %llu\n"
        "  }\n"
        "}\n",
        served_vs_render_image, degraded_completion_rate,
        fleet_kill_completion, capacity_completion,
        cold_start_p99_ms, orbit_hit_rate, prefetch_hit_rate,
        static_cast<unsigned long long>(orbit_stats.prefetchWasted));
    json += buf;

    std::fputs(json.c_str(), stdout);
    if (FILE *f = std::fopen(out_path.c_str(), "w")) {
        std::fputs(json.c_str(), f);
        std::fclose(f);
        std::fprintf(stderr, "wrote %s\n", out_path.c_str());
    } else {
        std::fprintf(stderr, "could not write %s\n", out_path.c_str());
        return 1;
    }
    return 0;
}
