/**
 * @file
 * Cross-module property tests and failure injection:
 *  - volume-rendering invariants (weight normalization, transmittance
 *    monotonicity, background energy conservation);
 *  - hash-table load statistics under Eq. 3;
 *  - accelerator-model monotonicities (resources never hurt);
 *  - workload-model scaling laws;
 *  - death tests for user-error paths (fatal) across modules.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "accel/accelerator.hh"
#include "accel/sram.hh"
#include "common/rng.hh"
#include "nerf/renderer.hh"
#include "scene/scene.hh"

namespace instant3d {
namespace {

FieldConfig
tinyField()
{
    HashEncodingConfig grid;
    grid.numLevels = 3;
    grid.log2TableSize = 10;
    grid.baseResolution = 8;
    FieldConfig cfg = FieldConfig::instant3dDefault(grid);
    cfg.hiddenDim = 16;
    return cfg;
}

// ---- Rendering invariants ----------------------------------------------

TEST(RenderPropertyTest, WeightsFormSubPartition)
{
    // For any field and ray: sum_k w_k + T_final == 1 exactly, i.e.
    // compositing conserves radiance energy.
    NerfField field(tinyField(), 17);
    Rng rinit(5);
    for (auto &p : field.groupParams(ParamGroupId::DensityGrid))
        p = rinit.nextFloat(-0.5f, 1.0f);

    RendererConfig rcfg;
    rcfg.samplesPerRay = 24;
    VolumeRenderer renderer(rcfg);

    Rng r(6);
    for (int trial = 0; trial < 30; trial++) {
        Ray ray{{r.nextFloat(), r.nextFloat(), -0.3f},
                Vec3(r.nextFloat() - 0.5f, r.nextFloat() - 0.5f, 1.0f)
                    .normalized()};
        RayRecord rec;
        renderer.renderRay(field, ray, nullptr, &rec);
        double weight_sum = 0.0;
        for (const auto &s : rec.samples)
            weight_sum += static_cast<double>(s.transmittance) * s.alpha;
        EXPECT_NEAR(weight_sum + rec.finalTransmittance, 1.0, 1e-4)
            << "trial " << trial;
    }
}

TEST(RenderPropertyTest, TransmittanceMonotonicallyDecreases)
{
    NerfField field(tinyField(), 18);
    for (auto &p : field.groupParams(ParamGroupId::DensityGrid))
        p = 0.4f;
    RendererConfig rcfg;
    rcfg.samplesPerRay = 32;
    VolumeRenderer renderer(rcfg);
    Ray ray{{0.5f, 0.5f, -0.4f}, {0.0f, 0.0f, 1.0f}};
    RayRecord rec;
    renderer.renderRay(field, ray, nullptr, &rec);
    for (size_t k = 1; k < rec.samples.size(); k++)
        EXPECT_LE(rec.samples[k].transmittance,
                  rec.samples[k - 1].transmittance + 1e-7f);
}

TEST(RenderPropertyTest, CompositingEquationHolds)
{
    // The returned color must equal sum_k w_k c_k + bg * T_final,
    // recomputed independently from the recorded samples (Eq. 1).
    NerfField field(tinyField(), 19);
    Rng rinit(9);
    for (auto &p : field.groupParams(ParamGroupId::DensityGrid))
        p = rinit.nextFloat(-0.4f, 0.8f);

    RendererConfig rcfg;
    rcfg.background = {1.0f, 0.25f, 0.0f};
    rcfg.samplesPerRay = 24;
    VolumeRenderer renderer(rcfg);

    Rng r(10);
    for (int trial = 0; trial < 20; trial++) {
        Ray ray{{r.nextFloat(), r.nextFloat(), -0.4f},
                Vec3(r.nextFloat() - 0.5f, r.nextFloat() - 0.5f, 1.0f)
                    .normalized()};
        RayRecord rec;
        RayResult res = renderer.renderRay(field, ray, nullptr, &rec);
        Vec3 recomposed;
        for (const auto &s : rec.samples)
            recomposed += s.rgb * (s.transmittance * s.alpha);
        recomposed += rcfg.background * rec.finalTransmittance;
        EXPECT_NEAR(res.color.x, recomposed.x, 1e-4f);
        EXPECT_NEAR(res.color.y, recomposed.y, 1e-4f);
        EXPECT_NEAR(res.color.z, recomposed.z, 1e-4f);
        EXPECT_NEAR(res.opacity, 1.0f - rec.finalTransmittance, 1e-5f);
    }
}

// ---- Hash-table statistics ------------------------------------------------

TEST(HashPropertyTest, LoadIsRoughlyUniform)
{
    // Eq. 3 should spread vertices evenly over the table: fill the
    // table from a dense coordinate sweep and check bucket loads.
    const uint32_t table = 1u << 10;
    std::vector<int> load(table, 0);
    for (uint32_t x = 0; x < 32; x++)
        for (uint32_t y = 0; y < 32; y++)
            for (uint32_t z = 0; z < 32; z++)
                load[HashEncoding::hashCoords(x, y, z, table)]++;
    // 32768 insertions over 1024 buckets: mean 32.
    int mn = load[0], mx = load[0];
    for (int l : load) {
        mn = std::min(mn, l);
        mx = std::max(mx, l);
    }
    EXPECT_GT(mn, 4) << "some buckets starved";
    EXPECT_LT(mx, 160) << "some buckets pathologically hot";
}

TEST(HashPropertyTest, DistinctTablesDecorrelate)
{
    // The same vertex must map differently under different table
    // sizes (no systematic aliasing between branch tables).
    int same = 0;
    const int n = 4096;
    Rng r(77);
    for (int i = 0; i < n; i++) {
        uint32_t x = r.nextU32(1 << 16), y = r.nextU32(1 << 16),
                 z = r.nextU32(1 << 16);
        uint32_t a = HashEncoding::hashCoords(x, y, z, 1u << 12);
        uint32_t b = HashEncoding::hashCoords(x, y, z, 1u << 10);
        if (a == b)
            same++;
    }
    // a == b happens when the two address bits above 2^10 are zero:
    // expect ~n/4.
    EXPECT_NEAR(same, n / 4, n / 10);
}

// ---- Accelerator monotonicities --------------------------------------------

class AcceleratorMonotonicityTest : public ::testing::Test
{
  protected:
    TraceCalibration calib = TraceCalibration::defaults();
    TrainingWorkload w = makeInstant3dWorkload(
        "NeRF-Synthetic", instant3dShippedConfig());
};

TEST_F(AcceleratorMonotonicityTest, HigherFrequencyNeverSlower)
{
    AcceleratorConfig slow, fast;
    slow.frequencyGHz = 0.4;
    fast.frequencyGHz = 1.6;
    EXPECT_GT(Accelerator(slow, calib).trainingSeconds(w),
              Accelerator(fast, calib).trainingSeconds(w));
}

TEST_F(AcceleratorMonotonicityTest, EnablingUnitsNeverSlower)
{
    AcceleratorConfig off, on;
    off.enableFrm = off.enableBum = off.enableFusion = false;
    double t_off = Accelerator(off, calib).trainingSeconds(w);
    double t_on = Accelerator(on, calib).trainingSeconds(w);
    EXPECT_LE(t_on, t_off);

    // Each unit individually also helps or is neutral.
    for (int unit = 0; unit < 3; unit++) {
        AcceleratorConfig cfg = off;
        if (unit == 0)
            cfg.enableFrm = true;
        if (unit == 1)
            cfg.enableBum = true;
        if (unit == 2)
            cfg.enableFusion = true;
        EXPECT_LE(Accelerator(cfg, calib).trainingSeconds(w),
                  t_off * 1.0001)
            << "unit " << unit;
    }
}

TEST_F(AcceleratorMonotonicityTest, MoreWorkTakesLonger)
{
    TrainingWorkload big = w;
    big.pointsPerIter *= 2.0;
    Accelerator accel{AcceleratorConfig{}, calib};
    EXPECT_GT(accel.trainingSeconds(big), accel.trainingSeconds(w));
    TrainingWorkload more_iters = w;
    more_iters.iterations *= 2;
    EXPECT_NEAR(accel.trainingSeconds(more_iters),
                2.0 * accel.trainingSeconds(w), 1e-6);
}

TEST_F(AcceleratorMonotonicityTest, BetterCalibrationNeverSlower)
{
    TraceCalibration worse = calib;
    worse.frmUtil8 *= 0.5;
    worse.frmUtil16 *= 0.5;
    worse.frmUtil32 *= 0.5;
    worse.bumMergeRatio *= 0.5;
    EXPECT_GE(Accelerator(AcceleratorConfig{}, worse).trainingSeconds(w),
              Accelerator(AcceleratorConfig{}, calib)
                  .trainingSeconds(w));
}

// ---- Workload scaling -------------------------------------------------------

TEST(WorkloadPropertyTest, BytesScaleLinearlyWithPoints)
{
    TrainingWorkload a = makeNgpWorkload("NeRF-Synthetic");
    TrainingWorkload b = a;
    b.pointsPerIter *= 3.0;
    EXPECT_DOUBLE_EQ(b.gridReadBytesPerIter(),
                     3.0 * a.gridReadBytesPerIter());
    EXPECT_DOUBLE_EQ(b.mlpFlopsPerIterFF(), 3.0 * a.mlpFlopsPerIterFF());
}

TEST(WorkloadPropertyTest, UpdateRateOnlyAffectsWrites)
{
    Instant3dConfig half = instant3dShippedConfig();
    Instant3dConfig full = half;
    full.colorUpdateRate = 1.0f;
    TrainingWorkload wh = makeInstant3dWorkload("NeRF-Synthetic", half);
    TrainingWorkload wf = makeInstant3dWorkload("NeRF-Synthetic", full);
    EXPECT_DOUBLE_EQ(wh.gridReadBytesPerIter(),
                     wf.gridReadBytesPerIter());
    EXPECT_LT(wh.gridWriteBytesPerIter(), wf.gridWriteBytesPerIter());
}

// ---- Failure injection (fatal user errors) ---------------------------------

using DeathTest = ::testing::Test;

TEST(DeathTest, UnknownSceneNameIsFatal)
{
    EXPECT_EXIT(makeSyntheticScene("not-a-scene"),
                ::testing::ExitedWithCode(1), "unknown synthetic scene");
}

TEST(DeathTest, UnknownDatasetIsFatal)
{
    EXPECT_EXIT(makeNgpWorkload("not-a-dataset"),
                ::testing::ExitedWithCode(1), "unknown dataset");
}

TEST(DeathTest, BadUpdateRateIsFatal)
{
    EXPECT_EXIT(Instant3dConfig::periodFromRate(0.0f),
                ::testing::ExitedWithCode(1), "update rate");
    EXPECT_EXIT(Instant3dConfig::periodFromRate(1.5f),
                ::testing::ExitedWithCode(1), "update rate");
}

TEST(DeathTest, BadGridRatioIsFatal)
{
    HashEncodingConfig cfg;
    EXPECT_EXIT(cfg.scaledBy(-1.0f), ::testing::ExitedWithCode(1),
                "ratio must be positive");
}

TEST(DeathTest, NonPowerOfTwoBanksIsFatal)
{
    EXPECT_EXIT(SramArray(7, 4, 1 << 20),
                ::testing::ExitedWithCode(1), "power of two");
}

} // namespace
} // namespace instant3d
