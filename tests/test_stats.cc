/**
 * @file
 * Direct unit tests of the common/stats toolkit: RunningStats merge
 * associativity, Histogram under/overflow and fractionInRange edges,
 * and PercentileTracker boundary percentiles. These containers back
 * the trace analyzer, the benches, and (by cross-check) the obs
 * histograms, but were previously only exercised indirectly.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/stats.hh"

namespace instant3d {
namespace {

TEST(RunningStatsTest, EmptyAccumulatorIsAllZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, SingleSampleHasZeroVariance)
{
    RunningStats s;
    s.add(7.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 7.5);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 7.5);
    EXPECT_DOUBLE_EQ(s.max(), 7.5);
}

TEST(RunningStatsTest, MatchesDirectComputation)
{
    std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0, 32.0};
    RunningStats s;
    double sum = 0.0;
    for (double x : xs) {
        s.add(x);
        sum += x;
    }
    double mean = sum / xs.size();
    double m2 = 0.0;
    for (double x : xs)
        m2 += (x - mean) * (x - mean);
    double var = m2 / (xs.size() - 1);

    EXPECT_EQ(s.count(), xs.size());
    EXPECT_NEAR(s.mean(), mean, 1e-12);
    EXPECT_NEAR(s.variance(), var, 1e-9);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 32.0);
}

TEST(RunningStatsTest, MergeEqualsSequentialAccumulation)
{
    std::vector<double> xs;
    for (int i = 0; i < 100; i++)
        xs.push_back(std::sin(i * 0.37) * 10.0 + i * 0.01);

    RunningStats whole;
    for (double x : xs)
        whole.add(x);

    RunningStats a, b;
    for (size_t i = 0; i < xs.size(); i++)
        (i < 37 ? a : b).add(xs[i]);
    a.merge(b);

    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-10);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), whole.min());
    EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStatsTest, MergeIsAssociativeAcrossSplits)
{
    // (a + b) + c and a + (b + c) over three uneven shards agree --
    // the parallel-reduction contract the trainer's chunk reduce
    // relies on.
    std::vector<double> xs;
    for (int i = 0; i < 90; i++)
        xs.push_back((i % 7) * 1.25 - 3.0);

    auto fill = [&](size_t lo, size_t hi) {
        RunningStats s;
        for (size_t i = lo; i < hi; i++)
            s.add(xs[i]);
        return s;
    };
    RunningStats a = fill(0, 10), b = fill(10, 55), c = fill(55, 90);

    RunningStats left = a;
    left.merge(b);
    left.merge(c);

    RunningStats bc = b;
    bc.merge(c);
    RunningStats right = a;
    right.merge(bc);

    EXPECT_EQ(left.count(), right.count());
    EXPECT_NEAR(left.mean(), right.mean(), 1e-10);
    EXPECT_NEAR(left.variance(), right.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), right.min());
    EXPECT_DOUBLE_EQ(left.max(), right.max());
}

TEST(RunningStatsTest, MergeWithEmptyIsIdentityBothWays)
{
    RunningStats s;
    s.add(3.0);
    s.add(5.0);

    RunningStats copy = s, empty;
    copy.merge(empty);
    EXPECT_EQ(copy.count(), 2u);
    EXPECT_NEAR(copy.mean(), 4.0, 1e-12);

    RunningStats other;
    other.merge(s);
    EXPECT_EQ(other.count(), 2u);
    EXPECT_NEAR(other.mean(), 4.0, 1e-12);
    EXPECT_DOUBLE_EQ(other.min(), 3.0);
    EXPECT_DOUBLE_EQ(other.max(), 5.0);
}

TEST(HistogramTest, SamplesLandInExpectedBins)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);  // bin 0
    h.add(5.5);  // bin 5
    h.add(9.99); // bin 9

    EXPECT_EQ(h.totalCount(), 3u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(5), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.underflowCount(), 0u);
    EXPECT_EQ(h.overflowCount(), 0u);
    EXPECT_DOUBLE_EQ(h.binWidth(), 1.0);
    EXPECT_DOUBLE_EQ(h.binLeft(5), 5.0);
}

TEST(HistogramTest, OutOfRangeSamplesSaturateUnderOverflow)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-0.001);
    h.add(-100.0);
    h.add(2.0);

    EXPECT_EQ(h.underflowCount(), 2u);
    EXPECT_EQ(h.overflowCount(), 1u);
    EXPECT_EQ(h.totalCount(), 3u);
    for (int b = 0; b < h.numBins(); b++)
        EXPECT_EQ(h.binCount(b), 0u);
}

TEST(HistogramTest, FractionInRangeCountsBinCenters)
{
    Histogram h(0.0, 4.0, 4); // centers at 0.5, 1.5, 2.5, 3.5
    h.add(0.5);
    h.add(1.5);
    h.add(2.5);
    h.add(3.5);

    EXPECT_DOUBLE_EQ(h.fractionInRange(0.0, 4.0), 1.0);
    EXPECT_DOUBLE_EQ(h.fractionInRange(1.0, 3.0), 0.5);
    // Interval touching exactly one bin center.
    EXPECT_DOUBLE_EQ(h.fractionInRange(2.5, 2.5), 0.25);
    // Interval between centers covers nothing.
    EXPECT_DOUBLE_EQ(h.fractionInRange(2.6, 3.4), 0.0);
}

TEST(HistogramTest, FractionInRangeDenominatorIncludesOutOfRange)
{
    Histogram h(0.0, 4.0, 4);
    h.add(0.5);
    h.add(0.5);
    h.add(-1.0); // underflow still counts in the denominator
    h.add(9.0);  // overflow too

    EXPECT_DOUBLE_EQ(h.fractionInRange(0.0, 4.0), 0.5);
}

TEST(HistogramTest, FractionInRangeEmptyHistogramIsZero)
{
    Histogram h(0.0, 1.0, 2);
    EXPECT_DOUBLE_EQ(h.fractionInRange(0.0, 1.0), 0.0);
}

TEST(PercentileTrackerTest, BoundaryPercentilesAreMinAndMax)
{
    PercentileTracker t;
    for (double x : {5.0, 1.0, 3.0, 2.0, 4.0})
        t.add(x);

    EXPECT_DOUBLE_EQ(t.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(t.percentile(100.0), 5.0);
    EXPECT_DOUBLE_EQ(t.percentile(50.0), 3.0);
}

TEST(PercentileTrackerTest, SingleSampleIsEveryPercentile)
{
    PercentileTracker t;
    t.add(42.0);
    EXPECT_DOUBLE_EQ(t.percentile(0.0), 42.0);
    EXPECT_DOUBLE_EQ(t.percentile(37.0), 42.0);
    EXPECT_DOUBLE_EQ(t.percentile(100.0), 42.0);
}

TEST(PercentileTrackerTest, InterpolatesBetweenOrderStatistics)
{
    PercentileTracker t;
    t.add(0.0);
    t.add(10.0);
    // Rank for p=25 over two samples: 0.25 * (2 - 1) = 0.25.
    EXPECT_NEAR(t.percentile(25.0), 2.5, 1e-12);
    EXPECT_NEAR(t.percentile(75.0), 7.5, 1e-12);
}

} // namespace
} // namespace instant3d
