/**
 * @file
 * Tests of the calibrated GPU device models against the paper's
 * published anchors: Instant-NGP totals (Tab 4 / Fig 16 consistency),
 * the ~80% Step 3-1 share (Fig 4), the Instant-3D algorithm savings
 * (Tab 1 / Tab 2 / Tab 5), and device specs (Tab 3).
 */

#include <gtest/gtest.h>

#include "devices/registry.hh"

namespace instant3d {
namespace {

TEST(DeviceSpecTest, Tab3Specifications)
{
    EXPECT_EQ(jetsonNano().spec().technologyNm, 20);
    EXPECT_DOUBLE_EQ(jetsonNano().spec().typicalPowerW, 10.0);
    EXPECT_DOUBLE_EQ(jetsonNano().spec().dramBandwidthGBs, 25.6);

    EXPECT_EQ(jetsonTx2().spec().technologyNm, 16);
    EXPECT_DOUBLE_EQ(jetsonTx2().spec().typicalPowerW, 15.0);

    EXPECT_EQ(xavierNx().spec().technologyNm, 12);
    EXPECT_DOUBLE_EQ(xavierNx().spec().typicalPowerW, 20.0);
    EXPECT_DOUBLE_EQ(xavierNx().spec().dramBandwidthGBs, 59.7);

    const DeviceSpec &accel = instant3dAcceleratorSpec();
    EXPECT_EQ(accel.technologyNm, 28);
    EXPECT_DOUBLE_EQ(accel.areaMm2, 6.8);
    EXPECT_DOUBLE_EQ(accel.sramMB, 1.5);
    EXPECT_DOUBLE_EQ(accel.typicalPowerW, 1.9);
    EXPECT_DOUBLE_EQ(accel.frequencyGHz, 0.8);

    EXPECT_EQ(baselineDevices().size(), 3u);
}

TEST(GpuModelTest, XavierNgpAnchor72s)
{
    // Tab 1 / Tab 4: Instant-NGP on Xavier NX, NeRF-Synthetic: 72 s.
    TrainingWorkload w = makeNgpWorkload("NeRF-Synthetic");
    double total = xavierNx().trainingSeconds(w);
    EXPECT_NEAR(total, 72.0, 3.0);
}

TEST(GpuModelTest, NgpAnchorsAcrossDatasets)
{
    // Tab 4: 72 / 135 / 84 seconds on the three datasets.
    EXPECT_NEAR(xavierNx().trainingSeconds(
                    makeNgpWorkload("NeRF-Synthetic")), 72.0, 3.0);
    EXPECT_NEAR(xavierNx().trainingSeconds(makeNgpWorkload("SILVR")),
                135.0, 8.0);
    EXPECT_NEAR(xavierNx().trainingSeconds(makeNgpWorkload("ScanNet")),
                84.0, 5.0);
}

TEST(GpuModelTest, NanoAndTx2Ordering)
{
    // Fig 16 consistency: Nano ~358 s, TX2 ~211 s (224x / 132x over a
    // 1.6 s accelerator run).
    TrainingWorkload w = makeNgpWorkload("NeRF-Synthetic");
    EXPECT_NEAR(jetsonNano().trainingSeconds(w), 358.0, 20.0);
    EXPECT_NEAR(jetsonTx2().trainingSeconds(w), 211.0, 12.0);
    EXPECT_GT(jetsonNano().trainingSeconds(w),
              jetsonTx2().trainingSeconds(w));
    EXPECT_GT(jetsonTx2().trainingSeconds(w),
              xavierNx().trainingSeconds(w));
}

TEST(GpuModelTest, GridStepDominatesFig4)
{
    // Fig 4: Step 3-1 + its BP is ~80% of runtime on every device.
    TrainingWorkload w = makeNgpWorkload("NeRF-Synthetic");
    for (const auto *dev : baselineDevices()) {
        double share = dev->breakdown(w).gridShare();
        EXPECT_GT(share, 0.70) << dev->spec().name;
        EXPECT_LT(share, 0.90) << dev->spec().name;
    }
}

TEST(GpuModelTest, Tab1GridSizeRatios)
{
    // Tab 1 on Xavier NX: 1:0.25 keeps runtime lower at ~63 s.
    Instant3dConfig cfg;
    cfg.colorSizeRatio = 0.25f;
    cfg.colorUpdateRate = 1.0f; // isolate the size effect
    double t = xavierNx().trainingSeconds(
        makeInstant3dWorkload("NeRF-Synthetic", cfg));
    EXPECT_NEAR(t, 63.0, 3.5);

    // Reduction relative to the 72 s baseline: paper says 12.5%.
    double base = xavierNx().trainingSeconds(
        makeNgpWorkload("NeRF-Synthetic"));
    double reduction = 1.0 - t / base;
    EXPECT_GT(reduction, 0.07);
    EXPECT_LT(reduction, 0.18);
}

TEST(GpuModelTest, Tab2UpdateFrequencyRatios)
{
    // Tab 2 on Xavier NX: F_D:F_C = 1:0.5 at ~65 s (9.7% saving).
    Instant3dConfig cfg;
    cfg.colorSizeRatio = 1.0f; // isolate the frequency effect
    cfg.colorUpdateRate = 0.5f;
    double t = xavierNx().trainingSeconds(
        makeInstant3dWorkload("NeRF-Synthetic", cfg));
    double base = xavierNx().trainingSeconds(
        makeNgpWorkload("NeRF-Synthetic"));
    double reduction = 1.0 - t / base;
    EXPECT_GT(reduction, 0.05);
    EXPECT_LT(reduction, 0.16);
}

TEST(GpuModelTest, Tab5AlgorithmNormalizedRuntime)
{
    // Tab 5: Instant-3D algorithm @ Xavier NX is 83.3 / 82.2 / 85.7 %
    // of Instant-NGP on the three datasets.
    for (const auto &ds : workloadDatasetNames()) {
        double ngp = xavierNx().trainingSeconds(makeNgpWorkload(ds));
        double i3d = xavierNx().trainingSeconds(
            makeInstant3dWorkload(ds, instant3dShippedConfig()));
        double normalized = i3d / ngp;
        EXPECT_GT(normalized, 0.76) << ds;
        EXPECT_LT(normalized, 0.90) << ds;
    }
}

TEST(GpuModelTest, EnergyIsPowerTimesTime)
{
    TrainingWorkload w = makeNgpWorkload("NeRF-Synthetic");
    double t = xavierNx().trainingSeconds(w);
    EXPECT_DOUBLE_EQ(xavierNx().trainingEnergyJoules(w), 20.0 * t);
}

TEST(GpuModelTest, SmallerTablesNeverSlower)
{
    // Locality monotonicity: shrinking the color table can only help.
    Instant3dConfig big, small;
    big.colorSizeRatio = 0.5f;
    small.colorSizeRatio = 0.125f;
    big.colorUpdateRate = small.colorUpdateRate = 1.0f;
    double t_big = xavierNx().trainingSeconds(
        makeInstant3dWorkload("NeRF-Synthetic", big));
    double t_small = xavierNx().trainingSeconds(
        makeInstant3dWorkload("NeRF-Synthetic", small));
    EXPECT_LT(t_small, t_big);
}

TEST(GpuModelTest, BreakdownFractionsSumToOne)
{
    TrainingWorkload w = makeNgpWorkload("NeRF-Synthetic");
    StepBreakdown b = xavierNx().breakdown(w);
    double total = 0.0;
    for (auto s : allPipelineSteps())
        total += b.fraction(s);
    EXPECT_NEAR(total, 1.0, 1e-9);
}

} // namespace
} // namespace instant3d
