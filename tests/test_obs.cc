/**
 * @file
 * Telemetry layer tests. The load-bearing contracts:
 *
 *  - **Bit-neutrality**: a served Full-tier pixel is bit-identical
 *    with telemetry enabled, disabled, or compiled out
 *    (-DINSTANT3D_DISABLE_TELEMETRY), at 1/2/8 workers.
 *  - **Exact merge**: histograms share one fixed bucket layout, so
 *    merging per-shard snapshots equals recording every sample into
 *    one histogram, bucket for bucket.
 *  - **Percentile fidelity**: histogram percentiles agree with the
 *    exact PercentileTracker to within one bucket width.
 *  - **Trace coverage**: every request routed through a fleet leaves
 *    a completed trace with router + queue + render spans, and the
 *    Chrome trace-event export carries those spans.
 *  - RenderService::render() stamps totalMs end to end (the blocking
 *    path covers queue + render + scatter, not just the last tile).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hh"
#include "nerf/trainer.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "scene/scene.hh"
#include "serve/shard_router.hh"

namespace instant3d {
namespace {

/** Restore the default-enabled state however a test exits. */
struct TelemetryGuard
{
    ~TelemetryGuard() { obs::setEnabled(true); }
};

// ------------------------------------------------- histogram buckets

TEST(LatencyHistogramTest, BucketEdgesRoundTripThroughIndex)
{
    using H = obs::LatencyHistogram;
    for (int b = 1; b < obs::histNumBuckets - 1; b++) {
        const double left = H::bucketLeft(b);
        const double right = H::bucketRight(b);
        ASSERT_LT(left, right) << "bucket " << b;
        EXPECT_EQ(H::bucketIndex(left), b) << "left edge of " << b;
        // A point strictly inside stays inside.
        EXPECT_EQ(H::bucketIndex(0.5 * (left + right)), b);
    }
    // Adjacent buckets tile the interval: the right edge of b is the
    // left edge of b+1.
    for (int b = 1; b < obs::histNumBuckets - 2; b++)
        EXPECT_EQ(H::bucketRight(b), H::bucketLeft(b + 1));
}

TEST(LatencyHistogramTest, UnderOverflowAndMonotonicity)
{
    using H = obs::LatencyHistogram;
    EXPECT_EQ(H::bucketIndex(0.0), 0);
    EXPECT_EQ(H::bucketIndex(-5.0), 0);
    EXPECT_EQ(H::bucketIndex(1e-9), 0); // Below 2^-10 ms.
    EXPECT_EQ(H::bucketIndex(2e6), obs::histNumBuckets - 1); // > 2^20.

    int prev = 0;
    for (double ms = 1e-4; ms < 2e6; ms *= 1.17) {
        const int b = H::bucketIndex(ms);
        EXPECT_GE(b, prev) << "ms=" << ms;
        prev = b;
    }
    EXPECT_EQ(prev, obs::histNumBuckets - 1);
}

#ifndef INSTANT3D_DISABLE_TELEMETRY

TEST(LatencyHistogramTest, MergeIsExactlySingleHistogram)
{
    TelemetryGuard guard;
    obs::setEnabled(true);

    // A deterministic sample set spanning several octaves, recorded
    // once into a single histogram and once split across three
    // "shards".
    std::vector<double> samples;
    for (int i = 0; i < 500; i++)
        samples.push_back(0.05 * (1 + i % 97) * (1 + i % 13));

    obs::LatencyHistogram whole;
    obs::LatencyHistogram shard[3];
    for (size_t i = 0; i < samples.size(); i++) {
        whole.record(samples[i]);
        shard[i % 3].record(samples[i]);
    }

    obs::HistogramSnapshot merged = shard[0].snapshot();
    merged.merge(shard[1].snapshot());
    merged.merge(shard[2].snapshot());

    obs::HistogramSnapshot expect = whole.snapshot();
    EXPECT_EQ(merged.count, expect.count);
    for (int b = 0; b < obs::histNumBuckets; b++)
        ASSERT_EQ(merged.buckets[b], expect.buckets[b])
            << "bucket " << b;
    // Identical buckets imply identical percentiles -- spot-check.
    for (double p : {0.0, 50.0, 95.0, 99.0, 100.0})
        EXPECT_EQ(merged.percentile(p), expect.percentile(p));
}

TEST(LatencyHistogramTest, PercentilesWithinOneBucketOfExactTracker)
{
    TelemetryGuard guard;
    obs::setEnabled(true);

    obs::LatencyHistogram hist;
    PercentileTracker exact;
    for (int i = 0; i < 2000; i++) {
        // Latency-shaped spread: ~0.1 ms to ~80 ms.
        const double ms =
            0.1 + (i % 173) * 0.37 + ((i * 7) % 41) * 0.4;
        hist.record(ms);
        exact.add(ms);
    }

    obs::HistogramSnapshot snap = hist.snapshot();
    for (double p : {50.0, 90.0, 95.0, 99.0}) {
        const double truth = exact.percentile(p);
        const double approx = snap.percentile(p);
        const int b = obs::LatencyHistogram::bucketIndex(truth);
        const double width = obs::LatencyHistogram::bucketRight(b) -
                             obs::LatencyHistogram::bucketLeft(b);
        EXPECT_NEAR(approx, truth, width)
            << "p" << p << " truth=" << truth;
    }
}

TEST(CounterTest, ShardedAddsSumAcrossThreads)
{
    TelemetryGuard guard;
    obs::setEnabled(true);

    obs::Counter c;
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; t++)
        threads.emplace_back([&c] {
            for (int i = 0; i < 10000; i++)
                c.add();
        });
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(c.value(), 80000u);

    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, DisabledRecordingIsDropped)
{
    TelemetryGuard guard;
    obs::Counter c;
    obs::LatencyHistogram h;
    obs::setEnabled(false);
    c.add(7);
    h.record(1.0);
    obs::setEnabled(true);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(h.snapshot().count, 0u);
}

TEST(MetricsRegistryTest, ExportCarriesMetricsAndCollectors)
{
    TelemetryGuard guard;
    obs::setEnabled(true);
    auto &reg = obs::MetricsRegistry::global();

    reg.counter("obs_test.events").add(3);
    reg.gauge("obs_test.depth").set(2.5);
    reg.histogram("obs_test.lat_ms").record(4.0);

    // Two collectors contributing the same name sum (the fleet-shard
    // aggregation rule).
    uint64_t h1 = reg.addCollector([](obs::MetricsSink &sink) {
        sink.counter("obs_test.collected", 10);
    });
    uint64_t h2 = reg.addCollector([](obs::MetricsSink &sink) {
        sink.counter("obs_test.collected", 32);
    });

    obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counters.at("obs_test.events"), 3u);
    EXPECT_EQ(snap.counters.at("obs_test.collected"), 42u);
    EXPECT_DOUBLE_EQ(snap.gauges.at("obs_test.depth"), 2.5);
    EXPECT_EQ(snap.histograms.at("obs_test.lat_ms").count, 1u);

    const std::string prom = snap.prometheusText();
    EXPECT_NE(prom.find("instant3d_obs_test_events 3"),
              std::string::npos);
    EXPECT_NE(prom.find("# TYPE instant3d_obs_test_lat_ms summary"),
              std::string::npos);
    const std::string json = snap.json();
    EXPECT_NE(json.find("\"obs_test.collected\": 42"),
              std::string::npos);
    EXPECT_NE(json.find("\"obs_test.lat_ms\""), std::string::npos);

    reg.removeCollector(h1);
    reg.removeCollector(h2);
    obs::MetricsSnapshot after = reg.snapshot();
    EXPECT_EQ(after.counters.count("obs_test.collected"), 0u);
}

TEST(ScopedTimerTest, FeedsAccumulatorAndHistogram)
{
    TelemetryGuard guard;
    obs::setEnabled(true);

    double accum = 0.0;
    obs::LatencyHistogram hist;
    {
        obs::ScopedTimer timer(&accum, &hist);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_GT(accum, 0.0);
    EXPECT_EQ(hist.snapshot().count, 1u);

    // Null/null is a no-op (the free disarmed path).
    {
        obs::ScopedTimer timer(nullptr, nullptr);
    }
    {
        obs::ScopedTimer timer(nullptr, &hist);
    }
    EXPECT_EQ(hist.snapshot().count, 2u);
}

#endif // INSTANT3D_DISABLE_TELEMETRY

// --------------------------------------------------- serving fixture

Dataset
tinyDataset(const std::string &scene_name)
{
    auto scene = makeSyntheticScene(scene_name);
    DatasetConfig cfg;
    cfg.numTrainViews = 6;
    cfg.numTestViews = 2;
    cfg.imageWidth = 20;
    cfg.imageHeight = 20;
    cfg.renderOpts.numSteps = 64;
    return makeDataset(scene, cfg);
}

FieldConfig
tinyField()
{
    HashEncodingConfig grid;
    grid.numLevels = 4;
    grid.featuresPerEntry = 2;
    grid.log2TableSize = 12;
    grid.baseResolution = 8;
    grid.growthFactor = 1.6f;
    FieldConfig cfg = FieldConfig::instant3dDefault(grid);
    cfg.hiddenDim = 16;
    return cfg;
}

TrainConfig
tinyTrain()
{
    TrainConfig cfg;
    cfg.raysPerBatch = 96;
    cfg.samplesPerRay = 32;
    cfg.adam.lr = 1e-2f;
    cfg.useOccupancyGrid = true;
    cfg.occupancyUpdatePeriod = 8;
    return cfg;
}

/** Floats on the 1/4096 lattice: quantized() is the identity. */
CameraSpec
latticeCamera(int width = 40, int height = 40)
{
    CameraSpec spec;
    spec.eye = {1.25f, 0.5f, 1.0f};
    spec.target = {0.5f, 0.5f, 0.5f};
    spec.up = {0.0f, 0.0f, 1.0f};
    spec.vfovDeg = 45.0f;
    spec.width = width;
    spec.height = height;
    return spec;
}

void
expectImagesEqual(const Image &a, const Image &b)
{
    ASSERT_EQ(a.width(), b.width());
    ASSERT_EQ(a.height(), b.height());
    for (int row = 0; row < a.height(); row++) {
        for (int col = 0; col < a.width(); col++) {
            const Vec3 &pa = a.at(col, row);
            const Vec3 &pb = b.at(col, row);
            ASSERT_EQ(pa.x, pb.x) << "pixel (" << col << "," << row
                                  << ")";
            ASSERT_EQ(pa.y, pb.y);
            ASSERT_EQ(pa.z, pb.z);
        }
    }
}

/** Shared fixture: one trained scene, slow-but-thorough setup once. */
class ObsServeTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        lego = new Dataset(tinyDataset("lego"));
        legoTrainer = new Trainer(*lego, tinyField(), tinyTrain());
        for (int i = 0; i < 30; i++)
            legoTrainer->trainIteration();
    }

    static void
    TearDownTestSuite()
    {
        delete legoTrainer;
        delete lego;
        legoTrainer = nullptr;
        lego = nullptr;
    }

    static Dataset *lego;
    static Trainer *legoTrainer;
};

Dataset *ObsServeTest::lego = nullptr;
Trainer *ObsServeTest::legoTrainer = nullptr;

// --------------------------------------------------- bit-neutrality

/**
 * The contract the whole layer hangs on: telemetry state must not
 * move a single pixel. Under -DINSTANT3D_DISABLE_TELEMETRY the same
 * test pins the compiled-out configuration against the trainer.
 */
TEST_F(ObsServeTest, ServedPixelsBitIdenticalAcrossTelemetryStates)
{
    TelemetryGuard guard;
    SceneRegistry registry;
    registry.registerFromTrainer("lego", *legoTrainer);

    CameraSpec spec = latticeCamera();
    Image expect = legoTrainer->renderImage(spec.makeCamera());

    for (int workers : {1, 2, 8}) {
        for (bool on : {true, false}) {
            obs::setEnabled(on);
            RenderServiceConfig cfg;
            cfg.workers = workers;
            cfg.tilePixels = 16;
            cfg.chunkRays = 512;
            RenderService service(registry, cfg);

            RenderRequest req;
            req.sceneId = "lego";
            req.camera = spec;
            RenderResponse resp = service.render(req);
            ASSERT_EQ(resp.status, RequestStatus::Ok)
                << "workers=" << workers << " telemetry=" << on;
            expectImagesEqual(resp.image, expect);
        }
    }
}

/** render()'s totalMs covers the whole blocking call, end to end. */
TEST_F(ObsServeTest, BlockingRenderStampsEndToEndTotalMs)
{
    TelemetryGuard guard;
    SceneRegistry registry;
    registry.registerFromTrainer("lego", *legoTrainer);
    RenderServiceConfig cfg;
    cfg.workers = 2;
    cfg.tilePixels = 16;
    RenderService service(registry, cfg);

    RenderRequest req;
    req.sceneId = "lego";
    req.camera = latticeCamera();

    const double t0 = monotonicSeconds();
    RenderResponse resp = service.render(req);
    const double wall_ms = (monotonicSeconds() - t0) * 1e3;

    ASSERT_EQ(resp.status, RequestStatus::Ok);
    EXPECT_GT(resp.totalMs, 0.0);
    // Stamped inside render() immediately before returning: it can
    // only be a hair below the outside wall clock, never above it,
    // and never a small fraction of it (the old bug: last-tile-only
    // timing missed queue and warmup waits).
    EXPECT_LE(resp.totalMs, wall_ms);
    EXPECT_GE(resp.totalMs, 0.5 * wall_ms);
}

#ifndef INSTANT3D_DISABLE_TELEMETRY

// ------------------------------------------------------ span tracing

TEST_F(ObsServeTest, EveryFleetRequestLeavesACompleteTrace)
{
    TelemetryGuard guard;
    obs::setEnabled(true);
    auto &ring = obs::TraceRing::global();
    ring.clear();
    const uint64_t completed0 = ring.completedCount();

    ShardRouterConfig cfg;
    cfg.numShards = 2;
    cfg.replication = 2;
    cfg.routerThreads = 2;
    cfg.shard.workers = 2;
    cfg.shard.tilePixels = 16;
    ShardRouter router(cfg);
    ASSERT_NE(router.addScene("lego", *legoTrainer), 0u);

    // Distinct camera sizes defeat the tile cache, so every request
    // really renders (and therefore crosses the EDF queue).
    const int kRequests = 12;
    for (int i = 0; i < kRequests; i++) {
        RenderRequest req;
        req.sceneId = "lego";
        req.camera = latticeCamera(24 + 2 * i, 24);
        RenderResponse resp = router.render(req);
        ASSERT_EQ(resp.status, RequestStatus::Ok) << "request " << i;
    }

    EXPECT_EQ(ring.completedCount() - completed0,
              static_cast<uint64_t>(kRequests));
    std::vector<obs::RequestTracePtr> traces = ring.traces();
    ASSERT_EQ(traces.size(), static_cast<size_t>(kRequests));

    for (const auto &trace : traces) {
        ASSERT_NE(trace, nullptr);
        EXPECT_EQ(trace->sceneId(), "lego");
        EXPECT_GT(trace->totalMs(), 0.0);

        std::set<std::string> names;
        for (const obs::TraceSpan &span : trace->spans()) {
            EXPECT_GE(span.endT, span.beginT) << span.name;
            names.insert(span.name);
        }
        // One span per pipeline stage: router queue + dispatch,
        // service admission, EDF queue wait, chunk render, cache
        // scatter.
        for (const char *want :
             {"router.queue_wait", "router.dispatch",
              "serve.admission", "serve.queue_wait",
              "serve.render_chunk", "serve.cache_scatter"})
            EXPECT_TRUE(names.count(want))
                << "request " << trace->id() << " missing " << want;

        // Status annotation lands on completion.
        bool status_ok = false;
        for (const auto &kv : trace->notes())
            if (kv.first == "status" && kv.second == "ok")
                status_ok = true;
        EXPECT_TRUE(status_ok) << "request " << trace->id();
    }

    // The Chrome export carries the same spans for Perfetto.
    const std::string json = ring.exportChromeTrace();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("process_name"), std::string::npos);
    for (const char *want : {"router.dispatch", "serve.queue_wait",
                             "serve.render_chunk"}) {
        size_t hits = 0;
        for (size_t pos = json.find(want); pos != std::string::npos;
             pos = json.find(want, pos + 1))
            hits++;
        EXPECT_GE(hits, static_cast<size_t>(kRequests)) << want;
    }
    // Braces balance: the export is at least structurally JSON.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    ring.clear();
}

TEST_F(ObsServeTest, SlowRequestThresholdFiresWarnLog)
{
    TelemetryGuard guard;
    obs::setEnabled(true);
    auto &ring = obs::TraceRing::global();
    ring.clear();
    const uint64_t slow0 = ring.slowCount();
    ring.setSlowThresholdMs(0.0001); // Everything is "slow".

    SceneRegistry registry;
    registry.registerFromTrainer("lego", *legoTrainer);
    RenderServiceConfig cfg;
    cfg.workers = 2;
    cfg.tilePixels = 16;
    RenderService service(registry, cfg);

    RenderRequest req;
    req.sceneId = "lego";
    req.camera = latticeCamera();
    RenderResponse resp = service.render(req);
    ASSERT_EQ(resp.status, RequestStatus::Ok);

    EXPECT_GT(ring.slowCount(), slow0);
    ring.setSlowThresholdMs(0.0);
    ring.clear();
}

TEST_F(ObsServeTest, ServiceCollectorMirrorsServeStats)
{
    TelemetryGuard guard;
    obs::setEnabled(true);

    SceneRegistry registry;
    registry.registerFromTrainer("lego", *legoTrainer);
    RenderServiceConfig cfg;
    cfg.workers = 2;
    cfg.tilePixels = 16;
    RenderService service(registry, cfg);

    RenderRequest req;
    req.sceneId = "lego";
    req.camera = latticeCamera();
    ASSERT_EQ(service.render(req).status, RequestStatus::Ok);

    ServeStats stats = service.stats();
    obs::MetricsSnapshot snap =
        obs::MetricsRegistry::global().snapshot();
    // The collector mirrors the struct -- other live services may
    // contribute more, never less.
    EXPECT_GE(snap.counters.at("serve.requests_completed"),
              stats.requestsCompleted);
    EXPECT_GE(snap.counters.at("serve.tiles_rendered"),
              stats.tilesRendered);
    // The shared latency histograms saw this request.
    EXPECT_GE(snap.histograms.at("serve.total_ms").count, 1u);
    EXPECT_GE(snap.histograms.at("serve.queue_ms").count, 1u);
}

#endif // INSTANT3D_DISABLE_TELEMETRY

} // namespace
} // namespace instant3d
