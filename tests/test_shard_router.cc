/**
 * @file
 * Shard-router fleet tests. The load-bearing contracts:
 *
 *  - A Full-tier pixel served through the router is bit-identical to
 *    Trainer::renderImage regardless of worker count, replica choice,
 *    failover history, hedging, or drain timing (replicas share one
 *    canonical ServedScene, so this holds by construction -- these
 *    tests pin it end to end).
 *  - Under a deterministic kill schedule (`shard.crash`), every
 *    request still completes via failover.
 *  - The circuit breaker walks Closed -> Open -> HalfOpen -> Closed.
 *  - A hedged request has exactly one winner.
 *  - A graceful drain fails no admitted request.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "common/fault_injection.hh"
#include "nerf/trainer.hh"
#include "scene/scene.hh"
#include "serve/shard_router.hh"

namespace instant3d {
namespace {

/** Disarm + zero all fault points on entry and exit of a test. */
struct FaultGuard
{
    FaultGuard()
    {
        fault::disarmAll();
        fault::resetCounts();
    }
    ~FaultGuard()
    {
        fault::disarmAll();
        fault::resetCounts();
    }
};

Dataset
tinyDataset(const std::string &scene_name)
{
    auto scene = makeSyntheticScene(scene_name);
    DatasetConfig cfg;
    cfg.numTrainViews = 6;
    cfg.numTestViews = 2;
    cfg.imageWidth = 20;
    cfg.imageHeight = 20;
    cfg.renderOpts.numSteps = 64;
    return makeDataset(scene, cfg);
}

FieldConfig
tinyField()
{
    HashEncodingConfig grid;
    grid.numLevels = 4;
    grid.featuresPerEntry = 2;
    grid.log2TableSize = 12;
    grid.baseResolution = 8;
    grid.growthFactor = 1.6f;
    FieldConfig cfg = FieldConfig::instant3dDefault(grid);
    cfg.hiddenDim = 16;
    return cfg;
}

TrainConfig
tinyTrain()
{
    TrainConfig cfg;
    cfg.raysPerBatch = 96;
    cfg.samplesPerRay = 32;
    cfg.adam.lr = 1e-2f;
    cfg.useOccupancyGrid = true;
    cfg.occupancyUpdatePeriod = 8;
    return cfg;
}

/** Floats on the 1/4096 lattice: quantized() is the identity. */
CameraSpec
latticeCamera(int width = 40, int height = 40)
{
    CameraSpec spec;
    spec.eye = {1.25f, 0.5f, 1.0f};
    spec.target = {0.5f, 0.5f, 0.5f};
    spec.up = {0.0f, 0.0f, 1.0f};
    spec.vfovDeg = 45.0f;
    spec.width = width;
    spec.height = height;
    return spec;
}

void
expectImagesEqual(const Image &a, const Image &b)
{
    ASSERT_EQ(a.width(), b.width());
    ASSERT_EQ(a.height(), b.height());
    for (int row = 0; row < a.height(); row++) {
        for (int col = 0; col < a.width(); col++) {
            const Vec3 &pa = a.at(col, row);
            const Vec3 &pb = b.at(col, row);
            ASSERT_EQ(pa.x, pb.x) << "pixel (" << col << "," << row
                                  << ")";
            ASSERT_EQ(pa.y, pb.y);
            ASSERT_EQ(pa.z, pb.z);
        }
    }
}

ShardRouterConfig
fleetConfig(int num_shards = 4, int replication = 2)
{
    ShardRouterConfig cfg;
    cfg.numShards = num_shards;
    cfg.replication = replication;
    cfg.shard.workers = 2;
    cfg.shard.tilePixels = 16;
    cfg.shard.chunkRays = 512;
    return cfg;
}

/** Shared fixture: one trained scene, slow-but-thorough setup once. */
class ShardRouterTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        lego = new Dataset(tinyDataset("lego"));
        legoTrainer = new Trainer(*lego, tinyField(), tinyTrain());
        for (int i = 0; i < 30; i++)
            legoTrainer->trainIteration();
    }

    static void
    TearDownTestSuite()
    {
        delete legoTrainer;
        delete lego;
        legoTrainer = nullptr;
        lego = nullptr;
    }

    static Dataset *lego;
    static Trainer *legoTrainer;
};

Dataset *ShardRouterTest::lego = nullptr;
Trainer *ShardRouterTest::legoTrainer = nullptr;

TEST_F(ShardRouterTest, PlacementIsDeterministicAndReplicated)
{
    FaultGuard guard;
    ShardRouter a(fleetConfig());
    ShardRouter b(fleetConfig());

    std::vector<std::string> ids = {"lego", "lego-2", "lego-3",
                                    "lego-4", "lego-5"};
    for (const auto &id : ids) {
        ASSERT_GT(a.addScene(id, *legoTrainer), 0u);
        ASSERT_GT(b.addScene(id, *legoTrainer), 0u);
    }

    std::vector<bool> used(4, false);
    for (const auto &id : ids) {
        std::vector<int> pa = a.placement(id);
        ASSERT_EQ(pa.size(), 2u) << id;
        ASSERT_NE(pa[0], pa[1]);
        // Rendezvous placement is a pure function of (id, shard):
        // identical fleets place identically.
        EXPECT_EQ(pa, b.placement(id));
        for (int s : pa)
            used[static_cast<size_t>(s)] = true;
    }
    // Five ids across four shards must spread beyond one pair.
    int used_count = 0;
    for (bool u : used)
        used_count += u ? 1 : 0;
    EXPECT_GE(used_count, 3);
}

TEST_F(ShardRouterTest, FullTierBitIdenticalAcrossWorkerCounts)
{
    FaultGuard guard;
    CameraSpec spec = latticeCamera();
    Image expect = legoTrainer->renderImage(spec.makeCamera());

    for (int workers : {1, 2, 8}) {
        ShardRouterConfig cfg = fleetConfig(3, 2);
        cfg.shard.workers = workers;
        ShardRouter router(cfg);
        ASSERT_GT(router.addScene("lego", *legoTrainer), 0u);

        RenderRequest req;
        req.sceneId = "lego";
        req.camera = spec;
        RenderResponse resp = router.render(req);
        ASSERT_EQ(resp.status, RequestStatus::Ok)
            << "workers=" << workers;
        expectImagesEqual(resp.image, expect);

        // A replayed request (possibly cache-served, possibly another
        // replica) is just as identical.
        RenderResponse again = router.render(req);
        ASSERT_EQ(again.status, RequestStatus::Ok);
        expectImagesEqual(again.image, expect);
    }
}

TEST_F(ShardRouterTest, KilledReplicaFailsOverBitIdentically)
{
    FaultGuard guard;
    CameraSpec spec = latticeCamera();
    Image expect = legoTrainer->renderImage(spec.makeCamera());

    for (int workers : {1, 2, 8}) {
        ShardRouter router(fleetConfig(4, 2));
        ASSERT_GT(router.addScene("lego", *legoTrainer), 0u);
        std::vector<int> placed = router.placement("lego");
        ASSERT_EQ(placed.size(), 2u);

        // Kill the preferred replica: requests must fail over to the
        // surviving one and the scene must be re-placed to restore R.
        router.killShard(placed[0]);
        EXPECT_FALSE(router.shardAlive(placed[0]));

        RenderRequest req;
        req.sceneId = "lego";
        req.camera = spec;
        RenderResponse resp = router.render(req);
        ASSERT_EQ(resp.status, RequestStatus::Ok)
            << "workers=" << workers;
        expectImagesEqual(resp.image, expect);

        std::vector<int> after = router.placement("lego");
        EXPECT_EQ(after.size(), 2u);
        for (int s : after)
            EXPECT_NE(s, placed[0]);
        (void)workers;
    }
}

TEST_F(ShardRouterTest, KillScheduleEveryRequestCompletesViaFailover)
{
    FaultGuard guard;
    CameraSpec spec = latticeCamera();
    Image expect = legoTrainer->renderImage(spec.makeCamera());

    ShardRouterConfig cfg = fleetConfig(4, 2);
    cfg.routerThreads = 4;
    ShardRouter router(cfg);
    ASSERT_GT(router.addScene("lego", *legoTrainer), 0u);

    // Deterministic kill schedule: the third router->shard dispatch
    // crashes its shard outright.
    fault::Spec crash;
    crash.mode = fault::Mode::OneShot;
    crash.n = 3;
    fault::arm(fault::Point::ShardCrash, crash);

    std::vector<std::future<RenderResponse>> futs;
    RenderRequest req;
    req.sceneId = "lego";
    req.camera = spec;
    for (int i = 0; i < 12; i++)
        futs.push_back(router.submit(req));

    int completed = 0;
    for (auto &fut : futs) {
        RenderResponse resp = fut.get();
        ASSERT_EQ(resp.status, RequestStatus::Ok);
        expectImagesEqual(resp.image, expect);
        completed++;
    }
    EXPECT_EQ(completed, 12);
    EXPECT_EQ(fault::fireCount(fault::Point::ShardCrash), 1u);

    FleetStats fs = router.fleetStats();
    EXPECT_EQ(fs.shardsCrashed, 1u);
    EXPECT_GE(fs.failovers, 1u);
    EXPECT_EQ(fs.requestsRouted, 12u);
}

TEST_F(ShardRouterTest, BreakerOpensHalfOpensAndRecloses)
{
    FaultGuard guard;
    ShardRouterConfig cfg = fleetConfig(1, 1);
    cfg.maxAttempts = 1;
    cfg.breakerFailureThreshold = 2;
    cfg.breakerOpenMs = 200.0;
    ShardRouter router(cfg);
    ASSERT_GT(router.addScene("lego", *legoTrainer), 0u);

    RenderRequest req;
    req.sceneId = "lego";
    req.camera = latticeCamera(16, 16);

    fault::Spec fail;
    fail.mode = fault::Mode::Always;
    fault::arm(fault::Point::ShardFail, fail);

    // Two consecutive failures open the breaker.
    EXPECT_EQ(router.render(req).status, RequestStatus::Rejected);
    EXPECT_EQ(router.render(req).status, RequestStatus::Rejected);
    EXPECT_EQ(router.breakerState(0), BreakerState::Open);

    // While open (cooldown not elapsed) the shard is skipped entirely:
    // no usable replica, and the dispatch never reaches the shard.
    uint64_t fires = fault::fireCount(fault::Point::ShardFail);
    RenderResponse resp = router.render(req);
    EXPECT_EQ(resp.status, RequestStatus::Rejected);
    EXPECT_GT(resp.retryAfterMs, 0);

    // After the cooldown the next request is the half-open probe; with
    // the fault disarmed it succeeds and recloses the breaker.
    fault::disarm(fault::Point::ShardFail);
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    EXPECT_EQ(router.render(req).status, RequestStatus::Ok);
    EXPECT_EQ(router.breakerState(0), BreakerState::Closed);

    FleetStats fs = router.fleetStats();
    ASSERT_EQ(fs.shards.size(), 1u);
    EXPECT_GE(fs.shards[0].breakerOpens, 1u);
    EXPECT_GE(fs.shards[0].breakerHalfOpens, 1u);
    EXPECT_GE(fs.shards[0].breakerCloses, 1u);
    EXPECT_GE(fs.noReplicaAvailable, 1u);
    (void)fires;
}

TEST_F(ShardRouterTest, HedgedRequestHasExactlyOneWinner)
{
    FaultGuard guard;
    CameraSpec spec = latticeCamera();
    Image expect = legoTrainer->renderImage(spec.makeCamera());

    ShardRouterConfig cfg = fleetConfig(2, 2);
    cfg.hedgeRequests = true;
    cfg.hedgeDelayMs = 5.0;
    cfg.routerThreads = 1;
    ShardRouter router(cfg);
    ASSERT_GT(router.addScene("lego", *legoTrainer), 0u);

    // Stall the primary dispatch 400ms: the hedge (launched after
    // 5ms) must win the race, and exactly one response reaches the
    // client -- bit-identical, because the replicas share one model.
    fault::Spec stall;
    stall.mode = fault::Mode::OneShot;
    stall.n = 1;
    stall.delayMs = 400;
    fault::arm(fault::Point::ShardStall, stall);

    RenderRequest req;
    req.sceneId = "lego";
    req.camera = spec;
    RenderResponse resp = router.render(req);
    ASSERT_EQ(resp.status, RequestStatus::Ok);
    expectImagesEqual(resp.image, expect);

    FleetStats fs = router.fleetStats();
    EXPECT_EQ(fs.hedgesIssued, 1u);
    EXPECT_EQ(fs.hedgesWon, 1u);
}

TEST_F(ShardRouterTest, DrainUnderLoadFailsNoAdmittedRequest)
{
    FaultGuard guard;
    CameraSpec spec = latticeCamera();
    Image expect = legoTrainer->renderImage(spec.makeCamera());

    ShardRouterConfig cfg = fleetConfig(3, 2);
    cfg.routerThreads = 4;
    ShardRouter router(cfg);
    ASSERT_GT(router.addScene("lego", *legoTrainer), 0u);
    std::vector<int> placed = router.placement("lego");
    ASSERT_EQ(placed.size(), 2u);

    // Slow every chunk a little so the drain overlaps real work.
    fault::Spec slow;
    slow.mode = fault::Mode::Always;
    slow.delayMs = 2;
    fault::arm(fault::Point::ChunkRenderDelay, slow);

    std::vector<std::future<RenderResponse>> futs;
    RenderRequest req;
    req.sceneId = "lego";
    req.camera = spec;
    for (int i = 0; i < 6; i++)
        futs.push_back(router.submit(req));

    // Drain a replica while those are in flight.
    ASSERT_TRUE(router.drainShard(placed[0]));
    EXPECT_FALSE(router.shardAlive(placed[0]));

    for (int i = 0; i < 6; i++)
        futs.push_back(router.submit(req));

    for (auto &fut : futs) {
        RenderResponse resp = fut.get();
        ASSERT_EQ(resp.status, RequestStatus::Ok);
        expectImagesEqual(resp.image, expect);
    }

    // A second drain of the same shard is a no-op.
    EXPECT_FALSE(router.drainShard(placed[0]));

    std::vector<int> after = router.placement("lego");
    EXPECT_EQ(after.size(), 2u);
    for (int s : after)
        EXPECT_NE(s, placed[0]);
    EXPECT_EQ(router.fleetStats().shardsDrained, 1u);
}

TEST_F(ShardRouterTest, DeadlineBoundsRetryLoop)
{
    FaultGuard guard;
    ShardRouterConfig cfg = fleetConfig(2, 2);
    cfg.maxAttempts = 5;
    cfg.retryBackoffMs = 20;
    ShardRouter router(cfg);
    ASSERT_GT(router.addScene("lego", *legoTrainer), 0u);

    fault::Spec fail;
    fail.mode = fault::Mode::Always;
    fault::arm(fault::Point::ShardFail, fail);

    RenderRequest req;
    req.sceneId = "lego";
    req.camera = latticeCamera(16, 16);
    req.deadlineMs = 30.0;
    RenderResponse resp = router.render(req);
    EXPECT_EQ(resp.status, RequestStatus::DeadlineExceeded);
    // The backoff ladder (20+40+80+160ms) must have been truncated to
    // the deadline, not walked to the end.
    EXPECT_LT(resp.totalMs, 200.0);
}

TEST_F(ShardRouterTest, UnknownSceneAndAllReplicasDead)
{
    FaultGuard guard;
    ShardRouter router(fleetConfig(2, 2));
    ASSERT_GT(router.addScene("lego", *legoTrainer), 0u);

    RenderRequest req;
    req.sceneId = "nope";
    req.camera = latticeCamera(16, 16);
    EXPECT_EQ(router.render(req).status, RequestStatus::UnknownScene);

    router.killShard(0);
    router.killShard(1);
    req.sceneId = "lego";
    RenderResponse resp = router.render(req);
    EXPECT_EQ(resp.status, RequestStatus::Rejected);
    EXPECT_GT(resp.retryAfterMs, 0);
    EXPECT_GE(router.fleetStats().noReplicaAvailable, 1u);
}

TEST_F(ShardRouterTest, DestructionResolvesOutstandingFutures)
{
    FaultGuard guard;
    std::vector<std::future<RenderResponse>> futs;
    {
        ShardRouterConfig cfg = fleetConfig(2, 2);
        cfg.routerThreads = 1;
        ShardRouter router(cfg);
        ASSERT_GT(router.addScene("lego", *legoTrainer), 0u);

        fault::Spec slow;
        slow.mode = fault::Mode::Always;
        slow.delayMs = 10;
        fault::arm(fault::Point::ChunkRenderDelay, slow);

        RenderRequest req;
        req.sceneId = "lego";
        req.camera = latticeCamera();
        for (int i = 0; i < 8; i++)
            futs.push_back(router.submit(req));
        // Router destroyed with most of these still queued.
    }
    for (auto &fut : futs) {
        RenderResponse resp = fut.get();
        EXPECT_TRUE(resp.status == RequestStatus::Ok ||
                    resp.status == RequestStatus::Shutdown);
    }
}

TEST_F(ShardRouterTest, ColdReplicaFailsOverToWarmWithoutBreakerTrip)
{
    FaultGuard guard;
    const std::string path = "test_shard_router_cold.bin";
    ASSERT_EQ(legoTrainer->saveCheckpoint(path),
              CheckpointError::None);

    SceneSpec spec;
    spec.field = legoTrainer->field().config();
    spec.renderer = legoTrainer->renderer().config();
    spec.useOccupancy = true;
    spec.occupancy = legoTrainer->occupancyGrid()->config();
    spec.loadRetryBackoffMs = 1;

    ShardRouter router(fleetConfig(4, 2));
    ASSERT_GT(router.addSceneFromCheckpoint("lego", spec, path), 0u);

    CameraSpec cam = latticeCamera();
    Image expect = legoTrainer->renderImage(cam.makeCamera());

    // Evict the scene from the replica the camera's rotation prefers,
    // and stretch its reload so the request definitely arrives while
    // the replica is still cold.
    std::vector<int> order = router.placement("lego");
    ASSERT_EQ(order.size(), 2u);
    const int cold_shard = order[cam.hashKey() % order.size()];
    fault::Spec stall;
    stall.mode = fault::Mode::Always;
    stall.delayMs = 20;
    fault::arm(fault::Point::CheckpointStreamStall, stall);
    ASSERT_TRUE(router.shardRegistry(cold_shard).evictScene("lego"));

    RenderRequest req;
    req.sceneId = "lego";
    req.camera = cam;
    RenderResponse resp = router.render(req);

    // The cold replica answered ColdStart (kicking off its reload) and
    // the router failed over to the warm replica: the client sees only
    // Ok, bit-identical pixels.
    ASSERT_EQ(resp.status, RequestStatus::Ok);
    expectImagesEqual(resp.image, expect);
    FleetStats fs = router.fleetStats();
    EXPECT_GE(fs.coldStartFailovers, 1u);
    EXPECT_GE(fs.shards[static_cast<size_t>(cold_shard)].coldStarts,
              1u);
    // A cold start is not a shard failure: the breaker stays Closed.
    EXPECT_EQ(router.breakerState(cold_shard), BreakerState::Closed);

    // The ColdStart answer began the reload; once the stall is gone
    // the replica warms back under the same generation and serves the
    // same bits directly.
    fault::disarmAll();
    ASSERT_NE(router.shardRegistry(cold_shard).awaitWarm("lego",
                                                         30000.0),
              nullptr);
    EXPECT_EQ(router.shardRegistry(cold_shard).state("lego"),
              SceneState::Warm);
    RenderResponse warm = router.render(req);
    ASSERT_EQ(warm.status, RequestStatus::Ok);
    expectImagesEqual(warm.image, expect);
    std::remove(path.c_str());
}

TEST_F(ShardRouterTest, FleetStatsAggregateCacheAndPrefetchCounters)
{
    FaultGuard guard;
    // Per-tier lattice + prefetch knobs flow through the shared
    // per-shard config; the fleet snapshot must sum the resulting
    // shard-local cache counters.
    ShardRouterConfig cfg = fleetConfig(2, 2);
    cfg.shard.cacheTiles = 128;
    cfg.shard.cameraLattice[static_cast<int>(QualityTier::Preview)] =
        256.0f;
    cfg.shard.prefetch = true;
    ShardRouter router(cfg);
    ASSERT_GT(router.addScene("lego", *legoTrainer), 0u);

    RenderRequest req;
    req.sceneId = "lego";
    req.camera = latticeCamera(32, 32);
    req.quality = QualityTier::Preview;
    req.viewerId = "orbiter";
    // Nearby viewpoints inside one coarse preview cell: the camera-
    // affinity rotation keys on the preview lattice, so they all land
    // on the same replica and the repeats hit its cache.
    for (int i = 0; i < 4; i++) {
        req.camera.eye.x = 1.25f + 0.1f * static_cast<float>(i) / 256.0f;
        ASSERT_EQ(router.render(req).status, RequestStatus::Ok);
    }
    // Then stride a full preview cell per frame: the predictor sees
    // cell-crossing motion and enqueues the next cell's tiles
    // (sub-cell motion above predicts the *current* cell and is
    // rightly skipped).
    for (int j = 1; j <= 3; j++) {
        req.camera.eye.x = 1.25f + static_cast<float>(j) / 256.0f;
        ASSERT_EQ(router.render(req).status, RequestStatus::Ok);
    }

    FleetStats fs = router.fleetStats();
    const int preview = static_cast<int>(QualityTier::Preview);
    EXPECT_GT(fs.cacheHitsPerTier[preview], 0u);
    EXPECT_GT(fs.cacheMissesPerTier[preview], 0u);
    EXPECT_EQ(fs.cacheHitsPerTier[static_cast<int>(QualityTier::Full)],
              0u);
    // The moving viewer armed the predictor on whichever shard served
    // it; enqueue alone is deterministic (rendering may still be in
    // flight when the snapshot is taken).
    EXPECT_GT(fs.prefetchTilesEnqueued, 0u);
}

} // namespace
} // namespace instant3d
