/**
 * @file
 * Tests of the Instant3dConfig and the paper-scale workload accounting:
 * decomposition sizes (Sec 5.1), update-period mapping (Sec 4.6), byte
 * counts, and dataset scaling.
 */

#include <gtest/gtest.h>

#include "core/instant3d_config.hh"
#include "core/workload.hh"

namespace instant3d {
namespace {

TEST(Instant3dConfigTest, ShippedRatios)
{
    Instant3dConfig cfg = instant3dShippedConfig();
    EXPECT_FLOAT_EQ(cfg.colorSizeRatio, 0.25f);
    EXPECT_FLOAT_EQ(cfg.colorUpdateRate, 0.5f);
    EXPECT_FLOAT_EQ(cfg.densitySizeRatio, 1.0f);
    EXPECT_FLOAT_EQ(cfg.densityUpdateRate, 1.0f);
}

TEST(Instant3dConfigTest, PeriodFromRate)
{
    EXPECT_EQ(Instant3dConfig::periodFromRate(1.0f), 1);
    EXPECT_EQ(Instant3dConfig::periodFromRate(0.5f), 2);
    EXPECT_EQ(Instant3dConfig::periodFromRate(0.25f), 4);
}

TEST(Instant3dConfigTest, GridSearchSpaceMatchesSec51)
{
    auto space = instant3dGridSearchSpace();
    // 4 size ratios x 2 update rates.
    EXPECT_EQ(space.size(), 8u);
    bool has_shipped = false;
    for (const auto &cfg : space) {
        if (cfg.colorSizeRatio == 0.25f && cfg.colorUpdateRate == 0.5f)
            has_shipped = true;
    }
    EXPECT_TRUE(has_shipped);
}

TEST(Instant3dConfigTest, FieldConfigDecomposition)
{
    HashEncodingConfig base;
    base.log2TableSize = 16;
    Instant3dConfig cfg = instant3dShippedConfig();
    FieldConfig fc = cfg.makeFieldConfig(base);
    EXPECT_EQ(fc.mode, FieldMode::Decoupled);
    // Density: half the baseline table (2^15); color: quarter of that
    // again (2^13).
    EXPECT_EQ(fc.densityGrid.log2TableSize, 15u);
    EXPECT_EQ(fc.colorGrid.log2TableSize, 13u);
}

TEST(Instant3dConfigTest, ApplyToTrainConfig)
{
    TrainConfig train;
    instant3dShippedConfig().applyTo(train);
    EXPECT_EQ(train.densityUpdatePeriod, 1);
    EXPECT_EQ(train.colorUpdatePeriod, 2);
}

TEST(Instant3dConfigTest, LabelMentionsRatios)
{
    std::string label = instant3dShippedConfig().label();
    EXPECT_NE(label.find("0.25"), std::string::npos);
    EXPECT_NE(label.find("0.5"), std::string::npos);
}

TEST(WorkloadTest, NgpBaselineShape)
{
    TrainingWorkload w = makeNgpWorkload("NeRF-Synthetic");
    ASSERT_EQ(w.branches.size(), 1u);
    EXPECT_EQ(w.branches[0].tableEntries, 1ull << 19);
    EXPECT_DOUBLE_EQ(w.pointsPerIter, 2.0e5);
    // Paper Sec 1: >200,000 grid interpolations per iteration.
    EXPECT_GE(w.pointsPerIter, 2.0e5);
    // 2^19 entries x 2 features x 2 bytes = 2 MB per level.
    EXPECT_EQ(w.branches[0].tableBytes(), 2ull << 20);
    EXPECT_EQ(w.branches[0].accessesPerPoint(), 128u);
}

TEST(WorkloadTest, Instant3dDecompositionSizesMatchSec51)
{
    TrainingWorkload w = makeInstant3dWorkload(
        "NeRF-Synthetic", instant3dShippedConfig());
    ASSERT_EQ(w.branches.size(), 2u);
    // Sec 5.1: density table 2^18 entries (1 MB), color 2^16 (256 KB).
    EXPECT_EQ(w.branches[0].name, "density");
    EXPECT_EQ(w.branches[0].tableEntries, 1ull << 18);
    EXPECT_EQ(w.branches[0].tableBytes(), 1ull << 20);
    EXPECT_EQ(w.branches[1].name, "color");
    EXPECT_EQ(w.branches[1].tableEntries, 1ull << 16);
    EXPECT_EQ(w.branches[1].tableBytes(), 256u * 1024);
    EXPECT_DOUBLE_EQ(w.branches[1].updateRate, 0.5);
}

TEST(WorkloadTest, GridBytesAccounting)
{
    TrainingWorkload w = makeNgpWorkload("NeRF-Synthetic");
    // 200k points x 128 accesses x 4 bytes.
    EXPECT_DOUBLE_EQ(w.gridReadBytesPerIter(), 2.0e5 * 128 * 4);
    EXPECT_DOUBLE_EQ(w.gridWriteBytesPerIter(), 2.0e5 * 128 * 4);

    TrainingWorkload i3d = makeInstant3dWorkload(
        "NeRF-Synthetic", instant3dShippedConfig());
    // Two branches of half payload each: same read bytes.
    EXPECT_DOUBLE_EQ(i3d.gridReadBytesPerIter(),
                     w.gridReadBytesPerIter());
    // Color branch updates at rate 0.5: writes shrink by 25%.
    EXPECT_DOUBLE_EQ(i3d.gridWriteBytesPerIter(),
                     0.75 * w.gridWriteBytesPerIter());
}

TEST(WorkloadTest, DatasetScaling)
{
    double base = makeNgpWorkload("NeRF-Synthetic").pointsPerIter;
    EXPECT_GT(makeNgpWorkload("SILVR").pointsPerIter, base * 1.5);
    EXPECT_GT(makeNgpWorkload("ScanNet").pointsPerIter, base);
    EXPECT_LT(makeNgpWorkload("ScanNet").pointsPerIter,
              makeNgpWorkload("SILVR").pointsPerIter);
    EXPECT_EQ(workloadDatasetNames().size(), 3u);
}

TEST(WorkloadTest, StepNamesAndOrder)
{
    EXPECT_EQ(allPipelineSteps().size(), 6u);
    for (auto s : allPipelineSteps())
        EXPECT_FALSE(pipelineStepName(s).empty());
}

TEST(WorkloadTest, MlpFlopsScaleWithPoints)
{
    TrainingWorkload w = makeNgpWorkload("NeRF-Synthetic");
    EXPECT_DOUBLE_EQ(w.mlpFlopsPerIterFF(),
                     2.0 * w.mlpMacsPerPoint * w.pointsPerIter);
    EXPECT_DOUBLE_EQ(w.mlpFlopsPerIterBP(), 2.0 * w.mlpFlopsPerIterFF());
}

} // namespace
} // namespace instant3d
