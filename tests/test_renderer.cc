/**
 * @file
 * Tests of the differentiable volume renderer (Eq. 1) and the field:
 * compositing correctness on analytic fields, transmittance behaviour,
 * and an end-to-end gradient check through rendering, MLPs, and grids.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "nerf/renderer.hh"

namespace instant3d {
namespace {

FieldConfig
tinyFieldConfig(FieldMode mode)
{
    HashEncodingConfig grid;
    grid.numLevels = 3;
    grid.featuresPerEntry = 2;
    grid.log2TableSize = 10;
    grid.baseResolution = 8;
    FieldConfig cfg = mode == FieldMode::Decoupled
                          ? FieldConfig::instant3dDefault(grid)
                          : FieldConfig::ngpBaseline(grid);
    cfg.hiddenDim = 16;
    return cfg;
}

TEST(FieldTest, QueryProducesValidOutputs)
{
    for (auto mode : {FieldMode::Coupled, FieldMode::Decoupled}) {
        NerfField field(tinyFieldConfig(mode), 11);
        Rng r(2);
        for (int i = 0; i < 100; i++) {
            Vec3 p(r.nextFloat(), r.nextFloat(), r.nextFloat());
            Vec3 d = Vec3(r.nextFloat() - 0.5f, r.nextFloat() - 0.5f,
                          r.nextFloat() - 0.5f).normalized();
            FieldSample s = field.query(p, d);
            EXPECT_GE(s.sigma, 0.0f);
            EXPECT_TRUE(std::isfinite(s.sigma));
            EXPECT_GE(s.rgb.minComponent(), 0.0f);
            EXPECT_LE(s.rgb.maxComponent(), 1.0f);
        }
    }
}

TEST(FieldTest, ParamGroupsByMode)
{
    NerfField coupled(tinyFieldConfig(FieldMode::Coupled), 1);
    NerfField decoupled(tinyFieldConfig(FieldMode::Decoupled), 1);
    EXPECT_EQ(coupled.paramGroups().size(), 3u);
    EXPECT_EQ(decoupled.paramGroups().size(), 4u);
}

TEST(FieldTest, DecoupledColorGridSmaller)
{
    NerfField field(tinyFieldConfig(FieldMode::Decoupled), 1);
    // S_D : S_C = 1 : 0.25 -> color table 4x smaller.
    EXPECT_EQ(field.colorGrid().config().tableSize() * 4,
              field.densityGrid().config().tableSize());
}

TEST(FieldTest, SoftplusProperties)
{
    EXPECT_NEAR(softplus(0.0f), std::log(2.0f), 1e-6f);
    EXPECT_GT(softplus(-20.0f), 0.0f);
    EXPECT_NEAR(softplus(20.0f), 20.0f, 1e-3f);
    // Derivative is sigmoid.
    EXPECT_NEAR(softplusDerivative(0.0f), 0.5f, 1e-6f);
    const float eps = 1e-3f;
    for (float x : {-2.0f, -0.3f, 0.7f, 3.0f}) {
        float num = (softplus(x + eps) - softplus(x - eps)) / (2 * eps);
        EXPECT_NEAR(softplusDerivative(x), num, 1e-3f);
    }
}

TEST(FieldTest, DirectionEncodingDim)
{
    float enc[NerfField::dirEncodingDim];
    NerfField::encodeDirection({0.0f, 1.0f, 0.0f}, enc);
    EXPECT_FLOAT_EQ(enc[0], 0.0f);
    EXPECT_FLOAT_EQ(enc[1], 1.0f);
    EXPECT_FLOAT_EQ(enc[4], 1.0f); // y^2
    EXPECT_FLOAT_EQ(enc[6], 0.0f); // xy
}

/**
 * A NerfField whose grids are zeroed and whose query is bypassed is hard
 * to build; instead we test compositing math directly by rendering a
 * freshly initialized field (near-zero embeddings -> near-zero density
 * -> background shows through).
 */
TEST(RendererTest, EmptyFieldRendersBackground)
{
    NerfField field(tinyFieldConfig(FieldMode::Decoupled), 21);
    RendererConfig rcfg;
    rcfg.background = {0.25f, 0.5f, 0.75f};
    rcfg.samplesPerRay = 32;
    VolumeRenderer renderer(rcfg);

    Ray ray{{0.5f, 0.5f, -0.5f}, {0.0f, 0.0f, 1.0f}};
    RayResult res = renderer.renderRay(field, ray);
    // Fresh embeddings ~1e-4 -> sigma = softplus(small) ~ 0.7 per unit
    // length is possible; opacity must at least be far from 1 and color
    // dominated by background blending.
    EXPECT_LT(res.opacity, 0.9f);
    EXPECT_GT(res.depth, rcfg.tNear);
    EXPECT_LE(res.depth, rcfg.tFar + 1e-4f);
}

TEST(RendererTest, OpacityIncreasesWithDensity)
{
    // Scale up density-grid embeddings -> higher sigma -> higher opacity.
    auto cfg = tinyFieldConfig(FieldMode::Decoupled);
    NerfField lo(cfg, 30), hi(cfg, 30);
    for (auto &p : hi.groupParams(ParamGroupId::DensityGrid))
        p = 0.5f; // strongly positive embeddings

    RendererConfig rcfg;
    VolumeRenderer renderer(rcfg);
    Ray ray{{0.5f, 0.5f, -0.5f}, {0.0f, 0.0f, 1.0f}};
    float o_lo = renderer.renderRay(lo, ray).opacity;
    float o_hi = renderer.renderRay(hi, ray).opacity;
    EXPECT_GT(o_hi, o_lo);
    EXPECT_GT(o_hi, 0.5f);
}

TEST(RendererTest, RecordedAndPlainForwardAgree)
{
    NerfField field(tinyFieldConfig(FieldMode::Coupled), 44);
    RendererConfig rcfg;
    rcfg.samplesPerRay = 16;
    VolumeRenderer renderer(rcfg);
    Ray ray{{0.2f, 0.8f, -0.3f}, Vec3(0.2f, -0.2f, 1.0f).normalized()};

    RayRecord rec;
    RayResult with_rec = renderer.renderRay(field, ray, nullptr, &rec);
    RayResult without = renderer.renderRay(field, ray, nullptr, nullptr);
    EXPECT_NEAR(with_rec.color.x, without.color.x, 1e-6f);
    EXPECT_NEAR(with_rec.depth, without.depth, 1e-5f);
    EXPECT_EQ(rec.samples.size(), 16u);
}

/**
 * End-to-end gradient check: perturb one parameter of each group and
 * compare the loss change against the back-propagated gradient.
 */
void
endToEndGradientCheck(FieldMode mode)
{
    NerfField field(tinyFieldConfig(mode), 55);
    // Give the density grid real mass so gradients are non-trivial.
    Rng rinit(3);
    for (auto &p : field.groupParams(ParamGroupId::DensityGrid))
        p = rinit.nextFloat(-0.3f, 0.6f);

    RendererConfig rcfg;
    rcfg.samplesPerRay = 8;
    VolumeRenderer renderer(rcfg);
    Ray ray{{0.5f, 0.45f, -0.4f}, Vec3(0.05f, 0.1f, 1.0f).normalized()};
    Vec3 target(0.2f, 0.6f, 0.4f);

    auto loss_of = [&]() {
        RayResult res = renderer.renderRay(field, ray);
        Vec3 e = res.color - target;
        return 0.5 * (e.x * e.x + e.y * e.y + e.z * e.z);
    };

    RayRecord rec;
    RayResult res = renderer.renderRay(field, ray, nullptr, &rec);
    field.zeroGrad();
    Vec3 d_color = res.color - target;
    renderer.backwardRay(field, rec, d_color);

    const float eps = 2e-3f;
    for (auto gid : field.paramGroups()) {
        auto &params = field.groupParams(gid);
        auto &grads = field.groupGrads(gid);
        // Pick the largest-magnitude gradient entry of the group.
        size_t best = 0;
        for (size_t i = 0; i < grads.size(); i++)
            if (std::fabs(grads[i]) > std::fabs(grads[best]))
                best = i;
        if (std::fabs(grads[best]) < 1e-7f)
            continue; // group untouched by this ray

        float saved = params[best];
        params[best] = saved + eps;
        double hi_loss = loss_of();
        params[best] = saved - eps;
        double lo_loss = loss_of();
        params[best] = saved;
        double num = (hi_loss - lo_loss) / (2.0 * eps);
        double tol = std::max(0.15 * std::fabs(num), 2e-3);
        EXPECT_NEAR(grads[best], num, tol)
            << "group " << static_cast<int>(gid);
    }
}

TEST(RendererTest, EndToEndGradientsCoupled)
{
    endToEndGradientCheck(FieldMode::Coupled);
}

TEST(RendererTest, EndToEndGradientsDecoupled)
{
    endToEndGradientCheck(FieldMode::Decoupled);
}

TEST(RendererTest, SkippingColorBranchLeavesItUntouched)
{
    NerfField field(tinyFieldConfig(FieldMode::Decoupled), 66);
    RendererConfig rcfg;
    rcfg.samplesPerRay = 8;
    VolumeRenderer renderer(rcfg);
    Ray ray{{0.5f, 0.5f, -0.4f}, {0.0f, 0.0f, 1.0f}};

    RayRecord rec;
    renderer.renderRay(field, ray, nullptr, &rec);
    field.zeroGrad();
    renderer.backwardRay(field, rec, {1.0f, 1.0f, 1.0f},
                         /*update_density=*/true, /*update_color=*/false);

    for (float g : field.groupGrads(ParamGroupId::ColorGrid))
        EXPECT_EQ(g, 0.0f);
    for (float g : field.groupGrads(ParamGroupId::ColorMlp))
        EXPECT_EQ(g, 0.0f);
    // Density side must have received gradient.
    double dens_mag = 0.0;
    for (float g : field.groupGrads(ParamGroupId::DensityGrid))
        dens_mag += std::fabs(g);
    EXPECT_GT(dens_mag, 0.0);
}

TEST(RendererTest, WriteCountsOnlyForUpdatedBranches)
{
    NerfField field(tinyFieldConfig(FieldMode::Decoupled), 67);
    RendererConfig rcfg;
    rcfg.samplesPerRay = 4;
    VolumeRenderer renderer(rcfg);
    Ray ray{{0.5f, 0.5f, -0.4f}, {0.0f, 0.0f, 1.0f}};

    RayRecord rec;
    renderer.renderRay(field, ray, nullptr, &rec);
    uint64_t color_writes_before = field.colorGrid().writeCount();
    renderer.backwardRay(field, rec, {1, 1, 1}, true, false);
    EXPECT_EQ(field.colorGrid().writeCount(), color_writes_before);
    EXPECT_GT(field.densityGrid().writeCount(), 0u);
}

} // namespace
} // namespace instant3d
