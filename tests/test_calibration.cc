/**
 * @file
 * Integration test: capture a real training trace, calibrate the
 * FRM/BUM models from it, and check the measurements agree with the
 * shipped defaults and the paper's qualitative claims (Sec 4.4-4.5).
 */

#include <gtest/gtest.h>

#include "accel/accelerator.hh"
#include "accel/calibration.hh"
#include "nerf/trainer.hh"
#include "scene/scene.hh"
#include "trace/pattern.hh"

namespace instant3d {
namespace {

class CalibrationFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto scene = makeSyntheticScene("lego");
        DatasetConfig dcfg;
        dcfg.numTrainViews = 4;
        dcfg.numTestViews = 1;
        dcfg.imageWidth = 16;
        dcfg.imageHeight = 16;
        dcfg.renderOpts.numSteps = 48;
        dataset = makeDataset(scene, dcfg);

        HashEncodingConfig grid;
        grid.numLevels = 4;
        grid.log2TableSize = 14;
        grid.baseResolution = 16;
        FieldConfig fcfg = FieldConfig::instant3dDefault(grid);
        fcfg.hiddenDim = 16;

        TrainConfig tcfg;
        tcfg.raysPerBatch = 64;
        tcfg.samplesPerRay = 48;
        trainer = std::make_unique<Trainer>(dataset, fcfg, tcfg);
        for (int i = 0; i < 25; i++)
            trainer->trainIteration();

        MemTraceCollector collector;
        trainer->field().densityGrid().setTraceSink(&collector);
        trainer->trainIteration();
        trainer->field().densityGrid().setTraceSink(nullptr);

        reads = batchMajorOrder(collector.reads(), 48);
        writes = collector.writes();
        calib = calibrateFromTrace(reads, writes);
    }

    Dataset dataset;
    std::unique_ptr<Trainer> trainer;
    std::vector<GridAccess> reads, writes;
    TraceCalibration calib;
};

TEST_F(CalibrationFixture, FrmBeatsInOrderOnRealTraces)
{
    EXPECT_GT(calib.frmUtil8, 1.3 * calib.inOrderUtil8);
    EXPECT_GT(calib.frmUtil16, 1.5 * calib.inOrderUtil16);
    EXPECT_GT(calib.frmUtil32, 1.5 * calib.inOrderUtil32);
}

TEST_F(CalibrationFixture, MeasurementsNearShippedDefaults)
{
    TraceCalibration d = TraceCalibration::defaults();
    EXPECT_NEAR(calib.frmUtil8, d.frmUtil8, 0.15);
    EXPECT_NEAR(calib.frmUtil16, d.frmUtil16, 0.15);
    EXPECT_NEAR(calib.frmUtil32, d.frmUtil32, 0.20);
    EXPECT_NEAR(calib.inOrderUtil8, d.inOrderUtil8, 0.20);
    EXPECT_NEAR(calib.bumMergeRatio, d.bumMergeRatio, 0.25);
}

TEST_F(CalibrationFixture, BumMergesRealBackpropTraffic)
{
    // Sec 4.5: shared embeddings make BP traffic mergeable.
    EXPECT_GT(calib.bumMergeRatio, 0.25);
    EXPECT_LT(calib.bumMergeRatio, 0.95);
}

TEST_F(CalibrationFixture, EndToEndAcceleratorWithMeasuredCalibration)
{
    // The full pipeline with measured (not default) calibration still
    // achieves instant reconstruction.
    Accelerator accel(AcceleratorConfig{}, calib);
    TrainingWorkload w = makeInstant3dWorkload(
        "NeRF-Synthetic", instant3dShippedConfig());
    double t = accel.trainingSeconds(w);
    EXPECT_GT(t, 0.8);
    EXPECT_LT(t, 5.0); // instant (Sec 1)
}

TEST_F(CalibrationFixture, InOrderUtilizationInPaperRange)
{
    // Sec 4.4: without the FRM the clustered groups occupy 2-4 of 8
    // banks -> 25-50% utilization.
    EXPECT_GT(calib.inOrderUtil8, 0.15);
    EXPECT_LT(calib.inOrderUtil8, 0.65);
}

} // namespace
} // namespace instant3d
