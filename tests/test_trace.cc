/**
 * @file
 * Tests of trace capture and the Sec 4.2 pattern analyses on both
 * synthetic traces (exact expectations) and real traces captured from
 * training (paper-shape expectations: Figs 8, 9, 10).
 */

#include <gtest/gtest.h>

#include "nerf/trainer.hh"
#include "scene/scene.hh"
#include "trace/pattern.hh"

namespace instant3d {
namespace {

GridAccess
read(uint32_t addr, uint16_t level, uint8_t corner, uint32_t point)
{
    return {addr, level, corner, false, point};
}

TEST(MemTraceTest, CollectsAndFilters)
{
    MemTraceCollector sink;
    sink.record(read(10, 0, 0, 1));
    sink.record({20, 1, 0, true, 2});
    EXPECT_EQ(sink.accesses().size(), 2u);
    EXPECT_EQ(sink.reads().size(), 1u);
    EXPECT_EQ(sink.writes().size(), 1u);
    EXPECT_EQ(sink.levelSlice(1).size(), 1u);
    sink.clear();
    EXPECT_TRUE(sink.accesses().empty());
}

TEST(MemTraceTest, CapacityCapDropsExcess)
{
    MemTraceCollector sink(3);
    for (uint32_t i = 0; i < 10; i++)
        sink.record(read(i, 0, 0, i));
    EXPECT_EQ(sink.accesses().size(), 3u);
    EXPECT_TRUE(sink.full());
    EXPECT_EQ(sink.droppedCount(), 7u);
}

TEST(MemTraceTest, ScopedTraceDetaches)
{
    HashEncodingConfig cfg;
    cfg.numLevels = 1;
    cfg.log2TableSize = 8;
    HashEncoding enc(cfg, 1);
    MemTraceCollector sink;
    std::vector<float> out(enc.outputDim());
    {
        ScopedTrace scope(enc, sink);
        enc.encode({0.5f, 0.5f, 0.5f}, out.data());
    }
    size_t captured = sink.accesses().size();
    EXPECT_EQ(captured, 8u);
    enc.encode({0.4f, 0.4f, 0.4f}, out.data());
    EXPECT_EQ(sink.accesses().size(), captured) << "sink not detached";
}

TEST(PatternTest, SyntheticGroupsExactDistances)
{
    // Build one point's 8 accesses with known group structure:
    // group g at base 1000*g, x-neighbour at +1.
    std::vector<GridAccess> trace;
    for (int c = 0; c < 8; c++) {
        int g = c / 2;
        uint32_t addr = 1000 * g + (c & 1);
        trace.push_back(read(addr, 0, static_cast<uint8_t>(c), 7));
    }
    GroupDistanceStats stats = analyzeVertexGroups(trace);
    EXPECT_EQ(stats.pointsAnalyzed, 1u);
    EXPECT_DOUBLE_EQ(stats.intraGroupAbs.mean(), 1.0);
    EXPECT_DOUBLE_EQ(stats.fractionWithin(5.0), 1.0);
    // Group means are 1000 apart (adjacent) up to 3000 (extremes).
    EXPECT_NEAR(stats.interGroupAbs.mean(),
                (1000 + 2000 + 3000 + 1000 + 2000 + 1000) / 6.0, 1e-9);
}

TEST(PatternTest, ResynchronizesOnCorruptChunks)
{
    std::vector<GridAccess> trace;
    trace.push_back(read(5, 0, 3, 1)); // stray access
    for (int c = 0; c < 8; c++)
        trace.push_back(read(100 + (c & 1), 0,
                             static_cast<uint8_t>(c), 2));
    GroupDistanceStats stats = analyzeVertexGroups(trace);
    EXPECT_EQ(stats.pointsAnalyzed, 1u);
}

TEST(PatternTest, SlidingWindowUniqueCounts)
{
    std::vector<GridAccess> trace;
    // Window 1: addresses 0..9 (10 unique). Window 2: all the same (1).
    for (uint32_t i = 0; i < 10; i++)
        trace.push_back(read(i, 0, 0, i));
    for (uint32_t i = 0; i < 10; i++)
        trace.push_back(read(42, 0, 0, i));
    SlidingWindowStats s = uniqueAddressWindows(trace, 10);
    ASSERT_EQ(s.uniquePerWindow.size(), 2u);
    EXPECT_DOUBLE_EQ(s.uniquePerWindow[0], 10.0);
    EXPECT_DOUBLE_EQ(s.uniquePerWindow[1], 1.0);
    EXPECT_DOUBLE_EQ(s.meanUnique(), 5.5);
    EXPECT_DOUBLE_EQ(s.minUnique(), 1.0);
    EXPECT_NEAR(meanSharingFactor(s), 10.0 / 5.5, 1e-12);
}

TEST(PatternTest, LevelsCountedSeparately)
{
    std::vector<GridAccess> trace;
    trace.push_back(read(7, 0, 0, 0));
    trace.push_back(read(7, 1, 0, 0)); // same address, other level
    SlidingWindowStats s = uniqueAddressWindows(trace, 2);
    EXPECT_DOUBLE_EQ(s.uniquePerWindow[0], 2.0);
}

/** Fixture capturing a real training trace on a tiny scene. */
class RealTraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto scene = makeSyntheticScene("lego");
        DatasetConfig dcfg;
        dcfg.numTrainViews = 4;
        dcfg.numTestViews = 1;
        dcfg.imageWidth = 16;
        dcfg.imageHeight = 16;
        dcfg.renderOpts.numSteps = 48;
        dataset = makeDataset(scene, dcfg);

        HashEncodingConfig grid;
        grid.numLevels = 4;
        grid.log2TableSize = 14;
        grid.baseResolution = 16;
        grid.growthFactor = 1.5f;
        FieldConfig fcfg = FieldConfig::instant3dDefault(grid);
        fcfg.hiddenDim = 16;

        TrainConfig tcfg;
        tcfg.raysPerBatch = 64;
        tcfg.samplesPerRay = 48;
        trainer = std::make_unique<Trainer>(dataset, fcfg, tcfg);

        // Let geometry form so BP gradients concentrate on surfaces.
        for (int i = 0; i < 30; i++)
            trainer->trainIteration();

        trainer->field().densityGrid().setTraceSink(&collector);
        trainer->trainIteration();
        trainer->field().densityGrid().setTraceSink(nullptr);
    }

    Dataset dataset;
    std::unique_ptr<Trainer> trainer;
    MemTraceCollector collector;
};

TEST_F(RealTraceTest, Fig8InterGroupRemotenessIntraGroupLocality)
{
    GroupDistanceStats stats = analyzeVertexGroups(collector.reads());
    ASSERT_GT(stats.pointsAnalyzed, 100u);
    // Intra-group (x-neighbour) distances are tiny; inter-group ones
    // span a large fraction of the table (paper: ~60000 on 2^19-entry
    // tables; proportionally large here).
    EXPECT_LT(stats.intraGroupAbs.mean(), 16.0);
    EXPECT_GT(stats.interGroupAbs.mean(), 500.0);
    EXPECT_GT(stats.interGroupAbs.mean(),
              50.0 * stats.intraGroupAbs.mean());
}

TEST_F(RealTraceTest, Fig9MostIntraDistancesWithin5)
{
    GroupDistanceStats stats = analyzeVertexGroups(collector.reads());
    // Paper: >90% within [-5, 5]; we require a strong majority.
    EXPECT_GT(stats.fractionWithin(5.0), 0.75);
}

TEST_F(RealTraceTest, Fig10BackpropSharesMoreAddresses)
{
    // FF reads stream through the coordinate buffer in batch-parallel
    // order; BP gradients arrive ray-sequentially (Sec 4.2 / Fig 10).
    auto reads = batchMajorOrder(collector.reads(), 48);
    auto writes = collector.writes();
    ASSERT_GT(writes.size(), 1000u);
    SlidingWindowStats ff = uniqueAddressWindows(reads, 1000);
    SlidingWindowStats bp = uniqueAddressWindows(writes, 1000);
    // BP windows contain clearly fewer unique addresses than FF
    // windows (paper: ~200 vs ~1000).
    EXPECT_LT(bp.meanUnique(), 0.8 * ff.meanUnique());
    EXPECT_GT(meanSharingFactor(bp), 1.2);
}

TEST(PatternTest, BatchMajorOrderRoundRobins)
{
    // Two rays of two samples, one access per point.
    std::vector<GridAccess> trace = {
        read(0, 0, 0, 0), read(1, 0, 0, 1),  // ray 0: samples 0, 1
        read(2, 0, 0, 2), read(3, 0, 0, 3),  // ray 1: samples 0, 1
    };
    auto out = batchMajorOrder(trace, 2);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0].address, 0u); // ray0 sample0
    EXPECT_EQ(out[1].address, 2u); // ray1 sample0
    EXPECT_EQ(out[2].address, 1u); // ray0 sample1
    EXPECT_EQ(out[3].address, 3u); // ray1 sample1
}

} // namespace
} // namespace instant3d
