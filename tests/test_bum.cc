/**
 * @file
 * Tests of the Back-Propagation Update Merger: functional correctness
 * (committed sums equal input sums regardless of merge schedule),
 * merge/eviction/timeout behaviour, and traffic reduction on shared-
 * address streams (the Fig 10 workload).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "accel/bum.hh"
#include "common/rng.hh"

namespace instant3d {
namespace {

TEST(BumTest, MergesRepeatedAddress)
{
    BumUnit bum({.numEntries = 16, .timeoutCycles = 100});
    for (int i = 0; i < 10; i++)
        bum.pushUpdate(42, 1.0f);
    bum.flushAll();
    EXPECT_EQ(bum.stats().updatesIn, 10u);
    EXPECT_EQ(bum.stats().sramWrites, 1u);
    EXPECT_EQ(bum.stats().merges, 9u);
    EXPECT_DOUBLE_EQ(bum.committed().at(42), 10.0);
    EXPECT_NEAR(bum.stats().mergeRatio(), 0.9, 1e-12);
}

TEST(BumTest, DistinctAddressesAllocateEntries)
{
    BumUnit bum({.numEntries = 16, .timeoutCycles = 1000});
    for (uint64_t a = 0; a < 10; a++)
        bum.pushUpdate(a, 2.0f);
    EXPECT_EQ(bum.liveEntries(), 10u);
    bum.flushAll();
    EXPECT_EQ(bum.stats().sramWrites, 10u);
    EXPECT_DOUBLE_EQ(bum.stats().mergeRatio(), 0.0);
}

TEST(BumTest, EvictsOldestWhenFull)
{
    BumUnit bum({.numEntries = 4, .timeoutCycles = 1000});
    for (uint64_t a = 0; a < 5; a++)
        bum.pushUpdate(a, 1.0f);
    // Entry 0 (least recently merged) must have been written back.
    EXPECT_EQ(bum.liveEntries(), 4u);
    EXPECT_EQ(bum.stats().sramWrites, 1u);
    ASSERT_TRUE(bum.committed().count(0));
    EXPECT_DOUBLE_EQ(bum.committed().at(0), 1.0);
}

TEST(BumTest, TimeoutFlushesIdleEntries)
{
    BumUnit bum({.numEntries = 16, .timeoutCycles = 5});
    bum.pushUpdate(7, 3.0f);
    for (int i = 0; i < 10; i++)
        bum.idleCycle();
    EXPECT_EQ(bum.liveEntries(), 0u);
    EXPECT_EQ(bum.stats().sramWrites, 1u);
    EXPECT_DOUBLE_EQ(bum.committed().at(7), 3.0);
}

TEST(BumTest, LearningRatePreScalesGradients)
{
    BumUnit bum({.numEntries = 4, .timeoutCycles = 100,
                 .learningRate = 0.5f});
    bum.pushUpdate(1, 4.0f);
    bum.pushUpdate(1, 4.0f);
    bum.flushAll();
    EXPECT_DOUBLE_EQ(bum.committed().at(1), 4.0);
}

/**
 * Property: for any update stream and any buffer geometry, the final
 * committed accumulation per address equals the plain sum -- merging
 * only changes traffic, never results.
 */
TEST(BumTest, CommittedSumsAlwaysExact)
{
    Rng r(17);
    for (int trial = 0; trial < 15; trial++) {
        BumConfig cfg;
        cfg.numEntries = 1 + static_cast<int>(r.nextU32(31));
        cfg.timeoutCycles = 1 + static_cast<int>(r.nextU32(100));
        BumUnit bum(cfg);

        std::map<uint64_t, double> expect;
        int n = 500 + static_cast<int>(r.nextU32(1500));
        for (int i = 0; i < n; i++) {
            uint64_t addr = r.nextU32(64); // heavy sharing
            float v = r.nextFloat(-1.0f, 1.0f);
            expect[addr] += v;
            bum.pushUpdate(addr, v);
        }
        bum.flushAll();

        EXPECT_EQ(bum.stats().updatesIn, static_cast<uint64_t>(n));
        EXPECT_EQ(bum.stats().sramWrites + bum.stats().merges,
                  static_cast<uint64_t>(n));
        for (const auto &[addr, sum] : expect) {
            ASSERT_TRUE(bum.committed().count(addr)) << addr;
            EXPECT_NEAR(bum.committed().at(addr), sum, 1e-6)
                << "addr " << addr << " trial " << trial;
        }
    }
}

TEST(BumTest, SharedStreamsMergeMoreThanScatteredOnes)
{
    // Fig 10's point: BP streams with shared addresses benefit; FF-like
    // unique streams would not.
    Rng r(29);
    BumUnit shared({.numEntries = 16, .timeoutCycles = 64});
    BumUnit scattered({.numEntries = 16, .timeoutCycles = 64});
    for (int i = 0; i < 5000; i++) {
        shared.pushUpdate(r.nextU32(50), 1.0f);       // ~50 hot lines
        scattered.pushUpdate(r.nextU32(1 << 20), 1.0f); // all unique
    }
    shared.flushAll();
    scattered.flushAll();
    EXPECT_GT(shared.stats().mergeRatio(), 0.25);
    EXPECT_LT(scattered.stats().mergeRatio(), 0.05);
}

class BumCapacityTest : public ::testing::TestWithParam<int>
{
};

TEST_P(BumCapacityTest, LargerBuffersNeverMergeLess)
{
    // Compare capacity N against capacity 2N on the same stream.
    Rng r(41);
    std::vector<std::pair<uint64_t, float>> stream;
    for (int i = 0; i < 4000; i++)
        stream.push_back({r.nextU32(200), 1.0f});

    BumUnit small({.numEntries = GetParam(), .timeoutCycles = 64});
    BumUnit big({.numEntries = 2 * GetParam(), .timeoutCycles = 64});
    for (auto &[a, v] : stream) {
        small.pushUpdate(a, v);
        big.pushUpdate(a, v);
    }
    small.flushAll();
    big.flushAll();
    EXPECT_GE(big.stats().mergeRatio() + 1e-9,
              small.stats().mergeRatio());
}

INSTANTIATE_TEST_SUITE_P(Capacities, BumCapacityTest,
                         ::testing::Values(2, 4, 8, 16, 32));

} // namespace
} // namespace instant3d
