/**
 * @file
 * Unit tests for src/scene: procedural scenes, cameras, images/PSNR, and
 * ground-truth dataset rendering.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "scene/dataset.hh"
#include "scene/scene.hh"

namespace instant3d {
namespace {

class SyntheticSceneTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SyntheticSceneTest, DensityBoundedAndZeroOutside)
{
    auto scene = makeSyntheticScene(GetParam());
    ASSERT_NE(scene, nullptr);
    EXPECT_EQ(scene->name(), GetParam());

    Rng r(1);
    for (int i = 0; i < 2000; i++) {
        Vec3 p(r.nextFloat(), r.nextFloat(), r.nextFloat());
        float d = scene->density(p);
        EXPECT_GE(d, 0.0f);
        EXPECT_LE(d, 100.0f);
    }
    // Outside the unit cube the field must vanish.
    EXPECT_EQ(scene->density({-0.1f, 0.5f, 0.5f}), 0.0f);
    EXPECT_EQ(scene->density({0.5f, 1.2f, 0.5f}), 0.0f);
}

TEST_P(SyntheticSceneTest, HasNonEmptyInterior)
{
    auto scene = makeSyntheticScene(GetParam());
    Rng r(2);
    int occupied = 0;
    for (int i = 0; i < 5000; i++) {
        Vec3 p(r.nextFloat(), r.nextFloat(), r.nextFloat());
        if (scene->density(p) > 0.0f)
            occupied++;
    }
    EXPECT_GT(occupied, 10) << "scene looks empty";
    EXPECT_LT(occupied, 4000) << "scene looks like a solid block";
}

TEST_P(SyntheticSceneTest, ColorsInUnitRange)
{
    auto scene = makeSyntheticScene(GetParam());
    Rng r(3);
    for (int i = 0; i < 1000; i++) {
        Vec3 p(r.nextFloat(), r.nextFloat(), r.nextFloat());
        Vec3 d(r.nextFloat() - 0.5f, r.nextFloat() - 0.5f,
               r.nextFloat() - 0.5f);
        Vec3 c = scene->color(p, d.normalized());
        EXPECT_GE(c.minComponent(), 0.0f);
        EXPECT_LE(c.maxComponent(), 1.0f);
    }
}

INSTANTIATE_TEST_SUITE_P(AllScenes, SyntheticSceneTest,
                         ::testing::ValuesIn(syntheticSceneNames()));

TEST(SceneFactoryTest, EightCanonicalNames)
{
    EXPECT_EQ(syntheticSceneNames().size(), 8u);
}

TEST(SceneFactoryTest, SilvrAndScanNetVariants)
{
    for (int v = 0; v < 4; v++) {
        auto silvr = makeSilvrScene(v);
        auto scan = makeScanNetScene(v);
        ASSERT_NE(silvr, nullptr);
        ASSERT_NE(scan, nullptr);
        EXPECT_NE(silvr->name(), scan->name());
    }
    // Different variants produce different content.
    auto a = makeSilvrScene(0);
    auto b = makeSilvrScene(1);
    int diff = 0;
    Rng r(4);
    for (int i = 0; i < 500; i++) {
        Vec3 p(r.nextFloat(), r.nextFloat(), r.nextFloat());
        if ((a->density(p) > 0) != (b->density(p) > 0))
            diff++;
    }
    EXPECT_GT(diff, 0);
}

TEST(CameraTest, RaysAreNormalizedAndForward)
{
    Camera cam({0.5f, 0.5f, 2.0f}, {0.5f, 0.5f, 0.5f}, {0, 1, 0}, 45.0f,
               64, 48);
    for (int row : {0, 24, 47}) {
        for (int col : {0, 32, 63}) {
            Ray ray = cam.pixelRay(col, row);
            EXPECT_NEAR(ray.direction.norm(), 1.0f, 1e-5f);
            // All rays point roughly toward -z (the target).
            EXPECT_LT(ray.direction.z, 0.0f);
        }
    }
}

TEST(CameraTest, CenterPixelHitsTarget)
{
    Vec3 eye(0.5f, 0.5f, 2.0f), target(0.5f, 0.5f, 0.5f);
    Camera cam(eye, target, {0, 1, 0}, 45.0f, 64, 64);
    Ray ray = cam.pixelRay(31, 31, 1.0f, 1.0f); // exact image center
    Vec3 to_target = (target - eye).normalized();
    EXPECT_NEAR(ray.direction.dot(to_target), 1.0f, 1e-4f);
}

TEST(CameraTest, OrbitCamerasLookInward)
{
    auto cams = makeOrbitCameras(16, 1.2f, 8, 8);
    ASSERT_EQ(cams.size(), 16u);
    const Vec3 center(0.5f, 0.5f, 0.5f);
    for (const auto &cam : cams) {
        EXPECT_NEAR((cam.eye() - center).norm(), 1.2f, 1e-4f);
        Ray ray = cam.pixelRay(4, 4);
        EXPECT_GT(ray.direction.dot((center - cam.eye()).normalized()),
                  0.9f);
    }
}

TEST(ImageTest, PsnrIdenticalAndKnown)
{
    Image a(8, 8), b(8, 8);
    EXPECT_DOUBLE_EQ(psnr(a, a), 99.0);
    for (int r = 0; r < 8; r++)
        for (int c = 0; c < 8; c++)
            b.at(c, r) = Vec3(0.1f, 0.1f, 0.1f);
    // MSE = 0.01 -> PSNR = 20 dB.
    EXPECT_NEAR(psnr(a, b), 20.0, 1e-3);
}

TEST(ImageTest, PsnrScalar)
{
    std::vector<float> a(100, 0.0f), b(100, 0.2f);
    // Normalized by peak 2.0: MSE = 0.01 -> 20 dB.
    EXPECT_NEAR(psnrScalar(a, b, 2.0f), 20.0, 1e-3);
}

TEST(ImageTest, WritePpm)
{
    Image img(4, 4);
    img.at(1, 2) = Vec3(1.0f, 0.0f, 0.5f);
    std::string path = ::testing::TempDir() + "/i3d_test.ppm";
    EXPECT_TRUE(img.writePpm(path));
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char magic[3] = {};
    ASSERT_EQ(std::fread(magic, 1, 2, f), 2u);
    EXPECT_STREQ(magic, "P6");
    std::fclose(f);
}

TEST(DatasetTest, GroundTruthRenderProducesContent)
{
    auto scene = makeSyntheticScene("lego");
    DatasetConfig cfg;
    cfg.numTrainViews = 3;
    cfg.numTestViews = 1;
    cfg.imageWidth = 24;
    cfg.imageHeight = 24;
    cfg.renderOpts.numSteps = 96;
    Dataset ds = makeDataset(scene, cfg);

    ASSERT_EQ(ds.trainViews.size(), 3u);
    ASSERT_EQ(ds.testViews.size(), 1u);

    // The scene must actually appear in the images: nonzero pixels.
    double energy = 0.0;
    for (const auto &p : ds.trainViews[0].rgb.data())
        energy += p.x + p.y + p.z;
    EXPECT_GT(energy, 1.0);

    // Depth must be within [tNear, tFar].
    for (float d : ds.trainViews[0].depth) {
        EXPECT_GE(d, cfg.renderOpts.tNear);
        EXPECT_LE(d, cfg.renderOpts.tFar + 1e-4f);
    }
}

TEST(DatasetTest, OpaqueRayDepthMatchesSurface)
{
    // A ray straight at a dense ball should return depth near the first
    // intersection distance.
    auto scene = makeSyntheticScene("materials");
    RenderOptions opts;
    opts.numSteps = 400;
    Camera cam({0.28f, 0.42f, 1.5f}, {0.28f, 0.42f, 0.58f}, {0, 1, 0},
               30.0f, 16, 16);
    float depth = 0.0f;
    Ray ray = cam.pixelRay(7, 7, 1.0f, 1.0f);
    Vec3 color = renderRayGroundTruth(*scene, ray, opts, &depth);
    (void)color;
    // Ball center z=0.58 r=0.055, camera z=1.5: surface at ~0.865.
    EXPECT_NEAR(depth, 1.5f - 0.58f - 0.055f, 0.05f);
}

} // namespace
} // namespace instant3d
