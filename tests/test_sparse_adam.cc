/**
 * @file
 * Tests for the sparse touched-entry optimizer and the amortized
 * occupancy refresh (PR 3):
 *
 *  - Lazy sparse Adam replays deferred zero-gradient updates
 *    bit-exactly: on a hand-built touch pattern the sparse trajectory
 *    (with catch-up) equals the dense trajectory float-for-float,
 *    including mid-stream catch-ups and never-touched entries.
 *
 *  - Trainer-level parity: sparse-optimizer training with a skipping
 *    occupancy grid is bit-identical to dense-optimizer training --
 *    losses every iteration and all parameters at the end -- at 1, 2,
 *    and 8 threads, including a frozen-color schedule (entries read by
 *    the forward pass while not being touched).
 *
 *  - The partial occupancy refresh is deterministic for a fixed seed
 *    and converges to the same occupied set as the full res^3 sweep.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "nerf/adam.hh"
#include "nerf/trainer.hh"
#include "scene/scene.hh"

namespace instant3d {
namespace {

FieldConfig
smallField()
{
    HashEncodingConfig grid;
    grid.numLevels = 4;
    grid.featuresPerEntry = 2;
    grid.log2TableSize = 12;
    grid.baseResolution = 8;
    grid.growthFactor = 1.6f;
    FieldConfig cfg = FieldConfig::instant3dDefault(grid);
    cfg.hiddenDim = 16;
    return cfg;
}

Dataset
smallDataset()
{
    auto scene = makeSyntheticScene("materials");
    DatasetConfig cfg;
    cfg.numTrainViews = 4;
    cfg.numTestViews = 1;
    cfg.imageWidth = 16;
    cfg.imageHeight = 16;
    cfg.renderOpts.numSteps = 48;
    return makeDataset(scene, cfg);
}

// ---- Lazy catch-up vs dense, hand-built touch pattern ------------------

/**
 * 6 entries x span 2, 12 steps, a mix of schedules: entry 0 touched
 * every step, entry 1 once at the start (long replay), entry 2 never,
 * entry 3 sporadically, entry 4 at the last step only, entry 5 twice
 * in a row then never again. Dense Adam sees the same gradients as a
 * full vector with zeros elsewhere.
 */
TEST(SparseAdamTest, LazyCatchUpMatchesDenseOnHandBuiltPattern)
{
    constexpr uint32_t span = 2;
    constexpr size_t entries = 6;
    constexpr size_t n = entries * span;
    constexpr int steps = 12;

    AdamConfig acfg;
    acfg.lr = 0.05f;
    Adam dense(n, acfg);
    Adam lazy(n, acfg);
    lazy.enableSparse(span);
    Adam eager(n, acfg); // catches up every step
    eager.enableSparse(span);

    std::vector<float> p_dense(n), p_lazy(n), p_eager(n);
    Rng init(3);
    for (size_t i = 0; i < n; i++)
        p_dense[i] = p_lazy[i] = p_eager[i] = init.nextFloat(-1.f, 1.f);

    auto touched_at = [](int step) {
        std::vector<uint32_t> t = {0 * span}; // entry 0: every step
        if (step == 0)
            t.push_back(1 * span);
        if (step % 3 == 1)
            t.push_back(3 * span);
        if (step == steps - 1)
            t.push_back(4 * span);
        if (step == 0 || step == 1)
            t.push_back(5 * span);
        return t;
    };

    Rng grads_rng(17);
    for (int step = 0; step < steps; step++) {
        std::vector<float> grads(n, 0.0f);
        for (uint32_t off : touched_at(step))
            for (uint32_t f = 0; f < span; f++)
                grads[off + f] = grads_rng.nextFloat(-1.0f, 1.0f);

        dense.step(p_dense, grads);
        lazy.stepSparse(p_lazy, grads, touched_at(step));
        eager.stepSparse(p_eager, grads, touched_at(step));
        eager.catchUp(p_eager); // settling every step must be harmless
    }

    // Before the final catch-up, deferred entries may legitimately lag.
    lazy.catchUp(p_lazy);
    eager.catchUp(p_eager);

    for (size_t i = 0; i < n; i++) {
        ASSERT_EQ(p_dense[i], p_lazy[i]) << "lazy param " << i;
        ASSERT_EQ(p_dense[i], p_eager[i]) << "eager param " << i;
    }

    // Entry 2 was never touched: it must not have moved at all.
    for (uint32_t f = 0; f < span; f++) {
        float orig = 0.0f;
        Rng replay(3);
        for (size_t i = 0; i <= 2 * span + f; i++)
            orig = replay.nextFloat(-1.f, 1.f);
        ASSERT_EQ(p_lazy[2 * span + f], orig);
    }
}

/**
 * The sweep-retirement contract over a long decay: entries touched
 * once keep receiving zero-gradient decay updates until their update
 * magnitude provably rounds to a no-op, retire from the sweep, and are
 * caught back up bit-exactly when re-touched hundreds of steps later.
 * Dense Adam runs the same schedule as the ground truth; params are
 * compared bitwise every 25 steps (not just at the end), which is
 * exactly what the training forward pass observes.
 */
TEST(SparseAdamTest, RetirementAndLongGapReplayMatchDense)
{
    constexpr uint32_t span = 2;
    constexpr size_t entries = 8;
    constexpr size_t n = entries * span;
    constexpr int steps = 400;

    AdamConfig acfg;
    acfg.lr = 0.05f;
    Adam dense(n, acfg);
    Adam sparse(n, acfg);
    sparse.enableSparse(span);

    std::vector<float> p_dense(n), p_sparse(n);
    Rng init(5);
    for (size_t i = 0; i < n; i++)
        p_dense[i] = p_sparse[i] = init.nextFloat(-1.f, 1.f);

    // Entry 0 touched at the start only; entries 1-3 touched at the
    // start and re-touched late (after their momentum has retired);
    // entry 4 touched every 50 steps; the rest never.
    auto touched_at = [](int step) {
        std::vector<uint32_t> t;
        if (step == 0)
            for (uint32_t e = 0; e < 4; e++)
                t.push_back(e * span);
        if (step == 350 || step == 370 || step == 390)
            for (uint32_t e = 1; e < 4; e++)
                t.push_back(e * span);
        if (step % 50 == 0)
            t.push_back(4 * span);
        return t;
    };

    Rng grads_rng(23);
    size_t max_active = 0, min_active = entries;
    for (int step = 0; step < steps; step++) {
        std::vector<float> grads(n, 0.0f);
        for (uint32_t off : touched_at(step))
            for (uint32_t f = 0; f < span; f++)
                grads[off + f] = grads_rng.nextFloat(-1.0f, 1.0f);

        dense.step(p_dense, grads);
        sparse.stepSparse(p_sparse, grads, touched_at(step));
        max_active = std::max(max_active, sparse.activeEntries());
        min_active = std::min(min_active, sparse.activeEntries());

        if (step % 25 == 0 || step == steps - 1) {
            for (size_t i = 0; i < n; i++)
                ASSERT_EQ(p_dense[i], p_sparse[i])
                    << "step " << step << " param " << i;
        }
    }
    // The decayed-out entries must actually have left the sweep at
    // some point (otherwise this test exercises nothing).
    EXPECT_GE(max_active, 5u);
    EXPECT_LE(min_active, 2u) << "retirement never engaged";
}

TEST(SparseAdamTest, DuplicateTouchesAreIgnored)
{
    constexpr uint32_t span = 2;
    AdamConfig acfg;
    Adam a(4, acfg), b(4, acfg);
    a.enableSparse(span);
    b.enableSparse(span);
    std::vector<float> pa = {0.5f, -0.5f, 0.25f, 1.0f};
    std::vector<float> pb = pa;
    std::vector<float> grads = {0.1f, -0.2f, 0.0f, 0.0f};

    a.stepSparse(pa, grads, {0});
    b.stepSparse(pb, grads, {0, 0, 0});
    for (size_t i = 0; i < pa.size(); i++)
        ASSERT_EQ(pa[i], pb[i]) << "param " << i;
}

TEST(SparseAdamTest, SparseModeRejectsWeightDecay)
{
    AdamConfig acfg;
    acfg.l2Reg = 1e-4f;
    Adam adam(4, acfg);
    EXPECT_DEATH(adam.enableSparse(2), "l2Reg");
}

// ---- Trainer-level sparse-vs-dense parity ------------------------------

std::vector<float>
allParams(Trainer &t)
{
    t.syncParams();
    std::vector<float> params;
    for (auto gid : t.field().paramGroups()) {
        const auto &p = t.field().groupParams(gid);
        params.insert(params.end(), p.begin(), p.end());
    }
    return params;
}

/**
 * The tentpole numerics contract: with a skipping occupancy grid (so
 * the touched set really is sparse) and a frozen-color schedule (so
 * the forward pass reads color entries on iterations that do not touch
 * them), sparse-optimizer training is bit-identical to dense-optimizer
 * training -- per-iteration losses and all parameters -- at 1, 2, and
 * 8 threads.
 */
TEST(SparseAdamParityTest, SparseMatchesDenseWithSkippingGrid)
{
    Dataset ds = smallDataset();

    TrainConfig base;
    base.raysPerBatch = 48;
    base.samplesPerRay = 24;
    base.useOccupancyGrid = true;
    base.occupancyUpdatePeriod = 2;
    base.occupancy.resolution = 8;
    base.occupancy.decay = 0.5f;
    base.colorUpdatePeriod = 2;

    const int iters = 20;

    TrainConfig dense = base;
    dense.sparseOptimizer = false;
    dense.numThreads = 1;
    Trainer dense_t(ds, smallField(), dense);
    ASSERT_FALSE(dense_t.sparseOptimizerActive());
    std::vector<double> ref_losses;
    for (int i = 0; i < iters; i++)
        ref_losses.push_back(dense_t.trainIteration().loss);
    std::vector<float> ref_params = allParams(dense_t);

    for (int threads : {1, 2, 8}) {
        TrainConfig sparse = base;
        sparse.numThreads = threads;
        Trainer sparse_t(ds, smallField(), sparse);
        ASSERT_TRUE(sparse_t.sparseOptimizerActive());

        uint64_t stepped = 0;
        for (int i = 0; i < iters; i++) {
            TrainStats st = sparse_t.trainIteration();
            ASSERT_EQ(st.loss, ref_losses[i])
                << "threads " << threads << " iteration " << i;
            stepped += st.sparseEntriesStepped;
        }
        EXPECT_GT(stepped, 0u) << "sparse path must actually engage";

        std::vector<float> params = allParams(sparse_t);
        ASSERT_EQ(params.size(), ref_params.size());
        for (size_t i = 0; i < params.size(); i++)
            ASSERT_EQ(params[i], ref_params[i])
                << "threads " << threads << " param " << i;

        // The skipping scenario must actually skip.
        EXPECT_LT(sparse_t.occupancyGrid()->occupiedFraction(), 1.0);
    }
}

/** Rendering mid-training must not perturb the sparse trajectory. */
TEST(SparseAdamParityTest, MidTrainingEvalDoesNotChangeResults)
{
    Dataset ds = smallDataset();
    TrainConfig cfg;
    cfg.raysPerBatch = 32;
    cfg.samplesPerRay = 16;
    cfg.useOccupancyGrid = true;
    cfg.occupancyUpdatePeriod = 4;
    cfg.occupancy.resolution = 8;
    cfg.occupancy.decay = 0.5f;

    Trainer plain(ds, smallField(), cfg);
    Trainer evaled(ds, smallField(), cfg);
    for (int i = 0; i < 12; i++) {
        TrainStats a = plain.trainIteration();
        TrainStats b = evaled.trainIteration();
        ASSERT_EQ(a.loss, b.loss) << "iteration " << i;
        if (i == 5)
            evaled.renderImage(ds.testViews[0].camera); // forces a settle
    }
    std::vector<float> pa = allParams(plain);
    std::vector<float> pb = allParams(evaled);
    for (size_t i = 0; i < pa.size(); i++)
        ASSERT_EQ(pa[i], pb[i]) << "param " << i;
}

// ---- Partial occupancy refresh -----------------------------------------

TEST(PartialRefreshTest, FixedSeedGivesIdenticalGrid)
{
    OccupancyGridConfig ocfg;
    ocfg.resolution = 8;
    ocfg.samplesPerCellUpdate = 2;
    ocfg.partialUpdate = true;
    ocfg.candidateFraction = 0.125f;

    OccupancyGrid a(ocfg), b(ocfg);
    NerfField field_a(smallField(), 11), field_b(smallField(), 11);
    Rng rng_a(77), rng_b(77);
    for (int i = 0; i < 4; i++) {
        a.refresh(field_a, rng_a);
        b.refresh(field_b, rng_b);
    }
    ASSERT_EQ(a.numCells(), b.numCells());
    for (size_t i = 0; i < a.numCells(); i++)
        ASSERT_EQ(a.cellDensity(i), b.cellDensity(i)) << "cell " << i;
}

/**
 * On a trained toy field, the partial refresh converges to the full
 * sweep's occupied set. Per-cell probe streams keyed by (round key,
 * cell index) make the claim structural: with every cell a candidate
 * (candidateFraction = 1) the partial path is BIT-IDENTICAL to the
 * full sweep, and with a 1/4 rotation it never marks a cell the full
 * sweep would not (probing a subset can only lower the running-max
 * density estimate) while cleared cells re-enter within 1/fraction
 * rounds -- so the only divergence is a small bounded lag on cells
 * whose per-round probe maximum flickers across the threshold.
 */
TEST(PartialRefreshTest, ConvergesToFullSweepOccupiedSet)
{
    Dataset ds = smallDataset();
    TrainConfig tcfg;
    tcfg.raysPerBatch = 64;
    tcfg.samplesPerRay = 24;
    Trainer trainer(ds, smallField(), tcfg);
    for (int i = 0; i < 100; i++)
        trainer.trainIteration();
    trainer.syncParams();
    NerfField &field = trainer.field();

    OccupancyGridConfig base;
    base.resolution = 8;
    base.samplesPerCellUpdate = 4;
    base.decay = 0.5f;
    base.occupancyThreshold = 0.1f;

    // One fresh Rng per round, same seeds for every grid: each round
    // draws the same round key, so any cell probed by two sweeps in
    // the same round sees bit-identical probe positions.
    auto run = [&](bool partial, float fraction) {
        OccupancyGridConfig cfg = base;
        cfg.partialUpdate = partial;
        cfg.candidateFraction = fraction;
        auto grid = std::make_unique<OccupancyGrid>(cfg);
        for (int i = 0; i < 10; i++) {
            Rng round_rng(91, static_cast<uint64_t>(i));
            grid->refresh(field, round_rng);
        }
        return grid;
    };
    auto full = run(false, 0.0f);
    auto exact = run(true, 1.0f);  // every cell, every round
    auto part = run(true, 0.25f); // rotating 1/4 candidate slice

    // The toy scene must exercise both classes of cell.
    EXPECT_GT(full->occupiedFraction(), 0.0);
    EXPECT_LT(full->occupiedFraction(), 1.0);

    // Probing everything every round is the full sweep, bit for bit.
    for (size_t i = 0; i < full->numCells(); i++)
        ASSERT_EQ(exact->cellDensity(i), full->cellDensity(i))
            << "cell " << i;

    // The amortized rotation: no false occupancy ever (subset of the
    // full sweep's set), and the bounded re-probe lag leaves only a
    // small flicker band unconfirmed.
    const float thr = base.occupancyThreshold;
    size_t lagging = 0;
    for (size_t i = 0; i < full->numCells(); i++) {
        const bool full_occ = full->cellDensity(i) >= thr;
        const bool part_occ = part->cellDensity(i) >= thr;
        ASSERT_LE(part->cellDensity(i), full->cellDensity(i))
            << "cell " << i
            << ": partial probing must never raise the estimate";
        if (part_occ) {
            ASSERT_TRUE(full_occ) << "cell " << i << " falsely occupied";
        }
        if (full_occ != part_occ)
            lagging++;
    }
    EXPECT_LT(static_cast<double>(lagging),
              0.05 * static_cast<double>(full->numCells()))
        << "partial refresh lags the full sweep on too many cells";
}

} // namespace
} // namespace instant3d
