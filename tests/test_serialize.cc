/**
 * @file
 * Checkpoint round-trip coverage: bitwise save/load parity (field and
 * occupancy grid), rejection of corrupt/truncated/mismatched files
 * with the destination left untouched, and the mid-training
 * Trainer::saveCheckpoint settling contract.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <vector>

#include "nerf/serialize.hh"
#include "nerf/trainer.hh"
#include "scene/scene.hh"

namespace instant3d {
namespace {

Dataset
tinyDataset(const std::string &scene_name = "materials")
{
    auto scene = makeSyntheticScene(scene_name);
    DatasetConfig cfg;
    cfg.numTrainViews = 6;
    cfg.numTestViews = 2;
    cfg.imageWidth = 20;
    cfg.imageHeight = 20;
    cfg.renderOpts.numSteps = 64;
    return makeDataset(scene, cfg);
}

FieldConfig
tinyField()
{
    HashEncodingConfig grid;
    grid.numLevels = 4;
    grid.featuresPerEntry = 2;
    grid.log2TableSize = 12;
    grid.baseResolution = 8;
    grid.growthFactor = 1.6f;
    FieldConfig cfg = FieldConfig::instant3dDefault(grid);
    cfg.hiddenDim = 16;
    return cfg;
}

TrainConfig
tinyTrain()
{
    TrainConfig cfg;
    cfg.raysPerBatch = 96;
    cfg.samplesPerRay = 32;
    cfg.adam.lr = 1e-2f;
    return cfg;
}

/** All parameter vectors of a field, in group order. */
std::vector<std::vector<float>>
snapshotParams(NerfField &field)
{
    std::vector<std::vector<float>> out;
    for (auto gid : field.paramGroups())
        out.push_back(field.groupParams(gid));
    return out;
}

void
expectParamsEqual(NerfField &field,
                  const std::vector<std::vector<float>> &expect)
{
    auto groups = field.paramGroups();
    ASSERT_EQ(groups.size(), expect.size());
    for (size_t g = 0; g < groups.size(); g++) {
        const auto &params = field.groupParams(groups[g]);
        ASSERT_EQ(params.size(), expect[g].size());
        for (size_t i = 0; i < params.size(); i++)
            ASSERT_EQ(params[i], expect[g][i])
                << "group " << g << " param " << i;
    }
}

/** Copy the first `bytes` bytes of `src` into `dst`. */
void
truncateFile(const std::string &src, const std::string &dst,
             size_t bytes)
{
    std::ifstream in(src, std::ios::binary);
    std::vector<char> data((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    ASSERT_LE(bytes, data.size());
    std::ofstream out(dst, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(bytes));
}

size_t
fileSize(const std::string &path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    return static_cast<size_t>(in.tellg());
}

TEST(SerializeTest, SaveLoadBitwiseRoundTrip)
{
    Dataset ds = tinyDataset();
    Trainer trainer(ds, tinyField(), tinyTrain());
    for (int i = 0; i < 10; i++)
        trainer.trainIteration();
    trainer.syncParams();

    const std::string path = "test_serialize_roundtrip.bin";
    ASSERT_TRUE(saveField(trainer.field(), path));

    // A fresh field with a different seed starts from different
    // weights; after loadField it must match the saved ones bitwise.
    NerfField loaded(tinyField(), /*seed=*/777);
    ASSERT_TRUE(loadField(loaded, path));
    expectParamsEqual(loaded, snapshotParams(trainer.field()));

    EXPECT_EQ(fieldStorageBytes(loaded),
              fieldStorageBytes(trainer.field()));
    std::remove(path.c_str());
}

TEST(SerializeTest, OccupancyCheckpointRoundTrip)
{
    Dataset ds = tinyDataset();
    TrainConfig tcfg = tinyTrain();
    tcfg.useOccupancyGrid = true;
    tcfg.occupancyUpdatePeriod = 8;
    Trainer trainer(ds, tinyField(), tcfg);
    for (int i = 0; i < 20; i++)
        trainer.trainIteration();

    const std::string path = "test_serialize_occ.bin";
    ASSERT_TRUE(trainer.saveCheckpoint(path));

    CheckpointInfo info = peekCheckpoint(path);
    EXPECT_TRUE(info.valid);
    EXPECT_TRUE(info.decoupled);
    EXPECT_TRUE(info.hasOccupancy);
    EXPECT_EQ(info.occResolution,
              trainer.occupancyGrid()->resolution());

    NerfField loaded(tinyField(), 777);
    OccupancyGrid grid(trainer.occupancyGrid()->config());
    ASSERT_TRUE(loadCheckpoint(loaded, &grid, path));
    expectParamsEqual(loaded, snapshotParams(trainer.field()));
    const OccupancyGrid *src = trainer.occupancyGrid();
    ASSERT_EQ(grid.numCells(), src->numCells());
    for (size_t c = 0; c < grid.numCells(); c++)
        ASSERT_EQ(grid.cellDensity(c), src->cellDensity(c))
            << "cell " << c;
    std::remove(path.c_str());
}

TEST(SerializeTest, BadMagicRejectedFieldUntouched)
{
    NerfField source(tinyField(), 1);
    const std::string path = "test_serialize_badmagic.bin";
    ASSERT_TRUE(saveField(source, path));

    // Corrupt the magic word.
    {
        std::fstream f(path,
                       std::ios::binary | std::ios::in | std::ios::out);
        f.seekp(0);
        f.put('X');
    }

    NerfField dest(tinyField(), 2);
    auto before = snapshotParams(dest);
    EXPECT_FALSE(loadField(dest, path));
    expectParamsEqual(dest, before);
    EXPECT_FALSE(peekCheckpoint(path).valid);
    std::remove(path.c_str());
}

TEST(SerializeTest, TruncatedRejectedFieldUntouched)
{
    NerfField source(tinyField(), 1);
    const std::string path = "test_serialize_full.bin";
    ASSERT_TRUE(saveField(source, path));
    const size_t total = fileSize(path);
    ASSERT_GT(total, 64u);

    NerfField dest(tinyField(), 2);
    auto before = snapshotParams(dest);

    // Cut in the header, after the header, mid-group, and one byte
    // short of complete; every prefix must be rejected cleanly.
    const std::string cut = "test_serialize_truncated.bin";
    for (size_t bytes : {size_t{3}, size_t{24}, total / 2, total - 1}) {
        truncateFile(path, cut, bytes);
        EXPECT_FALSE(loadField(dest, cut)) << "bytes=" << bytes;
        expectParamsEqual(dest, before);
    }
    std::remove(path.c_str());
    std::remove(cut.c_str());
}

TEST(SerializeTest, ShapeMismatchRejected)
{
    NerfField source(tinyField(), 1);
    const std::string path = "test_serialize_shape.bin";
    ASSERT_TRUE(saveField(source, path));

    // Same mode, different table size -> group-size mismatch.
    FieldConfig other = tinyField();
    other.densityGrid.log2TableSize = 10;
    other.colorGrid.log2TableSize = 8;
    NerfField dest(other, 2);
    auto before = snapshotParams(dest);
    EXPECT_FALSE(loadField(dest, path));
    expectParamsEqual(dest, before);

    // Mode mismatch (coupled vs decoupled).
    HashEncodingConfig grid;
    grid.numLevels = 4;
    grid.featuresPerEntry = 2;
    grid.log2TableSize = 12;
    grid.baseResolution = 8;
    grid.growthFactor = 1.6f;
    FieldConfig coupled = FieldConfig::ngpBaseline(grid);
    coupled.hiddenDim = 16;
    NerfField dest2(coupled, 3);
    auto before2 = snapshotParams(dest2);
    EXPECT_FALSE(loadField(dest2, path));
    expectParamsEqual(dest2, before2);
    std::remove(path.c_str());
}

TEST(SerializeTest, OccupancyExpectationMismatchRejected)
{
    NerfField source(tinyField(), 1);
    const std::string path = "test_serialize_noocc.bin";
    ASSERT_TRUE(saveField(source, path));

    // Caller expects a grid but the file has none.
    NerfField dest(tinyField(), 2);
    OccupancyGridConfig ocfg;
    OccupancyGrid grid(ocfg);
    auto before = snapshotParams(dest);
    EXPECT_FALSE(loadCheckpoint(dest, &grid, path));
    expectParamsEqual(dest, before);

    // Resolution mismatch between file and destination grid.
    OccupancyGrid grid16{[] {
        OccupancyGridConfig c;
        c.resolution = 16;
        return c;
    }()};
    const std::string occ_path = "test_serialize_occ32.bin";
    OccupancyGrid grid32{[] {
        OccupancyGridConfig c;
        c.resolution = 32;
        return c;
    }()};
    ASSERT_TRUE(saveCheckpoint(source, &grid32, occ_path));
    EXPECT_FALSE(loadCheckpoint(dest, &grid16, occ_path));
    expectParamsEqual(dest, before);

    // A file *with* a grid loads fine when the caller ignores it.
    EXPECT_TRUE(loadCheckpoint(dest, nullptr, occ_path));
    expectParamsEqual(dest, snapshotParams(source));
    std::remove(path.c_str());
    std::remove(occ_path.c_str());
}

/**
 * The sparse-optimizer checkpoint hazard: a mid-training checkpoint
 * must observe settled (dense-Adam-equivalent) parameters, and taking
 * one must not perturb the training trajectory.
 */
TEST(SerializeTest, MidTrainingCheckpointSettledAndNonPerturbing)
{
    Dataset ds = tinyDataset();
    TrainConfig tcfg = tinyTrain();
    tcfg.useOccupancyGrid = true;
    tcfg.occupancyUpdatePeriod = 8;

    Trainer checkpointed(ds, tinyField(), tcfg);
    Trainer reference(ds, tinyField(), tcfg);
    ASSERT_TRUE(checkpointed.sparseOptimizerActive());

    for (int i = 0; i < 15; i++) {
        checkpointed.trainIteration();
        reference.trainIteration();
    }

    const std::string path = "test_serialize_midtrain.bin";
    ASSERT_TRUE(checkpointed.saveCheckpoint(path));

    // The checkpoint equals the settled live state...
    NerfField loaded(tinyField(), 777);
    OccupancyGrid grid(checkpointed.occupancyGrid()->config());
    ASSERT_TRUE(loadCheckpoint(loaded, &grid, path));
    checkpointed.syncParams();
    expectParamsEqual(loaded, snapshotParams(checkpointed.field()));

    // ...the restored model (field + occupancy grid) renders the same
    // pixels as the live trainer at the checkpointed step...
    const Camera &cam = ds.testViews[0].camera;
    Image live = checkpointed.renderImage(cam);
    VolumeRenderer renderer(checkpointed.renderer().config());
    renderer.setOccupancyGrid(&grid);
    Workspace ws;
    for (int row = 0; row < cam.imageHeight(); row++) {
        for (int col = 0; col < cam.imageWidth(); col++) {
            ws.reset();
            RayResult res = renderer.renderRayFast(
                loaded, cam.pixelRay(col, row), ws);
            const Vec3 &expect = live.at(col, row);
            ASSERT_EQ(res.color.x, expect.x);
            ASSERT_EQ(res.color.y, expect.y);
            ASSERT_EQ(res.color.z, expect.z);
        }
    }

    // ...and taking it did not change subsequent training one bit.
    for (int i = 0; i < 10; i++) {
        TrainStats a = checkpointed.trainIteration();
        TrainStats b = reference.trainIteration();
        ASSERT_EQ(a.loss, b.loss) << "iteration " << i;
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace instant3d
