/**
 * @file
 * Checkpoint round-trip coverage: bitwise save/load parity (field and
 * occupancy grid), rejection of corrupt/truncated/mismatched files
 * with the destination left untouched, and the mid-training
 * Trainer::saveCheckpoint settling contract.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <vector>

#include "common/fault_injection.hh"
#include "nerf/serialize.hh"
#include "nerf/trainer.hh"
#include "scene/scene.hh"

namespace instant3d {
namespace {

Dataset
tinyDataset(const std::string &scene_name = "materials")
{
    auto scene = makeSyntheticScene(scene_name);
    DatasetConfig cfg;
    cfg.numTrainViews = 6;
    cfg.numTestViews = 2;
    cfg.imageWidth = 20;
    cfg.imageHeight = 20;
    cfg.renderOpts.numSteps = 64;
    return makeDataset(scene, cfg);
}

FieldConfig
tinyField()
{
    HashEncodingConfig grid;
    grid.numLevels = 4;
    grid.featuresPerEntry = 2;
    grid.log2TableSize = 12;
    grid.baseResolution = 8;
    grid.growthFactor = 1.6f;
    FieldConfig cfg = FieldConfig::instant3dDefault(grid);
    cfg.hiddenDim = 16;
    return cfg;
}

TrainConfig
tinyTrain()
{
    TrainConfig cfg;
    cfg.raysPerBatch = 96;
    cfg.samplesPerRay = 32;
    cfg.adam.lr = 1e-2f;
    return cfg;
}

/** All parameter vectors of a field, in group order. */
std::vector<std::vector<float>>
snapshotParams(NerfField &field)
{
    std::vector<std::vector<float>> out;
    for (auto gid : field.paramGroups())
        out.push_back(field.groupParams(gid));
    return out;
}

void
expectParamsEqual(NerfField &field,
                  const std::vector<std::vector<float>> &expect)
{
    auto groups = field.paramGroups();
    ASSERT_EQ(groups.size(), expect.size());
    for (size_t g = 0; g < groups.size(); g++) {
        const auto &params = field.groupParams(groups[g]);
        ASSERT_EQ(params.size(), expect[g].size());
        for (size_t i = 0; i < params.size(); i++)
            ASSERT_EQ(params[i], expect[g][i])
                << "group " << g << " param " << i;
    }
}

/** Copy the first `bytes` bytes of `src` into `dst`. */
void
truncateFile(const std::string &src, const std::string &dst,
             size_t bytes)
{
    std::ifstream in(src, std::ios::binary);
    std::vector<char> data((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    ASSERT_LE(bytes, data.size());
    std::ofstream out(dst, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(bytes));
}

size_t
fileSize(const std::string &path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    return static_cast<size_t>(in.tellg());
}

TEST(SerializeTest, SaveLoadBitwiseRoundTrip)
{
    Dataset ds = tinyDataset();
    Trainer trainer(ds, tinyField(), tinyTrain());
    for (int i = 0; i < 10; i++)
        trainer.trainIteration();
    trainer.syncParams();

    const std::string path = "test_serialize_roundtrip.bin";
    ASSERT_EQ(saveField(trainer.field(), path), CheckpointError::None);

    // A fresh field with a different seed starts from different
    // weights; after loadField it must match the saved ones bitwise.
    NerfField loaded(tinyField(), /*seed=*/777);
    ASSERT_EQ(loadField(loaded, path), CheckpointError::None);
    expectParamsEqual(loaded, snapshotParams(trainer.field()));

    EXPECT_EQ(fieldStorageBytes(loaded),
              fieldStorageBytes(trainer.field()));
    std::remove(path.c_str());
}

TEST(SerializeTest, OccupancyCheckpointRoundTrip)
{
    Dataset ds = tinyDataset();
    TrainConfig tcfg = tinyTrain();
    tcfg.useOccupancyGrid = true;
    tcfg.occupancyUpdatePeriod = 8;
    Trainer trainer(ds, tinyField(), tcfg);
    for (int i = 0; i < 20; i++)
        trainer.trainIteration();

    const std::string path = "test_serialize_occ.bin";
    ASSERT_EQ(trainer.saveCheckpoint(path), CheckpointError::None);

    CheckpointInfo info = peekCheckpoint(path);
    EXPECT_TRUE(info.valid);
    EXPECT_EQ(info.version, 3u);
    EXPECT_TRUE(info.hasCrc);
    EXPECT_TRUE(info.decoupled);
    EXPECT_TRUE(info.hasOccupancy);
    EXPECT_EQ(info.occResolution,
              trainer.occupancyGrid()->resolution());

    NerfField loaded(tinyField(), 777);
    OccupancyGrid grid(trainer.occupancyGrid()->config());
    ASSERT_EQ(loadCheckpoint(loaded, &grid, path), CheckpointError::None);
    expectParamsEqual(loaded, snapshotParams(trainer.field()));
    const OccupancyGrid *src = trainer.occupancyGrid();
    ASSERT_EQ(grid.numCells(), src->numCells());
    for (size_t c = 0; c < grid.numCells(); c++)
        ASSERT_EQ(grid.cellDensity(c), src->cellDensity(c))
            << "cell " << c;
    std::remove(path.c_str());
}

TEST(SerializeTest, BadMagicRejectedFieldUntouched)
{
    NerfField source(tinyField(), 1);
    const std::string path = "test_serialize_badmagic.bin";
    ASSERT_EQ(saveField(source, path), CheckpointError::None);

    // Corrupt the magic word.
    {
        std::fstream f(path,
                       std::ios::binary | std::ios::in | std::ios::out);
        f.seekp(0);
        f.put('X');
    }

    NerfField dest(tinyField(), 2);
    auto before = snapshotParams(dest);
    EXPECT_EQ(loadField(dest, path), CheckpointError::Magic);
    expectParamsEqual(dest, before);
    EXPECT_FALSE(peekCheckpoint(path).valid);
    std::remove(path.c_str());
}

TEST(SerializeTest, TruncatedRejectedFieldUntouched)
{
    NerfField source(tinyField(), 1);
    const std::string path = "test_serialize_full.bin";
    ASSERT_EQ(saveField(source, path), CheckpointError::None);
    const size_t total = fileSize(path);
    ASSERT_GT(total, 64u);

    NerfField dest(tinyField(), 2);
    auto before = snapshotParams(dest);

    // Cut in the header, after the header, mid-group, and one byte
    // short of complete; every prefix must be rejected cleanly.
    const std::string cut = "test_serialize_truncated.bin";
    for (size_t bytes : {size_t{3}, size_t{24}, total / 2, total - 1}) {
        truncateFile(path, cut, bytes);
        EXPECT_EQ(loadField(dest, cut), CheckpointError::Truncated)
            << "bytes=" << bytes;
        expectParamsEqual(dest, before);
    }
    std::remove(path.c_str());
    std::remove(cut.c_str());
}

TEST(SerializeTest, ShapeMismatchRejected)
{
    NerfField source(tinyField(), 1);
    const std::string path = "test_serialize_shape.bin";
    ASSERT_EQ(saveField(source, path), CheckpointError::None);

    // Same mode, different table size -> group-size mismatch.
    FieldConfig other = tinyField();
    other.densityGrid.log2TableSize = 10;
    other.colorGrid.log2TableSize = 8;
    NerfField dest(other, 2);
    auto before = snapshotParams(dest);
    EXPECT_EQ(loadField(dest, path), CheckpointError::Shape);
    expectParamsEqual(dest, before);

    // Mode mismatch (coupled vs decoupled).
    HashEncodingConfig grid;
    grid.numLevels = 4;
    grid.featuresPerEntry = 2;
    grid.log2TableSize = 12;
    grid.baseResolution = 8;
    grid.growthFactor = 1.6f;
    FieldConfig coupled = FieldConfig::ngpBaseline(grid);
    coupled.hiddenDim = 16;
    NerfField dest2(coupled, 3);
    auto before2 = snapshotParams(dest2);
    EXPECT_EQ(loadField(dest2, path), CheckpointError::Shape);
    expectParamsEqual(dest2, before2);
    std::remove(path.c_str());
}

TEST(SerializeTest, OccupancyExpectationMismatchRejected)
{
    NerfField source(tinyField(), 1);
    const std::string path = "test_serialize_noocc.bin";
    ASSERT_EQ(saveField(source, path), CheckpointError::None);

    // Caller expects a grid but the file has none.
    NerfField dest(tinyField(), 2);
    OccupancyGridConfig ocfg;
    OccupancyGrid grid(ocfg);
    auto before = snapshotParams(dest);
    EXPECT_EQ(loadCheckpoint(dest, &grid, path), CheckpointError::Shape);
    expectParamsEqual(dest, before);

    // Resolution mismatch between file and destination grid.
    OccupancyGrid grid16{[] {
        OccupancyGridConfig c;
        c.resolution = 16;
        return c;
    }()};
    const std::string occ_path = "test_serialize_occ32.bin";
    OccupancyGrid grid32{[] {
        OccupancyGridConfig c;
        c.resolution = 32;
        return c;
    }()};
    ASSERT_EQ(saveCheckpoint(source, &grid32, occ_path), CheckpointError::None);
    EXPECT_EQ(loadCheckpoint(dest, &grid16, occ_path), CheckpointError::Shape);
    expectParamsEqual(dest, before);

    // A file *with* a grid loads fine when the caller ignores it.
    ASSERT_EQ(loadCheckpoint(dest, nullptr, occ_path), CheckpointError::None);
    expectParamsEqual(dest, snapshotParams(source));
    std::remove(path.c_str());
    std::remove(occ_path.c_str());
}

/**
 * The sparse-optimizer checkpoint hazard: a mid-training checkpoint
 * must observe settled (dense-Adam-equivalent) parameters, and taking
 * one must not perturb the training trajectory.
 */
TEST(SerializeTest, MidTrainingCheckpointSettledAndNonPerturbing)
{
    Dataset ds = tinyDataset();
    TrainConfig tcfg = tinyTrain();
    tcfg.useOccupancyGrid = true;
    tcfg.occupancyUpdatePeriod = 8;

    Trainer checkpointed(ds, tinyField(), tcfg);
    Trainer reference(ds, tinyField(), tcfg);
    ASSERT_TRUE(checkpointed.sparseOptimizerActive());

    for (int i = 0; i < 15; i++) {
        checkpointed.trainIteration();
        reference.trainIteration();
    }

    const std::string path = "test_serialize_midtrain.bin";
    ASSERT_EQ(checkpointed.saveCheckpoint(path), CheckpointError::None);

    // The checkpoint equals the settled live state...
    NerfField loaded(tinyField(), 777);
    OccupancyGrid grid(checkpointed.occupancyGrid()->config());
    ASSERT_EQ(loadCheckpoint(loaded, &grid, path), CheckpointError::None);
    checkpointed.syncParams();
    expectParamsEqual(loaded, snapshotParams(checkpointed.field()));

    // ...the restored model (field + occupancy grid) renders the same
    // pixels as the live trainer at the checkpointed step...
    const Camera &cam = ds.testViews[0].camera;
    Image live = checkpointed.renderImage(cam);
    VolumeRenderer renderer(checkpointed.renderer().config());
    renderer.setOccupancyGrid(&grid);
    Workspace ws;
    for (int row = 0; row < cam.imageHeight(); row++) {
        for (int col = 0; col < cam.imageWidth(); col++) {
            ws.reset();
            RayResult res = renderer.renderRayFast(
                loaded, cam.pixelRay(col, row), ws);
            const Vec3 &expect = live.at(col, row);
            ASSERT_EQ(res.color.x, expect.x);
            ASSERT_EQ(res.color.y, expect.y);
            ASSERT_EQ(res.color.z, expect.z);
        }
    }

    // ...and taking it did not change subsequent training one bit.
    for (int i = 0; i < 10; i++) {
        TrainStats a = checkpointed.trainIteration();
        TrainStats b = reference.trainIteration();
        ASSERT_EQ(a.loss, b.loss) << "iteration " << i;
    }
    std::remove(path.c_str());
}

// ---- Format v3: CRC, v2 compatibility, crash safety ----------------------

/** Disarm + zero all fault points on entry and exit of a test. */
struct FaultGuard
{
    FaultGuard()
    {
        fault::disarmAll();
        fault::resetCounts();
    }
    ~FaultGuard()
    {
        fault::disarmAll();
        fault::resetCounts();
    }
};

std::vector<char>
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
}

/** Hand-write a version-2 (pre-CRC) checkpoint of `field`. */
void
writeV2Field(NerfField &field, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    auto groups = field.paramGroups();
    uint32_t header[6] = {
        0x49334446u, 2u,
        static_cast<uint32_t>(field.mode() == FieldMode::Decoupled),
        static_cast<uint32_t>(groups.size()), 0u, 0u};
    ASSERT_EQ(std::fwrite(header, sizeof(header), 1, f), 1u);
    for (auto gid : groups) {
        const auto &p = field.groupParams(gid);
        uint64_t n = p.size();
        ASSERT_EQ(std::fwrite(&n, sizeof(n), 1, f), 1u);
        ASSERT_EQ(std::fwrite(p.data(), sizeof(float), p.size(), f),
                  p.size());
    }
    std::fclose(f);
}

TEST(SerializeTest, Version2CheckpointStillLoads)
{
    NerfField source(tinyField(), 1);
    const std::string path = "test_serialize_v2.bin";
    writeV2Field(source, path);

    CheckpointInfo info = peekCheckpoint(path);
    EXPECT_TRUE(info.valid);
    EXPECT_EQ(info.version, 2u);
    EXPECT_FALSE(info.hasCrc);

    NerfField loaded(tinyField(), 777);
    ASSERT_EQ(loadField(loaded, path), CheckpointError::None);
    expectParamsEqual(loaded, snapshotParams(source));
    std::remove(path.c_str());
}

TEST(SerializeTest, CorruptPayloadRejectedByCrc)
{
    NerfField source(tinyField(), 1);
    const std::string path = "test_serialize_bitrot.bin";
    ASSERT_EQ(saveField(source, path), CheckpointError::None);

    // Flip one payload byte: every structural check still passes (the
    // shapes are intact), only the CRC can catch it.
    {
        std::fstream f(path,
                       std::ios::binary | std::ios::in | std::ios::out);
        f.seekg(40);
        char b = static_cast<char>(f.get());
        f.seekp(40);
        f.put(static_cast<char>(b ^ 0x01));
    }

    NerfField dest(tinyField(), 2);
    auto before = snapshotParams(dest);
    EXPECT_EQ(loadField(dest, path), CheckpointError::Crc);
    expectParamsEqual(dest, before);
    std::remove(path.c_str());
}

TEST(SerializeTest, InjectedCrcFlipRejectedOnLoad)
{
    FaultGuard guard;
    NerfField source(tinyField(), 1);
    const std::string path = "test_serialize_crcflip.bin";

    fault::Spec flip;
    flip.mode = fault::Mode::Always;
    fault::arm(fault::Point::CheckpointCrcFlip, flip);
    ASSERT_EQ(saveField(source, path), CheckpointError::None);
    EXPECT_EQ(fault::fireCount(fault::Point::CheckpointCrcFlip), 1u);
    fault::disarmAll();

    NerfField dest(tinyField(), 2);
    auto before = snapshotParams(dest);
    EXPECT_EQ(loadField(dest, path), CheckpointError::Crc);
    expectParamsEqual(dest, before);
    std::remove(path.c_str());
}

/**
 * The acceptance-criteria crash test: kill the save at *every* write
 * and at the fsync; the target path must hold the previous checkpoint
 * bit-for-bit afterwards, with no temp file left behind.
 */
TEST(SerializeTest, KilledSaveNeverCorruptsTarget)
{
    FaultGuard guard;
    NerfField previous(tinyField(), 1);
    NerfField next(tinyField(), 2);
    const std::string path = "test_serialize_crashsafe.bin";
    const std::string tmp = path + ".tmp";

    ASSERT_EQ(saveField(previous, path), CheckpointError::None);
    const std::vector<char> golden = readAll(path);
    ASSERT_FALSE(golden.empty());

    // Count the save's write calls by arming the point in
    // counting-only mode (hits recorded, nothing fires).
    fault::Spec count_only;
    count_only.mode = fault::Mode::Never;
    fault::arm(fault::Point::CheckpointShortWrite, count_only);
    ASSERT_EQ(saveField(previous, path), CheckpointError::None);
    const uint64_t writes =
        fault::hitCount(fault::Point::CheckpointShortWrite);
    ASSERT_GE(writes, 4u); // header + >=1 group (2 writes) + CRC
    ASSERT_EQ(readAll(path), golden);

    // Tear write k, for every k.
    for (uint64_t k = 1; k <= writes; k++) {
        fault::resetCounts();
        fault::Spec tear;
        tear.mode = fault::Mode::OneShot;
        tear.n = k;
        fault::arm(fault::Point::CheckpointShortWrite, tear);
        EXPECT_EQ(saveField(next, path), CheckpointError::Io)
            << "write " << k;
        EXPECT_EQ(readAll(path), golden) << "write " << k;
        EXPECT_TRUE(readAll(tmp).empty())
            << "temp file left after torn write " << k;
    }

    // Fail the pre-publish fsync.
    fault::disarmAll();
    fault::resetCounts();
    fault::Spec sync_fail;
    sync_fail.mode = fault::Mode::Always;
    fault::arm(fault::Point::CheckpointFsyncFail, sync_fail);
    EXPECT_EQ(saveField(next, path), CheckpointError::Io);
    EXPECT_EQ(readAll(path), golden);
    EXPECT_TRUE(readAll(tmp).empty());
    fault::disarmAll();

    // With faults gone the same save goes through and is loadable.
    ASSERT_EQ(saveField(next, path), CheckpointError::None);
    NerfField loaded(tinyField(), 777);
    ASSERT_EQ(loadField(loaded, path), CheckpointError::None);
    expectParamsEqual(loaded, snapshotParams(next));
    std::remove(path.c_str());
}

TEST(SerializeTest, InjectedShortReadReportsIo)
{
    FaultGuard guard;
    NerfField source(tinyField(), 1);
    const std::string path = "test_serialize_shortread.bin";
    ASSERT_EQ(saveField(source, path), CheckpointError::None);

    fault::Spec fail_first;
    fail_first.mode = fault::Mode::OneShot;
    fail_first.n = 1;
    fault::arm(fault::Point::CheckpointShortRead, fail_first);

    NerfField dest(tinyField(), 2);
    auto before = snapshotParams(dest);
    EXPECT_EQ(loadField(dest, path), CheckpointError::Io);
    expectParamsEqual(dest, before);
    fault::disarmAll();

    // Transient: the identical retry succeeds.
    ASSERT_EQ(loadField(dest, path), CheckpointError::None);
    expectParamsEqual(dest, snapshotParams(source));
    std::remove(path.c_str());
}

// ---- Streaming loader ----------------------------------------------------

/**
 * The streaming path must be a pure I/O-pattern change: restored
 * params and densities are bit-identical to the one-read-per-section
 * staged loader for any chunk size, aligned or not.
 */
TEST(SerializeTest, StreamedLoadBitIdenticalForAnyChunkSize)
{
    NerfField source(tinyField(), 1);
    OccupancyGridConfig ocfg;
    OccupancyGrid grid(ocfg);
    for (size_t c = 0; c < grid.numCells(); c++)
        grid.setCellDensity(c, 0.25f + 0.001f * static_cast<float>(c % 97));
    const std::string path = "test_serialize_stream.bin";
    ASSERT_EQ(saveCheckpoint(source, &grid, path),
              CheckpointError::None);

    // Reference: the legacy staged I/O pattern (whole section per read).
    NerfField staged_dest(tinyField(), 2);
    OccupancyGrid staged_grid(ocfg);
    CheckpointStreamConfig whole;
    whole.chunkBytes = 0;
    ASSERT_EQ(loadCheckpoint(staged_dest, &staged_grid, path, whole),
              CheckpointError::None);
    auto expect = snapshotParams(staged_dest);
    expectParamsEqual(staged_dest, snapshotParams(source));

    for (size_t chunk : {size_t(7), size_t(4096), size_t(1) << 20}) {
        NerfField dest(tinyField(), 3);
        OccupancyGrid dgrid(ocfg);
        CheckpointStreamConfig scfg;
        scfg.chunkBytes = chunk;
        ASSERT_EQ(loadCheckpoint(dest, &dgrid, path, scfg),
                  CheckpointError::None)
            << "chunk " << chunk;
        expectParamsEqual(dest, expect);
        for (size_t c = 0; c < grid.numCells(); c++)
            ASSERT_EQ(dgrid.cellDensity(c), staged_grid.cellDensity(c))
                << "chunk " << chunk << " cell " << c;
    }
    std::remove(path.c_str());
}

/**
 * The acceptance-criteria read-side sweep (mirror of
 * KilledSaveNeverCorruptsTarget): enumerate every chunk read with the
 * never-count mode, then kill the load at each one. Every failure
 * must report Io and leave the destination field and grid untouched.
 * The metadata reads (header, group counts, CRC word) get the same
 * sweep through the legacy checkpoint.short_read point.
 */
TEST(SerializeTest, KilledStreamLoadNeverTouchesDestination)
{
    FaultGuard guard;
    NerfField source(tinyField(), 1);
    OccupancyGridConfig ocfg;
    OccupancyGrid grid(ocfg);
    for (size_t c = 0; c < grid.numCells(); c++)
        grid.setCellDensity(c, 0.5f);
    const std::string path = "test_serialize_streamkill.bin";
    ASSERT_EQ(saveCheckpoint(source, &grid, path),
              CheckpointError::None);

    CheckpointStreamConfig scfg;
    scfg.chunkBytes = 16384;

    // Enumerate both read families in counting-only mode.
    fault::Spec count_only;
    count_only.mode = fault::Mode::Never;
    fault::arm(fault::Point::CheckpointStreamShortRead, count_only);
    fault::arm(fault::Point::CheckpointShortRead, count_only);
    {
        NerfField probe(tinyField(), 4);
        OccupancyGrid pgrid(ocfg);
        ASSERT_EQ(loadCheckpoint(probe, &pgrid, path, scfg),
                  CheckpointError::None);
    }
    const uint64_t chunk_reads =
        fault::hitCount(fault::Point::CheckpointStreamShortRead);
    const uint64_t meta_reads =
        fault::hitCount(fault::Point::CheckpointShortRead);
    ASSERT_GE(chunk_reads, 2u);
    ASSERT_GE(meta_reads, 3u); // header + >=1 group count + CRC word
    fault::disarmAll();

    NerfField dest(tinyField(), 5);
    OccupancyGrid dgrid(ocfg);
    for (size_t c = 0; c < dgrid.numCells(); c++)
        dgrid.setCellDensity(c, 7.0f);
    const auto before = snapshotParams(dest);

    auto sweep = [&](fault::Point point, uint64_t sites) {
        for (uint64_t k = 1; k <= sites; k++) {
            fault::resetCounts();
            fault::Spec kill;
            kill.mode = fault::Mode::OneShot;
            kill.n = k;
            fault::arm(point, kill);
            EXPECT_EQ(loadCheckpoint(dest, &dgrid, path, scfg),
                      CheckpointError::Io)
                << fault::pointName(point) << " site " << k;
            expectParamsEqual(dest, before);
            for (size_t c = 0; c < dgrid.numCells(); c++)
                ASSERT_EQ(dgrid.cellDensity(c), 7.0f)
                    << fault::pointName(point) << " site " << k;
            fault::disarm(point);
        }
    };
    sweep(fault::Point::CheckpointStreamShortRead, chunk_reads);
    sweep(fault::Point::CheckpointShortRead, meta_reads);

    // With faults gone the same destination loads clean.
    ASSERT_EQ(loadCheckpoint(dest, &dgrid, path, scfg),
              CheckpointError::None);
    expectParamsEqual(dest, snapshotParams(source));
    std::remove(path.c_str());
}

/** stream_stall delays each payload chunk but never changes bits. */
TEST(SerializeTest, StreamStallDelaysChunksWithoutCorruption)
{
    FaultGuard guard;
    NerfField source(tinyField(), 1);
    const std::string path = "test_serialize_streamstall.bin";
    ASSERT_EQ(saveField(source, path), CheckpointError::None);

    fault::Spec stall;
    stall.mode = fault::Mode::Always;
    stall.delayMs = 1;
    fault::arm(fault::Point::CheckpointStreamStall, stall);

    NerfField dest(tinyField(), 2);
    CheckpointStreamConfig scfg;
    scfg.chunkBytes = size_t(1) << 16;
    ASSERT_EQ(loadCheckpoint(dest, nullptr, path, scfg),
              CheckpointError::None);
    EXPECT_GE(fault::fireCount(fault::Point::CheckpointStreamStall),
              1u);
    expectParamsEqual(dest, snapshotParams(source));
    std::remove(path.c_str());
}

} // namespace
} // namespace instant3d
