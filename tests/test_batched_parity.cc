/**
 * @file
 * Parity and determinism tests for the batched hot path: the batched
 * MLP and hash-encoding kernels must match their scalar references
 * bit-exactly, gradient-shard reduction must match direct accumulation,
 * and full training must be bit-identical at 1, 2, and 8 threads.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "common/workspace.hh"
#include "nerf/trainer.hh"
#include "scene/scene.hh"

namespace instant3d {
namespace {

TEST(WorkspaceTest, ReusesCapacityAcrossResets)
{
    Workspace ws;
    float *a = ws.alloc<float>(1000);
    a[0] = 1.0f;
    a[999] = 2.0f;
    size_t cap = ws.capacityBytes();
    for (int i = 0; i < 100; i++) {
        ws.reset();
        float *b = ws.alloc<float>(1000);
        b[999] = 3.0f;
    }
    EXPECT_EQ(ws.capacityBytes(), cap)
        << "reset must recycle, not grow";
}

TEST(WorkspaceTest, AllocationsAreDistinctAndAligned)
{
    Workspace ws;
    float *a = ws.alloc<float>(7);
    float *b = ws.alloc<float>(7);
    EXPECT_NE(a, b);
    EXPECT_GE(b, a + 7);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 64, 0u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 64, 0u);
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce)
{
    for (int threads : {1, 2, 8}) {
        ThreadPool pool(threads);
        EXPECT_EQ(pool.threadCount(), threads);
        std::vector<int> hits(1000, 0);
        pool.parallelFor(1000, [&](int t, int) { hits[t]++; });
        for (int t = 0; t < 1000; t++)
            ASSERT_EQ(hits[t], 1) << "task " << t;
    }
}

TEST(BatchedParityTest, MlpForwardMatchesScalarBitExact)
{
    for (auto act : {OutputActivation::None, OutputActivation::Sigmoid}) {
        Mlp mlp({6, 16, 16, 3}, act, 7);
        Rng r(11);
        const int n = 33;
        std::vector<float> in(static_cast<size_t>(n) * 6);
        for (auto &v : in)
            v = r.nextFloat(-2.0f, 2.0f);

        std::vector<float> scalar_out(static_cast<size_t>(n) * 3);
        for (int s = 0; s < n; s++)
            mlp.forward(in.data() + s * 6, scalar_out.data() + s * 3);

        Workspace ws;
        std::vector<float> batch_out(static_cast<size_t>(n) * 3);
        MlpBatchRecord rec;
        mlp.forwardBatch(in.data(), n, batch_out.data(), &rec, ws);

        for (size_t i = 0; i < batch_out.size(); i++)
            ASSERT_EQ(batch_out[i], scalar_out[i]) << "output " << i;
    }
}

TEST(BatchedParityTest, MlpBackwardMatchesScalarBitExact)
{
    Mlp mlp({5, 12, 4}, OutputActivation::Sigmoid, 3);
    Rng r(21);
    const int n = 17;
    std::vector<float> in(static_cast<size_t>(n) * 5);
    std::vector<float> d_out(static_cast<size_t>(n) * 4);
    for (auto &v : in)
        v = r.nextFloat(-1.0f, 1.0f);
    for (auto &v : d_out)
        v = r.nextFloat(-1.0f, 1.0f);

    // Scalar reference: sequential forward+backward accumulation.
    std::vector<float> out(4);
    mlp.zeroGrad();
    std::vector<float> scalar_d_in(static_cast<size_t>(n) * 5);
    for (int s = 0; s < n; s++) {
        MlpRecord rec;
        mlp.forward(in.data() + s * 5, out.data(), &rec);
        mlp.backward(rec, d_out.data() + s * 4,
                     scalar_d_in.data() + s * 5);
    }
    std::vector<float> scalar_grads = mlp.grads();

    // Batched path into an external gradient buffer.
    Workspace ws;
    std::vector<float> batch_out(static_cast<size_t>(n) * 4);
    MlpBatchRecord rec;
    mlp.forwardBatch(in.data(), n, batch_out.data(), &rec, ws);
    std::vector<float> grads(mlp.params().size(), 0.0f);
    std::vector<float> batch_d_in(static_cast<size_t>(n) * 5);
    mlp.backwardBatch(rec, d_out.data(), batch_d_in.data(), grads.data(),
                      ws);

    for (size_t i = 0; i < grads.size(); i++)
        ASSERT_EQ(grads[i], scalar_grads[i]) << "grad " << i;
    for (size_t i = 0; i < batch_d_in.size(); i++)
        ASSERT_EQ(batch_d_in[i], scalar_d_in[i]) << "d_in " << i;
}

TEST(BatchedParityTest, HashEncodeMatchesScalarBitExact)
{
    HashEncodingConfig cfg;
    cfg.numLevels = 4;
    cfg.log2TableSize = 10;
    cfg.baseResolution = 8;
    HashEncoding scalar_enc(cfg, 5), batch_enc(cfg, 5);
    Rng r(9);
    const int n = 29;
    std::vector<Vec3> pts;
    for (int i = 0; i < n; i++)
        pts.push_back(
            {r.nextFloat(), r.nextFloat(), r.nextFloat()});

    const int dim = scalar_enc.outputDim();
    std::vector<float> scalar_out(static_cast<size_t>(n) * dim);
    std::vector<EncodeRecord> scalar_recs(n);
    for (int s = 0; s < n; s++)
        scalar_enc.encode(pts[s], scalar_out.data() + s * dim,
                          &scalar_recs[s]);

    Workspace ws;
    std::vector<float> batch_out(static_cast<size_t>(n) * dim);
    EncodeBatchRecord rec;
    batch_enc.encodeBatch(pts.data(), n, batch_out.data(), &rec, ws);

    for (size_t i = 0; i < batch_out.size(); i++)
        ASSERT_EQ(batch_out[i], scalar_out[i]) << "feature " << i;
    EXPECT_EQ(batch_enc.readCount(), scalar_enc.readCount());

    const size_t slots = static_cast<size_t>(cfg.numLevels) * 8;
    for (int s = 0; s < n; s++) {
        for (size_t j = 0; j < slots; j++) {
            ASSERT_EQ(rec.addresses[s * slots + j],
                      scalar_recs[s].addresses[j]);
            ASSERT_EQ(rec.weights[s * slots + j],
                      scalar_recs[s].weights[j]);
        }
    }

    // Backward parity: shard accumulation == member-table accumulation.
    std::vector<float> d_out(static_cast<size_t>(n) * dim);
    for (auto &v : d_out)
        v = r.nextFloat(-1.0f, 1.0f);

    scalar_enc.zeroGrad();
    for (int s = 0; s < n; s++)
        scalar_enc.backward(scalar_recs[s], d_out.data() + s * dim);

    std::vector<float> shard(batch_enc.grads().size(), 0.0f);
    std::vector<uint32_t> touched;
    batch_enc.backwardBatch(rec, d_out.data(), shard.data(), &touched);

    EXPECT_EQ(touched.size(), slots * n);
    for (size_t i = 0; i < shard.size(); i++)
        ASSERT_EQ(shard[i], scalar_enc.grads()[i]) << "grad " << i;
}

Dataset
parityDataset()
{
    auto scene = makeSyntheticScene("materials");
    DatasetConfig cfg;
    cfg.numTrainViews = 4;
    cfg.numTestViews = 1;
    cfg.imageWidth = 16;
    cfg.imageHeight = 16;
    cfg.renderOpts.numSteps = 48;
    return makeDataset(scene, cfg);
}

FieldConfig
parityField()
{
    HashEncodingConfig grid;
    grid.numLevels = 4;
    grid.featuresPerEntry = 2;
    grid.log2TableSize = 12;
    grid.baseResolution = 8;
    grid.growthFactor = 1.6f;
    FieldConfig cfg = FieldConfig::instant3dDefault(grid);
    cfg.hiddenDim = 16;
    return cfg;
}

/**
 * The tentpole determinism contract: training is bit-identical for any
 * thread count (same losses, same parameters, same rendered images).
 */
TEST(BatchedParityTest, TrainingBitIdenticalAcrossThreadCounts)
{
    Dataset ds = parityDataset();

    TrainConfig base;
    base.raysPerBatch = 48;
    base.samplesPerRay = 24;
    base.adam.lr = 1e-2f;
    base.colorUpdatePeriod = 2; // exercise the F_C < F_D schedule too

    std::vector<double> ref_losses;
    std::vector<float> ref_params;
    Image ref_img(1, 1);
    for (int threads : {1, 2, 8}) {
        TrainConfig tcfg = base;
        tcfg.numThreads = threads;
        Trainer trainer(ds, parityField(), tcfg);
        ASSERT_EQ(trainer.threadCount(), threads);

        std::vector<double> losses;
        for (int i = 0; i < 12; i++)
            losses.push_back(trainer.trainIteration().loss);

        std::vector<float> params;
        for (auto gid : trainer.field().paramGroups()) {
            const auto &p = trainer.field().groupParams(gid);
            params.insert(params.end(), p.begin(), p.end());
        }
        Image img = trainer.renderImage(ds.testViews[0].camera);

        if (threads == 1) {
            ref_losses = losses;
            ref_params = params;
            ref_img = img;
            continue;
        }
        for (size_t i = 0; i < losses.size(); i++)
            ASSERT_EQ(losses[i], ref_losses[i])
                << threads << " threads, iteration " << i;
        ASSERT_EQ(params.size(), ref_params.size());
        for (size_t i = 0; i < params.size(); i++)
            ASSERT_EQ(params[i], ref_params[i])
                << threads << " threads, param " << i;
        for (int row = 0; row < img.height(); row++)
            for (int col = 0; col < img.width(); col++) {
                Vec3 a = img.at(col, row), b = ref_img.at(col, row);
                ASSERT_EQ(a.x, b.x);
                ASSERT_EQ(a.y, b.y);
                ASSERT_EQ(a.z, b.z);
            }
    }
}

/** Changing gradShards changes the reduction order, not correctness. */
TEST(BatchedParityTest, TrainingStillLearnsWithOtherShardCounts)
{
    Dataset ds = parityDataset();
    TrainConfig tcfg;
    tcfg.raysPerBatch = 48;
    tcfg.samplesPerRay = 24;
    tcfg.gradShards = 3;
    tcfg.numThreads = 2;
    Trainer trainer(ds, parityField(), tcfg);
    double first = trainer.trainIteration().loss;
    double last = 0.0;
    for (int i = 0; i < 40; i++)
        last = trainer.trainIteration().loss;
    EXPECT_LT(last, first) << "loss should decrease";
}

/** The scalar reference path must still train (bench baseline). */
TEST(BatchedParityTest, ScalarReferencePathTrains)
{
    Dataset ds = parityDataset();
    TrainConfig tcfg;
    tcfg.raysPerBatch = 48;
    tcfg.samplesPerRay = 24;
    tcfg.scalarReference = true;
    Trainer trainer(ds, parityField(), tcfg);
    double first = trainer.trainIteration().loss;
    double last = 0.0;
    for (int i = 0; i < 40; i++)
        last = trainer.trainIteration().loss;
    EXPECT_LT(last, first);
    EXPECT_EQ(trainer.totalPointsQueried(), 41u * 48u * 24u);
}

} // namespace
} // namespace instant3d
