/**
 * @file
 * Integration tests of the full six-step training loop: loss decreases,
 * PSNR improves, update-frequency scheduling behaves per Sec 3.3, and
 * decoupled training reaches quality comparable to the coupled baseline
 * on a tiny scene.
 */

#include <gtest/gtest.h>

#include "nerf/trainer.hh"
#include "scene/scene.hh"

namespace instant3d {
namespace {

Dataset
tinyDataset(const std::string &scene_name = "materials")
{
    auto scene = makeSyntheticScene(scene_name);
    DatasetConfig cfg;
    cfg.numTrainViews = 6;
    cfg.numTestViews = 2;
    cfg.imageWidth = 20;
    cfg.imageHeight = 20;
    cfg.renderOpts.numSteps = 64;
    return makeDataset(scene, cfg);
}

FieldConfig
tinyField(FieldMode mode)
{
    HashEncodingConfig grid;
    grid.numLevels = 4;
    grid.featuresPerEntry = 2;
    grid.log2TableSize = 12;
    grid.baseResolution = 8;
    grid.growthFactor = 1.6f;
    FieldConfig cfg = mode == FieldMode::Decoupled
                          ? FieldConfig::instant3dDefault(grid)
                          : FieldConfig::ngpBaseline(grid);
    cfg.hiddenDim = 16;
    return cfg;
}

TrainConfig
tinyTrain()
{
    TrainConfig cfg;
    cfg.raysPerBatch = 96;
    cfg.samplesPerRay = 32;
    cfg.adam.lr = 1e-2f;
    return cfg;
}

TEST(TrainerTest, LossDecreases)
{
    Dataset ds = tinyDataset();
    Trainer trainer(ds, tinyField(FieldMode::Decoupled), tinyTrain());

    double first = 0.0, last = 0.0;
    const int warmup = 5, iters = 60;
    for (int i = 0; i < iters; i++) {
        TrainStats s = trainer.trainIteration();
        if (i < warmup)
            first += s.loss;
        if (i >= iters - warmup)
            last += s.loss;
    }
    EXPECT_LT(last, first * 0.6)
        << "training loss failed to decrease";
    EXPECT_EQ(trainer.iteration(), iters);
}

TEST(TrainerTest, PsnrImprovesOverTraining)
{
    Dataset ds = tinyDataset();
    Trainer trainer(ds, tinyField(FieldMode::Decoupled), tinyTrain());

    double psnr0 = trainer.evalPsnr();
    for (int i = 0; i < 120; i++)
        trainer.trainIteration();
    double psnr1 = trainer.evalPsnr();
    EXPECT_GT(psnr1, psnr0 + 2.0)
        << "PSNR " << psnr0 << " -> " << psnr1;
}

TEST(TrainerTest, UpdateFrequencySchedule)
{
    Dataset ds = tinyDataset();
    TrainConfig tcfg = tinyTrain();
    tcfg.raysPerBatch = 8; // keep it fast; we only check the schedule
    tcfg.colorUpdatePeriod = 2;  // F_D : F_C = 1 : 0.5
    Trainer trainer(ds, tinyField(FieldMode::Decoupled), tcfg);

    for (int i = 0; i < 6; i++) {
        TrainStats s = trainer.trainIteration();
        EXPECT_TRUE(s.densityUpdated);
        EXPECT_EQ(s.colorUpdated, i % 2 == 0) << "iteration " << i;
    }
}

TEST(TrainerTest, ColorGridFrozenOnSkippedIterations)
{
    Dataset ds = tinyDataset();
    TrainConfig tcfg = tinyTrain();
    tcfg.raysPerBatch = 16;
    tcfg.colorUpdatePeriod = 2;
    Trainer trainer(ds, tinyField(FieldMode::Decoupled), tcfg);

    trainer.trainIteration(); // iteration 0: color updated
    auto snapshot = trainer.field().groupParams(ParamGroupId::ColorGrid);
    trainer.trainIteration(); // iteration 1: color frozen
    auto &after = trainer.field().groupParams(ParamGroupId::ColorGrid);
    for (size_t i = 0; i < snapshot.size(); i++)
        ASSERT_FLOAT_EQ(snapshot[i], after[i]) << "index " << i;
}

TEST(TrainerTest, PointsQueriedAccounting)
{
    Dataset ds = tinyDataset();
    TrainConfig tcfg = tinyTrain();
    tcfg.raysPerBatch = 10;
    tcfg.samplesPerRay = 12;
    Trainer trainer(ds, tinyField(FieldMode::Decoupled), tcfg);
    TrainStats s = trainer.trainIteration();
    EXPECT_EQ(s.pointsQueried, 10u * 12u);
    EXPECT_EQ(trainer.totalPointsQueried(), 10u * 12u);
}

TEST(TrainerTest, CoupledBaselineAlsoTrains)
{
    Dataset ds = tinyDataset();
    Trainer trainer(ds, tinyField(FieldMode::Coupled), tinyTrain());
    double psnr0 = trainer.evalPsnr();
    for (int i = 0; i < 120; i++)
        trainer.trainIteration();
    EXPECT_GT(trainer.evalPsnr(), psnr0 + 2.0);
}

TEST(TrainerTest, DepthPsnrComputes)
{
    Dataset ds = tinyDataset();
    Trainer trainer(ds, tinyField(FieldMode::Decoupled), tinyTrain());
    double d0 = trainer.evalDepthPsnr();
    EXPECT_GT(d0, 0.0);
    EXPECT_LT(d0, 99.0);
}

TEST(TrainerTest, RenderImageMatchesViewSize)
{
    Dataset ds = tinyDataset();
    Trainer trainer(ds, tinyField(FieldMode::Decoupled), tinyTrain());
    Image img = trainer.renderImage(ds.testViews[0].camera);
    EXPECT_EQ(img.width(), 20);
    EXPECT_EQ(img.height(), 20);
    auto depth = trainer.renderDepth(ds.testViews[0].camera);
    EXPECT_EQ(depth.size(), 400u);
}

TEST(TrainerTest, DeterministicGivenSeed)
{
    Dataset ds = tinyDataset();
    TrainConfig tcfg = tinyTrain();
    tcfg.raysPerBatch = 32;
    Trainer a(ds, tinyField(FieldMode::Decoupled), tcfg);
    Trainer b(ds, tinyField(FieldMode::Decoupled), tcfg);
    for (int i = 0; i < 5; i++) {
        TrainStats sa = a.trainIteration();
        TrainStats sb = b.trainIteration();
        EXPECT_DOUBLE_EQ(sa.loss, sb.loss);
    }
}

} // namespace
} // namespace instant3d
