/**
 * @file
 * Capacity tests for the memory-budgeted SceneRegistry: LRU eviction
 * to cold stubs, shared_ptr drain of in-flight renders, single-flight
 * cold-start reloads, quarantine of structurally-bad checkpoints, and
 * the ColdStart contract at the RenderService boundary.
 *
 * The load-bearing invariants: eviction never drops an in-flight
 * render, a reload republishes under the *same* generation with
 * bit-identical parameters, and a cold scene under concurrent demand
 * runs exactly one loader.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/fault_injection.hh"
#include "nerf/serialize.hh"
#include "nerf/trainer.hh"
#include "scene/scene.hh"
#include "serve/render_service.hh"
#include "serve/scene_registry.hh"

namespace instant3d {
namespace {

/** Disarm + zero all fault points on entry and exit of a test. */
struct FaultGuard
{
    FaultGuard()
    {
        fault::disarmAll();
        fault::resetCounts();
    }
    ~FaultGuard()
    {
        fault::disarmAll();
        fault::resetCounts();
    }
};

Dataset
tinyDataset(const std::string &scene_name)
{
    auto scene = makeSyntheticScene(scene_name);
    DatasetConfig cfg;
    cfg.numTrainViews = 6;
    cfg.numTestViews = 2;
    cfg.imageWidth = 20;
    cfg.imageHeight = 20;
    cfg.renderOpts.numSteps = 64;
    return makeDataset(scene, cfg);
}

FieldConfig
tinyField()
{
    HashEncodingConfig grid;
    grid.numLevels = 4;
    grid.featuresPerEntry = 2;
    grid.log2TableSize = 12;
    grid.baseResolution = 8;
    grid.growthFactor = 1.6f;
    FieldConfig cfg = FieldConfig::instant3dDefault(grid);
    cfg.hiddenDim = 16;
    return cfg;
}

TrainConfig
tinyTrain()
{
    TrainConfig cfg;
    cfg.raysPerBatch = 96;
    cfg.samplesPerRay = 32;
    cfg.adam.lr = 1e-2f;
    cfg.useOccupancyGrid = true;
    cfg.occupancyUpdatePeriod = 8;
    return cfg;
}

CameraSpec
latticeCamera(int width = 24, int height = 24)
{
    CameraSpec spec;
    spec.eye = {1.25f, 0.5f, 1.0f};
    spec.target = {0.5f, 0.5f, 0.5f};
    spec.up = {0.0f, 0.0f, 1.0f};
    spec.vfovDeg = 45.0f;
    spec.width = width;
    spec.height = height;
    return spec;
}

std::vector<std::vector<float>>
snapshotParams(NerfField &field)
{
    std::vector<std::vector<float>> out;
    for (auto gid : field.paramGroups())
        out.push_back(field.groupParams(gid));
    return out;
}

void
expectParamsEqual(NerfField &field,
                  const std::vector<std::vector<float>> &expect)
{
    auto groups = field.paramGroups();
    ASSERT_EQ(groups.size(), expect.size());
    for (size_t g = 0; g < groups.size(); g++) {
        const auto &params = field.groupParams(groups[g]);
        ASSERT_EQ(params.size(), expect[g].size());
        for (size_t i = 0; i < params.size(); i++)
            ASSERT_EQ(params[i], expect[g][i])
                << "group " << g << " param " << i;
    }
}

void
expectImagesEqual(const Image &a, const Image &b)
{
    ASSERT_EQ(a.width(), b.width());
    ASSERT_EQ(a.height(), b.height());
    for (int row = 0; row < a.height(); row++) {
        for (int col = 0; col < a.width(); col++) {
            const Vec3 &pa = a.at(col, row);
            const Vec3 &pb = b.at(col, row);
            ASSERT_EQ(pa.x, pb.x) << "pixel (" << col << "," << row
                                  << ")";
            ASSERT_EQ(pa.y, pb.y);
            ASSERT_EQ(pa.z, pb.z);
        }
    }
}

/**
 * One trained scene and its checkpoint on disk, shared by every test
 * (training dominates suite runtime; the capacity machinery under test
 * only ever *loads*).
 */
class RegistryCapacityTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        dataset = new Dataset(tinyDataset("lego"));
        trainer = new Trainer(*dataset, tinyField(), tinyTrain());
        for (int i = 0; i < 30; i++)
            trainer->trainIteration();
        ASSERT_EQ(trainer->saveCheckpoint(ckptPath),
                  CheckpointError::None);
    }

    static void
    TearDownTestSuite()
    {
        delete trainer;
        delete dataset;
        trainer = nullptr;
        dataset = nullptr;
        std::remove(ckptPath);
    }

    static SceneSpec
    spec()
    {
        SceneSpec s;
        s.field = trainer->field().config();
        s.renderer = trainer->renderer().config();
        s.useOccupancy = true;
        s.occupancy = trainer->occupancyGrid()->config();
        s.loadRetryBackoffMs = 1;
        return s;
    }

    /** Accounted bytes of one warm scene (probed via a throwaway
     *  unlimited registry). */
    static size_t
    sceneBytes()
    {
        SceneRegistry probe;
        EXPECT_GT(probe.registerFromCheckpoint("probe", spec(),
                                               ckptPath),
                  0u);
        return probe.stats().bytesWarm;
    }

    static constexpr const char *ckptPath =
        "test_registry_capacity_ckpt.bin";
    static Dataset *dataset;
    static Trainer *trainer;
};

Dataset *RegistryCapacityTest::dataset = nullptr;
Trainer *RegistryCapacityTest::trainer = nullptr;

TEST_F(RegistryCapacityTest, BudgetEvictsLruToColdStubAndReloads)
{
    const size_t per_scene = sceneBytes();
    ASSERT_GT(per_scene, 0u);

    SceneRegistryConfig rcfg;
    rcfg.memoryBudgetBytes = 2 * per_scene + per_scene / 2;
    SceneRegistry registry(rcfg);

    const uint64_t g1 =
        registry.registerFromCheckpoint("s1", spec(), ckptPath);
    const uint64_t g2 =
        registry.registerFromCheckpoint("s2", spec(), ckptPath);
    ASSERT_GT(g1, 0u);
    ASSERT_GT(g2, 0u);
    EXPECT_EQ(registry.state("s1"), SceneState::Warm);
    EXPECT_EQ(registry.state("s2"), SceneState::Warm);

    // Make s2 the LRU scene, then overflow the budget: s2 must go
    // cold, not s1.
    {
        AcquireOutcome touch = registry.acquireOrLoad("s2");
        ASSERT_EQ(touch.state, SceneState::Warm);
        touch = registry.acquireOrLoad("s1");
        ASSERT_EQ(touch.state, SceneState::Warm);
    }
    const uint64_t g3 =
        registry.registerFromCheckpoint("s3", spec(), ckptPath);
    ASSERT_GT(g3, 0u);

    EXPECT_EQ(registry.state("s2"), SceneState::Cold);
    EXPECT_EQ(registry.state("s1"), SceneState::Warm);
    EXPECT_EQ(registry.state("s3"), SceneState::Warm);
    EXPECT_EQ(registry.acquire("s2"), nullptr);
    // The stub keeps its generation across eviction.
    EXPECT_EQ(registry.generation("s2"), g2);

    SceneRegistryStats st = registry.stats();
    EXPECT_EQ(st.evictions, 1u);
    EXPECT_EQ(st.warm, 2u);
    EXPECT_EQ(st.cold, 1u);
    EXPECT_LE(st.bytesWarm, rcfg.memoryBudgetBytes);

    // Cold-start s2 back: same generation, bit-identical parameters.
    AcquireOutcome out = registry.acquireOrLoad("s2", 30000.0);
    ASSERT_NE(out.scene, nullptr);
    EXPECT_EQ(out.scene->generation(), g2);
    expectParamsEqual(out.scene->field(),
                      snapshotParams(trainer->field()));

    st = registry.stats();
    EXPECT_EQ(st.coldLoadsStarted, 1u);
    EXPECT_EQ(st.reloads, 1u);
    // Reloading s2 overflowed the budget again, evicting another LRU
    // scene -- the budget holds with the reload accounted.
    EXPECT_EQ(st.evictions, 2u);
    EXPECT_LE(st.bytesWarm, rcfg.memoryBudgetBytes);
}

TEST_F(RegistryCapacityTest, EvictionDrainsInFlightReferences)
{
    SceneRegistryConfig rcfg;
    rcfg.memoryBudgetBytes = 1; // everything is over budget
    SceneRegistry registry(rcfg);

    // A budget smaller than one scene still publishes (serving beats
    // strict accounting) -- the scene just evicts as soon as another
    // needs the room.
    ASSERT_GT(registry.registerFromCheckpoint("s1", spec(), ckptPath),
              0u);
    EXPECT_EQ(registry.state("s1"), SceneState::Warm);

    ServedScenePtr held = registry.acquire("s1");
    ASSERT_NE(held, nullptr);
    const auto expect = snapshotParams(held->field());

    // Manual eviction while a reader holds the scene: the registry
    // drops only its own reference.
    ASSERT_TRUE(registry.evictScene("s1"));
    EXPECT_EQ(registry.state("s1"), SceneState::Cold);
    EXPECT_EQ(registry.stats().evictionsWhileReferenced, 1u);
    EXPECT_EQ(registry.stats().bytesWarm, 0u);

    // The held reference is fully usable after eviction.
    expectParamsEqual(held->field(), expect);
    EXPECT_EQ(held->renderer(QualityTier::Full).config().samplesPerRay,
              spec().renderer.samplesPerRay);
}

TEST_F(RegistryCapacityTest, EvictionMidRenderStillServesOk)
{
    FaultGuard guard;
    SceneRegistryConfig rcfg;
    rcfg.memoryBudgetBytes = 1;
    SceneRegistry registry(rcfg);
    ASSERT_GT(registry.registerFromCheckpoint("s1", spec(), ckptPath),
              0u);

    RenderServiceConfig cfg;
    cfg.workers = 2;
    cfg.cacheTiles = 0;
    RenderService service(registry, cfg);

    CameraSpec cam = latticeCamera();
    Image expect = trainer->renderImage(cam.makeCamera());

    // Slow every render chunk down, submit, then evict the scene out
    // from under the in-flight request.
    fault::Spec slow;
    slow.mode = fault::Mode::Always;
    slow.delayMs = 3;
    fault::arm(fault::Point::ChunkRenderDelay, slow);

    RenderRequest req;
    req.sceneId = "s1";
    req.camera = cam;
    auto future = service.submit(req);
    while (fault::fireCount(fault::Point::ChunkRenderDelay) < 1)
        std::this_thread::yield();
    ASSERT_TRUE(registry.evictScene("s1"));

    RenderResponse resp = future.get();
    ASSERT_EQ(resp.status, RequestStatus::Ok);
    expectImagesEqual(resp.image, expect);
    EXPECT_EQ(registry.stats().evictionsWhileReferenced, 1u);
}

TEST_F(RegistryCapacityTest, ThunderingHerdRunsExactlyOneLoad)
{
    FaultGuard guard;
    SceneRegistryConfig rcfg;
    rcfg.memoryBudgetBytes = 1;
    rcfg.maxConcurrentLoads = 4; // cap is irrelevant: one scene, one load
    SceneRegistry registry(rcfg);
    const uint64_t gen =
        registry.registerFromCheckpoint("s1", spec(), ckptPath);
    ASSERT_GT(gen, 0u);
    ASSERT_TRUE(registry.evictScene("s1"));

    // Stretch the reload so the whole herd arrives while it is in
    // flight.
    fault::Spec stall;
    stall.mode = fault::Mode::Always;
    stall.delayMs = 10;
    fault::arm(fault::Point::CheckpointStreamStall, stall);

    constexpr int herd = 8;
    std::atomic<int> started{0}, warmed{0};
    std::vector<std::thread> threads;
    threads.reserve(herd);
    for (int t = 0; t < herd; t++) {
        threads.emplace_back([&] {
            AcquireOutcome out =
                registry.acquireOrLoad("s1", 30000.0);
            if (out.startedLoad)
                started.fetch_add(1);
            if (out.scene && out.scene->generation() == gen)
                warmed.fetch_add(1);
        });
    }
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(warmed.load(), herd);
    EXPECT_EQ(started.load(), 1);
    SceneRegistryStats st = registry.stats();
    EXPECT_EQ(st.coldLoadsStarted, 1u);
    EXPECT_EQ(st.reloads, 1u);
    EXPECT_EQ(st.singleFlightJoins,
              static_cast<uint64_t>(herd - 1));
}

TEST_F(RegistryCapacityTest, CorruptCheckpointQuarantinesOnce)
{
    FaultGuard guard;
    const std::string path = "test_registry_capacity_corrupt.bin";
    ASSERT_EQ(trainer->saveCheckpoint(path), CheckpointError::None);

    SceneRegistryConfig rcfg;
    rcfg.memoryBudgetBytes = 1;
    SceneRegistry registry(rcfg);
    const uint64_t gen =
        registry.registerFromCheckpoint("s1", spec(), path);
    ASSERT_GT(gen, 0u);
    ASSERT_TRUE(registry.evictScene("s1"));

    // Corrupt a payload byte: the reload dies on the CRC check -- a
    // structural error, so the stub quarantines.
    {
        std::FILE *f = std::fopen(path.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 64, SEEK_SET);
        int c = std::fgetc(f);
        std::fseek(f, 64, SEEK_SET);
        std::fputc(c ^ 0x1, f);
        std::fclose(f);
    }

    AcquireOutcome out = registry.acquireOrLoad("s1", 30000.0);
    EXPECT_EQ(out.scene, nullptr);
    EXPECT_EQ(out.state, SceneState::Quarantined);
    EXPECT_EQ(out.error, CheckpointError::Crc);
    EXPECT_EQ(registry.state("s1"), SceneState::Quarantined);

    // No reload storm: further acquires answer from the quarantine
    // record without touching the file.
    const uint64_t loads_after = registry.stats().coldLoadsStarted;
    fault::resetCounts();
    for (int i = 0; i < 10; i++) {
        AcquireOutcome again = registry.acquireOrLoad("s1", 1000.0);
        EXPECT_EQ(again.state, SceneState::Quarantined);
        EXPECT_EQ(again.error, CheckpointError::Crc);
    }
    EXPECT_EQ(registry.stats().coldLoadsStarted, loads_after);
    EXPECT_EQ(fault::hitCount(fault::Point::CheckpointStreamShortRead),
              0u);
    EXPECT_GE(registry.stats().quarantineHits, 10u);

    // Repair the file and lift the quarantine: the scene recovers
    // under its original generation.
    ASSERT_EQ(trainer->saveCheckpoint(path), CheckpointError::None);
    EXPECT_TRUE(registry.clearQuarantine("s1"));
    EXPECT_EQ(registry.state("s1"), SceneState::Cold);
    out = registry.acquireOrLoad("s1", 30000.0);
    ASSERT_NE(out.scene, nullptr);
    EXPECT_EQ(out.scene->generation(), gen);
    expectParamsEqual(out.scene->field(),
                      snapshotParams(trainer->field()));
    std::remove(path.c_str());
}

TEST_F(RegistryCapacityTest, StopInterruptsRetryBackoff)
{
    FaultGuard guard;
    // Every read dies; with this retry budget the naive backoff sum is
    // days, so a prompt return proves the wait is interruptible.
    fault::Spec fail_always;
    fail_always.mode = fault::Mode::Always;
    fault::arm(fault::Point::CheckpointShortRead, fail_always);

    SceneSpec s = spec();
    s.loadRetries = 50;
    s.loadRetryBackoffMs = 100;

    SceneRegistry registry;
    const auto t0 = std::chrono::steady_clock::now();
    std::atomic<uint64_t> result{1};
    std::thread worker([&] {
        result.store(
            registry.registerFromCheckpoint("s1", s, ckptPath));
    });
    // Let the register call reach its first backoff, then stop().
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    registry.stop();
    worker.join();
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();

    EXPECT_EQ(result.load(), 0u);
    EXPECT_LT(elapsed_ms, 5000.0);
    EXPECT_EQ(registry.acquire("s1"), nullptr);
}

TEST_F(RegistryCapacityTest, TransientReloadFailureStaysColdNotQuarantined)
{
    FaultGuard guard;
    SceneRegistryConfig rcfg;
    rcfg.memoryBudgetBytes = 1;
    SceneRegistry registry(rcfg);
    SceneSpec s = spec();
    s.loadRetries = 0; // one attempt per cold start: each injected
                       // fault fails that reload outright
    const uint64_t gen =
        registry.registerFromCheckpoint("s1", s, ckptPath);
    ASSERT_GT(gen, 0u);
    ASSERT_TRUE(registry.evictScene("s1"));

    // Enumerate the reload's chunk reads (never-count), warming the
    // scene as a side effect.
    fault::Spec count_only;
    count_only.mode = fault::Mode::Never;
    fault::arm(fault::Point::CheckpointStreamShortRead, count_only);
    {
        AcquireOutcome out = registry.acquireOrLoad("s1", 30000.0);
        ASSERT_NE(out.scene, nullptr);
    }
    const uint64_t sites =
        fault::hitCount(fault::Point::CheckpointStreamShortRead);
    ASSERT_GE(sites, 2u);
    fault::disarmAll();

    // Kill the reload at every chunk read in turn: the stub must stay
    // Cold (Io is transient -- no quarantine), keep its generation,
    // and recover cleanly afterwards.
    for (uint64_t k = 1; k <= sites; k++) {
        ASSERT_TRUE(registry.evictScene("s1")) << "site " << k;
        fault::resetCounts();
        fault::Spec kill;
        kill.mode = fault::Mode::OneShot;
        kill.n = k;
        fault::arm(fault::Point::CheckpointStreamShortRead, kill);

        AcquireOutcome out = registry.acquireOrLoad("s1", 30000.0);
        EXPECT_EQ(out.scene, nullptr) << "site " << k;
        EXPECT_EQ(registry.state("s1"), SceneState::Cold)
            << "site " << k;
        EXPECT_EQ(registry.generation("s1"), gen) << "site " << k;
        fault::disarm(fault::Point::CheckpointStreamShortRead);

        AcquireOutcome retry = registry.acquireOrLoad("s1", 30000.0);
        ASSERT_NE(retry.scene, nullptr) << "site " << k;
        EXPECT_EQ(retry.scene->generation(), gen) << "site " << k;
    }
    EXPECT_EQ(registry.stats().loadFailures, sites);
    expectParamsEqual(registry.acquire("s1")->field(),
                      snapshotParams(trainer->field()));
}

TEST_F(RegistryCapacityTest, ServiceReportsColdStartAndRenderRecovers)
{
    FaultGuard guard;
    SceneRegistryConfig rcfg;
    rcfg.memoryBudgetBytes = 1;
    SceneRegistry registry(rcfg);
    ASSERT_GT(registry.registerFromCheckpoint("s1", spec(), ckptPath),
              0u);

    RenderServiceConfig cfg;
    cfg.workers = 2;
    RenderService service(registry, cfg);

    CameraSpec cam = latticeCamera();
    Image expect = trainer->renderImage(cam.makeCamera());

    // Slow the reload enough that submit() observes the cold scene.
    fault::Spec stall;
    stall.mode = fault::Mode::Always;
    stall.delayMs = 5;
    fault::arm(fault::Point::CheckpointStreamStall, stall);

    ASSERT_TRUE(registry.evictScene("s1"));
    RenderRequest req;
    req.sceneId = "s1";
    req.camera = cam;

    // submit() never blocks on a load: it answers ColdStart with a
    // load-aware retry hint and leaves the reload running.
    RenderResponse cold = service.submit(req).get();
    EXPECT_EQ(cold.status, RequestStatus::ColdStart);
    EXPECT_GT(cold.retryAfterMs, 0);
    EXPECT_GE(service.stats().requestsColdStart, 1u);

    // The blocking wrapper absorbs the cold start: wait for warm,
    // resubmit, serve bit-identical pixels.
    RenderResponse warm = service.render(req);
    ASSERT_EQ(warm.status, RequestStatus::Ok);
    expectImagesEqual(warm.image, expect);
}

} // namespace
} // namespace instant3d
