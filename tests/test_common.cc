/**
 * @file
 * Unit tests for src/common: Vec3 algebra, PCG RNG, half-precision
 * arithmetic, statistics containers, and the table printer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/half.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/vec3.hh"

namespace instant3d {
namespace {

TEST(Vec3Test, BasicAlgebra)
{
    Vec3 a(1, 2, 3), b(4, 5, 6);
    Vec3 s = a + b;
    EXPECT_FLOAT_EQ(s.x, 5);
    EXPECT_FLOAT_EQ(s.y, 7);
    EXPECT_FLOAT_EQ(s.z, 9);
    EXPECT_FLOAT_EQ(a.dot(b), 32.0f);
    Vec3 c = a.cross(b);
    EXPECT_FLOAT_EQ(c.x, -3);
    EXPECT_FLOAT_EQ(c.y, 6);
    EXPECT_FLOAT_EQ(c.z, -3);
}

TEST(Vec3Test, CrossIsOrthogonal)
{
    Vec3 a(0.3f, -1.2f, 2.0f), b(1.0f, 0.5f, -0.7f);
    Vec3 c = a.cross(b);
    EXPECT_NEAR(c.dot(a), 0.0f, 1e-5f);
    EXPECT_NEAR(c.dot(b), 0.0f, 1e-5f);
}

TEST(Vec3Test, NormalizedHasUnitLength)
{
    Vec3 v(3, 4, 12);
    EXPECT_NEAR(v.normalized().norm(), 1.0f, 1e-6f);
    // Degenerate zero vector falls back to a unit axis.
    EXPECT_NEAR(Vec3(0.0f).normalized().norm(), 1.0f, 1e-6f);
}

TEST(Vec3Test, ClampAndLerp)
{
    Vec3 v(-1.0f, 0.5f, 2.0f);
    Vec3 c = clamp(v, 0.0f, 1.0f);
    EXPECT_FLOAT_EQ(c.x, 0.0f);
    EXPECT_FLOAT_EQ(c.y, 0.5f);
    EXPECT_FLOAT_EQ(c.z, 1.0f);
    Vec3 m = lerp(Vec3(0.0f), Vec3(2.0f), 0.25f);
    EXPECT_FLOAT_EQ(m.x, 0.5f);
}

TEST(Vec3Test, IndexAccessors)
{
    Vec3 v(7, 8, 9);
    EXPECT_FLOAT_EQ(v[0], 7);
    EXPECT_FLOAT_EQ(v[1], 8);
    EXPECT_FLOAT_EQ(v[2], 9);
    v[1] = -2.0f;
    EXPECT_FLOAT_EQ(v.y, -2.0f);
    EXPECT_FLOAT_EQ(v.maxComponent(), 9.0f);
    EXPECT_FLOAT_EQ(v.minComponent(), -2.0f);
}

TEST(RngTest, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.nextU32(), b.nextU32());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; i++)
        same += a.nextU32() == b.nextU32();
    EXPECT_LT(same, 4);
}

TEST(RngTest, FloatInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 10000; i++) {
        float f = r.nextFloat();
        EXPECT_GE(f, 0.0f);
        EXPECT_LT(f, 1.0f);
    }
}

TEST(RngTest, BoundedIsUniformish)
{
    Rng r(99);
    int counts[10] = {};
    const int draws = 100000;
    for (int i = 0; i < draws; i++)
        counts[r.nextU32(10)]++;
    for (int c : counts) {
        EXPECT_GT(c, draws / 10 * 0.9);
        EXPECT_LT(c, draws / 10 * 1.1);
    }
}

TEST(RngTest, GaussianMoments)
{
    Rng r(5);
    RunningStats s;
    for (int i = 0; i < 50000; i++)
        s.add(r.nextGaussian());
    EXPECT_NEAR(s.mean(), 0.0, 0.02);
    EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(HalfTest, RoundTripExactValues)
{
    // Values exactly representable in binary16 round-trip exactly.
    for (float f : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 1024.0f, -0.25f,
                    65504.0f}) {
        EXPECT_FLOAT_EQ(Half(f).toFloat(), f) << f;
    }
}

TEST(HalfTest, RoundingError)
{
    // binary16 has 11 significand bits: relative error <= 2^-11.
    Rng r(3);
    for (int i = 0; i < 1000; i++) {
        float f = r.nextFloat(-100.0f, 100.0f);
        float back = Half(f).toFloat();
        EXPECT_NEAR(back, f, std::fabs(f) * 0x1p-10f + 1e-7f);
    }
}

TEST(HalfTest, OverflowToInfinity)
{
    EXPECT_TRUE(std::isinf(Half(1e6f).toFloat()));
    EXPECT_TRUE(std::isinf(Half(-1e6f).toFloat()));
    EXPECT_LT(Half(-1e6f).toFloat(), 0.0f);
}

TEST(HalfTest, SubnormalsRepresented)
{
    float tiny = 1e-5f; // below the binary16 normal range (6.1e-5)
    float back = Half(tiny).toFloat();
    EXPECT_GT(back, 0.0f);
    EXPECT_NEAR(back, tiny, 1e-6f);
}

TEST(HalfTest, ArithmeticRoundsPerOperation)
{
    Half a(0.1f), b(0.2f);
    float exact = a.toFloat() + b.toFloat();
    EXPECT_NEAR((a + b).toFloat(), exact, std::fabs(exact) * 0x1p-10f);
    // fp16 addition is not exact in general.
    Half big(2048.0f), one(1.0f);
    EXPECT_FLOAT_EQ((big + one).toFloat(), 2048.0f);
}

TEST(RunningStatsTest, MeanVarianceMinMax)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesSequential)
{
    Rng r(11);
    RunningStats all, a, b;
    for (int i = 0; i < 1000; i++) {
        double x = r.nextGaussian() * 3.0 + 1.0;
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(HistogramTest, BinningAndRange)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; i++)
        h.add(i + 0.5);
    h.add(-1.0);
    h.add(11.0);
    EXPECT_EQ(h.totalCount(), 12u);
    EXPECT_EQ(h.underflowCount(), 1u);
    EXPECT_EQ(h.overflowCount(), 1u);
    for (int i = 0; i < 10; i++)
        EXPECT_EQ(h.binCount(i), 1u);
    EXPECT_NEAR(h.fractionInRange(0.0, 5.0), 5.0 / 12.0, 1e-12);
}

TEST(HistogramTest, AsciiRenders)
{
    Histogram h(0.0, 2.0, 2);
    h.add(0.5);
    h.add(1.5);
    h.add(1.6);
    std::string art = h.toAscii(10);
    EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(PercentileTest, KnownQuantiles)
{
    PercentileTracker p;
    for (int i = 1; i <= 100; i++)
        p.add(i);
    EXPECT_NEAR(p.percentile(0), 1.0, 1e-12);
    EXPECT_NEAR(p.percentile(100), 100.0, 1e-12);
    EXPECT_NEAR(p.percentile(50), 50.5, 1e-9);
    EXPECT_NEAR(p.percentile(90), 90.1, 1e-9);
}

TEST(TableTest, AlignmentAndCsv)
{
    Table t({"name", "value"});
    t.row().cell("alpha").cell(1.5, 1);
    t.row().cell("b").cell(static_cast<long long>(42));
    std::string s = t.toString();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("1.5"), std::string::npos);
    std::string csv = t.toCsv();
    EXPECT_NE(csv.find("name,value"), std::string::npos);
    EXPECT_NE(csv.find("b,42"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(TableTest, FormatDouble)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(-0.5, 0), "-0");
}

} // namespace
} // namespace instant3d
