/**
 * @file
 * Render-serving subsystem tests. The load-bearing contract: a served
 * QualityTier::Full pixel is bit-identical to Trainer::renderImage of
 * the same field and camera -- at 1/2/8 workers, across tile
 * boundaries, under cache hits and misses, with interleaved
 * multi-scene request mixes, and whether the model arrived via
 * registerFromTrainer or a checkpoint file.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/fault_injection.hh"
#include "nerf/serialize.hh"
#include "nerf/trainer.hh"
#include "scene/scene.hh"
#include "serve/render_service.hh"
#include "serve/scene_registry.hh"

namespace instant3d {
namespace {

/** Disarm + zero all fault points on entry and exit of a test. */
struct FaultGuard
{
    FaultGuard()
    {
        fault::disarmAll();
        fault::resetCounts();
    }
    ~FaultGuard()
    {
        fault::disarmAll();
        fault::resetCounts();
    }
};

/** Spin until `point` has been hit at least `hits` times. */
void
awaitHits(fault::Point point, uint64_t hits)
{
    while (fault::hitCount(point) < hits)
        std::this_thread::yield();
}

Dataset
tinyDataset(const std::string &scene_name)
{
    auto scene = makeSyntheticScene(scene_name);
    DatasetConfig cfg;
    cfg.numTrainViews = 6;
    cfg.numTestViews = 2;
    cfg.imageWidth = 20;
    cfg.imageHeight = 20;
    cfg.renderOpts.numSteps = 64;
    return makeDataset(scene, cfg);
}

FieldConfig
tinyField()
{
    HashEncodingConfig grid;
    grid.numLevels = 4;
    grid.featuresPerEntry = 2;
    grid.log2TableSize = 12;
    grid.baseResolution = 8;
    grid.growthFactor = 1.6f;
    FieldConfig cfg = FieldConfig::instant3dDefault(grid);
    cfg.hiddenDim = 16;
    return cfg;
}

TrainConfig
tinyTrain(bool occupancy = true)
{
    TrainConfig cfg;
    cfg.raysPerBatch = 96;
    cfg.samplesPerRay = 32;
    cfg.adam.lr = 1e-2f;
    cfg.useOccupancyGrid = occupancy;
    cfg.occupancyUpdatePeriod = 8;
    return cfg;
}

/**
 * A camera spec whose floats sit exactly on the 1/4096 quantization
 * lattice, so quantized() is the identity and the trainer renders the
 * same camera the service does.
 */
CameraSpec
latticeCamera(int width = 40, int height = 40)
{
    CameraSpec spec;
    spec.eye = {1.25f, 0.5f, 1.0f};
    spec.target = {0.5f, 0.5f, 0.5f};
    spec.up = {0.0f, 0.0f, 1.0f};
    spec.vfovDeg = 45.0f;
    spec.width = width;
    spec.height = height;
    return spec;
}

void
expectImagesEqual(const Image &a, const Image &b)
{
    ASSERT_EQ(a.width(), b.width());
    ASSERT_EQ(a.height(), b.height());
    for (int row = 0; row < a.height(); row++) {
        for (int col = 0; col < a.width(); col++) {
            const Vec3 &pa = a.at(col, row);
            const Vec3 &pb = b.at(col, row);
            ASSERT_EQ(pa.x, pb.x) << "pixel (" << col << "," << row
                                  << ")";
            ASSERT_EQ(pa.y, pb.y);
            ASSERT_EQ(pa.z, pb.z);
        }
    }
}

/** Shared fixture: one trained scene, slow-but-thorough setup once. */
class ServeTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        lego = new Dataset(tinyDataset("lego"));
        legoTrainer = new Trainer(*lego, tinyField(), tinyTrain());
        for (int i = 0; i < 30; i++)
            legoTrainer->trainIteration();

        materials = new Dataset(tinyDataset("materials"));
        materialsTrainer =
            new Trainer(*materials, tinyField(), tinyTrain());
        for (int i = 0; i < 30; i++)
            materialsTrainer->trainIteration();
    }

    static void
    TearDownTestSuite()
    {
        delete legoTrainer;
        delete lego;
        delete materialsTrainer;
        delete materials;
        legoTrainer = materialsTrainer = nullptr;
        lego = materials = nullptr;
    }

    static Dataset *lego;
    static Trainer *legoTrainer;
    static Dataset *materials;
    static Trainer *materialsTrainer;
};

Dataset *ServeTest::lego = nullptr;
Trainer *ServeTest::legoTrainer = nullptr;
Dataset *ServeTest::materials = nullptr;
Trainer *ServeTest::materialsTrainer = nullptr;

TEST_F(ServeTest, RenderRaysMatchesRenderRayFastAnyBatching)
{
    NerfField &field = legoTrainer->field();
    const VolumeRenderer &renderer = legoTrainer->renderer();
    CameraSpec spec = latticeCamera(16, 16);
    Camera cam = spec.makeCamera();

    std::vector<Ray> rays;
    for (int row = 0; row < 16; row++)
        for (int col = 0; col < 16; col++)
            rays.push_back(cam.pixelRay(col, row));

    Workspace ref_ws;
    std::vector<RayResult> expect(rays.size());
    for (size_t r = 0; r < rays.size(); r++) {
        ref_ws.reset();
        expect[r] = renderer.renderRayFast(field, rays[r], ref_ws);
    }

    // Whole image in one call, tiny batches, and odd-size batches all
    // reproduce the per-ray path bit-for-bit.
    for (int batch : {256, 1, 7, 100}) {
        Workspace ws;
        std::vector<RayResult> got(rays.size());
        for (size_t r0 = 0; r0 < rays.size();
             r0 += static_cast<size_t>(batch)) {
            size_t n = std::min(rays.size() - r0,
                                static_cast<size_t>(batch));
            ws.reset();
            renderer.renderRays(field, rays.data() + r0,
                                static_cast<int>(n), got.data() + r0,
                                ws);
        }
        for (size_t r = 0; r < rays.size(); r++) {
            ASSERT_EQ(got[r].color.x, expect[r].color.x)
                << "batch " << batch << " ray " << r;
            ASSERT_EQ(got[r].color.y, expect[r].color.y);
            ASSERT_EQ(got[r].color.z, expect[r].color.z);
            ASSERT_EQ(got[r].depth, expect[r].depth);
            ASSERT_EQ(got[r].opacity, expect[r].opacity);
        }
    }
}

TEST_F(ServeTest, ServedBitIdenticalToRenderImageAcrossWorkerCounts)
{
    SceneRegistry registry;
    registry.registerFromTrainer("lego", *legoTrainer);

    CameraSpec spec = latticeCamera();
    Image expect = legoTrainer->renderImage(spec.makeCamera());

    for (int workers : {1, 2, 8}) {
        RenderServiceConfig cfg;
        cfg.workers = workers;
        cfg.tilePixels = 16;
        cfg.chunkRays = 512;
        RenderService service(registry, cfg);

        RenderRequest req;
        req.sceneId = "lego";
        req.camera = spec;
        RenderResponse resp = service.render(req);
        ASSERT_EQ(resp.status, RequestStatus::Ok)
            << "workers=" << workers;
        expectImagesEqual(resp.image, expect);
        EXPECT_EQ(resp.tilesRendered, 9); // ceil(40/16)^2
        EXPECT_EQ(resp.tilesFromCache, 0);
    }
}

TEST_F(ServeTest, RoiTilesAssembleToFullImage)
{
    SceneRegistry registry;
    registry.registerFromTrainer("lego", *legoTrainer);
    RenderServiceConfig cfg;
    cfg.workers = 2;
    cfg.tilePixels = 8;
    RenderService service(registry, cfg);

    CameraSpec spec = latticeCamera();
    Image expect = legoTrainer->renderImage(spec.makeCamera());

    // Fetch an uneven patchwork of regions; each must equal the
    // corresponding window of renderImage.
    std::vector<TileRect> rois = {
        {0, 0, 40, 40}, {8, 8, 16, 12}, {35, 0, 5, 40}, {0, 39, 40, 1}};
    for (const auto &roi : rois) {
        RenderRequest req;
        req.sceneId = "lego";
        req.camera = spec;
        req.roi = roi;
        RenderResponse resp = service.render(req);
        ASSERT_EQ(resp.status, RequestStatus::Ok);
        ASSERT_EQ(resp.image.width(), roi.w);
        ASSERT_EQ(resp.image.height(), roi.h);
        for (int y = 0; y < roi.h; y++) {
            for (int x = 0; x < roi.w; x++) {
                const Vec3 &pa = resp.image.at(x, y);
                const Vec3 &pb = expect.at(roi.x + x, roi.y + y);
                ASSERT_EQ(pa.x, pb.x)
                    << "roi (" << roi.x << "," << roi.y << ") pixel ("
                    << x << "," << y << ")";
                ASSERT_EQ(pa.y, pb.y);
                ASSERT_EQ(pa.z, pb.z);
            }
        }
    }
}

TEST_F(ServeTest, InterleavedMultiSceneMixStaysBitExact)
{
    SceneRegistry registry;
    registry.registerFromTrainer("lego", *legoTrainer);
    registry.registerFromTrainer("materials", *materialsTrainer);

    CameraSpec spec = latticeCamera();
    Image expect_lego = legoTrainer->renderImage(spec.makeCamera());
    Image expect_mat =
        materialsTrainer->renderImage(spec.makeCamera());

    RenderServiceConfig cfg;
    cfg.workers = 4;
    cfg.tilePixels = 16;
    cfg.chunkRays = 1024;
    cfg.cacheTiles = 64;
    RenderService service(registry, cfg);

    // Four client threads fire interleaved full/roi requests against
    // both scenes; every Full-tier answer must match its trainer.
    constexpr int per_thread = 6;
    std::vector<std::thread> clients;
    std::atomic<int> failures{0};
    for (int c = 0; c < 4; c++) {
        clients.emplace_back([&, c] {
            for (int i = 0; i < per_thread; i++) {
                bool use_lego = (c + i) % 2 == 0;
                RenderRequest req;
                req.sceneId = use_lego ? "lego" : "materials";
                req.camera = spec;
                if (i % 3 == 1)
                    req.roi = {16, 8, 16, 16};
                RenderResponse resp = service.render(req);
                if (resp.status != RequestStatus::Ok) {
                    failures++;
                    continue;
                }
                const Image &expect =
                    use_lego ? expect_lego : expect_mat;
                TileRect roi = req.roi.w
                                   ? req.roi
                                   : TileRect{0, 0, 40, 40};
                for (int y = 0; y < roi.h && !failures; y++)
                    for (int x = 0; x < roi.w; x++) {
                        const Vec3 &pa = resp.image.at(x, y);
                        const Vec3 &pb =
                            expect.at(roi.x + x, roi.y + y);
                        if (pa.x != pb.x || pa.y != pb.y ||
                            pa.z != pb.z) {
                            failures++;
                            break;
                        }
                    }
            }
        });
    }
    for (auto &t : clients)
        t.join();
    EXPECT_EQ(failures.load(), 0);

    ServeStats stats = service.stats();
    EXPECT_EQ(stats.requestsCompleted, 4u * per_thread);
    EXPECT_EQ(stats.requestsRejected, 0u);
    // Repeated cameras + the cache means part of the load was served
    // from rendered tiles -- with identical bits (asserted above).
    EXPECT_GT(stats.tilesFromCache, 0u);
}

TEST_F(ServeTest, CrossRequestCoalescingHappens)
{
    SceneRegistry registry;
    registry.registerFromTrainer("lego", *legoTrainer);
    RenderServiceConfig cfg;
    cfg.workers = 1;
    cfg.tilePixels = 16;
    cfg.chunkRays = 2048; // 8 tiles of 256 rays share one chunk
    RenderService service(registry, cfg);

    CameraSpec spec = latticeCamera();
    // Burst of small single-tile requests: while the first chunk
    // renders, the rest pile up in the queue and the next drain packs
    // tiles from many requests into shared chunks.
    std::vector<std::future<RenderResponse>> futures;
    for (int i = 0; i < 24; i++) {
        RenderRequest req;
        req.sceneId = "lego";
        req.camera = spec;
        req.roi = {16 * (i % 2), 16 * ((i / 2) % 2), 16, 16};
        futures.push_back(service.submit(req));
    }
    for (auto &f : futures)
        EXPECT_EQ(f.get().status, RequestStatus::Ok);

    ServeStats stats = service.stats();
    EXPECT_GT(stats.crossRequestChunks, 0u);
    EXPECT_LT(stats.chunksRendered, stats.tilesRendered);
}

TEST_F(ServeTest, CacheHitsAreBitExactAndInvalidateOnReregister)
{
    SceneRegistry registry;
    uint64_t gen1 = registry.registerFromTrainer("lego", *legoTrainer);
    RenderServiceConfig cfg;
    cfg.workers = 2;
    cfg.cacheTiles = 128;
    RenderService service(registry, cfg);

    CameraSpec spec = latticeCamera();
    RenderRequest req;
    req.sceneId = "lego";
    req.camera = spec;

    RenderResponse first = service.render(req);
    ASSERT_EQ(first.status, RequestStatus::Ok);
    EXPECT_EQ(first.tilesFromCache, 0);

    RenderResponse second = service.render(req);
    ASSERT_EQ(second.status, RequestStatus::Ok);
    EXPECT_EQ(second.tilesFromCache, second.tilesRendered +
                                         second.tilesFromCache);
    expectImagesEqual(second.image, first.image);

    // Re-registration: train the model further and republish. The new
    // generation's keys miss the old entries, so pixels update.
    for (int i = 0; i < 10; i++)
        legoTrainer->trainIteration();
    uint64_t gen2 = registry.registerFromTrainer("lego", *legoTrainer);
    EXPECT_GT(gen2, gen1);
    service.invalidateScene("lego");

    Image expect = legoTrainer->renderImage(spec.makeCamera());
    RenderResponse third = service.render(req);
    ASSERT_EQ(third.status, RequestStatus::Ok);
    EXPECT_EQ(third.sceneGeneration, gen2);
    EXPECT_EQ(third.tilesFromCache, 0);
    expectImagesEqual(third.image, expect);
}

TEST_F(ServeTest, CheckpointRegistrationServesTrainerBits)
{
    const std::string path = "test_serve_ckpt.bin";
    ASSERT_EQ(legoTrainer->saveCheckpoint(path),
              CheckpointError::None);

    SceneSpec spec;
    spec.field = legoTrainer->field().config();
    spec.renderer = legoTrainer->renderer().config();
    spec.useOccupancy = true;
    spec.occupancy = legoTrainer->occupancyGrid()->config();

    SceneRegistry registry;
    ASSERT_GT(registry.registerFromCheckpoint("lego", spec, path), 0u);

    RenderServiceConfig cfg;
    cfg.workers = 2;
    RenderService service(registry, cfg);

    CameraSpec cam = latticeCamera();
    Image expect = legoTrainer->renderImage(cam.makeCamera());
    RenderRequest req;
    req.sceneId = "lego";
    req.camera = cam;
    RenderResponse resp = service.render(req);
    ASSERT_EQ(resp.status, RequestStatus::Ok);
    expectImagesEqual(resp.image, expect);

    // A corrupt checkpoint must not publish (nor clobber a live scene).
    {
        std::FILE *f = std::fopen(path.c_str(), "r+b");
        std::fputc('X', f);
        std::fclose(f);
    }
    EXPECT_EQ(registry.registerFromCheckpoint("lego2", spec, path), 0u);
    EXPECT_EQ(registry.acquire("lego2"), nullptr);
    EXPECT_NE(registry.acquire("lego"), nullptr);
    std::remove(path.c_str());
}

TEST_F(ServeTest, QualityTiersAreDeterministicPerTier)
{
    SceneRegistry registry;
    registry.registerFromTrainer("lego", *legoTrainer);
    CameraSpec spec = latticeCamera();

    for (QualityTier tier :
         {QualityTier::Half, QualityTier::Preview}) {
        Image at1, at8;
        for (int workers : {1, 8}) {
            RenderServiceConfig cfg;
            cfg.workers = workers;
            RenderService service(registry, cfg);
            RenderRequest req;
            req.sceneId = "lego";
            req.camera = spec;
            req.quality = tier;
            RenderResponse resp = service.render(req);
            ASSERT_EQ(resp.status, RequestStatus::Ok);
            (workers == 1 ? at1 : at8) = std::move(resp.image);
        }
        expectImagesEqual(at1, at8);
    }
}

TEST_F(ServeTest, BackpressureRejectsWithRetryAfter)
{
    SceneRegistry registry;
    registry.registerFromTrainer("lego", *legoTrainer);
    RenderServiceConfig cfg;
    cfg.workers = 1;
    cfg.tilePixels = 16;
    cfg.maxQueueTiles = 4;
    cfg.retryAfterMs = 7;
    RenderService service(registry, cfg);

    // Structurally unservable: 9 tiles can never fit a 4-tile window,
    // so the answer is BadRequest, not a retry hint that cannot help.
    RenderRequest req;
    req.sceneId = "lego";
    req.camera = latticeCamera();
    EXPECT_EQ(service.render(req).status, RequestStatus::BadRequest);

    // Transient overload: flood single-tile requests far faster than
    // one worker drains them; once 4 tiles are outstanding the rest
    // bounce with the configured retry-after backoff.
    req.roi = {0, 0, 16, 16};
    std::vector<std::future<RenderResponse>> futures;
    for (int i = 0; i < 40; i++)
        futures.push_back(service.submit(req));
    uint64_t ok = 0, rejected = 0;
    for (auto &f : futures) {
        RenderResponse resp = f.get();
        if (resp.status == RequestStatus::Ok) {
            ok++;
        } else {
            ASSERT_EQ(resp.status, RequestStatus::Rejected);
            // The hint is load-proportional: at least the base,
            // growing with the queue depth at rejection time.
            EXPECT_GE(resp.retryAfterMs, 7);
            rejected++;
        }
    }
    EXPECT_GT(ok, 0u);
    EXPECT_GT(rejected, 0u);

    ServeStats stats = service.stats();
    EXPECT_EQ(stats.requestsRejected, rejected);
    EXPECT_EQ(stats.requestsCompleted, ok);
    EXPECT_EQ(stats.requestsBadRequest, 1u);
    EXPECT_LE(stats.queueDepthHighwater, 4u);
}

TEST_F(ServeTest, ExpiredDeadlineDropsUnrenderedTiles)
{
    SceneRegistry registry;
    registry.registerFromTrainer("lego", *legoTrainer);
    RenderServiceConfig cfg;
    cfg.workers = 1;
    RenderService service(registry, cfg);

    RenderRequest req;
    req.sceneId = "lego";
    req.camera = latticeCamera();
    req.deadlineMs = 1e-6; // expired by the time the queue drains
    RenderResponse resp = service.render(req);
    EXPECT_EQ(resp.status, RequestStatus::DeadlineExceeded);
    EXPECT_EQ(resp.tilesRendered, 0);
    EXPECT_EQ(service.stats().requestsDeadlineExceeded, 1u);
}

TEST_F(ServeTest, UnknownSceneAndBadRequestAnswerImmediately)
{
    SceneRegistry registry;
    registry.registerFromTrainer("lego", *legoTrainer);
    RenderServiceConfig cfg;
    cfg.workers = 1;
    RenderService service(registry, cfg);

    RenderRequest req;
    req.sceneId = "nope";
    req.camera = latticeCamera();
    EXPECT_EQ(service.render(req).status, RequestStatus::UnknownScene);

    req.sceneId = "lego";
    req.roi = {30, 30, 20, 20}; // spills past the 40x40 image
    EXPECT_EQ(service.render(req).status, RequestStatus::BadRequest);

    req.roi = {};
    req.camera.width = 0;
    EXPECT_EQ(service.render(req).status, RequestStatus::BadRequest);

    // An out-of-range quality tier must be refused, not index past
    // the per-tier renderer table.
    req.camera = latticeCamera();
    req.quality = static_cast<QualityTier>(7);
    EXPECT_EQ(service.render(req).status, RequestStatus::BadRequest);
}

TEST_F(ServeTest, RegistryKeepsOldGenerationAliveForReaders)
{
    SceneRegistry registry;
    registry.registerFromTrainer("lego", *legoTrainer);
    ServedScenePtr held = registry.acquire("lego");
    ASSERT_NE(held, nullptr);
    uint64_t old_gen = held->generation();

    registry.registerFromTrainer("lego", *legoTrainer);
    ServedScenePtr fresh = registry.acquire("lego");
    EXPECT_NE(fresh.get(), held.get());
    EXPECT_GT(fresh->generation(), old_gen);

    // The held generation still renders (its model is untouched).
    Workspace ws;
    Camera cam = latticeCamera().makeCamera();
    Ray ray = cam.pixelRay(20, 20);
    RayResult res;
    held->renderer(QualityTier::Full)
        .renderRays(held->field(), &ray, 1, &res, ws);
    EXPECT_TRUE(std::isfinite(res.color.x));

    EXPECT_TRUE(registry.unregister("lego"));
    EXPECT_EQ(registry.acquire("lego"), nullptr);
    EXPECT_FALSE(registry.unregister("lego"));
}

TEST_F(ServeTest, RegistryRetriesTransientLoadFailure)
{
    FaultGuard guard;
    const std::string path = "test_serve_retry.bin";
    ASSERT_EQ(legoTrainer->saveCheckpoint(path),
              CheckpointError::None);

    SceneSpec spec;
    spec.field = legoTrainer->field().config();
    spec.renderer = legoTrainer->renderer().config();
    spec.useOccupancy = true;
    spec.occupancy = legoTrainer->occupancyGrid()->config();
    spec.loadRetryBackoffMs = 1;

    SceneRegistry registry;

    // A one-shot transient read failure: attempt 1 fails, the backoff
    // retry loads clean.
    fault::Spec fail_once;
    fail_once.mode = fault::Mode::OneShot;
    fail_once.n = 1;
    fault::arm(fault::Point::CheckpointShortRead, fail_once);
    EXPECT_GT(registry.registerFromCheckpoint("lego", spec, path), 0u);
    EXPECT_EQ(fault::fireCount(fault::Point::CheckpointShortRead), 1u);

    // Persistent I/O failure: every attempt dies on its first read;
    // the budget (1 try + loadRetries) is spent, then the load fails.
    fault::resetCounts();
    fault::Spec fail_always;
    fail_always.mode = fault::Mode::Always;
    fault::arm(fault::Point::CheckpointShortRead, fail_always);
    EXPECT_EQ(registry.registerFromCheckpoint("lego2", spec, path), 0u);
    EXPECT_EQ(fault::hitCount(fault::Point::CheckpointShortRead),
              1u + spec.loadRetries);
    EXPECT_EQ(registry.acquire("lego2"), nullptr);

    // Structural corruption is permanent -- exactly one attempt, no
    // retry (the armed-but-never-firing point counts header reads).
    {
        std::FILE *f = std::fopen(path.c_str(), "r+b");
        std::fputc('X', f);
        std::fclose(f);
    }
    fault::resetCounts();
    fault::Spec count_only;
    count_only.mode = fault::Mode::Never;
    fault::arm(fault::Point::CheckpointShortRead, count_only);
    EXPECT_EQ(registry.registerFromCheckpoint("lego3", spec, path), 0u);
    EXPECT_EQ(fault::hitCount(fault::Point::CheckpointShortRead), 1u);
    std::remove(path.c_str());
}

TEST_F(ServeTest, ShutdownResolvesQueuedAndInFlightFutures)
{
    FaultGuard guard;
    SceneRegistry registry;
    registry.registerFromTrainer("lego", *legoTrainer);

    // Slow every chunk down so the scheduler is provably mid-dispatch
    // when the service is destroyed, with later requests still queued.
    fault::Spec slow;
    slow.mode = fault::Mode::Always;
    slow.delayMs = 50;
    fault::arm(fault::Point::ChunkRenderDelay, slow);

    std::vector<std::future<RenderResponse>> wave1, wave2;
    {
        RenderServiceConfig cfg;
        cfg.workers = 1;
        cfg.tilePixels = 16;
        RenderService service(registry, cfg);

        RenderRequest req;
        req.sceneId = "lego";
        req.camera = latticeCamera();
        req.roi = {0, 0, 16, 16};
        for (int i = 0; i < 20; i++)
            wave1.push_back(service.submit(req));

        // Once a chunk is rendering, the scheduler is blocked inside
        // its dispatch; everything submitted now stays queued until
        // after the destructor has raised the stop flag.
        awaitHits(fault::Point::ChunkRenderDelay, 1);
        for (int i = 0; i < 10; i++)
            wave2.push_back(service.submit(req));
    } // ~RenderService: must resolve every future, never hang

    int ok = 0, shutdown = 0;
    for (auto &f : wave1) {
        RequestStatus s = f.get().status;
        ASSERT_TRUE(s == RequestStatus::Ok ||
                    s == RequestStatus::Shutdown);
        (s == RequestStatus::Ok ? ok : shutdown)++;
    }
    EXPECT_GT(ok, 0); // the in-flight chunk completed normally
    for (auto &f : wave2)
        EXPECT_EQ(f.get().status, RequestStatus::Shutdown);
}

TEST_F(ServeTest, ExplicitStopIsIdempotentAndLeavesServiceQueryable)
{
    FaultGuard guard;
    SceneRegistry registry;
    registry.registerFromTrainer("lego", *legoTrainer);

    fault::Spec slow;
    slow.mode = fault::Mode::Always;
    slow.delayMs = 20;
    fault::arm(fault::Point::ChunkRenderDelay, slow);

    RenderServiceConfig cfg;
    cfg.workers = 1;
    cfg.tilePixels = 16;
    RenderService service(registry, cfg);
    EXPECT_FALSE(service.stopped());

    RenderRequest req;
    req.sceneId = "lego";
    req.camera = latticeCamera();
    req.roi = {0, 0, 16, 16};
    std::vector<std::future<RenderResponse>> futs;
    for (int i = 0; i < 10; i++)
        futs.push_back(service.submit(req));

    // Concurrent stop() calls must serialize on one join, not race it.
    std::thread other([&service] { service.stop(); });
    service.stop();
    other.join();
    EXPECT_TRUE(service.stopped());

    // Queued requests resolve Shutdown exactly as destruction always
    // did; nothing hangs.
    int ok = 0, shutdown = 0;
    for (auto &f : futs) {
        RequestStatus s = f.get().status;
        ASSERT_TRUE(s == RequestStatus::Ok ||
                    s == RequestStatus::Shutdown);
        (s == RequestStatus::Ok ? ok : shutdown)++;
    }

    // A stopped service refuses new work but stays queryable.
    EXPECT_EQ(service.render(req).status, RequestStatus::Shutdown);
    EXPECT_EQ(service.outstandingTileCount(), 0u);
    ServeStats stats = service.stats();
    EXPECT_GE(stats.requestsAccepted, 10u);

    service.stop(); // third call: still a no-op
    EXPECT_TRUE(service.stopped());
}

TEST_F(ServeTest, DegradationServesInsteadOfRejecting)
{
    FaultGuard guard;
    SceneRegistry registry;
    registry.registerFromTrainer("lego", *legoTrainer);

    RenderServiceConfig cfg;
    cfg.workers = 1;
    cfg.tilePixels = 16;
    cfg.maxQueueTiles = 4;
    cfg.degradeUnderLoad = true;
    RenderService service(registry, cfg);

    CameraSpec spec = latticeCamera();
    Image expect = legoTrainer->renderImage(spec.makeCamera());

    // Stall the scheduler for one dispatch so the admission depths the
    // fillers observe are an exact, machine-independent sequence.
    fault::Spec stall;
    stall.mode = fault::Mode::OneShot;
    stall.n = 1;
    stall.delayMs = 500;
    fault::arm(fault::Point::SchedulerStall, stall);

    RenderRequest req;
    req.sceneId = "lego";
    req.camera = spec;
    req.roi = {0, 0, 16, 16};
    auto trigger = service.submit(req); // depth 1: served Full
    awaitHits(fault::Point::SchedulerStall, 1);

    // Scheduler asleep, trigger tile outstanding: filler i sees depth
    // 2+i. Window 4 => i 0-2 Full, 3-6 one step down, 7+ two steps.
    std::vector<std::future<RenderResponse>> fillers;
    for (int i = 0; i < 12; i++)
        fillers.push_back(service.submit(req));

    EXPECT_EQ(trigger.get().status, RequestStatus::Ok);
    for (int i = 0; i < 12; i++) {
        RenderResponse resp = fillers[i].get();
        ASSERT_EQ(resp.status, RequestStatus::Ok) << "filler " << i;
        QualityTier want = i < 3    ? QualityTier::Full
                           : i < 7 ? QualityTier::Half
                                   : QualityTier::Preview;
        EXPECT_EQ(resp.servedQuality, want) << "filler " << i;
        EXPECT_EQ(resp.degradeLevels, static_cast<int>(want))
            << "filler " << i;
        // Whenever Full is actually served, the bit-identity contract
        // holds even under degradation pressure.
        if (resp.servedQuality == QualityTier::Full)
            for (int y = 0; y < 16; y++)
                for (int x = 0; x < 16; x++) {
                    ASSERT_EQ(resp.image.at(x, y).x,
                              expect.at(x, y).x);
                    ASSERT_EQ(resp.image.at(x, y).y,
                              expect.at(x, y).y);
                    ASSERT_EQ(resp.image.at(x, y).z,
                              expect.at(x, y).z);
                }
    }

    ServeStats stats = service.stats();
    EXPECT_EQ(stats.requestsRejected, 0u);
    EXPECT_EQ(stats.requestsDegraded, 9u);
    EXPECT_EQ(stats.admissionDegradations, 9u);
    EXPECT_EQ(stats.deadlineDegradations, 0u);
    EXPECT_EQ(stats.requestsServedPerTier[0], 4u); // trigger + 3
    EXPECT_EQ(stats.requestsServedPerTier[1], 4u);
    EXPECT_EQ(stats.requestsServedPerTier[2], 5u);
}

TEST_F(ServeTest, MinQualityBoundsDegradation)
{
    FaultGuard guard;
    SceneRegistry registry;
    registry.registerFromTrainer("lego", *legoTrainer);

    RenderServiceConfig cfg;
    cfg.workers = 1;
    cfg.tilePixels = 16;
    cfg.maxQueueTiles = 4;
    cfg.retryAfterMs = 7;
    cfg.degradeUnderLoad = true;
    RenderService service(registry, cfg);

    fault::Spec stall;
    stall.mode = fault::Mode::OneShot;
    stall.n = 1;
    stall.delayMs = 500;
    fault::arm(fault::Point::SchedulerStall, stall);

    RenderRequest req;
    req.sceneId = "lego";
    req.camera = latticeCamera();
    req.roi = {0, 0, 16, 16};
    std::vector<std::future<RenderResponse>> futures;
    futures.push_back(service.submit(req)); // trigger
    awaitHits(fault::Point::SchedulerStall, 1);
    for (int i = 0; i < 9; i++)
        futures.push_back(service.submit(req));
    // 10 tiles outstanding now; both probes would degrade two tiers.

    // minQuality == quality opts out of degradation -> Rejected, with
    // the load-proportional hint: ceil(7 * 10/4) = 18.
    RenderRequest strict = req;
    strict.minQuality = QualityTier::Full;
    RenderResponse a = service.render(strict);
    EXPECT_EQ(a.status, RequestStatus::Rejected);
    EXPECT_EQ(a.retryAfterMs, 18);

    // minQuality Half caps the two-tier target at Half.
    RenderRequest capped = req;
    capped.minQuality = QualityTier::Half;
    futures.push_back(service.submit(capped));
    RenderResponse b = futures.back().get();
    EXPECT_EQ(b.status, RequestStatus::Ok);
    EXPECT_EQ(b.servedQuality, QualityTier::Half);
    EXPECT_EQ(b.degradeLevels, 1);

    for (size_t i = 0; i + 1 < futures.size(); i++)
        EXPECT_EQ(futures[i].get().status, RequestStatus::Ok);
    EXPECT_EQ(service.stats().requestsRejected, 1u);
}

TEST_F(ServeTest, DeadlineRiskDegradesOneTier)
{
    FaultGuard guard;
    SceneRegistry registry;
    registry.registerFromTrainer("lego", *legoTrainer);

    RenderServiceConfig cfg;
    cfg.workers = 1;
    cfg.degradeUnderLoad = true;
    cfg.deadlineRiskFraction = 0.5;
    RenderService service(registry, cfg);

    // The request dequeues with ~600 ms of its 1000 ms deadline spent
    // queueing (past the 0.5 risk fraction, before expiry): the
    // scheduler steps it down one tier to win back render time.
    fault::Spec stall;
    stall.mode = fault::Mode::OneShot;
    stall.n = 1;
    stall.delayMs = 600;
    fault::arm(fault::Point::SchedulerStall, stall);

    RenderRequest req;
    req.sceneId = "lego";
    req.camera = latticeCamera();
    req.roi = {0, 0, 16, 16};
    req.deadlineMs = 1000.0;
    RenderResponse resp = service.render(req);
    ASSERT_EQ(resp.status, RequestStatus::Ok);
    EXPECT_EQ(resp.servedQuality, QualityTier::Half);
    EXPECT_EQ(resp.degradeLevels, 1);

    ServeStats stats = service.stats();
    EXPECT_EQ(stats.deadlineDegradations, 1u);
    EXPECT_EQ(stats.admissionDegradations, 0u);
    EXPECT_EQ(stats.requestsDegraded, 1u);
}

TEST_F(ServeTest, CoarsePreviewLatticeSharesCacheWithinCell)
{
    SceneRegistry registry;
    registry.registerFromTrainer("lego", *legoTrainer);
    RenderServiceConfig cfg;
    cfg.workers = 2;
    cfg.cacheTiles = 128;
    cfg.cameraLattice[static_cast<int>(QualityTier::Preview)] =
        256.0f;
    RenderService service(registry, cfg);

    RenderRequest req;
    req.sceneId = "lego";
    req.quality = QualityTier::Preview;
    req.camera = latticeCamera();

    // Seed the cache at the cell anchored on eye.x == 1.25.
    RenderResponse first = service.render(req);
    ASSERT_EQ(first.status, RequestStatus::Ok);
    EXPECT_EQ(first.tilesFromCache, 0);

    // Sub-cell perturbation (0.4/256 < half a 1/256 cell): snaps to
    // the same coarse camera, so every tile comes from cache.
    req.camera.eye.x = 1.25f + 0.4f / 256.0f;
    RenderResponse second = service.render(req);
    ASSERT_EQ(second.status, RequestStatus::Ok);
    EXPECT_EQ(second.tilesRendered, 0);
    EXPECT_GT(second.tilesFromCache, 0);
    expectImagesEqual(second.image, first.image);

    // Exactly one lattice step apart: a different cell, a miss.
    req.camera.eye.x = 1.25f + 1.0f / 256.0f;
    RenderResponse third = service.render(req);
    ASSERT_EQ(third.status, RequestStatus::Ok);
    EXPECT_EQ(third.tilesFromCache, 0);
    EXPECT_GT(third.tilesRendered, 0);

    // The Full tier still keys on the fine 1/4096 lattice and its
    // stats land in its own bucket, untouched by preview traffic.
    RenderRequest full;
    full.sceneId = "lego";
    full.camera = latticeCamera();
    Image expect = legoTrainer->renderImage(full.camera.makeCamera());
    RenderResponse fresp = service.render(full);
    ASSERT_EQ(fresp.status, RequestStatus::Ok);
    expectImagesEqual(fresp.image, expect);

    ServeStats stats = service.stats();
    const int pv = static_cast<int>(QualityTier::Preview);
    const int fl = static_cast<int>(QualityTier::Full);
    EXPECT_GT(stats.cacheHitsPerTier[pv], 0u);
    EXPECT_GT(stats.cacheMissesPerTier[pv], 0u);
    EXPECT_EQ(stats.cacheHitsPerTier[fl], 0u);
    EXPECT_GT(stats.cacheMissesPerTier[fl], 0u);
}

TEST_F(ServeTest, FullTierBitIdentityUnderCoarseLatticeAndPrefetch)
{
    SceneRegistry registry;
    registry.registerFromTrainer("lego", *legoTrainer);
    RenderServiceConfig cfg;
    cfg.workers = 2;
    cfg.cacheTiles = 256;
    cfg.cameraLattice[static_cast<int>(QualityTier::Preview)] = 64.0f;
    cfg.cameraLattice[static_cast<int>(QualityTier::Half)] = 1024.0f;
    cfg.prefetch = true;
    RenderService service(registry, cfg);

    CameraSpec spec = latticeCamera();
    Image expect = legoTrainer->renderImage(spec.makeCamera());

    // Interleave a moving Preview viewer (feeding the predictor) with
    // Full and Half requests in mixed arrival order: no combination
    // of coarse-lattice traffic, prefetch state, or cache warmth may
    // perturb a Full-tier pixel.
    for (int round = 0; round < 3; round++) {
        RenderRequest pv;
        pv.sceneId = "lego";
        pv.quality = QualityTier::Preview;
        pv.viewerId = "roamer";
        pv.camera = spec;
        pv.camera.eye.x =
            1.25f + static_cast<float>(round) / 64.0f;
        std::future<RenderResponse> pvf = service.submit(pv);

        RenderRequest full;
        full.sceneId = "lego";
        full.camera = spec;
        std::future<RenderResponse> fullf = service.submit(full);

        RenderRequest half = full;
        half.quality = QualityTier::Half;
        std::future<RenderResponse> halff = service.submit(half);

        ASSERT_EQ(pvf.get().status, RequestStatus::Ok);
        ASSERT_EQ(halff.get().status, RequestStatus::Ok);
        RenderResponse fresp = fullf.get();
        ASSERT_EQ(fresp.status, RequestStatus::Ok);
        ASSERT_EQ(fresp.servedQuality, QualityTier::Full);
        expectImagesEqual(fresp.image, expect);
    }
}

TEST_F(ServeTest, PrefetchRendersPredictedFrameIntoCache)
{
    SceneRegistry registry;
    registry.registerFromTrainer("lego", *legoTrainer);
    RenderServiceConfig cfg;
    cfg.workers = 2;
    cfg.tilePixels = 16;
    cfg.cacheTiles = 256;
    cfg.prefetch = true;
    RenderService service(registry, cfg);

    // Constant-velocity pan in steps of 1/16 along eye.x: every step
    // sits exactly on the Full 1/4096 lattice, so the predicted third
    // frame is the exact camera the viewer will ask for.
    CameraSpec spec = latticeCamera(32, 32); // 2x2 tiles of 16px
    RenderRequest req;
    req.sceneId = "lego";
    req.viewerId = "panner";
    req.camera = spec;

    ASSERT_EQ(service.render(req).status, RequestStatus::Ok);
    req.camera.eye.x = 1.25f + 1.0f / 16.0f;
    ASSERT_EQ(service.render(req).status, RequestStatus::Ok);

    // Two observations of uniform motion: the predictor enqueues the
    // extrapolated frame, and the idle workers render it into cache.
    EXPECT_GE(service.stats().prefetchTilesEnqueued, 4u);
    for (int spin = 0; spin < 20000; spin++) {
        if (service.stats().prefetchTilesRendered >= 4)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_GE(service.stats().prefetchTilesRendered, 4u);

    // The viewer arrives where predicted: served wholly from cache,
    // still bit-identical to the trainer's ground truth.
    req.camera.eye.x = 1.25f + 2.0f / 16.0f;
    Image expect = legoTrainer->renderImage(req.camera.makeCamera());
    RenderResponse resp = service.render(req);
    ASSERT_EQ(resp.status, RequestStatus::Ok);
    EXPECT_EQ(resp.tilesRendered, 0);
    EXPECT_EQ(resp.tilesFromCache, 4);
    expectImagesEqual(resp.image, expect);
    EXPECT_GT(service.stats().prefetchHits, 0u);
}

TEST_F(ServeTest, DeadlineSortedDequeueServesUrgentFirst)
{
    FaultGuard guard;
    SceneRegistry registry;
    registry.registerFromTrainer("lego", *legoTrainer);
    RenderServiceConfig cfg;
    cfg.workers = 1;
    cfg.tilePixels = 16;
    cfg.chunkRays = 256; // one 16x16 tile per scheduler pass
    RenderService service(registry, cfg);

    // Hold the scheduler after it pulls the trigger job, queue three
    // rivals, and let each later pass render exactly one tile with a
    // visible 10 ms floor so dequeue order separates cleanly in
    // queueMs.
    fault::Spec stall;
    stall.mode = fault::Mode::OneShot;
    stall.n = 1;
    stall.delayMs = 300;
    fault::arm(fault::Point::SchedulerStall, stall);
    fault::Spec slow;
    slow.mode = fault::Mode::Always;
    slow.delayMs = 10;
    fault::arm(fault::Point::ChunkRenderDelay, slow);

    RenderRequest req;
    req.sceneId = "lego";
    req.camera = latticeCamera();
    req.roi = {0, 0, 16, 16};
    auto trigger = service.submit(req);
    awaitHits(fault::Point::SchedulerStall, 1);

    // Arrival order: FIFO filler, lax deadline, tight deadline. EDF
    // must dequeue them in the exact reverse: tight, lax, then FIFO.
    auto fifo = service.submit(req);
    RenderRequest lax = req;
    lax.deadlineMs = 8000.0;
    auto laxf = service.submit(lax);
    RenderRequest tight = req;
    tight.deadlineMs = 3000.0;
    auto tightf = service.submit(tight);

    EXPECT_EQ(trigger.get().status, RequestStatus::Ok);
    RenderResponse rt = tightf.get();
    RenderResponse rl = laxf.get();
    RenderResponse rf = fifo.get();
    ASSERT_EQ(rt.status, RequestStatus::Ok);
    ASSERT_EQ(rl.status, RequestStatus::Ok);
    ASSERT_EQ(rf.status, RequestStatus::Ok);
    EXPECT_LT(rt.queueMs, rl.queueMs);
    EXPECT_LT(rl.queueMs, rf.queueMs);
}

TEST_F(ServeTest, DeadlineDownshiftResnapsOntoCoarserLattice)
{
    FaultGuard guard;
    SceneRegistry registry;
    registry.registerFromTrainer("lego", *legoTrainer);
    RenderServiceConfig cfg;
    cfg.workers = 1;
    cfg.tilePixels = 16;
    cfg.cacheTiles = 128;
    cfg.degradeUnderLoad = true;
    cfg.deadlineRiskFraction = 0.5;
    cfg.cameraLattice[static_cast<int>(QualityTier::Preview)] =
        256.0f;
    RenderService service(registry, cfg);

    fault::Spec stall;
    stall.mode = fault::Mode::OneShot;
    stall.n = 1;
    stall.delayMs = 600;
    fault::arm(fault::Point::SchedulerStall, stall);

    // A Half request burns past the risk fraction while queued and is
    // downshifted to Preview at dequeue. The downshift must re-snap
    // the raw camera onto Preview's coarse lattice, so the rendered
    // tile is keyed at the 1/256 cell anchor -- not at the finer cell
    // the Half lattice picked at admission.
    RenderRequest req;
    req.sceneId = "lego";
    req.quality = QualityTier::Half;
    req.camera = latticeCamera();
    req.camera.eye.x = 1.25f + 0.4f / 256.0f;
    req.roi = {0, 0, 16, 16};
    req.deadlineMs = 1000.0;
    RenderResponse resp = service.render(req);
    ASSERT_EQ(resp.status, RequestStatus::Ok);
    ASSERT_EQ(resp.servedQuality, QualityTier::Preview);
    EXPECT_EQ(service.stats().deadlineDegradations, 1u);

    // A native Preview request at the cell anchor finds that tile.
    RenderRequest probe;
    probe.sceneId = "lego";
    probe.quality = QualityTier::Preview;
    probe.camera = latticeCamera();
    probe.roi = {0, 0, 16, 16};
    RenderResponse hit = service.render(probe);
    ASSERT_EQ(hit.status, RequestStatus::Ok);
    EXPECT_EQ(hit.tilesRendered, 0);
    EXPECT_EQ(hit.tilesFromCache, 1);
    expectImagesEqual(hit.image, resp.image);
}

TEST(ServePoolTest, ConcurrentParallelForClientsSerialize)
{
    ThreadPool pool(4);
    constexpr int tasks = 64;
    std::vector<int> a(tasks, 0), b(tasks, 0);

    // Two client threads race their own batches on one shared pool;
    // each batch must run exactly once per task with no cross-talk.
    std::thread ta([&] {
        for (int rep = 0; rep < 20; rep++)
            pool.parallelFor(tasks, [&](int t, int) { a[t]++; });
    });
    std::thread tb([&] {
        for (int rep = 0; rep < 20; rep++)
            pool.parallelFor(tasks, [&](int t, int) { b[t]++; });
    });
    ta.join();
    tb.join();
    for (int t = 0; t < tasks; t++) {
        EXPECT_EQ(a[t], 20) << t;
        EXPECT_EQ(b[t], 20) << t;
    }
}

} // namespace
} // namespace instant3d
