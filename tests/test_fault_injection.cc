/**
 * @file
 * Unit coverage for the deterministic fault-injection layer: firing
 * modes, hit/fire accounting, replay determinism of the seed-keyed
 * probability mode, and the INSTANT3D_FAULTS config grammar.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/fault_injection.hh"

namespace instant3d {
namespace {

struct FaultGuard
{
    FaultGuard()
    {
        fault::disarmAll();
        fault::resetCounts();
    }
    ~FaultGuard()
    {
        fault::disarmAll();
        fault::resetCounts();
    }
};

constexpr fault::Point kPoint = fault::Point::CheckpointShortWrite;
constexpr fault::Point kOther = fault::Point::SchedulerStall;

TEST(FaultInjectionTest, PointNamesRoundTrip)
{
    for (int i = 0; i < fault::numPoints; i++) {
        auto p = static_cast<fault::Point>(i);
        fault::Point back;
        ASSERT_TRUE(fault::pointFromName(fault::pointName(p), back))
            << fault::pointName(p);
        EXPECT_EQ(back, p);
    }
    fault::Point dummy;
    EXPECT_FALSE(fault::pointFromName("no.such.point", dummy));
}

TEST(FaultInjectionTest, DisarmedIsSilent)
{
    FaultGuard guard;
    for (int i = 0; i < 100; i++)
        EXPECT_FALSE(fault::shouldFire(kPoint));
    // Fully disarmed: the fast path doesn't even count hits.
    EXPECT_EQ(fault::hitCount(kPoint), 0u);
    EXPECT_EQ(fault::fireCount(kPoint), 0u);
}

TEST(FaultInjectionTest, NeverModeCountsWithoutFiring)
{
    FaultGuard guard;
    fault::Spec spec;
    spec.mode = fault::Mode::Never;
    fault::arm(kPoint, spec);
    for (int i = 0; i < 10; i++)
        EXPECT_FALSE(fault::shouldFire(kPoint));
    EXPECT_EQ(fault::hitCount(kPoint), 10u);
    EXPECT_EQ(fault::fireCount(kPoint), 0u);
}

TEST(FaultInjectionTest, OneShotFiresExactlyAtN)
{
    FaultGuard guard;
    fault::Spec spec;
    spec.mode = fault::Mode::OneShot;
    spec.n = 4;
    fault::arm(kPoint, spec);
    std::vector<bool> fired;
    for (int i = 0; i < 8; i++)
        fired.push_back(fault::shouldFire(kPoint));
    EXPECT_EQ(fired, (std::vector<bool>{false, false, false, true,
                                        false, false, false, false}));
    EXPECT_EQ(fault::fireCount(kPoint), 1u);
}

TEST(FaultInjectionTest, EveryNFiresPeriodically)
{
    FaultGuard guard;
    fault::Spec spec;
    spec.mode = fault::Mode::EveryN;
    spec.n = 3;
    fault::arm(kPoint, spec);
    int fires = 0;
    for (int i = 1; i <= 9; i++) {
        bool f = fault::shouldFire(kPoint);
        EXPECT_EQ(f, i % 3 == 0) << "hit " << i;
        fires += f;
    }
    EXPECT_EQ(fires, 3);
    EXPECT_EQ(fault::fireCount(kPoint), 3u);
}

TEST(FaultInjectionTest, ArmedPointsAreIndependent)
{
    FaultGuard guard;
    fault::Spec spec;
    spec.mode = fault::Mode::Always;
    fault::arm(kPoint, spec);
    EXPECT_TRUE(fault::shouldFire(kPoint));
    // A different, disarmed point never fires (though its hits count
    // while anything is armed).
    EXPECT_FALSE(fault::shouldFire(kOther));
    EXPECT_EQ(fault::hitCount(kOther), 1u);
    EXPECT_EQ(fault::fireCount(kOther), 0u);

    fault::disarm(kPoint);
    EXPECT_FALSE(fault::shouldFire(kPoint));
}

TEST(FaultInjectionTest, ProbabilityModeReplaysBitForBit)
{
    FaultGuard guard;
    fault::Spec spec;
    spec.mode = fault::Mode::Probability;
    spec.probability = 0.3;
    spec.seed = 1234;
    fault::arm(kPoint, spec);

    std::vector<bool> run1;
    for (int i = 0; i < 200; i++)
        run1.push_back(fault::shouldFire(kPoint));

    // Same seed, fresh counters: the identical firing sequence.
    fault::resetCounts();
    std::vector<bool> run2;
    for (int i = 0; i < 200; i++)
        run2.push_back(fault::shouldFire(kPoint));
    EXPECT_EQ(run1, run2);

    // The rate is in the right ballpark (very loose bounds).
    int fires = 0;
    for (bool f : run1)
        fires += f;
    EXPECT_GT(fires, 20);
    EXPECT_LT(fires, 120);

    // A different seed decorrelates the sequence.
    spec.seed = 99;
    fault::arm(kPoint, spec);
    fault::resetCounts();
    std::vector<bool> run3;
    for (int i = 0; i < 200; i++)
        run3.push_back(fault::shouldFire(kPoint));
    EXPECT_NE(run1, run3);
}

TEST(FaultInjectionTest, MaybeDelayReportsFiring)
{
    FaultGuard guard;
    EXPECT_FALSE(fault::maybeDelay(kOther));
    fault::Spec spec;
    spec.mode = fault::Mode::OneShot;
    spec.n = 1;
    spec.delayMs = 1;
    fault::arm(kOther, spec);
    EXPECT_TRUE(fault::maybeDelay(kOther));
    EXPECT_FALSE(fault::maybeDelay(kOther));
    EXPECT_EQ(fault::armedDelayMs(kOther), 1);
    fault::disarm(kOther);
    EXPECT_EQ(fault::armedDelayMs(kOther), 0);
}

TEST(FaultInjectionTest, ConfigStringGrammar)
{
    FaultGuard guard;
    EXPECT_TRUE(fault::armFromString(
        "checkpoint.short_write=hit:2,"
        "scheduler.stall=always:delay:20,"
        "checkpoint.crc_flip=prob:0.5:seed:7,"
        "chunk.render_delay=every:4"));

    EXPECT_FALSE(fault::shouldFire(kPoint));
    EXPECT_TRUE(fault::shouldFire(kPoint)); // hit 2
    EXPECT_EQ(fault::armedDelayMs(fault::Point::SchedulerStall), 20);
    EXPECT_TRUE(fault::shouldFire(fault::Point::SchedulerStall));

    // Unparseable entries are skipped without disturbing valid ones.
    EXPECT_FALSE(fault::armFromString("scheduler.stall=banana"));
    EXPECT_FALSE(fault::armFromString("no.such.point=always"));
    EXPECT_FALSE(fault::armFromString("scheduler.stall=hit"));
    EXPECT_FALSE(fault::armFromString("scheduler.stall=hit:3:delay"));
    EXPECT_FALSE(fault::armFromString("garbage"));
    EXPECT_TRUE(fault::shouldFire(fault::Point::SchedulerStall));
}

} // namespace
} // namespace instant3d
