/**
 * @file
 * Tests of the SRAM bank model and the Feed-Forward Read Mapper:
 * conflict detection, issue-policy correctness (every request served
 * exactly once), utilization improvement over in-order issue on the
 * paper's access patterns, and window-depth behaviour.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "accel/frm.hh"
#include "common/rng.hh"

namespace instant3d {
namespace {

TEST(SramTest, BlockPartitionedBankMapping)
{
    // 1024-entry table over 8 banks: 128 entries per bank block.
    SramArray sram(8, 4, 256 * 1024, 1024);
    EXPECT_EQ(sram.numBanks(), 8);
    EXPECT_EQ(sram.entriesPerBank(), 128u);
    EXPECT_EQ(sram.bankOf(0), 0);
    EXPECT_EQ(sram.bankOf(127), 0);
    EXPECT_EQ(sram.bankOf(128), 1);
    EXPECT_EQ(sram.bankOf(1023), 7);

    // Neighbouring addresses share a bank (the Sec 4.4 collision
    // problem); block-strided ones do not.
    std::vector<uint32_t> clash = {100, 101};
    EXPECT_FALSE(sram.conflictFree(clash));
    std::vector<uint32_t> ok = {0, 128, 256, 384, 512, 640, 768, 896};
    EXPECT_TRUE(sram.conflictFree(ok));
    EXPECT_TRUE(sram.fits(256 * 1024));
    EXPECT_FALSE(sram.fits(256 * 1024 + 1));
}

TEST(SramTest, AccessCounting)
{
    SramArray sram(8, 4, 1 << 20);
    std::vector<uint32_t> addrs = {1, 2, 3};
    sram.serveReads(addrs);
    sram.serveWrites(addrs);
    sram.serveReads(addrs);
    EXPECT_EQ(sram.readCount(), 6u);
    EXPECT_EQ(sram.writeCount(), 3u);
}

/** All requests must be served in exactly `requests` total. */
TEST(FrmTest, ServesEveryRequestOnce)
{
    SramArray sram(8, 4, 1 << 20, 1 << 14);
    FrmUnit frm(sram, 16);
    Rng r(1);
    std::vector<uint32_t> addrs;
    for (int i = 0; i < 5000; i++)
        addrs.push_back(r.nextU32(1 << 14));
    FrmStats stats = frm.process(addrs);
    EXPECT_EQ(stats.requests, addrs.size());
    EXPECT_EQ(sram.readCount(), addrs.size());
    EXPECT_GE(stats.cycles, addrs.size() / 8); // can't beat 8/cycle
}

TEST(FrmTest, PerfectStreamReachesFullUtilization)
{
    // Addresses striding bank blocks: one request per bank per cycle.
    SramArray sram(8, 4, 1 << 20, 1024);
    FrmUnit frm(sram, 16);
    std::vector<uint32_t> addrs;
    for (int i = 0; i < 800; i++)
        addrs.push_back(static_cast<uint32_t>((i % 8) * 128 + i / 8));
    FrmStats stats = frm.process(addrs);
    EXPECT_EQ(stats.cycles, 100u);
    EXPECT_DOUBLE_EQ(stats.utilization(8), 1.0);
}

TEST(FrmTest, WorstCaseSingleBank)
{
    // Every address in the same bank block: one request per cycle,
    // both policies.
    SramArray sram(8, 4, 1 << 20, 1024);
    FrmUnit frm(sram, 16);
    std::vector<uint32_t> addrs(64, 8u); // inside block 0
    EXPECT_EQ(frm.process(addrs).cycles, 64u);
    SramArray sram2(8, 4, 1 << 20, 1024);
    EXPECT_EQ(FrmUnit::processInOrder(sram2, addrs).cycles, 64u);
}

/**
 * The paper's motivating pattern (Sec 4.4): each point's 8 requests
 * land in 4 or 2 distinct banks -> 25-50% in-order utilization; the
 * FRM interleaves requests from several points to fill all banks.
 */
TEST(FrmTest, BeatsInOrderOnClusteredPattern)
{
    Rng r(7);
    std::vector<uint32_t> addrs;
    for (int p = 0; p < 2000; p++) {
        // 4 groups of 2: group base scattered, pair adjacent (x+1).
        for (int g = 0; g < 4; g++) {
            uint32_t base = r.nextU32((1 << 14) - 2);
            addrs.push_back(base);
            addrs.push_back(base + 1);
        }
    }
    SramArray s1(8, 4, 1 << 20, 1 << 14);
    SramArray s2(8, 4, 1 << 20, 1 << 14);
    FrmUnit frm(s1, 16);
    FrmStats mapped = frm.process(addrs);
    FrmStats in_order = FrmUnit::processInOrder(s2, addrs);

    EXPECT_LT(mapped.cycles, in_order.cycles);
    EXPECT_GT(mapped.utilization(8), 0.60);
    // Pairs share a bank block: at most 4 of 8 banks per point
    // (the paper's 50% / 25% utilization observation).
    EXPECT_LE(in_order.utilization(8), 0.51);
    // The paper quotes ~2-4x utilization headroom on this pattern.
    EXPECT_GT(mapped.utilization(8) / in_order.utilization(8), 1.4);
}

class FrmWindowDepthTest : public ::testing::TestWithParam<int>
{
};

TEST_P(FrmWindowDepthTest, DeeperWindowsNeverHurt)
{
    Rng r(21);
    std::vector<uint32_t> addrs;
    for (int i = 0; i < 4000; i++)
        addrs.push_back(r.nextU32(1 << 12));

    SramArray shallow_sram(8, 4, 1 << 20, 1 << 12);
    SramArray deep_sram(8, 4, 1 << 20, 1 << 12);
    FrmUnit shallow(shallow_sram, 1);
    FrmUnit deep(deep_sram, GetParam());
    uint64_t c1 = shallow.process(addrs).cycles;
    uint64_t c2 = deep.process(addrs).cycles;
    EXPECT_LE(c2, c1) << "window depth " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Depths, FrmWindowDepthTest,
                         ::testing::Values(2, 4, 8, 16, 32, 64));

class FrmBankCountTest : public ::testing::TestWithParam<int>
{
};

TEST_P(FrmBankCountTest, UtilizationWithinBounds)
{
    int banks = GetParam();
    Rng r(33);
    std::vector<uint32_t> addrs;
    for (int i = 0; i < 8000; i++)
        addrs.push_back(r.nextU32(1 << 16));
    SramArray sram(banks, 4, 1 << 20, 1 << 16);
    FrmUnit frm(sram, 16);
    FrmStats stats = frm.process(addrs);
    EXPECT_GT(stats.utilization(banks), 0.0);
    EXPECT_LE(stats.utilization(banks), 1.0);
    EXPECT_EQ(stats.requests, addrs.size());
}

INSTANTIATE_TEST_SUITE_P(Banks, FrmBankCountTest,
                         ::testing::Values(8, 16, 32));

TEST(FrmTest, RandomStreamsPropertyCheck)
{
    // Property: for arbitrary address streams, (a) all requests served,
    // (b) reordered issue never takes more cycles than in-order.
    Rng r(55);
    for (int trial = 0; trial < 20; trial++) {
        int n = 100 + static_cast<int>(r.nextU32(900));
        uint32_t span = 1u << (4 + r.nextU32(12));
        std::vector<uint32_t> addrs;
        for (int i = 0; i < n; i++)
            addrs.push_back(r.nextU32(span));
        SramArray s1(16, 4, 1 << 22, span);
        SramArray s2(16, 4, 1 << 22, span);
        FrmUnit frm(s1, 16);
        FrmStats mapped = frm.process(addrs);
        FrmStats in_order = FrmUnit::processInOrder(s2, addrs);
        EXPECT_EQ(mapped.requests, static_cast<uint64_t>(n));
        EXPECT_LE(mapped.cycles, in_order.cycles) << "trial " << trial;
    }
}

} // namespace
} // namespace instant3d
