/**
 * @file
 * Tests for the occupancy-compacted sample stream and the merged
 * hash-gradient writes (PR 2):
 *
 *  - OccupancyGrid::update() is deterministic (fixed seed -> identical
 *    grid) and its batched row queries match scalar field probes.
 *  - queryStream over a multi-ray stream matches per-ray queryBatch
 *    bit-exactly.
 *  - HashGradMerger applies the same total gradient as the direct
 *    scatter (mathematically; compared with tolerance), deduplicates
 *    the touch list, and is bit-deterministic.
 *  - Compacted training is bit-identical to the dense per-ray batched
 *    path, with a fully-occupied grid and with real skipping.
 *  - Merged-gradient training is bit-identical across thread counts
 *    and loss-equivalent to the unmerged path.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hh"
#include "nerf/trainer.hh"
#include "scene/scene.hh"

namespace instant3d {
namespace {

FieldConfig
smallField()
{
    HashEncodingConfig grid;
    grid.numLevels = 4;
    grid.featuresPerEntry = 2;
    grid.log2TableSize = 12;
    grid.baseResolution = 8;
    grid.growthFactor = 1.6f;
    FieldConfig cfg = FieldConfig::instant3dDefault(grid);
    cfg.hiddenDim = 16;
    return cfg;
}

Dataset
smallDataset()
{
    auto scene = makeSyntheticScene("materials");
    DatasetConfig cfg;
    cfg.numTrainViews = 4;
    cfg.numTestViews = 1;
    cfg.imageWidth = 16;
    cfg.imageHeight = 16;
    cfg.renderOpts.numSteps = 48;
    return makeDataset(scene, cfg);
}

// ---- OccupancyGrid::update ---------------------------------------------

TEST(OccupancyUpdateTest, FixedSeedGivesIdenticalGrid)
{
    OccupancyGridConfig ocfg;
    ocfg.resolution = 8;
    ocfg.samplesPerCellUpdate = 2;

    OccupancyGrid a(ocfg), b(ocfg);
    NerfField field_a(smallField(), 11), field_b(smallField(), 11);
    Rng rng_a(77), rng_b(77);
    for (int i = 0; i < 3; i++) {
        a.update(field_a, rng_a);
        b.update(field_b, rng_b);
    }
    ASSERT_EQ(a.numCells(), b.numCells());
    for (size_t i = 0; i < a.numCells(); i++)
        ASSERT_EQ(a.cellDensity(i), b.cellDensity(i)) << "cell " << i;
}

TEST(OccupancyUpdateTest, BatchedRowsMatchScalarProbes)
{
    OccupancyGridConfig ocfg;
    ocfg.resolution = 6;
    ocfg.samplesPerCellUpdate = 2;

    OccupancyGrid grid(ocfg);
    NerfField field(smallField(), 13);
    Rng rng(5);
    grid.update(field, rng);

    // Scalar reference: replay the exact same probe derivation (one
    // round key from the rng, per-cell jitter streams keyed by
    // (round, cell index)) through field.query() and the EMA-max
    // update rule.
    NerfField ref_field(smallField(), 13);
    std::vector<float> ref(static_cast<size_t>(ocfg.resolution) *
                               ocfg.resolution * ocfg.resolution,
                           ocfg.occupancyThreshold * 2.0f);
    Rng ref_rng(5);
    const uint64_t round_key =
        (static_cast<uint64_t>(ref_rng.nextU32()) << 32) |
        ref_rng.nextU32();
    const float cell = 1.0f / static_cast<float>(ocfg.resolution);
    size_t idx = 0;
    for (int z = 0; z < ocfg.resolution; z++)
        for (int y = 0; y < ocfg.resolution; y++)
            for (int x = 0; x < ocfg.resolution; x++, idx++) {
                Rng cell_rng = Rng::forIndex(
                    round_key, 0, static_cast<uint64_t>(idx));
                float fresh = 0.0f;
                for (int s = 0; s < ocfg.samplesPerCellUpdate; s++) {
                    Vec3 p((x + cell_rng.nextFloat()) * cell,
                           (y + cell_rng.nextFloat()) * cell,
                           (z + cell_rng.nextFloat()) * cell);
                    fresh = std::max(
                        fresh,
                        ref_field.query(p, {0.0f, 0.0f, 1.0f}).sigma);
                }
                ref[idx] = std::max(ref[idx] * ocfg.decay, fresh);
            }

    for (size_t i = 0; i < grid.numCells(); i++)
        ASSERT_EQ(grid.cellDensity(i), ref[i]) << "cell " << i;
}

// ---- queryStream -------------------------------------------------------

TEST(SampleStreamTest, QueryStreamMatchesPerRayQueryBatch)
{
    NerfField stream_field(smallField(), 21);
    NerfField ray_field(smallField(), 21);
    Rng r(31);

    const int num_rays = 5;
    std::vector<RaySpan> spans(num_rays);
    std::vector<Vec3> dirs(num_rays);
    std::vector<Vec3> pts;
    for (int ray = 0; ray < num_rays; ray++) {
        spans[ray].offset = static_cast<int>(pts.size());
        spans[ray].count = ray * 3; // include an empty span
        dirs[ray] = Vec3(r.nextFloat(-1, 1), r.nextFloat(-1, 1),
                         r.nextFloat(0.1f, 1))
                        .normalized();
        for (int k = 0; k < spans[ray].count; k++)
            pts.push_back({r.nextFloat(), r.nextFloat(), r.nextFloat()});
    }
    const int n = static_cast<int>(pts.size());

    Workspace ws_stream;
    std::vector<FieldSample> stream_out(n);
    stream_field.queryStream(pts.data(), n, spans.data(), dirs.data(),
                             num_rays, stream_out.data(), nullptr,
                             ws_stream);

    Workspace ws_ray;
    std::vector<FieldSample> ray_out(n);
    for (int ray = 0; ray < num_rays; ray++) {
        ws_ray.reset();
        ray_field.queryBatch(pts.data() + spans[ray].offset,
                             spans[ray].count, dirs[ray],
                             ray_out.data() + spans[ray].offset, nullptr,
                             ws_ray);
    }

    for (int s = 0; s < n; s++) {
        ASSERT_EQ(stream_out[s].sigma, ray_out[s].sigma) << "sample " << s;
        ASSERT_EQ(stream_out[s].rgb.x, ray_out[s].rgb.x) << "sample " << s;
        ASSERT_EQ(stream_out[s].rgb.y, ray_out[s].rgb.y) << "sample " << s;
        ASSERT_EQ(stream_out[s].rgb.z, ray_out[s].rgb.z) << "sample " << s;
    }
    EXPECT_EQ(stream_field.queryCount(), ray_field.queryCount());
}

// ---- HashGradMerger ----------------------------------------------------

TEST(HashGradMergerTest, MergesDuplicatesAndMatchesDirectScatter)
{
    HashEncodingConfig cfg;
    cfg.numLevels = 3;
    cfg.log2TableSize = 6; // tiny table -> many collisions
    cfg.baseResolution = 8;
    HashEncoding enc(cfg, 5);

    Rng r(9);
    const int n = 40;
    std::vector<Vec3> pts;
    for (int i = 0; i < n; i++)
        pts.push_back({r.nextFloat(), r.nextFloat(), r.nextFloat()});
    const int dim = enc.outputDim();
    std::vector<float> out(static_cast<size_t>(n) * dim);
    std::vector<float> d_out(static_cast<size_t>(n) * dim);
    for (auto &v : d_out)
        v = r.nextFloat(-1.0f, 1.0f);

    Workspace ws;
    EncodeBatchRecord rec;
    enc.encodeBatch(pts.data(), n, out.data(), &rec, ws);

    // Direct scatter reference.
    std::vector<float> direct(enc.grads().size(), 0.0f);
    std::vector<uint32_t> direct_touched;
    for (int s = 0; s < n; s++)
        enc.backwardSample(rec, s, d_out.data() + s * dim, direct.data(),
                           &direct_touched);

    // Merged path, twice (bit-determinism).
    auto run_merged = [&](std::vector<float> &grad,
                          std::vector<uint32_t> &touched,
                          HashGradMerger &merger) {
        merger.reset(static_cast<uint32_t>(cfg.featuresPerEntry));
        for (int s = 0; s < n; s++)
            enc.backwardSampleMerged(rec, s, d_out.data() + s * dim,
                                     merger);
        merger.flushInto(grad.data(), &touched);
    };
    HashGradMerger m1, m2;
    std::vector<float> merged1(enc.grads().size(), 0.0f);
    std::vector<float> merged2(enc.grads().size(), 0.0f);
    std::vector<uint32_t> touched1, touched2;
    run_merged(merged1, touched1, m1);
    run_merged(merged2, touched2, m2);

    // Duplicates must actually merge on this colliding workload.
    const size_t writes = static_cast<size_t>(n) * cfg.numLevels * 8;
    EXPECT_EQ(m1.pushedWrites(), writes);
    EXPECT_LT(m1.uniqueEntries(), writes / 2)
        << "tiny table must produce heavy write sharing";
    EXPECT_EQ(touched1.size(), m1.uniqueEntries());
    for (size_t i = 1; i < touched1.size(); i++)
        ASSERT_LT(touched1[i - 1], touched1[i])
            << "touch list must be unique and ascending";

    // Per-address accumulation keeps program order and the table
    // starts from zero, so the merged result is bit-identical to the
    // direct scatter (and trivially bit-deterministic).
    ASSERT_EQ(touched1, touched2);
    for (size_t i = 0; i < merged1.size(); i++)
        ASSERT_EQ(merged1[i], merged2[i]) << "grad " << i;
    for (size_t i = 0; i < merged1.size(); i++)
        ASSERT_EQ(merged1[i], direct[i]) << "grad " << i;
}

// ---- Training parity ---------------------------------------------------

std::vector<float>
allParams(Trainer &t)
{
    std::vector<float> params;
    for (auto gid : t.field().paramGroups()) {
        const auto &p = t.field().groupParams(gid);
        params.insert(params.end(), p.begin(), p.end());
    }
    return params;
}

/**
 * The tentpole parity contract: the compacted stream path is
 * bit-identical to the dense per-ray batched path, both with a grid
 * that never clears (stays fully occupied) and with real empty-space
 * skipping engaged.
 */
TEST(CompactionParityTest, CompactedMatchesDensePerRayPath)
{
    Dataset ds = smallDataset();

    struct Scenario
    {
        const char *name;
        int updatePeriod; //!< Huge = grid never refreshes (stays full).
        float decay;
    };
    for (const Scenario &sc :
         {Scenario{"fully-occupied", 1 << 20, 0.95f},
          Scenario{"skipping", 2, 0.5f}}) {
        TrainConfig base;
        base.raysPerBatch = 48;
        base.samplesPerRay = 24;
        base.useOccupancyGrid = true;
        base.occupancyUpdatePeriod = sc.updatePeriod;
        base.occupancy.resolution = 8;
        base.occupancy.decay = sc.decay;
        base.numThreads = 2;

        TrainConfig dense = base;
        dense.compactSamples = false;
        TrainConfig compact = base;
        compact.compactSamples = true;

        Trainer dense_t(ds, smallField(), dense);
        Trainer compact_t(ds, smallField(), compact);
        for (int i = 0; i < 10; i++) {
            TrainStats a = dense_t.trainIteration();
            TrainStats b = compact_t.trainIteration();
            ASSERT_EQ(a.loss, b.loss)
                << sc.name << " iteration " << i;
            ASSERT_EQ(a.pointsQueried, b.pointsQueried)
                << sc.name << " iteration " << i;
        }
        std::vector<float> pa = allParams(dense_t);
        std::vector<float> pb = allParams(compact_t);
        ASSERT_EQ(pa.size(), pb.size());
        for (size_t i = 0; i < pa.size(); i++)
            ASSERT_EQ(pa[i], pb[i]) << sc.name << " param " << i;

        if (sc.updatePeriod == 1 << 20) {
            EXPECT_DOUBLE_EQ(
                compact_t.occupancyGrid()->occupiedFraction(), 1.0);
        } else {
            // The skipping scenario must actually skip.
            EXPECT_LT(compact_t.occupancyGrid()->occupiedFraction(),
                      1.0);
        }
    }
}

/**
 * Merging coalesces grid-gradient writes without touching numerics:
 * bit-identical across thread counts AND bit-identical to the
 * unmerged path (per-address sums keep program order and shards start
 * from zero).
 */
TEST(CompactionParityTest, MergedGradsDeterministicAndLossEquivalent)
{
    Dataset ds = smallDataset();
    TrainConfig base;
    base.raysPerBatch = 48;
    base.samplesPerRay = 24;
    base.mergeHashGrads = true;

    std::vector<double> ref_losses;
    std::vector<float> ref_params;
    for (int threads : {1, 4}) {
        TrainConfig tcfg = base;
        tcfg.numThreads = threads;
        Trainer trainer(ds, smallField(), tcfg);
        std::vector<double> losses;
        uint64_t writes = 0, merged = 0;
        for (int i = 0; i < 10; i++) {
            TrainStats st = trainer.trainIteration();
            losses.push_back(st.loss);
            writes += st.gridGradWrites;
            merged += st.gridGradWritesMerged;
        }
        EXPECT_GT(writes, 0u);
        EXPECT_LT(merged, writes)
            << "BP grid writes share addresses (Fig 10); merging must "
               "collapse some";
        std::vector<float> params = allParams(trainer);
        if (threads == 1) {
            ref_losses = losses;
            ref_params = params;
            continue;
        }
        for (size_t i = 0; i < losses.size(); i++)
            ASSERT_EQ(losses[i], ref_losses[i]) << "iteration " << i;
        ASSERT_EQ(params.size(), ref_params.size());
        for (size_t i = 0; i < params.size(); i++)
            ASSERT_EQ(params[i], ref_params[i]) << "param " << i;
    }

    // Bit-equality with the unmerged path, and still learning.
    TrainConfig plain = base;
    plain.mergeHashGrads = false;
    Trainer merged_t(ds, smallField(), base);
    Trainer plain_t(ds, smallField(), plain);
    double merged_last = 0.0, plain_last = 0.0, merged_first = 0.0;
    for (int i = 0; i < 40; i++) {
        merged_last = merged_t.trainIteration().loss;
        plain_last = plain_t.trainIteration().loss;
        if (i == 0)
            merged_first = merged_last;
        ASSERT_EQ(merged_last, plain_last) << "iteration " << i;
    }
    std::vector<float> pm = allParams(merged_t);
    std::vector<float> pp = allParams(plain_t);
    ASSERT_EQ(pm.size(), pp.size());
    for (size_t i = 0; i < pm.size(); i++)
        ASSERT_EQ(pm[i], pp[i]) << "param " << i;
    EXPECT_LT(merged_last, merged_first) << "loss should decrease";
}

} // namespace
} // namespace instant3d
