/**
 * @file
 * Parity suite for the pluggable kernel backends (src/kernels):
 *
 *  - scalar_ref must be bit-identical to the reference loops for every
 *    kernel, at every batch size / width combination (including odd
 *    sizes that leave vector remainder lanes).
 *
 *  - simd preserves every accumulation chain's scalar order, so it is
 *    asserted bit-identical in builds without FMA contraction and
 *    within a small relative tolerance otherwise (-march flags that
 *    enable FMA let the compiler contract mul+add pairs differently
 *    in the two backends; that is the documented contract, see
 *    src/kernels/kernel_backend.hh).
 *
 *  - threaded_sweep is bit-identical by construction (per-entry Adam
 *    is independent); asserted at 1, 2, and 8 pool threads, both at
 *    the kernel level and end-to-end through the Trainer.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/rng.hh"
#include "common/cpu_features.hh"
#include "common/thread_pool.hh"
#include "common/workspace.hh"
#include "kernels/kernel_backend.hh"
#include "nerf/trainer.hh"
#include "scene/scene.hh"

namespace instant3d {
namespace {

#if defined(__FMA__) || defined(__ARM_FEATURE_FMA) || \
    defined(__aarch64__)
// FMA-capable build (x86 -mfma, or aarch64 where fused multiply-add
// is baseline and contraction is on by default): the compiler may
// contract mul+add pairs in the simd backend and not in the scalar
// loops (or vice versa), so simd parity is tolerance-bounded rather
// than bitwise.
constexpr bool kSimdBitExact = false;
#else
constexpr bool kSimdBitExact = true;
#endif

uint32_t
bits(float v)
{
    uint32_t u;
    std::memcpy(&u, &v, sizeof(u));
    return u;
}

/** Bitwise equality for scalar_ref/threaded_sweep outputs. */
void
expectBitEqual(const float *a, const float *b, size_t n,
               const char *what)
{
    for (size_t i = 0; i < n; i++)
        ASSERT_EQ(bits(a[i]), bits(b[i]))
            << what << " diverges at " << i << ": " << a[i] << " vs "
            << b[i];
}

/** simd contract: bitwise without FMA, tight relative bound with it. */
void
expectSimdMatch(const float *ref, const float *got, size_t n,
                const char *what)
{
    for (size_t i = 0; i < n; i++) {
        if (kSimdBitExact) {
            ASSERT_EQ(bits(ref[i]), bits(got[i]))
                << what << " (simd, non-FMA build) diverges at " << i
                << ": " << ref[i] << " vs " << got[i];
        } else {
            float tol =
                1e-5f * std::max(1.0f, std::fabs(ref[i]));
            ASSERT_NEAR(ref[i], got[i], tol)
                << what << " (simd, FMA build) outside tolerance at "
                << i;
        }
    }
}

// ---- MLP panels ---------------------------------------------------------

/** The pre-refactor forward-panel loops, kept here as the oracle. */
void
refForwardPanel(const float *in, int n, int n_in, int n_out,
                const float *w, const float *b, float *out)
{
    for (int s = 0; s < n; s++) {
        const float *x = in + static_cast<size_t>(s) * n_in;
        float *y = out + static_cast<size_t>(s) * n_out;
        for (int o = 0; o < n_out; o++) {
            float acc = b[o];
            const float *wrow = w + static_cast<size_t>(o) * n_in;
            for (int i = 0; i < n_in; i++)
                acc += wrow[i] * x[i];
            y[o] = acc;
        }
    }
}

TEST(KernelBackendTest, ForwardPanelParityAcrossShapes)
{
    auto scalar = makeScalarRefBackend();
    auto simd = makeSimdBackend();
    ThreadPool pool(2);
    auto threaded = makeThreadedSweepBackend(&pool);
    Rng r(41);
    Workspace ws;

    // Odd widths and batch sizes exercise vector remainder lanes.
    for (int n_in : {1, 3, 16, 17, 33, 64}) {
        for (int n_out : {1, 5, 16, 31, 64}) {
            for (int n : {1, 2, 7, 33}) {
                std::vector<float> in(static_cast<size_t>(n) * n_in);
                std::vector<float> w(static_cast<size_t>(n_out) * n_in);
                std::vector<float> b(n_out);
                for (auto &v : in)
                    v = r.nextFloat(-2.0f, 2.0f);
                for (auto &v : w)
                    v = r.nextFloat(-1.0f, 1.0f);
                for (auto &v : b)
                    v = r.nextFloat(-0.5f, 0.5f);

                std::vector<float> ref(static_cast<size_t>(n) * n_out);
                refForwardPanel(in.data(), n, n_in, n_out, w.data(),
                                b.data(), ref.data());

                std::vector<float> out(ref.size());
                ws.reset();
                scalar->mlpForwardPanel(in.data(), n, n_in, n_out,
                                        w.data(), b.data(), out.data(),
                                        ws);
                expectBitEqual(ref.data(), out.data(), ref.size(),
                               "scalar_ref forward panel");

                ws.reset();
                threaded->mlpForwardPanel(in.data(), n, n_in, n_out,
                                          w.data(), b.data(),
                                          out.data(), ws);
                expectBitEqual(ref.data(), out.data(), ref.size(),
                               "threaded_sweep forward panel");

                ws.reset();
                simd->mlpForwardPanel(in.data(), n, n_in, n_out,
                                      w.data(), b.data(), out.data(),
                                      ws);
                expectSimdMatch(ref.data(), out.data(), ref.size(),
                                "forward panel");
            }
        }
    }
}

TEST(KernelBackendTest, MlpBatchMatchesScalarPerBackend)
{
    // Through the real Mlp, all hidden widths the repo uses plus odd
    // ones, with both output activations: the batched forward and the
    // per-sample backward must match the scalar reference kernels.
    ThreadPool pool(2);
    auto simd = makeSimdBackend();
    auto threaded = makeThreadedSweepBackend(&pool);

    for (int hidden : {8, 16, 17, 32, 33, 64}) {
        for (auto act :
             {OutputActivation::None, OutputActivation::Sigmoid}) {
            Mlp mlp({7, hidden, hidden, 3}, act, 23);
            Rng r(57);
            const int n = 19; // odd batch: remainder lanes
            std::vector<float> in(static_cast<size_t>(n) * 7);
            std::vector<float> d_out(static_cast<size_t>(n) * 3);
            for (auto &v : in)
                v = r.nextFloat(-1.5f, 1.5f);
            for (auto &v : d_out)
                v = r.nextFloat(-1.0f, 1.0f);

            // Scalar reference: per-sample forward + backward.
            std::vector<float> ref_out(static_cast<size_t>(n) * 3);
            std::vector<float> ref_din(static_cast<size_t>(n) * 7);
            for (int s = 0; s < n; s++)
                mlp.forward(in.data() + s * 7, ref_out.data() + s * 3);
            std::vector<float> ref_grad;
            {
                mlp.zeroGrad();
                for (int s = 0; s < n; s++) {
                    MlpRecord rec;
                    float tmp[3];
                    mlp.forward(in.data() + s * 7, tmp, &rec);
                    mlp.backward(rec, d_out.data() + s * 3,
                                 ref_din.data() + s * 7);
                }
                ref_grad = mlp.grads();
                mlp.zeroGrad();
            }

            struct BackendCase
            {
                const KernelBackend *kb;
                const char *label;
                bool exact;
            };
            const BackendCase cases[] = {
                {nullptr, "scalar_ref", true},
                {threaded.get(), "threaded_sweep", true},
                {simd.get(), "simd", kSimdBitExact},
            };
            for (const auto &c : cases) {
                mlp.setKernelBackend(c.kb);
                Workspace ws;
                std::vector<float> out(static_cast<size_t>(n) * 3);
                std::vector<float> din(static_cast<size_t>(n) * 7);
                MlpBatchRecord rec;
                mlp.forwardBatch(in.data(), n, out.data(), &rec, ws);
                mlp.zeroGrad();
                mlp.backwardBatch(rec, d_out.data(), din.data(),
                                  mlp.grads().data(), ws);

                if (c.exact) {
                    expectBitEqual(ref_out.data(), out.data(),
                                   out.size(), c.label);
                    expectBitEqual(ref_din.data(), din.data(),
                                   din.size(), c.label);
                    expectBitEqual(ref_grad.data(), mlp.grads().data(),
                                   ref_grad.size(), c.label);
                } else {
                    expectSimdMatch(ref_out.data(), out.data(),
                                    out.size(), c.label);
                    expectSimdMatch(ref_din.data(), din.data(),
                                    din.size(), c.label);
                    expectSimdMatch(ref_grad.data(), mlp.grads().data(),
                                    ref_grad.size(), c.label);
                }
                mlp.zeroGrad();
            }
            mlp.setKernelBackend(nullptr);
        }
    }
}

// ---- Hash-grid kernels --------------------------------------------------

TEST(KernelBackendTest, HashEncodeAndScatterMatchScalarPerBackend)
{
    HashEncodingConfig cfg;
    cfg.numLevels = 5;
    cfg.featuresPerEntry = 2;
    cfg.log2TableSize = 10;
    cfg.baseResolution = 8;

    ThreadPool pool(2);
    auto simd = makeSimdBackend();
    auto threaded = makeThreadedSweepBackend(&pool);

    for (int n : {1, 3, 17}) { // odd batches
        HashEncoding ref_enc(cfg, 99);
        Rng r(5);
        std::vector<Vec3> pts;
        for (int s = 0; s < n; s++)
            pts.push_back(
                {r.nextFloat(), r.nextFloat(), r.nextFloat()});
        std::vector<float> d_out(
            static_cast<size_t>(n) * cfg.outputDim());
        for (auto &v : d_out)
            v = r.nextFloat(-1.0f, 1.0f);

        // Scalar reference: per-point encode + backward scatter.
        std::vector<float> ref_out(
            static_cast<size_t>(n) * cfg.outputDim());
        for (int s = 0; s < n; s++) {
            EncodeRecord rec;
            ref_enc.encode(pts[s],
                           ref_out.data() +
                               static_cast<size_t>(s) * cfg.outputDim(),
                           &rec);
            ref_enc.backward(rec,
                             d_out.data() +
                                 static_cast<size_t>(s) *
                                     cfg.outputDim());
        }
        const std::vector<float> ref_grad = ref_enc.grads();

        struct BackendCase
        {
            const KernelBackend *kb;
            const char *label;
            bool exact;
        };
        const BackendCase cases[] = {
            {nullptr, "scalar_ref", true},
            {threaded.get(), "threaded_sweep", true},
            {simd.get(), "simd", kSimdBitExact},
        };
        for (const auto &c : cases) {
            HashEncoding enc(cfg, 99); // same seed => same table
            enc.setKernelBackend(c.kb);
            Workspace ws;
            std::vector<float> out(ref_out.size());
            EncodeBatchRecord rec;
            enc.encodeBatch(pts.data(), n, out.data(), &rec, ws);
            std::vector<uint32_t> touched;
            for (int s = 0; s < n; s++)
                enc.backwardSample(rec, s,
                                   d_out.data() +
                                       static_cast<size_t>(s) *
                                           cfg.outputDim(),
                                   enc.grads().data(), &touched);
            EXPECT_EQ(touched.size(),
                      static_cast<size_t>(n) * cfg.numLevels * 8)
                << c.label;

            if (c.exact) {
                expectBitEqual(ref_out.data(), out.data(), out.size(),
                               c.label);
                expectBitEqual(ref_grad.data(), enc.grads().data(),
                               ref_grad.size(), c.label);
            } else {
                expectSimdMatch(ref_out.data(), out.data(), out.size(),
                                c.label);
                expectSimdMatch(ref_grad.data(), enc.grads().data(),
                                ref_grad.size(), c.label);
            }
        }
    }
}

// ---- Optimizer sweeps ---------------------------------------------------

TEST(KernelBackendTest, AdamDenseStepParityPerBackend)
{
    const size_t n = 4097; // odd: remainder lanes
    AdamConfig acfg;
    acfg.lr = 0.03f;
    acfg.l2Reg = 1e-3f; // dense path supports weight decay

    Rng r(77);
    std::vector<float> p0(n), g(n);
    for (auto &v : p0)
        v = r.nextFloat(-1.0f, 1.0f);

    auto run = [&](const KernelBackend *kb, int steps,
                   std::vector<float> &out) {
        Adam adam(n, acfg);
        adam.setKernelBackend(kb);
        out = p0;
        Rng gr(78);
        for (int s = 0; s < steps; s++) {
            for (auto &v : g)
                v = gr.nextFloat(-1.0f, 1.0f);
            adam.step(out, g);
        }
    };

    std::vector<float> ref;
    run(nullptr, 25, ref);

    for (int threads : {1, 2, 8}) {
        ThreadPool pool(threads);
        auto threaded = makeThreadedSweepBackend(&pool);
        std::vector<float> got;
        run(threaded.get(), 25, got);
        expectBitEqual(ref.data(), got.data(), n,
                       "threaded_sweep dense Adam");
    }

    auto simd = makeSimdBackend();
    std::vector<float> got;
    run(simd.get(), 25, got);
    expectSimdMatch(ref.data(), got.data(), n, "simd dense Adam");
}

TEST(KernelBackendTest, SparseSweepBitIdenticalUnderThreading)
{
    // Random touch schedules with gaps and re-touches: the threaded
    // bitmap sweep must stay on the serial sweep's exact trajectory
    // at every pool size.
    constexpr uint32_t span = 2;
    constexpr size_t entries = 512;
    constexpr size_t n = entries * span;
    constexpr int steps = 60;

    AdamConfig acfg;
    acfg.lr = 0.05f;

    auto run = [&](const KernelBackend *kb, std::vector<float> &out) {
        Adam adam(n, acfg);
        adam.setKernelBackend(kb);
        adam.enableSparse(span);
        Rng init(3);
        out.resize(n);
        for (auto &v : out)
            v = init.nextFloat(-1.0f, 1.0f);
        std::vector<float> grads(n, 0.0f);
        Rng sched(9);
        for (int s = 0; s < steps; s++) {
            std::vector<uint32_t> touched;
            const int k = 1 + static_cast<int>(sched.nextU32(64));
            for (int i = 0; i < k; i++) {
                uint32_t e = sched.nextU32(entries);
                touched.push_back(e * span);
                for (uint32_t f = 0; f < span; f++)
                    grads[e * span + f] =
                        sched.nextFloat(-1.0f, 1.0f);
            }
            adam.stepSparse(out, grads, touched);
            for (uint32_t off : touched)
                for (uint32_t f = 0; f < span; f++)
                    grads[off + f] = 0.0f;
        }
        adam.catchUp(out);
    };

    std::vector<float> ref;
    run(nullptr, ref);
    for (int threads : {1, 2, 8}) {
        ThreadPool pool(threads);
        auto threaded = makeThreadedSweepBackend(&pool);
        std::vector<float> got;
        run(threaded.get(), got);
        expectBitEqual(ref.data(), got.data(), n,
                       "threaded sparse sweep");
    }
}

// ---- End-to-end through the Trainer ------------------------------------

FieldConfig
smallField()
{
    HashEncodingConfig grid;
    grid.numLevels = 4;
    grid.featuresPerEntry = 2;
    grid.log2TableSize = 12;
    grid.baseResolution = 8;
    grid.growthFactor = 1.6f;
    FieldConfig cfg = FieldConfig::instant3dDefault(grid);
    cfg.hiddenDim = 16;
    return cfg;
}

Dataset
smallDataset()
{
    auto scene = makeSyntheticScene("materials");
    DatasetConfig cfg;
    cfg.numTrainViews = 4;
    cfg.numTestViews = 1;
    cfg.imageWidth = 16;
    cfg.imageHeight = 16;
    cfg.renderOpts.numSteps = 48;
    return makeDataset(scene, cfg);
}

TEST(KernelBackendTest, TrainerThreadedSweepBitIdentical)
{
    Dataset data = smallDataset();
    TrainConfig base;
    base.raysPerBatch = 64;
    base.samplesPerRay = 24;
    base.seed = 11;
    const int iters = 10;

    base.kernelBackend = "scalar_ref";
    base.numThreads = 1;
    Trainer ref(data, smallField(), base);
    std::vector<double> ref_losses;
    for (int i = 0; i < iters; i++)
        ref_losses.push_back(ref.trainIteration().loss);
    ref.syncParams();

    for (int threads : {1, 2, 8}) {
        TrainConfig tc = base;
        tc.kernelBackend = "threaded_sweep";
        tc.numThreads = threads;
        Trainer t(data, smallField(), tc);
        EXPECT_STREQ(t.kernelBackendName(), "threaded_sweep");
        for (int i = 0; i < iters; i++)
            ASSERT_EQ(t.trainIteration().loss, ref_losses[i])
                << "loss diverged at iteration " << i << " with "
                << threads << " threads";
        t.syncParams();
        for (auto id : ref.field().paramGroups()) {
            const auto &a = ref.field().groupParams(id);
            const auto &b = t.field().groupParams(id);
            ASSERT_EQ(a.size(), b.size());
            expectBitEqual(a.data(), b.data(), a.size(),
                           "trainer params (threaded_sweep)");
        }
    }
}

TEST(KernelBackendTest, TrainerSimdMatchesScalarContract)
{
    Dataset data = smallDataset();
    TrainConfig base;
    base.raysPerBatch = 48;
    base.samplesPerRay = 16;
    base.seed = 19;
    base.numThreads = 1;
    const int iters = 5;

    base.kernelBackend = "scalar_ref";
    Trainer ref(data, smallField(), base);
    std::vector<double> ref_losses;
    for (int i = 0; i < iters; i++)
        ref_losses.push_back(ref.trainIteration().loss);
    ref.syncParams();

    TrainConfig tc = base;
    tc.kernelBackend = "simd";
    Trainer t(data, smallField(), tc);
    EXPECT_STREQ(t.kernelBackendName(), "simd");
    for (int i = 0; i < iters; i++) {
        double loss = t.trainIteration().loss;
        if (kSimdBitExact) {
            ASSERT_EQ(loss, ref_losses[i])
                << "simd loss diverged at iteration " << i
                << " in a non-FMA build";
        } else {
            ASSERT_NEAR(loss, ref_losses[i],
                        1e-3 * std::max(1.0, std::fabs(ref_losses[i])))
                << "simd loss outside tolerance at iteration " << i;
        }
    }
    t.syncParams();
    if (kSimdBitExact) {
        for (auto id : ref.field().paramGroups()) {
            const auto &a = ref.field().groupParams(id);
            const auto &b = t.field().groupParams(id);
            ASSERT_EQ(a.size(), b.size());
            expectBitEqual(a.data(), b.data(), a.size(),
                           "trainer params (simd, non-FMA build)");
        }
    }
}

// ---- Selection ----------------------------------------------------------

TEST(KernelBackendTest, SelectionAndEnvOverride)
{
    EXPECT_STREQ(createKernelBackend("scalar_ref", nullptr)->name(),
                 "scalar_ref");
    EXPECT_STREQ(createKernelBackend("simd", nullptr)->name(), "simd");
    EXPECT_STREQ(createKernelBackend("threaded_sweep", nullptr)->name(),
                 "threaded_sweep");

    // auto: threaded_sweep only when the pool can actually fan out.
    EXPECT_STREQ(createKernelBackend("auto", nullptr)->name(),
                 "scalar_ref");
    {
        ThreadPool serial(1);
        EXPECT_STREQ(createKernelBackend("auto", &serial)->name(),
                     "scalar_ref");
        ThreadPool wide(4);
        EXPECT_STREQ(createKernelBackend("auto", &wide)->name(),
                     "threaded_sweep");
    }

    ::setenv("INSTANT3D_KERNEL_BACKEND", "simd", 1);
    EXPECT_STREQ(createKernelBackend("scalar_ref", nullptr)->name(),
                 "simd");
    ::unsetenv("INSTANT3D_KERNEL_BACKEND");

    // Feature reporting is wired (content is host-specific).
    EXPECT_FALSE(cpuFeatureString().empty());
    EXPECT_FALSE(compiledSimdString().empty());
}

} // namespace
} // namespace instant3d
