/**
 * @file
 * Consistency checks between the detailed GridCore pipeline model and
 * the calibration-based composition the Accelerator uses: the two
 * paths must agree on utilization for the same trace, and the BP pass
 * must preserve gradient sums end to end.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "accel/calibration.hh"
#include "accel/grid_core.hh"
#include "common/rng.hh"

namespace instant3d {
namespace {

/** Build a clustered point stream (4 groups of x-pairs per point). */
std::vector<std::array<uint32_t, 8>>
clusteredPoints(int n, uint32_t span, uint64_t seed)
{
    Rng r(seed);
    std::vector<std::array<uint32_t, 8>> points(n);
    for (auto &p : points) {
        for (int g = 0; g < 4; g++) {
            uint32_t base = r.nextU32(span - 2);
            p[2 * g] = base;
            p[2 * g + 1] = base + 1;
        }
    }
    return points;
}

/** Flatten points into the GridAccess shape the calibrator expects. */
std::vector<GridAccess>
toAccesses(const std::vector<std::array<uint32_t, 8>> &points)
{
    std::vector<GridAccess> out;
    uint32_t id = 0;
    for (const auto &p : points) {
        for (int c = 0; c < 8; c++)
            out.push_back({p[c], 0, static_cast<uint8_t>(c), false,
                           id});
        id++;
    }
    return out;
}

TEST(GridCoreConsistencyTest, UtilizationMatchesCalibrator)
{
    auto points = clusteredPoints(3000, 1 << 12, 7);
    auto accesses = toAccesses(points);

    // Path A: the calibrator's measurement.
    TraceCalibration calib = calibrateFromTrace(accesses, {});

    // Path B: the GridCore pipeline on the same stream.
    GridCoreConfig cfg;
    cfg.tableEntries = 1 << 12;
    GridCoreResult res = GridCore(cfg).processLevelPass(points);
    double core_util = res.frm.utilization(cfg.banks);

    EXPECT_NEAR(core_util, calib.frmUtil8, 0.02);
}

TEST(GridCoreConsistencyTest, InOrderUtilizationMatchesCalibrator)
{
    auto points = clusteredPoints(3000, 1 << 12, 8);
    auto accesses = toAccesses(points);
    TraceCalibration calib = calibrateFromTrace(accesses, {});

    GridCoreConfig cfg;
    cfg.tableEntries = 1 << 12;
    cfg.enableFrm = false;
    GridCoreResult res = GridCore(cfg).processLevelPass(points);
    EXPECT_NEAR(res.frm.utilization(cfg.banks), calib.inOrderUtil8,
                0.02);
}

TEST(GridCoreConsistencyTest, BackpropMergeMatchesBumModel)
{
    auto points = clusteredPoints(2000, 1 << 8, 9); // heavy sharing
    GridCoreConfig cfg;
    cfg.tableEntries = 1 << 8;
    auto res = GridCore(cfg).processBackpropPass(points);

    // Replaying the same stream through a bare BumUnit must agree.
    BumUnit bum(cfg.bum);
    for (const auto &p : points)
        for (uint32_t a : p)
            bum.pushUpdate(a, 1.0f);
    bum.flushAll();
    EXPECT_EQ(res.bum.sramWrites, bum.stats().sramWrites);
    EXPECT_EQ(res.writeBacks, bum.stats().sramWrites);
}

TEST(GridCoreConsistencyTest, BackpropIntakeBoundKicksIn)
{
    // With an extremely slow intake, the BP pass is intake-bound:
    // cycles ~ updates / intake.
    GridCoreConfig cfg;
    cfg.tableEntries = 1 << 12;
    cfg.bumIntakePerCycle = 1;
    auto points = clusteredPoints(500, 1 << 12, 10);
    auto res = GridCore(cfg).processBackpropPass(points);
    EXPECT_GE(res.cycles,
              static_cast<uint64_t>(points.size()) * 8);
}

TEST(GridCoreConsistencyTest, FfCheaperThanUnmergedBp)
{
    // Each BP write-back is a 2-op RMW: an unmerged BP pass must cost
    // more than the FF pass on the same stream.
    GridCoreConfig cfg;
    cfg.tableEntries = 1 << 12;
    cfg.enableBum = false;
    auto points = clusteredPoints(2000, 1 << 12, 11);
    GridCore core(cfg);
    EXPECT_GT(core.processBackpropPass(points).cycles,
              core.processLevelPass(points).cycles);
}

} // namespace
} // namespace instant3d
