/**
 * @file
 * Unit and property tests for the multiresolution hash-grid encoding:
 * Eq. 3 hash behaviour (locality in x, remoteness in y/z), trilinear
 * partition of unity, forward/backward consistency (finite differences),
 * trace-sink reporting, and table-size scaling.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hh"
#include "nerf/hash_encoding.hh"

namespace instant3d {
namespace {

HashEncodingConfig
smallConfig()
{
    HashEncodingConfig cfg;
    cfg.numLevels = 4;
    cfg.featuresPerEntry = 2;
    cfg.log2TableSize = 10;
    cfg.baseResolution = 8;
    cfg.growthFactor = 1.5f;
    return cfg;
}

TEST(HashFunctionTest, MatchesEq3Definition)
{
    // h = (x*1 XOR y*2654435761 XOR z*805459861) mod T, T = 2^14.
    uint32_t t = 1u << 14;
    uint32_t x = 12, y = 34, z = 56;
    uint32_t expect = ((x * 1u) ^ (y * 2654435761u) ^ (z * 805459861u)) %
                      t;
    EXPECT_EQ(HashEncoding::hashCoords(x, y, z, t), expect);
}

TEST(HashFunctionTest, XNeighborsAreLocal)
{
    // pi1 = 1 means x-adjacent vertices hash to nearby addresses
    // (paper Sec 4.2 "Case 2": locality). XOR with 1 flips only the
    // low bit when x is even.
    uint32_t t = 1u << 16;
    Rng r(8);
    int within5 = 0;
    const int n = 2000;
    for (int i = 0; i < n; i++) {
        uint32_t x = r.nextU32(1u << 18);
        uint32_t y = r.nextU32(1u << 18);
        uint32_t z = r.nextU32(1u << 18);
        int64_t a = HashEncoding::hashCoords(x, y, z, t);
        int64_t b = HashEncoding::hashCoords(x + 1, y, z, t);
        if (std::llabs(a - b) <= 5)
            within5++;
    }
    // The paper reports ~90% within [-5, 5]; we require a clear majority.
    EXPECT_GT(within5, n * 7 / 10);
}

TEST(HashFunctionTest, YZNeighborsAreRemote)
{
    // pi2/pi3 amplify y/z differences ("Case 1": remoteness).
    uint32_t t = 1u << 16;
    Rng r(9);
    double mean_dist = 0.0;
    const int n = 2000;
    for (int i = 0; i < n; i++) {
        uint32_t x = r.nextU32(1u << 18);
        uint32_t y = r.nextU32(1u << 18);
        uint32_t z = r.nextU32(1u << 18);
        int64_t a = HashEncoding::hashCoords(x, y, z, t);
        int64_t b = HashEncoding::hashCoords(x, y + 1, z, t);
        mean_dist += static_cast<double>(std::llabs(a - b));
    }
    mean_dist /= n;
    // Average distance should be a large fraction of the table.
    EXPECT_GT(mean_dist, t / 8.0);
}

TEST(HashEncodingTest, OutputDimAndDeterminism)
{
    auto cfg = smallConfig();
    HashEncoding enc1(cfg, 77), enc2(cfg, 77);
    EXPECT_EQ(enc1.outputDim(), cfg.numLevels * cfg.featuresPerEntry);

    std::vector<float> out1(enc1.outputDim()), out2(enc2.outputDim());
    Vec3 p(0.3f, 0.6f, 0.9f);
    enc1.encode(p, out1.data());
    enc2.encode(p, out2.data());
    for (int i = 0; i < enc1.outputDim(); i++)
        EXPECT_FLOAT_EQ(out1[i], out2[i]);
}

TEST(HashEncodingTest, TrilinearWeightsPartitionUnity)
{
    auto cfg = smallConfig();
    HashEncoding enc(cfg, 1);
    Rng r(12);
    for (int trial = 0; trial < 50; trial++) {
        Vec3 p(r.nextFloat(), r.nextFloat(), r.nextFloat());
        std::vector<float> out(enc.outputDim());
        EncodeRecord rec;
        enc.encode(p, out.data(), &rec);
        for (int l = 0; l < cfg.numLevels; l++) {
            float sum = 0.0f;
            for (int c = 0; c < 8; c++)
                sum += rec.weights[static_cast<size_t>(l) * 8 + c];
            EXPECT_NEAR(sum, 1.0f, 1e-5f);
        }
    }
}

TEST(HashEncodingTest, InterpolationReproducesVertexValue)
{
    // Querying exactly at a grid vertex must return that vertex's
    // embedding (one corner weight 1, others 0).
    auto cfg = smallConfig();
    cfg.numLevels = 1;
    HashEncoding enc(cfg, 3);
    int res = enc.levelResolution(0);

    // Vertex (2, 3, 5) of level 0.
    Vec3 p(2.0f / res, 3.0f / res, 5.0f / res);
    uint32_t addr = HashEncoding::hashCoords(2, 3, 5, cfg.tableSize());

    std::vector<float> out(enc.outputDim());
    enc.encode(p, out.data());
    for (int f = 0; f < cfg.featuresPerEntry; f++) {
        float stored =
            enc.params()[static_cast<size_t>(addr) *
                         cfg.featuresPerEntry + f];
        EXPECT_NEAR(out[f], stored, 1e-6f);
    }
}

TEST(HashEncodingTest, EncodeIsContinuous)
{
    // Moving the query point by epsilon moves the encoding by O(eps).
    auto cfg = smallConfig();
    HashEncoding enc(cfg, 5);
    Rng r(6);
    for (int trial = 0; trial < 20; trial++) {
        Vec3 p(r.nextFloat(0.1f, 0.9f), r.nextFloat(0.1f, 0.9f),
               r.nextFloat(0.1f, 0.9f));
        Vec3 q = p + Vec3(1e-5f, -1e-5f, 1e-5f);
        std::vector<float> a(enc.outputDim()), b(enc.outputDim());
        enc.encode(p, a.data());
        enc.encode(q, b.data());
        for (int i = 0; i < enc.outputDim(); i++)
            EXPECT_NEAR(a[i], b[i], 1e-5f);
    }
}

TEST(HashEncodingTest, BackwardMatchesFiniteDifference)
{
    auto cfg = smallConfig();
    cfg.numLevels = 2;
    HashEncoding enc(cfg, 10);
    Vec3 p(0.37f, 0.52f, 0.81f);

    std::vector<float> out(enc.outputDim());
    EncodeRecord rec;
    enc.encode(p, out.data(), &rec);

    // Upstream gradient: all ones.
    std::vector<float> d_out(enc.outputDim(), 1.0f);
    enc.zeroGrad();
    enc.backward(rec, d_out.data());

    // Check d(sum of outputs)/d(param) for a few touched parameters.
    const float eps = 1e-3f;
    int checked = 0;
    for (int l = 0; l < cfg.numLevels && checked < 6; l++) {
        for (int c = 0; c < 8 && checked < 6; c += 3) {
            uint32_t addr = rec.addresses[static_cast<size_t>(l) * 8 + c];
            size_t off = (static_cast<size_t>(l) * cfg.tableSize() +
                          addr) * cfg.featuresPerEntry;
            float saved = enc.params()[off];

            enc.params()[off] = saved + eps;
            std::vector<float> out_hi(enc.outputDim());
            enc.encode(p, out_hi.data());
            enc.params()[off] = saved - eps;
            std::vector<float> out_lo(enc.outputDim());
            enc.encode(p, out_lo.data());
            enc.params()[off] = saved;

            float num = 0.0f;
            for (int i = 0; i < enc.outputDim(); i++)
                num += (out_hi[i] - out_lo[i]) / (2.0f * eps);
            EXPECT_NEAR(enc.grads()[off], num, 1e-2f)
                << "level " << l << " corner " << c;
            checked++;
        }
    }
    EXPECT_GT(checked, 0);
}

class CountingSink : public TraceSink
{
  public:
    void
    record(const GridAccess &access) override
    {
        accesses.push_back(access);
    }
    std::vector<GridAccess> accesses;
};

TEST(HashEncodingTest, TraceSinkSeesAllAccesses)
{
    auto cfg = smallConfig();
    HashEncoding enc(cfg, 2);
    CountingSink sink;
    enc.setTraceSink(&sink);

    std::vector<float> out(enc.outputDim());
    EncodeRecord rec;
    enc.encode({0.5f, 0.5f, 0.5f}, out.data(), &rec);
    EXPECT_EQ(sink.accesses.size(),
              static_cast<size_t>(cfg.numLevels) * 8);
    for (const auto &a : sink.accesses) {
        EXPECT_FALSE(a.isWrite);
        EXPECT_LT(a.address, cfg.tableSize());
    }

    size_t reads = sink.accesses.size();
    std::vector<float> ones(enc.outputDim(), 1.0f);
    enc.backward(rec, ones.data());
    EXPECT_EQ(sink.accesses.size(), reads * 2);
    EXPECT_TRUE(sink.accesses.back().isWrite);

    EXPECT_EQ(enc.readCount(), reads);
    EXPECT_EQ(enc.writeCount(), reads);
}

TEST(HashEncodingTest, ScaledBySnapsToPowerOfTwo)
{
    HashEncodingConfig cfg;
    cfg.log2TableSize = 18;
    EXPECT_EQ(cfg.scaledBy(0.25f).log2TableSize, 16u);
    EXPECT_EQ(cfg.scaledBy(0.5f).log2TableSize, 17u);
    EXPECT_EQ(cfg.scaledBy(1.0f).log2TableSize, 18u);
    EXPECT_EQ(cfg.scaledBy(0.125f).log2TableSize, 15u);
}

TEST(HashEncodingTest, StorageBytesMatchesFp16Layout)
{
    auto cfg = smallConfig();
    HashEncoding enc(cfg, 1);
    size_t expect = static_cast<size_t>(cfg.numLevels) *
                    cfg.tableSize() * cfg.featuresPerEntry * 2;
    EXPECT_EQ(enc.storageBytes(), expect);
}

TEST(HashEncodingTest, CornerGroupsShareYz)
{
    // The 8 corners pair into 4 groups sharing (y, z) and differing in
    // x (paper Fig 8): corners 2k and 2k+1 differ only in bit 0.
    auto cfg = smallConfig();
    cfg.numLevels = 1;
    HashEncoding enc(cfg, 4);
    EncodeRecord rec;
    std::vector<float> out(enc.outputDim());
    enc.encode({0.33f, 0.44f, 0.55f}, out.data(), &rec);

    int res = enc.levelResolution(0);
    uint32_t x0 = static_cast<uint32_t>(0.33f * res);
    uint32_t y0 = static_cast<uint32_t>(0.44f * res);
    uint32_t z0 = static_cast<uint32_t>(0.55f * res);
    for (int g = 0; g < 4; g++) {
        uint32_t cy = y0 + static_cast<uint32_t>(g & 1);
        uint32_t cz = z0 + static_cast<uint32_t>((g >> 1) & 1);
        uint32_t lo = HashEncoding::hashCoords(x0, cy, cz,
                                               cfg.tableSize());
        uint32_t hi = HashEncoding::hashCoords(x0 + 1, cy, cz,
                                               cfg.tableSize());
        EXPECT_EQ(rec.addresses[static_cast<size_t>(g) * 2], lo);
        EXPECT_EQ(rec.addresses[static_cast<size_t>(g) * 2 + 1], hi);
    }
}

} // namespace
} // namespace instant3d
