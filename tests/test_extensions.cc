/**
 * @file
 * Tests of the substrate extensions: occupancy-grid empty-space
 * skipping, fp16 table quantization (the accelerator's datapath),
 * SSIM, model serialization, the grid-core pipeline model, and the
 * Sec 2.1 vanilla-NeRF cost claims.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "accel/grid_core.hh"
#include "core/workload.hh"
#include "nerf/serialize.hh"
#include "nerf/trainer.hh"
#include "scene/scene.hh"

namespace instant3d {
namespace {

FieldConfig
tinyField()
{
    HashEncodingConfig grid;
    grid.numLevels = 4;
    grid.log2TableSize = 12;
    grid.baseResolution = 8;
    grid.growthFactor = 1.6f;
    FieldConfig cfg = FieldConfig::instant3dDefault(grid);
    cfg.hiddenDim = 16;
    return cfg;
}

Dataset
tinyDataset()
{
    DatasetConfig cfg;
    cfg.numTrainViews = 6;
    cfg.numTestViews = 2;
    cfg.imageWidth = 20;
    cfg.imageHeight = 20;
    cfg.renderOpts.numSteps = 64;
    return makeDataset(makeSyntheticScene("materials"), cfg);
}

// ---- Occupancy grid ---------------------------------------------------

TEST(OccupancyGridTest, StartsFullyOccupied)
{
    OccupancyGrid grid(OccupancyGridConfig{});
    EXPECT_DOUBLE_EQ(grid.occupiedFraction(), 1.0);
    EXPECT_TRUE(grid.occupied({0.5f, 0.5f, 0.5f}));
    EXPECT_EQ(grid.numCells(), 32u * 32 * 32);
}

TEST(OccupancyGridTest, CellIndexingCoversVolume)
{
    OccupancyGridConfig cfg;
    cfg.resolution = 4;
    OccupancyGrid grid(cfg);
    EXPECT_EQ(grid.cellIndex({0.0f, 0.0f, 0.0f}), 0u);
    EXPECT_EQ(grid.cellIndex({0.99f, 0.99f, 0.99f}),
              grid.numCells() - 1);
    // Clamping: out-of-range points map to boundary cells.
    EXPECT_EQ(grid.cellIndex({-1.0f, 0.0f, 0.0f}), 0u);
}

TEST(OccupancyGridTest, DecayEmptiesUnsupportedCells)
{
    OccupancyGridConfig cfg;
    cfg.resolution = 8;
    cfg.decay = 0.5f;
    // A fresh field sits at sigma = softplus(0) ~ 0.69 everywhere;
    // anything below 1.0 is "no real surface" for this test.
    cfg.occupancyThreshold = 1.0f;
    OccupancyGrid grid(cfg);
    NerfField field(tinyField(), 7);
    Rng rng(3);
    for (int i = 0; i < 12; i++)
        grid.update(field, rng);
    EXPECT_LT(grid.occupiedFraction(), 0.2);
}

TEST(OccupancyGridTest, DenseFieldStaysOccupied)
{
    OccupancyGridConfig cfg;
    cfg.resolution = 8;
    OccupancyGrid grid(cfg);
    NerfField field(tinyField(), 8);
    for (auto &p : field.groupParams(ParamGroupId::DensityGrid))
        p = 1.0f; // strongly positive embeddings everywhere
    Rng rng(4);
    for (int i = 0; i < 6; i++)
        grid.update(field, rng);
    EXPECT_GT(grid.occupiedFraction(), 0.9);
}

TEST(OccupancyGridTest, SkippingReducesFieldQueries)
{
    Dataset ds = tinyDataset();
    TrainConfig base;
    base.raysPerBatch = 32;
    base.samplesPerRay = 32;

    TrainConfig skipping = base;
    skipping.useOccupancyGrid = true;
    skipping.occupancyUpdatePeriod = 4;
    skipping.occupancy.resolution = 16;
    skipping.occupancy.decay = 0.6f;

    Trainer plain(ds, tinyField(), base);
    Trainer skip(ds, tinyField(), skipping);
    uint64_t plain_points = 0, skip_points = 0;
    for (int i = 0; i < 30; i++) {
        plain_points += plain.trainIteration().pointsQueried;
        skip_points += skip.trainIteration().pointsQueried;
    }
    EXPECT_LT(skip_points, plain_points)
        << "occupancy skipping must reduce Step 3-1 traffic";
    // Quality must not collapse.
    EXPECT_GT(skip.evalPsnr(), 10.0);
}

// ---- fp16 quantization -------------------------------------------------

TEST(QuantizationTest, RoundingErrorBounded)
{
    HashEncodingConfig cfg;
    cfg.numLevels = 2;
    cfg.log2TableSize = 10;
    HashEncoding enc(cfg, 5);
    // Init range is [-1e-4, 1e-4]; binary16 resolves that scale.
    float max_err = enc.quantizeToHalf();
    EXPECT_LT(max_err, 1e-7f);
    // Quantization is idempotent.
    EXPECT_EQ(enc.quantizeToHalf(), 0.0f);
}

TEST(QuantizationTest, TrainedFieldSurvivesFp16)
{
    // Sec 5.1: fp16 "ensures minimal rendering quality degradation".
    Dataset ds = tinyDataset();
    TrainConfig tcfg;
    tcfg.raysPerBatch = 96;
    tcfg.samplesPerRay = 32;
    Trainer trainer(ds, tinyField(), tcfg);
    for (int i = 0; i < 120; i++)
        trainer.trainIteration();
    double psnr_fp32 = trainer.evalPsnr();

    trainer.field().densityGrid().quantizeToHalf();
    trainer.field().colorGrid().quantizeToHalf();
    double psnr_fp16 = trainer.evalPsnr();

    EXPECT_GT(psnr_fp32, 20.0);
    EXPECT_NEAR(psnr_fp16, psnr_fp32, 0.1)
        << "fp16 tables must not degrade quality materially";
}

// ---- SSIM ---------------------------------------------------------------

TEST(SsimTest, IdenticalImagesScoreOne)
{
    Image img(16, 16);
    Rng r(9);
    for (int y = 0; y < 16; y++)
        for (int x = 0; x < 16; x++)
            img.at(x, y) = Vec3(r.nextFloat(), r.nextFloat(),
                                r.nextFloat());
    EXPECT_NEAR(ssim(img, img), 1.0, 1e-9);
}

TEST(SsimTest, NoiseLowersScore)
{
    Image a(16, 16), b(16, 16);
    Rng r(10);
    for (int y = 0; y < 16; y++) {
        for (int x = 0; x < 16; x++) {
            Vec3 v(r.nextFloat(), r.nextFloat(), r.nextFloat());
            a.at(x, y) = v;
            b.at(x, y) = clamp(
                v + Vec3(r.nextFloat() - 0.5f, r.nextFloat() - 0.5f,
                         r.nextFloat() - 0.5f) * 0.6f,
                0.0f, 1.0f);
        }
    }
    double s = ssim(a, b);
    EXPECT_LT(s, 0.9);
    EXPECT_GT(s, -1.0);
}

TEST(SsimTest, RanksDistortionsLikePsnr)
{
    Image clean(16, 16), mild(16, 16), harsh(16, 16);
    Rng r(11);
    for (int y = 0; y < 16; y++) {
        for (int x = 0; x < 16; x++) {
            Vec3 v(0.5f + 0.4f * std::sin(0.7f * x),
                   0.5f + 0.4f * std::cos(0.5f * y), 0.5f);
            clean.at(x, y) = v;
            mild.at(x, y) = clamp(v + Vec3(0.02f), 0.0f, 1.0f);
            harsh.at(x, y) =
                clamp(v + Vec3(0.3f * (r.nextFloat() - 0.5f)), 0.0f,
                      1.0f);
        }
    }
    EXPECT_GT(ssim(clean, mild), ssim(clean, harsh));
}

// ---- Serialization -------------------------------------------------------

TEST(SerializeTest, RoundTripsExactly)
{
    NerfField field(tinyField(), 21);
    std::string path = ::testing::TempDir() + "/i3d_field.bin";
    ASSERT_EQ(saveField(field, path), CheckpointError::None);

    NerfField loaded(tinyField(), 99); // different init
    ASSERT_EQ(loadField(loaded, path), CheckpointError::None);
    for (auto gid : field.paramGroups()) {
        const auto &a = field.groupParams(gid);
        const auto &b = loaded.groupParams(gid);
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); i++)
            ASSERT_FLOAT_EQ(a[i], b[i]);
    }
    std::remove(path.c_str());
}

TEST(SerializeTest, RejectsMismatchedArchitecture)
{
    NerfField decoupled(tinyField(), 1);
    std::string path = ::testing::TempDir() + "/i3d_field2.bin";
    ASSERT_EQ(saveField(decoupled, path), CheckpointError::None);

    HashEncodingConfig grid;
    grid.numLevels = 4;
    grid.log2TableSize = 12;
    grid.baseResolution = 8;
    FieldConfig coupled_cfg = FieldConfig::ngpBaseline(grid);
    coupled_cfg.hiddenDim = 16;
    NerfField coupled(coupled_cfg, 1);
    EXPECT_EQ(loadField(coupled, path), CheckpointError::Shape);

    // Same mode but different table size: also rejected.
    HashEncodingConfig other = grid;
    other.log2TableSize = 10;
    FieldConfig small_cfg = FieldConfig::instant3dDefault(other);
    small_cfg.hiddenDim = 16;
    NerfField small(small_cfg, 1);
    EXPECT_EQ(loadField(small, path), CheckpointError::Shape);
    std::remove(path.c_str());
}

TEST(SerializeTest, FailureInjectionTruncatedFile)
{
    NerfField field(tinyField(), 2);
    std::string path = ::testing::TempDir() + "/i3d_field3.bin";
    ASSERT_EQ(saveField(field, path), CheckpointError::None);

    // Truncate the file and confirm the load fails without modifying
    // the destination field.
    std::FILE *f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size / 2), 0);

    NerfField victim(tinyField(), 3);
    auto snapshot = victim.groupParams(ParamGroupId::DensityMlp);
    EXPECT_EQ(loadField(victim, path), CheckpointError::Truncated);
    const auto &after = victim.groupParams(ParamGroupId::DensityMlp);
    for (size_t i = 0; i < snapshot.size(); i++)
        ASSERT_FLOAT_EQ(snapshot[i], after[i]);
    std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileFailsGracefully)
{
    NerfField field(tinyField(), 4);
    EXPECT_EQ(loadField(field, "/nonexistent/i3d.bin"),
              CheckpointError::Io);
}

TEST(SerializeTest, ModelSmallerThanImages)
{
    // The Sec 1 telepresence argument: ship the model, not the pixels.
    NerfField field(tinyField(), 5);
    size_t model = fieldStorageBytes(field);
    EXPECT_GT(model, 0u);
    // At paper scale (2^18 + 2^16 entries x 2 features) the model is
    // ~2.6 MB of embeddings -- far below the 120 MB of captures.
    HashEncodingConfig paper_grid;
    paper_grid.numLevels = 1;
    paper_grid.log2TableSize = 18;
    FieldConfig paper_cfg = FieldConfig::instant3dDefault(paper_grid);
    NerfField paper_field(paper_cfg, 6);
    EXPECT_LT(fieldStorageBytes(paper_field), 20u * 1024 * 1024);
}

// ---- Grid-core pipeline ---------------------------------------------------

TEST(GridCoreTest, SramIsTheBottleneckOnClusteredPatterns)
{
    GridCoreConfig cfg;
    cfg.tableEntries = 1 << 12;
    GridCore core(cfg);

    Rng r(31);
    std::vector<std::array<uint32_t, 8>> points(2000);
    for (auto &p : points) {
        for (int g = 0; g < 4; g++) {
            uint32_t base = r.nextU32((1 << 12) - 2);
            p[2 * g] = base;
            p[2 * g + 1] = base + 1;
        }
    }
    GridCoreResult res = core.processLevelPass(points);
    EXPECT_STREQ(res.bottleneck(), "sram");
    EXPECT_GT(res.cycles, points.size()); // > 1 point/cycle is ideal
    EXPECT_EQ(res.frm.requests, points.size() * 8);
}

TEST(GridCoreTest, FrmShortensThePass)
{
    GridCoreConfig with, without;
    with.tableEntries = without.tableEntries = 1 << 12;
    without.enableFrm = false;

    Rng r(32);
    std::vector<std::array<uint32_t, 8>> points(1500);
    for (auto &p : points)
        for (auto &a : p)
            a = r.nextU32(1 << 12);

    uint64_t c_with = GridCore(with).processLevelPass(points).cycles;
    uint64_t c_without =
        GridCore(without).processLevelPass(points).cycles;
    EXPECT_LT(c_with, c_without);
}

TEST(GridCoreTest, EmptyPassIsFree)
{
    GridCore core(GridCoreConfig{});
    EXPECT_EQ(core.processLevelPass({}).cycles, 0u);
}

TEST(GridCoreTest, PipelineLatencyAdded)
{
    GridCoreConfig cfg;
    cfg.pipelineLatency = 100;
    cfg.tableEntries = 1 << 12;
    GridCore core(cfg);
    std::vector<std::array<uint32_t, 8>> one_point(1);
    // One point: 8 strided addresses, conflict-free in one cycle.
    for (int i = 0; i < 8; i++)
        one_point[0][i] = static_cast<uint32_t>(i * 512);
    GridCoreResult res = core.processLevelPass(one_point);
    EXPECT_EQ(res.cycles, 101u);
}

// ---- Vanilla field mode (Sec 2.1 baseline) ---------------------------------

TEST(VanillaFieldTest, PositionalEncodingShape)
{
    FieldConfig cfg = FieldConfig::vanillaBaseline();
    EXPECT_EQ(cfg.posEncodingDim(), 3 + 6 * cfg.posEncFrequencies);
    std::vector<float> enc(cfg.posEncodingDim());
    NerfField::encodePosition({0.0f, 0.0f, 0.0f},
                              cfg.posEncFrequencies, enc.data());
    EXPECT_FLOAT_EQ(enc[0], 0.0f);
    EXPECT_FLOAT_EQ(enc[3], 0.0f); // sin(0)
    EXPECT_FLOAT_EQ(enc[4], 1.0f); // cos(0)
}

TEST(VanillaFieldTest, QueriesAndParamGroups)
{
    NerfField field(FieldConfig::vanillaBaseline(24, 2), 3);
    EXPECT_FALSE(field.hasDensityGrid());
    EXPECT_FALSE(field.hasColorGrid());
    EXPECT_EQ(field.paramGroups().size(), 2u);
    FieldSample s = field.query({0.4f, 0.5f, 0.6f}, {0, 0, 1});
    EXPECT_GE(s.sigma, 0.0f);
    EXPECT_LE(s.rgb.maxComponent(), 1.0f);
    EXPECT_EQ(field.queryCount(), 1u);
}

TEST(VanillaFieldTest, GradientsReachBothMlps)
{
    NerfField field(FieldConfig::vanillaBaseline(24, 2), 5);
    FieldRecord rec;
    field.query({0.3f, 0.7f, 0.2f}, {0, 1, 0}, &rec);
    field.zeroGrad();
    field.backward(rec, 1.0f, {1.0f, 1.0f, 1.0f});
    double dens = 0.0, col = 0.0;
    for (float g : field.groupGrads(ParamGroupId::DensityMlp))
        dens += std::fabs(g);
    for (float g : field.groupGrads(ParamGroupId::ColorMlp))
        col += std::fabs(g);
    EXPECT_GT(dens, 0.0);
    EXPECT_GT(col, 0.0);
}

TEST(VanillaFieldTest, TrainsButSlowerThanGrid)
{
    // The paper's motivation: at matched iteration budgets, hash-grid
    // training reaches far better quality than a pure MLP.
    Dataset ds = tinyDataset();
    TrainConfig tcfg;
    tcfg.raysPerBatch = 64;
    tcfg.samplesPerRay = 32;

    FieldConfig vanilla = FieldConfig::vanillaBaseline(24, 2);
    Trainer mlp_trainer(ds, vanilla, tcfg);
    Trainer grid_trainer(ds, tinyField(), tcfg);

    double mlp_first = mlp_trainer.evalPsnr();
    for (int i = 0; i < 100; i++) {
        mlp_trainer.trainIteration();
        grid_trainer.trainIteration();
    }
    // The vanilla model still learns...
    EXPECT_GT(mlp_trainer.evalPsnr(), mlp_first);
    // ...but the grid model is clearly ahead at the same budget.
    EXPECT_GT(grid_trainer.evalPsnr(), mlp_trainer.evalPsnr() + 1.0);
}

TEST(VanillaFieldTest, GridAccessorsPanic)
{
    NerfField field(FieldConfig::vanillaBaseline(16, 1), 6);
    EXPECT_DEATH(field.densityGrid(), "no density grid");
    EXPECT_DEATH(field.colorGrid(), "no color grid");
}

// ---- Grid-core back-propagation pass ----------------------------------------

TEST(GridCoreBackpropTest, BumReducesWritebacksAndCycles)
{
    GridCoreConfig with, without;
    with.tableEntries = without.tableEntries = 1 << 12;
    without.enableBum = false;

    // Shared-address update stream (the Fig 10 regime).
    Rng r(41);
    std::vector<std::array<uint32_t, 8>> points(1000);
    uint32_t base = r.nextU32(1 << 11);
    for (auto &p : points) {
        if (r.nextFloat() < 0.3f)
            base = r.nextU32(1 << 11); // move to a new region sometimes
        for (int i = 0; i < 8; i++)
            p[i] = base + static_cast<uint32_t>(i & 1);
    }

    auto merged = GridCore(with).processBackpropPass(points);
    auto raw = GridCore(without).processBackpropPass(points);
    EXPECT_EQ(merged.updates, raw.updates);
    EXPECT_LT(merged.writeBacks, raw.writeBacks / 2);
    EXPECT_LT(merged.cycles, raw.cycles);
}

TEST(GridCoreBackpropTest, UniqueStreamGainsNothing)
{
    GridCoreConfig cfg;
    cfg.tableEntries = 1 << 20;
    GridCore core(cfg);
    Rng r(42);
    std::vector<std::array<uint32_t, 8>> points(500);
    for (auto &p : points)
        for (auto &a : p)
            a = r.nextU32(1 << 20); // effectively no sharing
    auto res = core.processBackpropPass(points);
    EXPECT_GT(res.writeBacks, res.updates * 9 / 10);
}

TEST(GridCoreBackpropTest, EmptyPassIsFree)
{
    GridCore core(GridCoreConfig{});
    EXPECT_EQ(core.processBackpropPass({}).cycles, 0u);
}

// ---- Vanilla NeRF cost (Sec 2.1) ------------------------------------------

TEST(VanillaNerfTest, TotalFlopsMatchSec21)
{
    VanillaNerfCost cost;
    // "the required total training FLOPs is as large as 353,895
    // trillion FLOPs"
    EXPECT_NEAR(cost.totalFlops(), 353895e12, 1e15);
}

TEST(VanillaNerfTest, MoreThanOneDayOnV100)
{
    VanillaNerfCost cost;
    EXPECT_GT(cost.daysOnV100(), 1.0);
    // ...but not absurdly long either (sanity bound).
    EXPECT_LT(cost.daysOnV100(), 10.0);
}

TEST(VanillaNerfTest, InstantNgpIsOrdersOfMagnitudeCheaper)
{
    VanillaNerfCost vanilla;
    TrainingWorkload ngp = makeNgpWorkload("NeRF-Synthetic");
    double ngp_flops =
        (ngp.mlpFlopsPerIterFF() + ngp.mlpFlopsPerIterBP()) *
        ngp.iterations;
    EXPECT_GT(vanilla.totalFlops() / ngp_flops, 1e4);
}

} // namespace
} // namespace instant3d
