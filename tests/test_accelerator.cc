/**
 * @file
 * Tests of the MLP units, fusion scheme, trace calibration, top-level
 * accelerator model, and energy/area models against the paper's
 * published numbers (Figs 15-18, Tab 3, Tab 5).
 */

#include <gtest/gtest.h>

#include "accel/accelerator.hh"
#include "accel/energy_model.hh"
#include "devices/registry.hh"

namespace instant3d {
namespace {

// ---- MLP units -------------------------------------------------------

TEST(MlpUnitTest, SmallChannelsGoToTree)
{
    MlpUnitModel model(MlpUnitConfig{});
    EXPECT_EQ(model.layerCost(100, 64, 3).unit,
              MlpUnitKind::MulAddTree);
    EXPECT_EQ(model.layerCost(100, 64, 64).unit,
              MlpUnitKind::SystolicArray);
}

TEST(MlpUnitTest, TreeBeatsSystolicOnTinyOutputs)
{
    // The design rationale (Sec 4.3): for out <= 3 the tree wins.
    MlpUnitConfig cfg;
    MlpUnitModel model(cfg);
    MlpLayerCost tree = model.layerCost(10000, 64, 3);
    // Force the same layer onto the systolic array for comparison.
    MlpUnitConfig no_tree = cfg;
    no_tree.smallChannelCutoff = 0;
    MlpUnitModel forced(no_tree);
    MlpLayerCost systolic = forced.layerCost(10000, 64, 3);
    EXPECT_GT(tree.utilization(cfg),
              systolic.utilization(no_tree) * 2.0);
}

TEST(MlpUnitTest, CyclesScaleWithBatch)
{
    MlpUnitModel model(MlpUnitConfig{});
    std::vector<int> dims = {32, 64, 64, 16};
    uint64_t c1 = model.forwardCycles(1000, dims);
    uint64_t c2 = model.forwardCycles(2000, dims);
    EXPECT_GT(c2, static_cast<uint64_t>(1.8 * c1));
    EXPECT_EQ(model.backwardCycles(1000, dims), 2 * c1);
}

// ---- Fusion ----------------------------------------------------------

TEST(FusionTest, ModeSelectionByTableSize)
{
    // Fig 11: 256 KB -> Level 0, 512 KB -> Level 1, 1 MB -> Level 2.
    EXPECT_EQ(fusionForTable(256 * 1024).level, FusionLevel::Level0);
    EXPECT_EQ(fusionForTable(512 * 1024).level, FusionLevel::Level1);
    EXPECT_EQ(fusionForTable(1024 * 1024).level, FusionLevel::Level2);
    EXPECT_EQ(fusionForTable(2 * 1024 * 1024).level,
              FusionLevel::DramSpill);
}

TEST(FusionTest, BankAndClusterGeometry)
{
    FusionMode l0 = fusionForTable(100 * 1024);
    EXPECT_EQ(l0.banksPerCluster, 8);
    EXPECT_EQ(l0.numClusters, 4);
    FusionMode l1 = fusionForTable(400 * 1024);
    EXPECT_EQ(l1.banksPerCluster, 16);
    EXPECT_EQ(l1.numClusters, 2);
    FusionMode l2 = fusionForTable(900 * 1024);
    EXPECT_EQ(l2.banksPerCluster, 32);
    EXPECT_EQ(l2.numClusters, 1);
    EXPECT_EQ(l0.totalBanks(), l2.totalBanks());
}

TEST(FusionTest, DisabledFusionSpillsLargeTables)
{
    FusionMode m = fusionForTable(512 * 1024, 256 * 1024, 4, 8,
                                  /*fusion_enabled=*/false);
    EXPECT_EQ(m.level, FusionLevel::DramSpill);
    // Small tables still run standalone.
    EXPECT_EQ(fusionForTable(100 * 1024, 256 * 1024, 4, 8, false).level,
              FusionLevel::Level0);
}

// ---- Calibration defaults --------------------------------------------

TEST(CalibrationTest, DefaultsAreOrdered)
{
    TraceCalibration c = TraceCalibration::defaults();
    // FRM always beats in-order issue; narrower FRMs fill easier.
    EXPECT_GT(c.frmUtil8, c.inOrderUtil8);
    EXPECT_GT(c.frmUtil16, c.inOrderUtil16);
    EXPECT_GT(c.frmUtil32, c.inOrderUtil32);
    EXPECT_GE(c.frmUtil8, c.frmUtil16);
    EXPECT_GE(c.frmUtil16, c.frmUtil32);
    EXPECT_GT(c.bumMergeRatio, 0.3);
    EXPECT_LT(c.bumMergeRatio, 0.9);
    EXPECT_DOUBLE_EQ(c.utilization(8, true), c.frmUtil8);
    EXPECT_DOUBLE_EQ(c.utilization(32, false), c.inOrderUtil32);
}

// ---- Top-level accelerator -------------------------------------------

class AcceleratorFixture : public ::testing::Test
{
  protected:
    AcceleratorFixture()
        : calib(TraceCalibration::defaults()),
          accel(AcceleratorConfig{}, calib),
          i3dWorkload(makeInstant3dWorkload("NeRF-Synthetic",
                                            instant3dShippedConfig())),
          ngpWorkload(makeNgpWorkload("NeRF-Synthetic"))
    {}

    TraceCalibration calib;
    Accelerator accel;
    TrainingWorkload i3dWorkload;
    TrainingWorkload ngpWorkload;
};

TEST_F(AcceleratorFixture, InstantReconstructionAround1Point6Seconds)
{
    // The headline claim: 1.6 s per scene on NeRF-Synthetic.
    double t = accel.trainingSeconds(i3dWorkload);
    EXPECT_GT(t, 1.0);
    EXPECT_LT(t, 2.2);
    // "Instant" means < 5 seconds (Sec 1).
    EXPECT_LT(t, 5.0);
}

TEST_F(AcceleratorFixture, SpeedupOverXavierNxAround45x)
{
    double xavier = xavierNx().trainingSeconds(ngpWorkload);
    double ours = accel.trainingSeconds(i3dWorkload);
    double speedup = xavier / ours;
    EXPECT_GT(speedup, 35.0);
    EXPECT_LT(speedup, 60.0);
}

TEST_F(AcceleratorFixture, Fig18FrmAndBumAblation)
{
    AcceleratorConfig none, frm_only;
    none.enableFrm = false;
    none.enableBum = false;
    frm_only.enableBum = false;

    double t_none = Accelerator(none, calib).trainingSeconds(i3dWorkload);
    double t_frm =
        Accelerator(frm_only, calib).trainingSeconds(i3dWorkload);
    double t_full = accel.trainingSeconds(i3dWorkload);

    // Paper: FRM alone trims ~31%, FRM+BUM ~68.6%.
    double frm_cut = 1.0 - t_frm / t_none;
    double full_cut = 1.0 - t_full / t_none;
    EXPECT_GT(frm_cut, 0.15);
    EXPECT_LT(frm_cut, 0.45);
    EXPECT_GT(full_cut, 0.55);
    EXPECT_LT(full_cut, 0.92);
    EXPECT_GT(full_cut, frm_cut);
}

TEST_F(AcceleratorFixture, FusionRequiredForLargeTables)
{
    AcceleratorConfig no_fusion;
    no_fusion.enableFusion = false;
    double t_no = Accelerator(no_fusion, calib)
                      .trainingSeconds(i3dWorkload);
    double t_full = accel.trainingSeconds(i3dWorkload);
    // Fig 17: scheduling contributes a ~5x factor.
    EXPECT_GT(t_no / t_full, 3.0);
    EXPECT_LT(t_no / t_full, 12.0);
}

TEST_F(AcceleratorFixture, NgpWorkloadSpillsWithoutDecomposition)
{
    // The undecomposed 2 MB NGP table cannot be SRAM-resident: the
    // co-design matters (Tab 5).
    auto res = accel.simulate(ngpWorkload);
    bool spilled = false;
    for (auto mode : res.branches[0].levelModes)
        spilled |= mode == FusionLevel::DramSpill;
    EXPECT_TRUE(spilled);
    EXPECT_GT(accel.trainingSeconds(ngpWorkload),
              2.0 * accel.trainingSeconds(i3dWorkload));
}

TEST_F(AcceleratorFixture, Tab5NormalizedRuntimeAround2Percent)
{
    for (const auto &ds : workloadDatasetNames()) {
        double ngp = xavierNx().trainingSeconds(makeNgpWorkload(ds));
        double ours = accel.trainingSeconds(
            makeInstant3dWorkload(ds, instant3dShippedConfig()));
        double normalized = ours / ngp;
        EXPECT_GT(normalized, 0.01) << ds; // paper: 2.3-3.4%
        EXPECT_LT(normalized, 0.06) << ds;
    }
}

TEST_F(AcceleratorFixture, BreakdownSumsToTotal)
{
    auto res = accel.simulate(i3dWorkload);
    EXPECT_NEAR(res.breakdown.totalPerIter(), res.secondsPerIter, 1e-9);
    EXPECT_NEAR(res.totalSeconds,
                res.secondsPerIter * i3dWorkload.iterations, 1e-6);
}

TEST_F(AcceleratorFixture, ColorBranchUsesLevel0DensityUsesLevel2)
{
    auto res = accel.simulate(i3dWorkload);
    ASSERT_EQ(res.branches.size(), 2u);
    // Density branch (1 MB fine tables) needs Level 2 fusion.
    bool density_l2 = false;
    for (auto m : res.branches[0].levelModes)
        density_l2 |= m == FusionLevel::Level2;
    EXPECT_TRUE(density_l2);
    // Color branch (256 KB) never needs fusion.
    for (auto m : res.branches[1].levelModes)
        EXPECT_EQ(m, FusionLevel::Level0);
}

// ---- Energy & area (Fig 15) ------------------------------------------

TEST_F(AcceleratorFixture, Fig15PowerNear1Point9W)
{
    EnergyModel em;
    auto res = accel.simulate(i3dWorkload);
    EnergyReport er = em.report(res, i3dWorkload.iterations);
    EXPECT_GT(er.avgPowerWatts, 1.4);
    EXPECT_LT(er.avgPowerWatts, 2.4);
    // Fig 15: grid cores ~81% of energy, MLP ~19%.
    EXPECT_GT(er.gridFraction, 0.70);
    EXPECT_LT(er.gridFraction, 0.90);
    EXPECT_NEAR(er.gridFraction + er.mlpFraction, 1.0, 1e-9);
}

TEST_F(AcceleratorFixture, Fig15AreaNear6Point8mm2)
{
    AreaReport ar = areaReport(AcceleratorConfig{});
    EXPECT_GT(ar.totalMm2, 6.0);
    EXPECT_LT(ar.totalMm2, 7.6);
    // Fig 15: area 78% grid cores / 22% MLP.
    EXPECT_NEAR(ar.gridFraction(), 0.78, 0.06);
    EXPECT_NEAR(ar.mlpFraction(), 0.22, 0.06);
}

TEST_F(AcceleratorFixture, Fig16EnergyEfficiencyRatios)
{
    EnergyModel em;
    auto res = accel.simulate(i3dWorkload);
    double our_j = em.report(res, i3dWorkload.iterations).totalJoules;
    // Paper: 1198x / 1089x / 479x over Nano / TX2 / Xavier NX.
    double nano = jetsonNano().trainingEnergyJoules(ngpWorkload) / our_j;
    double tx2 = jetsonTx2().trainingEnergyJoules(ngpWorkload) / our_j;
    double xavier = xavierNx().trainingEnergyJoules(ngpWorkload) / our_j;
    EXPECT_NEAR(nano, 1198.0, 350.0);
    EXPECT_NEAR(tx2, 1089.0, 300.0);
    EXPECT_NEAR(xavier, 479.0, 150.0);
    EXPECT_GT(nano, tx2);
    EXPECT_GT(tx2, xavier);
}

TEST_F(AcceleratorFixture, AreaScalesWithConfiguration)
{
    AcceleratorConfig big;
    big.sramBytesPerCore *= 2;
    EXPECT_GT(areaReport(big).totalMm2,
              areaReport(AcceleratorConfig{}).totalMm2);
    AcceleratorConfig small;
    small.mlp.systolicRows = 16;
    small.mlp.systolicCols = 16;
    EXPECT_LT(areaReport(small).mlpMm2,
              areaReport(AcceleratorConfig{}).mlpMm2);
}

TEST_F(AcceleratorFixture, SramCapacityMatchesTab3)
{
    // 4 cores x 256 KB = 1 MB of hash-table SRAM (plus buffers = the
    // 1.5 MB of Tab 3, accounted in the area model).
    EXPECT_EQ(accel.totalSramBytes(), 1024u * 1024u);
}

} // namespace
} // namespace instant3d
