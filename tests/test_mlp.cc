/**
 * @file
 * Unit tests for the small MLP: shape handling, forward determinism,
 * gradient checks against finite differences (weights and inputs), the
 * sigmoid output head, and Adam convergence on a toy problem.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hh"
#include "nerf/adam.hh"
#include "nerf/mlp.hh"

namespace instant3d {
namespace {

TEST(MlpTest, ShapesAndMacs)
{
    Mlp mlp({4, 16, 3}, OutputActivation::None, 1);
    EXPECT_EQ(mlp.inputDim(), 4);
    EXPECT_EQ(mlp.outputDim(), 3);
    EXPECT_EQ(mlp.numLayers(), 2);
    EXPECT_EQ(mlp.macsPerForward(), 4u * 16 + 16 * 3);
}

TEST(MlpTest, DeterministicInit)
{
    Mlp a({8, 8, 2}, OutputActivation::None, 99);
    Mlp b({8, 8, 2}, OutputActivation::None, 99);
    ASSERT_EQ(a.params().size(), b.params().size());
    for (size_t i = 0; i < a.params().size(); i++)
        EXPECT_FLOAT_EQ(a.params()[i], b.params()[i]);
}

TEST(MlpTest, SigmoidOutputInUnitInterval)
{
    Mlp mlp({6, 12, 3}, OutputActivation::Sigmoid, 3);
    Rng r(4);
    for (int trial = 0; trial < 50; trial++) {
        std::vector<float> in(6), out(3);
        for (auto &v : in)
            v = r.nextFloat(-10.0f, 10.0f);
        mlp.forward(in.data(), out.data());
        for (float o : out) {
            // Sigmoid can saturate to exactly 0/1 in float arithmetic.
            EXPECT_GE(o, 0.0f);
            EXPECT_LE(o, 1.0f);
        }
    }
}

/** Shared finite-difference weight-gradient check. */
void
checkWeightGradients(OutputActivation act)
{
    Mlp mlp({3, 8, 2}, act, 17);
    Rng r(20);
    std::vector<float> in = {0.4f, -0.2f, 0.9f};
    std::vector<float> out(2), d_out = {1.0f, -0.5f};

    MlpRecord rec;
    mlp.forward(in.data(), out.data(), &rec);
    mlp.zeroGrad();
    mlp.backward(rec, d_out.data(), nullptr);
    std::vector<float> analytic = mlp.grads();

    const float eps = 1e-3f;
    // Sample a spread of weight indices.
    for (size_t i = 0; i < mlp.params().size();
         i += std::max<size_t>(1, mlp.params().size() / 17)) {
        float saved = mlp.params()[i];
        mlp.params()[i] = saved + eps;
        std::vector<float> hi(2);
        mlp.forward(in.data(), hi.data());
        mlp.params()[i] = saved - eps;
        std::vector<float> lo(2);
        mlp.forward(in.data(), lo.data());
        mlp.params()[i] = saved;

        float num = 0.0f;
        for (int o = 0; o < 2; o++)
            num += d_out[o] * (hi[o] - lo[o]) / (2.0f * eps);
        EXPECT_NEAR(analytic[i], num, 5e-3f) << "param " << i;
    }
}

TEST(MlpTest, WeightGradientsLinearHead)
{
    checkWeightGradients(OutputActivation::None);
}

TEST(MlpTest, WeightGradientsSigmoidHead)
{
    checkWeightGradients(OutputActivation::Sigmoid);
}

TEST(MlpTest, InputGradientsMatchFiniteDifference)
{
    Mlp mlp({5, 10, 10, 2}, OutputActivation::None, 23);
    std::vector<float> in = {0.1f, 0.7f, -0.4f, 0.2f, -0.8f};
    std::vector<float> out(2), d_out = {0.3f, 1.2f};

    MlpRecord rec;
    mlp.forward(in.data(), out.data(), &rec);
    mlp.zeroGrad();
    std::vector<float> d_in(5);
    mlp.backward(rec, d_out.data(), d_in.data());

    const float eps = 1e-3f;
    for (int i = 0; i < 5; i++) {
        std::vector<float> in_hi = in, in_lo = in;
        in_hi[i] += eps;
        in_lo[i] -= eps;
        std::vector<float> hi(2), lo(2);
        mlp.forward(in_hi.data(), hi.data());
        mlp.forward(in_lo.data(), lo.data());
        float num = 0.0f;
        for (int o = 0; o < 2; o++)
            num += d_out[o] * (hi[o] - lo[o]) / (2.0f * eps);
        EXPECT_NEAR(d_in[i], num, 5e-3f) << "input " << i;
    }
}

TEST(MlpTest, GradientsAccumulateAcrossSamples)
{
    Mlp mlp({2, 4, 1}, OutputActivation::None, 5);
    std::vector<float> in1 = {1.0f, 0.0f}, in2 = {0.0f, 1.0f};
    float out, d_out = 1.0f;

    MlpRecord r1, r2;
    mlp.forward(in1.data(), &out, &r1);
    mlp.forward(in2.data(), &out, &r2);

    mlp.zeroGrad();
    mlp.backward(r1, &d_out, nullptr);
    std::vector<float> g1 = mlp.grads();
    mlp.backward(r2, &d_out, nullptr);
    std::vector<float> g12 = mlp.grads();

    mlp.zeroGrad();
    mlp.backward(r2, &d_out, nullptr);
    std::vector<float> g2 = mlp.grads();

    for (size_t i = 0; i < g1.size(); i++)
        EXPECT_NEAR(g12[i], g1[i] + g2[i], 1e-6f);
}

TEST(MlpTest, AdamFitsToyFunction)
{
    // Regression of y = sin(2x) on [-1, 1]: loss must drop markedly.
    Mlp mlp({1, 16, 16, 1}, OutputActivation::None, 31);
    Adam adam(mlp.params().size(), {.lr = 3e-3f});
    Rng r(77);

    auto batch_loss = [&](bool train) {
        double loss = 0.0;
        const int batch = 32;
        for (int b = 0; b < batch; b++) {
            float x = r.nextFloat(-1.0f, 1.0f);
            float target = std::sin(2.0f * x);
            float y;
            MlpRecord rec;
            mlp.forward(&x, &y, train ? &rec : nullptr);
            float err = y - target;
            loss += err * err;
            if (train) {
                float d = 2.0f * err / batch;
                mlp.backward(rec, &d, nullptr);
            }
        }
        return loss / batch;
    };

    double first = batch_loss(false);
    for (int it = 0; it < 400; it++) {
        mlp.zeroGrad();
        batch_loss(true);
        adam.step(mlp.params(), mlp.grads());
    }
    mlp.zeroGrad();
    double last = batch_loss(false);
    EXPECT_LT(last, first * 0.1);
    EXPECT_LT(last, 0.02);
}

TEST(AdamTest, ConvergesOnQuadratic)
{
    // Minimize (p - 3)^2 for a handful of parameters.
    std::vector<float> params = {0.0f, -5.0f, 10.0f};
    std::vector<float> grads(3);
    Adam adam(3, {.lr = 0.05f});
    for (int it = 0; it < 600; it++) {
        for (int i = 0; i < 3; i++)
            grads[i] = 2.0f * (params[i] - 3.0f);
        adam.step(params, grads);
    }
    for (float p : params)
        EXPECT_NEAR(p, 3.0f, 0.05f);
    EXPECT_EQ(adam.stepCount(), 600u);
}

TEST(AdamTest, LearningRateZeroFreezesParams)
{
    std::vector<float> params = {1.0f, 2.0f};
    std::vector<float> grads = {5.0f, -5.0f};
    Adam adam(2, {.lr = 0.0f});
    adam.step(params, grads);
    EXPECT_FLOAT_EQ(params[0], 1.0f);
    EXPECT_FLOAT_EQ(params[1], 2.0f);
}

} // namespace
} // namespace instant3d
