/**
 * @file
 * Direct unit tests of the TileCache LRU: eviction order, the
 * generation-keyed staleness contract, eager scene invalidation, and
 * the zero-capacity (disabled) edge. The cache is elsewhere only
 * exercised end-to-end through the RenderService; these tests pin its
 * semantics in isolation.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/tile_cache.hh"

namespace instant3d {
namespace {

TileKey
makeKey(const std::string &scene, uint64_t gen, int x,
        QualityTier tier = QualityTier::Full)
{
    CameraSpec cam;
    cam.eye = {1.0f, 0.0f, 0.0f};
    cam.target = {0.0f, 0.0f, 0.0f};
    cam.width = 32;
    cam.height = 32;

    TileKey key;
    key.sceneId = scene;
    key.generation = gen;
    key.camera = cam.quantized();
    key.cameraKey = cam.hashKey();
    key.x = x;
    key.y = 0;
    key.w = 4;
    key.h = 4;
    key.quality = tier;
    return key;
}

std::vector<Vec3>
tilePixels(float v)
{
    return std::vector<Vec3>(16, Vec3{v, v, v});
}

TEST(TileCacheTest, LookupHitReturnsInsertedPixelsBitExact)
{
    TileCache cache(4);
    TileKey key = makeKey("lego", 1, 0);
    cache.insert(key, tilePixels(0.25f));

    std::vector<Vec3> out;
    ASSERT_TRUE(cache.lookup(key, out));
    ASSERT_EQ(out.size(), 16u);
    for (const Vec3 &p : out) {
        EXPECT_EQ(p.x, 0.25f);
        EXPECT_EQ(p.y, 0.25f);
        EXPECT_EQ(p.z, 0.25f);
    }

    TileCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 0u);
    EXPECT_EQ(stats.insertions, 1u);
    EXPECT_EQ(stats.entries, 1u);
}

TEST(TileCacheTest, EvictionDropsLeastRecentlyUsed)
{
    TileCache cache(3);
    for (int x = 0; x < 3; x++)
        cache.insert(makeKey("lego", 1, x), tilePixels(0.1f * x));

    // Touch tile 0 so tile 1 becomes the LRU entry, then overflow.
    std::vector<Vec3> out;
    ASSERT_TRUE(cache.lookup(makeKey("lego", 1, 0), out));
    cache.insert(makeKey("lego", 1, 3), tilePixels(0.9f));

    EXPECT_TRUE(cache.lookup(makeKey("lego", 1, 0), out));
    EXPECT_FALSE(cache.lookup(makeKey("lego", 1, 1), out)); // evicted
    EXPECT_TRUE(cache.lookup(makeKey("lego", 1, 2), out));
    EXPECT_TRUE(cache.lookup(makeKey("lego", 1, 3), out));
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.stats().entries, 3u);
}

TEST(TileCacheTest, DuplicateInsertRefreshesRecencyWithoutGrowing)
{
    TileCache cache(2);
    cache.insert(makeKey("lego", 1, 0), tilePixels(0.1f));
    cache.insert(makeKey("lego", 1, 1), tilePixels(0.2f));

    // Re-inserting tile 0 must refresh its recency (not add an entry),
    // so the subsequent overflow evicts tile 1.
    cache.insert(makeKey("lego", 1, 0), tilePixels(0.1f));
    EXPECT_EQ(cache.stats().entries, 2u);
    cache.insert(makeKey("lego", 1, 2), tilePixels(0.3f));

    std::vector<Vec3> out;
    EXPECT_TRUE(cache.lookup(makeKey("lego", 1, 0), out));
    EXPECT_FALSE(cache.lookup(makeKey("lego", 1, 1), out));
    EXPECT_TRUE(cache.lookup(makeKey("lego", 1, 2), out));
}

TEST(TileCacheTest, GenerationChangeMakesOldEntriesUnreachable)
{
    TileCache cache(8);
    cache.insert(makeKey("lego", 1, 0), tilePixels(0.5f));

    // The re-registered scene's new generation misses: stale pixels
    // can never serve the new model.
    std::vector<Vec3> out;
    EXPECT_FALSE(cache.lookup(makeKey("lego", 2, 0), out));
    // The old generation's entry still exists until aged out.
    EXPECT_TRUE(cache.lookup(makeKey("lego", 1, 0), out));
}

TEST(TileCacheTest, InvalidateSceneDropsAllGenerationsOfThatSceneOnly)
{
    TileCache cache(8);
    cache.insert(makeKey("lego", 1, 0), tilePixels(0.1f));
    cache.insert(makeKey("lego", 2, 0), tilePixels(0.2f));
    cache.insert(makeKey("materials", 1, 0), tilePixels(0.3f));

    cache.invalidateScene("lego");

    std::vector<Vec3> out;
    EXPECT_FALSE(cache.lookup(makeKey("lego", 1, 0), out));
    EXPECT_FALSE(cache.lookup(makeKey("lego", 2, 0), out));
    EXPECT_TRUE(cache.lookup(makeKey("materials", 1, 0), out));
    EXPECT_EQ(cache.stats().invalidated, 2u);
    EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(TileCacheTest, DistinctTiersAreDistinctEntries)
{
    TileCache cache(8);
    cache.insert(makeKey("lego", 1, 0, QualityTier::Full),
                 tilePixels(0.1f));
    cache.insert(makeKey("lego", 1, 0, QualityTier::Preview),
                 tilePixels(0.2f));
    EXPECT_EQ(cache.stats().entries, 2u);

    std::vector<Vec3> out;
    ASSERT_TRUE(
        cache.lookup(makeKey("lego", 1, 0, QualityTier::Preview), out));
    EXPECT_EQ(out[0].x, 0.2f);
}

TEST(TileCacheTest, ZeroCapacityDisablesCaching)
{
    TileCache cache(0);
    cache.insert(makeKey("lego", 1, 0), tilePixels(0.5f));

    std::vector<Vec3> out;
    EXPECT_FALSE(cache.lookup(makeKey("lego", 1, 0), out));
    TileCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.entries, 0u);
    EXPECT_EQ(stats.insertions, 0u);
    EXPECT_EQ(stats.capacity, 0u);
}

TEST(TileCacheTest, ClearEmptiesEverything)
{
    TileCache cache(8);
    cache.insert(makeKey("lego", 1, 0), tilePixels(0.1f));
    cache.insert(makeKey("materials", 1, 0), tilePixels(0.2f));
    cache.clear();

    std::vector<Vec3> out;
    EXPECT_FALSE(cache.lookup(makeKey("lego", 1, 0), out));
    EXPECT_EQ(cache.stats().entries, 0u);
}

// ---- Byte budget ---------------------------------------------------------

/** A tile of `pixels` Vec3s (tiles vary in size across roi/tier). */
std::vector<Vec3>
sizedTile(size_t pixels, float v)
{
    return std::vector<Vec3>(pixels, Vec3{v, v, v});
}

TEST(TileCacheTest, ByteBudgetEvictsLruBeforeCountCap)
{
    // Count cap 100 (never binding); budget fits three 16-pixel tiles.
    TileCache cache(100, 3 * 16 * sizeof(Vec3));
    for (int x = 0; x < 3; x++)
        cache.insert(makeKey("lego", 1, x), sizedTile(16, 0.1f * x));

    TileCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.entries, 3u);
    EXPECT_EQ(stats.bytesHeld, 3 * 16 * sizeof(Vec3));
    EXPECT_EQ(stats.maxBytes, 3 * 16 * sizeof(Vec3));

    // Touch tile 0, then overflow by bytes: tile 1 (LRU) must go even
    // though the entry count is far under capacity.
    std::vector<Vec3> out;
    ASSERT_TRUE(cache.lookup(makeKey("lego", 1, 0), out));
    cache.insert(makeKey("lego", 1, 3), sizedTile(16, 0.9f));

    EXPECT_TRUE(cache.lookup(makeKey("lego", 1, 0), out));
    EXPECT_FALSE(cache.lookup(makeKey("lego", 1, 1), out));
    EXPECT_TRUE(cache.lookup(makeKey("lego", 1, 2), out));
    EXPECT_TRUE(cache.lookup(makeKey("lego", 1, 3), out));
    stats = cache.stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.bytesHeld, 3 * 16 * sizeof(Vec3));
}

TEST(TileCacheTest, OneLargeTileEvictsManySmall)
{
    TileCache cache(100, 64 * sizeof(Vec3));
    for (int x = 0; x < 4; x++)
        cache.insert(makeKey("lego", 1, x), sizedTile(16, 0.1f));
    EXPECT_EQ(cache.stats().entries, 4u);

    // A 48-pixel tile displaces three 16-pixel tiles at once.
    cache.insert(makeKey("lego", 1, 9), sizedTile(48, 0.9f));
    TileCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.evictions, 3u);
    EXPECT_LE(stats.bytesHeld, stats.maxBytes);
}

TEST(TileCacheTest, OversizedLoneTileIsNotRetained)
{
    TileCache cache(100, 16 * sizeof(Vec3));
    cache.insert(makeKey("lego", 1, 0), sizedTile(32, 0.5f));

    // Holding one tile past the byte budget would defeat the budget:
    // the over-sized tile evicts itself immediately.
    std::vector<Vec3> out;
    EXPECT_FALSE(cache.lookup(makeKey("lego", 1, 0), out));
    TileCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.entries, 0u);
    EXPECT_EQ(stats.bytesHeld, 0u);
    EXPECT_EQ(stats.evictions, 1u);
}

TEST(TileCacheTest, BytesHeldTracksInvalidationAndClear)
{
    TileCache cache(100, 0); // no byte bound; accounting still runs
    cache.insert(makeKey("lego", 1, 0), sizedTile(16, 0.1f));
    cache.insert(makeKey("lego", 2, 0), sizedTile(32, 0.2f));
    cache.insert(makeKey("materials", 1, 0), sizedTile(8, 0.3f));
    EXPECT_EQ(cache.stats().bytesHeld, (16 + 32 + 8) * sizeof(Vec3));

    cache.invalidateScene("lego");
    EXPECT_EQ(cache.stats().bytesHeld, 8 * sizeof(Vec3));

    cache.clear();
    EXPECT_EQ(cache.stats().bytesHeld, 0u);
}

TEST(TileCacheTest, CountCapStillBindsUnderLooseByteBudget)
{
    // Byte budget is generous; the entry-count cap stays the binding
    // secondary bound.
    TileCache cache(2, 1 << 20);
    for (int x = 0; x < 3; x++)
        cache.insert(makeKey("lego", 1, x), sizedTile(16, 0.1f * x));

    std::vector<Vec3> out;
    EXPECT_FALSE(cache.lookup(makeKey("lego", 1, 0), out));
    EXPECT_TRUE(cache.lookup(makeKey("lego", 1, 1), out));
    EXPECT_TRUE(cache.lookup(makeKey("lego", 1, 2), out));
    EXPECT_EQ(cache.stats().entries, 2u);
    EXPECT_EQ(cache.stats().bytesHeld, 2 * 16 * sizeof(Vec3));
}

TEST(TileCacheTest, HitAndMissCountersAreBucketedPerTier)
{
    TileCache cache(8);
    cache.insert(makeKey("lego", 1, 0, QualityTier::Full),
                 tilePixels(0.1f));
    cache.insert(makeKey("lego", 1, 0, QualityTier::Preview),
                 tilePixels(0.2f));

    std::vector<Vec3> out;
    EXPECT_TRUE(
        cache.lookup(makeKey("lego", 1, 0, QualityTier::Full), out));
    EXPECT_TRUE(
        cache.lookup(makeKey("lego", 1, 0, QualityTier::Preview), out));
    EXPECT_TRUE(
        cache.lookup(makeKey("lego", 1, 0, QualityTier::Preview), out));
    EXPECT_FALSE(
        cache.lookup(makeKey("lego", 1, 1, QualityTier::Half), out));
    EXPECT_FALSE(
        cache.lookup(makeKey("lego", 1, 1, QualityTier::Preview), out));

    TileCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.tierHits[static_cast<int>(QualityTier::Full)], 1u);
    EXPECT_EQ(stats.tierHits[static_cast<int>(QualityTier::Half)], 0u);
    EXPECT_EQ(stats.tierHits[static_cast<int>(QualityTier::Preview)],
              2u);
    EXPECT_EQ(stats.tierMisses[static_cast<int>(QualityTier::Half)],
              1u);
    EXPECT_EQ(stats.tierMisses[static_cast<int>(QualityTier::Preview)],
              1u);
    // The per-tier buckets partition the aggregates exactly.
    EXPECT_EQ(stats.tierHits[0] + stats.tierHits[1] + stats.tierHits[2],
              stats.hits);
    EXPECT_EQ(stats.tierMisses[0] + stats.tierMisses[1] +
                  stats.tierMisses[2],
              stats.misses);
}

TEST(TileCacheTest, PrefetchHitAndWasteAccounting)
{
    TileCache cache(2);
    // Prefetched entry that demand later hits: one prefetch hit,
    // counted once however many times it is re-read.
    cache.insert(makeKey("lego", 1, 0), tilePixels(0.1f), true);
    std::vector<Vec3> out;
    EXPECT_TRUE(cache.lookup(makeKey("lego", 1, 0), out));
    EXPECT_TRUE(cache.lookup(makeKey("lego", 1, 0), out));
    EXPECT_EQ(cache.stats().prefetchInsertions, 1u);
    EXPECT_EQ(cache.stats().prefetchHits, 1u);
    EXPECT_EQ(cache.stats().prefetchWasted, 0u);

    // Two more prefetched entries overflow the hit one out; evicting
    // an entry that *was* hit is not waste, evicting an unhit one is.
    cache.insert(makeKey("lego", 1, 1), tilePixels(0.2f), true);
    cache.insert(makeKey("lego", 1, 2), tilePixels(0.3f), true);
    EXPECT_EQ(cache.stats().prefetchWasted, 0u); // Hit entry evicted.
    cache.insert(makeKey("lego", 1, 3), tilePixels(0.4f), true);
    EXPECT_EQ(cache.stats().prefetchWasted, 1u); // Unhit tile 1 gone.

    // Invalidation and clear() count unhit prefetched entries too.
    cache.invalidateScene("lego");
    EXPECT_EQ(cache.stats().prefetchWasted, 3u);

    // Demand insertions never enter the prefetch accounting.
    cache.insert(makeKey("lego", 1, 4), tilePixels(0.5f));
    cache.clear();
    TileCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.prefetchInsertions, 4u);
    EXPECT_EQ(stats.prefetchWasted, 3u);
}

TEST(TileCacheTest, CoarseLatticeCollapsesNearbyCamerasExactly)
{
    // Satellite contract: quantized() and hashKey() derive from the
    // same lattice constant, so two cameras in one coarse cell agree
    // on both the snapped spec and the key, and cameras one lattice
    // step apart agree on neither.
    CameraSpec a;
    a.eye = {1.25f, 0.5f, 1.0f};
    a.target = {0.5f, 0.5f, 0.5f};
    a.width = 64;
    a.height = 64;

    const float lattice = 256.0f; // Cell width 1/256.
    CameraSpec b = a;
    b.eye.x += 0.4f / lattice; // Same cell: under half a step away.
    CameraSpec c = a;
    c.eye.x += 1.0f / lattice; // Exactly one step: different cell.

    EXPECT_EQ(a.hashKey(lattice), b.hashKey(lattice));
    EXPECT_NE(a.hashKey(lattice), c.hashKey(lattice));
    EXPECT_EQ(a.quantized(lattice).eye.x, b.quantized(lattice).eye.x);
    EXPECT_NE(a.quantized(lattice).eye.x, c.quantized(lattice).eye.x);

    // On the fine 1/4096 lattice the same three cameras all differ --
    // coarsening is strictly a per-tier opt-in.
    EXPECT_NE(a.hashKey(), b.hashKey());
    EXPECT_NE(a.hashKey(), c.hashKey());

    // And the default-lattice key is unchanged from hashing with the
    // full lattice passed explicitly (the hardcoded-4096 fix).
    EXPECT_EQ(a.hashKey(), a.hashKey(fullCameraLattice));
}

} // namespace
} // namespace instant3d
