#!/usr/bin/env bash
# Build Release, run the training-throughput bench for a few seconds,
# and leave BENCH_train_throughput.json at the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j --target bench_train_throughput

# No explicit iteration count: the bench auto-calibrates to ~1.5 s of
# scalar-baseline work, so the whole run stays in the seconds range.
./build/bench_train_throughput BENCH_train_throughput.json

echo "bench_smoke: wrote $(pwd)/BENCH_train_throughput.json"
# Summary for CI logs: cores seen by the bench, the converged
# occupancy fraction, and the per-mode speedups, so flat thread
# scaling on a 1-core runner is visibly a host limitation rather than
# a regression.
grep '"hardware_concurrency"' BENCH_train_throughput.json
grep -o '"occupied_fraction": [0-9.]*' BENCH_train_throughput.json | sort -u
sed -n '/"speedups"/,/}/p' BENCH_train_throughput.json

# Regression gate: the sparse touched-entry optimizer must not be
# slower than the dense full-table-scan baseline on the converged-grid
# workload (steady-state value is ~2-3x on the CI container; 1.0 is
# the hard floor).
sparse=$(grep -o '"sparse_vs_dense_optimizer": [0-9.]*' \
             BENCH_train_throughput.json | awk '{print $2}')
awk -v s="$sparse" 'BEGIN {
    if (s == "" || s + 0 < 1.0) {
        print "bench_smoke: FAIL sparse_vs_dense_optimizer=" s " < 1.0"
        exit 1
    }
    print "bench_smoke: sparse_vs_dense_optimizer=" s " (>= 1.0 ok)"
}'
