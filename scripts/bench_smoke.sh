#!/usr/bin/env bash
# Build Release, run the training-throughput bench for a few seconds,
# and leave BENCH_train_throughput.json at the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j --target bench_train_throughput bench_serve

# No explicit iteration count: the bench auto-calibrates to ~1.5 s of
# scalar-baseline work, so the whole run stays in the seconds range.
./build/bench_train_throughput BENCH_train_throughput.json

echo "bench_smoke: wrote $(pwd)/BENCH_train_throughput.json"
# Summary for CI logs: cores seen by the bench, the converged
# occupancy fraction, and the per-mode speedups, so flat thread
# scaling on a 1-core runner is visibly a host limitation rather than
# a regression.
grep '"hardware_concurrency"' BENCH_train_throughput.json
grep -o '"occupied_fraction": [0-9.]*' BENCH_train_throughput.json | sort -u
sed -n '/"speedups"/,/}/p' BENCH_train_throughput.json

# Regression gate: the sparse touched-entry optimizer must not be
# slower than the dense full-table-scan baseline on the converged-grid
# workload (steady-state value is ~2-3x on the CI container; 1.0 is
# the hard floor).
sparse=$(grep -o '"sparse_vs_dense_optimizer": [0-9.]*' \
             BENCH_train_throughput.json | awk '{print $2}')
awk -v s="$sparse" 'BEGIN {
    if (s == "" || s + 0 < 1.0) {
        print "bench_smoke: FAIL sparse_vs_dense_optimizer=" s " < 1.0"
        exit 1
    }
    print "bench_smoke: sparse_vs_dense_optimizer=" s " (>= 1.0 ok)"
}'

# Regression gate: the simd kernel backend must not lose to the scalar
# reference on the MLP-panel probe (measured ~2.5x on the SSE2
# baseline build; 1.0 is the hard floor). threaded_sweep_vs_serial is
# recorded but not gated -- a 1-core runner has nothing to fan out to.
simd=$(grep -o '"simd_vs_scalar_kernels": [0-9.]*' \
           BENCH_train_throughput.json | awk '{print $2}')
awk -v s="$simd" 'BEGIN {
    if (s == "" || s + 0 < 1.0) {
        print "bench_smoke: FAIL simd_vs_scalar_kernels=" s " < 1.0"
        exit 1
    }
    print "bench_smoke: simd_vs_scalar_kernels=" s " (>= 1.0 ok)"
}'
grep -o '"threaded_sweep_vs_serial": [0-9.]*' BENCH_train_throughput.json
# Anchored to the block's own 2-space close so the nested one-line
# objects inside don't end the range early.
sed -n '/"kernel_backends"/,/^  },/p' BENCH_train_throughput.json

# Render-serving bench: trains two tiny scenes, measures the 1-worker
# served throughput against the single-client renderImage baseline,
# and records open-loop latency percentiles per quality tier.
./build/bench_serve BENCH_serve_latency.json

echo "bench_smoke: wrote $(pwd)/BENCH_serve_latency.json"
grep -o '"p50": [0-9.]*' BENCH_serve_latency.json | head -4
grep -o '"rejected": [0-9]*' BENCH_serve_latency.json

# Regression gate: cross-request tile batching must keep the served
# pipeline within 10% of the single-client renderImage rate at one
# worker (measured ~1.0x on the CI container; 0.9 is the hard floor --
# below that the serving layer is eating its batching win in
# scheduling overhead).
served=$(grep -o '"served_vs_renderImage_1t": [0-9.]*' \
             BENCH_serve_latency.json | awk '{print $2}')
awk -v s="$served" 'BEGIN {
    if (s == "" || s + 0 < 0.9) {
        print "bench_smoke: FAIL served_vs_renderImage_1t=" s " < 0.9"
        exit 1
    }
    print "bench_smoke: served_vs_renderImage_1t=" s " (>= 0.9 ok)"
}'

# Regression gate: with QoS degradation enabled, the 96-request burst
# against a 64-tile admission window must complete at least 90% of
# requests at *some* tier instead of shedding them (measured 1.0 on
# the CI container -- the degraded cap admits the whole burst).
degraded=$(grep -o '"overload_degraded_completion": [0-9.]*' \
               BENCH_serve_latency.json | awk '{print $2}')
awk -v s="$degraded" 'BEGIN {
    if (s == "" || s + 0 < 0.9) {
        print "bench_smoke: FAIL overload_degraded_completion=" s " < 0.9"
        exit 1
    }
    print "bench_smoke: overload_degraded_completion=" s " (>= 0.9 ok)"
}'
sed -n '/"overload_degraded"/,/^  },/p' BENCH_serve_latency.json

# Regression gate: the sharded fleet must complete at least 90% of the
# open-loop requests while a deterministic fault schedule crashes one
# of its shards mid-run (measured 1.0 on the CI container -- with R=2
# and failover every request survives a single shard loss).
fleet=$(grep -o '"fleet_kill_completion": [0-9.]*' \
            BENCH_serve_latency.json | awk '{print $2}')
awk -v s="$fleet" 'BEGIN {
    if (s == "" || s + 0 < 0.9) {
        print "bench_smoke: FAIL fleet_kill_completion=" s " < 0.9"
        exit 1
    }
    print "bench_smoke: fleet_kill_completion=" s " (>= 0.9 ok)"
}'
sed -n '/"fleet"/,/^  },/p' BENCH_serve_latency.json

# Regression gate: with a scene working set 8x the registry byte
# budget (120 scenes, room for 15), the eviction + cold-start-retry
# machinery must still complete at least 90% of the offered open-loop
# mix (measured 1.0 on the CI container). cold_start_p99_ms is
# recorded alongside for trend-watching, not gated -- it tracks the
# retry-round cadence more than the loader.
capacity=$(grep -o '"capacity_completion": [0-9.]*' \
               BENCH_serve_latency.json | awk '{print $2}')
awk -v s="$capacity" 'BEGIN {
    if (s == "" || s + 0 < 0.9) {
        print "bench_smoke: FAIL capacity_completion=" s " < 0.9"
        exit 1
    }
    print "bench_smoke: capacity_completion=" s " (>= 0.9 ok)"
}'
grep -o '"cold_start_p99_ms": [0-9.]*' BENCH_serve_latency.json
sed -n '/"capacity"/,/^  },/p' BENCH_serve_latency.json

# Regression gate: the orbiting Preview viewer on the coarse 1/64
# camera lattice must serve at least half its tiles from the
# cross-frame tile cache (measured ~0.7 on the CI container --
# consecutive frames collapse onto shared lattice cells and the
# speculative prefetcher fills the next cell during frame gaps).
# prefetch_hit_rate / prefetch_waste are recorded for trend-watching,
# not gated -- closed-loop pacing decides how much speculation lands.
orbit=$(grep -o '"orbit_preview_hit_rate": [0-9.]*' \
            BENCH_serve_latency.json | awk '{print $2}')
awk -v s="$orbit" 'BEGIN {
    if (s == "" || s + 0 < 0.5) {
        print "bench_smoke: FAIL orbit_preview_hit_rate=" s " < 0.5"
        exit 1
    }
    print "bench_smoke: orbit_preview_hit_rate=" s " (>= 0.5 ok)"
}'
grep -o '"prefetch_hit_rate": [0-9.]*' BENCH_serve_latency.json
grep -o '"prefetch_waste": [0-9]*' BENCH_serve_latency.json
sed -n '/"orbit"/,/^  },/p' BENCH_serve_latency.json

# Regression gate: the telemetry layer (metrics + span tracing) must
# cost at most 2% of closed-loop serving throughput against the same
# path with recording disabled (measured ~0% on the CI container --
# the disarmed/armed delta is a handful of relaxed atomics and a few
# span appends per request). The block also records the mergeable
# histogram's p50/p95/p99 against the exact tracker; within_one_bucket
# asserts the documented fidelity bound.
grep -q '"telemetry"' BENCH_serve_latency.json || {
    echo "bench_smoke: FAIL telemetry block missing"
    exit 1
}
telem=$(grep -o '"telemetry_overhead": [0-9.]*' \
            BENCH_serve_latency.json | awk '{print $2}')
awk -v s="$telem" 'BEGIN {
    if (s == "" || s + 0 > 0.02) {
        print "bench_smoke: FAIL telemetry_overhead=" s " > 0.02"
        exit 1
    }
    print "bench_smoke: telemetry_overhead=" s " (<= 0.02 ok)"
}'
grep -q '"within_one_bucket": true' BENCH_serve_latency.json || {
    echo "bench_smoke: FAIL histogram percentiles out of bucket bound"
    exit 1
}
sed -n '/"telemetry"/,/^  },/p' BENCH_serve_latency.json
