/**
 * @file
 * KernelBackend base implementations: the scalar reference loops,
 * moved verbatim from their original call sites (Mlp, HashEncoding,
 * Adam, NerfField, VolumeRenderer). These define the bit-exact
 * behaviour every other backend is measured against, so edits here
 * change the repo's determinism contract -- don't.
 */

#include "kernels/kernel_backend.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "nerf/renderer.hh"

namespace instant3d {

void
KernelBackend::mlpForwardPanel(const float *in, int n, int n_in,
                               int n_out, const float *w, const float *b,
                               float *out, Workspace &ws) const
{
    (void)ws;
    for (int s = 0; s < n; s++) {
        const float *x = in + static_cast<size_t>(s) * n_in;
        float *y = out + static_cast<size_t>(s) * n_out;
        for (int o = 0; o < n_out; o++) {
            float acc = b[o];
            const float *wrow = w + static_cast<size_t>(o) * n_in;
            for (int i = 0; i < n_in; i++)
                acc += wrow[i] * x[i];
            y[o] = acc;
        }
    }
}

void
KernelBackend::reluPanel(float *x, size_t count) const
{
    for (size_t i = 0; i < count; i++)
        x[i] = std::max(x[i], 0.0f);
}

void
KernelBackend::sigmoidPanel(float *x, size_t count) const
{
    for (size_t i = 0; i < count; i++)
        x[i] = 1.0f / (1.0f + std::exp(-x[i]));
}

void
KernelBackend::mlpBackwardPanel(const float *delta, int n_out, int n_in,
                                const float *act, const float *w,
                                float *gw, float *gb,
                                float *prev_delta) const
{
    std::fill(prev_delta, prev_delta + n_in, 0.0f);
    for (int o = 0; o < n_out; o++) {
        float d = delta[o];
        if (d == 0.0f)
            continue;
        float *gwrow = gw + static_cast<size_t>(o) * n_in;
        const float *wrow = w + static_cast<size_t>(o) * n_in;
        for (int i = 0; i < n_in; i++) {
            gwrow[i] += d * act[i];
            prev_delta[i] += d * wrow[i];
        }
        gb[o] += d;
    }
}

void
KernelBackend::hashInterpBatch(const float *table, const uint32_t *addrs,
                               const float *weights, int n, int levels,
                               int fpe, uint32_t table_size,
                               float *out) const
{
    const size_t slots = static_cast<size_t>(levels) * 8;
    const size_t dim = static_cast<size_t>(levels) * fpe;
    for (int s = 0; s < n; s++) {
        const uint32_t *a = addrs + static_cast<size_t>(s) * slots;
        const float *wgt = weights + static_cast<size_t>(s) * slots;
        float *o = out + static_cast<size_t>(s) * dim;
        for (int l = 0; l < levels; l++) {
            for (int f = 0; f < fpe; f++)
                o[l * fpe + f] = 0.0f;
            for (int corner = 0; corner < 8; corner++) {
                const size_t slot = static_cast<size_t>(l) * 8 + corner;
                const float wc = wgt[slot];
                const size_t off =
                    (static_cast<size_t>(l) * table_size + a[slot]) *
                    fpe;
                for (int f = 0; f < fpe; f++)
                    o[l * fpe + f] += wc * table[off + f];
            }
        }
    }
}

void
KernelBackend::hashScatterSample(const uint32_t *addrs,
                                 const float *weights, const float *d_out,
                                 int levels, int fpe, uint32_t table_size,
                                 float *grad,
                                 std::vector<uint32_t> *touched) const
{
    for (int l = 0; l < levels; l++) {
        for (int corner = 0; corner < 8; corner++) {
            const size_t slot = static_cast<size_t>(l) * 8 + corner;
            const float wc = weights[slot];
            const size_t off =
                (static_cast<size_t>(l) * table_size + addrs[slot]) *
                fpe;
            for (int f = 0; f < fpe; f++)
                grad[off + f] += wc * d_out[l * fpe + f];
            if (touched)
                touched->push_back(static_cast<uint32_t>(off));
        }
    }
}

void
KernelBackend::adamDenseRange(float *params, const float *grads, float *m,
                              float *v, size_t begin, size_t end,
                              const AdamKernelParams &kp) const
{
    for (size_t i = begin; i < end; i++) {
        float g = grads[i] + kp.l2Reg * params[i];
        m[i] = kp.beta1 * m[i] + (1.0f - kp.beta1) * g;
        v[i] = kp.beta2 * v[i] + (1.0f - kp.beta2) * g * g;
        float mhat = m[i] / kp.bc1;
        float vhat = v[i] / kp.bc2;
        params[i] -= kp.lr * mhat / (std::sqrt(vhat) + kp.epsilon);
    }
}

void
KernelBackend::adamDenseStep(float *params, const float *grads, float *m,
                             float *v, size_t n,
                             const AdamKernelParams &kp) const
{
    adamDenseRange(params, grads, m, v, 0, n, kp);
}

void
KernelBackend::sweepRanges(size_t total, size_t grain,
                           const std::function<void(size_t, size_t)> &fn)
    const
{
    (void)grain;
    if (total > 0)
        fn(0, total);
}

void
KernelBackend::reduceDense(float *dst, float *src, size_t n) const
{
    for (size_t i = 0; i < n; i++) {
        dst[i] += src[i];
        src[i] = 0.0f;
    }
}

void
KernelBackend::compositeStream(const RaySpan *spans, int num_rays,
                               const FieldSample *fs, const float *ts,
                               float dt, const Vec3 &background,
                               float t_far, float early_stop,
                               RayResult *results, float *alpha,
                               float *trans, Vec3 *rgb,
                               float *final_trans) const
{
    const bool record = alpha != nullptr;
    for (int r = 0; r < num_rays; r++) {
        const RaySpan span = spans[r];
        RayResult out;
        float transmittance = 1.0f;
        for (int k = span.offset; k < span.offset + span.count; k++) {
            float a = 1.0f - std::exp(-fs[k].sigma * dt);
            float weight = transmittance * a;
            out.color += fs[k].rgb * weight;
            out.depth += ts[k] * weight;

            if (record) {
                alpha[k] = a;
                trans[k] = transmittance;
                rgb[k] = fs[k].rgb;
            }

            transmittance *= 1.0f - a;
            if (!record && transmittance < early_stop)
                break;
        }
        out.color += background * transmittance;
        out.depth += t_far * transmittance;
        out.opacity = 1.0f - transmittance;
        if (final_trans)
            final_trans[r] = transmittance;
        results[r] = out;
    }
}

void
KernelBackend::compositeBackward(const RaySpan *spans, int num_rays,
                                 const Vec3 *d_colors, float dt,
                                 const Vec3 &background,
                                 float skip_threshold, const float *alpha,
                                 const float *trans, const Vec3 *rgb,
                                 const float *final_trans, float *d_sigma,
                                 Vec3 *d_rgb, uint8_t *skip) const
{
    for (int r = 0; r < num_rays; r++) {
        const RaySpan span = spans[r];
        const Vec3 &d_color = d_colors[r];
        float suffix = background.dot(d_color) * final_trans[r];
        for (int k = span.offset + span.count - 1; k >= span.offset;
             k--) {
            float weight = trans[k] * alpha[k];
            float cg = rgb[k].dot(d_color);

            d_sigma[k] =
                dt * ((1.0f - alpha[k]) * trans[k] * cg - suffix);
            d_rgb[k] = d_color * weight;
            float mag = std::fabs(d_sigma[k]) + std::fabs(d_rgb[k].x) +
                        std::fabs(d_rgb[k].y) + std::fabs(d_rgb[k].z);
            skip[k] = mag > skip_threshold ? 0 : 1;

            suffix += weight * cg;
        }
    }
}

namespace {

/** The reference backend is the base class with a name. */
class ScalarRefBackend final : public KernelBackend
{
  public:
    const char *name() const override { return "scalar_ref"; }
};

} // namespace

const KernelBackend &
scalarRefBackend()
{
    static const ScalarRefBackend backend;
    return backend;
}

std::unique_ptr<KernelBackend>
makeScalarRefBackend()
{
    return std::make_unique<ScalarRefBackend>();
}

std::unique_ptr<KernelBackend>
createKernelBackend(std::string name, ThreadPool *pool)
{
    if (const char *env = std::getenv("INSTANT3D_KERNEL_BACKEND");
        env && *env)
        name = env;
    if (name.empty() || name == "auto") {
        // Both sides of this choice are bit-identical to the
        // historical hot path; threaded_sweep only pays off (and is
        // only selected) when the pool actually has workers to use.
        name = (pool && pool->threadCount() > 1) ? "threaded_sweep"
                                                 : "scalar_ref";
    }
    if (name == "scalar_ref")
        return makeScalarRefBackend();
    if (name == "simd")
        return makeSimdBackend();
    if (name == "threaded_sweep")
        return makeThreadedSweepBackend(pool);
    fatal("unknown kernel backend '" + name +
          "' (expected auto, scalar_ref, simd, or threaded_sweep)");
}

} // namespace instant3d
