/**
 * @file
 * The "simd" kernel backend: order-preserving vectorizable loops.
 *
 * Strategy: never vectorize *inside* a floating-point reduction --
 * restructure so the vector lanes are independent accumulator chains
 * and each chain performs exactly the scalar sequence of operations.
 *
 *  - Forward panel: transpose the weight matrix once per call, then
 *    run input-outer / output-inner saxpy loops. Each output's
 *    accumulator receives b[o], then w[o][i] * x[i] in ascending i --
 *    exactly the scalar_ref chain -- while the inner loop is a stride-1
 *    multiply-add with no cross-lane dependence.
 *  - Backward panel: for each nonzero delta[o], the i-loops
 *    (gw[o][i] += d * act[i], prev_delta[i] += d * w[o][i]) are
 *    already lane-independent; per-element accumulation order over o
 *    is preserved by keeping the o-loop outer and scalar.
 *  - Dense Adam: per-parameter updates are independent chains of
 *    exact operations (mul/add/div/sqrt are all correctly rounded in
 *    both scalar and vector form), so the plain loop vectorizes
 *    bit-identically.
 *
 * This file is compiled with autovectorization forced on (see
 * CMakeLists: -O3 -fopenmp-simd) and picks up whatever ISA the build
 * targets -- SSE2 at the x86-64 baseline, AVX2+FMA under
 * -march=x86-64-v3, NEON on aarch64. In FMA-enabled builds the
 * compiler may contract mul+add pairs here and not in the scalar
 * loops (or vice versa); that is the one source of divergence, and
 * why the parity contract is 0 ULP without FMA and a small relative
 * tolerance with it (tests/test_kernel_backends.cc).
 */

#include "kernels/kernel_backend.hh"

#include <algorithm>
#include <cmath>

namespace instant3d {

namespace {

class SimdBackend final : public KernelBackend
{
  public:
    const char *name() const override { return "simd"; }

    void
    mlpForwardPanel(const float *in, int n, int n_in, int n_out,
                    const float *w, const float *b, float *out,
                    Workspace &ws) const override
    {
        // Transposed weights: wt[i][o], contiguous in o so the inner
        // saxpy loop is stride-1. One transpose per panel call,
        // amortized over the n samples of the batch.
        float *wt = ws.alloc<float>(static_cast<size_t>(n_in) * n_out);
        for (int o = 0; o < n_out; o++)
            for (int i = 0; i < n_in; i++)
                wt[static_cast<size_t>(i) * n_out + o] =
                    w[static_cast<size_t>(o) * n_in + i];

        for (int s = 0; s < n; s++) {
            const float *x = in + static_cast<size_t>(s) * n_in;
            float *y = out + static_cast<size_t>(s) * n_out;
            std::copy(b, b + n_out, y);
            for (int i = 0; i < n_in; i++) {
                const float xi = x[i];
                const float *wr = wt + static_cast<size_t>(i) * n_out;
#pragma omp simd
                for (int o = 0; o < n_out; o++)
                    y[o] += wr[o] * xi;
            }
        }
    }

    void
    reluPanel(float *x, size_t count) const override
    {
#pragma omp simd
        for (size_t i = 0; i < count; i++)
            x[i] = std::max(x[i], 0.0f);
    }

    void
    mlpBackwardPanel(const float *delta, int n_out, int n_in,
                     const float *act, const float *w, float *gw,
                     float *gb, float *prev_delta) const override
    {
        std::fill(prev_delta, prev_delta + n_in, 0.0f);
        for (int o = 0; o < n_out; o++) {
            const float d = delta[o];
            if (d == 0.0f)
                continue;
            float *gwrow = gw + static_cast<size_t>(o) * n_in;
            const float *wrow = w + static_cast<size_t>(o) * n_in;
#pragma omp simd
            for (int i = 0; i < n_in; i++) {
                gwrow[i] += d * act[i];
                prev_delta[i] += d * wrow[i];
            }
            gb[o] += d;
        }
    }

    void
    hashInterpBatch(const float *table, const uint32_t *addrs,
                    const float *weights, int n, int levels, int fpe,
                    uint32_t table_size, float *out) const override
    {
        // The per-feature chains (8 corner adds each) are short and
        // gather-addressed; vectorizing across the fpe features keeps
        // each chain in scalar order. With the typical fpe = 2 the
        // win is modest -- this kernel is here for the seam, the MLP
        // panels and Adam sweeps carry the speedup.
        const size_t slots = static_cast<size_t>(levels) * 8;
        const size_t dim = static_cast<size_t>(levels) * fpe;
        for (int s = 0; s < n; s++) {
            const uint32_t *a = addrs + static_cast<size_t>(s) * slots;
            const float *wgt = weights + static_cast<size_t>(s) * slots;
            float *o = out + static_cast<size_t>(s) * dim;
            for (int l = 0; l < levels; l++) {
                float *ol = o + static_cast<size_t>(l) * fpe;
                std::fill(ol, ol + fpe, 0.0f);
                for (int corner = 0; corner < 8; corner++) {
                    const size_t slot =
                        static_cast<size_t>(l) * 8 + corner;
                    const float wc = wgt[slot];
                    const float *entry =
                        table + (static_cast<size_t>(l) * table_size +
                                 a[slot]) *
                                    fpe;
#pragma omp simd
                    for (int f = 0; f < fpe; f++)
                        ol[f] += wc * entry[f];
                }
            }
        }
    }

    void
    adamDenseRange(float *params, const float *grads, float *m, float *v,
                   size_t begin, size_t end,
                   const AdamKernelParams &kp) const override
    {
#pragma omp simd
        for (size_t i = begin; i < end; i++) {
            float g = grads[i] + kp.l2Reg * params[i];
            m[i] = kp.beta1 * m[i] + (1.0f - kp.beta1) * g;
            v[i] = kp.beta2 * v[i] + (1.0f - kp.beta2) * g * g;
            float mhat = m[i] / kp.bc1;
            float vhat = v[i] / kp.bc2;
            params[i] -= kp.lr * mhat / (std::sqrt(vhat) + kp.epsilon);
        }
    }

    void
    reduceDense(float *dst, float *src, size_t n) const override
    {
#pragma omp simd
        for (size_t i = 0; i < n; i++) {
            dst[i] += src[i];
            src[i] = 0.0f;
        }
    }
};

} // namespace

std::unique_ptr<KernelBackend>
makeSimdBackend()
{
    return std::make_unique<SimdBackend>();
}

} // namespace instant3d
