/**
 * @file
 * The "threaded_sweep" kernel backend: scalar kernels plus optimizer
 * sweeps (the sparse-Adam bitmap sweep and the dense Adam scan)
 * executed over the trainer's ThreadPool in fixed-grain ranges.
 *
 * Per-entry Adam is independent -- every write (params, moments,
 * staleness stamps, bitmap words) is range-local and the only shared
 * accumulation is an integer counter -- so any range partition is
 * bit-identical to the serial sweep by construction; no new
 * determinism contract is needed. sweepRanges() is only ever called
 * from the trainer's main thread (optimizer steps run after the
 * per-chunk parallelFor has completed), which respects the pool's
 * no-reentrancy rule.
 */

#include "kernels/kernel_backend.hh"

#include <algorithm>

#include "common/thread_pool.hh"

namespace instant3d {

namespace {

class ThreadedSweepBackend final : public KernelBackend
{
  public:
    explicit ThreadedSweepBackend(ThreadPool *pool) : pool(pool) {}

    const char *name() const override { return "threaded_sweep"; }

    void
    sweepRanges(size_t total, size_t grain,
                const std::function<void(size_t, size_t)> &fn)
        const override
    {
        if (total == 0)
            return;
        if (grain == 0)
            grain = 1;
        // Small sweeps (one range) and serial pools skip the pool
        // round-trip entirely.
        if (!pool || pool->threadCount() <= 1 || total <= grain) {
            fn(0, total);
            return;
        }
        const size_t blocks = (total + grain - 1) / grain;
        pool->parallelFor(static_cast<int>(blocks), [&](int blk, int) {
            const size_t begin = static_cast<size_t>(blk) * grain;
            fn(begin, std::min(begin + grain, total));
        });
    }

    void
    adamDenseStep(float *params, const float *grads, float *m, float *v,
                  size_t n, const AdamKernelParams &kp) const override
    {
        // Grain sized so MLP-scale groups stay a single serial range
        // and only table-scale scans fan out.
        sweepRanges(n, 16384, [&](size_t begin, size_t end) {
            adamDenseRange(params, grads, m, v, begin, end, kp);
        });
    }

  private:
    ThreadPool *pool;
};

} // namespace

std::unique_ptr<KernelBackend>
makeThreadedSweepBackend(ThreadPool *pool)
{
    return std::make_unique<ThreadedSweepBackend>(pool);
}

} // namespace instant3d
