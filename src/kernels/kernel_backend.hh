/**
 * @file
 * Pluggable CPU kernel backends for the batched hot path.
 *
 * Every batched hot-path kernel -- the GEMM-style MLP forward/backward
 * panels, the hash-grid interpolation gather and gradient scatter, the
 * dense/sparse Adam sweeps, the shard reduction, and the volume-render
 * stream composite -- dispatches through one KernelBackend instance, so
 * adding a vectorized or parallel variant is a single-file backend
 * instead of a fork of every call site. Three backends ship:
 *
 *  - scalar_ref ("scalar_ref"): the pre-refactor reference loops,
 *    verbatim. Bit-identical to the historical hot path by
 *    construction; the determinism contract (README "Hot-path
 *    architecture") is stated against this backend.
 *
 *  - simd ("simd"): the same kernels restructured so that every
 *    floating-point accumulation chain keeps the scalar order while
 *    the loops vectorize across *independent* lanes (outputs of a
 *    panel, parameters of an Adam step) -- e.g. the forward panel
 *    transposes the weight matrix once and runs saxpy-style
 *    input-outer / output-inner loops. Compiled with autovectorization
 *    forced on (see CMakeLists), it uses whatever ISA the build
 *    targets (SSE2 baseline, AVX2+FMA under -march=x86-64-v3, NEON on
 *    aarch64). Because reduction order is preserved, results are
 *    bit-identical to scalar_ref whenever scalar and vector code round
 *    identically per operation -- true in builds without FMA
 *    contraction (no -mfma); with FMA available the compiler may
 *    contract mul+add pairs differently in the two backends, so parity
 *    is guaranteed only to a small relative tolerance (see
 *    tests/test_kernel_backends.cc, which asserts 0 ULP in non-FMA
 *    builds and the documented tolerance otherwise).
 *
 *  - threaded_sweep ("threaded_sweep"): scalar kernels plus the
 *    optimizer sweeps (the sparse-Adam bitmap sweep and the dense Adam
 *    scan) layered over the trainer's ThreadPool in fixed-size ranges.
 *    Per-entry Adam is independent -- no cross-entry reduction exists
 *    -- so any range partition yields bit-identical results to the
 *    serial sweep by construction.
 *
 * Selection: TrainConfig::kernelBackend names the backend; the
 * INSTANT3D_KERNEL_BACKEND environment variable overrides it. "auto"
 * resolves to threaded_sweep when the trainer's pool has more than one
 * worker and scalar_ref otherwise (both sides of that choice are
 * bit-identical to the historical path). The resolved name is recorded
 * in BENCH_train_throughput.json.
 */

#ifndef INSTANT3D_KERNELS_KERNEL_BACKEND_HH
#define INSTANT3D_KERNELS_KERNEL_BACKEND_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/vec3.hh"
#include "common/workspace.hh"

namespace instant3d {

class ThreadPool;
struct RaySpan;
struct FieldSample;
struct RayResult;

/** Adam hyper-parameters + current-step bias corrections, flattened
 *  for the dense-step kernel. */
struct AdamKernelParams
{
    float lr = 0.0f;
    float beta1 = 0.0f;
    float beta2 = 0.0f;
    float epsilon = 0.0f;
    float l2Reg = 0.0f;
    float bc1 = 0.0f; //!< 1 - beta1^t of the step being applied.
    float bc2 = 0.0f; //!< 1 - beta2^t.
};

/**
 * One CPU kernel-backend: a vtable of the batched hot-path kernels.
 * The base-class implementations are the scalar reference loops
 * (moved verbatim from the original call sites); derived backends
 * override the kernels they accelerate and inherit the rest.
 */
class KernelBackend
{
  public:
    virtual ~KernelBackend() = default;

    /** Stable backend name, recorded in bench JSON. */
    virtual const char *name() const = 0;

    // ------------------------------------------------- MLP panels
    /**
     * GEMM-style forward panel of one layer: for each of n samples,
     * out[s][o] = b[o] + sum_i w[o][i] * in[s][i] (pre-activation).
     * w is row-major [n_out x n_in]. Scratch comes from ws. Each
     * (s, o) accumulator chain must run in ascending-i scalar order.
     */
    virtual void mlpForwardPanel(const float *in, int n, int n_in,
                                 int n_out, const float *w,
                                 const float *b, float *out,
                                 Workspace &ws) const;

    /** In-place ReLU over a panel. */
    virtual void reluPanel(float *x, size_t count) const;

    /** In-place sigmoid over a panel. */
    virtual void sigmoidPanel(float *x, size_t count) const;

    /**
     * Backward panel of one layer for one sample: for each output o
     * with delta[o] != 0, accumulate gw[o][i] += delta[o] * act[i],
     * gb[o] += delta[o], and prev_delta[i] += delta[o] * w[o][i].
     * prev_delta (length n_in) is zeroed first; its per-i accumulation
     * order over o must stay ascending-o.
     */
    virtual void mlpBackwardPanel(const float *delta, int n_out,
                                  int n_in, const float *act,
                                  const float *w, float *gw, float *gb,
                                  float *prev_delta) const;

    // ------------------------------------------- hash-grid kernels
    /**
     * Trilinear interpolation gather over a batch of n points whose
     * corner addresses/weights were precomputed (level-major, 8
     * corners per level, point-major across the batch):
     * out[s][l*fpe + f] = sum_corner w * table[(l*T + addr)*fpe + f],
     * corners ascending. out is [n x levels*fpe].
     */
    virtual void hashInterpBatch(const float *table,
                                 const uint32_t *addrs,
                                 const float *weights, int n,
                                 int levels, int fpe,
                                 uint32_t table_size, float *out) const;

    /**
     * Gradient scatter of one sample's recorded corner slice into a
     * gradient table: grad[(l*T + addr)*fpe + f] += w * d_out[l*fpe+f]
     * per corner in (level, corner) ascending order, appending each
     * entry's base offset to `touched` when non-null.
     */
    virtual void hashScatterSample(const uint32_t *addrs,
                                   const float *weights,
                                   const float *d_out, int levels,
                                   int fpe, uint32_t table_size,
                                   float *grad,
                                   std::vector<uint32_t> *touched) const;

    // ------------------------------------------- optimizer sweeps
    /**
     * Dense Adam update of the parameter range [begin, end): the
     * per-parameter moment update and bias-corrected step, in
     * ascending order within the range.
     */
    virtual void adamDenseRange(float *params, const float *grads,
                                float *m, float *v, size_t begin,
                                size_t end,
                                const AdamKernelParams &kp) const;

    /** One full dense Adam step over n parameters. */
    virtual void adamDenseStep(float *params, const float *grads,
                               float *m, float *v, size_t n,
                               const AdamKernelParams &kp) const;

    /**
     * Execute fn over a partition of [0, total) into contiguous
     * ranges of at most `grain` items. Ranges may run concurrently
     * (threaded_sweep) or as one serial call; callers must only use
     * this for sweeps whose per-item work is independent (range-local
     * plus order-independent shared accumulation), so every partition
     * is bit-identical. The sparse-Adam bitmap sweep and the dense
     * Adam scan are the intended users.
     */
    virtual void sweepRanges(
        size_t total, size_t grain,
        const std::function<void(size_t, size_t)> &fn) const;

    // ------------------------------------------- shard reduction
    /** dst[i] += src[i]; src[i] = 0 -- the dense gradient-shard
     *  reduction (no cross-element reduction, freely vectorizable). */
    virtual void reduceDense(float *dst, float *src, size_t n) const;

    // ------------------------------------- renderer stream composite
    /**
     * Per-ray alpha compositing over a compacted sample stream:
     * results[r] from the field samples fs of span r. When the record
     * arrays (alpha/trans/rgb/final_trans) are non-null they are
     * filled for a later compositeBackward and early-stop is disabled;
     * otherwise compositing stops below early_stop transmittance.
     */
    virtual void compositeStream(const RaySpan *spans, int num_rays,
                                 const FieldSample *fs, const float *ts,
                                 float dt, const Vec3 &background,
                                 float t_far, float early_stop,
                                 RayResult *results, float *alpha,
                                 float *trans, Vec3 *rgb,
                                 float *final_trans) const;

    /**
     * Backward of the compositing equation: the per-ray suffix
     * recursion (descending samples within each span) producing each
     * sample's (d_sigma, d_rgb) and the below-threshold skip flags.
     */
    virtual void compositeBackward(const RaySpan *spans, int num_rays,
                                   const Vec3 *d_colors, float dt,
                                   const Vec3 &background,
                                   float skip_threshold,
                                   const float *alpha,
                                   const float *trans, const Vec3 *rgb,
                                   const float *final_trans,
                                   float *d_sigma, Vec3 *d_rgb,
                                   uint8_t *skip) const;
};

/**
 * The process-wide scalar reference backend: what every kernel class
 * uses until a trainer (or test) installs a specific backend.
 */
const KernelBackend &scalarRefBackend();

/** The null-fallback rule shared by every dispatching class: a null
 *  backend pointer means the scalar reference. */
inline const KernelBackend &
resolveBackend(const KernelBackend *backend)
{
    return backend ? *backend : scalarRefBackend();
}

/** Construct one backend directly (tests, micro-benches). */
std::unique_ptr<KernelBackend> makeScalarRefBackend();
std::unique_ptr<KernelBackend> makeSimdBackend();
/** pool may be null: sweeps then run serially. */
std::unique_ptr<KernelBackend> makeThreadedSweepBackend(ThreadPool *pool);

/**
 * Resolve a backend by configured name. The INSTANT3D_KERNEL_BACKEND
 * environment variable overrides `name`; "" and "auto" resolve to
 * threaded_sweep when `pool` has more than one worker, scalar_ref
 * otherwise. Fatal on unknown names.
 */
std::unique_ptr<KernelBackend> createKernelBackend(std::string name,
                                                   ThreadPool *pool);

} // namespace instant3d

#endif // INSTANT3D_KERNELS_KERNEL_BACKEND_HH
