/**
 * @file
 * The Instant-3D algorithm configuration (paper Sec 3): the decomposed
 * color/density embedding grids with per-branch grid-size ratios
 * (S_D : S_C, Sec 3.2) and update-frequency ratios (F_D : F_C, Sec 3.3),
 * plus the Sec 5.1 grid-search helper used to select the shipped
 * configuration (S_D : S_C = 1 : 0.25, F_D : F_C = 1 : 0.5).
 */

#ifndef INSTANT3D_CORE_INSTANT3D_CONFIG_HH
#define INSTANT3D_CORE_INSTANT3D_CONFIG_HH

#include <string>
#include <vector>

#include "nerf/field.hh"
#include "nerf/trainer.hh"

namespace instant3d {

/**
 * The algorithm-level knobs of Instant-3D. Ratios are expressed
 * relative to the density branch (the paper always keeps the density
 * branch at full size/frequency in the shipped configuration).
 */
struct Instant3dConfig
{
    /** S_C / S_D: color-grid size relative to the density grid. */
    float colorSizeRatio = 0.25f;

    /** S_D scale relative to the baseline branch share (1 = full). */
    float densitySizeRatio = 1.0f;

    /** F_C / F_D as a rate: 0.5 means color updates every 2nd iter. */
    float colorUpdateRate = 0.5f;

    /** Density update rate (1 = every iteration). */
    float densityUpdateRate = 1.0f;

    /**
     * Update period in iterations from a rate F (Sec 4.6: "skipping one
     * back-propagation process every 1/(1-F) iteration"); a rate of
     * 1/k maps to a period of k iterations.
     */
    static int periodFromRate(float rate);

    /** Human-readable "S_D:S_C = 1:x, F_D:F_C = 1:y" string. */
    std::string label() const;

    /**
     * Build the field configuration for this algorithm config from a
     * baseline (Instant-NGP) grid: the baseline table is decomposed
     * into two per-branch tables, each half the baseline share, then
     * scaled by the per-branch size ratios.
     */
    FieldConfig makeFieldConfig(const HashEncodingConfig &ngp_base) const;

    /** Fill a TrainConfig's update periods from the rates. */
    void applyTo(TrainConfig &train) const;
};

/**
 * The Sec 5.1 grid-search space over color ratios
 * {1:0.125, 1:0.25, 1:0.5, 1:0.75} crossed with update rates.
 */
std::vector<Instant3dConfig> instant3dGridSearchSpace();

/** The configuration shipped in the paper (1:0.25 and 1:0.5). */
Instant3dConfig instant3dShippedConfig();

} // namespace instant3d

#endif // INSTANT3D_CORE_INSTANT3D_CONFIG_HH
