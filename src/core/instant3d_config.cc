#include "core/instant3d_config.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/table.hh"

namespace instant3d {

int
Instant3dConfig::periodFromRate(float rate)
{
    fatalIf(rate <= 0.0f || rate > 1.0f,
            "update rate must be in (0, 1]");
    return std::max(1, static_cast<int>(std::lround(1.0f / rate)));
}

std::string
Instant3dConfig::label() const
{
    return "S_D:S_C = " + formatDouble(densitySizeRatio, 2) + ":" +
           formatDouble(colorSizeRatio, 2) + ", F_D:F_C = " +
           formatDouble(densityUpdateRate, 1) + ":" +
           formatDouble(colorUpdateRate, 1);
}

FieldConfig
Instant3dConfig::makeFieldConfig(const HashEncodingConfig &ngp_base) const
{
    FieldConfig cfg;
    cfg.mode = FieldMode::Decoupled;
    // The baseline grid decomposes into two branch tables of half the
    // baseline share each (total storage preserved at 1:1), then each
    // branch scales by its own size ratio.
    cfg.densityGrid = ngp_base.scaledBy(0.5f * densitySizeRatio);
    cfg.colorGrid = ngp_base.scaledBy(0.5f * colorSizeRatio);
    return cfg;
}

void
Instant3dConfig::applyTo(TrainConfig &train) const
{
    train.densityUpdatePeriod = periodFromRate(densityUpdateRate);
    train.colorUpdatePeriod = periodFromRate(colorUpdateRate);
}

std::vector<Instant3dConfig>
instant3dGridSearchSpace()
{
    std::vector<Instant3dConfig> space;
    for (float s : {0.125f, 0.25f, 0.5f, 0.75f}) {
        for (float f : {0.5f, 1.0f}) {
            Instant3dConfig cfg;
            cfg.colorSizeRatio = s;
            cfg.colorUpdateRate = f;
            space.push_back(cfg);
        }
    }
    return space;
}

Instant3dConfig
instant3dShippedConfig()
{
    Instant3dConfig cfg;
    cfg.colorSizeRatio = 0.25f;  // S_D : S_C = 1 : 0.25
    cfg.colorUpdateRate = 0.5f;  // F_D : F_C = 1 : 0.5
    return cfg;
}

} // namespace instant3d
