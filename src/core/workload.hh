/**
 * @file
 * Paper-scale workload accounting.
 *
 * A TrainingWorkload captures, per training iteration, the operation and
 * byte counts of every step of the six-step pipeline (Sec 2.1) for a
 * given algorithm configuration and dataset. Device models (src/devices)
 * and the accelerator simulator (src/accel) consume these counts to
 * produce runtimes; nothing downstream hard-codes a runtime.
 *
 * Scale anchors (documented in DESIGN.md): ~200,000 embedding-grid
 * point queries per iteration (Sec 1), Instant-NGP per-level hash table
 * of 2^19 entries x 2 fp16 features, and the Instant-3D decomposition
 * into a 2^18-entry density table (1 MB) and a 2^16-entry color table
 * (256 KB) (Sec 5.1).
 */

#ifndef INSTANT3D_CORE_WORKLOAD_HH
#define INSTANT3D_CORE_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/instant3d_config.hh"

namespace instant3d {

/** Pipeline phases used for runtime breakdowns (Fig 4 / Fig 7). */
enum class PipelineStep
{
    SampleAndRays,  //!< Steps 1-2 on the host.
    GridInterpFF,   //!< Step 3-1 feed-forward.
    MlpFF,          //!< Step 3-2 feed-forward.
    RenderAndLoss,  //!< Steps 4-5.
    MlpBP,          //!< Back-propagation through the small MLPs.
    GridInterpBP,   //!< Back-propagation into the embedding grid.
};

/** Display name of a pipeline step. */
std::string pipelineStepName(PipelineStep step);

/** All steps in pipeline order. */
const std::vector<PipelineStep> &allPipelineSteps();

/** One embedding-grid branch of the workload. */
struct BranchWorkload
{
    std::string name;          //!< "unified", "density", or "color".
    double costShare = 1.0;    //!< Fraction of baseline grid payload.
    uint64_t tableEntries = 0; //!< Per-level hash-table entries.
    int levels = 16;           //!< Multiresolution levels L.
    int featuresPerEntry = 2;  //!< F.
    double updateRate = 1.0;   //!< Fraction of iterations with BP.

    /** Per-level hash-table bytes (fp16 features). */
    uint64_t tableBytes() const
    { return tableEntries * featuresPerEntry * 2; }

    /** Grid accesses per queried point (8 vertices per level). */
    uint64_t accessesPerPoint() const
    { return static_cast<uint64_t>(levels) * 8; }
};

/** Full per-iteration workload of one training configuration. */
struct TrainingWorkload
{
    std::string datasetName;
    std::string algorithmName; //!< "Instant-NGP" or "Instant-3D".
    double pointsPerIter = 2.0e5;
    int iterations = 256;
    std::vector<BranchWorkload> branches;
    double mlpMacsPerPoint = 13500.0; //!< Step 3-2 MACs per point.
    double hostFlopsPerIter = 4.0e6;  //!< Steps 1-2 and 4-5 combined.

    /** Feed-forward grid bytes touched per iteration, all branches. */
    double gridReadBytesPerIter() const;

    /** BP grid bytes written per iteration (update-rate weighted). */
    double gridWriteBytesPerIter() const;

    /** Step 3-2 flops per iteration (forward). */
    double mlpFlopsPerIterFF() const
    { return 2.0 * mlpMacsPerPoint * pointsPerIter; }

    /** Step 3-2 back-propagation flops per iteration (~2x forward). */
    double mlpFlopsPerIterBP() const { return 2.0 * mlpFlopsPerIterFF(); }
};

/** Names of the three evaluation datasets. */
const std::vector<std::string> &workloadDatasetNames();

/**
 * The Instant-NGP baseline workload on a dataset: one unified grid of
 * 2^19 entries/level. Dataset scale factors reflect scene volume and
 * view counts (SILVR largest, ScanNet middle).
 */
TrainingWorkload makeNgpWorkload(const std::string &dataset);

/**
 * The Instant-3D algorithm workload: the unified grid decomposes into
 * density/color branches (half the baseline payload each), scaled by
 * the config's size ratios, with per-branch update rates.
 */
TrainingWorkload makeInstant3dWorkload(const std::string &dataset,
                                       const Instant3dConfig &config);

/**
 * Sec 2.1's vanilla-NeRF training cost: ~150,000 iterations per scene
 * at a batch of 786,432 points (192 points/pixel x 4,096 pixels), each
 * executing a 1-MFLOP MLP -- "the required total training FLOPs is as
 * large as 353,895 trillion", "> 1 day of training time on one V100".
 */
struct VanillaNerfCost
{
    double pointsPerIter = 192.0 * 4096.0; //!< 786,432.
    int iterations = 150000;
    double flopsPerPointForward = 1.0e6;   //!< 10x256 MLP.

    /** Total training FLOPs including BP (~2x forward). */
    double totalFlops() const
    {
        return 3.0 * flopsPerPointForward * pointsPerIter * iterations;
    }

    /**
     * Training days on a V100-class GPU.
     * @param peak_flops   Sustainable peak (default fp32 15.7 TFLOPS).
     * @param utilization  Achieved fraction on this workload.
     */
    double daysOnV100(double peak_flops = 15.7e12,
                      double utilization = 0.15) const;
};

} // namespace instant3d

#endif // INSTANT3D_CORE_WORKLOAD_HH
