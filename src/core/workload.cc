#include "core/workload.hh"

#include <cmath>

#include "common/logging.hh"

namespace instant3d {

namespace {

/** Baseline Instant-NGP per-level table: 2^19 entries x 2 features. */
constexpr uint64_t ngpTableEntries = 1ull << 19;
constexpr int gridLevels = 16;
constexpr int gridFeatures = 2;

/** Dataset scale relative to NeRF-Synthetic (see DESIGN.md). */
struct DatasetScale
{
    const char *name;
    double pointScale;
};

constexpr DatasetScale datasetScales[] = {
    {"NeRF-Synthetic", 1.0},
    {"SILVR", 1.875},   // large-volume scenes: more samples per ray
    {"ScanNet", 1.167}, // real rooms: more views, moderate volume
};

double
datasetPointScale(const std::string &dataset)
{
    for (const auto &d : datasetScales)
        if (dataset == d.name)
            return d.pointScale;
    fatal("unknown dataset: " + dataset);
}

} // namespace

std::string
pipelineStepName(PipelineStep step)
{
    switch (step) {
      case PipelineStep::SampleAndRays:
        return "Steps 1-2 (sample pixels, map to rays)";
      case PipelineStep::GridInterpFF:
        return "Step 3-1 (grid interpolation, FF)";
      case PipelineStep::MlpFF:
        return "Step 3-2 (MLP inference, FF)";
      case PipelineStep::RenderAndLoss:
        return "Steps 4-5 (volume render + loss)";
      case PipelineStep::MlpBP:
        return "Step 3-2 BP (MLP)";
      case PipelineStep::GridInterpBP:
        return "Step 3-1 BP (grid update)";
    }
    panic("unreachable pipeline step");
}

const std::vector<PipelineStep> &
allPipelineSteps()
{
    static const std::vector<PipelineStep> steps = {
        PipelineStep::SampleAndRays, PipelineStep::GridInterpFF,
        PipelineStep::MlpFF,         PipelineStep::RenderAndLoss,
        PipelineStep::MlpBP,         PipelineStep::GridInterpBP,
    };
    return steps;
}

double
TrainingWorkload::gridReadBytesPerIter() const
{
    double bytes = 0.0;
    for (const auto &b : branches) {
        bytes += b.costShare * pointsPerIter * b.accessesPerPoint() *
                 b.featuresPerEntry * 2.0;
    }
    return bytes;
}

double
TrainingWorkload::gridWriteBytesPerIter() const
{
    double bytes = 0.0;
    for (const auto &b : branches) {
        bytes += b.costShare * b.updateRate * pointsPerIter *
                 b.accessesPerPoint() * b.featuresPerEntry * 2.0;
    }
    return bytes;
}

const std::vector<std::string> &
workloadDatasetNames()
{
    static const std::vector<std::string> names = {
        "NeRF-Synthetic", "SILVR", "ScanNet",
    };
    return names;
}

TrainingWorkload
makeNgpWorkload(const std::string &dataset)
{
    TrainingWorkload w;
    w.datasetName = dataset;
    w.algorithmName = "Instant-NGP";
    w.pointsPerIter = 2.0e5 * datasetPointScale(dataset);

    BranchWorkload unified;
    unified.name = "unified";
    unified.costShare = 1.0;
    unified.tableEntries = ngpTableEntries;
    unified.levels = gridLevels;
    unified.featuresPerEntry = gridFeatures;
    unified.updateRate = 1.0;
    w.branches.push_back(unified);
    return w;
}

double
VanillaNerfCost::daysOnV100(double peak_flops, double utilization) const
{
    fatalIf(peak_flops <= 0.0 || utilization <= 0.0,
            "V100 model needs positive peak and utilization");
    double seconds = totalFlops() / (peak_flops * utilization);
    return seconds / 86400.0;
}

TrainingWorkload
makeInstant3dWorkload(const std::string &dataset,
                      const Instant3dConfig &config)
{
    TrainingWorkload w = makeNgpWorkload(dataset);
    w.algorithmName = "Instant-3D";
    w.branches.clear();

    auto scaled_entries = [](double ratio) {
        // Decomposition gives each branch half the baseline table,
        // scaled by its ratio and snapped to a power of two.
        double target = static_cast<double>(ngpTableEntries) * 0.5 *
                        ratio;
        uint64_t e = 64;
        while (static_cast<double>(e * 2) <= target)
            e *= 2;
        if (target - e > 2.0 * e - target)
            e *= 2;
        return e;
    };

    // Each decomposed branch carries half the baseline grid payload
    // (access count is independent of table size; smaller tables win
    // through locality, which the device/accelerator models capture).
    BranchWorkload density;
    density.name = "density";
    density.costShare = 0.5;
    density.tableEntries = scaled_entries(config.densitySizeRatio);
    density.levels = gridLevels;
    density.featuresPerEntry = gridFeatures;
    density.updateRate = config.densityUpdateRate;

    BranchWorkload color = density;
    color.name = "color";
    color.tableEntries = scaled_entries(config.colorSizeRatio);
    color.updateRate = config.colorUpdateRate;

    w.branches.push_back(density);
    w.branches.push_back(color);
    return w;
}

} // namespace instant3d
