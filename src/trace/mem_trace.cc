#include "trace/mem_trace.hh"

namespace instant3d {

void
MemTraceCollector::record(const GridAccess &access)
{
    if (capacity != 0 && buffer.size() >= capacity) {
        dropped++;
        return;
    }
    buffer.push_back(access);
}

std::vector<GridAccess>
MemTraceCollector::reads() const
{
    std::vector<GridAccess> out;
    for (const auto &a : buffer)
        if (!a.isWrite)
            out.push_back(a);
    return out;
}

std::vector<GridAccess>
MemTraceCollector::writes() const
{
    std::vector<GridAccess> out;
    for (const auto &a : buffer)
        if (a.isWrite)
            out.push_back(a);
    return out;
}

std::vector<GridAccess>
MemTraceCollector::levelSlice(uint16_t level) const
{
    std::vector<GridAccess> out;
    for (const auto &a : buffer)
        if (a.level == level)
            out.push_back(a);
    return out;
}

ScopedTrace::ScopedTrace(HashEncoding &encoding, TraceSink &sink)
    : enc(encoding)
{
    enc.setTraceSink(&sink);
}

ScopedTrace::~ScopedTrace()
{
    enc.setTraceSink(nullptr);
}

} // namespace instant3d
