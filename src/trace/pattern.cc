#include "trace/pattern.hh"

#include <cmath>
#include <unordered_set>

#include "common/logging.hh"

namespace instant3d {

GroupDistanceStats
analyzeVertexGroups(const std::vector<GridAccess> &read_trace)
{
    GroupDistanceStats stats;

    // Walk the trace in chunks of 8 corners belonging to one
    // (point, level) interpolation.
    size_t i = 0;
    while (i + 8 <= read_trace.size()) {
        // Validate the chunk: same point and level, corners 0..7.
        bool valid = true;
        for (int c = 0; c < 8; c++) {
            const auto &a = read_trace[i + c];
            if (a.isWrite || a.corner != c ||
                a.pointId != read_trace[i].pointId ||
                a.level != read_trace[i].level) {
                valid = false;
                break;
            }
        }
        if (!valid) {
            i++; // resynchronize
            continue;
        }

        // Corners 2g and 2g+1 share (y, z) and differ in x (Fig 8).
        double group_mean[4];
        for (int g = 0; g < 4; g++) {
            double lo = read_trace[i + 2 * g].address;
            double hi = read_trace[i + 2 * g + 1].address;
            double signed_dist = hi - lo;
            stats.intraGroupAbs.add(std::fabs(signed_dist));
            stats.intraHistogram.add(signed_dist);
            group_mean[g] = 0.5 * (lo + hi);
        }
        for (int g = 0; g < 4; g++)
            for (int h = g + 1; h < 4; h++)
                stats.interGroupAbs.add(
                    std::fabs(group_mean[g] - group_mean[h]));

        stats.pointsAnalyzed++;
        i += 8;
    }
    return stats;
}

double
SlidingWindowStats::meanUnique() const
{
    if (uniquePerWindow.empty())
        return 0.0;
    double acc = 0.0;
    for (double u : uniquePerWindow)
        acc += u;
    return acc / static_cast<double>(uniquePerWindow.size());
}

double
SlidingWindowStats::minUnique() const
{
    if (uniquePerWindow.empty())
        return 0.0;
    double best = uniquePerWindow.front();
    for (double u : uniquePerWindow)
        best = std::min(best, u);
    return best;
}

SlidingWindowStats
uniqueAddressWindows(const std::vector<GridAccess> &trace,
                     int window_size)
{
    fatalIf(window_size < 1, "window size must be positive");
    SlidingWindowStats out;
    out.windowSize = window_size;

    size_t n_windows = trace.size() / window_size;
    out.uniquePerWindow.reserve(n_windows);
    for (size_t w = 0; w < n_windows; w++) {
        std::unordered_set<uint64_t> seen;
        for (int k = 0; k < window_size; k++) {
            const auto &a = trace[w * window_size + k];
            seen.insert((static_cast<uint64_t>(a.level) << 32) |
                        a.address);
        }
        out.uniquePerWindow.push_back(
            static_cast<double>(seen.size()));
    }
    return out;
}

double
meanSharingFactor(const SlidingWindowStats &stats)
{
    double mu = stats.meanUnique();
    if (mu <= 0.0)
        return 0.0;
    return static_cast<double>(stats.windowSize) / mu;
}

std::vector<GridAccess>
batchMajorOrder(const std::vector<GridAccess> &reads,
                int samples_per_ray)
{
    fatalIf(samples_per_ray < 1, "samples_per_ray must be positive");

    // Split the trace into per-point chunks (runs of equal pointId).
    struct Chunk { size_t begin, end; };
    std::vector<Chunk> chunks;
    size_t i = 0;
    while (i < reads.size()) {
        size_t j = i;
        while (j < reads.size() &&
               reads[j].pointId == reads[i].pointId && !reads[j].isWrite)
            j++;
        chunks.push_back({i, j});
        i = j;
    }

    size_t n_rays = chunks.size() / samples_per_ray;
    std::vector<GridAccess> out;
    out.reserve(reads.size());
    for (int s = 0; s < samples_per_ray; s++) {
        for (size_t r = 0; r < n_rays; r++) {
            const Chunk &c =
                chunks[r * static_cast<size_t>(samples_per_ray) + s];
            for (size_t k = c.begin; k < c.end; k++)
                out.push_back(reads[k]);
        }
    }
    // Leftover chunks (partial ray) keep their original order.
    for (size_t c = n_rays * samples_per_ray; c < chunks.size(); c++)
        for (size_t k = chunks[c].begin; k < chunks[c].end; k++)
            out.push_back(reads[k]);
    return out;
}

} // namespace instant3d
