/**
 * @file
 * Memory-access-pattern analyses of Sec 4.2:
 *
 *  - Fig 8: the 8 vertex addresses of each interpolation cluster into
 *    4 groups (pairs sharing y and z); inter-group address distances
 *    are huge (pi2/pi3 amplification), intra-group distances tiny
 *    (pi1 = 1).
 *  - Fig 9: the distribution of intra-group address distances (>90%
 *    within [-5, 5] in the paper).
 *  - Fig 10: unique-address counts within a sliding window of
 *    contiguous accesses; back-propagation shows far fewer unique
 *    addresses than feed-forward.
 */

#ifndef INSTANT3D_TRACE_PATTERN_HH
#define INSTANT3D_TRACE_PATTERN_HH

#include <vector>

#include "common/stats.hh"
#include "trace/mem_trace.hh"

namespace instant3d {

/** Results of the Fig 8 / Fig 9 vertex-group analysis. */
struct GroupDistanceStats
{
    RunningStats intraGroupAbs;  //!< |addr(x+1) - addr(x)| per pair.
    RunningStats interGroupAbs;  //!< Pairwise distances between groups.
    Histogram intraHistogram;    //!< Signed intra-group distances.
    uint64_t pointsAnalyzed = 0;

    GroupDistanceStats() : intraHistogram(-20.5, 20.5, 41) {}

    /** Fraction of intra-group distances within [-k, k]. */
    double fractionWithin(double k) const
    { return intraHistogram.fractionInRange(-k, k); }
};

/**
 * Cluster each point's 8 read addresses into the 4 (y, z) groups and
 * accumulate intra-/inter-group distance statistics.
 *
 * The input must be a read trace as emitted by HashEncoding: for every
 * (point, level), 8 consecutive accesses with corner ids 0..7, where
 * corners 2g and 2g+1 share (y, z).
 */
GroupDistanceStats analyzeVertexGroups(
    const std::vector<GridAccess> &read_trace);

/** Results of the Fig 10 sliding-window analysis. */
struct SlidingWindowStats
{
    std::vector<double> uniquePerWindow; //!< One entry per window.
    int windowSize = 0;

    double meanUnique() const;
    double minUnique() const;
};

/**
 * Count unique (level, address) pairs within consecutive windows of
 * `window_size` accesses.
 */
SlidingWindowStats uniqueAddressWindows(
    const std::vector<GridAccess> &trace, int window_size);

/**
 * Mean number of updates sharing the same address within windows
 * (window_size / unique); >1 means mergeable traffic for the BUM.
 */
double meanSharingFactor(const SlidingWindowStats &stats);

/**
 * Reorder a read trace from ray-sequential order (how the CPU trainer
 * emits it) into batch-parallel order (how the GPU and the Instant-3D
 * accelerator consume the coordinate buffer during feed-forward):
 * sample 0 of every ray, then sample 1 of every ray, and so on.
 *
 * Back-propagation keeps its ray-sequential order because compositing
 * gradients are produced sample-after-sample along each ray, which is
 * exactly why Fig 10 sees many shared addresses during BP and almost
 * none during FF.
 *
 * @param reads            Read trace: consecutive 8-access chunks per
 *                         (point, level), points grouped by ray.
 * @param samples_per_ray  Points per ray in the trace.
 */
std::vector<GridAccess> batchMajorOrder(
    const std::vector<GridAccess> &reads, int samples_per_ray);

} // namespace instant3d

#endif // INSTANT3D_TRACE_PATTERN_HH
