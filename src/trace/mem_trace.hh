/**
 * @file
 * Memory-trace capture for the embedding grid.
 *
 * MemTraceCollector attaches to a HashEncoding as a TraceSink and
 * records every hash-table access in program order. Captured traces
 * feed the pattern analyses of Figs 8-10 (src/trace/pattern.hh) and
 * drive the accelerator's FRM/BUM cycle simulation (src/accel).
 */

#ifndef INSTANT3D_TRACE_MEM_TRACE_HH
#define INSTANT3D_TRACE_MEM_TRACE_HH

#include <cstdint>
#include <vector>

#include "nerf/hash_encoding.hh"
#include "nerf/trace_sink.hh"

namespace instant3d {

/**
 * Buffers grid accesses up to an optional capacity cap.
 */
class MemTraceCollector : public TraceSink
{
  public:
    /** @param max_accesses 0 means unbounded. */
    explicit MemTraceCollector(size_t max_accesses = 0)
        : capacity(max_accesses)
    {}

    void record(const GridAccess &access) override;

    const std::vector<GridAccess> &accesses() const { return buffer; }

    /** Reads (feed-forward interpolation fetches), in order. */
    std::vector<GridAccess> reads() const;

    /** Writes (back-propagation grid updates), in order. */
    std::vector<GridAccess> writes() const;

    /** Accesses of one multiresolution level only. */
    std::vector<GridAccess> levelSlice(uint16_t level) const;

    void clear() { buffer.clear(); dropped = 0; }

    bool full() const
    { return capacity != 0 && buffer.size() >= capacity; }

    /** Accesses discarded after the capacity cap was reached. */
    uint64_t droppedCount() const { return dropped; }

  private:
    std::vector<GridAccess> buffer;
    size_t capacity;
    uint64_t dropped = 0;
};

/**
 * RAII helper that attaches a sink to an encoding for one scope.
 */
class ScopedTrace
{
  public:
    ScopedTrace(HashEncoding &encoding, TraceSink &sink);
    ~ScopedTrace();

    ScopedTrace(const ScopedTrace &) = delete;
    ScopedTrace &operator=(const ScopedTrace &) = delete;

  private:
    HashEncoding &enc;
};

} // namespace instant3d

#endif // INSTANT3D_TRACE_MEM_TRACE_HH
