#include "nerf/serialize.hh"

#include <cstdio>
#include <cstring>
#include <vector>

namespace instant3d {

namespace {

constexpr uint32_t magicWord = 0x49334446u; // "I3DF"
constexpr uint32_t formatVersion = 2u;

// Header layout (all uint32): magic, version, decoupled flag, group
// count, occupancy-present flag, occupancy resolution.
constexpr size_t headerWords = 6;

} // namespace

bool
saveCheckpoint(NerfField &field, const OccupancyGrid *occ,
               const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;

    auto groups = field.paramGroups();
    uint32_t header[headerWords] = {
        magicWord, formatVersion,
        static_cast<uint32_t>(field.mode() == FieldMode::Decoupled),
        static_cast<uint32_t>(groups.size()),
        static_cast<uint32_t>(occ != nullptr),
        static_cast<uint32_t>(occ ? occ->resolution() : 0),
    };
    bool ok = std::fwrite(header, sizeof(header), 1, f) == 1;

    for (auto gid : groups) {
        const auto &params = field.groupParams(gid);
        uint64_t n = params.size();
        ok = ok && std::fwrite(&n, sizeof(n), 1, f) == 1;
        ok = ok && std::fwrite(params.data(), sizeof(float),
                               params.size(), f) == params.size();
    }

    if (occ) {
        uint64_t cells = occ->numCells();
        ok = ok && std::fwrite(&cells, sizeof(cells), 1, f) == 1;
        std::vector<float> density(cells);
        for (uint64_t c = 0; c < cells; c++)
            density[c] = occ->cellDensity(c);
        ok = ok && std::fwrite(density.data(), sizeof(float), cells,
                               f) == cells;
    }
    std::fclose(f);
    return ok;
}

bool
loadCheckpoint(NerfField &field, OccupancyGrid *occ,
               const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;

    uint32_t header[headerWords];
    if (std::fread(header, sizeof(header), 1, f) != 1 ||
        header[0] != magicWord || header[1] != formatVersion) {
        std::fclose(f);
        return false;
    }
    auto groups = field.paramGroups();
    bool decoupled = field.mode() == FieldMode::Decoupled;
    bool file_has_occ = header[4] != 0;
    if (header[2] != static_cast<uint32_t>(decoupled) ||
        header[3] != groups.size()) {
        std::fclose(f);
        return false;
    }
    // A caller expecting an occupancy grid needs a checkpoint that
    // carries one at the same resolution; serving with a different
    // skipping pattern would change rendered bits.
    if (occ && (!file_has_occ ||
                header[5] != static_cast<uint32_t>(occ->resolution()))) {
        std::fclose(f);
        return false;
    }

    // Stage into temporaries so a mid-file failure cannot leave the
    // field (or grid) half-loaded.
    std::vector<std::vector<float>> staged(groups.size());
    for (size_t g = 0; g < groups.size(); g++) {
        uint64_t n = 0;
        if (std::fread(&n, sizeof(n), 1, f) != 1 ||
            n != field.groupParams(groups[g]).size()) {
            std::fclose(f);
            return false;
        }
        staged[g].resize(n);
        if (std::fread(staged[g].data(), sizeof(float), n, f) != n) {
            std::fclose(f);
            return false;
        }
    }

    std::vector<float> staged_density;
    if (occ) {
        uint64_t cells = 0;
        if (std::fread(&cells, sizeof(cells), 1, f) != 1 ||
            cells != occ->numCells()) {
            std::fclose(f);
            return false;
        }
        staged_density.resize(cells);
        if (std::fread(staged_density.data(), sizeof(float), cells,
                       f) != cells) {
            std::fclose(f);
            return false;
        }
    }
    std::fclose(f);

    for (size_t g = 0; g < groups.size(); g++)
        field.groupParams(groups[g]) = std::move(staged[g]);
    if (occ) {
        for (size_t c = 0; c < staged_density.size(); c++)
            occ->setCellDensity(c, staged_density[c]);
    }
    return true;
}

bool
saveField(NerfField &field, const std::string &path)
{
    return saveCheckpoint(field, nullptr, path);
}

bool
loadField(NerfField &field, const std::string &path)
{
    return loadCheckpoint(field, nullptr, path);
}

CheckpointInfo
peekCheckpoint(const std::string &path)
{
    CheckpointInfo info;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return info;
    uint32_t header[headerWords];
    if (std::fread(header, sizeof(header), 1, f) == 1 &&
        header[0] == magicWord && header[1] == formatVersion) {
        info.valid = true;
        info.decoupled = header[2] != 0;
        info.numGroups = header[3];
        info.hasOccupancy = header[4] != 0;
        info.occResolution = static_cast<int>(header[5]);
    }
    std::fclose(f);
    return info;
}

size_t
fieldStorageBytes(NerfField &field)
{
    size_t bytes = 0;
    for (auto gid : field.paramGroups())
        bytes += field.groupParams(gid).size() * sizeof(float);
    return bytes;
}

} // namespace instant3d
