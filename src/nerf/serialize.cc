#include "nerf/serialize.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/crc32.hh"
#include "common/fault_injection.hh"

namespace instant3d {

namespace {

constexpr uint32_t magicWord = 0x49334446u; // "I3DF"
constexpr uint32_t formatVersion = 3u;      // v3 = v2 + trailing CRC-32
constexpr uint32_t oldestReadableVersion = 2u;

// Header layout (all uint32): magic, version, decoupled flag, group
// count, occupancy-present flag, occupancy resolution.
constexpr size_t headerWords = 6;

/**
 * fwrite that feeds the running CRC and honors the short-write fault
 * point: a fired fault tears the write (a prefix lands, the call
 * fails), exactly like ENOSPC or a crash mid-write.
 */
bool
writeBytes(std::FILE *f, const void *data, size_t n, Crc32 *crc)
{
    if (fault::shouldFire(fault::Point::CheckpointShortWrite)) {
        std::fwrite(data, 1, n / 2, f);
        return false;
    }
    if (std::fwrite(data, 1, n, f) != n)
        return false;
    if (crc)
        crc->update(data, n);
    return true;
}

/**
 * fread that feeds the running CRC. A fired short-read fault reports
 * Io (transient EIO); a genuinely short file reports Truncated.
 */
bool
readBytes(std::FILE *f, void *data, size_t n, Crc32 *crc,
          CheckpointError &err)
{
    if (fault::shouldFire(fault::Point::CheckpointShortRead)) {
        err = CheckpointError::Io;
        return false;
    }
    if (std::fread(data, 1, n, f) != n) {
        err = CheckpointError::Truncated;
        return false;
    }
    if (crc)
        crc->update(data, n);
    return true;
}

/**
 * Pull a payload section of `n` bytes into `dst` through a bounded
 * buffer, feeding the running CRC chunk by chunk. Each chunk honors
 * the streaming fault points: stream_stall sleeps before the read (a
 * slow disk), stream_short_read fails it outright (transient EIO ->
 * Io). A genuinely short file reports Truncated. Bit-identical to a
 * single fread for any chunk size.
 */
bool
readChunked(std::FILE *f, void *dst, size_t n, size_t chunk_bytes,
            Crc32 *crc, CheckpointError &err)
{
    if (chunk_bytes == 0)
        chunk_bytes = n; // whole section in one read
    char *out = static_cast<char *>(dst);
    for (size_t done = 0; done < n;) {
        size_t take = std::min(n - done, chunk_bytes);
        fault::maybeDelay(fault::Point::CheckpointStreamStall);
        if (fault::shouldFire(fault::Point::CheckpointStreamShortRead)) {
            err = CheckpointError::Io;
            return false;
        }
        if (std::fread(out + done, 1, take, f) != take) {
            err = CheckpointError::Truncated;
            return false;
        }
        if (crc)
            crc->update(out + done, take);
        done += take;
    }
    return true;
}

/**
 * readChunked into a scratch buffer: advances the file position and
 * the CRC past `n` payload bytes without keeping them.
 */
bool
skipChunked(std::FILE *f, size_t n, size_t chunk_bytes, Crc32 *crc,
            CheckpointError &err)
{
    if (chunk_bytes == 0 || chunk_bytes > n)
        chunk_bytes = n;
    std::vector<char> scratch(std::max<size_t>(chunk_bytes, 1));
    for (size_t done = 0; done < n;) {
        size_t take = std::min(n - done, scratch.size());
        if (!readChunked(f, scratch.data(), take, take, crc, err))
            return false;
        done += take;
    }
    return true;
}

/** Push buffered and kernel-cached bytes to stable storage. */
bool
flushAndSync(std::FILE *f)
{
    if (std::fflush(f) != 0)
        return false;
    if (fault::shouldFire(fault::Point::CheckpointFsyncFail))
        return false;
#ifndef _WIN32
    if (::fsync(::fileno(f)) != 0)
        return false;
#endif
    return true;
}

/**
 * Make the rename that published `path` durable: fsync the directory
 * entry, best-effort (a failure here cannot corrupt anything -- the
 * rename either survives the crash or the previous file does).
 */
void
syncParentDir(const std::string &path)
{
#ifndef _WIN32
    size_t slash = path.find_last_of('/');
    std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash);
    if (dir.empty())
        dir = "/";
    int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
#else
    (void)path;
#endif
}

} // namespace

const char *
checkpointErrorName(CheckpointError err)
{
    switch (err) {
    case CheckpointError::None:
        return "none";
    case CheckpointError::Io:
        return "io";
    case CheckpointError::Magic:
        return "magic";
    case CheckpointError::Version:
        return "version";
    case CheckpointError::Shape:
        return "shape";
    case CheckpointError::Truncated:
        return "truncated";
    case CheckpointError::Crc:
        return "crc";
    }
    return "invalid";
}

std::ostream &
operator<<(std::ostream &os, CheckpointError err)
{
    return os << checkpointErrorName(err);
}

CheckpointError
saveCheckpoint(NerfField &field, const OccupancyGrid *occ,
               const std::string &path)
{
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return CheckpointError::Io;

    auto groups = field.paramGroups();
    uint32_t header[headerWords] = {
        magicWord, formatVersion,
        static_cast<uint32_t>(field.mode() == FieldMode::Decoupled),
        static_cast<uint32_t>(groups.size()),
        static_cast<uint32_t>(occ != nullptr),
        static_cast<uint32_t>(occ ? occ->resolution() : 0),
    };
    Crc32 crc;
    bool ok = writeBytes(f, header, sizeof(header), &crc);

    for (auto gid : groups) {
        const auto &params = field.groupParams(gid);
        uint64_t n = params.size();
        ok = ok && writeBytes(f, &n, sizeof(n), &crc);
        ok = ok && writeBytes(f, params.data(),
                              params.size() * sizeof(float), &crc);
    }

    if (occ) {
        uint64_t cells = occ->numCells();
        ok = ok && writeBytes(f, &cells, sizeof(cells), &crc);
        std::vector<float> density(cells);
        for (uint64_t c = 0; c < cells; c++)
            density[c] = occ->cellDensity(c);
        ok = ok && writeBytes(f, density.data(), cells * sizeof(float),
                              &crc);
    }

    uint32_t digest = crc.value();
    if (fault::shouldFire(fault::Point::CheckpointCrcFlip))
        digest ^= 1u;
    ok = ok && writeBytes(f, &digest, sizeof(digest), nullptr);

    ok = ok && flushAndSync(f);
    std::fclose(f);
    if (!ok) {
        std::remove(tmp.c_str());
        return CheckpointError::Io;
    }
    // Atomic publication: the target path flips from the previous
    // checkpoint to the complete new one in a single rename.
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return CheckpointError::Io;
    }
    syncParentDir(path);
    return CheckpointError::None;
}

CheckpointError
loadCheckpoint(NerfField &field, OccupancyGrid *occ,
               const std::string &path,
               const CheckpointStreamConfig &stream)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return CheckpointError::Io;
    auto fail = [f](CheckpointError e) {
        std::fclose(f);
        return e;
    };

    Crc32 crc;
    CheckpointError err = CheckpointError::Io;
    uint32_t header[headerWords];
    if (!readBytes(f, header, sizeof(header), &crc, err))
        return fail(err);
    if (header[0] != magicWord)
        return fail(CheckpointError::Magic);
    if (header[1] < oldestReadableVersion || header[1] > formatVersion)
        return fail(CheckpointError::Version);
    const bool with_crc = header[1] >= 3u;

    auto groups = field.paramGroups();
    bool decoupled = field.mode() == FieldMode::Decoupled;
    bool file_has_occ = header[4] != 0;
    if (header[2] != static_cast<uint32_t>(decoupled) ||
        header[3] != groups.size())
        return fail(CheckpointError::Shape);
    // A caller expecting an occupancy grid needs a checkpoint that
    // carries one at the same resolution; serving with a different
    // skipping pattern would change rendered bits.
    if (occ && (!file_has_occ ||
                header[5] != static_cast<uint32_t>(occ->resolution())))
        return fail(CheckpointError::Shape);

    // Stage into temporaries so a mid-file failure cannot leave the
    // field (or grid) half-loaded; payloads stream through a bounded
    // buffer so a slow or failing disk surfaces per-chunk.
    std::vector<std::vector<float>> staged(groups.size());
    for (size_t g = 0; g < groups.size(); g++) {
        uint64_t n = 0;
        if (!readBytes(f, &n, sizeof(n), &crc, err))
            return fail(err);
        if (n != field.groupParams(groups[g]).size())
            return fail(CheckpointError::Shape);
        staged[g].resize(n);
        if (!readChunked(f, staged[g].data(), n * sizeof(float),
                         stream.chunkBytes, &crc, err))
            return fail(err);
    }

    std::vector<float> staged_density;
    if (occ) {
        uint64_t cells = 0;
        if (!readBytes(f, &cells, sizeof(cells), &crc, err))
            return fail(err);
        if (cells != occ->numCells())
            return fail(CheckpointError::Shape);
        staged_density.resize(cells);
        if (!readChunked(f, staged_density.data(),
                         cells * sizeof(float), stream.chunkBytes,
                         &crc, err))
            return fail(err);
    } else if (file_has_occ && with_crc) {
        // No grid wanted, but the CRC covers the whole payload: read
        // the occupancy section through the digest and discard it.
        uint64_t cells = 0;
        if (!readBytes(f, &cells, sizeof(cells), &crc, err))
            return fail(err);
        if (!skipChunked(f, cells * sizeof(float), stream.chunkBytes,
                         &crc, err))
            return fail(err);
    }

    if (with_crc) {
        uint32_t stored = 0;
        if (!readBytes(f, &stored, sizeof(stored), nullptr, err))
            return fail(err);
        if (stored != crc.value())
            return fail(CheckpointError::Crc);
    }
    std::fclose(f);

    for (size_t g = 0; g < groups.size(); g++)
        field.groupParams(groups[g]) = std::move(staged[g]);
    if (occ) {
        for (size_t c = 0; c < staged_density.size(); c++)
            occ->setCellDensity(c, staged_density[c]);
    }
    return CheckpointError::None;
}

CheckpointError
saveField(NerfField &field, const std::string &path)
{
    return saveCheckpoint(field, nullptr, path);
}

CheckpointError
loadField(NerfField &field, const std::string &path)
{
    return loadCheckpoint(field, nullptr, path);
}

CheckpointInfo
peekCheckpoint(const std::string &path)
{
    CheckpointInfo info;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return info;
    uint32_t header[headerWords];
    if (std::fread(header, sizeof(header), 1, f) == 1 &&
        header[0] == magicWord &&
        header[1] >= oldestReadableVersion &&
        header[1] <= formatVersion) {
        info.valid = true;
        info.version = header[1];
        info.hasCrc = header[1] >= 3u;
        info.decoupled = header[2] != 0;
        info.numGroups = header[3];
        info.hasOccupancy = header[4] != 0;
        info.occResolution = static_cast<int>(header[5]);
    }
    std::fclose(f);
    return info;
}

size_t
fieldStorageBytes(NerfField &field)
{
    size_t bytes = 0;
    for (auto gid : field.paramGroups())
        bytes += field.groupParams(gid).size() * sizeof(float);
    return bytes;
}

} // namespace instant3d
