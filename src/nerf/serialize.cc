#include "nerf/serialize.hh"

#include <cstdio>
#include <cstring>
#include <vector>

namespace instant3d {

namespace {

constexpr uint32_t magicWord = 0x49334446u; // "I3DF"
constexpr uint32_t formatVersion = 1u;

} // namespace

bool
saveField(NerfField &field, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;

    auto groups = field.paramGroups();
    uint32_t header[4] = {
        magicWord, formatVersion,
        static_cast<uint32_t>(field.mode() == FieldMode::Decoupled),
        static_cast<uint32_t>(groups.size()),
    };
    bool ok = std::fwrite(header, sizeof(header), 1, f) == 1;

    for (auto gid : groups) {
        const auto &params = field.groupParams(gid);
        uint64_t n = params.size();
        ok = ok && std::fwrite(&n, sizeof(n), 1, f) == 1;
        ok = ok && std::fwrite(params.data(), sizeof(float),
                               params.size(), f) == params.size();
    }
    std::fclose(f);
    return ok;
}

bool
loadField(NerfField &field, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;

    uint32_t header[4];
    if (std::fread(header, sizeof(header), 1, f) != 1 ||
        header[0] != magicWord || header[1] != formatVersion) {
        std::fclose(f);
        return false;
    }
    auto groups = field.paramGroups();
    bool decoupled = field.mode() == FieldMode::Decoupled;
    if (header[2] != static_cast<uint32_t>(decoupled) ||
        header[3] != groups.size()) {
        std::fclose(f);
        return false;
    }

    // Stage into temporaries so a mid-file failure cannot leave the
    // field half-loaded.
    std::vector<std::vector<float>> staged(groups.size());
    for (size_t g = 0; g < groups.size(); g++) {
        uint64_t n = 0;
        if (std::fread(&n, sizeof(n), 1, f) != 1 ||
            n != field.groupParams(groups[g]).size()) {
            std::fclose(f);
            return false;
        }
        staged[g].resize(n);
        if (std::fread(staged[g].data(), sizeof(float), n, f) != n) {
            std::fclose(f);
            return false;
        }
    }
    std::fclose(f);

    for (size_t g = 0; g < groups.size(); g++)
        field.groupParams(groups[g]) = std::move(staged[g]);
    return true;
}

size_t
fieldStorageBytes(NerfField &field)
{
    size_t bytes = 0;
    for (auto gid : field.paramGroups())
        bytes += field.groupParams(gid).size() * sizeof(float);
    return bytes;
}

} // namespace instant3d
