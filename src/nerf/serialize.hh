/**
 * @file
 * Model checkpointing. The paper's telepresence motivation (Sec 1)
 * rests on shipping a reconstructed *model* (~20 MB) instead of raw
 * captures (~120 MB); this module provides the binary save/load path
 * for a trained NerfField -- optionally bundled with its occupancy
 * grid, so a serving process can reproduce the trainer's empty-space
 * skipping (and hence its rendered bits) exactly -- and reports its
 * wire size.
 *
 * Format (version 3): magic, version, field mode, per-group element
 * counts, occupancy presence + resolution, then raw little-endian
 * float32 parameters group by group, then (if present) the occupancy
 * grid's per-cell density estimates, then a CRC-32 over everything
 * before it. Version-2 files (no CRC) remain readable.
 *
 * Crash safety: saves stream to `path + ".tmp"`, fsync, then publish
 * by atomic rename, so the target path only ever holds the previous
 * or the complete new checkpoint -- never a torn one.
 */

#ifndef INSTANT3D_NERF_SERIALIZE_HH
#define INSTANT3D_NERF_SERIALIZE_HH

#include <cstdint>
#include <ostream>
#include <string>

#include "nerf/field.hh"
#include "nerf/occupancy_grid.hh"

namespace instant3d {

/**
 * Why a checkpoint operation failed. Distinguishing transient I/O
 * faults from structural mismatches lets callers (SceneRegistry) pick
 * retry vs reject.
 */
enum class CheckpointError : uint8_t
{
    None = 0,  //!< Success.
    Io,        //!< open/read/write/fsync/rename failed (maybe transient).
    Magic,     //!< Not a checkpoint file.
    Version,   //!< Format version outside the readable range.
    Shape,     //!< Mode/group/occupancy layout differs from the model.
    Truncated, //!< File ends before the format says it should.
    Crc,       //!< Stored CRC-32 does not match the payload.
};

/** Stable lower-case name of an error ("io", "crc", ...). */
const char *checkpointErrorName(CheckpointError err);

std::ostream &operator<<(std::ostream &os, CheckpointError err);

/**
 * Serialize all trainable parameters, plus the occupancy grid's cell
 * densities when `occ` is non-null. The write is crash-safe: on any
 * failure the temp file is removed and the target path is untouched.
 */
CheckpointError saveCheckpoint(NerfField &field, const OccupancyGrid *occ,
                               const std::string &path);

/**
 * Tuning for the streaming load path. Payload sections (parameter
 * groups, occupancy densities) are pulled through a bounded buffer of
 * `chunkBytes`, feeding the CRC incrementally, instead of one fread
 * per section -- so the loader's transient working set stays bounded
 * and a slow or failing disk surfaces per-chunk (fault points
 * `checkpoint.stream_short_read` / `checkpoint.stream_stall`).
 */
struct CheckpointStreamConfig
{
    /** Bounded-buffer size per payload read; 0 means "whole section
     *  in one read" (the legacy staged loader's I/O pattern). */
    size_t chunkBytes = 256u * 1024u;
};

/**
 * Load a checkpoint into a field (and, if `occ` is non-null, an
 * occupancy grid) constructed with the *same* configuration. The field
 * and grid are left unmodified in every failure case. A checkpoint's
 * occupancy section is discarded when `occ` is null (a caller that
 * passes an occupancy grid requires the file to carry one at the same
 * resolution, since serving with a different skipping pattern would
 * change rendered bits). Reads versions 2 (no CRC) and 3.
 *
 * Payload bytes stream through a bounded buffer (see
 * CheckpointStreamConfig); restored params are bit-identical for any
 * chunk size. Section-staged: commits to the field/grid only after
 * the whole file (including CRC) has verified.
 */
CheckpointError loadCheckpoint(NerfField &field, OccupancyGrid *occ,
                               const std::string &path,
                               const CheckpointStreamConfig &stream =
                                   CheckpointStreamConfig{});

/** Serialize all trainable parameters (no occupancy section). */
CheckpointError saveField(NerfField &field, const std::string &path);

/** loadCheckpoint without an occupancy grid. */
CheckpointError loadField(NerfField &field, const std::string &path);

/** Header summary of a checkpoint file, for registry-side dispatch. */
struct CheckpointInfo
{
    bool valid = false;    //!< Magic/version recognized.
    uint32_t version = 0;  //!< Format version of the file.
    bool hasCrc = false;   //!< Version >= 3: payload is CRC-protected.
    bool decoupled = false;
    uint32_t numGroups = 0;
    bool hasOccupancy = false;
    int occResolution = 0; //!< Cells per axis (0 when no occupancy).
};

/** Read a checkpoint's header without touching any model state. */
CheckpointInfo peekCheckpoint(const std::string &path);

/** Total trainable-parameter bytes (float32 wire format). */
size_t fieldStorageBytes(NerfField &field);

} // namespace instant3d

#endif // INSTANT3D_NERF_SERIALIZE_HH
