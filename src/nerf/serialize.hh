/**
 * @file
 * Model checkpointing. The paper's telepresence motivation (Sec 1)
 * rests on shipping a reconstructed *model* (~20 MB) instead of raw
 * captures (~120 MB); this module provides the binary save/load path
 * for a trained NerfField -- optionally bundled with its occupancy
 * grid, so a serving process can reproduce the trainer's empty-space
 * skipping (and hence its rendered bits) exactly -- and reports its
 * wire size.
 *
 * Format (version 2): magic, version, field mode, per-group element
 * counts, occupancy presence + resolution, then raw little-endian
 * float32 parameters group by group, then (if present) the occupancy
 * grid's per-cell density estimates.
 */

#ifndef INSTANT3D_NERF_SERIALIZE_HH
#define INSTANT3D_NERF_SERIALIZE_HH

#include <string>

#include "nerf/field.hh"
#include "nerf/occupancy_grid.hh"

namespace instant3d {

/**
 * Serialize all trainable parameters, plus the occupancy grid's cell
 * densities when `occ` is non-null. Returns false on I/O error.
 */
bool saveCheckpoint(NerfField &field, const OccupancyGrid *occ,
                    const std::string &path);

/**
 * Load a checkpoint into a field (and, if `occ` is non-null, an
 * occupancy grid) constructed with the *same* configuration. Returns
 * false on I/O error, bad magic/version, any group-shape mismatch, or
 * -- when `occ` is given -- a missing or resolution-mismatched
 * occupancy section; the field and grid are left unmodified in every
 * failure case. A checkpoint's occupancy section is skipped when `occ`
 * is null.
 */
bool loadCheckpoint(NerfField &field, OccupancyGrid *occ,
                    const std::string &path);

/** Serialize all trainable parameters (no occupancy section). */
bool saveField(NerfField &field, const std::string &path);

/** loadCheckpoint without an occupancy grid. */
bool loadField(NerfField &field, const std::string &path);

/** Header summary of a checkpoint file, for registry-side dispatch. */
struct CheckpointInfo
{
    bool valid = false;    //!< Magic/version recognized.
    bool decoupled = false;
    uint32_t numGroups = 0;
    bool hasOccupancy = false;
    int occResolution = 0; //!< Cells per axis (0 when no occupancy).
};

/** Read a checkpoint's header without touching any model state. */
CheckpointInfo peekCheckpoint(const std::string &path);

/** Total trainable-parameter bytes (float32 wire format). */
size_t fieldStorageBytes(NerfField &field);

} // namespace instant3d

#endif // INSTANT3D_NERF_SERIALIZE_HH
