/**
 * @file
 * Model checkpointing. The paper's telepresence motivation (Sec 1)
 * rests on shipping a reconstructed *model* (~20 MB) instead of raw
 * captures (~120 MB); this module provides the binary save/load path
 * for a trained NerfField and reports its wire size.
 *
 * Format: magic, version, field mode, per-group element counts, then
 * raw little-endian float32 parameters, group by group.
 */

#ifndef INSTANT3D_NERF_SERIALIZE_HH
#define INSTANT3D_NERF_SERIALIZE_HH

#include <string>

#include "nerf/field.hh"

namespace instant3d {

/** Serialize all trainable parameters. Returns false on I/O error. */
bool saveField(NerfField &field, const std::string &path);

/**
 * Load parameters into a field constructed with the *same*
 * configuration. Returns false on I/O error, bad magic, or any
 * group-shape mismatch (the field is left unmodified in those cases).
 */
bool loadField(NerfField &field, const std::string &path);

/** Total trainable-parameter bytes (float32 wire format). */
size_t fieldStorageBytes(NerfField &field);

} // namespace instant3d

#endif // INSTANT3D_NERF_SERIALIZE_HH
