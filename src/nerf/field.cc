#include "nerf/field.hh"

#include <cmath>

#include "common/logging.hh"
#include "kernels/kernel_backend.hh"

namespace instant3d {

float
softplus(float x)
{
    // Numerically stable softplus.
    if (x > 15.0f)
        return x;
    if (x < -15.0f)
        return std::exp(x);
    return std::log1p(std::exp(x));
}

float
softplusDerivative(float x)
{
    if (x > 15.0f)
        return 1.0f;
    if (x < -15.0f)
        return std::exp(x);
    return 1.0f / (1.0f + std::exp(-x));
}

FieldConfig
FieldConfig::instant3dDefault(const HashEncodingConfig &base)
{
    FieldConfig cfg;
    cfg.mode = FieldMode::Decoupled;
    cfg.densityGrid = base;
    cfg.colorGrid = base.scaledBy(0.25f); // S_D : S_C = 1 : 0.25
    return cfg;
}

FieldConfig
FieldConfig::ngpBaseline(const HashEncodingConfig &base)
{
    FieldConfig cfg;
    cfg.mode = FieldMode::Coupled;
    cfg.densityGrid = base;
    cfg.colorGrid = base; // unused in coupled mode
    return cfg;
}

FieldConfig
FieldConfig::vanillaBaseline(int hidden, int layers)
{
    FieldConfig cfg;
    cfg.mode = FieldMode::Vanilla;
    cfg.hiddenDim = hidden;
    cfg.vanillaHiddenLayers = layers;
    return cfg;
}

void
NerfField::encodePosition(const Vec3 &p, int frequencies, float *out)
{
    constexpr float pi = 3.14159265358979323846f;
    out[0] = p.x;
    out[1] = p.y;
    out[2] = p.z;
    int idx = 3;
    float scale = pi;
    for (int k = 0; k < frequencies; k++) {
        for (int axis = 0; axis < 3; axis++) {
            float v = scale * p[axis];
            out[idx++] = std::sin(v);
            out[idx++] = std::cos(v);
        }
        scale *= 2.0f;
    }
}

void
NerfField::encodeDirection(const Vec3 &d, float *out)
{
    Vec3 n = d.normalized();
    out[0] = n.x;
    out[1] = n.y;
    out[2] = n.z;
    out[3] = n.x * n.x;
    out[4] = n.y * n.y;
    out[5] = n.z * n.z;
    out[6] = n.x * n.y;
    out[7] = n.y * n.z;
    out[8] = n.z * n.x;
}

NerfField::NerfField(const FieldConfig &config, uint64_t seed)
    : cfg(config)
{
    if (cfg.mode == FieldMode::Vanilla) {
        // No embedding grid: positional encoding straight into a
        // deeper MLP stack (scaled-down vanilla NeRF).
        std::vector<int> dens_dims = {cfg.posEncodingDim()};
        for (int l = 0; l < cfg.vanillaHiddenLayers; l++)
            dens_dims.push_back(cfg.hiddenDim);
        dens_dims.push_back(1 + cfg.geoFeatureDim);
        densityMlpPtr = std::make_unique<Mlp>(
            dens_dims, OutputActivation::None, seed + 3);
        colorMlpPtr = std::make_unique<Mlp>(
            std::vector<int>{cfg.geoFeatureDim + dirEncodingDim,
                             cfg.hiddenDim, 3},
            OutputActivation::Sigmoid, seed + 4);
        return;
    }

    densityGridPtr =
        std::make_unique<HashEncoding>(cfg.densityGrid, seed + 1);

    if (cfg.mode == FieldMode::Decoupled) {
        colorGridPtr =
            std::make_unique<HashEncoding>(cfg.colorGrid, seed + 2);
        densityMlpPtr = std::make_unique<Mlp>(
            std::vector<int>{densityGridPtr->outputDim(), cfg.hiddenDim,
                             1},
            OutputActivation::None, seed + 3);
        colorMlpPtr = std::make_unique<Mlp>(
            std::vector<int>{colorGridPtr->outputDim() + dirEncodingDim,
                             cfg.hiddenDim, 3},
            OutputActivation::Sigmoid, seed + 4);
    } else {
        densityMlpPtr = std::make_unique<Mlp>(
            std::vector<int>{densityGridPtr->outputDim(), cfg.hiddenDim,
                             1 + cfg.geoFeatureDim},
            OutputActivation::None, seed + 3);
        colorMlpPtr = std::make_unique<Mlp>(
            std::vector<int>{cfg.geoFeatureDim + dirEncodingDim,
                             cfg.hiddenDim, 3},
            OutputActivation::Sigmoid, seed + 4);
    }
}

FieldSample
NerfField::query(const Vec3 &p, const Vec3 &d, FieldRecord *rec)
{
    queries.fetch_add(1, std::memory_order_relaxed);
    FieldSample out;

    float dir_enc[dirEncodingDim];
    encodeDirection(d, dir_enc);

    if (cfg.mode == FieldMode::Vanilla) {
        std::vector<float> pos_enc(cfg.posEncodingDim());
        encodePosition(clamp(p, 0.0f, 1.0f), cfg.posEncFrequencies,
                       pos_enc.data());
        std::vector<float> dens_out(1 + cfg.geoFeatureDim);
        densityMlpPtr->forward(pos_enc.data(), dens_out.data(),
                               rec ? &rec->densityMlp : nullptr);
        out.sigma = softplus(dens_out[0]);

        std::vector<float> col_in(dens_out.begin() + 1, dens_out.end());
        col_in.insert(col_in.end(), dir_enc, dir_enc + dirEncodingDim);
        float rgb[3];
        colorMlpPtr->forward(col_in.data(), rgb,
                             rec ? &rec->colorMlp : nullptr);
        out.rgb = {rgb[0], rgb[1], rgb[2]};
        if (rec) {
            rec->densityFeat = std::move(pos_enc);
            rec->dirEnc.assign(dir_enc, dir_enc + dirEncodingDim);
            rec->rawSigma = dens_out[0];
            rec->densityOut = std::move(dens_out);
        }
        return out;
    }

    std::vector<float> dens_feat(densityGridPtr->outputDim());
    densityGridPtr->encode(p, dens_feat.data(),
                           rec ? &rec->densityEnc : nullptr);

    if (cfg.mode == FieldMode::Decoupled) {
        float sigma_raw = 0.0f;
        densityMlpPtr->forward(dens_feat.data(), &sigma_raw,
                               rec ? &rec->densityMlp : nullptr);
        out.sigma = softplus(sigma_raw);

        std::vector<float> col_feat(colorGridPtr->outputDim());
        colorGridPtr->encode(p, col_feat.data(),
                             rec ? &rec->colorEnc : nullptr);

        std::vector<float> col_in(col_feat);
        col_in.insert(col_in.end(), dir_enc, dir_enc + dirEncodingDim);
        float rgb[3];
        colorMlpPtr->forward(col_in.data(), rgb,
                             rec ? &rec->colorMlp : nullptr);
        out.rgb = {rgb[0], rgb[1], rgb[2]};

        if (rec) {
            rec->densityFeat = std::move(dens_feat);
            rec->colorFeat = std::move(col_feat);
            rec->dirEnc.assign(dir_enc, dir_enc + dirEncodingDim);
            rec->rawSigma = sigma_raw;
        }
    } else {
        std::vector<float> dens_out(1 + cfg.geoFeatureDim);
        densityMlpPtr->forward(dens_feat.data(), dens_out.data(),
                               rec ? &rec->densityMlp : nullptr);
        out.sigma = softplus(dens_out[0]);

        std::vector<float> col_in(dens_out.begin() + 1, dens_out.end());
        col_in.insert(col_in.end(), dir_enc, dir_enc + dirEncodingDim);
        float rgb[3];
        colorMlpPtr->forward(col_in.data(), rgb,
                             rec ? &rec->colorMlp : nullptr);
        out.rgb = {rgb[0], rgb[1], rgb[2]};

        if (rec) {
            rec->densityFeat = std::move(dens_feat);
            rec->dirEnc.assign(dir_enc, dir_enc + dirEncodingDim);
            rec->rawSigma = dens_out[0];
            rec->densityOut = std::move(dens_out);
        }
    }
    return out;
}

void
NerfField::backward(const FieldRecord &rec, float d_sigma,
                    const Vec3 &d_rgb, bool update_density,
                    bool update_color)
{
    float d_rgb_arr[3] = {d_rgb.x, d_rgb.y, d_rgb.z};

    if (cfg.mode == FieldMode::Decoupled) {
        if (update_color) {
            std::vector<float> d_col_in(
                colorGridPtr->outputDim() + dirEncodingDim);
            colorMlpPtr->backward(rec.colorMlp, d_rgb_arr,
                                  d_col_in.data());
            colorGridPtr->backward(rec.colorEnc, d_col_in.data());
        }
        if (update_density) {
            float d_raw = d_sigma * softplusDerivative(rec.rawSigma);
            std::vector<float> d_feat(densityGridPtr->outputDim());
            densityMlpPtr->backward(rec.densityMlp, &d_raw,
                                    d_feat.data());
            densityGridPtr->backward(rec.densityEnc, d_feat.data());
        }
        return;
    }

    // Coupled / vanilla modes: the color MLP must run backward to
    // reach the shared trunk even when the color group is frozen.
    std::vector<float> d_col_in(cfg.geoFeatureDim + dirEncodingDim);
    colorMlpPtr->backward(rec.colorMlp, d_rgb_arr, d_col_in.data());

    std::vector<float> d_dens_out(1 + cfg.geoFeatureDim, 0.0f);
    d_dens_out[0] = d_sigma * softplusDerivative(rec.rawSigma);
    for (int i = 0; i < cfg.geoFeatureDim; i++)
        d_dens_out[1 + i] = d_col_in[i];

    if (update_density) {
        if (cfg.mode == FieldMode::Vanilla) {
            // Positional encoding has no trainable parameters.
            densityMlpPtr->backward(rec.densityMlp, d_dens_out.data(),
                                    nullptr);
        } else {
            std::vector<float> d_feat(densityGridPtr->outputDim());
            densityMlpPtr->backward(rec.densityMlp, d_dens_out.data(),
                                    d_feat.data());
            densityGridPtr->backward(rec.densityEnc, d_feat.data());
        }
    }
}

void
NerfField::queryBatch(const Vec3 *pts, int n, const Vec3 &d,
                      FieldSample *out, FieldBatchRecord *rec,
                      Workspace &ws, const FieldTraceOverride *trace)
{
    RaySpan span{0, n};
    queryStream(pts, n, &span, &d, 1, out, rec, ws, trace);
}

void
NerfField::queryStream(const Vec3 *pts, int n, const RaySpan *spans,
                       const Vec3 *dirs, int numRays, FieldSample *out,
                       FieldBatchRecord *rec, Workspace &ws,
                       const FieldTraceOverride *trace)
{
    if (n <= 0)
        return;
    queries.fetch_add(static_cast<uint64_t>(n),
                      std::memory_order_relaxed);

    // One direction encoding per ray, broadcast over that ray's span
    // when the color-MLP input rows are assembled. Rays whose whole
    // span was skipped (e.g. sky pixels) never need one.
    float *dir_enc =
        ws.alloc<float>(static_cast<size_t>(numRays) * dirEncodingDim);
    for (int r = 0; r < numRays; r++) {
        if (spans[r].count == 0)
            continue;
        encodeDirection(dirs[r],
                        dir_enc + static_cast<size_t>(r) * dirEncodingDim);
    }

    if (rec)
        rec->n = n;
    TraceSink *dsink = trace ? trace->density : nullptr;
    TraceSink *csink = trace ? trace->color : nullptr;

    if (cfg.mode == FieldMode::Decoupled) {
        const int ddim = densityGridPtr->outputDim();
        float *dens_feat =
            ws.alloc<float>(static_cast<size_t>(n) * ddim);
        densityGridPtr->encodeBatch(pts, n, dens_feat,
                                    rec ? &rec->densityEnc : nullptr,
                                    ws, dsink);
        float *raw = ws.alloc<float>(n);
        densityMlpPtr->forwardBatch(dens_feat, n, raw,
                                    rec ? &rec->densityMlp : nullptr,
                                    ws);

        const int cdim = colorGridPtr->outputDim();
        float *col_feat =
            ws.alloc<float>(static_cast<size_t>(n) * cdim);
        colorGridPtr->encodeBatch(pts, n, col_feat,
                                  rec ? &rec->colorEnc : nullptr, ws,
                                  csink);

        const int cin = cdim + dirEncodingDim;
        float *col_in = ws.alloc<float>(static_cast<size_t>(n) * cin);
        for (int r = 0; r < numRays; r++) {
            const float *de =
                dir_enc + static_cast<size_t>(r) * dirEncodingDim;
            for (int s = spans[r].offset;
                 s < spans[r].offset + spans[r].count; s++) {
                float *row = col_in + static_cast<size_t>(s) * cin;
                std::copy(col_feat + static_cast<size_t>(s) * cdim,
                          col_feat + static_cast<size_t>(s + 1) * cdim,
                          row);
                std::copy(de, de + dirEncodingDim, row + cdim);
            }
        }
        float *rgb = ws.alloc<float>(static_cast<size_t>(n) * 3);
        colorMlpPtr->forwardBatch(col_in, n, rgb,
                                  rec ? &rec->colorMlp : nullptr, ws);

        for (int s = 0; s < n; s++) {
            out[s].sigma = softplus(raw[s]);
            out[s].rgb = {rgb[3 * s], rgb[3 * s + 1], rgb[3 * s + 2]};
        }
        if (rec)
            rec->rawSigma = raw;
        return;
    }

    // Coupled and vanilla modes share the chained-trunk layout; they
    // differ only in how the trunk input is produced.
    const int in_dim = cfg.mode == FieldMode::Vanilla
                           ? cfg.posEncodingDim()
                           : densityGridPtr->outputDim();
    float *trunk_in = ws.alloc<float>(static_cast<size_t>(n) * in_dim);
    if (cfg.mode == FieldMode::Vanilla) {
        for (int s = 0; s < n; s++) {
            encodePosition(clamp(pts[s], 0.0f, 1.0f),
                           cfg.posEncFrequencies,
                           trunk_in + static_cast<size_t>(s) * in_dim);
        }
    } else {
        densityGridPtr->encodeBatch(pts, n, trunk_in,
                                    rec ? &rec->densityEnc : nullptr,
                                    ws, dsink);
    }

    const int odim = 1 + cfg.geoFeatureDim;
    float *dens_out = ws.alloc<float>(static_cast<size_t>(n) * odim);
    densityMlpPtr->forwardBatch(trunk_in, n, dens_out,
                                rec ? &rec->densityMlp : nullptr, ws);

    const int cin = cfg.geoFeatureDim + dirEncodingDim;
    float *col_in = ws.alloc<float>(static_cast<size_t>(n) * cin);
    for (int r = 0; r < numRays; r++) {
        const float *de =
            dir_enc + static_cast<size_t>(r) * dirEncodingDim;
        for (int s = spans[r].offset;
             s < spans[r].offset + spans[r].count; s++) {
            float *row = col_in + static_cast<size_t>(s) * cin;
            const float *geo =
                dens_out + static_cast<size_t>(s) * odim + 1;
            std::copy(geo, geo + cfg.geoFeatureDim, row);
            std::copy(de, de + dirEncodingDim, row + cfg.geoFeatureDim);
        }
    }
    float *rgb = ws.alloc<float>(static_cast<size_t>(n) * 3);
    colorMlpPtr->forwardBatch(col_in, n, rgb,
                              rec ? &rec->colorMlp : nullptr, ws);

    float *raw = ws.alloc<float>(n);
    for (int s = 0; s < n; s++) {
        raw[s] = dens_out[static_cast<size_t>(s) * odim];
        out[s].sigma = softplus(raw[s]);
        out[s].rgb = {rgb[3 * s], rgb[3 * s + 1], rgb[3 * s + 2]};
    }
    if (rec)
        rec->rawSigma = raw;
}

void
NerfField::backwardBatch(const FieldBatchRecord &rec, const float *d_sigma,
                         const Vec3 *d_rgb, const uint8_t *skip,
                         bool update_density, bool update_color,
                         FieldGradients *target, Workspace &ws,
                         const FieldTraceOverride *trace)
{
    // Descending sample order: the renderer's compositing order, and
    // the order the sequential path applies gradients in.
    int *order = ws.alloc<int>(rec.n);
    for (int i = 0; i < rec.n; i++)
        order[i] = rec.n - 1 - i;
    backwardSamples(rec, order, rec.n, d_sigma, d_rgb, skip,
                    update_density, update_color, target, ws, trace,
                    nullptr);
}

void
NerfField::backwardStream(const FieldBatchRecord &rec, const RaySpan *spans,
                          int numRays, const float *d_sigma,
                          const Vec3 *d_rgb, const uint8_t *skip,
                          bool update_density, bool update_color,
                          FieldGradients *target, Workspace &ws,
                          const FieldTraceOverride *trace,
                          FieldGradMergers *mergers)
{
    panicIf(mergers && !target,
            "merged gradient writes need a target shard set");

    // Rays ascending, samples descending within each span: exactly the
    // accumulation order of per-ray backwardBatch calls in ray order.
    int *order = ws.alloc<int>(rec.n);
    int count = 0;
    for (int r = 0; r < numRays; r++)
        for (int s = spans[r].offset + spans[r].count - 1;
             s >= spans[r].offset; s--)
            order[count++] = s;

    if (mergers) {
        if (densityGridPtr)
            mergers->density.reset(static_cast<uint32_t>(
                densityGridPtr->config().featuresPerEntry));
        if (colorGridPtr)
            mergers->color.reset(static_cast<uint32_t>(
                colorGridPtr->config().featuresPerEntry));
    }

    backwardSamples(rec, order, count, d_sigma, d_rgb, skip,
                    update_density, update_color, target, ws, trace,
                    mergers);

    if (mergers) {
        if (densityGridPtr)
            mergers->density.flushInto(target->densityGrid.v.data(),
                                       &target->densityGrid.touched);
        if (colorGridPtr)
            mergers->color.flushInto(target->colorGrid.v.data(),
                                     &target->colorGrid.touched);
    }
}

void
NerfField::backwardSamples(const FieldBatchRecord &rec, const int *order,
                           int count, const float *d_sigma,
                           const Vec3 *d_rgb, const uint8_t *skip,
                           bool update_density, bool update_color,
                           FieldGradients *target, Workspace &ws,
                           const FieldTraceOverride *trace,
                           FieldGradMergers *mergers)
{
    TraceSink *dsink = trace ? trace->density : nullptr;
    TraceSink *csink = trace ? trace->color : nullptr;

    float *g_dmlp = target ? target->densityMlp.v.data()
                           : densityMlpPtr->grads().data();
    float *g_cmlp = target ? target->colorMlp.v.data()
                           : colorMlpPtr->grads().data();

    if (cfg.mode == FieldMode::Decoupled) {
        float *g_dgrid = target ? target->densityGrid.v.data()
                                : densityGridPtr->grads().data();
        float *g_cgrid = target ? target->colorGrid.v.data()
                                : colorGridPtr->grads().data();
        auto *t_dgrid = target ? &target->densityGrid.touched : nullptr;
        auto *t_cgrid = target ? &target->colorGrid.touched : nullptr;

        const int cin = colorGridPtr->outputDim() + dirEncodingDim;
        float *d_col_in = ws.alloc<float>(cin);
        float *d_feat = ws.alloc<float>(densityGridPtr->outputDim());

        for (int i = 0; i < count; i++) {
            const int s = order[i];
            if (skip && skip[s])
                continue;
            float d_rgb_arr[3] = {d_rgb[s].x, d_rgb[s].y, d_rgb[s].z};
            if (update_color) {
                colorMlpPtr->backwardSample(rec.colorMlp, s, d_rgb_arr,
                                            d_col_in, g_cmlp, ws);
                if (mergers)
                    colorGridPtr->backwardSampleMerged(rec.colorEnc, s,
                                                       d_col_in,
                                                       mergers->color,
                                                       csink);
                else
                    colorGridPtr->backwardSample(rec.colorEnc, s,
                                                 d_col_in, g_cgrid,
                                                 t_cgrid, csink);
            }
            if (update_density) {
                float d_raw =
                    d_sigma[s] * softplusDerivative(rec.rawSigma[s]);
                densityMlpPtr->backwardSample(rec.densityMlp, s, &d_raw,
                                              d_feat, g_dmlp, ws);
                if (mergers)
                    densityGridPtr->backwardSampleMerged(
                        rec.densityEnc, s, d_feat, mergers->density,
                        dsink);
                else
                    densityGridPtr->backwardSample(rec.densityEnc, s,
                                                   d_feat, g_dgrid,
                                                   t_dgrid, dsink);
            }
        }
        return;
    }

    // Coupled / vanilla: the color MLP always runs backward to reach
    // the shared trunk (its own gradients are simply never stepped on
    // frozen iterations).
    const int cin = cfg.geoFeatureDim + dirEncodingDim;
    const int odim = 1 + cfg.geoFeatureDim;
    float *d_col_in = ws.alloc<float>(cin);
    float *d_dens_out = ws.alloc<float>(odim);
    float *d_feat = cfg.mode == FieldMode::Vanilla
                        ? nullptr
                        : ws.alloc<float>(densityGridPtr->outputDim());
    float *g_dgrid = nullptr;
    std::vector<uint32_t> *t_dgrid = nullptr;
    if (cfg.mode != FieldMode::Vanilla) {
        g_dgrid = target ? target->densityGrid.v.data()
                         : densityGridPtr->grads().data();
        t_dgrid = target ? &target->densityGrid.touched : nullptr;
    }

    for (int i = 0; i < count; i++) {
        const int s = order[i];
        if (skip && skip[s])
            continue;
        float d_rgb_arr[3] = {d_rgb[s].x, d_rgb[s].y, d_rgb[s].z};
        colorMlpPtr->backwardSample(rec.colorMlp, s, d_rgb_arr, d_col_in,
                                    g_cmlp, ws);

        d_dens_out[0] = d_sigma[s] * softplusDerivative(rec.rawSigma[s]);
        for (int j = 0; j < cfg.geoFeatureDim; j++)
            d_dens_out[1 + j] = d_col_in[j];

        if (update_density) {
            if (cfg.mode == FieldMode::Vanilla) {
                densityMlpPtr->backwardSample(rec.densityMlp, s,
                                              d_dens_out, nullptr,
                                              g_dmlp, ws);
            } else {
                densityMlpPtr->backwardSample(rec.densityMlp, s,
                                              d_dens_out, d_feat,
                                              g_dmlp, ws);
                if (mergers)
                    densityGridPtr->backwardSampleMerged(
                        rec.densityEnc, s, d_feat, mergers->density,
                        dsink);
                else
                    densityGridPtr->backwardSample(rec.densityEnc, s,
                                                   d_feat, g_dgrid,
                                                   t_dgrid, dsink);
            }
        }
    }
}

void
NerfField::prepareGradients(FieldGradients &g) const
{
    auto prep_sparse = [](GradShard &s, size_t size, uint32_t span) {
        s.dense = false;
        s.span = span;
        if (s.v.size() != size)
            s.v.assign(size, 0.0f);
        s.touched.clear();
    };
    auto prep_dense = [](GradShard &s, size_t size) {
        s.dense = true;
        s.span = 1;
        if (s.v.size() != size)
            s.v.assign(size, 0.0f);
        s.touched.clear();
    };

    if (densityGridPtr) {
        prep_sparse(g.densityGrid, densityGridPtr->grads().size(),
                    static_cast<uint32_t>(
                        densityGridPtr->config().featuresPerEntry));
    }
    if (colorGridPtr) {
        prep_sparse(g.colorGrid, colorGridPtr->grads().size(),
                    static_cast<uint32_t>(
                        colorGridPtr->config().featuresPerEntry));
    }
    prep_dense(g.densityMlp, densityMlpPtr->grads().size());
    prep_dense(g.colorMlp, colorMlpPtr->grads().size());
}

void
NerfField::noteDirty(DirtySet &set, const std::vector<uint32_t> &touched,
                     uint32_t span) const
{
    for (uint32_t off : touched) {
        const uint32_t entry = off / span;
        uint64_t &word = set.bits[entry >> 6];
        const uint64_t bit = 1ull << (entry & 63);
        if (!(word & bit)) {
            word |= bit;
            set.entries.push_back(off);
        }
    }
}

void
NerfField::resetDirty(DirtySet &set)
{
    // The bitmap is one bit per table entry, so the per-iteration
    // clear is a few KB of memset -- cheaper than any epoch scheme's
    // extra indirection in the hot membership test.
    std::fill(set.bits.begin(), set.bits.end(), 0ull);
    set.entries.clear();
}

void
NerfField::setDirtyTracking(bool enable)
{
    trackDirty = enable;
    if (!enable)
        return;
    auto init = [](DirtySet &set, size_t grads_size, uint32_t span) {
        set.bits.assign((grads_size / span + 63) / 64, 0ull);
        set.entries.clear();
    };
    if (densityGridPtr) {
        init(dirtyDensity, densityGridPtr->grads().size(),
             static_cast<uint32_t>(
                 densityGridPtr->config().featuresPerEntry));
    }
    if (colorGridPtr) {
        init(dirtyColor, colorGridPtr->grads().size(),
             static_cast<uint32_t>(
                 colorGridPtr->config().featuresPerEntry));
    }
}

const std::vector<uint32_t> &
NerfField::dirtyEntries(ParamGroupId id) const
{
    panicIf(!trackDirty, "dirty tracking is not enabled");
    switch (id) {
      case ParamGroupId::DensityGrid:
        panicIf(!densityGridPtr, "field mode has no density grid");
        return dirtyDensity.entries;
      case ParamGroupId::ColorGrid:
        panicIf(!colorGridPtr, "field mode has no color grid");
        return dirtyColor.entries;
      default:
        panic("only grid groups have dirty lists");
    }
}

void
NerfField::zeroGradDirty()
{
    panicIf(!trackDirty, "zeroGradDirty() needs dirty tracking");
    if (densityGridPtr) {
        densityGridPtr->zeroGradEntries(dirtyDensity.entries);
        resetDirty(dirtyDensity);
    }
    if (colorGridPtr) {
        colorGridPtr->zeroGradEntries(dirtyColor.entries);
        resetDirty(dirtyColor);
    }
    densityMlpPtr->zeroGrad();
    colorMlpPtr->zeroGrad();
}

void
NerfField::reduceGradients(FieldGradients &g)
{
    const KernelBackend &kb = resolveBackend(kernelBackend);
    auto reduce_sparse = [](GradShard &s, std::vector<float> &dst) {
        for (uint32_t off : s.touched) {
            for (uint32_t f = 0; f < s.span; f++) {
                dst[off + f] += s.v[off + f];
                s.v[off + f] = 0.0f;
            }
        }
        s.touched.clear();
    };
    auto reduce_dense = [&kb](GradShard &s, std::vector<float> &dst) {
        kb.reduceDense(dst.data(), s.v.data(), s.v.size());
    };

    if (densityGridPtr && !g.densityGrid.v.empty()) {
        if (trackDirty)
            noteDirty(dirtyDensity, g.densityGrid.touched,
                      g.densityGrid.span);
        reduce_sparse(g.densityGrid, densityGridPtr->grads());
    }
    if (colorGridPtr && !g.colorGrid.v.empty()) {
        if (trackDirty)
            noteDirty(dirtyColor, g.colorGrid.touched, g.colorGrid.span);
        reduce_sparse(g.colorGrid, colorGridPtr->grads());
    }
    if (!g.densityMlp.v.empty())
        reduce_dense(g.densityMlp, densityMlpPtr->grads());
    if (!g.colorMlp.v.empty())
        reduce_dense(g.colorMlp, colorMlpPtr->grads());
}

void
NerfField::setKernelBackend(const KernelBackend *backend)
{
    kernelBackend = backend;
    if (densityGridPtr)
        densityGridPtr->setKernelBackend(backend);
    if (colorGridPtr)
        colorGridPtr->setKernelBackend(backend);
    densityMlpPtr->setKernelBackend(backend);
    colorMlpPtr->setKernelBackend(backend);
}

bool
NerfField::traceAttached() const
{
    return (densityGridPtr &&
            densityGridPtr->attachedTraceSink() != nullptr) ||
           (colorGridPtr &&
            colorGridPtr->attachedTraceSink() != nullptr);
}

HashEncoding &
NerfField::densityGrid()
{
    panicIf(!densityGridPtr, "field mode has no density grid");
    return *densityGridPtr;
}

HashEncoding &
NerfField::colorGrid()
{
    panicIf(!colorGridPtr, "field mode has no color grid");
    return *colorGridPtr;
}

std::vector<float> &
NerfField::groupParams(ParamGroupId id)
{
    switch (id) {
      case ParamGroupId::DensityGrid:
        panicIf(!densityGridPtr, "field mode has no density grid");
        return densityGridPtr->params();
      case ParamGroupId::ColorGrid:
        panicIf(!colorGridPtr, "coupled field has no color grid");
        return colorGridPtr->params();
      case ParamGroupId::DensityMlp:
        return densityMlpPtr->params();
      case ParamGroupId::ColorMlp:
        return colorMlpPtr->params();
    }
    panic("unreachable param group");
}

std::vector<float> &
NerfField::groupGrads(ParamGroupId id)
{
    switch (id) {
      case ParamGroupId::DensityGrid:
        panicIf(!densityGridPtr, "field mode has no density grid");
        return densityGridPtr->grads();
      case ParamGroupId::ColorGrid:
        panicIf(!colorGridPtr, "coupled field has no color grid");
        return colorGridPtr->grads();
      case ParamGroupId::DensityMlp:
        return densityMlpPtr->grads();
      case ParamGroupId::ColorMlp:
        return colorMlpPtr->grads();
    }
    panic("unreachable param group");
}

std::vector<ParamGroupId>
NerfField::paramGroups() const
{
    switch (cfg.mode) {
      case FieldMode::Decoupled:
        return {ParamGroupId::DensityGrid, ParamGroupId::ColorGrid,
                ParamGroupId::DensityMlp, ParamGroupId::ColorMlp};
      case FieldMode::Coupled:
        return {ParamGroupId::DensityGrid, ParamGroupId::DensityMlp,
                ParamGroupId::ColorMlp};
      case FieldMode::Vanilla:
        return {ParamGroupId::DensityMlp, ParamGroupId::ColorMlp};
    }
    panic("unreachable field mode");
}

void
NerfField::zeroGrad()
{
    if (densityGridPtr)
        densityGridPtr->zeroGrad();
    if (colorGridPtr)
        colorGridPtr->zeroGrad();
    densityMlpPtr->zeroGrad();
    colorMlpPtr->zeroGrad();
    // A full clear also settles the dirty bookkeeping, so mixing the
    // two clear paths cannot leave stale dirty lists behind.
    if (trackDirty) {
        resetDirty(dirtyDensity);
        resetDirty(dirtyColor);
    }
}

} // namespace instant3d
