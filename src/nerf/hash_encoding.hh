/**
 * @file
 * Multiresolution hash-grid embedding (Instant-NGP Step 3-1).
 *
 * Each level l has a virtual dense grid of resolution N_l whose vertex
 * embeddings live in a 1D hash table of T entries x F features, indexed
 * by the paper's Eq. 3 spatial hash:
 *
 *     h = (pi1*x XOR pi2*y XOR pi3*z) mod T,
 *     pi1 = 1, pi2 = 2654435761, pi3 = 805459861.
 *
 * A query point is encoded by trilinear interpolation of its 8
 * surrounding vertices at every level; the backward pass scatters the
 * output gradient back to the same 8 entries. Both directions report
 * every table access to an optional TraceSink.
 */

#ifndef INSTANT3D_NERF_HASH_ENCODING_HH
#define INSTANT3D_NERF_HASH_ENCODING_HH

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/vec3.hh"
#include "common/workspace.hh"
#include "nerf/trace_sink.hh"

namespace instant3d {

class KernelBackend;

/** Static configuration of one hash-grid encoding. */
struct HashEncodingConfig
{
    int numLevels = 8;            //!< L, multiresolution levels.
    int featuresPerEntry = 2;     //!< F, features per hash-table entry.
    uint32_t log2TableSize = 14;  //!< T = 2^log2TableSize entries/level.
    int baseResolution = 16;      //!< N_min, coarsest grid resolution.
    float growthFactor = 1.45f;   //!< b, per-level resolution growth.

    uint32_t tableSize() const { return 1u << log2TableSize; }
    int outputDim() const { return numLevels * featuresPerEntry; }

    /**
     * Scale the table size by the paper's S ratio (e.g. S_C = 0.25
     * shrinks the color table 4x, i.e. two fewer address bits).
     * Ratios are snapped to the nearest power of two >= 2^6.
     */
    HashEncodingConfig scaledBy(float size_ratio) const;
};

/**
 * Per-point record of one forward encoding, kept so backward() can
 * scatter gradients without re-deriving vertex addresses.
 */
struct EncodeRecord
{
    /** 8 table addresses per level (level-major, corner-minor). */
    std::vector<uint32_t> addresses;
    /** 8 trilinear weights per level, same layout. */
    std::vector<float> weights;
};

/**
 * Record of a batch of n encodings, arena-backed (valid until the
 * owning Workspace resets). Point-major: sample s's slice is
 * [s * numLevels * 8, (s+1) * numLevels * 8), level-major within it.
 */
struct EncodeBatchRecord
{
    uint32_t *addresses = nullptr;
    float *weights = nullptr;
    int n = 0;
};

/**
 * BUM-style merger of hash-table gradient writes (paper Fig 10).
 *
 * Back-propagation scatters 8 entry updates per level per sample, and
 * those writes cluster on shared addresses near surfaces. The paper's
 * BUM unit coalesces colliding updates in a small associative buffer
 * before they reach memory; this class models that with a per-chunk
 * open-addressed accumulator: push() folds each (entry offset, delta)
 * write into the entry's accumulator in program order, and flushInto()
 * applies each unique entry to the gradient table exactly once, in
 * ascending offset order, with a deduplicated touch list.
 *
 * Because every gradient shard starts from zero, accumulating deltas
 * per address in program order yields bit-identical sums to the direct
 * scatter (0 + d == d in IEEE-754), so merging changes memory traffic
 * -- writes per unique entry instead of per scatter -- but not a
 * single bit of the training result.
 */
class HashGradMerger
{
  public:
    /** A fresh merger behaves like reset(1): safe to push immediately. */
    HashGradMerger() { slots.assign(kMinSlots, kEmpty); }

    /**
     * Prepare for a new chunk: set the entry span, drop old writes.
     * The open-addressed table is sized from the previous flush's
     * unique-entry count (next power of two holding it under 1/2 load)
     * instead of whatever high-water mark earlier chunks reached --
     * chunks are stable across iterations, so the previous touch count
     * is the right capacity hint, and both the reset fill and the
     * flush clear stay proportional to actual traffic. Table size only
     * affects probe order, never the per-address sums, so results are
     * unchanged.
     */
    void reset(uint32_t features_per_entry);

    /** Merge one scatter: entry `offset` accumulates w * d_out[0..span). */
    void
    push(uint32_t offset, float w, const float *d_out)
    {
        pushedRunning++;
        const uint32_t mask =
            static_cast<uint32_t>(slots.size()) - 1;
        uint32_t h = (offset * 2654435761u) & mask;
        for (;;) {
            const uint32_t s = slots[h];
            if (s == kEmpty) {
                insertAt(h, offset, w, d_out);
                return;
            }
            if (uniqOffs[s] == offset) {
                float *acc = accs.data() + static_cast<size_t>(s) * span;
                for (uint32_t f = 0; f < span; f++)
                    acc[f] += w * d_out[f];
                return;
            }
            h = (h + 1) & mask;
        }
    }

    /**
     * Apply each unique entry once into `grad` (ascending offset
     * order) and append the unique offsets to `touched` (optional).
     * Clears the accumulator; pushedWrites()/uniqueEntries() report
     * the merge ratio of the flushed chunk.
     */
    void flushInto(float *grad, std::vector<uint32_t> *touched);

    /** Writes merged since the last reset (or before the last flush). */
    size_t pushedWrites() const { return pushed; }

    /** Unique entries applied by the last flush. */
    size_t uniqueEntries() const { return unique; }

  private:
    static constexpr uint32_t kEmpty = 0xffffffffu;
    static constexpr size_t kMinSlots = 1024;

    void insertAt(uint32_t slot, uint32_t offset, float w,
                  const float *d_out);
    void grow();

    uint32_t span = 1;
    bool tableClean = true;         //!< slots are all kEmpty right now.
    std::vector<uint32_t> slots;    //!< Open-addressed: offset -> index.
    std::vector<uint32_t> uniqOffs; //!< Unique offsets, first-touch order.
    std::vector<float> accs;        //!< uniqOffs.size() * span sums.
    std::vector<uint64_t> order;    //!< Flush scratch: offset<<32 | index.
    size_t pushedRunning = 0;
    size_t pushed = 0;
    size_t unique = 0;
};

/**
 * One multiresolution hash-grid with trainable embeddings.
 */
class HashEncoding
{
  public:
    HashEncoding(const HashEncodingConfig &config, uint64_t seed);

    const HashEncodingConfig &config() const { return cfg; }
    int outputDim() const { return cfg.outputDim(); }

    /** Grid resolution N_l of the given level. */
    int levelResolution(int level) const { return resolutions[level]; }

    /**
     * Eq. 3 spatial hash of a vertex coordinate into [0, table_size).
     * table_size must be a power of two.
     */
    static uint32_t hashCoords(uint32_t x, uint32_t y, uint32_t z,
                               uint32_t table_size);

    /**
     * Encode point p (clamped to [0,1]^3) into out[outputDim()].
     * @param rec  If non-null, filled for a later backward().
     */
    void encode(const Vec3 &p, float *out, EncodeRecord *rec = nullptr);

    /**
     * Scatter dL/dout (length outputDim()) into the gradient table for
     * the accesses recorded in rec.
     */
    void backward(const EncodeRecord &rec, const float *d_out);

    /**
     * Encode n points into out (n x outputDim(), sample-major), reusing
     * arena scratch: after the first call through a Workspace no heap
     * allocation happens. Per-point arithmetic, trace records, and
     * counter totals are identical to calling encode() n times.
     *
     * Thread safety: concurrent encodeBatch calls on one encoding are
     * safe (counters are atomic); pass `sink` to redirect trace records
     * to a per-thread buffer (nullptr uses the attached sink, which is
     * only safe single-threaded).
     *
     * @param rec   If non-null, filled with arena-backed buffers for a
     *              later backwardSample()/backwardBatch().
     * @param sink  Per-call trace sink override.
     */
    void encodeBatch(const Vec3 *pts, int n, float *out,
                     EncodeBatchRecord *rec, Workspace &ws,
                     TraceSink *sink = nullptr);

    /**
     * Backward of sample s from a batch record into an external
     * gradient table `grad` (same shape as grads()). Appends the base
     * offset of every touched entry to `touched` when non-null (entries
     * span featuresPerEntry consecutive floats) -- the sparse touch
     * list lets the trainer reduce per-thread gradient shards without
     * scanning whole tables. Trace records go to `sink` (nullptr = the
     * attached sink).
     */
    void backwardSample(const EncodeBatchRecord &rec, int s,
                        const float *d_out, float *grad,
                        std::vector<uint32_t> *touched,
                        TraceSink *sink = nullptr);

    /** Batch backward in ascending sample order; d_out is sample-major. */
    void backwardBatch(const EncodeBatchRecord &rec, const float *d_out,
                       float *grad, std::vector<uint32_t> *touched,
                       TraceSink *sink = nullptr);

    /**
     * Like backwardSample(), but buffers every entry write into
     * `merger` instead of scattering into a gradient table; the caller
     * flushes the merger once per chunk (HashGradMerger::flushInto).
     * Trace records and write counters are identical to the direct
     * scatter -- merging only changes how the deltas reach memory.
     */
    void backwardSampleMerged(const EncodeBatchRecord &rec, int s,
                              const float *d_out, HashGradMerger &merger,
                              TraceSink *sink = nullptr);

    /** Trainable parameters, length numLevels * T * F. */
    std::vector<float> &params() { return table; }
    const std::vector<float> &params() const { return table; }

    /** Gradient accumulator, same shape as params(). */
    std::vector<float> &grads() { return gradTable; }

    void zeroGrad();

    /**
     * Zero only the gradient entries whose base offsets are listed in
     * `touched` (each spans featuresPerEntry floats; duplicates are
     * harmless). With the all-zero-outside-touched invariant the
     * trainer maintains, this restores the fully-zeroed state in
     * O(touched) instead of O(table).
     */
    void zeroGradEntries(const std::vector<uint32_t> &touched);

    /** Bytes of embedding storage (fp16 entries, as on the accelerator). */
    size_t storageBytes() const;

    /**
     * Round every stored embedding through IEEE-754 binary16, modelling
     * the accelerator's 16-bit datapath (Sec 5.1: "16-bit half-
     * precision floating-point arithmetic for all algorithm-related
     * computations"). Returns the maximum absolute rounding error.
     */
    float quantizeToHalf();

    /** Attach/detach a memory-access trace sink (nullptr detaches). */
    void setTraceSink(TraceSink *sink) { traceSink = sink; }

    /** The currently attached sink, or nullptr. */
    TraceSink *attachedTraceSink() const { return traceSink; }

    /** Total reads/writes issued since construction (workload stats). */
    uint64_t readCount() const
    { return reads.load(std::memory_order_relaxed); }
    uint64_t writeCount() const
    { return writes.load(std::memory_order_relaxed); }

    /** Next point id to be assigned (deterministic between batches). */
    uint32_t pointIdCounter() const
    { return nextPointId.load(std::memory_order_relaxed); }

    /**
     * Route the batched kernels (encodeBatch interpolation, untraced
     * backward scatters) through the given backend; nullptr restores
     * the scalar reference. The scalar encode()/backward() pair stays
     * on the reference loops.
     */
    void setKernelBackend(const KernelBackend *backend)
    { kernelBackend = backend; }

  private:
    /** Flat offset of (level, address, feature 0). */
    size_t
    entryOffset(int level, uint32_t address) const
    {
        return (static_cast<size_t>(level) * cfg.tableSize() + address) *
               cfg.featuresPerEntry;
    }

    /**
     * Shared forward kernel: encode p into out[outputDim()], optionally
     * recording addresses/weights into caller slices (numLevels * 8).
     */
    void encodeOne(const Vec3 &p, float *out, uint32_t *addr_slots,
                   float *weight_slots, TraceSink *sink,
                   uint32_t point_id) const;

    /**
     * Integer phase of one encode: corner addresses, trilinear
     * weights, and trace records into caller slices (numLevels * 8),
     * without touching the embedding table. The recorded batched path
     * pairs this with KernelBackend::hashInterpBatch; both this and
     * encodeOne derive their corners from the shared levelCorners
     * kernel, so the two paths cannot drift.
     */
    void encodeCorners(const Vec3 &p, uint32_t *addr_slots,
                       float *weight_slots, TraceSink *sink,
                       uint32_t point_id) const;

    /**
     * Corner addresses and trilinear weights of one level for an
     * already-clamped point -- the single source of the Eq. 3 address
     * arithmetic, shared by encodeOne and encodeCorners.
     */
    void levelCorners(const Vec3 &q, int level, uint32_t *addr8,
                      float *w8) const;

    /**
     * Shared backward kernel over recorded address/weight slices.
     * Exactly one of (`grad`, `merger`) receives the entry writes.
     */
    void backwardOne(const uint32_t *addrs, const float *ws,
                     const float *d_out, float *grad,
                     std::vector<uint32_t> *touched,
                     HashGradMerger *merger, TraceSink *sink) const;

    HashEncodingConfig cfg;
    std::vector<int> resolutions;
    std::vector<float> table;
    std::vector<float> gradTable;
    TraceSink *traceSink = nullptr;
    std::atomic<uint64_t> reads{0};
    std::atomic<uint64_t> writes{0};
    std::atomic<uint32_t> nextPointId{0};
    const KernelBackend *kernelBackend = nullptr; //!< null = scalar_ref.
};

} // namespace instant3d

#endif // INSTANT3D_NERF_HASH_ENCODING_HH
