#include "nerf/hash_encoding.hh"

#include <algorithm>
#include <cmath>

#include "common/half.hh"
#include "common/logging.hh"

namespace instant3d {

namespace {

constexpr uint32_t pi1 = 1u;
constexpr uint32_t pi2 = 2654435761u;
constexpr uint32_t pi3 = 805459861u;

} // namespace

HashEncodingConfig
HashEncodingConfig::scaledBy(float size_ratio) const
{
    fatalIf(size_ratio <= 0.0f, "grid size ratio must be positive");
    HashEncodingConfig out = *this;
    double target = static_cast<double>(tableSize()) * size_ratio;
    uint32_t bits = 6;
    while ((1ull << (bits + 1)) <= target && bits < 30)
        bits++;
    // Snap to the nearest power of two.
    double lo = static_cast<double>(1ull << bits);
    double hi = static_cast<double>(1ull << (bits + 1));
    out.log2TableSize = (target - lo < hi - target) ? bits : bits + 1;
    return out;
}

HashEncoding::HashEncoding(const HashEncodingConfig &config, uint64_t seed)
    : cfg(config)
{
    fatalIf(cfg.numLevels < 1, "hash encoding needs >= 1 level");
    fatalIf(cfg.featuresPerEntry < 1, "hash encoding needs >= 1 feature");
    fatalIf(cfg.log2TableSize < 4 || cfg.log2TableSize > 30,
            "hash table size out of supported range");

    resolutions.resize(cfg.numLevels);
    for (int l = 0; l < cfg.numLevels; l++) {
        resolutions[l] = std::max(
            2, static_cast<int>(std::floor(
                   cfg.baseResolution *
                   std::pow(cfg.growthFactor, static_cast<float>(l)))));
    }

    size_t n = static_cast<size_t>(cfg.numLevels) * cfg.tableSize() *
               cfg.featuresPerEntry;
    table.resize(n);
    gradTable.assign(n, 0.0f);

    // Instant-NGP initializes embeddings uniformly in [-1e-4, 1e-4].
    Rng rng(seed, 0x9e3779b97f4a7c15ULL);
    for (auto &v : table)
        v = rng.nextFloat(-1e-4f, 1e-4f);
}

uint32_t
HashEncoding::hashCoords(uint32_t x, uint32_t y, uint32_t z,
                         uint32_t table_size)
{
    uint32_t h = (x * pi1) ^ (y * pi2) ^ (z * pi3);
    return h & (table_size - 1u);
}

void
HashEncoding::encode(const Vec3 &p, float *out, EncodeRecord *rec)
{
    Vec3 q = clamp(p, 0.0f, 1.0f);
    const int fpe = cfg.featuresPerEntry;
    const uint32_t point_id = nextPointId++;

    if (rec) {
        rec->addresses.assign(static_cast<size_t>(cfg.numLevels) * 8, 0);
        rec->weights.assign(static_cast<size_t>(cfg.numLevels) * 8, 0.0f);
    }

    for (int l = 0; l < cfg.numLevels; l++) {
        float res = static_cast<float>(resolutions[l]);
        float fx = q.x * res;
        float fy = q.y * res;
        float fz = q.z * res;
        uint32_t x0 = static_cast<uint32_t>(fx);
        uint32_t y0 = static_cast<uint32_t>(fy);
        uint32_t z0 = static_cast<uint32_t>(fz);
        float wx = fx - static_cast<float>(x0);
        float wy = fy - static_cast<float>(y0);
        float wz = fz - static_cast<float>(z0);

        for (int f = 0; f < fpe; f++)
            out[l * fpe + f] = 0.0f;

        for (int corner = 0; corner < 8; corner++) {
            uint32_t cx = x0 + static_cast<uint32_t>(corner & 1);
            uint32_t cy = y0 + static_cast<uint32_t>((corner >> 1) & 1);
            uint32_t cz = z0 + static_cast<uint32_t>((corner >> 2) & 1);
            uint32_t addr = hashCoords(cx, cy, cz, cfg.tableSize());
            float w = ((corner & 1) ? wx : 1.0f - wx) *
                      (((corner >> 1) & 1) ? wy : 1.0f - wy) *
                      (((corner >> 2) & 1) ? wz : 1.0f - wz);

            size_t off = entryOffset(l, addr);
            for (int f = 0; f < fpe; f++)
                out[l * fpe + f] += w * table[off + f];

            reads++;
            if (traceSink) {
                traceSink->record({addr, static_cast<uint16_t>(l),
                                   static_cast<uint8_t>(corner), false,
                                   point_id});
            }
            if (rec) {
                rec->addresses[static_cast<size_t>(l) * 8 + corner] = addr;
                rec->weights[static_cast<size_t>(l) * 8 + corner] = w;
            }
        }
    }
}

void
HashEncoding::backward(const EncodeRecord &rec, const float *d_out)
{
    panicIf(rec.addresses.size() !=
                static_cast<size_t>(cfg.numLevels) * 8,
            "EncodeRecord does not match this encoding");
    const int fpe = cfg.featuresPerEntry;

    for (int l = 0; l < cfg.numLevels; l++) {
        for (int corner = 0; corner < 8; corner++) {
            size_t slot = static_cast<size_t>(l) * 8 + corner;
            uint32_t addr = rec.addresses[slot];
            float w = rec.weights[slot];
            size_t off = entryOffset(l, addr);
            for (int f = 0; f < fpe; f++)
                gradTable[off + f] += w * d_out[l * fpe + f];

            writes++;
            if (traceSink) {
                traceSink->record({addr, static_cast<uint16_t>(l),
                                   static_cast<uint8_t>(corner), true,
                                   0});
            }
        }
    }
}

void
HashEncoding::zeroGrad()
{
    std::fill(gradTable.begin(), gradTable.end(), 0.0f);
}

float
HashEncoding::quantizeToHalf()
{
    float max_err = 0.0f;
    for (auto &v : table) {
        float q = halfBitsToFloat(floatToHalfBits(v));
        max_err = std::max(max_err, std::fabs(q - v));
        v = q;
    }
    return max_err;
}

size_t
HashEncoding::storageBytes() const
{
    // fp16 entries on the accelerator: 2 bytes per feature.
    return static_cast<size_t>(cfg.numLevels) * cfg.tableSize() *
           cfg.featuresPerEntry * 2;
}

} // namespace instant3d
