#include "nerf/hash_encoding.hh"

#include <algorithm>
#include <cmath>

#include "common/half.hh"
#include "common/logging.hh"
#include "kernels/kernel_backend.hh"

namespace instant3d {

namespace {

constexpr uint32_t pi1 = 1u;
constexpr uint32_t pi2 = 2654435761u;
constexpr uint32_t pi3 = 805459861u;

} // namespace

HashEncodingConfig
HashEncodingConfig::scaledBy(float size_ratio) const
{
    fatalIf(size_ratio <= 0.0f, "grid size ratio must be positive");
    HashEncodingConfig out = *this;
    double target = static_cast<double>(tableSize()) * size_ratio;
    uint32_t bits = 6;
    while ((1ull << (bits + 1)) <= target && bits < 30)
        bits++;
    // Snap to the nearest power of two.
    double lo = static_cast<double>(1ull << bits);
    double hi = static_cast<double>(1ull << (bits + 1));
    out.log2TableSize = (target - lo < hi - target) ? bits : bits + 1;
    return out;
}

HashEncoding::HashEncoding(const HashEncodingConfig &config, uint64_t seed)
    : cfg(config)
{
    fatalIf(cfg.numLevels < 1, "hash encoding needs >= 1 level");
    fatalIf(cfg.featuresPerEntry < 1, "hash encoding needs >= 1 feature");
    fatalIf(cfg.log2TableSize < 4 || cfg.log2TableSize > 30,
            "hash table size out of supported range");

    resolutions.resize(cfg.numLevels);
    for (int l = 0; l < cfg.numLevels; l++) {
        resolutions[l] = std::max(
            2, static_cast<int>(std::floor(
                   cfg.baseResolution *
                   std::pow(cfg.growthFactor, static_cast<float>(l)))));
    }

    size_t n = static_cast<size_t>(cfg.numLevels) * cfg.tableSize() *
               cfg.featuresPerEntry;
    table.resize(n);
    gradTable.assign(n, 0.0f);

    // Instant-NGP initializes embeddings uniformly in [-1e-4, 1e-4].
    Rng rng(seed, 0x9e3779b97f4a7c15ULL);
    for (auto &v : table)
        v = rng.nextFloat(-1e-4f, 1e-4f);
}

uint32_t
HashEncoding::hashCoords(uint32_t x, uint32_t y, uint32_t z,
                         uint32_t table_size)
{
    uint32_t h = (x * pi1) ^ (y * pi2) ^ (z * pi3);
    return h & (table_size - 1u);
}

void
HashEncoding::levelCorners(const Vec3 &q, int level, uint32_t *addr8,
                           float *w8) const
{
    float res = static_cast<float>(resolutions[level]);
    float fx = q.x * res;
    float fy = q.y * res;
    float fz = q.z * res;
    uint32_t x0 = static_cast<uint32_t>(fx);
    uint32_t y0 = static_cast<uint32_t>(fy);
    uint32_t z0 = static_cast<uint32_t>(fz);
    float wx = fx - static_cast<float>(x0);
    float wy = fy - static_cast<float>(y0);
    float wz = fz - static_cast<float>(z0);

    for (int corner = 0; corner < 8; corner++) {
        uint32_t cx = x0 + static_cast<uint32_t>(corner & 1);
        uint32_t cy = y0 + static_cast<uint32_t>((corner >> 1) & 1);
        uint32_t cz = z0 + static_cast<uint32_t>((corner >> 2) & 1);
        addr8[corner] = hashCoords(cx, cy, cz, cfg.tableSize());
        w8[corner] = ((corner & 1) ? wx : 1.0f - wx) *
                     (((corner >> 1) & 1) ? wy : 1.0f - wy) *
                     (((corner >> 2) & 1) ? wz : 1.0f - wz);
    }
}

void
HashEncoding::encodeOne(const Vec3 &p, float *out, uint32_t *addr_slots,
                        float *weight_slots, TraceSink *sink,
                        uint32_t point_id) const
{
    Vec3 q = clamp(p, 0.0f, 1.0f);
    const int fpe = cfg.featuresPerEntry;
    uint32_t a8[8];
    float w8[8];

    for (int l = 0; l < cfg.numLevels; l++) {
        levelCorners(q, l, a8, w8);

        for (int f = 0; f < fpe; f++)
            out[l * fpe + f] = 0.0f;

        for (int corner = 0; corner < 8; corner++) {
            uint32_t addr = a8[corner];
            float w = w8[corner];

            size_t off = entryOffset(l, addr);
            for (int f = 0; f < fpe; f++)
                out[l * fpe + f] += w * table[off + f];

            if (sink) {
                sink->record({addr, static_cast<uint16_t>(l),
                              static_cast<uint8_t>(corner), false,
                              point_id});
            }
            if (addr_slots) {
                addr_slots[static_cast<size_t>(l) * 8 + corner] = addr;
                weight_slots[static_cast<size_t>(l) * 8 + corner] = w;
            }
        }
    }
}

void
HashEncoding::encodeCorners(const Vec3 &p, uint32_t *addr_slots,
                            float *weight_slots, TraceSink *sink,
                            uint32_t point_id) const
{
    Vec3 q = clamp(p, 0.0f, 1.0f);

    for (int l = 0; l < cfg.numLevels; l++) {
        uint32_t *a8 = addr_slots + static_cast<size_t>(l) * 8;
        levelCorners(q, l, a8, weight_slots + static_cast<size_t>(l) * 8);
        if (sink) {
            for (int corner = 0; corner < 8; corner++) {
                sink->record({a8[corner], static_cast<uint16_t>(l),
                              static_cast<uint8_t>(corner), false,
                              point_id});
            }
        }
    }
}

void
HashEncoding::encode(const Vec3 &p, float *out, EncodeRecord *rec)
{
    const uint32_t point_id =
        nextPointId.fetch_add(1, std::memory_order_relaxed);
    reads.fetch_add(static_cast<uint64_t>(cfg.numLevels) * 8,
                    std::memory_order_relaxed);

    uint32_t *addr_slots = nullptr;
    float *weight_slots = nullptr;
    if (rec) {
        rec->addresses.assign(static_cast<size_t>(cfg.numLevels) * 8, 0);
        rec->weights.assign(static_cast<size_t>(cfg.numLevels) * 8, 0.0f);
        addr_slots = rec->addresses.data();
        weight_slots = rec->weights.data();
    }
    encodeOne(p, out, addr_slots, weight_slots, traceSink, point_id);
}

void
HashEncoding::encodeBatch(const Vec3 *pts, int n, float *out,
                          EncodeBatchRecord *rec, Workspace &ws,
                          TraceSink *sink)
{
    const size_t slots = static_cast<size_t>(cfg.numLevels) * 8;
    if (sink == nullptr)
        sink = traceSink;

    const uint32_t base =
        nextPointId.fetch_add(static_cast<uint32_t>(n),
                              std::memory_order_relaxed);
    reads.fetch_add(static_cast<uint64_t>(n) * slots,
                    std::memory_order_relaxed);

    // No record requested (eval blocks, occupancy probes): keep the
    // fused corners+interp loop -- nothing to materialize, and the
    // training hot path (which always records for backward) is where
    // the backend seam pays.
    if (!rec) {
        const int dim = outputDim();
        for (int s = 0; s < n; s++) {
            encodeOne(pts[s], out + static_cast<size_t>(s) * dim,
                      nullptr, nullptr, sink,
                      base + static_cast<uint32_t>(s));
        }
        return;
    }

    // Recorded path. Phase 1 (integer): corner addresses + weights +
    // trace records into the batch record. Phase 2 (float): one
    // interpolation gather over the whole batch through the kernel
    // backend. The split leaves per-point arithmetic and trace order
    // exactly as encodeOne produces them.
    rec->n = n;
    rec->addresses = ws.alloc<uint32_t>(static_cast<size_t>(n) * slots);
    rec->weights = ws.alloc<float>(static_cast<size_t>(n) * slots);
    uint32_t *addr_slots = rec->addresses;
    float *weight_slots = rec->weights;

    for (int s = 0; s < n; s++) {
        encodeCorners(pts[s], addr_slots + static_cast<size_t>(s) * slots,
                      weight_slots + static_cast<size_t>(s) * slots, sink,
                      base + static_cast<uint32_t>(s));
    }
    resolveBackend(kernelBackend)
        .hashInterpBatch(table.data(), addr_slots, weight_slots, n,
                         cfg.numLevels, cfg.featuresPerEntry,
                         cfg.tableSize(), out);
}

void
HashGradMerger::reset(uint32_t features_per_entry)
{
    span = features_per_entry;
    // Capacity hint from the previous flush: the smallest power of
    // two keeping that many unique entries under 1/2 load. A chunk's
    // touch count is stable across iterations, so this lands the
    // table at its working size up front -- no grow/rehash chain on
    // the first chunk of a run, and an oversized table (from one
    // unusually dense chunk) shrinks back instead of being memset
    // forever.
    size_t want = kMinSlots;
    while (want < unique * 2)
        want <<= 1;
    if (slots.size() != want)
        slots.assign(want, kEmpty);
    else if (!tableClean)
        // flushInto already restored the all-kEmpty state after the
        // previous chunk, so the steady-state reset skips the fill
        // entirely (one table clear per cycle, not two).
        std::fill(slots.begin(), slots.end(), kEmpty);
    tableClean = true;
    uniqOffs.clear();
    uniqOffs.reserve(unique);
    accs.clear();
    accs.reserve(unique * span);
    pushedRunning = 0;
}

void
HashGradMerger::insertAt(uint32_t slot, uint32_t offset, float w,
                         const float *d_out)
{
    tableClean = false;
    slots[slot] = static_cast<uint32_t>(uniqOffs.size());
    uniqOffs.push_back(offset);
    for (uint32_t f = 0; f < span; f++)
        accs.push_back(w * d_out[f]);
    // Keep the load factor under 1/2 so probe chains stay short.
    if (uniqOffs.size() * 2 > slots.size())
        grow();
}

void
HashGradMerger::grow()
{
    slots.assign(slots.size() * 2, kEmpty);
    const uint32_t mask = static_cast<uint32_t>(slots.size()) - 1;
    for (uint32_t i = 0; i < uniqOffs.size(); i++) {
        uint32_t h = (uniqOffs[i] * 2654435761u) & mask;
        while (slots[h] != kEmpty)
            h = (h + 1) & mask;
        slots[h] = i;
    }
}

void
HashGradMerger::flushInto(float *grad, std::vector<uint32_t> *touched)
{
    const size_t n = uniqOffs.size();
    pushed = pushedRunning;
    unique = n;
    if (n == 0)
        return;

    // Apply in ascending offset order (entries are distinct, so the
    // order is cosmetic for the sums but keeps touch lists sorted).
    order.resize(n);
    for (size_t i = 0; i < n; i++)
        order[i] = (static_cast<uint64_t>(uniqOffs[i]) << 32) | i;
    std::sort(order.begin(), order.end());

    for (size_t i = 0; i < n; i++) {
        const uint32_t off = static_cast<uint32_t>(order[i] >> 32);
        const float *acc =
            accs.data() +
            static_cast<size_t>(static_cast<uint32_t>(order[i])) * span;
        for (uint32_t f = 0; f < span; f++)
            grad[off + f] += acc[f];
        if (touched)
            touched->push_back(off);
    }
    std::fill(slots.begin(), slots.end(), kEmpty);
    tableClean = true;
    uniqOffs.clear();
    accs.clear();
    pushedRunning = 0;
}

void
HashEncoding::backwardOne(const uint32_t *addrs, const float *ws,
                          const float *d_out, float *grad,
                          std::vector<uint32_t> *touched,
                          HashGradMerger *merger, TraceSink *sink) const
{
    const int fpe = cfg.featuresPerEntry;

    // The hot path -- untraced direct scatter -- dispatches through
    // the kernel backend; the traced and merged variants keep the
    // reference loop below because record/push order is part of their
    // contract.
    if (!merger && !sink) {
        resolveBackend(kernelBackend)
            .hashScatterSample(addrs, ws, d_out, cfg.numLevels, fpe,
                               cfg.tableSize(), grad, touched);
        return;
    }

    for (int l = 0; l < cfg.numLevels; l++) {
        for (int corner = 0; corner < 8; corner++) {
            size_t slot = static_cast<size_t>(l) * 8 + corner;
            uint32_t addr = addrs[slot];
            float w = ws[slot];
            size_t off = entryOffset(l, addr);
            if (merger) {
                merger->push(static_cast<uint32_t>(off), w,
                             d_out + static_cast<size_t>(l) * fpe);
            } else {
                for (int f = 0; f < fpe; f++)
                    grad[off + f] += w * d_out[l * fpe + f];
                if (touched)
                    touched->push_back(static_cast<uint32_t>(off));
            }

            if (sink) {
                sink->record({addr, static_cast<uint16_t>(l),
                              static_cast<uint8_t>(corner), true, 0});
            }
        }
    }
}

void
HashEncoding::backward(const EncodeRecord &rec, const float *d_out)
{
    panicIf(rec.addresses.size() !=
                static_cast<size_t>(cfg.numLevels) * 8,
            "EncodeRecord does not match this encoding");
    writes.fetch_add(static_cast<uint64_t>(cfg.numLevels) * 8,
                     std::memory_order_relaxed);
    backwardOne(rec.addresses.data(), rec.weights.data(), d_out,
                gradTable.data(), nullptr, nullptr, traceSink);
}

void
HashEncoding::backwardSample(const EncodeBatchRecord &rec, int s,
                             const float *d_out, float *grad,
                             std::vector<uint32_t> *touched,
                             TraceSink *sink)
{
    panicIf(s < 0 || s >= rec.n, "sample index outside batch record");
    const size_t slots = static_cast<size_t>(cfg.numLevels) * 8;
    writes.fetch_add(slots, std::memory_order_relaxed);
    backwardOne(rec.addresses + static_cast<size_t>(s) * slots,
                rec.weights + static_cast<size_t>(s) * slots, d_out,
                grad, touched, nullptr, sink ? sink : traceSink);
}

void
HashEncoding::backwardSampleMerged(const EncodeBatchRecord &rec, int s,
                                   const float *d_out,
                                   HashGradMerger &merger, TraceSink *sink)
{
    panicIf(s < 0 || s >= rec.n, "sample index outside batch record");
    const size_t slots = static_cast<size_t>(cfg.numLevels) * 8;
    writes.fetch_add(slots, std::memory_order_relaxed);
    backwardOne(rec.addresses + static_cast<size_t>(s) * slots,
                rec.weights + static_cast<size_t>(s) * slots, d_out,
                nullptr, nullptr, &merger, sink ? sink : traceSink);
}

void
HashEncoding::backwardBatch(const EncodeBatchRecord &rec,
                            const float *d_out, float *grad,
                            std::vector<uint32_t> *touched,
                            TraceSink *sink)
{
    const int dim = outputDim();
    for (int s = 0; s < rec.n; s++)
        backwardSample(rec, s, d_out + static_cast<size_t>(s) * dim,
                       grad, touched, sink);
}

void
HashEncoding::zeroGrad()
{
    std::fill(gradTable.begin(), gradTable.end(), 0.0f);
}

void
HashEncoding::zeroGradEntries(const std::vector<uint32_t> &touched)
{
    const uint32_t fpe = static_cast<uint32_t>(cfg.featuresPerEntry);
    for (uint32_t off : touched)
        for (uint32_t f = 0; f < fpe; f++)
            gradTable[off + f] = 0.0f;
}

float
HashEncoding::quantizeToHalf()
{
    float max_err = 0.0f;
    for (auto &v : table) {
        float q = halfBitsToFloat(floatToHalfBits(v));
        max_err = std::max(max_err, std::fabs(q - v));
        v = q;
    }
    return max_err;
}

size_t
HashEncoding::storageBytes() const
{
    // fp16 entries on the accelerator: 2 bytes per feature.
    return static_cast<size_t>(cfg.numLevels) * cfg.tableSize() *
           cfg.featuresPerEntry * 2;
}

} // namespace instant3d
