/**
 * @file
 * Differentiable volume rendering (paper Eq. 1, Steps 3-4 forward and
 * their back-propagation in Step 6).
 *
 * Points are sampled along each ray (stratified when a jitter RNG is
 * given), queried through the NerfField, and alpha-composited:
 *
 *     alpha_k = 1 - exp(-sigma_k * dt_k)
 *     T_k     = prod_{j<k} (1 - alpha_j)
 *     C(r)    = sum_k T_k * alpha_k * c_k  (+ background * T_N)
 *
 * backwardRay() propagates dL/dC to every sample's sigma and color and
 * on into the field.
 */

#ifndef INSTANT3D_NERF_RENDERER_HH
#define INSTANT3D_NERF_RENDERER_HH

#include <vector>

#include "common/rng.hh"
#include "common/vec3.hh"
#include "nerf/field.hh"
#include "nerf/occupancy_grid.hh"
#include "scene/camera.hh"

namespace instant3d {

/** Ray-marching configuration for the learned field. */
struct RendererConfig
{
    float tNear = 0.05f;
    float tFar = 2.2f;
    int samplesPerRay = 48;      //!< N points queried per ray (Step 3).
    Vec3 background{0, 0, 0};
    float earlyStopTransmittance = 1e-4f; //!< Stop marching below this.

    /**
     * Samples whose back-propagated gradients are all below this
     * magnitude (e.g. fully occluded points behind an opaque surface)
     * are skipped during backward, as in Instant-NGP's CUDA kernels.
     * This concentrates BP grid writes near surfaces, producing the
     * shared-address behaviour the paper observes in Fig 10.
     */
    float gradientSkipThreshold = 1e-6f;
};

/** Composited output of one ray. */
struct RayResult
{
    Vec3 color;
    float depth = 0.0f;   //!< Transmittance-weighted expected distance.
    float opacity = 0.0f; //!< 1 - final transmittance.
};

/** Forward context of one rendered ray, consumed by backwardRay(). */
struct RayRecord
{
    struct Sample
    {
        FieldRecord field;
        float t = 0.0f;
        float dt = 0.0f;
        float sigma = 0.0f;
        float alpha = 0.0f;
        float transmittance = 0.0f; //!< T_k before this sample.
        Vec3 rgb;
    };
    std::vector<Sample> samples;
    float finalTransmittance = 1.0f;
};

/**
 * Arena-backed forward context of one ray rendered through the batched
 * path (SoA across samples; valid until the Workspace resets).
 */
struct RayBatchRecord
{
    int n = 0;            //!< Samples actually queried (occupancy kept).
    float *t = nullptr;
    float *dt = nullptr;
    float *sigma = nullptr;
    float *alpha = nullptr;
    float *trans = nullptr; //!< T_k before each sample.
    Vec3 *rgb = nullptr;
    FieldBatchRecord field;
    float finalTransmittance = 1.0f;
};

/**
 * Stateless renderer over a NerfField.
 */
class VolumeRenderer
{
  public:
    explicit VolumeRenderer(const RendererConfig &config) : cfg(config) {}

    const RendererConfig &config() const { return cfg; }

    /**
     * Attach an occupancy grid for empty-space skipping (nullptr
     * detaches): samples in unoccupied cells are never queried, which
     * is Instant-NGP's main sampling optimization and directly reduces
     * Step 3-1 traffic.
     */
    void setOccupancyGrid(const OccupancyGrid *grid) { occupancy = grid; }

    /**
     * March one ray through the field.
     * @param jitter  If non-null, stratified-jitters sample positions
     *                (training); otherwise samples at bin centers (eval).
     * @param rec     If non-null, filled for backwardRay(). Early-stop
     *                is disabled when recording so gradients reach all
     *                samples.
     */
    RayResult renderRay(NerfField &field, const Ray &ray,
                        Rng *jitter = nullptr,
                        RayRecord *rec = nullptr) const;

    /**
     * Back-propagate dL/dC(r) through the compositing equation and the
     * field. update_density / update_color select branches (Sec 3.3).
     */
    void backwardRay(NerfField &field, const RayRecord &rec,
                     const Vec3 &d_color, bool update_density = true,
                     bool update_color = true) const;

    /**
     * Training-path march: draws the same jitter stream as renderRay,
     * batches all surviving samples through one NerfField::queryBatch,
     * and composites. Per-sample arithmetic matches renderRay with a
     * record (no early stop), so results are bit-identical to the
     * scalar path. All scratch and the record come from ws.
     */
    RayResult renderRayBatch(NerfField &field, const Ray &ray,
                             Rng *jitter, RayBatchRecord *rec,
                             Workspace &ws,
                             const FieldTraceOverride *trace =
                                 nullptr) const;

    /**
     * Eval-path march with scalar semantics (bin centers, early stop)
     * but arena scratch instead of per-call heap allocation: samples
     * are queried in small blocks, and compositing stops exactly where
     * renderRay would. Color/depth match renderRay bit-exactly; the
     * field's query count may overshoot by at most one block.
     */
    RayResult renderRayFast(NerfField &field, const Ray &ray,
                            Workspace &ws) const;

    /**
     * Batched counterpart of backwardRay: computes every sample's
     * (d_sigma, d_rgb) with the same suffix recursion, then propagates
     * through the field in the same descending order, accumulating into
     * `target` shards (nullptr = the field's own gradient buffers).
     */
    void backwardRayBatch(NerfField &field, const RayBatchRecord &rec,
                          const Vec3 &d_color, bool update_density,
                          bool update_color, FieldGradients *target,
                          Workspace &ws,
                          const FieldTraceOverride *trace =
                              nullptr) const;

  private:
    RendererConfig cfg;
    const OccupancyGrid *occupancy = nullptr;
};

} // namespace instant3d

#endif // INSTANT3D_NERF_RENDERER_HH
