/**
 * @file
 * Differentiable volume rendering (paper Eq. 1, Steps 3-4 forward and
 * their back-propagation in Step 6).
 *
 * Points are sampled along each ray (stratified when a jitter RNG is
 * given), queried through the NerfField, and alpha-composited:
 *
 *     alpha_k = 1 - exp(-sigma_k * dt_k)
 *     T_k     = prod_{j<k} (1 - alpha_j)
 *     C(r)    = sum_k T_k * alpha_k * c_k  (+ background * T_N)
 *
 * backwardRay() propagates dL/dC to every sample's sigma and color and
 * on into the field.
 */

#ifndef INSTANT3D_NERF_RENDERER_HH
#define INSTANT3D_NERF_RENDERER_HH

#include <vector>

#include "common/rng.hh"
#include "common/vec3.hh"
#include "nerf/field.hh"
#include "nerf/occupancy_grid.hh"
#include "scene/camera.hh"

namespace instant3d {

class KernelBackend;

/** Ray-marching configuration for the learned field. */
struct RendererConfig
{
    float tNear = 0.05f;
    float tFar = 2.2f;
    int samplesPerRay = 48;      //!< N points queried per ray (Step 3).
    Vec3 background{0, 0, 0};
    float earlyStopTransmittance = 1e-4f; //!< Stop marching below this.

    /**
     * Samples whose back-propagated gradients are all below this
     * magnitude (e.g. fully occluded points behind an opaque surface)
     * are skipped during backward, as in Instant-NGP's CUDA kernels.
     * This concentrates BP grid writes near surfaces, producing the
     * shared-address behaviour the paper observes in Fig 10.
     */
    float gradientSkipThreshold = 1e-6f;
};

/** Composited output of one ray. */
struct RayResult
{
    Vec3 color;
    float depth = 0.0f;   //!< Transmittance-weighted expected distance.
    float opacity = 0.0f; //!< 1 - final transmittance.
};

/** Forward context of one rendered ray, consumed by backwardRay(). */
struct RayRecord
{
    struct Sample
    {
        FieldRecord field;
        float t = 0.0f;
        float dt = 0.0f;
        float sigma = 0.0f;
        float alpha = 0.0f;
        float transmittance = 0.0f; //!< T_k before this sample.
        Vec3 rgb;
    };
    std::vector<Sample> samples;
    float finalTransmittance = 1.0f;
};

/**
 * Chunk-level occupancy-compacted sample stream (arena-backed SoA,
 * valid until the Workspace resets). marchRays() walks a chunk of rays
 * against the occupancy grid and emits only the surviving samples as
 * one flat buffer with per-ray (offset, count) spans; every downstream
 * kernel (field query, compositing, backward) then runs once over the
 * whole stream instead of once per ray.
 */
struct SampleStream
{
    int numRays = 0;
    int totalSamples = 0;    //!< Samples surviving empty-space skipping.
    RaySpan *spans = nullptr;
    Vec3 *pts = nullptr;     //!< [totalSamples] sample positions.
    float *ts = nullptr;     //!< [totalSamples] ray parameters.
    Vec3 *dirs = nullptr;    //!< [numRays] ray directions.
    float dt = 0.0f;         //!< Uniform step length.
};

/**
 * Forward context of one composited stream, consumed by
 * backwardStream(). Per-sample arrays are stream-indexed; finalTrans
 * is per ray.
 */
struct StreamRecord
{
    FieldBatchRecord field;
    float *alpha = nullptr;
    float *trans = nullptr;      //!< T_k before each sample.
    Vec3 *rgb = nullptr;
    float *finalTrans = nullptr; //!< [numRays] post-march transmittance.
};

/**
 * Arena-backed forward context of one ray rendered through the batched
 * path: a one-ray sample stream plus its forward record (valid until
 * the Workspace resets). renderRayBatch/backwardRayBatch are the
 * single-ray special case of the stream kernels, so the per-ray and
 * chunk-level paths share every line of arithmetic.
 */
struct RayBatchRecord
{
    SampleStream stream;
    StreamRecord rec;
};

/**
 * Stateless renderer over a NerfField.
 */
class VolumeRenderer
{
  public:
    explicit VolumeRenderer(const RendererConfig &config) : cfg(config) {}

    const RendererConfig &config() const { return cfg; }

    /**
     * Attach an occupancy grid for empty-space skipping (nullptr
     * detaches): samples in unoccupied cells are never queried, which
     * is Instant-NGP's main sampling optimization and directly reduces
     * Step 3-1 traffic.
     */
    void setOccupancyGrid(const OccupancyGrid *grid) { occupancy = grid; }

    /**
     * Route the stream composite kernels (renderStream's per-ray
     * compositing and backwardStream's suffix recursion) through the
     * given kernel backend; nullptr restores the scalar reference.
     * The scalar renderRay/backwardRay pair stays on its own loops.
     */
    void setKernelBackend(const KernelBackend *backend)
    { kernelBackend = backend; }

    /**
     * March one ray through the field.
     * @param jitter  If non-null, stratified-jitters sample positions
     *                (training); otherwise samples at bin centers (eval).
     * @param rec     If non-null, filled for backwardRay(). Early-stop
     *                is disabled when recording so gradients reach all
     *                samples.
     */
    RayResult renderRay(NerfField &field, const Ray &ray,
                        Rng *jitter = nullptr,
                        RayRecord *rec = nullptr) const;

    /**
     * Back-propagate dL/dC(r) through the compositing equation and the
     * field. update_density / update_color select branches (Sec 3.3).
     */
    void backwardRay(NerfField &field, const RayRecord &rec,
                     const Vec3 &d_color, bool update_density = true,
                     bool update_color = true) const;

    /**
     * Training-path march of one ray: the single-ray case of
     * marchRays + renderStream (draws the same jitter stream as
     * renderRay, queries the surviving samples in one batch, and
     * composites). Per-sample arithmetic matches renderRay with a
     * record (no early stop), so results are bit-identical to the
     * scalar path. All scratch and the record come from ws.
     */
    RayResult renderRayBatch(NerfField &field, const Ray &ray,
                             Rng *jitter, RayBatchRecord *rec,
                             Workspace &ws,
                             const FieldTraceOverride *trace =
                                 nullptr) const;

    /**
     * Eval-path march with scalar semantics (bin centers, early stop)
     * but arena scratch instead of per-call heap allocation: samples
     * are queried in small blocks, and compositing stops exactly where
     * renderRay would. Color/depth match renderRay bit-exactly; the
     * field's query count may overshoot by at most one block.
     */
    RayResult renderRayFast(NerfField &field, const Ray &ray,
                            Workspace &ws) const;

    /**
     * Multi-ray eval-path march: renderRayFast over a whole batch at
     * stream width. Rays advance in lockstep sample blocks; each
     * block's surviving samples (occupancy-filtered, bin centers) from
     * *all* still-alive rays form one compacted stream queried with a
     * single NerfField::queryStream call, and rays whose transmittance
     * crosses the early-stop threshold drop out of later blocks. The
     * per-sample compositing fold is per ray and in t order, so
     * results[r] is bit-identical to renderRayFast (and renderRay) on
     * ray r for ANY batch composition -- the property the render
     * service's cross-request batching relies on. Like renderRayFast,
     * the query count may overshoot the composited samples by up to
     * one block per ray.
     */
    void renderRays(NerfField &field, const Ray *rays, int numRays,
                    RayResult *results, Workspace &ws) const;

    /**
     * Stage 1 of the compacted hot path: march a chunk of rays against
     * the occupancy grid, drawing each ray's stratified jitter from its
     * own RNG stream (rngs[r]; nullptr = bin centers), and emit the
     * surviving samples as a flat stream. The per-ray jitter draws and
     * the occupancy filter are exactly those of renderRayBatch, so the
     * stream holds the same samples the per-ray path would query.
     */
    void marchRays(const Ray *rays, int numRays, Rng *rngs,
                   SampleStream &stream, Workspace &ws) const;

    /**
     * Stages 2-3: one NerfField::queryStream over the whole stream,
     * then per-ray alpha compositing identical to renderRayBatch
     * (results[r] is bit-equal to renderRayBatch on ray r). With `rec`,
     * early-stop stays disabled so gradients reach all samples.
     */
    void renderStream(NerfField &field, const SampleStream &stream,
                      RayResult *results, StreamRecord *rec,
                      Workspace &ws,
                      const FieldTraceOverride *trace = nullptr) const;

    /**
     * Stage 4: per-ray suffix recursion (same arithmetic as
     * backwardRayBatch) producing the stream's (d_sigma, d_rgb, skip)
     * arrays, then one NerfField::backwardStream in ray-ascending,
     * sample-descending order -- bit-identical gradients to per-ray
     * backwardRayBatch calls. `mergers`, if given, merges duplicate
     * hash-grid gradient writes before they reach `target`.
     */
    void backwardStream(NerfField &field, const SampleStream &stream,
                        const StreamRecord &rec, const Vec3 *d_colors,
                        bool update_density, bool update_color,
                        FieldGradients *target, Workspace &ws,
                        const FieldTraceOverride *trace = nullptr,
                        FieldGradMergers *mergers = nullptr) const;

    /**
     * Batched counterpart of backwardRay: computes every sample's
     * (d_sigma, d_rgb) with the same suffix recursion, then propagates
     * through the field in the same descending order, accumulating into
     * `target` shards (nullptr = the field's own gradient buffers).
     */
    void backwardRayBatch(NerfField &field, const RayBatchRecord &rec,
                          const Vec3 &d_color, bool update_density,
                          bool update_color, FieldGradients *target,
                          Workspace &ws,
                          const FieldTraceOverride *trace =
                              nullptr) const;

  private:
    RendererConfig cfg;
    const OccupancyGrid *occupancy = nullptr;
    const KernelBackend *kernelBackend = nullptr; //!< null = scalar_ref.
};

} // namespace instant3d

#endif // INSTANT3D_NERF_RENDERER_HH
