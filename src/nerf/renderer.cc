#include "nerf/renderer.hh"

#include <cmath>

#include "common/logging.hh"

namespace instant3d {

RayResult
VolumeRenderer::renderRay(NerfField &field, const Ray &ray, Rng *jitter,
                          RayRecord *rec) const
{
    const int n = cfg.samplesPerRay;
    const float dt = (cfg.tFar - cfg.tNear) / static_cast<float>(n);

    RayResult out;
    float transmittance = 1.0f;

    if (rec) {
        rec->samples.clear();
        rec->samples.reserve(n);
    }

    for (int k = 0; k < n; k++) {
        float offset = jitter ? jitter->nextFloat() : 0.5f;
        float t = cfg.tNear + (static_cast<float>(k) + offset) * dt;
        Vec3 p = ray.at(t);

        // Empty-space skipping: unoccupied cells contribute nothing.
        if (occupancy && !occupancy->occupied(p))
            continue;

        FieldRecord *frec = nullptr;
        RayRecord::Sample sample;
        if (rec)
            frec = &sample.field;
        FieldSample fs = field.query(p, ray.direction, frec);

        float alpha = 1.0f - std::exp(-fs.sigma * dt);
        float weight = transmittance * alpha;
        out.color += fs.rgb * weight;
        out.depth += t * weight;

        if (rec) {
            sample.t = t;
            sample.dt = dt;
            sample.sigma = fs.sigma;
            sample.alpha = alpha;
            sample.transmittance = transmittance;
            sample.rgb = fs.rgb;
            rec->samples.push_back(std::move(sample));
        }

        transmittance *= 1.0f - alpha;
        // Early termination only when not recording for backprop.
        if (!rec && transmittance < cfg.earlyStopTransmittance)
            break;
    }

    out.color += cfg.background * transmittance;
    out.depth += cfg.tFar * transmittance;
    out.opacity = 1.0f - transmittance;
    if (rec)
        rec->finalTransmittance = transmittance;
    return out;
}

void
VolumeRenderer::backwardRay(NerfField &field, const RayRecord &rec,
                            const Vec3 &d_color, bool update_density,
                            bool update_color) const
{
    // Suffix accumulator: S_k = sum_{j>k} w_j (c_j . g) + bg.g * T_final.
    float suffix = cfg.background.dot(d_color) * rec.finalTransmittance;

    for (int k = static_cast<int>(rec.samples.size()) - 1; k >= 0; k--) {
        const auto &s = rec.samples[k];
        float weight = s.transmittance * s.alpha;
        float cg = s.rgb.dot(d_color);

        // d alpha_k / d sigma_k = dt * (1 - alpha_k); the (1 - alpha_k)
        // in the first term cancels the 1/(1 - alpha_k) in the suffix
        // term, so no division is needed (robust for alpha -> 1).
        float d_sigma =
            s.dt * ((1.0f - s.alpha) * s.transmittance * cg - suffix);

        Vec3 d_rgb = d_color * weight;
        float mag = std::fabs(d_sigma) +
                    std::fabs(d_rgb.x) + std::fabs(d_rgb.y) +
                    std::fabs(d_rgb.z);
        if (mag > cfg.gradientSkipThreshold) {
            field.backward(s.field, d_sigma, d_rgb, update_density,
                           update_color);
        }

        suffix += weight * cg;
    }
}

} // namespace instant3d
