#include "nerf/renderer.hh"

#include <cmath>

#include "common/logging.hh"
#include "kernels/kernel_backend.hh"

namespace instant3d {

RayResult
VolumeRenderer::renderRay(NerfField &field, const Ray &ray, Rng *jitter,
                          RayRecord *rec) const
{
    const int n = cfg.samplesPerRay;
    const float dt = (cfg.tFar - cfg.tNear) / static_cast<float>(n);

    RayResult out;
    float transmittance = 1.0f;

    if (rec) {
        rec->samples.clear();
        rec->samples.reserve(n);
    }

    for (int k = 0; k < n; k++) {
        float offset = jitter ? jitter->nextFloat() : 0.5f;
        float t = cfg.tNear + (static_cast<float>(k) + offset) * dt;
        Vec3 p = ray.at(t);

        // Empty-space skipping: unoccupied cells contribute nothing.
        if (occupancy && !occupancy->occupied(p))
            continue;

        FieldRecord *frec = nullptr;
        RayRecord::Sample sample;
        if (rec)
            frec = &sample.field;
        FieldSample fs = field.query(p, ray.direction, frec);

        float alpha = 1.0f - std::exp(-fs.sigma * dt);
        float weight = transmittance * alpha;
        out.color += fs.rgb * weight;
        out.depth += t * weight;

        if (rec) {
            sample.t = t;
            sample.dt = dt;
            sample.sigma = fs.sigma;
            sample.alpha = alpha;
            sample.transmittance = transmittance;
            sample.rgb = fs.rgb;
            rec->samples.push_back(std::move(sample));
        }

        transmittance *= 1.0f - alpha;
        // Early termination only when not recording for backprop.
        if (!rec && transmittance < cfg.earlyStopTransmittance)
            break;
    }

    out.color += cfg.background * transmittance;
    out.depth += cfg.tFar * transmittance;
    out.opacity = 1.0f - transmittance;
    if (rec)
        rec->finalTransmittance = transmittance;
    return out;
}

RayResult
VolumeRenderer::renderRayBatch(NerfField &field, const Ray &ray,
                               Rng *jitter, RayBatchRecord *rec,
                               Workspace &ws,
                               const FieldTraceOverride *trace) const
{
    // The single-ray case of the stream kernels: march, one batched
    // query, composite -- identical arithmetic to a chunk-level stream
    // that happens to hold one ray.
    SampleStream local;
    SampleStream &stream = rec ? rec->stream : local;
    marchRays(&ray, 1, jitter, stream, ws);

    RayResult out;
    renderStream(field, stream, &out, rec ? &rec->rec : nullptr, ws,
                 trace);
    return out;
}

void
VolumeRenderer::marchRays(const Ray *rays, int numRays, Rng *rngs,
                          SampleStream &stream, Workspace &ws) const
{
    const int n = cfg.samplesPerRay;
    const float dt = (cfg.tFar - cfg.tNear) / static_cast<float>(n);

    stream.numRays = numRays;
    stream.dt = dt;
    stream.spans = ws.alloc<RaySpan>(numRays);
    stream.pts = ws.alloc<Vec3>(static_cast<size_t>(numRays) * n);
    stream.ts = ws.alloc<float>(static_cast<size_t>(numRays) * n);
    stream.dirs = ws.alloc<Vec3>(numRays);

    float *offsets = ws.alloc<float>(n);
    int total = 0;
    for (int r = 0; r < numRays; r++) {
        stream.dirs[r] = rays[r].direction;
        // Same jitter stream as renderRayBatch: one draw per sample
        // bin, all drawn before the occupancy filter.
        Rng *jitter = rngs ? &rngs[r] : nullptr;
        for (int k = 0; k < n; k++)
            offsets[k] = jitter ? jitter->nextFloat() : 0.5f;

        stream.spans[r].offset = total;
        for (int k = 0; k < n; k++) {
            float t =
                cfg.tNear + (static_cast<float>(k) + offsets[k]) * dt;
            Vec3 p = rays[r].at(t);
            if (occupancy && !occupancy->occupied(p))
                continue;
            stream.pts[total] = p;
            stream.ts[total] = t;
            total++;
        }
        stream.spans[r].count = total - stream.spans[r].offset;
    }
    stream.totalSamples = total;
}

void
VolumeRenderer::renderStream(NerfField &field, const SampleStream &stream,
                             RayResult *results, StreamRecord *rec,
                             Workspace &ws,
                             const FieldTraceOverride *trace) const
{
    const int total = stream.totalSamples;
    FieldSample *fs = ws.alloc<FieldSample>(total);
    field.queryStream(stream.pts, total, stream.spans, stream.dirs,
                      stream.numRays, fs, rec ? &rec->field : nullptr,
                      ws, trace);

    if (rec) {
        rec->alpha = ws.alloc<float>(total);
        rec->trans = ws.alloc<float>(total);
        rec->rgb = ws.alloc<Vec3>(total);
        rec->finalTrans = ws.alloc<float>(stream.numRays);
    }

    resolveBackend(kernelBackend)
        .compositeStream(stream.spans, stream.numRays, fs, stream.ts,
                         stream.dt, cfg.background, cfg.tFar,
                         cfg.earlyStopTransmittance, results,
                         rec ? rec->alpha : nullptr,
                         rec ? rec->trans : nullptr,
                         rec ? rec->rgb : nullptr,
                         rec ? rec->finalTrans : nullptr);
}

void
VolumeRenderer::backwardStream(NerfField &field,
                               const SampleStream &stream,
                               const StreamRecord &rec,
                               const Vec3 *d_colors, bool update_density,
                               bool update_color, FieldGradients *target,
                               Workspace &ws,
                               const FieldTraceOverride *trace,
                               FieldGradMergers *mergers) const
{
    const int total = stream.totalSamples;
    float *d_sigma = ws.alloc<float>(total);
    Vec3 *d_rgb = ws.alloc<Vec3>(total);
    uint8_t *skip = ws.alloc<uint8_t>(total);

    // Same per-ray suffix recursion as backwardRayBatch, descending
    // over each span. Samples whose gradients fall below the skip
    // threshold (occluded points, post-early-stop tails) are flagged
    // and never enter the propagation stage.
    resolveBackend(kernelBackend)
        .compositeBackward(stream.spans, stream.numRays, d_colors,
                           stream.dt, cfg.background,
                           cfg.gradientSkipThreshold, rec.alpha,
                           rec.trans, rec.rgb, rec.finalTrans, d_sigma,
                           d_rgb, skip);

    field.backwardStream(rec.field, stream.spans, stream.numRays,
                         d_sigma, d_rgb, skip, update_density,
                         update_color, target, ws, trace, mergers);
}

RayResult
VolumeRenderer::renderRayFast(NerfField &field, const Ray &ray,
                              Workspace &ws) const
{
    constexpr int block = 16;
    const int n = cfg.samplesPerRay;
    const float dt = (cfg.tFar - cfg.tNear) / static_cast<float>(n);

    Vec3 *pts = ws.alloc<Vec3>(block);
    float *ts = ws.alloc<float>(block);
    FieldSample *fs = ws.alloc<FieldSample>(block);

    RayResult out;
    float transmittance = 1.0f;
    bool stopped = false;

    for (int k0 = 0; k0 < n && !stopped; k0 += block) {
        int m = 0;
        for (int k = k0; k < n && k < k0 + block; k++) {
            float t = cfg.tNear + (static_cast<float>(k) + 0.5f) * dt;
            Vec3 p = ray.at(t);
            if (occupancy && !occupancy->occupied(p))
                continue;
            pts[m] = p;
            ts[m] = t;
            m++;
        }
        field.queryBatch(pts, m, ray.direction, fs, nullptr, ws);

        for (int k = 0; k < m; k++) {
            float alpha = 1.0f - std::exp(-fs[k].sigma * dt);
            float weight = transmittance * alpha;
            out.color += fs[k].rgb * weight;
            out.depth += ts[k] * weight;
            transmittance *= 1.0f - alpha;
            if (transmittance < cfg.earlyStopTransmittance) {
                stopped = true;
                break;
            }
        }
    }

    out.color += cfg.background * transmittance;
    out.depth += cfg.tFar * transmittance;
    out.opacity = 1.0f - transmittance;
    return out;
}

void
VolumeRenderer::renderRays(NerfField &field, const Ray *rays,
                           int numRays, RayResult *results,
                           Workspace &ws) const
{
    constexpr int block = 16; // sample bins per lockstep advance
    const int n = cfg.samplesPerRay;
    const float dt = (cfg.tFar - cfg.tNear) / static_cast<float>(n);

    int *alive = ws.alloc<int>(numRays);
    float *trans = ws.alloc<float>(numRays);
    for (int r = 0; r < numRays; r++) {
        alive[r] = r;
        trans[r] = 1.0f;
        results[r] = RayResult{};
    }
    int num_alive = numRays;

    for (int k0 = 0; k0 < n && num_alive > 0; k0 += block) {
        const int k_end = k0 + block < n ? k0 + block : n;
        const int bins = k_end - k0;

        RaySpan *spans = ws.alloc<RaySpan>(num_alive);
        Vec3 *pts =
            ws.alloc<Vec3>(static_cast<size_t>(num_alive) * bins);
        float *ts =
            ws.alloc<float>(static_cast<size_t>(num_alive) * bins);
        Vec3 *dirs = ws.alloc<Vec3>(num_alive);

        int total = 0;
        for (int i = 0; i < num_alive; i++) {
            const Ray &ray = rays[alive[i]];
            dirs[i] = ray.direction;
            spans[i].offset = total;
            for (int k = k0; k < k_end; k++) {
                float t =
                    cfg.tNear + (static_cast<float>(k) + 0.5f) * dt;
                Vec3 p = ray.at(t);
                if (occupancy && !occupancy->occupied(p))
                    continue;
                pts[total] = p;
                ts[total] = t;
                total++;
            }
            spans[i].count = total - spans[i].offset;
        }

        FieldSample *fs = ws.alloc<FieldSample>(total);
        field.queryStream(pts, total, spans, dirs, num_alive, fs,
                          nullptr, ws);

        // Per-ray composite of this block, same fold as renderRayFast:
        // block boundaries never change the arithmetic, only how many
        // samples were queried ahead of the early stop.
        int kept = 0;
        for (int i = 0; i < num_alive; i++) {
            const int r = alive[i];
            float transmittance = trans[r];
            bool stopped = false;
            for (int s = spans[i].offset;
                 s < spans[i].offset + spans[i].count; s++) {
                float alpha = 1.0f - std::exp(-fs[s].sigma * dt);
                float weight = transmittance * alpha;
                results[r].color += fs[s].rgb * weight;
                results[r].depth += ts[s] * weight;
                transmittance *= 1.0f - alpha;
                if (transmittance < cfg.earlyStopTransmittance) {
                    stopped = true;
                    break;
                }
            }
            trans[r] = transmittance;
            if (!stopped)
                alive[kept++] = r;
        }
        num_alive = kept;
    }

    for (int r = 0; r < numRays; r++) {
        results[r].color += cfg.background * trans[r];
        results[r].depth += cfg.tFar * trans[r];
        results[r].opacity = 1.0f - trans[r];
    }
}

void
VolumeRenderer::backwardRayBatch(NerfField &field,
                                 const RayBatchRecord &rec,
                                 const Vec3 &d_color, bool update_density,
                                 bool update_color,
                                 FieldGradients *target, Workspace &ws,
                                 const FieldTraceOverride *trace) const
{
    backwardStream(field, rec.stream, rec.rec, &d_color, update_density,
                   update_color, target, ws, trace, nullptr);
}

void
VolumeRenderer::backwardRay(NerfField &field, const RayRecord &rec,
                            const Vec3 &d_color, bool update_density,
                            bool update_color) const
{
    // Suffix accumulator: S_k = sum_{j>k} w_j (c_j . g) + bg.g * T_final.
    float suffix = cfg.background.dot(d_color) * rec.finalTransmittance;

    for (int k = static_cast<int>(rec.samples.size()) - 1; k >= 0; k--) {
        const auto &s = rec.samples[k];
        float weight = s.transmittance * s.alpha;
        float cg = s.rgb.dot(d_color);

        // d alpha_k / d sigma_k = dt * (1 - alpha_k); the (1 - alpha_k)
        // in the first term cancels the 1/(1 - alpha_k) in the suffix
        // term, so no division is needed (robust for alpha -> 1).
        float d_sigma =
            s.dt * ((1.0f - s.alpha) * s.transmittance * cg - suffix);

        Vec3 d_rgb = d_color * weight;
        float mag = std::fabs(d_sigma) +
                    std::fabs(d_rgb.x) + std::fabs(d_rgb.y) +
                    std::fabs(d_rgb.z);
        if (mag > cfg.gradientSkipThreshold) {
            field.backward(s.field, d_sigma, d_rgb, update_density,
                           update_color);
        }

        suffix += weight * cg;
    }
}

} // namespace instant3d
