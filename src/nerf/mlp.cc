#include "nerf/mlp.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "kernels/kernel_backend.hh"

namespace instant3d {

Mlp::Mlp(std::vector<int> layer_dims, OutputActivation out_act,
         uint64_t seed)
    : dims(std::move(layer_dims)), outAct(out_act)
{
    fatalIf(dims.size() < 2, "Mlp needs at least input and output dims");
    for (int d : dims)
        fatalIf(d < 1, "Mlp layer dims must be positive");

    size_t total = 0;
    for (int l = 0; l < numLayers(); l++) {
        wOffsets.push_back(total);
        total += static_cast<size_t>(dims[l]) * dims[l + 1];
        bOffsets.push_back(total);
        total += static_cast<size_t>(dims[l + 1]);
    }
    weights.resize(total);
    gradWeights.assign(total, 0.0f);
    maxDim = *std::max_element(dims.begin(), dims.end());

    for (int l = 0; l < numLayers(); l++) {
        actOffsets.push_back(actPerSample);
        actPerSample += static_cast<size_t>(dims[l]);
        preOffsets.push_back(prePerSample);
        prePerSample += static_cast<size_t>(dims[l + 1]);
    }

    // He-uniform initialization scaled by fan-in.
    Rng rng(seed, 0xb5297a4d3f512d17ULL);
    for (int l = 0; l < numLayers(); l++) {
        float bound = std::sqrt(6.0f / static_cast<float>(dims[l]));
        size_t w0 = wOffsets[l];
        size_t nw = static_cast<size_t>(dims[l]) * dims[l + 1];
        for (size_t i = 0; i < nw; i++)
            weights[w0 + i] = rng.nextFloat(-bound, bound);
        size_t b0 = bOffsets[l];
        for (int i = 0; i < dims[l + 1]; i++)
            weights[b0 + i] = 0.0f;
    }
}

void
Mlp::forward(const float *in, float *out, MlpRecord *rec) const
{
    std::vector<float> cur(in, in + dims[0]);
    std::vector<float> nxt;

    if (rec) {
        rec->activations.clear();
        rec->preacts.clear();
    }

    for (int l = 0; l < numLayers(); l++) {
        if (rec)
            rec->activations.insert(rec->activations.end(), cur.begin(),
                                    cur.end());
        int n_in = dims[l];
        int n_out = dims[l + 1];
        nxt.assign(static_cast<size_t>(n_out), 0.0f);
        const float *w = weights.data() + wOffsets[l];
        const float *b = weights.data() + bOffsets[l];
        for (int o = 0; o < n_out; o++) {
            float acc = b[o];
            const float *wrow = w + static_cast<size_t>(o) * n_in;
            for (int i = 0; i < n_in; i++)
                acc += wrow[i] * cur[i];
            nxt[o] = acc;
        }
        if (rec)
            rec->preacts.insert(rec->preacts.end(), nxt.begin(),
                                nxt.end());

        bool last = (l == numLayers() - 1);
        if (!last) {
            for (auto &v : nxt)
                v = std::max(v, 0.0f);
        } else if (outAct == OutputActivation::Sigmoid) {
            for (auto &v : nxt)
                v = 1.0f / (1.0f + std::exp(-v));
        }
        cur.swap(nxt);
    }
    std::copy(cur.begin(), cur.end(), out);
}

void
Mlp::backward(const MlpRecord &rec, const float *d_out, float *d_in)
{
    // Reconstruct per-layer offsets into the flattened record.
    std::vector<size_t> act_off(numLayers());
    std::vector<size_t> pre_off(numLayers());
    size_t a = 0, p = 0;
    for (int l = 0; l < numLayers(); l++) {
        act_off[l] = a;
        a += static_cast<size_t>(dims[l]);
        pre_off[l] = p;
        p += static_cast<size_t>(dims[l + 1]);
    }
    panicIf(rec.activations.size() != a || rec.preacts.size() != p,
            "MlpRecord does not match this Mlp");

    std::vector<float> delta(d_out, d_out + dims.back());

    // Output activation derivative.
    if (outAct == OutputActivation::Sigmoid) {
        int l = numLayers() - 1;
        for (int o = 0; o < dims.back(); o++) {
            float z = rec.preacts[pre_off[l] + o];
            float s = 1.0f / (1.0f + std::exp(-z));
            delta[o] *= s * (1.0f - s);
        }
    }

    std::vector<float> prev_delta;
    for (int l = numLayers() - 1; l >= 0; l--) {
        int n_in = dims[l];
        int n_out = dims[l + 1];
        const float *act = rec.activations.data() + act_off[l];
        float *gw = gradWeights.data() + wOffsets[l];
        float *gb = gradWeights.data() + bOffsets[l];
        const float *w = weights.data() + wOffsets[l];

        prev_delta.assign(static_cast<size_t>(n_in), 0.0f);
        for (int o = 0; o < n_out; o++) {
            float d = delta[o];
            if (d == 0.0f)
                continue;
            float *gwrow = gw + static_cast<size_t>(o) * n_in;
            const float *wrow = w + static_cast<size_t>(o) * n_in;
            for (int i = 0; i < n_in; i++) {
                gwrow[i] += d * act[i];
                prev_delta[i] += d * wrow[i];
            }
            gb[o] += d;
        }

        if (l > 0) {
            // ReLU derivative on the previous layer's pre-activation.
            const float *pre = rec.preacts.data() + pre_off[l - 1];
            for (int i = 0; i < n_in; i++)
                if (pre[i] <= 0.0f)
                    prev_delta[i] = 0.0f;
        }
        delta.swap(prev_delta);
    }

    if (d_in)
        std::copy(delta.begin(), delta.end(), d_in);
}

void
Mlp::forwardBatch(const float *in, int n, float *out, MlpBatchRecord *rec,
                  Workspace &ws) const
{
    const KernelBackend &kb = resolveBackend(kernelBackend);
    const int n_layers = numLayers();
    float *cur = ws.alloc<float>(static_cast<size_t>(n) * maxDim);
    float *nxt = ws.alloc<float>(static_cast<size_t>(n) * maxDim);
    std::copy(in, in + static_cast<size_t>(n) * dims[0], cur);

    if (rec) {
        rec->n = n;
        rec->activations =
            ws.alloc<float>(static_cast<size_t>(n) * actPerSample);
        rec->preacts =
            ws.alloc<float>(static_cast<size_t>(n) * prePerSample);
    }

    for (int l = 0; l < n_layers; l++) {
        const int n_in = dims[l];
        const int n_out = dims[l + 1];
        const float *w = weights.data() + wOffsets[l];
        const float *b = weights.data() + bOffsets[l];

        if (rec) {
            std::copy(cur, cur + static_cast<size_t>(n) * n_in,
                      rec->activations + actOffsets[l] * n);
        }

        kb.mlpForwardPanel(cur, n, n_in, n_out, w, b, nxt, ws);

        if (rec) {
            std::copy(nxt, nxt + static_cast<size_t>(n) * n_out,
                      rec->preacts + preOffsets[l] * n);
        }

        const bool last = (l == n_layers - 1);
        const size_t count = static_cast<size_t>(n) * n_out;
        if (!last)
            kb.reluPanel(nxt, count);
        else if (outAct == OutputActivation::Sigmoid)
            kb.sigmoidPanel(nxt, count);
        std::swap(cur, nxt);
    }
    std::copy(cur, cur + static_cast<size_t>(n) * dims.back(), out);
}

void
Mlp::backwardSample(const MlpBatchRecord &rec, int s, const float *d_out,
                    float *d_in, float *grad, Workspace &ws) const
{
    panicIf(s < 0 || s >= rec.n, "sample index outside batch record");

    const KernelBackend &kb = resolveBackend(kernelBackend);
    float *delta = ws.alloc<float>(maxDim);
    float *prev_delta = ws.alloc<float>(maxDim);
    std::copy(d_out, d_out + dims.back(), delta);

    // Output activation derivative.
    if (outAct == OutputActivation::Sigmoid) {
        int l = numLayers() - 1;
        const float *pre = rec.preacts + preOffsets[l] * rec.n +
                           static_cast<size_t>(s) * dims.back();
        for (int o = 0; o < dims.back(); o++) {
            float sgm = 1.0f / (1.0f + std::exp(-pre[o]));
            delta[o] *= sgm * (1.0f - sgm);
        }
    }

    for (int l = numLayers() - 1; l >= 0; l--) {
        const int n_in = dims[l];
        const int n_out = dims[l + 1];
        const float *act = rec.activations + actOffsets[l] * rec.n +
                           static_cast<size_t>(s) * n_in;
        float *gw = grad + wOffsets[l];
        float *gb = grad + bOffsets[l];
        const float *w = weights.data() + wOffsets[l];

        kb.mlpBackwardPanel(delta, n_out, n_in, act, w, gw, gb,
                            prev_delta);

        if (l > 0) {
            // ReLU derivative on the previous layer's pre-activation.
            const float *pre = rec.preacts + preOffsets[l - 1] * rec.n +
                               static_cast<size_t>(s) * dims[l];
            for (int i = 0; i < n_in; i++)
                if (pre[i] <= 0.0f)
                    prev_delta[i] = 0.0f;
        }
        std::swap(delta, prev_delta);
    }

    if (d_in)
        std::copy(delta, delta + dims.front(), d_in);
}

void
Mlp::backwardBatch(const MlpBatchRecord &rec, const float *d_out,
                   float *d_in, float *grad, Workspace &ws) const
{
    for (int s = 0; s < rec.n; s++) {
        backwardSample(rec, s,
                       d_out + static_cast<size_t>(s) * dims.back(),
                       d_in ? d_in + static_cast<size_t>(s) * dims.front()
                            : nullptr,
                       grad, ws);
    }
}

void
Mlp::zeroGrad()
{
    std::fill(gradWeights.begin(), gradWeights.end(), 0.0f);
}

uint64_t
Mlp::macsPerForward() const
{
    uint64_t macs = 0;
    for (int l = 0; l < numLayers(); l++)
        macs += static_cast<uint64_t>(dims[l]) * dims[l + 1];
    return macs;
}

} // namespace instant3d
