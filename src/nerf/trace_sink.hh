/**
 * @file
 * Observer interface for embedding-grid memory accesses.
 *
 * The hash encoding reports every hash-table read (feed-forward,
 * Step 3-1) and write (back-propagation) to an attached TraceSink.
 * The trace module (src/trace) implements collectors that reproduce the
 * paper's memory-access-pattern studies (Figs 8-10), and the accelerator
 * simulator (src/accel) replays captured traces through the FRM/BUM
 * units.
 */

#ifndef INSTANT3D_NERF_TRACE_SINK_HH
#define INSTANT3D_NERF_TRACE_SINK_HH

#include <cstdint>

namespace instant3d {

/** One hash-table access from embedding-grid interpolation. */
struct GridAccess
{
    uint32_t address;   //!< Entry index within the level's hash table.
    uint16_t level;     //!< Multiresolution level.
    uint8_t corner;     //!< Which of the 8 cube corners (bit0=x,1=y,2=z).
    bool isWrite;       //!< False: feed-forward read. True: BP update.
    uint32_t pointId;   //!< Monotonic id of the queried 3D point.
};

/** Receiver of grid accesses, in program order. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void record(const GridAccess &access) = 0;
};

} // namespace instant3d

#endif // INSTANT3D_NERF_TRACE_SINK_HH
