/**
 * @file
 * Observer interface for embedding-grid memory accesses.
 *
 * The hash encoding reports every hash-table read (feed-forward,
 * Step 3-1) and write (back-propagation) to an attached TraceSink.
 * The trace module (src/trace) implements collectors that reproduce the
 * paper's memory-access-pattern studies (Figs 8-10), and the accelerator
 * simulator (src/accel) replays captured traces through the FRM/BUM
 * units.
 */

#ifndef INSTANT3D_NERF_TRACE_SINK_HH
#define INSTANT3D_NERF_TRACE_SINK_HH

#include <cstdint>
#include <vector>

namespace instant3d {

/** One hash-table access from embedding-grid interpolation. */
struct GridAccess
{
    uint32_t address;   //!< Entry index within the level's hash table.
    uint16_t level;     //!< Multiresolution level.
    uint8_t corner;     //!< Which of the 8 cube corners (bit0=x,1=y,2=z).
    bool isWrite;       //!< False: feed-forward read. True: BP update.
    uint32_t pointId;   //!< Monotonic id of the queried 3D point.
};

/** Receiver of grid accesses, in program order. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void record(const GridAccess &access) = 0;
};

/**
 * Buffers accesses from one worker's ray chunk so the parallel trainer
 * can replay them into the real sink in ray order, independent of how
 * chunks were scheduled over threads.
 *
 * Read accesses arrive with point ids drawn from the encoding's shared
 * atomic counter, whose values depend on thread interleaving. Each
 * buffered read is therefore relabeled with a chunk-local sequential
 * point index (a new index whenever the incoming id changes -- one
 * encode call emits a contiguous run of equal ids); flushInto() rebases
 * those local indices onto a running global base, reproducing exactly
 * the monotonic program-order ids a sequential run would have assigned.
 * Write accesses carry no point id (always 0) and pass through as-is.
 */
class BufferingTraceSink : public TraceSink
{
  public:
    void
    record(const GridAccess &access) override
    {
        GridAccess a = access;
        if (!a.isWrite) {
            if (localPoints == 0 || a.pointId != lastRawId) {
                lastRawId = a.pointId;
                localPoints++;
            }
            a.pointId = localPoints - 1;
        }
        buffer.push_back(a);
    }

    /**
     * Replay the buffer into dst with read point-ids rebased to start
     * at `base`; clears the buffer. Returns the number of distinct
     * points this chunk encoded (advance the base by it).
     */
    uint32_t
    flushInto(TraceSink &dst, uint32_t base)
    {
        for (GridAccess a : buffer) {
            if (!a.isWrite)
                a.pointId += base;
            dst.record(a);
        }
        uint32_t points = localPoints;
        buffer.clear();
        localPoints = 0;
        lastRawId = 0;
        return points;
    }

    bool empty() const { return buffer.empty(); }

  private:
    std::vector<GridAccess> buffer;
    uint32_t lastRawId = 0;
    uint32_t localPoints = 0;
};

} // namespace instant3d

#endif // INSTANT3D_NERF_TRACE_SINK_HH
