/**
 * @file
 * Adam optimizer with first/second-moment state, operating in place on a
 * parameter vector and its gradient accumulator. One Adam instance per
 * parameter group lets the Instant-3D trainer step the density and color
 * branches at different frequencies (Sec 3.3).
 */

#ifndef INSTANT3D_NERF_ADAM_HH
#define INSTANT3D_NERF_ADAM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace instant3d {

/** Adam hyper-parameters. */
struct AdamConfig
{
    float lr = 1e-2f;
    float beta1 = 0.9f;
    float beta2 = 0.99f;
    float epsilon = 1e-10f;
    float l2Reg = 0.0f; //!< Optional decoupled weight decay.
};

/**
 * Adam state for one parameter group.
 */
class Adam
{
  public:
    Adam(size_t num_params, const AdamConfig &config);

    /**
     * Apply one Adam step using the given gradients. params and grads
     * must have the size passed at construction. Gradients are consumed
     * as-is (the caller zeroes them afterward).
     */
    void step(std::vector<float> &params, const std::vector<float> &grads);

    uint64_t stepCount() const { return t; }
    const AdamConfig &config() const { return cfg; }
    void setLearningRate(float lr) { cfg.lr = lr; }

  private:
    AdamConfig cfg;
    std::vector<float> m;
    std::vector<float> v;
    uint64_t t = 0;
};

} // namespace instant3d

#endif // INSTANT3D_NERF_ADAM_HH
