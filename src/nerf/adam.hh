/**
 * @file
 * Adam optimizer with first/second-moment state, operating in place on a
 * parameter vector and its gradient accumulator. One Adam instance per
 * parameter group lets the Instant-3D trainer step the density and color
 * branches at different frequencies (Sec 3.3).
 *
 * Two stepping modes share one state:
 *
 *  - Dense: step() visits every parameter (the MLP groups, where every
 *    sample touches every weight).
 *
 *  - Sparse lazy (grid groups): stepSparse() sweeps only the *active*
 *    entries -- touched at least once and still carrying first-moment
 *    momentum -- in one ascending pass: the gradient update for this
 *    step's touched entries, the zero-gradient decay update (m *= b1,
 *    v *= b2 plus the bias-corrected parameter drift a dense step
 *    would have applied) for the rest. An entry retires from the
 *    sweep once its m reaches exactly +0: from then on the dense
 *    parameter update is a bit-exact no-op, and the second moment's
 *    remaining decay is tracked by a per-entry lastStep stamp and
 *    replayed -- the same multiplies in the same order -- when the
 *    entry is next touched. The parameter trajectory is therefore
 *    bit-identical to dense Adam at every step, while never-touched
 *    and fully-decayed entries cost nothing.
 *
 * Sparse mode requires l2Reg == 0: decoupled weight decay feeds params
 * back into the gradient, so untouched entries would not see zero
 * gradients.
 *
 * Bias corrections 1 - b^t are maintained incrementally (one multiply
 * per step instead of std::pow from scratch) in both modes; sparse mode
 * records them per step so lazy replays use the exact dense values.
 */

#ifndef INSTANT3D_NERF_ADAM_HH
#define INSTANT3D_NERF_ADAM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace instant3d {

class KernelBackend;

/** Adam hyper-parameters. */
struct AdamConfig
{
    float lr = 1e-2f;
    float beta1 = 0.9f;
    float beta2 = 0.99f;
    float epsilon = 1e-10f;
    float l2Reg = 0.0f; //!< Optional decoupled weight decay.
};

/**
 * Adam state for one parameter group.
 */
class Adam
{
  public:
    Adam(size_t num_params, const AdamConfig &config);

    /**
     * Apply one dense Adam step using the given gradients. params and
     * grads must have the size passed at construction. Gradients are
     * consumed as-is (the caller zeroes them afterward). Panics in
     * sparse mode (the two stepping modes must not be mixed).
     */
    void step(std::vector<float> &params, const std::vector<float> &grads);

    /**
     * Switch this optimizer to sparse lazy stepping. Parameters are
     * grouped into entries of `entry_span` consecutive floats (a hash-
     * table entry's features) sharing one staleness stamp. Must be
     * called before the first step; requires l2Reg == 0.
     */
    void enableSparse(uint32_t entry_span);

    bool sparseEnabled() const { return sparse; }

    /**
     * Apply one sparse Adam step: advances the step count, then sweeps
     * the active set once in ascending entry order -- the gradient
     * update for the entries listed in `touched` (duplicates ignored;
     * any zero-gradient steps an entry missed while retired are
     * replayed first), the zero-gradient decay update for the rest.
     * Parameters are exactly on the dense trajectory when this
     * returns; entries outside the active set owe only bit-exact
     * no-ops. grads must be zero outside the touched entries for the
     * dense-equivalence contract to hold.
     */
    void stepSparse(std::vector<float> &params,
                    const std::vector<float> &grads,
                    const std::vector<uint32_t> &touched);

    /**
     * Settle any updates owed to params so they equal the dense-Adam
     * trajectory at the current step count. stepSparse() settles
     * eagerly, so this writes nothing today -- it exists as the
     * explicit settling point of the API for callers that read
     * parameters directly, rather than a promise about the sweep being
     * eager. Safe at any point: settling never changes later results.
     */
    void catchUp(std::vector<float> &params);

    /**
     * Entries currently carrying nonzero first-moment momentum -- the
     * per-step sweep set of the sparse path (plus the touched list).
     */
    size_t activeEntries() const { return activeCount; }

    uint64_t stepCount() const { return t; }
    const AdamConfig &config() const { return cfg; }

    /**
     * Change the learning rate. Rejected mid-training in sparse mode:
     * retired entries' skipped updates were proven no-ops at the old
     * rate, and deferred replays would run at the new one -- either
     * silently breaks the dense-equivalence contract. (Versioning lr
     * per step like the bias corrections would not rescue retirement:
     * a later increase can turn a retired entry's future updates back
     * into real ones.) Set the rate before the first step, or use the
     * dense optimizer for lr schedules.
     */
    void setLearningRate(float lr);

    /**
     * Route the optimizer sweeps through the given kernel backend:
     * the dense step via its adamDenseStep kernel, the sparse bitmap
     * sweep via its sweepRanges partition (per-entry Adam is
     * independent, so any partition -- including threaded_sweep's
     * parallel ranges -- is bit-identical to the serial sweep).
     * nullptr restores the scalar reference. Safe to change between
     * steps; it never alters results.
     */
    void setKernelBackend(const KernelBackend *backend)
    { kernelBackend = backend; }

  private:
    /** Advance t and the incremental 1 - b^t bias corrections. */
    void advanceStep();

    /**
     * Replay the zero-gradient steps (from, to] of one parameter:
     * moment decay plus the bias-corrected drift update, exactly as a
     * dense step with g == 0 would have applied them. Parameter writes
     * stop once m reaches exactly +0 (the update is +0 from then on);
     * the loop exits once v does too (fully a no-op afterwards).
     */
    void lazyReplay(float &p, float &m_i, float &v_i, uint64_t from,
                    uint64_t to) const;

    /**
     * One Adam update of one parameter (g == 0 for the pure-decay
     * case); returns true when the entry may retire from the sweep
     * because every future zero-gradient update provably rounds to a
     * bit-exact no-op (|update| under the retireGate ulp bound).
     */
    bool applyStep(float &p, float &m_i, float &v_i, float g) const;

    AdamConfig cfg;
    std::vector<float> m;
    std::vector<float> v;
    uint64_t t = 0;

    float beta1Pow = 1.0f; //!< b1^t, maintained incrementally.
    float beta2Pow = 1.0f; //!< b2^t.
    float bc1 = 0.0f;      //!< 1 - b1^t of the current step.
    float bc2 = 0.0f;      //!< 1 - b2^t.
    float retireGate = 0.0f; //!< sqrt(bc2) / 8: sweep-exit ulp bound.

    bool sparse = false;
    uint32_t span = 1;              //!< Floats per entry (sparse mode).
    std::vector<uint64_t> lastStep; //!< Per-entry last settled step.
    std::vector<float> bc1Hist;     //!< 1 - b1^s for s = 1..t (sparse).
    std::vector<float> bc2Hist;     //!< 1 - b2^s, same indexing.

    /**
     * Bitmap of entries whose parameters still drift. stepSparse()
     * sweeps set bits in ascending entry order -- sequential memory
     * access -- and clears a bit once the entry's updates provably
     * round to no-ops (the retireGate bound): from then on the dense
     * update is a bit-exact no-op on the parameter, and the moments'
     * remaining decay is replayed lazily on the entry's next touch.
     */
    std::vector<uint64_t> activeBits;
    std::vector<uint64_t> touchedBits; //!< Scratch: this step's touches.
    size_t activeCount = 0;
    const KernelBackend *kernelBackend = nullptr; //!< null = scalar_ref.
};

} // namespace instant3d

#endif // INSTANT3D_NERF_ADAM_HH
