/**
 * @file
 * The six-step NeRF training loop (paper Sec 2.1, Fig 2):
 *   1. randomly sample pixels as a batch
 *   2. map pixels to rays
 *   3. query features of points along the rays (grid + MLP)
 *   4. predict pixel colors by volume rendering
 *   5. squared-error loss against ground truth
 *   6. back-propagate and update
 *
 * The trainer owns the field, the per-group Adam states, and the
 * update-frequency schedule (F_D : F_C) of the Instant-3D algorithm.
 */

#ifndef INSTANT3D_NERF_TRAINER_HH
#define INSTANT3D_NERF_TRAINER_HH

#include <memory>
#include <vector>

#include "nerf/adam.hh"
#include "nerf/renderer.hh"
#include "scene/dataset.hh"

namespace instant3d {

/** Training-loop configuration. */
struct TrainConfig
{
    int raysPerBatch = 192;
    int samplesPerRay = 48;
    AdamConfig adam;

    /**
     * Update periods in iterations: the branch's parameters receive a
     * back-propagated update every Nth iteration. F_D : F_C = 1 : 0.5
     * means densityUpdatePeriod = 1, colorUpdatePeriod = 2 (the color
     * grid "is updated every two iterations", Sec 5.1).
     */
    int densityUpdatePeriod = 1;
    int colorUpdatePeriod = 1;

    /** Enable Instant-NGP-style occupancy-grid empty-space skipping. */
    bool useOccupancyGrid = false;
    int occupancyUpdatePeriod = 16; //!< Grid refresh interval (iters).
    OccupancyGridConfig occupancy;

    uint64_t seed = 42;
};

/** Per-iteration statistics returned by trainIteration(). */
struct TrainStats
{
    double loss = 0.0;          //!< Mean squared error of the batch.
    uint64_t pointsQueried = 0; //!< Field queries this iteration.
    bool densityUpdated = false;
    bool colorUpdated = false;
};

/**
 * Trains a NerfField against a ground-truth Dataset.
 */
class Trainer
{
  public:
    Trainer(const Dataset &dataset, const FieldConfig &field_config,
            const TrainConfig &train_config);

    /** Run one full training iteration (Steps 1-6). */
    TrainStats trainIteration();

    int iteration() const { return iter; }
    NerfField &field() { return *fieldPtr; }
    const VolumeRenderer &renderer() const { return *rendererPtr; }

    /** The occupancy grid, or nullptr when skipping is disabled. */
    const OccupancyGrid *occupancyGrid() const
    { return occupancyPtr.get(); }

    /** Render an RGB image of the current field from a camera. */
    Image renderImage(const Camera &camera);

    /** Render a depth map of the current field from a camera. */
    std::vector<float> renderDepth(const Camera &camera);

    /** Average RGB PSNR over the dataset's test views. */
    double evalPsnr();

    /**
     * Average depth-map PSNR over the test views (the paper's proxy for
     * density quality, Fig 5); normalized by tFar.
     */
    double evalDepthPsnr();

    /** Total field queries since construction (workload accounting). */
    uint64_t totalPointsQueried() const { return pointsTotal; }

  private:
    bool dueThisIteration(int period) const;

    const Dataset &data;
    TrainConfig cfg;
    std::unique_ptr<NerfField> fieldPtr;
    std::unique_ptr<VolumeRenderer> rendererPtr;
    std::unique_ptr<OccupancyGrid> occupancyPtr;
    std::vector<std::unique_ptr<Adam>> optimizers;
    std::vector<ParamGroupId> groups;
    Rng rng;
    int iter = 0;
    uint64_t pointsTotal = 0;
};

} // namespace instant3d

#endif // INSTANT3D_NERF_TRAINER_HH
