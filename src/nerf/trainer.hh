/**
 * @file
 * The six-step NeRF training loop (paper Sec 2.1, Fig 2):
 *   1. randomly sample pixels as a batch
 *   2. map pixels to rays
 *   3. query features of points along the rays (grid + MLP)
 *   4. predict pixel colors by volume rendering
 *   5. squared-error loss against ground truth
 *   6. back-propagate and update
 *
 * The trainer owns the field, the per-group Adam states, and the
 * update-frequency schedule (F_D : F_C) of the Instant-3D algorithm.
 *
 * Execution model: the ray batch is split into a fixed number of
 * chunks (gradShards) processed by a thread pool. Each ray draws from
 * its own RNG stream keyed by (seed, iteration, ray index), each chunk
 * accumulates gradients into its own shard, and shards are reduced
 * into the field in fixed chunk order -- so training is bit-identical
 * for any thread count. Grid trace sinks remain usable: worker chunks
 * buffer their accesses and the trainer merges them in ray order.
 */

#ifndef INSTANT3D_NERF_TRAINER_HH
#define INSTANT3D_NERF_TRAINER_HH

#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.hh"
#include "kernels/kernel_backend.hh"
#include "common/workspace.hh"
#include "nerf/adam.hh"
#include "nerf/renderer.hh"
#include "nerf/serialize.hh"
#include "scene/dataset.hh"

namespace instant3d {

/** Training-loop configuration. */
struct TrainConfig
{
    int raysPerBatch = 192;
    int samplesPerRay = 48;
    AdamConfig adam;

    /**
     * Update periods in iterations: the branch's parameters receive a
     * back-propagated update every Nth iteration. F_D : F_C = 1 : 0.5
     * means densityUpdatePeriod = 1, colorUpdatePeriod = 2 (the color
     * grid "is updated every two iterations", Sec 5.1).
     */
    int densityUpdatePeriod = 1;
    int colorUpdatePeriod = 1;

    /** Enable Instant-NGP-style occupancy-grid empty-space skipping. */
    bool useOccupancyGrid = false;
    int occupancyUpdatePeriod = 16; //!< Grid refresh interval (iters).
    OccupancyGridConfig occupancy;

    /**
     * Worker threads for training and rendering; 0 = auto (the
     * INSTANT3D_THREADS environment variable, else hardware
     * concurrency). Results are bit-identical for any value.
     */
    int numThreads = 0;

    /**
     * Number of gradient shards == ray chunks per batch. This (not the
     * thread count) fixes the floating-point reduction order, so it is
     * part of the determinism contract: changing it changes results,
     * changing numThreads never does. It also caps usable parallelism
     * within one training iteration.
     */
    int gradShards = 8;

    /**
     * Run the original scalar reference path: strictly sequential rays
     * on one shared RNG stream with per-call heap allocation. Kept as
     * the baseline for bench_train_throughput and for debugging.
     */
    bool scalarReference = false;

    /**
     * Process each chunk as one occupancy-compacted sample stream
     * (march all rays -> single field query over the surviving samples
     * -> per-ray compositing -> stream backward) instead of per-ray
     * batches, paying per-ray kernel fixed costs once per chunk.
     * Bit-identical to the per-ray batched path -- with or without an
     * occupancy grid -- and to itself at any thread count. Falls back
     * to the per-ray path while a trace sink is attached, because the
     * stream reorders grid accesses (all reads, then all writes) and
     * trace record order is part of the trace contract.
     */
    bool compactSamples = true;

    /**
     * Merge duplicate hash-table gradient writes per chunk (the
     * paper's BUM idea, Fig 10): each chunk's grid scatters accumulate
     * in a small per-chunk buffer and colliding writes cost one table
     * update instead of many; the deduplicated touch lists also
     * shrink the shard reduction. Per-address sums keep program order
     * and shards start from zero, so training stays bit-identical to
     * the unmerged path. Only active on the compacted path.
     */
    bool mergeHashGrads = false;

    /**
     * Step the grid parameter groups with the sparse lazy Adam: the
     * optimizer visits only the entries this iteration's scatters
     * touched (the dirty union of the shard touch lists) plus the
     * entries still carrying momentum from earlier touches, and the
     * gradient clear visits only the touched entries -- never the full
     * tables. Entries with zero momentum owe only bit-exact no-op
     * updates, so training is bit-identical to the dense optimizer at
     * every iteration. Active on the batched paths when adam.l2Reg ==
     * 0 (weight decay makes untouched gradients nonzero); the scalar
     * reference path and the MLP groups stay dense.
     */
    bool sparseOptimizer = true;

    /**
     * Kernel backend for the batched hot-path kernels: "scalar_ref"
     * (the reference loops), "simd" (order-preserving vectorized
     * loops), "threaded_sweep" (scalar kernels + optimizer sweeps over
     * the thread pool), or "auto" (threaded_sweep when the pool has
     * more than one worker, else scalar_ref -- both bit-identical to
     * the historical path). The INSTANT3D_KERNEL_BACKEND environment
     * variable overrides this field. See src/kernels/kernel_backend.hh
     * for the per-backend determinism contract.
     */
    std::string kernelBackend = "auto";

    /**
     * Record a wall-time breakdown of each iteration's phases into
     * TrainStats::phases (bench instrumentation; off by default to
     * keep clock reads out of the hot path). Worker-chunk phases are
     * summed across chunks, so with multiple threads the breakdown
     * reads as CPU time, not elapsed time.
     */
    bool collectPhaseTimes = false;

    uint64_t seed = 42;
};

/**
 * Per-phase seconds of one training iteration
 * (TrainConfig::collectPhaseTimes).
 */
struct TrainPhaseTimes
{
    double march = 0.0;     //!< Occupancy march + sample-stream build.
    double forward = 0.0;   //!< Grid encodes + MLP forwards + compositing.
    double backward = 0.0;  //!< Loss backward into the gradient shards.
    double reduce = 0.0;    //!< Shard reduction into the field.
    double optimizer = 0.0; //!< Adam steps of the due groups.
    double zeroGrad = 0.0;  //!< Gradient clearing.
    double occRefresh = 0.0; //!< Occupancy-grid refresh (when due).
};

/** Per-iteration statistics returned by trainIteration(). */
struct TrainStats
{
    double loss = 0.0;          //!< Mean squared error of the batch.
    uint64_t pointsQueried = 0; //!< Field queries this iteration.
    bool densityUpdated = false;
    bool colorUpdated = false;

    /**
     * Hash-grid gradient-write merging (mergeHashGrads only, both
     * grids summed): logical scatters buffered vs unique table entries
     * actually written. Their ratio is the Fig 10 merge factor.
     */
    uint64_t gridGradWrites = 0;
    uint64_t gridGradWritesMerged = 0;

    /**
     * Touched grid entries stepped by the sparse optimizer this
     * iteration (0 when stepping densely) -- the per-iteration work
     * the sparse path pays instead of the full table scan.
     */
    uint64_t sparseEntriesStepped = 0;

    /** Phase breakdown (zeros unless collectPhaseTimes). */
    TrainPhaseTimes phases;
};

/**
 * Trains a NerfField against a ground-truth Dataset.
 */
class Trainer
{
  public:
    Trainer(const Dataset &dataset, const FieldConfig &field_config,
            const TrainConfig &train_config);

    /** Run one full training iteration (Steps 1-6). */
    TrainStats trainIteration();

    int iteration() const { return iter; }
    NerfField &field() { return *fieldPtr; }
    const VolumeRenderer &renderer() const { return *rendererPtr; }

    /** Worker threads in use (after auto resolution). */
    int threadCount() const { return pool->threadCount(); }

    /** Resolved kernel-backend name (after auto/env resolution). */
    const char *kernelBackendName() const { return backend->name(); }

    /** The occupancy grid, or nullptr when skipping is disabled. */
    const OccupancyGrid *occupancyGrid() const
    { return occupancyPtr.get(); }

    /**
     * Settle any deferred sparse-optimizer updates so the field's
     * parameters equal the dense-Adam trajectory at the current step.
     * The trainer settles after every optimizer step, so this is a
     * cheap no-op in normal operation; rendering and eval still call
     * it defensively. Never changes subsequent training results.
     */
    void syncParams();

    /** True when the grid groups use the sparse lazy optimizer. */
    bool sparseOptimizerActive() const { return sparseActive; }

    /**
     * Checkpoint the live model: settle any deferred sparse-optimizer
     * updates (syncParams()), then serialize the field plus the
     * occupancy grid (when one is attached). This is the supported way
     * to snapshot a *training* model -- calling saveField() directly on
     * a live sparse-Adam trainer would bypass the settling step and
     * could observe parameters that still owe catch-up updates.
     * Returns CheckpointError::None on success; never changes training
     * results. The write is crash-safe (temp file + atomic rename).
     */
    CheckpointError saveCheckpoint(const std::string &path);

    /**
     * Entries currently in the sparse optimizers' sweep sets (all grid
     * groups summed) -- the per-iteration optimizer work beyond the
     * touched list. 0 when stepping densely.
     */
    size_t sparseActiveEntries() const;

    /** Render an RGB image of the current field from a camera. */
    Image renderImage(const Camera &camera);

    /** Render a depth map of the current field from a camera. */
    std::vector<float> renderDepth(const Camera &camera);

    /** Average RGB PSNR over the dataset's test views. */
    double evalPsnr();

    /**
     * Average depth-map PSNR over the test views (the paper's proxy for
     * density quality, Fig 5); normalized by tFar.
     */
    double evalDepthPsnr();

    /** Total field queries since construction (workload accounting). */
    uint64_t totalPointsQueried() const { return pointsTotal; }

  private:
    bool dueThisIteration(int period) const;

    /**
     * Steps 1-2 of the loop: draw one training pixel (view, column,
     * row) and the jittered ray through it from `rng`. Every training
     * path (scalar, per-ray batched, compacted) consumes exactly this
     * draw sequence, which is what keeps them bit-comparable.
     */
    void sampleTrainingRay(Rng &rng, Ray &ray, Vec3 &gt) const;

    TrainStats trainIterationScalar();
    void forEachPixel(
        const Camera &camera,
        const std::function<void(int, int, const RayResult &)> &emit);

    const Dataset &data;
    TrainConfig cfg;
    std::unique_ptr<NerfField> fieldPtr;
    std::unique_ptr<VolumeRenderer> rendererPtr;
    std::unique_ptr<OccupancyGrid> occupancyPtr;
    std::vector<std::unique_ptr<Adam>> optimizers;
    std::vector<ParamGroupId> groups;
    std::unique_ptr<ThreadPool> pool;
    std::unique_ptr<KernelBackend> backend;
    std::vector<Workspace> workspaces;    //!< One per thread rank.
    std::vector<FieldGradients> shards;   //!< One per ray chunk.
    std::vector<FieldGradMergers> mergers; //!< One per chunk (if merging).
    std::vector<double> chunkLoss;
    Rng rng;
    int iter = 0;
    uint64_t pointsTotal = 0;
    bool sparseActive = false;
};

} // namespace instant3d

#endif // INSTANT3D_NERF_TRAINER_HH
