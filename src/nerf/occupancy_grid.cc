#include "nerf/occupancy_grid.hh"

#include <algorithm>

#include "common/logging.hh"
#include "nerf/field.hh"

namespace instant3d {

OccupancyGrid::OccupancyGrid(const OccupancyGridConfig &config)
    : cfg(config)
{
    fatalIf(cfg.resolution < 1, "occupancy grid needs resolution >= 1");
    fatalIf(cfg.decay <= 0.0f || cfg.decay >= 1.0f,
            "occupancy decay must be in (0, 1)");
    size_t n = static_cast<size_t>(cfg.resolution) * cfg.resolution *
               cfg.resolution;
    // Start optimistic: everything might contain matter.
    density.assign(n, cfg.occupancyThreshold * 2.0f);
}

size_t
OccupancyGrid::cellIndex(const Vec3 &p) const
{
    Vec3 q = clamp(p, 0.0f, 1.0f);
    auto axis = [this](float v) {
        int c = static_cast<int>(v * cfg.resolution);
        return std::min(c, cfg.resolution - 1);
    };
    return (static_cast<size_t>(axis(q.z)) * cfg.resolution +
            axis(q.y)) * cfg.resolution + axis(q.x);
}

bool
OccupancyGrid::occupied(const Vec3 &p) const
{
    return density[cellIndex(p)] >= cfg.occupancyThreshold;
}

double
OccupancyGrid::occupiedFraction() const
{
    size_t n = 0;
    for (float d : density)
        if (d >= cfg.occupancyThreshold)
            n++;
    return static_cast<double>(n) / static_cast<double>(density.size());
}

void
OccupancyGrid::markAllOccupied()
{
    std::fill(density.begin(), density.end(),
              cfg.occupancyThreshold * 2.0f);
}

void
OccupancyGrid::update(NerfField &field, Rng &rng)
{
    const float cell = 1.0f / static_cast<float>(cfg.resolution);
    const int probes = cfg.samplesPerCellUpdate;
    const int row = cfg.resolution * probes; // probe count per x-row

    size_t idx = 0;
    for (int z = 0; z < cfg.resolution; z++) {
        for (int y = 0; y < cfg.resolution; y++) {
            ws.reset();
            Vec3 *pts = ws.alloc<Vec3>(row);
            FieldSample *fs = ws.alloc<FieldSample>(row);

            // Draw every probe of the row in the exact cell-by-cell
            // order the scalar loop used, then query them as one
            // batch (queryBatch is bit-identical to query()).
            int m = 0;
            for (int x = 0; x < cfg.resolution; x++) {
                for (int s = 0; s < probes; s++) {
                    pts[m++] = Vec3((x + rng.nextFloat()) * cell,
                                    (y + rng.nextFloat()) * cell,
                                    (z + rng.nextFloat()) * cell);
                }
            }
            field.queryBatch(pts, m, {0.0f, 0.0f, 1.0f}, fs, nullptr,
                             ws);

            for (int x = 0; x < cfg.resolution; x++, idx++) {
                float fresh = 0.0f;
                for (int s = 0; s < probes; s++)
                    fresh = std::max(fresh, fs[x * probes + s].sigma);
                density[idx] =
                    std::max(density[idx] * cfg.decay, fresh);
            }
        }
    }
}

} // namespace instant3d
