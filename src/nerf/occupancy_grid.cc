#include "nerf/occupancy_grid.hh"

#include <algorithm>

#include "common/logging.hh"
#include "nerf/field.hh"

namespace instant3d {

namespace {

/**
 * One refresh round's jitter key: the probes of cell `idx` in this
 * round come from Rng::forIndex(round_key, 0, idx), so a cell's probe
 * positions depend only on (round key, cell) -- not on how many other
 * cells are probed or in which order. The full sweep and the partial
 * refresh therefore agree bit-exactly on every commonly-probed cell,
 * which is what lets the partial path converge to the full sweep's
 * occupied set instead of a statistically different one.
 */
uint64_t
drawRoundKey(Rng &rng)
{
    return (static_cast<uint64_t>(rng.nextU32()) << 32) | rng.nextU32();
}

/** Fill `pts` with cell idx's jittered probe positions for a round. */
void
cellProbes(uint64_t round_key, uint32_t idx, int res, int probes,
           float cell, Vec3 *pts)
{
    const int x = static_cast<int>(idx) % res;
    const int y = (static_cast<int>(idx) / res) % res;
    const int z = static_cast<int>(idx) / (res * res);
    Rng cr = Rng::forIndex(round_key, 0, idx);
    for (int s = 0; s < probes; s++) {
        pts[s] = Vec3((x + cr.nextFloat()) * cell,
                      (y + cr.nextFloat()) * cell,
                      (z + cr.nextFloat()) * cell);
    }
}

} // namespace

OccupancyGrid::OccupancyGrid(const OccupancyGridConfig &config)
    : cfg(config)
{
    fatalIf(cfg.resolution < 1, "occupancy grid needs resolution >= 1");
    fatalIf(cfg.decay <= 0.0f || cfg.decay >= 1.0f,
            "occupancy decay must be in (0, 1)");
    fatalIf(cfg.candidateFraction < 0.0f || cfg.candidateFraction > 1.0f,
            "candidate fraction must be in [0, 1]");
    size_t n = static_cast<size_t>(cfg.resolution) * cfg.resolution *
               cfg.resolution;
    // Start optimistic: everything might contain matter.
    density.assign(n, cfg.occupancyThreshold * 2.0f);
}

size_t
OccupancyGrid::cellIndex(const Vec3 &p) const
{
    Vec3 q = clamp(p, 0.0f, 1.0f);
    auto axis = [this](float v) {
        int c = static_cast<int>(v * cfg.resolution);
        return std::min(c, cfg.resolution - 1);
    };
    return (static_cast<size_t>(axis(q.z)) * cfg.resolution +
            axis(q.y)) * cfg.resolution + axis(q.x);
}

bool
OccupancyGrid::occupied(const Vec3 &p) const
{
    return density[cellIndex(p)] >= cfg.occupancyThreshold;
}

double
OccupancyGrid::occupiedFraction() const
{
    size_t n = 0;
    for (float d : density)
        if (d >= cfg.occupancyThreshold)
            n++;
    return static_cast<double>(n) / static_cast<double>(density.size());
}

void
OccupancyGrid::markAllOccupied()
{
    std::fill(density.begin(), density.end(),
              cfg.occupancyThreshold * 2.0f);
}

void
OccupancyGrid::refresh(NerfField &field, Rng &rng)
{
    if (cfg.partialUpdate)
        updatePartial(field, rng);
    else
        update(field, rng);
}

void
OccupancyGrid::updatePartial(NerfField &field, Rng &rng)
{
    const float cell = 1.0f / static_cast<float>(cfg.resolution);
    const int probes = cfg.samplesPerCellUpdate;
    const int res = cfg.resolution;
    const uint32_t n_cells = static_cast<uint32_t>(density.size());
    const uint64_t round_key = drawRoundKey(rng);

    // Probe set, in ascending cell order: every occupied cell, plus
    // the rotating stratified candidate slice of the unoccupied ones
    // (cell i is a candidate when i mod D cycles onto this round's
    // phase, D = round(1 / candidateFraction)) -- so no cleared cell
    // goes more than D rounds without a fresh probe, deterministically.
    const uint32_t divisor =
        cfg.candidateFraction > 0.0f
            ? std::max(1u, static_cast<uint32_t>(
                               1.0f / cfg.candidateFraction + 0.5f))
            : 0u;
    const uint32_t phase = divisor ? updateRound % divisor : 0u;
    updateRound++;
    probeList.clear();
    for (uint32_t i = 0; i < n_cells; i++) {
        if (density[i] >= cfg.occupancyThreshold ||
            (divisor && i % divisor == phase)) {
            probeList.push_back(i);
        }
    }

    // EMA decay for every cell -- no field queries, just one cheap
    // pass -- then fresh probes raise the re-sampled cells back up.
    for (float &d : density)
        d *= cfg.decay;

    // Query the probe list in fixed-size blocks through the batched
    // kernels. Per-cell probe streams make the blocking (and the probe
    // list's composition) invisible to the sampled positions.
    const int block = std::max(1, res * probes);
    for (size_t begin = 0; begin < probeList.size();
         begin += static_cast<size_t>(block)) {
        const int nb = static_cast<int>(
            std::min(static_cast<size_t>(block),
                     probeList.size() - begin));
        ws.reset();
        Vec3 *pts = ws.alloc<Vec3>(static_cast<size_t>(nb) * probes);
        FieldSample *fs =
            ws.alloc<FieldSample>(static_cast<size_t>(nb) * probes);
        for (int i = 0; i < nb; i++) {
            cellProbes(round_key, probeList[begin + i], res, probes,
                       cell, pts + static_cast<size_t>(i) * probes);
        }
        field.queryBatch(pts, nb * probes, {0.0f, 0.0f, 1.0f}, fs,
                         nullptr, ws);

        for (int i = 0; i < nb; i++) {
            float fresh = 0.0f;
            for (int s = 0; s < probes; s++)
                fresh = std::max(fresh, fs[i * probes + s].sigma);
            float &d = density[probeList[begin + i]];
            d = std::max(d, fresh);
        }
    }
}

void
OccupancyGrid::update(NerfField &field, Rng &rng)
{
    const float cell = 1.0f / static_cast<float>(cfg.resolution);
    const int probes = cfg.samplesPerCellUpdate;
    const int res = cfg.resolution;
    const int row = res * probes; // probe count per x-row
    const uint64_t round_key = drawRoundKey(rng);

    size_t idx = 0;
    for (int z = 0; z < res; z++) {
        for (int y = 0; y < res; y++) {
            ws.reset();
            Vec3 *pts = ws.alloc<Vec3>(row);
            FieldSample *fs = ws.alloc<FieldSample>(row);

            // Each cell's probes come from its own (round key, cell)
            // stream; the whole x-row is queried as one batch
            // (queryBatch is bit-identical to query()).
            const uint32_t row_base = static_cast<uint32_t>(idx);
            for (int x = 0; x < res; x++) {
                cellProbes(round_key, row_base + x, res, probes, cell,
                           pts + static_cast<size_t>(x) * probes);
            }
            field.queryBatch(pts, row, {0.0f, 0.0f, 1.0f}, fs, nullptr,
                             ws);

            for (int x = 0; x < res; x++, idx++) {
                float fresh = 0.0f;
                for (int s = 0; s < probes; s++)
                    fresh = std::max(fresh, fs[x * probes + s].sigma);
                density[idx] =
                    std::max(density[idx] * cfg.decay, fresh);
            }
        }
    }
}

} // namespace instant3d
