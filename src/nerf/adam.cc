#include "nerf/adam.hh"

#include <atomic>
#include <bit>
#include <limits>
#include <cmath>

#include "common/logging.hh"
#include "kernels/kernel_backend.hh"

namespace instant3d {

namespace {

/** Words per range of the sparse bitmap sweep (64 entries per word):
 *  4096 entries per range keeps ranges big enough to amortize the
 *  pool dispatch while still fanning a 2^15-entry table out to 8. */
constexpr size_t kSparseSweepGrainWords = 64;

} // namespace

Adam::Adam(size_t num_params, const AdamConfig &config)
    : cfg(config)
{
    m.assign(num_params, 0.0f);
    v.assign(num_params, 0.0f);
}

void
Adam::advanceStep()
{
    t++;
    beta1Pow *= cfg.beta1;
    beta2Pow *= cfg.beta2;
    bc1 = 1.0f - beta1Pow;
    bc2 = 1.0f - beta2Pow;
    if (sparse) {
        bc1Hist.push_back(bc1);
        bc2Hist.push_back(bc2);
        // Retirement gate for this step: with zero gradients the
        // update magnitude decays by (b1 / sqrt(b2))^k while the bias
        // corrections can inflate it by at most 1 / sqrt(bc2) in
        // total, so once |update| < ulp(param) * sqrt(bc2) / 8 every
        // future update rounds to a bit-exact no-op (strictly inside
        // the ulp/2 round-to-nearest boundary with a 4x margin) and
        // the entry can safely leave the sweep. ulp(p) >= |p| * 2^-24
        // for every normal p folds the whole test into one multiply.
        retireGate = std::sqrt(bc2) * 0.125f * 0x1p-24f;
    }
}

void
Adam::step(std::vector<float> &params, const std::vector<float> &grads)
{
    panicIf(params.size() != m.size() || grads.size() != m.size(),
            "Adam::step() size mismatch");
    panicIf(sparse, "Adam::step() called on a sparse optimizer");
    advanceStep();

    AdamKernelParams kp;
    kp.lr = cfg.lr;
    kp.beta1 = cfg.beta1;
    kp.beta2 = cfg.beta2;
    kp.epsilon = cfg.epsilon;
    kp.l2Reg = cfg.l2Reg;
    kp.bc1 = bc1;
    kp.bc2 = bc2;
    resolveBackend(kernelBackend)
        .adamDenseStep(params.data(), grads.data(), m.data(), v.data(),
                       params.size(), kp);
}

void
Adam::setLearningRate(float lr)
{
    panicIf(sparse && t != 0,
            "sparse Adam cannot change the learning rate mid-training "
            "(deferred replays and retirement proofs assume a fixed "
            "lr); set it before the first step or step densely");
    cfg.lr = lr;
}

void
Adam::enableSparse(uint32_t entry_span)
{
    panicIf(t != 0, "enableSparse() must precede the first step");
    panicIf(entry_span == 0 || m.size() % entry_span != 0,
            "entry span must divide the parameter count");
    panicIf(cfg.l2Reg != 0.0f,
            "sparse Adam requires l2Reg == 0 (weight decay makes "
            "untouched gradients nonzero)");
    sparse = true;
    span = entry_span;
    lastStep.assign(m.size() / span, 0);
    activeBits.assign((m.size() / span + 63) / 64, 0);
    touchedBits.assign(activeBits.size(), 0);
}

void
Adam::lazyReplay(float &p, float &m_i, float &v_i, uint64_t from,
                 uint64_t to) const
{
    // Each step mirrors the dense g == 0 arithmetic exactly,
    // including the trailing +0 additions (they normalize a -0 moment
    // to +0 just like the dense fused update does).
    for (uint64_t s = from + 1; s <= to; s++) {
        if (m_i == 0.0f && !std::signbit(m_i)) {
            // m is exactly +0: the parameter update is +0 forever (a
            // bit-exact identity), so only v's decay remains -- and
            // once v hits exact +0 too, nothing remains at all.
            if (v_i == 0.0f && !std::signbit(v_i))
                return;
            for (; s <= to; s++) {
                v_i = cfg.beta2 * v_i + 0.0f;
                if (v_i == 0.0f)
                    return;
            }
            return;
        }
        m_i = cfg.beta1 * m_i + 0.0f;
        v_i = cfg.beta2 * v_i + 0.0f;
        float mhat = m_i / bc1Hist[s - 1];
        float vhat = v_i / bc2Hist[s - 1];
        p -= cfg.lr * mhat / (std::sqrt(vhat) + cfg.epsilon);
    }
}

/**
 * One zero-gradient or gradient step of one parameter, returning true
 * when the entry's future zero-gradient updates provably round to
 * no-ops (see retireGate). Shared by the touched and steady-state
 * sweep paths.
 */
inline bool
Adam::applyStep(float &p, float &m_i, float &v_i, float g) const
{
    m_i = cfg.beta1 * m_i + (1.0f - cfg.beta1) * g;
    v_i = cfg.beta2 * v_i + (1.0f - cfg.beta2) * g * g;
    float mhat = m_i / bc1;
    float vhat = v_i / bc2;
    float upd = cfg.lr * mhat / (std::sqrt(vhat) + cfg.epsilon);
    p -= upd;
    // The |p| * gate form never retires a p == 0 parameter, so the
    // exact terminal state (m at +0, update exactly +0 forever) is
    // accepted separately.
    return std::fabs(upd) < std::fabs(p) * retireGate ||
           (upd == 0.0f && m_i == 0.0f && !std::signbit(m_i));
}

void
Adam::stepSparse(std::vector<float> &params,
                 const std::vector<float> &grads,
                 const std::vector<uint32_t> &touched)
{
    panicIf(params.size() != m.size() || grads.size() != m.size(),
            "Adam::stepSparse() size mismatch");
    panicIf(!sparse, "stepSparse() needs enableSparse()");
    advanceStep();

    // Mark this step's touched entries (deduplicating via the bitmap)
    // and add them to the active set; from here touched is a subset of
    // active, so one sweep covers both kinds of work.
    for (uint32_t off : touched) {
        const size_t entry = off / span;
        panicIf(off % span != 0 || entry >= lastStep.size(),
                "touched offset outside the parameter group");
        touchedBits[entry >> 6] |= 1ull << (entry & 63);
        uint64_t &word = activeBits[entry >> 6];
        const uint64_t bit = 1ull << (entry & 63);
        if (!(word & bit)) {
            word |= bit;
            activeCount++;
        }
    }

    // One ascending sweep over the active set: the gradient step for
    // touched entries (replaying any owed zero-gradient steps first),
    // the zero-gradient decay step for the rest. Every m/v/param/grad
    // access is in ascending address order, so the sweep streams
    // through memory the same way the dense loop does -- just over the
    // active fraction of the table instead of all of it. Parameters
    // are exactly on the dense trajectory when this returns.
    //
    // The word range is partitioned by the kernel backend
    // (threaded_sweep fans ranges out over the thread pool): every
    // write inside the sweep -- params/moments/stamps and the two
    // bitmap words -- is local to one word's entries, and the only
    // shared accumulation is the integer retirement count, so any
    // partition is bit-identical to the serial sweep.
    std::atomic<size_t> retired{0};
    resolveBackend(kernelBackend)
        .sweepRanges(activeBits.size(), kSparseSweepGrainWords,
                     [&](size_t w_begin, size_t w_end) {
    size_t range_retired = 0;
    for (size_t w = w_begin; w < w_end; w++) {
        uint64_t word = activeBits[w];
        if (!word)
            continue;
        const uint64_t tword = touchedBits[w];
        touchedBits[w] = 0;
        uint64_t keep = word;
        do {
            const int b = std::countr_zero(word);
            word &= word - 1;
            const size_t entry = (w << 6) + static_cast<size_t>(b);
            const uint64_t last = lastStep[entry];
            bool retire;
            if ((tword >> b) & 1) {
                retire = true;
                for (uint32_t f = 0; f < span; f++) {
                    const size_t i = entry * span + f;
                    lazyReplay(params[i], m[i], v[i], last, t - 1);
                    retire &= applyStep(params[i], m[i], v[i], grads[i]);
                }
            } else if (last == t - 1) {
                // Fast path (the steady-state case): one zero-gradient
                // step with the current bias corrections -- identical
                // values to bc1Hist[t - 1], no history gather.
                retire = true;
                for (uint32_t f = 0; f < span; f++) {
                    const size_t i = entry * span + f;
                    retire &= applyStep(params[i], m[i], v[i], 0.0f);
                }
            } else {
                // Unreachable by construction: an entry enters the
                // active set only via a touch (first branch) and every
                // sweep stamps all active entries to t, so an
                // untouched active entry is always settled through
                // t - 1. Deferred multi-step replays happen only on
                // the re-touch of a *retired* entry, in branch one.
                panic("active entry fell behind the sweep");
            }
            lastStep[entry] = t;
            if (retire) {
                keep &= ~(1ull << b);
                range_retired++;
            }
        } while (word);
        activeBits[w] = keep;
    }
    retired.fetch_add(range_retired, std::memory_order_relaxed);
                     });
    activeCount -= retired.load(std::memory_order_relaxed);
}

void
Adam::catchUp(std::vector<float> &params)
{
    if (!sparse || t == 0)
        return;
    panicIf(params.size() != m.size(), "Adam::catchUp() size mismatch");

    // stepSparse() settles the whole active set as it goes, and
    // retired entries owe only bit-exact no-ops on the parameter (the
    // second moment's remaining decay is replayed on the next touch),
    // so there is nothing left to write here. Kept as the explicit
    // settling point of the API: callers that read parameters directly
    // call this rather than relying on the sweep being eager.
}

} // namespace instant3d
