#include "nerf/adam.hh"

#include <cmath>

#include "common/logging.hh"

namespace instant3d {

Adam::Adam(size_t num_params, const AdamConfig &config)
    : cfg(config)
{
    m.assign(num_params, 0.0f);
    v.assign(num_params, 0.0f);
}

void
Adam::step(std::vector<float> &params, const std::vector<float> &grads)
{
    panicIf(params.size() != m.size() || grads.size() != m.size(),
            "Adam::step() size mismatch");
    t++;
    float bc1 = 1.0f - std::pow(cfg.beta1, static_cast<float>(t));
    float bc2 = 1.0f - std::pow(cfg.beta2, static_cast<float>(t));

    for (size_t i = 0; i < params.size(); i++) {
        float g = grads[i] + cfg.l2Reg * params[i];
        m[i] = cfg.beta1 * m[i] + (1.0f - cfg.beta1) * g;
        v[i] = cfg.beta2 * v[i] + (1.0f - cfg.beta2) * g * g;
        float mhat = m[i] / bc1;
        float vhat = v[i] / bc2;
        params[i] -= cfg.lr * mhat / (std::sqrt(vhat) + cfg.epsilon);
    }
}

} // namespace instant3d
