#include "nerf/trainer.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/logging.hh"
#include "common/stats.hh"
#include "nerf/serialize.hh"
#include "obs/telemetry.hh"

namespace instant3d {

namespace {

/** Monotonic seconds for the optional phase-time instrumentation. */
double
tick()
{
    return monotonicSeconds();
}

/** Per-phase latency histograms ("train.phase.*_ms"), resolved once;
 *  registry references are stable for the process lifetime. */
struct PhaseHistograms
{
    obs::LatencyHistogram *occRefresh, *march, *forward, *backward,
        *reduce, *optimizer, *zeroGrad;
};

const PhaseHistograms &
phaseHistograms()
{
    static const PhaseHistograms h = [] {
        auto &m = obs::MetricsRegistry::global();
        return PhaseHistograms{
            &m.histogram("train.phase.occ_refresh_ms"),
            &m.histogram("train.phase.march_ms"),
            &m.histogram("train.phase.forward_ms"),
            &m.histogram("train.phase.backward_ms"),
            &m.histogram("train.phase.reduce_ms"),
            &m.histogram("train.phase.optimizer_ms"),
            &m.histogram("train.phase.zero_grad_ms")};
    }();
    return h;
}

} // namespace

Trainer::Trainer(const Dataset &dataset, const FieldConfig &field_config,
                 const TrainConfig &train_config)
    : data(dataset), cfg(train_config), rng(train_config.seed)
{
    fatalIf(data.trainViews.empty(), "Trainer needs training views");
    fatalIf(cfg.raysPerBatch < 1, "raysPerBatch must be positive");
    fatalIf(cfg.densityUpdatePeriod < 1 || cfg.colorUpdatePeriod < 1,
            "update periods must be >= 1");
    fatalIf(cfg.gradShards < 1, "gradShards must be positive");

    fieldPtr = std::make_unique<NerfField>(field_config, cfg.seed);

    RendererConfig rcfg;
    rcfg.tNear = data.renderOpts.tNear;
    rcfg.tFar = data.renderOpts.tFar;
    rcfg.samplesPerRay = cfg.samplesPerRay;
    rcfg.background = data.renderOpts.background;
    rendererPtr = std::make_unique<VolumeRenderer>(rcfg);

    if (cfg.useOccupancyGrid) {
        occupancyPtr = std::make_unique<OccupancyGrid>(cfg.occupancy);
        rendererPtr->setOccupancyGrid(occupancyPtr.get());
    }

    // Sparse lazy Adam over touched grid entries: only meaningful on
    // the batched paths (the scalar reference scatters without touch
    // lists) and only exact without weight decay, which feeds params
    // into the gradient of untouched entries.
    sparseActive = cfg.sparseOptimizer && !cfg.scalarReference &&
                   cfg.adam.l2Reg == 0.0f;

    groups = fieldPtr->paramGroups();
    for (auto id : groups) {
        AdamConfig acfg = cfg.adam;
        optimizers.push_back(std::make_unique<Adam>(
            fieldPtr->groupParams(id).size(), acfg));
        if (sparseActive && id == ParamGroupId::DensityGrid) {
            optimizers.back()->enableSparse(static_cast<uint32_t>(
                fieldPtr->densityGrid().config().featuresPerEntry));
        } else if (sparseActive && id == ParamGroupId::ColorGrid) {
            optimizers.back()->enableSparse(static_cast<uint32_t>(
                fieldPtr->colorGrid().config().featuresPerEntry));
        }
    }
    if (sparseActive)
        fieldPtr->setDirtyTracking(true);

    // The scalar reference path never uses the pool; don't spawn idle
    // workers for it.
    pool = std::make_unique<ThreadPool>(cfg.scalarReference
                                            ? 1
                                            : cfg.numThreads);

    // One kernel backend per trainer, routed through every batched
    // kernel: the MLP panels, the grid interp/scatter, the renderer's
    // stream composite, the dense shard reduction, and the optimizer
    // sweeps. The scalarReference baseline pins scalar_ref outright
    // (bypassing config and env override): its per-sample kernels
    // never dispatch, and its Adam steps must stay on the frozen
    // seed-exact trajectory too.
    backend = cfg.scalarReference
                  ? makeScalarRefBackend()
                  : createKernelBackend(cfg.kernelBackend, pool.get());
    fieldPtr->setKernelBackend(backend.get());
    rendererPtr->setKernelBackend(backend.get());
    for (auto &opt : optimizers)
        opt->setKernelBackend(backend.get());

    workspaces.resize(pool->threadCount());
    shards.resize(std::min(cfg.gradShards, cfg.raysPerBatch));
    if (cfg.mergeHashGrads)
        mergers.resize(shards.size());
}

bool
Trainer::dueThisIteration(int period) const
{
    return iter % period == 0;
}

void
Trainer::sampleTrainingRay(Rng &rng, Ray &ray, Vec3 &gt) const
{
    // Step 1: randomly sample a pixel from a training view.
    const View &view = data.trainViews[rng.nextU32(
        static_cast<uint32_t>(data.trainViews.size()))];
    int col = static_cast<int>(rng.nextU32(
        static_cast<uint32_t>(view.camera.imageWidth())));
    int row = static_cast<int>(rng.nextU32(
        static_cast<uint32_t>(view.camera.imageHeight())));
    gt = view.rgb.at(col, row);

    // Step 2: map the pixel to a ray (jittered in the pixel).
    ray = view.camera.pixelRay(col, row, rng.nextFloat(),
                               rng.nextFloat());
}

TrainStats
Trainer::trainIteration()
{
    if (cfg.scalarReference)
        return trainIterationScalar();

    TrainStats stats;
    stats.densityUpdated = dueThisIteration(cfg.densityUpdatePeriod);
    stats.colorUpdated = dueThisIteration(cfg.colorUpdatePeriod);

    // Periodic occupancy refresh (after an initial optimistic phase,
    // so real surfaces exist before anything is skipped). Serial, on
    // the trainer's own stream; refresh() amortizes via the partial
    // probe subset when the grid config enables it.
    // Phase timing has two consumers: TrainStats::phases (opt-in via
    // collectPhaseTimes, unchanged) and the train.phase.*_ms telemetry
    // histograms (gated on obs::enabled()). Either one arms the
    // clock reads.
    const bool timed = cfg.collectPhaseTimes;
    const bool phase_telem = obs::enabled();
    const bool phased = timed || phase_telem;
    const PhaseHistograms &ph = phaseHistograms();
    if (occupancyPtr && iter > 0 &&
        iter % cfg.occupancyUpdatePeriod == 0) {
        obs::ScopedTimer timer(
            timed ? &stats.phases.occRefresh : nullptr,
            phase_telem ? ph.occRefresh : nullptr);
        occupancyPtr->refresh(*fieldPtr, rng);
    }

    uint64_t points_before = fieldPtr->queryCount();
    float inv_batch = 1.0f / static_cast<float>(cfg.raysPerBatch);

    // Fixed chunking: the chunk count (== shard count) depends only on
    // the config, never on the thread count, so the gradient and loss
    // reduction orders are thread-count-invariant.
    const int num_chunks = static_cast<int>(shards.size());
    const int chunk_len =
        (cfg.raysPerBatch + num_chunks - 1) / num_chunks;
    chunkLoss.assign(num_chunks, 0.0);
    for (auto &shard : shards)
        fieldPtr->prepareGradients(shard);

    // When a trace sink is attached, workers buffer their grid accesses
    // per chunk; the buffers are merged in ray order below.
    const bool traced = fieldPtr->traceAttached();
    TraceSink *density_sink =
        fieldPtr->hasDensityGrid()
            ? fieldPtr->densityGrid().attachedTraceSink()
            : nullptr;
    TraceSink *color_sink =
        fieldPtr->hasColorGrid()
            ? fieldPtr->colorGrid().attachedTraceSink()
            : nullptr;
    uint32_t density_id_base =
        density_sink ? fieldPtr->densityGrid().pointIdCounter() : 0;
    uint32_t color_id_base =
        color_sink ? fieldPtr->colorGrid().pointIdCounter() : 0;
    std::vector<BufferingTraceSink> density_buffers;
    std::vector<BufferingTraceSink> color_buffers;
    std::vector<FieldTraceOverride> overrides;
    if (traced) {
        density_buffers.resize(num_chunks);
        color_buffers.resize(num_chunks);
        overrides.resize(num_chunks);
        for (int c = 0; c < num_chunks; c++) {
            overrides[c].density =
                density_sink ? &density_buffers[c] : nullptr;
            overrides[c].color = color_sink ? &color_buffers[c] : nullptr;
        }
    }

    // The compacted stream reorders grid accesses within a chunk (all
    // forward reads, then all backward writes), so it defers to the
    // per-ray path whenever a trace sink expects program order.
    const bool compact = cfg.compactSamples && !traced;
    const bool merge = compact && cfg.mergeHashGrads;

    // Per-chunk phase times, summed after the parallel section (so the
    // instrumentation needs no atomics and stays deterministic).
    struct ChunkPhases
    {
        double march = 0.0;
        double forward = 0.0;
        double backward = 0.0;
    };
    std::vector<ChunkPhases> chunkPhases;
    if (phased)
        chunkPhases.assign(static_cast<size_t>(num_chunks), {});

    const uint64_t it = static_cast<uint64_t>(iter);
    pool->parallelFor(num_chunks, [&](int c, int rank) {
        Workspace &ws = workspaces[rank];
        FieldGradients &shard = shards[c];
        const FieldTraceOverride *trace = traced ? &overrides[c] : nullptr;
        const int r_begin = c * chunk_len;
        const int r_end =
            std::min(r_begin + chunk_len, cfg.raysPerBatch);

        // Trailing chunks can be empty when raysPerBatch is not a
        // multiple of the chunk count.
        const int nr = r_end > r_begin ? r_end - r_begin : 0;
        if (nr == 0) {
            chunkLoss[c] = 0.0;
            return;
        }

        if (compact) {
            // Compacted hot path: one arena generation, one sample
            // stream, and one field query per chunk.
            ws.reset();
            Rng *rngs = ws.alloc<Rng>(nr);
            Ray *rays = ws.alloc<Ray>(nr);
            Vec3 *gts = ws.alloc<Vec3>(nr);
            for (int i = 0; i < nr; i++) {
                // Per-ray stream: results do not depend on which
                // thread (or chunk schedule) processed this ray.
                rngs[i] = Rng::forIndex(
                    cfg.seed, it, static_cast<uint64_t>(r_begin + i));
                sampleTrainingRay(rngs[i], rays[i], gts[i]);
            }

            // Step 3a: march against the occupancy grid; only the
            // surviving samples enter the stream.
            double t0 = phased ? tick() : 0.0;
            SampleStream stream;
            rendererPtr->marchRays(rays, nr, rngs, stream, ws);

            // Steps 3b-4: one field query over the stream + per-ray
            // compositing.
            double t1 = phased ? tick() : 0.0;
            StreamRecord srec;
            RayResult *results = ws.alloc<RayResult>(nr);
            rendererPtr->renderStream(*fieldPtr, stream, results, &srec,
                                      ws, trace);
            if (phased) {
                chunkPhases[c].march += t1 - t0;
                chunkPhases[c].forward += tick() - t1;
            }

            // Step 5: squared-error loss and dL/dC per ray.
            double loss_acc = 0.0;
            Vec3 *d_colors = ws.alloc<Vec3>(nr);
            for (int i = 0; i < nr; i++) {
                Vec3 err = results[i].color - gts[i];
                loss_acc += (err.x * err.x + err.y * err.y +
                             err.z * err.z) / 3.0;
                d_colors[i] = err * (2.0f / 3.0f * inv_batch);
            }

            // Step 6: stream backward into this chunk's shard,
            // optionally merging duplicate grid writes first.
            double t2 = phased ? tick() : 0.0;
            rendererPtr->backwardStream(
                *fieldPtr, stream, srec, d_colors, stats.densityUpdated,
                stats.colorUpdated, &shard, ws, trace,
                merge ? &mergers[c] : nullptr);
            if (phased)
                chunkPhases[c].backward += tick() - t2;
            chunkLoss[c] = loss_acc;
            return;
        }

        double loss_acc = 0.0;
        for (int r = r_begin; r < r_end; r++) {
            ws.reset();
            // Per-ray stream: results do not depend on which thread
            // (or chunk schedule) processed this ray.
            Rng ray_rng = Rng::forIndex(cfg.seed, it,
                                        static_cast<uint64_t>(r));
            Ray ray;
            Vec3 gt;
            sampleTrainingRay(ray_rng, ray, gt);

            // Steps 3-4: batched field query + compositing. The
            // per-ray path marches inside renderRayBatch, so its cost
            // lands in the forward phase.
            double t0 = phased ? tick() : 0.0;
            RayBatchRecord rec;
            RayResult result = rendererPtr->renderRayBatch(
                *fieldPtr, ray, &ray_rng, &rec, ws, trace);
            double t1 = phased ? tick() : 0.0;

            // Step 5: squared-error loss.
            Vec3 err = result.color - gt;
            loss_acc +=
                (err.x * err.x + err.y * err.y + err.z * err.z) / 3.0;

            // Step 6: back-propagate dL/dC = 2 * err / (3 * batch)
            // into this chunk's gradient shard.
            Vec3 d_color = err * (2.0f / 3.0f * inv_batch);
            rendererPtr->backwardRayBatch(*fieldPtr, rec, d_color,
                                          stats.densityUpdated,
                                          stats.colorUpdated, &shard,
                                          ws, trace);
            if (phased) {
                chunkPhases[c].forward += t1 - t0;
                chunkPhases[c].backward += tick() - t1;
            }
        }
        chunkLoss[c] = loss_acc;
    });

    // Merge buffered traces in ray (chunk) order, restoring the
    // monotonic point ids a sequential run would have produced.
    if (traced) {
        if (density_sink) {
            uint32_t base = density_id_base;
            for (auto &buf : density_buffers)
                base += buf.flushInto(*density_sink, base);
        }
        if (color_sink) {
            uint32_t base = color_id_base;
            for (auto &buf : color_buffers)
                base += buf.flushInto(*color_sink, base);
        }
    }

    // Deterministic reduction: shards in fixed chunk order.
    double loss_acc = 0.0;
    {
        obs::ScopedTimer timer(timed ? &stats.phases.reduce : nullptr,
                               phase_telem ? ph.reduce : nullptr);
        for (int c = 0; c < num_chunks; c++) {
            fieldPtr->reduceGradients(shards[c]);
            loss_acc += chunkLoss[c];
            if (merge) {
                stats.gridGradWrites +=
                    mergers[c].density.pushedWrites() +
                    mergers[c].color.pushedWrites();
                stats.gridGradWritesMerged +=
                    mergers[c].density.uniqueEntries() +
                    mergers[c].color.uniqueEntries();
            }
        }
    }

    // Apply optimizer steps to the branches due this iteration: sparse
    // groups step only the dirty union the reduction just assembled.
    {
        obs::ScopedTimer timer(
            timed ? &stats.phases.optimizer : nullptr,
            phase_telem ? ph.optimizer : nullptr);
        for (size_t g = 0; g < groups.size(); g++) {
            bool is_color = groups[g] == ParamGroupId::ColorGrid ||
                            groups[g] == ParamGroupId::ColorMlp;
            bool due =
                is_color ? stats.colorUpdated : stats.densityUpdated;
            if (!due)
                continue;
            if (optimizers[g]->sparseEnabled()) {
                const auto &dirty = fieldPtr->dirtyEntries(groups[g]);
                auto &params = fieldPtr->groupParams(groups[g]);
                // stepSparse settles the whole active set as it goes,
                // so the next forward pass reads exactly the
                // dense-trajectory parameters without a separate
                // catch-up.
                optimizers[g]->stepSparse(
                    params, fieldPtr->groupGrads(groups[g]), dirty);
                stats.sparseEntriesStepped += dirty.size();
            } else {
                optimizers[g]->step(fieldPtr->groupParams(groups[g]),
                                    fieldPtr->groupGrads(groups[g]));
            }
        }
    }

    // O(touched) clear when every grid scatter went through a touch
    // list (any batched path); full scan otherwise.
    {
        obs::ScopedTimer timer(
            timed ? &stats.phases.zeroGrad : nullptr,
            phase_telem ? ph.zeroGrad : nullptr);
        if (sparseActive)
            fieldPtr->zeroGradDirty();
        else
            fieldPtr->zeroGrad();
    }

    if (phased) {
        ChunkPhases total;
        for (const ChunkPhases &p : chunkPhases) {
            total.march += p.march;
            total.forward += p.forward;
            total.backward += p.backward;
        }
        if (timed) {
            stats.phases.march += total.march;
            stats.phases.forward += total.forward;
            stats.phases.backward += total.backward;
        }
        if (phase_telem) {
            ph.march->record(total.march * 1e3);
            ph.forward->record(total.forward * 1e3);
            ph.backward->record(total.backward * 1e3);
        }
    }

    stats.loss = loss_acc / cfg.raysPerBatch;
    stats.pointsQueried = fieldPtr->queryCount() - points_before;
    pointsTotal += stats.pointsQueried;

    iter++;
    return stats;
}

/**
 * The original strictly-sequential training iteration: one shared RNG
 * stream, scalar per-sample field queries, per-call heap allocation.
 * Baseline for bench_train_throughput; not bit-comparable with the
 * batched path (different pixel-sampling streams).
 */
TrainStats
Trainer::trainIterationScalar()
{
    TrainStats stats;
    stats.densityUpdated = dueThisIteration(cfg.densityUpdatePeriod);
    stats.colorUpdated = dueThisIteration(cfg.colorUpdatePeriod);

    if (occupancyPtr && iter > 0 &&
        iter % cfg.occupancyUpdatePeriod == 0) {
        occupancyPtr->update(*fieldPtr, rng);
    }

    uint64_t points_before = fieldPtr->queryCount();

    double loss_acc = 0.0;
    float inv_batch = 1.0f / static_cast<float>(cfg.raysPerBatch);

    for (int r = 0; r < cfg.raysPerBatch; r++) {
        Ray ray;
        Vec3 gt;
        sampleTrainingRay(rng, ray, gt);

        RayRecord rec;
        RayResult result = rendererPtr->renderRay(*fieldPtr, ray, &rng,
                                                  &rec);

        Vec3 err = result.color - gt;
        loss_acc += (err.x * err.x + err.y * err.y + err.z * err.z) / 3.0;

        Vec3 d_color = err * (2.0f / 3.0f * inv_batch);
        rendererPtr->backwardRay(*fieldPtr, rec, d_color,
                                 stats.densityUpdated,
                                 stats.colorUpdated);
    }

    for (size_t g = 0; g < groups.size(); g++) {
        bool is_color = groups[g] == ParamGroupId::ColorGrid ||
                        groups[g] == ParamGroupId::ColorMlp;
        bool due = is_color ? stats.colorUpdated : stats.densityUpdated;
        if (due) {
            optimizers[g]->step(fieldPtr->groupParams(groups[g]),
                                fieldPtr->groupGrads(groups[g]));
        }
    }
    fieldPtr->zeroGrad();

    stats.loss = loss_acc / cfg.raysPerBatch;
    stats.pointsQueried = fieldPtr->queryCount() - points_before;
    pointsTotal += stats.pointsQueried;

    iter++;
    return stats;
}

size_t
Trainer::sparseActiveEntries() const
{
    size_t n = 0;
    for (const auto &opt : optimizers)
        if (opt->sparseEnabled())
            n += opt->activeEntries();
    return n;
}

void
Trainer::syncParams()
{
    for (size_t g = 0; g < groups.size(); g++) {
        if (optimizers[g]->sparseEnabled())
            optimizers[g]->catchUp(fieldPtr->groupParams(groups[g]));
    }
}

CheckpointError
Trainer::saveCheckpoint(const std::string &path)
{
    // The sparse lazy optimizer may defer updates to untouched grid
    // entries; a checkpoint must observe the settled (dense-Adam-
    // equivalent) parameters.
    syncParams();
    return instant3d::saveCheckpoint(*fieldPtr, occupancyPtr.get(),
                                     path);
}

/**
 * Shared pixel loop for renderImage/renderDepth: parallel over rows
 * (each row writes disjoint output), serialized when a trace sink is
 * attached so trace order stays program order.
 */
void
Trainer::forEachPixel(
    const Camera &camera,
    const std::function<void(int, int, const RayResult &)> &emit)
{
    // Rendering reads parameters directly, so any updates the sparse
    // optimizer has deferred must be settled first (harmless for
    // later training -- settling early is a prefix of the same op
    // sequence every subsequent touch would replay).
    syncParams();

    // With a trace sink attached, renderRayFast would emit reads for
    // the queried-but-uncomposited tail of an early-stopped block; the
    // scalar march keeps eval traces exactly reference-shaped.
    const bool exact =
        cfg.scalarReference || fieldPtr->traceAttached();

    auto render_row = [&](int row, int rank) {
        Workspace &ws = workspaces[rank];
        for (int col = 0; col < camera.imageWidth(); col++) {
            Ray ray = camera.pixelRay(col, row);
            if (exact) {
                emit(col, row, rendererPtr->renderRay(*fieldPtr, ray));
            } else {
                ws.reset();
                emit(col, row,
                     rendererPtr->renderRayFast(*fieldPtr, ray, ws));
            }
        }
    };

    if (exact) {
        // Serial in program order: trace records must arrive in the
        // same order a sequential run would produce.
        for (int row = 0; row < camera.imageHeight(); row++)
            render_row(row, 0);
    } else {
        pool->parallelFor(camera.imageHeight(), render_row);
    }
}

Image
Trainer::renderImage(const Camera &camera)
{
    Image img(camera.imageWidth(), camera.imageHeight());
    forEachPixel(camera, [&](int col, int row, const RayResult &res) {
        img.at(col, row) = res.color;
    });
    return img;
}

std::vector<float>
Trainer::renderDepth(const Camera &camera)
{
    std::vector<float> depth(
        static_cast<size_t>(camera.imageWidth()) * camera.imageHeight());
    forEachPixel(camera, [&](int col, int row, const RayResult &res) {
        depth[static_cast<size_t>(row) * camera.imageWidth() + col] =
            res.depth;
    });
    return depth;
}

double
Trainer::evalPsnr()
{
    fatalIf(data.testViews.empty(), "evalPsnr() needs test views");
    double acc = 0.0;
    for (const auto &view : data.testViews) {
        Image img = renderImage(view.camera);
        acc += psnr(img, view.rgb);
    }
    return acc / static_cast<double>(data.testViews.size());
}

double
Trainer::evalDepthPsnr()
{
    fatalIf(data.testViews.empty(), "evalDepthPsnr() needs test views");
    double acc = 0.0;
    for (const auto &view : data.testViews) {
        auto depth = renderDepth(view.camera);
        acc += psnrScalar(depth, view.depth, data.renderOpts.tFar);
    }
    return acc / static_cast<double>(data.testViews.size());
}

} // namespace instant3d
