#include "nerf/trainer.hh"

#include <cmath>

#include "common/logging.hh"

namespace instant3d {

Trainer::Trainer(const Dataset &dataset, const FieldConfig &field_config,
                 const TrainConfig &train_config)
    : data(dataset), cfg(train_config), rng(train_config.seed)
{
    fatalIf(data.trainViews.empty(), "Trainer needs training views");
    fatalIf(cfg.raysPerBatch < 1, "raysPerBatch must be positive");
    fatalIf(cfg.densityUpdatePeriod < 1 || cfg.colorUpdatePeriod < 1,
            "update periods must be >= 1");

    fieldPtr = std::make_unique<NerfField>(field_config, cfg.seed);

    RendererConfig rcfg;
    rcfg.tNear = data.renderOpts.tNear;
    rcfg.tFar = data.renderOpts.tFar;
    rcfg.samplesPerRay = cfg.samplesPerRay;
    rcfg.background = data.renderOpts.background;
    rendererPtr = std::make_unique<VolumeRenderer>(rcfg);

    if (cfg.useOccupancyGrid) {
        occupancyPtr = std::make_unique<OccupancyGrid>(cfg.occupancy);
        rendererPtr->setOccupancyGrid(occupancyPtr.get());
    }

    groups = fieldPtr->paramGroups();
    for (auto id : groups) {
        AdamConfig acfg = cfg.adam;
        optimizers.push_back(std::make_unique<Adam>(
            fieldPtr->groupParams(id).size(), acfg));
    }
}

bool
Trainer::dueThisIteration(int period) const
{
    return iter % period == 0;
}

TrainStats
Trainer::trainIteration()
{
    TrainStats stats;
    stats.densityUpdated = dueThisIteration(cfg.densityUpdatePeriod);
    stats.colorUpdated = dueThisIteration(cfg.colorUpdatePeriod);

    // Periodic occupancy refresh (after an initial optimistic phase,
    // so real surfaces exist before anything is skipped).
    if (occupancyPtr && iter > 0 &&
        iter % cfg.occupancyUpdatePeriod == 0) {
        occupancyPtr->update(*fieldPtr, rng);
    }

    uint64_t points_before = fieldPtr->queryCount();

    double loss_acc = 0.0;
    float inv_batch = 1.0f / static_cast<float>(cfg.raysPerBatch);

    for (int r = 0; r < cfg.raysPerBatch; r++) {
        // Step 1: randomly sample a pixel from a random training view.
        const View &view = data.trainViews[rng.nextU32(
            static_cast<uint32_t>(data.trainViews.size()))];
        int col = static_cast<int>(
            rng.nextU32(static_cast<uint32_t>(view.camera.imageWidth())));
        int row = static_cast<int>(
            rng.nextU32(static_cast<uint32_t>(view.camera.imageHeight())));
        Vec3 gt = view.rgb.at(col, row);

        // Step 2: map the pixel to a ray (jittered inside the pixel).
        Ray ray = view.camera.pixelRay(col, row, rng.nextFloat(),
                                       rng.nextFloat());

        // Steps 3-4: query the field along the ray and composite.
        RayRecord rec;
        RayResult result = rendererPtr->renderRay(*fieldPtr, ray, &rng,
                                                  &rec);

        // Step 5: squared-error loss.
        Vec3 err = result.color - gt;
        loss_acc += (err.x * err.x + err.y * err.y + err.z * err.z) / 3.0;

        // Step 6: back-propagate dL/dC = 2 * err / (3 * batch).
        Vec3 d_color = err * (2.0f / 3.0f * inv_batch);
        rendererPtr->backwardRay(*fieldPtr, rec, d_color,
                                 stats.densityUpdated,
                                 stats.colorUpdated);
    }

    // Apply optimizer steps to the branches due this iteration.
    for (size_t g = 0; g < groups.size(); g++) {
        bool is_color = groups[g] == ParamGroupId::ColorGrid ||
                        groups[g] == ParamGroupId::ColorMlp;
        bool due = is_color ? stats.colorUpdated : stats.densityUpdated;
        if (due) {
            optimizers[g]->step(fieldPtr->groupParams(groups[g]),
                                fieldPtr->groupGrads(groups[g]));
        }
    }
    fieldPtr->zeroGrad();

    stats.loss = loss_acc / cfg.raysPerBatch;
    stats.pointsQueried = fieldPtr->queryCount() - points_before;
    pointsTotal += stats.pointsQueried;

    iter++;
    return stats;
}

Image
Trainer::renderImage(const Camera &camera)
{
    Image img(camera.imageWidth(), camera.imageHeight());
    for (int row = 0; row < camera.imageHeight(); row++) {
        for (int col = 0; col < camera.imageWidth(); col++) {
            Ray ray = camera.pixelRay(col, row);
            img.at(col, row) =
                rendererPtr->renderRay(*fieldPtr, ray).color;
        }
    }
    return img;
}

std::vector<float>
Trainer::renderDepth(const Camera &camera)
{
    std::vector<float> depth(
        static_cast<size_t>(camera.imageWidth()) * camera.imageHeight());
    for (int row = 0; row < camera.imageHeight(); row++) {
        for (int col = 0; col < camera.imageWidth(); col++) {
            Ray ray = camera.pixelRay(col, row);
            depth[static_cast<size_t>(row) * camera.imageWidth() + col] =
                rendererPtr->renderRay(*fieldPtr, ray).depth;
        }
    }
    return depth;
}

double
Trainer::evalPsnr()
{
    fatalIf(data.testViews.empty(), "evalPsnr() needs test views");
    double acc = 0.0;
    for (const auto &view : data.testViews) {
        Image img = renderImage(view.camera);
        acc += psnr(img, view.rgb);
    }
    return acc / static_cast<double>(data.testViews.size());
}

double
Trainer::evalDepthPsnr()
{
    fatalIf(data.testViews.empty(), "evalDepthPsnr() needs test views");
    double acc = 0.0;
    for (const auto &view : data.testViews) {
        auto depth = renderDepth(view.camera);
        acc += psnrScalar(depth, view.depth, data.renderOpts.tFar);
    }
    return acc / static_cast<double>(data.testViews.size());
}

} // namespace instant3d
