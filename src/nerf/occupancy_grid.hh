/**
 * @file
 * Occupancy grid for empty-space skipping.
 *
 * Instant-NGP maintains a coarse binary occupancy grid over the scene
 * and skips ray samples in cells whose density has stayed negligible;
 * this is part of the substrate the paper builds on (its host SoC
 * performs ray marching against it in Steps 1-2). The grid is updated
 * periodically from the trained field with an exponential-decay
 * estimate, exactly like Instant-NGP's `density_grid` update.
 */

#ifndef INSTANT3D_NERF_OCCUPANCY_GRID_HH
#define INSTANT3D_NERF_OCCUPANCY_GRID_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/vec3.hh"
#include "common/workspace.hh"

namespace instant3d {

class NerfField;

/** Configuration of the occupancy grid. */
struct OccupancyGridConfig
{
    int resolution = 32;         //!< Cells per axis over [0,1]^3.
    float decay = 0.95f;         //!< Per-update density EMA decay.
    float occupancyThreshold = 0.5f; //!< Density above this = occupied.
    int samplesPerCellUpdate = 1;    //!< Random probes per cell/update.
};

/**
 * A coarse density cache with a binary occupancy view.
 */
class OccupancyGrid
{
  public:
    explicit OccupancyGrid(const OccupancyGridConfig &config);

    const OccupancyGridConfig &config() const { return cfg; }
    int resolution() const { return cfg.resolution; }

    /** Cell index containing p (clamped to the unit cube). */
    size_t cellIndex(const Vec3 &p) const;

    /** True if the cell containing p may contain matter. */
    bool occupied(const Vec3 &p) const;

    /** Fraction of cells currently marked occupied. */
    double occupiedFraction() const;

    /**
     * Refresh the grid from the field: each cell's density estimate
     * decays and is maxed with fresh point samples (Instant-NGP's
     * update rule). Probes are drawn cell-by-cell from `rng` (so the
     * refresh is bit-reproducible for a fixed seed) but queried one
     * x-row at a time through the batched field kernels.
     */
    void update(NerfField &field, Rng &rng);

    /**
     * Mark every cell occupied (the safe initial state: nothing is
     * skipped until evidence accumulates).
     */
    void markAllOccupied();

    /** Direct density estimate of a cell (testing/inspection). */
    float cellDensity(size_t index) const { return density.at(index); }

    /** Force a cell's density estimate (testing/fault injection). */
    void
    setCellDensity(size_t index, float value)
    {
        density.at(index) = value;
    }

    size_t numCells() const { return density.size(); }

  private:
    OccupancyGridConfig cfg;
    std::vector<float> density;
    Workspace ws; //!< Scratch for the batched update queries.
};

} // namespace instant3d

#endif // INSTANT3D_NERF_OCCUPANCY_GRID_HH
