/**
 * @file
 * Occupancy grid for empty-space skipping.
 *
 * Instant-NGP maintains a coarse binary occupancy grid over the scene
 * and skips ray samples in cells whose density has stayed negligible;
 * this is part of the substrate the paper builds on (its host SoC
 * performs ray marching against it in Steps 1-2). The grid is updated
 * periodically from the trained field with an exponential-decay
 * estimate, exactly like Instant-NGP's `density_grid` update.
 */

#ifndef INSTANT3D_NERF_OCCUPANCY_GRID_HH
#define INSTANT3D_NERF_OCCUPANCY_GRID_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/vec3.hh"
#include "common/workspace.hh"

namespace instant3d {

class NerfField;

/** Configuration of the occupancy grid. */
struct OccupancyGridConfig
{
    int resolution = 32;         //!< Cells per axis over [0,1]^3.
    float decay = 0.95f;         //!< Per-update density EMA decay.
    float occupancyThreshold = 0.5f; //!< Density above this = occupied.
    int samplesPerCellUpdate = 1;    //!< Random probes per cell/update.

    /**
     * Amortized refresh (Instant-NGP-style): refresh() re-probes only
     * the currently occupied cells plus a rotating stratified slice of
     * the unoccupied ones, instead of the full res^3 sweep, and decays
     * every other cell's estimate. Steady-state refresh cost becomes
     * proportional to occupied fraction + candidateFraction, not 1.0.
     */
    bool partialUpdate = true;

    /**
     * Share of unoccupied cells re-probed per partial refresh: cell i
     * is a candidate when i mod D rotates onto the round's phase,
     * D = round(1 / candidateFraction), so every cleared cell is
     * re-examined at least once every D refreshes (0 disables
     * candidate probes entirely).
     */
    float candidateFraction = 0.125f;
};

/**
 * A coarse density cache with a binary occupancy view.
 */
class OccupancyGrid
{
  public:
    explicit OccupancyGrid(const OccupancyGridConfig &config);

    const OccupancyGridConfig &config() const { return cfg; }
    int resolution() const { return cfg.resolution; }

    /** Cell index containing p (clamped to the unit cube). */
    size_t cellIndex(const Vec3 &p) const;

    /** True if the cell containing p may contain matter. */
    bool occupied(const Vec3 &p) const;

    /** Fraction of cells currently marked occupied. */
    double occupiedFraction() const;

    /**
     * Full-sweep refresh from the field: every cell's density estimate
     * decays and is maxed with fresh point samples (Instant-NGP's
     * update rule), queried one x-row at a time through the batched
     * field kernels. Each round draws one key from `rng` and each
     * cell's probe jitter comes from its own (round key, cell index)
     * stream -- bit-reproducible for a fixed seed, and bit-identical
     * per cell to a partial refresh of the same round probing it.
     */
    void update(NerfField &field, Rng &rng);

    /**
     * Partial refresh: decay every cell's estimate, then re-probe only
     * the currently occupied cells plus this round's rotating slice of
     * the unoccupied ones, maxing the probed cells with fresh samples.
     * Probes run through the batched field kernels in fixed-size
     * blocks; like update(), the round draws one key from `rng` and
     * each cell's jitter comes from its (round key, cell) stream, so a
     * fixed seed reproduces the grid bit-exactly and commonly-probed
     * cells match the full sweep's probes bit-for-bit. Occupied cells
     * never go stale (always re-probed) and cleared cells re-enter
     * within 1/candidateFraction rounds, so the occupied set converges
     * to the full sweep's.
     */
    void updatePartial(NerfField &field, Rng &rng);

    /**
     * The trainer's refresh entry point: updatePartial() when
     * cfg.partialUpdate is set, else the full-sweep update().
     */
    void refresh(NerfField &field, Rng &rng);

    /**
     * Mark every cell occupied (the safe initial state: nothing is
     * skipped until evidence accumulates).
     */
    void markAllOccupied();

    /** Direct density estimate of a cell (testing/inspection). */
    float cellDensity(size_t index) const { return density.at(index); }

    /** Force a cell's density estimate (testing/fault injection). */
    void
    setCellDensity(size_t index, float value)
    {
        density.at(index) = value;
    }

    size_t numCells() const { return density.size(); }

  private:
    OccupancyGridConfig cfg;
    std::vector<float> density;
    Workspace ws; //!< Scratch for the batched update queries.
    std::vector<uint32_t> probeList; //!< Partial-refresh cell indices.
    uint32_t updateRound = 0; //!< Candidate-rotation phase counter.
};

} // namespace instant3d

#endif // INSTANT3D_NERF_OCCUPANCY_GRID_HH
