/**
 * @file
 * The radiance-field model (paper Fig. 3 and Fig. 6).
 *
 * Two architectures share one interface:
 *
 *  - Coupled (Instant-NGP baseline): a single embedding grid feeds a
 *    density MLP that outputs sigma plus geometry features; the color
 *    MLP consumes those features plus an encoded view direction.
 *
 *  - Decoupled (the Instant-3D algorithm, Sec 3): separate density and
 *    color grids, each with its own MLP, enabling different grid sizes
 *    (S_D > S_C) and update frequencies (F_D > F_C) per branch.
 */

#ifndef INSTANT3D_NERF_FIELD_HH
#define INSTANT3D_NERF_FIELD_HH

#include <memory>
#include <string>
#include <vector>

#include "common/vec3.hh"
#include "nerf/hash_encoding.hh"
#include "nerf/mlp.hh"

namespace instant3d {

/** Which architecture the field instantiates. */
enum class FieldMode
{
    Coupled,    //!< Instant-NGP: one grid, chained MLPs.
    Decoupled,  //!< Instant-3D: separate density and color branches.
    Vanilla,    //!< Vanilla NeRF (Sec 2.1): no grid, positional
                //!< encoding into a (scaled-down) pure-MLP model.
};

/** Identifies one trainable parameter group for the optimizer. */
enum class ParamGroupId
{
    DensityGrid,
    ColorGrid,
    DensityMlp,
    ColorMlp,
};

/** Full model configuration. */
struct FieldConfig
{
    FieldMode mode = FieldMode::Decoupled;
    HashEncodingConfig densityGrid;
    HashEncodingConfig colorGrid;
    int hiddenDim = 32;      //!< MLP hidden width.
    int geoFeatureDim = 8;   //!< Coupled mode: features passed to color.
    int vanillaHiddenLayers = 3; //!< Vanilla mode: hidden layer count
                                 //!< (the paper's model uses 10x256;
                                 //!< tests use a scaled-down version).
    int posEncFrequencies = 4;   //!< Vanilla positional-encoding bands.

    /**
     * Build the paper's default Instant-3D configuration from a base
     * grid config: S_D : S_C = 1 : 0.25 (color table 4x smaller).
     */
    static FieldConfig instant3dDefault(const HashEncodingConfig &base);

    /** Instant-NGP baseline: one grid of the base size. */
    static FieldConfig ngpBaseline(const HashEncodingConfig &base);

    /**
     * Vanilla-NeRF baseline (Sec 2.1): no embedding grid; a positional
     * encoding feeds a deeper MLP. `hidden` and `layers` default to a
     * CPU-trainable scale (the paper's 10x256 model is why vanilla
     * NeRF takes > 1 day per scene; see VanillaNerfCost).
     */
    static FieldConfig vanillaBaseline(int hidden = 48, int layers = 3);

    /** Positional-encoding output dimension for this config. */
    int posEncodingDim() const { return 3 + 6 * posEncFrequencies; }
};

/** Density + color of one queried point (Step 3 output). */
struct FieldSample
{
    float sigma = 0.0f;
    Vec3 rgb;
};

/** Forward context of one field query, consumed by backward(). */
struct FieldRecord
{
    EncodeRecord densityEnc;
    EncodeRecord colorEnc;
    MlpRecord densityMlp;
    MlpRecord colorMlp;
    std::vector<float> densityFeat; //!< Grid output, density branch.
    std::vector<float> colorFeat;   //!< Grid output, color branch.
    std::vector<float> dirEnc;      //!< Encoded view direction.
    std::vector<float> densityOut;  //!< Raw density-MLP output.
    float rawSigma = 0.0f;          //!< Pre-softplus density logit.
};

/**
 * The trainable radiance field, either coupled or decoupled.
 */
class NerfField
{
  public:
    NerfField(const FieldConfig &config, uint64_t seed);

    const FieldConfig &config() const { return cfg; }
    FieldMode mode() const { return cfg.mode; }

    /**
     * Query density and view-dependent color at p from direction d
     * (Step 3: grid interpolation + MLP inference).
     */
    FieldSample query(const Vec3 &p, const Vec3 &d,
                      FieldRecord *rec = nullptr);

    /**
     * Back-propagate one sample's output gradient.
     *
     * @param update_density  Propagate into the density branch.
     * @param update_color    Propagate into the color branch. In
     *        decoupled mode, skipping it skips all color-branch work
     *        (the F_C < F_D runtime saving of Sec 3.3); in coupled mode
     *        the color MLP must still run to reach the shared grid, but
     *        its own gradients are discarded.
     */
    void backward(const FieldRecord &rec, float d_sigma,
                  const Vec3 &d_rgb, bool update_density = true,
                  bool update_color = true);

    /** Density grid (panics in Vanilla mode, which has none). */
    HashEncoding &densityGrid();
    /** Color grid (panics unless in Decoupled mode). */
    HashEncoding &colorGrid();
    Mlp &densityMlp() { return *densityMlpPtr; }
    Mlp &colorMlp() { return *colorMlpPtr; }

    /** True when the mode owns the given grid. */
    bool hasDensityGrid() const { return densityGridPtr != nullptr; }
    bool hasColorGrid() const { return colorGridPtr != nullptr; }

    /** Parameter/gradient vectors of one group (for the optimizer). */
    std::vector<float> &groupParams(ParamGroupId id);
    std::vector<float> &groupGrads(ParamGroupId id);

    /** All groups present in this mode. */
    std::vector<ParamGroupId> paramGroups() const;

    void zeroGrad();

    /** Dimension of the view-direction encoding. */
    static constexpr int dirEncodingDim = 9;

    /** Second-order direction encoding (components + quadratic terms). */
    static void encodeDirection(const Vec3 &d, float *out);

    /**
     * NeRF positional encoding: [p, sin(2^k pi p), cos(2^k pi p)] for
     * k in [0, frequencies); out must hold 3 + 6 * frequencies floats.
     */
    static void encodePosition(const Vec3 &p, int frequencies,
                               float *out);

    /** Total field queries served (workload accounting, all modes). */
    uint64_t queryCount() const { return queries; }

  private:
    FieldConfig cfg;
    std::unique_ptr<HashEncoding> densityGridPtr;
    std::unique_ptr<HashEncoding> colorGridPtr;
    std::unique_ptr<Mlp> densityMlpPtr;
    std::unique_ptr<Mlp> colorMlpPtr;
    uint64_t queries = 0;
};

/** Softplus density activation and its derivative. */
float softplus(float x);
float softplusDerivative(float x);

} // namespace instant3d

#endif // INSTANT3D_NERF_FIELD_HH
