/**
 * @file
 * The radiance-field model (paper Fig. 3 and Fig. 6).
 *
 * Two architectures share one interface:
 *
 *  - Coupled (Instant-NGP baseline): a single embedding grid feeds a
 *    density MLP that outputs sigma plus geometry features; the color
 *    MLP consumes those features plus an encoded view direction.
 *
 *  - Decoupled (the Instant-3D algorithm, Sec 3): separate density and
 *    color grids, each with its own MLP, enabling different grid sizes
 *    (S_D > S_C) and update frequencies (F_D > F_C) per branch.
 */

#ifndef INSTANT3D_NERF_FIELD_HH
#define INSTANT3D_NERF_FIELD_HH

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/vec3.hh"
#include "common/workspace.hh"
#include "nerf/hash_encoding.hh"
#include "nerf/mlp.hh"

namespace instant3d {

class KernelBackend;

/** Which architecture the field instantiates. */
enum class FieldMode
{
    Coupled,    //!< Instant-NGP: one grid, chained MLPs.
    Decoupled,  //!< Instant-3D: separate density and color branches.
    Vanilla,    //!< Vanilla NeRF (Sec 2.1): no grid, positional
                //!< encoding into a (scaled-down) pure-MLP model.
};

/** Identifies one trainable parameter group for the optimizer. */
enum class ParamGroupId
{
    DensityGrid,
    ColorGrid,
    DensityMlp,
    ColorMlp,
};

/** Full model configuration. */
struct FieldConfig
{
    FieldMode mode = FieldMode::Decoupled;
    HashEncodingConfig densityGrid;
    HashEncodingConfig colorGrid;
    int hiddenDim = 32;      //!< MLP hidden width.
    int geoFeatureDim = 8;   //!< Coupled mode: features passed to color.
    int vanillaHiddenLayers = 3; //!< Vanilla mode: hidden layer count
                                 //!< (the paper's model uses 10x256;
                                 //!< tests use a scaled-down version).
    int posEncFrequencies = 4;   //!< Vanilla positional-encoding bands.

    /**
     * Build the paper's default Instant-3D configuration from a base
     * grid config: S_D : S_C = 1 : 0.25 (color table 4x smaller).
     */
    static FieldConfig instant3dDefault(const HashEncodingConfig &base);

    /** Instant-NGP baseline: one grid of the base size. */
    static FieldConfig ngpBaseline(const HashEncodingConfig &base);

    /**
     * Vanilla-NeRF baseline (Sec 2.1): no embedding grid; a positional
     * encoding feeds a deeper MLP. `hidden` and `layers` default to a
     * CPU-trainable scale (the paper's 10x256 model is why vanilla
     * NeRF takes > 1 day per scene; see VanillaNerfCost).
     */
    static FieldConfig vanillaBaseline(int hidden = 48, int layers = 3);

    /** Positional-encoding output dimension for this config. */
    int posEncodingDim() const { return 3 + 6 * posEncFrequencies; }
};

/** Density + color of one queried point (Step 3 output). */
struct FieldSample
{
    float sigma = 0.0f;
    Vec3 rgb;
};

/** Forward context of one field query, consumed by backward(). */
struct FieldRecord
{
    EncodeRecord densityEnc;
    EncodeRecord colorEnc;
    MlpRecord densityMlp;
    MlpRecord colorMlp;
    std::vector<float> densityFeat; //!< Grid output, density branch.
    std::vector<float> colorFeat;   //!< Grid output, color branch.
    std::vector<float> dirEnc;      //!< Encoded view direction.
    std::vector<float> densityOut;  //!< Raw density-MLP output.
    float rawSigma = 0.0f;          //!< Pre-softplus density logit.
};

/**
 * Forward context of a batch of n queries sharing one view direction
 * (the samples of one ray). All buffers are arena-backed and stay
 * valid until the owning Workspace resets.
 */
struct FieldBatchRecord
{
    EncodeBatchRecord densityEnc;
    EncodeBatchRecord colorEnc;
    MlpBatchRecord densityMlp;
    MlpBatchRecord colorMlp;
    float *rawSigma = nullptr; //!< [n] pre-softplus density logits.
    int n = 0;
};

/**
 * Per-call trace redirection for the batched paths: when a worker
 * thread processes a chunk of rays, grid accesses go to these
 * per-thread sinks and are merged in ray order afterwards. nullptr
 * members fall back to the sink attached to the respective grid.
 */
struct FieldTraceOverride
{
    TraceSink *density = nullptr;
    TraceSink *color = nullptr;
};

/**
 * One ray's slice of a chunk-level compacted sample stream: samples
 * [offset, offset + count) of the flat SoA buffers belong to this ray.
 */
struct RaySpan
{
    int offset = 0;
    int count = 0;
};

/**
 * Per-grid gradient-write mergers for one chunk's backward pass
 * (TrainConfig::mergeHashGrads). Owned by the trainer (one set per
 * shard) so their buffers are reused across iterations; the field
 * resets them at the start of a stream backward and flushes them into
 * the target shard at the end.
 */
struct FieldGradMergers
{
    HashGradMerger density;
    HashGradMerger color;
};

/**
 * One parameter group's gradient shard: a full-size accumulator plus a
 * sparse touch list so reduction only visits written entries. Dense
 * shards (MLPs, where every sample touches every weight) skip the
 * touch list and are reduced by a full scan.
 *
 * Invariant for sparse shards: `v` is all-zero outside the entries
 * listed in `touched`; reduceInto() restores the all-zero state.
 */
struct GradShard
{
    std::vector<float> v;
    std::vector<uint32_t> touched; //!< Base offsets; entries span `span`.
    uint32_t span = 1;             //!< Floats per touched entry.
    bool dense = false;
};

/**
 * A full set of per-group gradient shards, one per worker chunk. The
 * trainer accumulates each chunk's back-propagation here and reduces
 * the shards into the field's real gradient buffers in a fixed chunk
 * order, making training bit-reproducible for any thread count.
 */
struct FieldGradients
{
    GradShard densityGrid;
    GradShard colorGrid;
    GradShard densityMlp;
    GradShard colorMlp;
};

/**
 * The trainable radiance field, either coupled or decoupled.
 */
class NerfField
{
  public:
    NerfField(const FieldConfig &config, uint64_t seed);

    const FieldConfig &config() const { return cfg; }
    FieldMode mode() const { return cfg.mode; }

    /**
     * Query density and view-dependent color at p from direction d
     * (Step 3: grid interpolation + MLP inference).
     */
    FieldSample query(const Vec3 &p, const Vec3 &d,
                      FieldRecord *rec = nullptr);

    /**
     * Back-propagate one sample's output gradient.
     *
     * @param update_density  Propagate into the density branch.
     * @param update_color    Propagate into the color branch. In
     *        decoupled mode, skipping it skips all color-branch work
     *        (the F_C < F_D runtime saving of Sec 3.3); in coupled mode
     *        the color MLP must still run to reach the shared grid, but
     *        its own gradients are discarded.
     */
    void backward(const FieldRecord &rec, float d_sigma,
                  const Vec3 &d_rgb, bool update_density = true,
                  bool update_color = true);

    /**
     * Batched query of n points sharing one view direction (Step 3 for
     * all samples of a ray at once). Kernel-major execution -- each
     * grid encode and MLP runs over the whole batch -- with all scratch
     * from ws. Per-sample results are bit-identical to query().
     *
     * Thread-safe for concurrent calls when `trace` redirects to
     * per-thread sinks (or no sink is attached).
     */
    void queryBatch(const Vec3 *pts, int n, const Vec3 &d,
                    FieldSample *out, FieldBatchRecord *rec,
                    Workspace &ws,
                    const FieldTraceOverride *trace = nullptr);

    /**
     * Batched query of a compacted multi-ray sample stream: n points
     * partitioned into `numRays` per-ray spans, ray r's samples sharing
     * direction dirs[r]. Every kernel (grid encode, MLP forward) runs
     * once over the whole stream, so per-ray fixed costs are paid once
     * per chunk instead of once per ray. Per-sample arithmetic is
     * bit-identical to queryBatch() on each span separately (and hence
     * to query()). queryBatch() is the single-span special case.
     */
    void queryStream(const Vec3 *pts, int n, const RaySpan *spans,
                     const Vec3 *dirs, int numRays, FieldSample *out,
                     FieldBatchRecord *rec, Workspace &ws,
                     const FieldTraceOverride *trace = nullptr);

    /**
     * Back-propagate a batch of per-sample output gradients in
     * *descending* sample order (the renderer's compositing order, and
     * the order the sequential path applies them in).
     *
     * @param skip    If non-null, samples with skip[s] != 0 are not
     *                propagated (the renderer's gradient-skip rule).
     * @param target  Gradient shard set to accumulate into; nullptr
     *                accumulates into the field's own grad buffers
     *                (single-threaded use only).
     */
    void backwardBatch(const FieldBatchRecord &rec, const float *d_sigma,
                       const Vec3 *d_rgb, const uint8_t *skip,
                       bool update_density, bool update_color,
                       FieldGradients *target, Workspace &ws,
                       const FieldTraceOverride *trace = nullptr);

    /**
     * Backward over a compacted multi-ray stream recorded by
     * queryStream(): rays in *ascending* order, samples in *descending*
     * order within each span -- exactly the accumulation order the
     * per-ray batched path produces, so gradients are bit-identical to
     * calling backwardBatch() per ray.
     *
     * @param mergers  If non-null, hash-grid gradient writes are
     *                 accumulated per (level, slot) and applied to
     *                 `target` once per unique entry (BUM-style;
     *                 bit-identical results, fewer table writes).
     *                 Requires a non-null `target`.
     */
    void backwardStream(const FieldBatchRecord &rec, const RaySpan *spans,
                        int numRays, const float *d_sigma,
                        const Vec3 *d_rgb, const uint8_t *skip,
                        bool update_density, bool update_color,
                        FieldGradients *target, Workspace &ws,
                        const FieldTraceOverride *trace = nullptr,
                        FieldGradMergers *mergers = nullptr);

    /**
     * Size `g` to this field's parameter groups and clear it for a new
     * iteration. Sparse (grid) shards rely on the reduce-restores-zero
     * invariant, so per-iteration clearing is O(touched), not O(table).
     */
    void prepareGradients(FieldGradients &g) const;

    /**
     * Add a shard set into the field's real gradient buffers and
     * restore the shard's cleared state. Called once per chunk in fixed
     * chunk order by the trainer. With dirty tracking enabled, each
     * shard's grid touch lists are unioned (stamp-deduplicated) into
     * the per-group dirty lists consumed by the sparse optimizer.
     */
    void reduceGradients(FieldGradients &g);

    /**
     * Track the union of touched grid entries across reduceGradients()
     * calls, so the optimizer and zeroGradDirty() can visit only the
     * entries this iteration actually wrote. Off by default (no
     * overhead for non-sparse training).
     */
    void setDirtyTracking(bool enable);
    bool dirtyTracking() const { return trackDirty; }

    /**
     * Unique entry base offsets of a grid group written since the last
     * zeroGrad/zeroGradDirty (first-touch order over the fixed chunk
     * reduction order, hence deterministic). Only grid groups have
     * dirty lists; panics for MLP groups.
     */
    const std::vector<uint32_t> &dirtyEntries(ParamGroupId id) const;

    /**
     * O(touched) gradient clear: zero only the dirty grid entries (the
     * grids are all-zero elsewhere by the reduce invariant), densely
     * zero the small MLP gradient buffers, and reset the dirty lists.
     * Requires dirty tracking to have been enabled for the whole
     * accumulation window; zeroGrad() remains the full-scan fallback.
     */
    void zeroGradDirty();

    /**
     * Route this field's batched kernels through the given backend:
     * propagates to both grids and both MLPs and is used for the
     * field's own dense shard reduction. nullptr restores the scalar
     * reference everywhere.
     */
    void setKernelBackend(const KernelBackend *backend);

    /** True when any of this field's grids has a trace sink attached. */
    bool traceAttached() const;

    /** Density grid (panics in Vanilla mode, which has none). */
    HashEncoding &densityGrid();
    /** Color grid (panics unless in Decoupled mode). */
    HashEncoding &colorGrid();
    Mlp &densityMlp() { return *densityMlpPtr; }
    Mlp &colorMlp() { return *colorMlpPtr; }

    /** True when the mode owns the given grid. */
    bool hasDensityGrid() const { return densityGridPtr != nullptr; }
    bool hasColorGrid() const { return colorGridPtr != nullptr; }

    /** Parameter/gradient vectors of one group (for the optimizer). */
    std::vector<float> &groupParams(ParamGroupId id);
    std::vector<float> &groupGrads(ParamGroupId id);

    /** All groups present in this mode. */
    std::vector<ParamGroupId> paramGroups() const;

    void zeroGrad();

    /** Dimension of the view-direction encoding. */
    static constexpr int dirEncodingDim = 9;

    /** Second-order direction encoding (components + quadratic terms). */
    static void encodeDirection(const Vec3 &d, float *out);

    /**
     * NeRF positional encoding: [p, sin(2^k pi p), cos(2^k pi p)] for
     * k in [0, frequencies); out must hold 3 + 6 * frequencies floats.
     */
    static void encodePosition(const Vec3 &p, int frequencies,
                               float *out);

    /** Total field queries served (workload accounting, all modes). */
    uint64_t queryCount() const
    { return queries.load(std::memory_order_relaxed); }

  private:
    /**
     * Shared batched-backward kernel: propagate the samples listed in
     * `order` (skipping flagged ones) in that exact sequence. Both
     * backwardBatch (descending) and backwardStream (ray-ascending,
     * sample-descending) reduce to this.
     */
    void backwardSamples(const FieldBatchRecord &rec, const int *order,
                         int count, const float *d_sigma,
                         const Vec3 *d_rgb, const uint8_t *skip,
                         bool update_density, bool update_color,
                         FieldGradients *target, Workspace &ws,
                         const FieldTraceOverride *trace,
                         FieldGradMergers *mergers);

    /**
     * One grid group's dirty-entry set: the unique touched entries plus
     * a membership bitmap (cache-resident: one bit per table entry) for
     * O(1) deduplication while shard touch lists (which repeat offsets
     * per scatter) are unioned.
     */
    struct DirtySet
    {
        std::vector<uint32_t> entries; //!< Unique base offsets.
        std::vector<uint64_t> bits;    //!< Per-entry membership bit.
    };

    void noteDirty(DirtySet &set, const std::vector<uint32_t> &touched,
                   uint32_t span) const;
    static void resetDirty(DirtySet &set);

    FieldConfig cfg;
    std::unique_ptr<HashEncoding> densityGridPtr;
    std::unique_ptr<HashEncoding> colorGridPtr;
    std::unique_ptr<Mlp> densityMlpPtr;
    std::unique_ptr<Mlp> colorMlpPtr;
    std::atomic<uint64_t> queries{0};
    bool trackDirty = false;
    DirtySet dirtyDensity;
    DirtySet dirtyColor;
    const KernelBackend *kernelBackend = nullptr; //!< null = scalar_ref.
};

/** Softplus density activation and its derivative. */
float softplus(float x);
float softplusDerivative(float x);

} // namespace instant3d

#endif // INSTANT3D_NERF_FIELD_HH
