/**
 * @file
 * Small fully-connected network (Instant-NGP Step 3-2).
 *
 * Instant-NGP replaces the vanilla-NeRF 10x256 MLP with tiny MLPs
 * (3 layers, 64 hidden units); this class implements exactly that shape
 * range with ReLU hidden activations, an optional output activation,
 * and explicit forward/backward passes suitable for per-sample training.
 */

#ifndef INSTANT3D_NERF_MLP_HH
#define INSTANT3D_NERF_MLP_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace instant3d {

/** Output nonlinearity applied after the last layer. */
enum class OutputActivation
{
    None,       //!< Raw linear outputs.
    Sigmoid,    //!< Per-channel sigmoid (RGB head).
};

/**
 * Per-sample forward context retained for backward(): layer inputs and
 * pre-activation values.
 */
struct MlpRecord
{
    std::vector<float> activations; //!< Concatenated layer inputs.
    std::vector<float> preacts;     //!< Concatenated pre-activations.
};

/**
 * A dense multilayer perceptron with ReLU hidden units.
 */
class Mlp
{
  public:
    /**
     * @param layer_dims  [in, hidden..., out]; at least {in, out}.
     * @param out_act     Output activation.
     * @param seed        Weight-init seed (He-uniform fan-in scaling).
     */
    Mlp(std::vector<int> layer_dims, OutputActivation out_act,
        uint64_t seed);

    int inputDim() const { return dims.front(); }
    int outputDim() const { return dims.back(); }
    int numLayers() const { return static_cast<int>(dims.size()) - 1; }

    /**
     * Forward pass for one sample.
     * @param rec  If non-null, filled for a later backward().
     */
    void forward(const float *in, float *out, MlpRecord *rec = nullptr)
        const;

    /**
     * Backward pass for one sample previously run through forward()
     * with a record. Accumulates into the weight/bias gradients.
     *
     * @param d_out  dL/d(output), after the output activation.
     * @param d_in   If non-null, receives dL/d(input).
     */
    void backward(const MlpRecord &rec, const float *d_out, float *d_in);

    std::vector<float> &params() { return weights; }
    const std::vector<float> &params() const { return weights; }
    std::vector<float> &grads() { return gradWeights; }

    void zeroGrad();

    /** Multiply-accumulate count of one forward pass. */
    uint64_t macsPerForward() const;

  private:
    size_t weightOffset(int layer) const { return wOffsets[layer]; }
    size_t biasOffset(int layer) const { return bOffsets[layer]; }

    std::vector<int> dims;
    OutputActivation outAct;
    std::vector<float> weights;      //!< All W then b, layer-major.
    std::vector<float> gradWeights;
    std::vector<size_t> wOffsets, bOffsets;
    int maxDim = 0;
};

} // namespace instant3d

#endif // INSTANT3D_NERF_MLP_HH
