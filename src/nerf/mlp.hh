/**
 * @file
 * Small fully-connected network (Instant-NGP Step 3-2).
 *
 * Instant-NGP replaces the vanilla-NeRF 10x256 MLP with tiny MLPs
 * (3 layers, 64 hidden units); this class implements exactly that shape
 * range with ReLU hidden activations, an optional output activation,
 * and explicit forward/backward passes suitable for per-sample training.
 */

#ifndef INSTANT3D_NERF_MLP_HH
#define INSTANT3D_NERF_MLP_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/workspace.hh"

namespace instant3d {

class KernelBackend;

/** Output nonlinearity applied after the last layer. */
enum class OutputActivation
{
    None,       //!< Raw linear outputs.
    Sigmoid,    //!< Per-channel sigmoid (RGB head).
};

/**
 * Per-sample forward context retained for backward(): layer inputs and
 * pre-activation values.
 */
struct MlpRecord
{
    std::vector<float> activations; //!< Concatenated layer inputs.
    std::vector<float> preacts;     //!< Concatenated pre-activations.
};

/**
 * Forward context of a batch of N samples, with all buffers allocated
 * from a Workspace arena (valid until the workspace is reset). Layout
 * is layer-major: the block for layer l holds N contiguous per-sample
 * slices of that layer's dimension (SoA across layers, AoS within a
 * layer), so per-sample backward reads are sequential.
 */
struct MlpBatchRecord
{
    float *activations = nullptr; //!< Per layer: [n x dims[l]].
    float *preacts = nullptr;     //!< Per layer: [n x dims[l+1]].
    int n = 0;
};

/**
 * A dense multilayer perceptron with ReLU hidden units.
 */
class Mlp
{
  public:
    /**
     * @param layer_dims  [in, hidden..., out]; at least {in, out}.
     * @param out_act     Output activation.
     * @param seed        Weight-init seed (He-uniform fan-in scaling).
     */
    Mlp(std::vector<int> layer_dims, OutputActivation out_act,
        uint64_t seed);

    int inputDim() const { return dims.front(); }
    int outputDim() const { return dims.back(); }
    int numLayers() const { return static_cast<int>(dims.size()) - 1; }

    /**
     * Forward pass for one sample.
     * @param rec  If non-null, filled for a later backward().
     */
    void forward(const float *in, float *out, MlpRecord *rec = nullptr)
        const;

    /**
     * Backward pass for one sample previously run through forward()
     * with a record. Accumulates into the weight/bias gradients.
     *
     * @param d_out  dL/d(output), after the output activation.
     * @param d_in   If non-null, receives dL/d(input).
     */
    void backward(const MlpRecord &rec, const float *d_out, float *d_in);

    /**
     * Batched forward over n inputs (sample-major, n x inputDim()) into
     * out (n x outputDim()). All scratch comes from ws; no heap
     * allocation. Per-sample arithmetic is identical to forward(), so
     * outputs match the scalar path bit-exactly.
     *
     * @param rec  If non-null, filled with arena-backed buffers for a
     *             later backwardBatch()/backwardSample(); stays valid
     *             until ws.reset().
     */
    void forwardBatch(const float *in, int n, float *out,
                      MlpBatchRecord *rec, Workspace &ws) const;

    /**
     * Backward for one sample s of a recorded batch, accumulating into
     * an arbitrary gradient buffer (same shape as params()). Const:
     * per-thread gradient shards make this safe to call concurrently
     * with distinct grad buffers. Bit-identical to backward() for the
     * same sample.
     *
     * @param d_out  dL/d(output) of sample s, after output activation.
     * @param d_in   If non-null, receives dL/d(input) of sample s.
     * @param grad   Gradient accumulator, length params().size().
     */
    void backwardSample(const MlpBatchRecord &rec, int s,
                        const float *d_out, float *d_in, float *grad,
                        Workspace &ws) const;

    /**
     * Backward over the whole batch in ascending sample order: the
     * gradient accumulation order matches calling backward() per sample
     * sequentially, so results are bit-identical to the scalar path.
     * d_out is n x outputDim(); d_in (optional) n x inputDim().
     */
    void backwardBatch(const MlpBatchRecord &rec, const float *d_out,
                       float *d_in, float *grad, Workspace &ws) const;

    std::vector<float> &params() { return weights; }
    const std::vector<float> &params() const { return weights; }
    std::vector<float> &grads() { return gradWeights; }

    void zeroGrad();

    /** Multiply-accumulate count of one forward pass. */
    uint64_t macsPerForward() const;

    /**
     * Route the batched panels (forwardBatch / backwardSample) through
     * the given kernel backend; nullptr restores the scalar reference.
     * The scalar forward()/backward() pair never dispatches -- it *is*
     * the reference the backends are tested against.
     */
    void setKernelBackend(const KernelBackend *backend)
    { kernelBackend = backend; }

  private:
    size_t weightOffset(int layer) const { return wOffsets[layer]; }
    size_t biasOffset(int layer) const { return bOffsets[layer]; }

    std::vector<int> dims;
    OutputActivation outAct;
    std::vector<float> weights;      //!< All W then b, layer-major.
    std::vector<float> gradWeights;
    std::vector<size_t> wOffsets, bOffsets;
    /** Per-sample offsets of each layer's slice in a batch record. */
    std::vector<size_t> actOffsets, preOffsets;
    size_t actPerSample = 0, prePerSample = 0;
    int maxDim = 0;
    const KernelBackend *kernelBackend = nullptr; //!< null = scalar_ref.
};

} // namespace instant3d

#endif // INSTANT3D_NERF_MLP_HH
