/**
 * @file
 * Multi-scene model registry for the render-serving subsystem.
 *
 * A SceneRegistry owns N independent trained models ("served scenes"),
 * each a NerfField restored from a checkpoint (or snapshotted from a
 * live Trainer), its occupancy grid, and one pre-built VolumeRenderer
 * per quality tier. Scenes are published under string ids with
 * monotonically increasing generations; readers acquire() a
 * ref-counted handle, so re-registering an id never invalidates
 * in-flight renders -- the old generation stays alive until its last
 * reader drops it, and the new generation's distinct number makes
 * every stale tile-cache key unreachable.
 */

#ifndef INSTANT3D_SERVE_SCENE_REGISTRY_HH
#define INSTANT3D_SERVE_SCENE_REGISTRY_HH

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "nerf/occupancy_grid.hh"
#include "nerf/renderer.hh"
#include "nerf/trainer.hh"
#include "serve/serve_types.hh"

namespace instant3d {

/** Everything needed to reconstruct a servable scene from disk. */
struct SceneSpec
{
    FieldConfig field;
    RendererConfig renderer;
    bool useOccupancy = false;  //!< Restore + attach an occupancy grid.
    OccupancyGridConfig occupancy;
    uint64_t seed = 42;         //!< Field-construction seed (params are
                                //!< overwritten by the checkpoint).

    /**
     * Extra load attempts after a *transient* checkpoint failure
     * (CheckpointError::Io only -- structural errors like a shape or
     * CRC mismatch never retry). Attempt k backs off
     * loadRetryBackoffMs << k milliseconds first.
     */
    int loadRetries = 2;
    int loadRetryBackoffMs = 2;
};

/**
 * One published, immutable-after-publication scene: the field, its
 * occupancy grid, and a renderer per quality tier (tier t renders with
 * samplesPerRay >> t). Concurrent queryStream reads are safe; nothing
 * mutates the model after registration.
 */
class ServedScene
{
  public:
    ServedScene(std::string scene_id, uint64_t scene_generation,
                const SceneSpec &scene_spec);

    const std::string &id() const { return sceneId; }
    uint64_t generation() const { return gen; }
    const SceneSpec &spec() const { return sceneSpec; }

    NerfField &field() { return *fieldPtr; }
    const OccupancyGrid *occupancy() const { return occPtr.get(); }

    /**
     * Mutable grid access for the registration-time load/snapshot;
     * never used after the scene is published.
     */
    OccupancyGrid *occupancyForLoad() { return occPtr.get(); }

    /** The renderer for a quality tier (occupancy grid attached). */
    const VolumeRenderer &renderer(QualityTier tier) const
    { return renderers[static_cast<size_t>(tier)]; }

    /** Wire size of the model's trainable parameters. */
    size_t paramBytes();

  private:
    std::string sceneId;
    uint64_t gen;
    SceneSpec sceneSpec;
    std::unique_ptr<NerfField> fieldPtr;
    std::unique_ptr<OccupancyGrid> occPtr;
    std::vector<VolumeRenderer> renderers; //!< One per quality tier.
};

using ServedScenePtr = std::shared_ptr<ServedScene>;

/**
 * Thread-safe id -> scene map with generation bookkeeping.
 */
class SceneRegistry
{
  public:
    /**
     * Load a checkpoint written by Trainer::saveCheckpoint (or
     * saveField/saveCheckpoint) and publish it under `id`, replacing
     * any previous generation. When spec.useOccupancy is set the file
     * must carry a matching-resolution occupancy section. Returns the
     * new generation, or 0 on load failure (the previous generation,
     * if any, stays published).
     */
    uint64_t registerFromCheckpoint(const std::string &id,
                                    const SceneSpec &spec,
                                    const std::string &path);

    /**
     * Snapshot a live trainer's model -- settled parameters plus the
     * current occupancy-grid state -- and publish it under `id`. This
     * is the train-and-register path used by tests and demos; the
     * served scene renders bit-identically to trainer.renderImage().
     * Returns the new generation.
     *
     * Both register paths return 0 when a concurrent registration of
     * the same id published a newer generation first (generations only
     * move forward; the newer model stays).
     */
    uint64_t registerFromTrainer(const std::string &id,
                                 Trainer &trainer);

    /**
     * Publish an already-built scene under `id`, *sharing* the model:
     * the registry holds another reference to the same ServedScene,
     * not a copy. This is the fleet-replication seam -- a ShardRouter
     * places one canonical scene on R shard registries, so every
     * replica serves bit-identical pixels by construction and
     * re-placement during drain or crash recovery is a pointer insert,
     * not a model reload. Carries the scene's own generation; returns
     * 0 (and keeps the incumbent) if a newer generation of `id` is
     * already published here.
     */
    uint64_t publishShared(const std::string &id, ServedScenePtr scene);

    /** Ref-counted read access; nullptr when `id` is not registered. */
    ServedScenePtr acquire(const std::string &id) const;

    /** Drop `id` from the registry (in-flight readers keep theirs). */
    bool unregister(const std::string &id);

    /** Current generation of `id`, or 0 when absent. */
    uint64_t generation(const std::string &id) const;

    std::vector<std::string> sceneIds() const;
    size_t size() const;

  private:
    uint64_t publish(const std::string &id, ServedScenePtr scene);

    mutable std::mutex mtx;
    std::unordered_map<std::string, ServedScenePtr> scenes;
    uint64_t nextGen = 1;
};

} // namespace instant3d

#endif // INSTANT3D_SERVE_SCENE_REGISTRY_HH
