/**
 * @file
 * Multi-scene model registry for the render-serving subsystem.
 *
 * A SceneRegistry owns N independent trained models ("served scenes"),
 * each a NerfField restored from a checkpoint (or snapshotted from a
 * live Trainer), its occupancy grid, and one pre-built VolumeRenderer
 * per quality tier. Scenes are published under string ids with
 * monotonically increasing generations; readers acquire() a
 * ref-counted handle, so re-registering an id never invalidates
 * in-flight renders -- the old generation stays alive until its last
 * reader drops it, and the new generation's distinct number makes
 * every stale tile-cache key unreachable.
 *
 * Capacity: with a byte budget configured, warm scenes are
 * byte-accounted and the least-recently-used checkpoint-backed scene
 * is evicted to a *cold stub* when the budget overflows. A stub
 * remembers its checkpoint path, spec, and generation; the next
 * acquireOrLoad() triggers a single-flight background reload that
 * republishes under the *same* generation (same file, bit-identical
 * model, so surviving tile-cache entries stay valid). Eviction only
 * drops the registry's reference -- in-flight renders hold their own
 * shared_ptr and drain naturally. Structurally-bad checkpoints (shape
 * / CRC / magic) quarantine the stub so a corrupt file cannot fuel a
 * reload storm; transient Io failures leave the stub cold for a later
 * retry.
 */

#ifndef INSTANT3D_SERVE_SCENE_REGISTRY_HH
#define INSTANT3D_SERVE_SCENE_REGISTRY_HH

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "nerf/occupancy_grid.hh"
#include "nerf/renderer.hh"
#include "nerf/serialize.hh"
#include "nerf/trainer.hh"
#include "serve/serve_types.hh"

namespace instant3d {

class ServedScene;
using ServedScenePtr = std::shared_ptr<ServedScene>;

/** Everything needed to reconstruct a servable scene from disk. */
struct SceneSpec
{
    FieldConfig field;
    RendererConfig renderer;
    bool useOccupancy = false;  //!< Restore + attach an occupancy grid.
    OccupancyGridConfig occupancy;
    uint64_t seed = 42;         //!< Field-construction seed (params are
                                //!< overwritten by the checkpoint).

    /**
     * Extra load attempts after a *transient* checkpoint failure
     * (CheckpointError::Io only -- structural errors like a shape or
     * CRC mismatch never retry). Attempt k backs off
     * loadRetryBackoffMs << k milliseconds first; the wait is
     * interruptible, so stop()/destruction never hangs on it.
     */
    int loadRetries = 2;
    int loadRetryBackoffMs = 2;
};

/** Capacity policy for a registry. Defaults keep the legacy behavior
 *  (no budget, no eviction, loads on the caller thread only). */
struct SceneRegistryConfig
{
    /** Byte budget for warm scenes; 0 = unlimited (never evict). A
     *  single scene larger than the budget still publishes (serving
     *  beats strict accounting); everything else evicts around it. */
    size_t memoryBudgetBytes = 0;

    /** Background loader threads servicing cold-start reloads. Caps
     *  concurrent checkpoint loads so a cold-start wave cannot starve
     *  render workers; excess cold scenes queue behind the cap. */
    int maxConcurrentLoads = 1;
};

/** Lifecycle of an id inside a registry. */
enum class SceneState : uint8_t
{
    Absent,      //!< Never registered (or unregistered).
    Warm,        //!< Resident and servable.
    Cold,        //!< Evicted stub; reloadable from its checkpoint.
    Loading,     //!< A single-flight reload is in progress or queued.
    Quarantined, //!< Reload hit a structural error; no more retries.
};

/** What acquireOrLoad() found (and possibly started). */
struct AcquireOutcome
{
    ServedScenePtr scene;    //!< Non-null iff state == Warm.
    SceneState state = SceneState::Absent;
    /** Quarantine reason (structural CheckpointError) when state ==
     *  Quarantined; None otherwise. */
    CheckpointError error = CheckpointError::None;
    /** Load-aware retry hint (ms) when state is Cold/Loading: the
     *  EWMA load time scaled by the queue depth ahead of this scene. */
    int retryAfterMs = 0;
    /** True when this call began the (single) reload for the scene. */
    bool startedLoad = false;
};

/** Point-in-time capacity counters (monotonic since construction). */
struct SceneRegistryStats
{
    size_t scenes = 0;       //!< All entries (any state).
    size_t warm = 0;
    size_t cold = 0;
    size_t loading = 0;
    size_t quarantined = 0;
    size_t bytesWarm = 0;    //!< Accounted bytes of warm scenes.
    size_t budgetBytes = 0;  //!< Configured budget (0 = unlimited).
    uint64_t evictions = 0;
    /** Evictions where a render still held the scene (the shared_ptr
     *  drain seam -- the render keeps its reference and completes). */
    uint64_t evictionsWhileReferenced = 0;
    uint64_t coldLoadsStarted = 0;   //!< Single-flight loads begun.
    uint64_t reloads = 0;            //!< Cold -> warm successes.
    uint64_t singleFlightJoins = 0;  //!< acquireOrLoad calls that found
                                     //!< a load already in flight.
    uint64_t loadFailures = 0;       //!< Transient-exhausted reloads.
    uint64_t quarantineHits = 0;     //!< Acquires answered "quarantined".
    double lastLoadMs = 0.0;
    double ewmaLoadMs = 0.0;         //!< Drives retryAfterMs hints.
};

/**
 * One published, immutable-after-publication scene: the field, its
 * occupancy grid, and a renderer per quality tier (tier t renders with
 * samplesPerRay >> t). Concurrent queryStream reads are safe; nothing
 * mutates the model after registration.
 */
class ServedScene
{
  public:
    ServedScene(std::string scene_id, uint64_t scene_generation,
                const SceneSpec &scene_spec);

    const std::string &id() const { return sceneId; }
    uint64_t generation() const { return gen; }
    const SceneSpec &spec() const { return sceneSpec; }

    NerfField &field() { return *fieldPtr; }
    const OccupancyGrid *occupancy() const { return occPtr.get(); }

    /**
     * Mutable grid access for the registration-time load/snapshot;
     * never used after the scene is published.
     */
    OccupancyGrid *occupancyForLoad() { return occPtr.get(); }

    /** The renderer for a quality tier (occupancy grid attached). */
    const VolumeRenderer &renderer(QualityTier tier) const
    { return renderers[static_cast<size_t>(tier)]; }

    /** Wire size of the model's trainable parameters. */
    size_t paramBytes();

    /** Accounted resident size: params + occupancy densities. */
    size_t residentBytes();

    /**
     * Checkpoint file this scene was loaded from; empty for
     * trainer-snapshot scenes. A non-empty path makes the scene
     * evictable (its registry entry can reload it on demand) --
     * including on shard registries it was publishShared() to.
     */
    const std::string &sourcePath() const { return srcPath; }
    void setSourcePath(std::string path) { srcPath = std::move(path); }

  private:
    std::string sceneId;
    uint64_t gen;
    SceneSpec sceneSpec;
    std::string srcPath;
    std::unique_ptr<NerfField> fieldPtr;
    std::unique_ptr<OccupancyGrid> occPtr;
    std::vector<VolumeRenderer> renderers; //!< One per quality tier.
};

/**
 * Thread-safe id -> scene map with generation bookkeeping and
 * (optionally) a warm-set byte budget with LRU eviction + single-
 * flight reload. Default-constructed registries behave exactly like
 * the pre-budget registry: no eviction, no background threads.
 */
class SceneRegistry
{
  public:
    SceneRegistry() = default;
    explicit SceneRegistry(const SceneRegistryConfig &registry_config);
    ~SceneRegistry();

    SceneRegistry(const SceneRegistry &) = delete;
    SceneRegistry &operator=(const SceneRegistry &) = delete;

    /**
     * Load a checkpoint written by Trainer::saveCheckpoint (or
     * saveField/saveCheckpoint) and publish it under `id`, replacing
     * any previous generation. When spec.useOccupancy is set the file
     * must carry a matching-resolution occupancy section. Returns the
     * new generation, or 0 on load failure (the previous generation,
     * if any, stays published). The registered scene remembers `path`
     * and is evictable under a byte budget.
     */
    uint64_t registerFromCheckpoint(const std::string &id,
                                    const SceneSpec &spec,
                                    const std::string &path);

    /**
     * Snapshot a live trainer's model -- settled parameters plus the
     * current occupancy-grid state -- and publish it under `id`. This
     * is the train-and-register path used by tests and demos; the
     * served scene renders bit-identically to trainer.renderImage().
     * Returns the new generation. Trainer snapshots have no backing
     * checkpoint, so they are pinned (never evicted).
     *
     * Both register paths return 0 when a concurrent registration of
     * the same id published a newer generation first (generations only
     * move forward; the newer model stays).
     */
    uint64_t registerFromTrainer(const std::string &id,
                                 Trainer &trainer);

    /**
     * Publish an already-built scene under `id`, *sharing* the model:
     * the registry holds another reference to the same ServedScene,
     * not a copy. This is the fleet-replication seam -- a ShardRouter
     * places one canonical scene on R shard registries, so every
     * replica serves bit-identical pixels by construction and
     * re-placement during drain or crash recovery is a pointer insert,
     * not a model reload. Carries the scene's own generation; returns
     * 0 (and keeps the incumbent) if a newer generation of `id` is
     * already published here. Publication is budget-accounted: it may
     * evict this registry's LRU scenes to make room (drain
     * re-placement respects the survivors' budgets).
     */
    uint64_t publishShared(const std::string &id, ServedScenePtr scene);

    /** Ref-counted read access; nullptr when `id` is not warm here.
     *  (Cold/loading/quarantined entries read as nullptr -- use
     *  acquireOrLoad for the capacity-aware path.) */
    ServedScenePtr acquire(const std::string &id) const;

    /**
     * Capacity-aware acquire. Warm -> the scene (and an LRU touch).
     * Cold -> begins the single-flight background reload (or joins
     * the one in flight) and reports Loading with a load-aware
     * retryAfterMs; with max_wait_ms > 0 the call blocks up to that
     * long for the reload to settle (the "wait bounded by deadline"
     * path). Quarantined -> the structural error, no load attempt.
     */
    AcquireOutcome acquireOrLoad(const std::string &id,
                                 double max_wait_ms = 0.0);

    /**
     * Block until `id` is warm (returns the scene) or its reload
     * settles unsuccessfully / the wait times out (returns nullptr).
     * max_wait_ms <= 0 waits until the load settles, however long.
     */
    ServedScenePtr awaitWarm(const std::string &id, double max_wait_ms);

    /**
     * Manually evict `id` to a cold stub (ops / test hook; the budget
     * path calls the same internals). False when `id` is not warm or
     * not checkpoint-backed. In-flight renders keep their reference.
     */
    bool evictScene(const std::string &id);

    /** Lift a quarantine so the next acquireOrLoad may retry (e.g.
     *  after the checkpoint file was repaired). False when `id` is
     *  not quarantined. */
    bool clearQuarantine(const std::string &id);

    /** Drop `id` from the registry (in-flight readers keep theirs). */
    bool unregister(const std::string &id);

    /** Current generation of `id`, or 0 when absent. Cold stubs keep
     *  their generation (reloads republish under it). */
    uint64_t generation(const std::string &id) const;

    /** Lifecycle state of `id`. */
    SceneState state(const std::string &id) const;

    std::vector<std::string> sceneIds() const;
    size_t size() const;

    SceneRegistryStats stats() const;

    /**
     * Interrupt in-flight retry backoffs and stop the loader threads.
     * Idempotent; the destructor calls it. Blocked
     * registerFromCheckpoint retry waits return promptly with a load
     * failure instead of sleeping out their backoff.
     */
    void stop();

  private:
    struct Entry
    {
        ServedScenePtr scene;  //!< Non-null iff warm.
        SceneSpec spec;        //!< For rebuilding on reload.
        std::string path;      //!< Empty = pinned (not evictable).
        uint64_t gen = 0;      //!< Survives eviction; reload reuses it.
        size_t bytes = 0;      //!< Accounted while warm.
        uint64_t lastUsed = 0; //!< LRU tick.
        bool loading = false;  //!< Single-flight latch.
        bool quarantined = false;
        CheckpointError quarantineError = CheckpointError::None;
    };

    uint64_t publish(const std::string &id, ServedScenePtr scene);
    void touchLocked(Entry &e);
    void accountPublishLocked(const std::string &id, Entry &e,
                              ServedScenePtr scene, uint64_t gen,
                              std::vector<ServedScenePtr> &graveyard);
    void evictToFitLocked(const std::string &keep_id,
                          std::vector<ServedScenePtr> &graveyard);
    int loadHintMsLocked(const std::string &id) const;
    void ensureLoadersLocked();
    void loaderLoop();
    void performLoad(const std::string &id);
    CheckpointError loadWithRetries(ServedScene &scene,
                                    const SceneSpec &spec,
                                    const std::string &path);

    SceneRegistryConfig cfg;

    mutable std::mutex mtx;
    std::condition_variable cv; //!< Load settles / queue work / stop.
    std::unordered_map<std::string, Entry> entries;
    uint64_t nextGen = 1;
    uint64_t lruTick = 0;
    size_t bytesWarm = 0;
    bool stopping = false;

    std::vector<std::thread> loaders;
    std::deque<std::string> loadQueue;

    // Monotonic counters (guarded by mtx).
    uint64_t statEvictions = 0;
    uint64_t statEvictionsWhileReferenced = 0;
    uint64_t statColdLoadsStarted = 0;
    uint64_t statReloads = 0;
    uint64_t statSingleFlightJoins = 0;
    uint64_t statLoadFailures = 0;
    uint64_t statQuarantineHits = 0;
    double statLastLoadMs = 0.0;
    double statEwmaLoadMs = 0.0;
};

} // namespace instant3d

#endif // INSTANT3D_SERVE_SCENE_REGISTRY_HH
