#include "serve/render_service.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"
#include "common/stats.hh"

namespace instant3d {

namespace {

/** Monotonic seconds. */
double
now()
{
    return monotonicSeconds();
}

} // namespace

/** In-flight request state shared by its tile jobs. */
struct RenderService::Pending
{
    uint64_t id = 0;
    ServedScenePtr scene;
    uint64_t generation = 0;
    CameraSpec spec; //!< Quantized.
    Camera camera;
    uint64_t cameraKey = 0;
    TileRect roi;
    QualityTier tier = QualityTier::Full;
    double submitT = 0.0;
    double deadlineMs = 0.0;
    std::atomic<double> firstDequeueT{0.0};
    Image image; //!< roi-sized output; tiles write disjoint pixels.
    std::atomic<int> remaining{0};
    std::atomic<uint8_t> failStatus{
        static_cast<uint8_t>(RequestStatus::Ok)};
    std::atomic<int> tilesRendered{0};
    std::atomic<int> tilesCached{0};
    std::promise<RenderResponse> promise;

    explicit Pending(const Camera &cam) : camera(cam) {}

    /** Record the first terminal failure; later ones are ignored. */
    void
    markFailed(RequestStatus status)
    {
        uint8_t expected = static_cast<uint8_t>(RequestStatus::Ok);
        failStatus.compare_exchange_strong(
            expected, static_cast<uint8_t>(status));
    }

    bool
    failed() const
    {
        return failStatus.load(std::memory_order_acquire) !=
               static_cast<uint8_t>(RequestStatus::Ok);
    }
};

RenderService::RenderService(SceneRegistry &scene_registry,
                             const RenderServiceConfig &service_config)
    : registry(scene_registry), cfg(service_config),
      cache(static_cast<size_t>(std::max(0, service_config.cacheTiles)))
{
    fatalIf(cfg.tilePixels < 1, "tilePixels must be positive");
    fatalIf(cfg.chunkRays < 1, "chunkRays must be positive");
    fatalIf(cfg.maxQueueTiles < 1, "maxQueueTiles must be positive");
    pool = std::make_unique<ThreadPool>(cfg.workers);
    workspaces.resize(pool->threadCount());
    scheduler = std::thread([this] { schedulerLoop(); });
}

RenderService::~RenderService()
{
    {
        std::lock_guard<std::mutex> lock(queueMtx);
        stopping = true;
    }
    queueCv.notify_all();
    scheduler.join();
}

void
RenderService::completeNow(std::promise<RenderResponse> &promise,
                           RequestStatus status, int retry_after_ms)
{
    RenderResponse resp;
    resp.status = status;
    resp.retryAfterMs = retry_after_ms;
    promise.set_value(std::move(resp));
}

std::future<RenderResponse>
RenderService::submit(const RenderRequest &request)
{
    std::promise<RenderResponse> promise;
    std::future<RenderResponse> future = promise.get_future();

    if (request.camera.width < 1 || request.camera.height < 1 ||
        static_cast<int>(request.quality) < 0 ||
        static_cast<int>(request.quality) >= numQualityTiers) {
        statBadRequest.fetch_add(1, std::memory_order_relaxed);
        completeNow(promise, RequestStatus::BadRequest, 0);
        return future;
    }

    ServedScenePtr scene = registry.acquire(request.sceneId);
    if (!scene) {
        statUnknownScene.fetch_add(1, std::memory_order_relaxed);
        completeNow(promise, RequestStatus::UnknownScene, 0);
        return future;
    }

    // Snap the camera onto the quantization lattice up front: the
    // snapped camera is what gets rendered AND what keys the cache, so
    // a cache hit is bit-exact for the camera actually served.
    CameraSpec spec = request.camera.quantized();
    TileRect roi = request.roi;
    if (roi.w == 0) {
        roi = {0, 0, spec.width, spec.height};
    }
    if (roi.w < 1 || roi.h < 1 || roi.x < 0 || roi.y < 0 ||
        roi.x + roi.w > spec.width || roi.y + roi.h > spec.height) {
        statBadRequest.fetch_add(1, std::memory_order_relaxed);
        completeNow(promise, RequestStatus::BadRequest, 0);
        return future;
    }

    // Tile split (row-major over the roi).
    std::vector<TileRect> tiles;
    for (int ty = roi.y; ty < roi.y + roi.h; ty += cfg.tilePixels) {
        int th = std::min(cfg.tilePixels, roi.y + roi.h - ty);
        for (int tx = roi.x; tx < roi.x + roi.w; tx += cfg.tilePixels) {
            int tw = std::min(cfg.tilePixels, roi.x + roi.w - tx);
            tiles.push_back({tx, ty, tw, th});
        }
    }
    // Larger than the whole admission window: no amount of retrying
    // can ever admit it, so don't pretend the overload is transient.
    if (tiles.size() > static_cast<size_t>(cfg.maxQueueTiles)) {
        statBadRequest.fetch_add(1, std::memory_order_relaxed);
        completeNow(promise, RequestStatus::BadRequest, 0);
        return future;
    }

    auto req = std::make_shared<Pending>(spec.makeCamera());
    req->id = nextRequestId.fetch_add(1, std::memory_order_relaxed);
    req->scene = std::move(scene);
    req->generation = req->scene->generation();
    req->spec = spec;
    req->cameraKey = spec.hashKey();
    req->roi = roi;
    req->tier = request.quality;
    req->submitT = now();
    req->deadlineMs = request.deadlineMs;
    req->image = Image(roi.w, roi.h);
    req->remaining.store(static_cast<int>(tiles.size()),
                         std::memory_order_relaxed);
    req->promise = std::move(promise);

    {
        std::lock_guard<std::mutex> lock(queueMtx);
        if (stopping) {
            completeNow(req->promise, RequestStatus::Shutdown, 0);
            return future;
        }
        // Backpressure: bounded admission over *outstanding* tiles
        // (queued + rendering), reject-with-retry-after.
        if (outstandingTiles.load(std::memory_order_relaxed) +
                tiles.size() >
            static_cast<size_t>(cfg.maxQueueTiles)) {
            statRejected.fetch_add(1, std::memory_order_relaxed);
            completeNow(req->promise, RequestStatus::Rejected,
                        cfg.retryAfterMs);
            return future;
        }
        for (const auto &t : tiles)
            tileQueue.push_back({req, t});
        uint64_t depth = outstandingTiles.fetch_add(
                             tiles.size(), std::memory_order_relaxed) +
                         tiles.size();
        uint64_t hw = statQueueHighwater.load(std::memory_order_relaxed);
        while (depth > hw &&
               !statQueueHighwater.compare_exchange_weak(
                   hw, depth, std::memory_order_relaxed)) {
        }
    }
    statAccepted.fetch_add(1, std::memory_order_relaxed);
    queueCv.notify_one();
    return future;
}

RenderResponse
RenderService::render(const RenderRequest &request)
{
    return submit(request).get();
}

void
RenderService::invalidateScene(const std::string &scene_id)
{
    cache.invalidateScene(scene_id);
}

void
RenderService::finishTile(const std::shared_ptr<Pending> &req,
                          bool rendered, bool from_cache)
{
    outstandingTiles.fetch_sub(1, std::memory_order_relaxed);
    if (rendered)
        req->tilesRendered.fetch_add(1, std::memory_order_relaxed);
    if (from_cache)
        req->tilesCached.fetch_add(1, std::memory_order_relaxed);
    if (req->remaining.fetch_sub(1, std::memory_order_acq_rel) != 1)
        return;

    // Last tile: whoever gets here completes the request.
    double t = now();
    RenderResponse resp;
    resp.status = static_cast<RequestStatus>(
        req->failStatus.load(std::memory_order_acquire));
    resp.image = std::move(req->image);
    resp.sceneGeneration = req->generation;
    resp.tilesRendered =
        req->tilesRendered.load(std::memory_order_relaxed);
    resp.tilesFromCache =
        req->tilesCached.load(std::memory_order_relaxed);
    double first =
        req->firstDequeueT.load(std::memory_order_relaxed);
    resp.queueMs =
        first > 0.0 ? (first - req->submitT) * 1e3 : 0.0;
    resp.totalMs = (t - req->submitT) * 1e3;
    if (resp.status == RequestStatus::DeadlineExceeded)
        statDeadline.fetch_add(1, std::memory_order_relaxed);
    statCompleted.fetch_add(1, std::memory_order_relaxed);
    req->promise.set_value(std::move(resp));
}

void
RenderService::renderChunk(const Chunk &chunk, int rank)
{
    Workspace &ws = workspaces[rank];
    ws.reset();

    Ray *rays = ws.alloc<Ray>(chunk.rays);
    RayResult *results = ws.alloc<RayResult>(chunk.rays);

    int off = 0;
    for (const auto &job : chunk.tiles) {
        const Camera &cam = job.req->camera;
        for (int row = job.tile.y; row < job.tile.y + job.tile.h; row++)
            for (int col = job.tile.x; col < job.tile.x + job.tile.w;
                 col++)
                rays[off++] = cam.pixelRay(col, row);
    }

    chunk.scene->renderer(chunk.tier)
        .renderRays(chunk.scene->field(), rays, chunk.rays, results,
                    ws);

    const bool caching = cfg.cacheTiles > 0;
    off = 0;
    for (const auto &job : chunk.tiles) {
        const auto &req = job.req;
        std::vector<Vec3> pixels;
        if (caching)
            pixels.resize(static_cast<size_t>(job.tile.w) *
                          job.tile.h);
        for (int py = 0; py < job.tile.h; py++) {
            for (int px = 0; px < job.tile.w; px++) {
                const Vec3 &color = results[off++].color;
                req->image.at(job.tile.x - req->roi.x + px,
                              job.tile.y - req->roi.y + py) = color;
                if (caching)
                    pixels[static_cast<size_t>(py) * job.tile.w +
                           px] = color;
            }
        }
        if (caching) {
            TileKey key{req->scene->id(), req->generation,
                        req->cameraKey, req->spec,
                        job.tile.x, job.tile.y, job.tile.w,
                        job.tile.h, req->tier};
            cache.insert(key, std::move(pixels));
        }

        statTilesRendered.fetch_add(1, std::memory_order_relaxed);
        finishTile(req, true, false);
    }
    statRays.fetch_add(static_cast<uint64_t>(chunk.rays),
                       std::memory_order_relaxed);
}

void
RenderService::schedulerLoop()
{
    for (;;) {
        std::vector<TileJob> drained;
        bool stop_now = false;
        {
            std::unique_lock<std::mutex> lock(queueMtx);
            queueCv.wait(lock, [&] {
                return stopping || !tileQueue.empty();
            });
            stop_now = stopping;
            drained.assign(
                std::make_move_iterator(tileQueue.begin()),
                std::make_move_iterator(tileQueue.end()));
            tileQueue.clear();
            // outstandingTiles stays up: drained tiles are still
            // in flight until finishTile() retires them.
        }

        if (stop_now) {
            for (auto &job : drained) {
                job.req->markFailed(RequestStatus::Shutdown);
                finishTile(job.req, false, false);
            }
            return;
        }

        const double t = now();
        std::vector<Chunk> chunks;
        // Open chunk per (scene, tier) coalescing key, so tiles from
        // different requests to the same model pack into one stream.
        std::map<std::pair<ServedScene *, int>, size_t> open;

        for (auto &job : drained) {
            const auto &req = job.req;
            double expected = 0.0;
            req->firstDequeueT.compare_exchange_strong(
                expected, t, std::memory_order_relaxed);

            if (req->failed()) {
                finishTile(req, false, false);
                continue;
            }
            if (req->deadlineMs > 0.0 &&
                (t - req->submitT) * 1e3 > req->deadlineMs) {
                req->markFailed(RequestStatus::DeadlineExceeded);
                finishTile(req, false, false);
                continue;
            }

            TileKey key{req->scene->id(), req->generation,
                        req->cameraKey, req->spec, job.tile.x,
                        job.tile.y, job.tile.w, job.tile.h,
                        req->tier};
            std::vector<Vec3> pixels;
            if (cache.lookup(key, pixels)) {
                for (int py = 0; py < job.tile.h; py++)
                    for (int px = 0; px < job.tile.w; px++)
                        req->image.at(
                            job.tile.x - req->roi.x + px,
                            job.tile.y - req->roi.y + py) =
                            pixels[static_cast<size_t>(py) *
                                       job.tile.w +
                                   px];
                statTilesCached.fetch_add(1,
                                          std::memory_order_relaxed);
                finishTile(req, false, true);
                continue;
            }

            const int tile_rays = job.tile.w * job.tile.h;
            auto ckey = std::make_pair(req->scene.get(),
                                       static_cast<int>(req->tier));
            auto it = open.find(ckey);
            if (it == open.end() ||
                chunks[it->second].rays + tile_rays > cfg.chunkRays) {
                Chunk c;
                c.scene = req->scene.get();
                c.tier = req->tier;
                open[ckey] = chunks.size();
                chunks.push_back(std::move(c));
                it = open.find(ckey);
            }
            Chunk &c = chunks[it->second];
            c.rays += tile_rays;
            c.tiles.push_back(std::move(job));
        }

        if (!chunks.empty()) {
            for (const auto &c : chunks) {
                statChunks.fetch_add(1, std::memory_order_relaxed);
                uint64_t distinct = 0;
                uint64_t last_id = 0;
                for (const auto &tj : c.tiles) {
                    if (distinct == 0 || tj.req->id != last_id) {
                        // Tiles of one request are queued contiguously,
                        // so id changes count distinct requests.
                        distinct++;
                        last_id = tj.req->id;
                    }
                }
                if (distinct > 1)
                    statCrossChunks.fetch_add(
                        1, std::memory_order_relaxed);
            }
            pool->parallelFor(
                static_cast<int>(chunks.size()),
                [&](int c, int rank) { renderChunk(chunks[c], rank); });
        }
    }
}

ServeStats
RenderService::stats() const
{
    ServeStats s;
    s.requestsAccepted = statAccepted.load(std::memory_order_relaxed);
    s.requestsCompleted = statCompleted.load(std::memory_order_relaxed);
    s.requestsRejected = statRejected.load(std::memory_order_relaxed);
    s.requestsDeadlineExceeded =
        statDeadline.load(std::memory_order_relaxed);
    s.requestsUnknownScene =
        statUnknownScene.load(std::memory_order_relaxed);
    s.requestsBadRequest =
        statBadRequest.load(std::memory_order_relaxed);
    s.tilesRendered = statTilesRendered.load(std::memory_order_relaxed);
    s.tilesFromCache = statTilesCached.load(std::memory_order_relaxed);
    s.raysRendered = statRays.load(std::memory_order_relaxed);
    s.chunksRendered = statChunks.load(std::memory_order_relaxed);
    s.crossRequestChunks =
        statCrossChunks.load(std::memory_order_relaxed);
    s.queueDepthHighwater =
        statQueueHighwater.load(std::memory_order_relaxed);
    return s;
}

} // namespace instant3d
