#include "serve/render_service.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/fault_injection.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"

namespace instant3d {

namespace {

/** Monotonic seconds. */
double
now()
{
    return monotonicSeconds();
}

} // namespace

/** In-flight request state shared by its tile jobs. */
struct RenderService::Pending
{
    uint64_t id = 0;
    ServedScenePtr scene;
    uint64_t generation = 0;
    CameraSpec rawSpec; //!< As submitted (pre-quantization).
    CameraSpec spec;    //!< Quantized on the served tier's lattice.
    Camera camera;
    uint64_t cameraKey = 0;
    TileRect roi;
    QualityTier tier = QualityTier::Full; //!< Requested tier.

    /**
     * Tier the request renders at. Set at admission (possibly degraded
     * under queueMtx), optionally stepped down once more by the
     * scheduler's deadline-risk check before any of the request's
     * tiles dispatch; stable from then on. All writes are ordered
     * before worker reads by the queue lock / pool handoff.
     */
    int servedTier = 0;
    int minTier = 0; //!< Numeric max tier degradation may reach.
    bool deadlineChecked = false; //!< Scheduler-only: risk check done.

    double submitT = 0.0;
    double deadlineMs = 0.0;
    std::atomic<double> firstDequeueT{0.0};
    Image image; //!< roi-sized output; tiles write disjoint pixels.
    std::atomic<int> remaining{0};
    std::atomic<uint8_t> failStatus{
        static_cast<uint8_t>(RequestStatus::Ok)};
    std::atomic<int> tilesRendered{0};
    std::atomic<int> tilesCached{0};
    std::promise<RenderResponse> promise;

    /**
     * TraceContext: adopted from the request (router-owned) or begun
     * here when this service is the first tracing-aware layer, in
     * which case ownsTrace is set and finishTile() completes it.
     */
    obs::RequestTracePtr trace;
    bool ownsTrace = false;

    explicit Pending(const Camera &cam) : camera(cam) {}

    /** Record the first terminal failure; later ones are ignored. */
    void
    markFailed(RequestStatus status)
    {
        uint8_t expected = static_cast<uint8_t>(RequestStatus::Ok);
        failStatus.compare_exchange_strong(
            expected, static_cast<uint8_t>(status));
    }

    bool
    failed() const
    {
        return failStatus.load(std::memory_order_acquire) !=
               static_cast<uint8_t>(RequestStatus::Ok);
    }
};

/**
 * One predicted frame of one viewer, shared by its speculative tile
 * jobs. Carries everything a render needs (the ServedScenePtr pins the
 * model against eviction) plus the viewer epoch it was predicted at:
 * a newer prediction for the same viewer bumps the shared epoch, which
 * cancels still-queued tiles of this batch at dequeue.
 */
struct RenderService::PrefetchBatch
{
    ServedScenePtr scene;
    uint64_t generation = 0;
    CameraSpec spec; //!< Predicted, snapped on the tier's lattice.
    Camera camera;
    uint64_t cameraKey = 0;
    QualityTier tier = QualityTier::Full;
    uint64_t epoch = 0;
    std::shared_ptr<std::atomic<uint64_t>> viewerEpoch;

    explicit PrefetchBatch(const Camera &cam) : camera(cam) {}

    bool
    superseded() const
    {
        return viewerEpoch->load(std::memory_order_relaxed) != epoch;
    }
};

RenderService::RenderService(SceneRegistry &scene_registry,
                             const RenderServiceConfig &service_config)
    : registry(scene_registry), cfg(service_config),
      cache(static_cast<size_t>(std::max(0, service_config.cacheTiles)),
            static_cast<size_t>(
                std::max(0LL, service_config.cacheBytes)))
{
    fatalIf(cfg.tilePixels < 1, "tilePixels must be positive");
    fatalIf(cfg.chunkRays < 1, "chunkRays must be positive");
    fatalIf(cfg.maxQueueTiles < 1, "maxQueueTiles must be positive");
    fatalIf(cfg.maxQueueTilesDegraded != 0 &&
                cfg.maxQueueTilesDegraded < cfg.maxQueueTiles,
            "maxQueueTilesDegraded must be 0 (auto) or >= maxQueueTiles");
    fatalIf(cfg.deadlineRiskFraction <= 0.0 ||
                cfg.deadlineRiskFraction > 1.0,
            "deadlineRiskFraction must be in (0, 1]");
    fatalIf(cfg.cameraLattice[0] != fullCameraLattice,
            "Full-tier camera lattice is pinned to 1/4096 "
            "(bit-identity contract)");
    for (int t = 1; t < numQualityTiers; t++)
        fatalIf(cfg.cameraLattice[t] <= 0.0f,
                "camera lattice denominators must be positive");
    fatalIf(cfg.prefetch && cfg.cacheTiles <= 0,
            "prefetch renders into the tile cache; enable cacheTiles");
    fatalIf(cfg.prefetch && cfg.maxPrefetchTiles < 1,
            "maxPrefetchTiles must be positive with prefetch on");
    fatalIf(cfg.prefetch && cfg.prefetchHistory < 2,
            "prefetchHistory needs >= 2 specs for velocity");
    pool = std::make_unique<ThreadPool>(cfg.workers);
    workspaces.resize(pool->threadCount());

    obsGroup = obs::nextTrackGroup();
    obs::TraceRing::global().setTrackName(
        obsGroup, "render-service-" + std::to_string(obsGroup));
    auto &metrics = obs::MetricsRegistry::global();
    histQueueMs = &metrics.histogram("serve.queue_ms");
    histTotalMs = &metrics.histogram("serve.total_ms");
    histChunkMs = &metrics.histogram("serve.chunk_render_ms");
    obsCollector = metrics.addCollector(
        [this](obs::MetricsSink &sink) { collectMetrics(sink); });

    scheduler = std::thread([this] { schedulerLoop(); });
}

RenderService::~RenderService()
{
    // Deregister first: removeCollector synchronizes against an
    // in-flight snapshot, so no collector can touch a dying service.
    obs::MetricsRegistry::global().removeCollector(obsCollector);
    stop();
}

void
RenderService::collectMetrics(obs::MetricsSink &sink) const
{
    const ServeStats s = stats();
    sink.counter("serve.requests_accepted", s.requestsAccepted);
    sink.counter("serve.requests_completed", s.requestsCompleted);
    sink.counter("serve.requests_rejected", s.requestsRejected);
    sink.counter("serve.requests_deadline_exceeded",
                 s.requestsDeadlineExceeded);
    sink.counter("serve.requests_cold_start", s.requestsColdStart);
    sink.counter("serve.requests_degraded", s.requestsDegraded);
    sink.counter("serve.tiles_rendered", s.tilesRendered);
    sink.counter("serve.tiles_from_cache", s.tilesFromCache);
    sink.counter("serve.rays_rendered", s.raysRendered);
    sink.counter("serve.chunks_rendered", s.chunksRendered);
    sink.counter("serve.cross_request_chunks", s.crossRequestChunks);
    sink.counter("serve.prefetch_tiles_rendered",
                 s.prefetchTilesRendered);
    sink.gauge("serve.outstanding_tiles",
               static_cast<double>(outstandingTileCount()));
    const TileCache::Stats cs = cache.stats();
    sink.gauge("serve.cache_entries", static_cast<double>(cs.entries));
    sink.gauge("serve.cache_bytes", static_cast<double>(cs.bytesHeld));
}

void
RenderService::stop()
{
    std::lock_guard<std::mutex> stop_lock(stopMtx);
    {
        std::lock_guard<std::mutex> lock(queueMtx);
        stopping = true;
    }
    queueCv.notify_all();
    if (scheduler.joinable())
        scheduler.join();
    stoppedFlag.store(true, std::memory_order_release);
}

void
RenderService::completeNow(std::promise<RenderResponse> &promise,
                           RequestStatus status, int retry_after_ms)
{
    RenderResponse resp;
    resp.status = status;
    resp.retryAfterMs = retry_after_ms;
    promise.set_value(std::move(resp));
}

std::future<RenderResponse>
RenderService::submit(const RenderRequest &request)
{
    std::promise<RenderResponse> promise;
    std::future<RenderResponse> future = promise.get_future();

    if (request.camera.width < 1 || request.camera.height < 1 ||
        static_cast<int>(request.quality) < 0 ||
        static_cast<int>(request.quality) >= numQualityTiers ||
        static_cast<int>(request.minQuality) < 0 ||
        static_cast<int>(request.minQuality) >= numQualityTiers) {
        statBadRequest.fetch_add(1, std::memory_order_relaxed);
        completeNow(promise, RequestStatus::BadRequest, 0);
        return future;
    }

    // TraceContext: adopt the router's trace, or begin one here --
    // this service is then the first tracing-aware layer, owns the
    // trace, and completes it (in finishTile for admitted requests,
    // via finishEarly below otherwise).
    obs::RequestTracePtr trace = request.trace;
    bool owns_trace = false;
    if (!trace) {
        trace = obs::beginTrace(request.sceneId); // null when disabled
        owns_trace = trace != nullptr;
    }
    obs::ScopedSpan admission(trace.get(), "serve.admission", obsGroup,
                              0);
    auto finishEarly = [&](const char *status) {
        if (!trace)
            return;
        trace->note("status", status);
        if (owns_trace)
            obs::TraceRing::global().complete(
                trace, (now() - trace->beginT()) * 1e3);
    };

    // Capacity-aware acquire: a warm scene is pinned by this request's
    // shared_ptr for its whole lifetime (eviction can never drop an
    // in-flight render); a cold scene answers ColdStart immediately --
    // the acquire itself begins (or joins) the single-flight reload --
    // so no client or router dispatcher thread ever blocks on a
    // checkpoint load here.
    AcquireOutcome acq = registry.acquireOrLoad(request.sceneId);
    if (acq.state == SceneState::Absent) {
        statUnknownScene.fetch_add(1, std::memory_order_relaxed);
        finishEarly("unknown_scene");
        completeNow(promise, RequestStatus::UnknownScene, 0);
        return future;
    }
    if (acq.state == SceneState::Quarantined) {
        statSceneUnavailable.fetch_add(1, std::memory_order_relaxed);
        finishEarly("scene_unavailable");
        completeNow(promise, RequestStatus::SceneUnavailable, 0);
        return future;
    }
    if (!acq.scene) { // Cold or Loading: reload in flight.
        statColdStart.fetch_add(1, std::memory_order_relaxed);
        finishEarly("cold_start");
        completeNow(promise, RequestStatus::ColdStart,
                    acq.retryAfterMs);
        return future;
    }
    ServedScenePtr scene = std::move(acq.scene);

    // Snap the camera onto the *requested tier's* quantization lattice
    // up front: the snapped camera is what gets rendered AND what keys
    // the cache, so a cache hit is bit-exact for the camera actually
    // served. If admission degrades the tier below, the spec is
    // re-snapped from the raw camera onto the served tier's lattice.
    CameraSpec spec = request.camera.quantized(
        latticeFor(static_cast<int>(request.quality)));
    TileRect roi = request.roi;
    if (roi.w == 0) {
        roi = {0, 0, spec.width, spec.height};
    }
    if (roi.w < 1 || roi.h < 1 || roi.x < 0 || roi.y < 0 ||
        roi.x + roi.w > spec.width || roi.y + roi.h > spec.height) {
        statBadRequest.fetch_add(1, std::memory_order_relaxed);
        finishEarly("bad_request");
        completeNow(promise, RequestStatus::BadRequest, 0);
        return future;
    }

    // Tile split (row-major over the roi).
    std::vector<TileRect> tiles;
    for (int ty = roi.y; ty < roi.y + roi.h; ty += cfg.tilePixels) {
        int th = std::min(cfg.tilePixels, roi.y + roi.h - ty);
        for (int tx = roi.x; tx < roi.x + roi.w; tx += cfg.tilePixels) {
            int tw = std::min(cfg.tilePixels, roi.x + roi.w - tx);
            tiles.push_back({tx, ty, tw, th});
        }
    }
    // Larger than the whole admission window: no amount of retrying
    // can ever admit it, so don't pretend the overload is transient.
    if (tiles.size() > static_cast<size_t>(cfg.maxQueueTiles)) {
        statBadRequest.fetch_add(1, std::memory_order_relaxed);
        finishEarly("bad_request");
        completeNow(promise, RequestStatus::BadRequest, 0);
        return future;
    }

    auto req = std::make_shared<Pending>(spec.makeCamera());
    req->id = nextRequestId.fetch_add(1, std::memory_order_relaxed);
    req->scene = std::move(scene);
    req->generation = req->scene->generation();
    req->rawSpec = request.camera;
    req->spec = spec;
    req->cameraKey =
        spec.hashKey(latticeFor(static_cast<int>(request.quality)));
    req->roi = roi;
    req->tier = request.quality;
    req->servedTier = static_cast<int>(request.quality);
    // minQuality values *better* than the requested tier are clamped
    // to it (a request cannot forbid the tier it asked for).
    req->minTier = std::max(static_cast<int>(request.quality),
                            static_cast<int>(request.minQuality));
    req->submitT = now();
    req->deadlineMs = request.deadlineMs;
    req->image = Image(roi.w, roi.h);
    req->remaining.store(static_cast<int>(tiles.size()),
                         std::memory_order_relaxed);
    req->promise = std::move(promise);
    req->trace = trace;
    req->ownsTrace = owns_trace;

    // servedTier may be mutated by the scheduler (deadline-risk check)
    // once the tiles are visible, so the predictor takes the admission
    // tier captured under the lock rather than re-reading the shared
    // field after publication.
    int admitted_tier = req->servedTier;
    {
        std::lock_guard<std::mutex> lock(queueMtx);
        if (stopping) {
            finishEarly("shutdown");
            completeNow(req->promise, RequestStatus::Shutdown, 0);
            return future;
        }
        // Backpressure: bounded admission over *outstanding* tiles
        // (queued + rendering). Past maxQueueTiles the request is
        // degraded one tier per full window of depth (when policy and
        // the request's minQuality allow) or rejected with a
        // load-proportional retry-after hint.
        const size_t outstanding =
            outstandingTiles.load(std::memory_order_relaxed);
        const size_t depth = outstanding + tiles.size();
        const size_t window = static_cast<size_t>(cfg.maxQueueTiles);
        if (depth > window) {
            bool admitted = false;
            if (cfg.degradeUnderLoad) {
                const size_t hard_cap =
                    cfg.maxQueueTilesDegraded > 0
                        ? static_cast<size_t>(cfg.maxQueueTilesDegraded)
                        : 4 * window;
                const int levels = static_cast<int>(std::min<size_t>(
                    (depth - 1) / window, numQualityTiers - 1));
                const int target = std::min(
                    std::min(static_cast<int>(request.quality) + levels,
                             numQualityTiers - 1),
                    req->minTier);
                if (depth <= hard_cap && target > req->servedTier) {
                    req->servedTier = target;
                    // Re-snap onto the served tier's lattice so the
                    // rendered camera and the cache key agree with the
                    // tier actually served.
                    const float lat = latticeFor(target);
                    req->spec = req->rawSpec.quantized(lat);
                    req->cameraKey = req->rawSpec.hashKey(lat);
                    req->camera = req->spec.makeCamera();
                    statAdmissionDegraded.fetch_add(
                        1, std::memory_order_relaxed);
                    if (trace)
                        trace->note(
                            "admission_degraded",
                            std::to_string(
                                target -
                                static_cast<int>(request.quality)));
                    admitted = true;
                }
            }
            if (!admitted) {
                const double scale =
                    static_cast<double>(
                        std::max(outstanding, window)) /
                    static_cast<double>(window);
                const int hint = std::max(
                    1, static_cast<int>(
                           std::ceil(cfg.retryAfterMs * scale)));
                statRejected.fetch_add(1, std::memory_order_relaxed);
                finishEarly("rejected");
                completeNow(req->promise, RequestStatus::Rejected,
                            hint);
                return future;
            }
        }
        // Two-level demand queue: deadline-bearing tiles go to the EDF
        // level keyed by absolute deadline (one request's tiles share
        // the key and stay contiguous), the rest keep arrival order.
        if (req->deadlineMs > 0.0) {
            const double deadline_at =
                req->submitT + req->deadlineMs / 1e3;
            for (const auto &t : tiles)
                deadlineQueue.emplace(deadline_at,
                                      TileJob{req, nullptr, t});
        } else {
            for (const auto &t : tiles)
                fifoQueue.push_back({req, nullptr, t});
        }
        uint64_t new_depth =
            outstandingTiles.fetch_add(tiles.size(),
                                       std::memory_order_relaxed) +
            tiles.size();
        uint64_t hw = statQueueHighwater.load(std::memory_order_relaxed);
        while (new_depth > hw &&
               !statQueueHighwater.compare_exchange_weak(
                   hw, new_depth, std::memory_order_relaxed)) {
        }
        admitted_tier = req->servedTier;
    }
    statAccepted.fetch_add(1, std::memory_order_relaxed);
    queueCv.notify_one();
    maybeEnqueuePrefetch(request, req->scene, roi, admitted_tier);
    return future;
}

namespace {

/** Viewer-map GC bound: least-recently-seen entries age out past it. */
constexpr size_t kMaxTrackedViewers = 1024;

bool
specsEqual(const CameraSpec &a, const CameraSpec &b)
{
    auto veq = [](const Vec3 &u, const Vec3 &v) {
        return u.x == v.x && u.y == v.y && u.z == v.z;
    };
    return veq(a.eye, b.eye) && veq(a.target, b.target) &&
           veq(a.up, b.up) && a.vfovDeg == b.vfovDeg &&
           a.width == b.width && a.height == b.height;
}

} // namespace

void
RenderService::maybeEnqueuePrefetch(const RenderRequest &request,
                                    const ServedScenePtr &scene,
                                    const TileRect &roi,
                                    int served_tier)
{
    if (!cfg.prefetch || request.viewerId.empty())
        return;

    // Record the observation on the fine (1/4096) lattice -- tier
    // switches must not perturb the velocity estimate -- then predict
    // the next frame under constant velocity from the last two specs.
    // Every observation bumps the viewer's epoch, superseding any
    // still-queued prediction: even a viewer that stops moving
    // invalidates the motion its old prediction extrapolated.
    const CameraSpec seen = request.camera.quantized();
    CameraSpec prev, last;
    std::shared_ptr<std::atomic<uint64_t>> epoch_ptr;
    uint64_t epoch = 0;
    {
        std::lock_guard<std::mutex> lock(viewerMtx);
        ViewerState &vs = viewers[request.viewerId];
        vs.lastTouch = ++viewerTouch;
        vs.history.push_back(seen);
        if (vs.history.size() >
            static_cast<size_t>(cfg.prefetchHistory))
            vs.history.erase(vs.history.begin());
        epoch = vs.epoch->fetch_add(1, std::memory_order_relaxed) + 1;
        epoch_ptr = vs.epoch;
        if (viewers.size() > kMaxTrackedViewers) {
            auto oldest = viewers.end();
            for (auto it = viewers.begin(); it != viewers.end(); ++it)
                if (it->first != request.viewerId &&
                    (oldest == viewers.end() ||
                     it->second.lastTouch < oldest->second.lastTouch))
                    oldest = it;
            if (oldest != viewers.end())
                viewers.erase(oldest);
        }
        if (vs.history.size() < 2)
            return;
        prev = vs.history[vs.history.size() - 2];
        last = vs.history.back();
    }
    if (specsEqual(prev, last))
        return; // Static viewer: nothing to extrapolate.

    CameraSpec pred = last;
    pred.eye = last.eye + (last.eye - prev.eye);
    pred.target = last.target + (last.target - prev.target);
    pred.up = last.up + (last.up - prev.up);
    pred.vfovDeg = last.vfovDeg + (last.vfovDeg - prev.vfovDeg);

    const float lat = latticeFor(served_tier);
    const CameraSpec spec = pred.quantized(lat);
    // A prediction that lands in the current frame's lattice cell is
    // already being rendered (and cached) by the demand request.
    if (specsEqual(spec, request.camera.quantized(lat)))
        return;

    auto batch = std::make_shared<PrefetchBatch>(spec.makeCamera());
    batch->scene = scene;
    batch->generation = scene->generation();
    batch->spec = spec;
    batch->cameraKey = spec.hashKey(lat);
    batch->tier = static_cast<QualityTier>(served_tier);
    batch->epoch = epoch;
    batch->viewerEpoch = std::move(epoch_ptr);

    size_t enqueued = 0;
    {
        std::lock_guard<std::mutex> lock(queueMtx);
        if (stopping)
            return;
        for (int ty = roi.y; ty < roi.y + roi.h; ty += cfg.tilePixels) {
            int th = std::min(cfg.tilePixels, roi.y + roi.h - ty);
            for (int tx = roi.x; tx < roi.x + roi.w;
                 tx += cfg.tilePixels) {
                int tw = std::min(cfg.tilePixels, roi.x + roi.w - tx);
                prefetchQueue.push_back(
                    {nullptr, batch, {tx, ty, tw, th}});
                enqueued++;
            }
        }
        // Bound the speculative backlog; the oldest predictions are
        // the stalest, so they cancel first.
        while (prefetchQueue.size() >
               static_cast<size_t>(cfg.maxPrefetchTiles)) {
            prefetchQueue.pop_front();
            statPrefetchCancelled.fetch_add(1,
                                            std::memory_order_relaxed);
        }
    }
    statPrefetchEnqueued.fetch_add(enqueued,
                                   std::memory_order_relaxed);
    queueCv.notify_one();
}

RenderResponse
RenderService::render(const RenderRequest &request)
{
    const double t0 = now();
    RenderResponse resp = submit(request).get();
    // Blocking callers absorb cold starts: wait for the single-flight
    // reload (bounded by the deadline when one is set, else until the
    // load settles) and resubmit. The attempt cap only guards against
    // a scene that keeps getting re-evicted between warm-up and
    // resubmission under extreme budget pressure.
    for (int attempt = 0;
         resp.status == RequestStatus::ColdStart && attempt < 4;
         attempt++) {
        double wait_ms = 0.0; // 0 = until the load settles
        if (request.deadlineMs > 0.0) {
            wait_ms = request.deadlineMs - (now() - t0) * 1000.0;
            if (wait_ms <= 0.0)
                break;
        }
        if (!registry.awaitWarm(request.sceneId, wait_ms))
            break;
        resp = submit(request).get();
    }
    // The blocking caller's latency includes every cold-start wait and
    // resubmission above, not just the final attempt's queue-to-finish
    // time -- restamp totalMs end-to-end (mirroring what ShardRouter
    // does for routed requests).
    resp.totalMs = (now() - t0) * 1e3;
    return resp;
}

void
RenderService::invalidateScene(const std::string &scene_id)
{
    cache.invalidateScene(scene_id);
}

void
RenderService::finishTile(const std::shared_ptr<Pending> &req,
                          bool rendered, bool from_cache)
{
    outstandingTiles.fetch_sub(1, std::memory_order_relaxed);
    if (rendered)
        req->tilesRendered.fetch_add(1, std::memory_order_relaxed);
    if (from_cache)
        req->tilesCached.fetch_add(1, std::memory_order_relaxed);
    if (req->remaining.fetch_sub(1, std::memory_order_acq_rel) != 1)
        return;

    // Last tile: whoever gets here completes the request.
    double t = now();
    RenderResponse resp;
    resp.status = static_cast<RequestStatus>(
        req->failStatus.load(std::memory_order_acquire));
    resp.image = std::move(req->image);
    resp.sceneGeneration = req->generation;
    resp.tilesRendered =
        req->tilesRendered.load(std::memory_order_relaxed);
    resp.tilesFromCache =
        req->tilesCached.load(std::memory_order_relaxed);
    double first =
        req->firstDequeueT.load(std::memory_order_relaxed);
    resp.queueMs =
        first > 0.0 ? (first - req->submitT) * 1e3 : 0.0;
    resp.totalMs = (t - req->submitT) * 1e3;
    resp.servedQuality = static_cast<QualityTier>(req->servedTier);
    resp.degradeLevels = req->servedTier - static_cast<int>(req->tier);
    if (resp.status == RequestStatus::Ok) {
        statServedTier[req->servedTier].fetch_add(
            1, std::memory_order_relaxed);
        if (resp.degradeLevels > 0)
            statDegraded.fetch_add(1, std::memory_order_relaxed);
    }
    if (resp.status == RequestStatus::DeadlineExceeded)
        statDeadline.fetch_add(1, std::memory_order_relaxed);
    statCompleted.fetch_add(1, std::memory_order_relaxed);
    histTotalMs->record(resp.totalMs);
    if (req->trace) {
        req->trace->note("status", requestStatusName(resp.status));
        req->trace->note("served_tier",
                         std::to_string(req->servedTier));
        if (resp.degradeLevels > 0)
            req->trace->note("degrade_levels",
                             std::to_string(resp.degradeLevels));
        if (req->ownsTrace)
            obs::TraceRing::global().complete(req->trace,
                                              resp.totalMs);
    }
    req->promise.set_value(std::move(resp));
}

void
RenderService::renderChunk(const Chunk &chunk, int rank)
{
    // Armed in tests/benches to widen the in-flight window and make
    // queue-depth scenarios reproducible on fast machines.
    fault::maybeDelay(fault::Point::ChunkRenderDelay);

    const bool tracing = obs::enabled();
    const double chunk_t0 = tracing ? now() : 0.0;

    Workspace &ws = workspaces[rank];
    ws.reset();

    Ray *rays = ws.alloc<Ray>(chunk.rays);
    RayResult *results = ws.alloc<RayResult>(chunk.rays);

    int off = 0;
    for (const auto &job : chunk.tiles) {
        const Camera &cam =
            job.req ? job.req->camera : job.pre->camera;
        for (int row = job.tile.y; row < job.tile.y + job.tile.h; row++)
            for (int col = job.tile.x; col < job.tile.x + job.tile.w;
                 col++)
                rays[off++] = cam.pixelRay(col, row);
    }

    chunk.scene->renderer(chunk.tier)
        .renderRays(chunk.scene->field(), rays, chunk.rays, results,
                    ws);

    const double t_rendered = tracing ? now() : 0.0;
    // When tracing, demand tiles retire *after* the chunk's spans
    // attach to their traces below, so a service-owned trace never
    // completes with its last render span still missing.
    std::vector<std::shared_ptr<Pending>> finished;

    const bool caching = cfg.cacheTiles > 0;
    off = 0;
    for (const auto &job : chunk.tiles) {
        if (job.pre) {
            // Speculative tile: pixels go to the cache only -- there
            // is no pending request to answer.
            const auto &pb = *job.pre;
            std::vector<Vec3> pixels(static_cast<size_t>(job.tile.w) *
                                     job.tile.h);
            for (int py = 0; py < job.tile.h; py++)
                for (int px = 0; px < job.tile.w; px++)
                    pixels[static_cast<size_t>(py) * job.tile.w + px] =
                        results[off++].color;
            TileKey key{pb.scene->id(), pb.generation, pb.cameraKey,
                        pb.spec, job.tile.x, job.tile.y, job.tile.w,
                        job.tile.h, pb.tier};
            cache.insert(key, std::move(pixels), /*prefetched=*/true);
            statPrefetchRendered.fetch_add(1,
                                           std::memory_order_relaxed);
            continue;
        }
        const auto &req = job.req;
        std::vector<Vec3> pixels;
        if (caching)
            pixels.resize(static_cast<size_t>(job.tile.w) *
                          job.tile.h);
        for (int py = 0; py < job.tile.h; py++) {
            for (int px = 0; px < job.tile.w; px++) {
                const Vec3 &color = results[off++].color;
                req->image.at(job.tile.x - req->roi.x + px,
                              job.tile.y - req->roi.y + py) = color;
                if (caching)
                    pixels[static_cast<size_t>(py) * job.tile.w +
                           px] = color;
            }
        }
        if (caching) {
            TileKey key{req->scene->id(), req->generation,
                        req->cameraKey, req->spec,
                        job.tile.x, job.tile.y, job.tile.w,
                        job.tile.h,
                        static_cast<QualityTier>(req->servedTier)};
            cache.insert(key, std::move(pixels));
        }

        statTilesRendered.fetch_add(1, std::memory_order_relaxed);
        if (tracing)
            finished.push_back(req);
        else
            finishTile(req, true, false);
    }
    // Prefetch rays are accounted separately so demand-side
    // throughput metrics (rays/chunk) keep their meaning.
    if (chunk.speculative)
        statPrefetchRays.fetch_add(static_cast<uint64_t>(chunk.rays),
                                   std::memory_order_relaxed);
    else
        statRays.fetch_add(static_cast<uint64_t>(chunk.rays),
                           std::memory_order_relaxed);

    if (tracing) {
        const double t_done = now();
        histChunkMs->record((t_rendered - chunk_t0) * 1e3);

        // One render + scatter span per distinct participating
        // request; one request's tiles are contiguous in the chunk,
        // so a pointer change marks a new request.
        obs::RequestTrace *last_trace = nullptr;
        for (const auto &job : chunk.tiles) {
            if (!job.req || !job.req->trace ||
                job.req->trace.get() == last_trace)
                continue;
            last_trace = job.req->trace.get();
            obs::TraceSpan render_span;
            render_span.name = "serve.render_chunk";
            render_span.beginT = chunk_t0;
            render_span.endT = t_rendered;
            render_span.trackGroup = obsGroup;
            render_span.track = rank + 1;
            render_span.args = {{"rays", std::to_string(chunk.rays)}};
            last_trace->addSpan(std::move(render_span));
            obs::TraceSpan scatter_span;
            scatter_span.name = "serve.cache_scatter";
            scatter_span.beginT = t_rendered;
            scatter_span.endT = t_done;
            scatter_span.trackGroup = obsGroup;
            scatter_span.track = rank + 1;
            last_trace->addSpan(std::move(scatter_span));
        }
        for (const auto &req : finished)
            finishTile(req, true, false);

        // The request-less worker-activity span goes last: it only
        // feeds the Perfetto timeline, so the global ring lock stays
        // off the client-wakeup critical path above.
        obs::TraceSpan act;
        act.name = chunk.speculative ? "serve.prefetch_chunk"
                                     : "serve.render_chunk";
        act.beginT = chunk_t0;
        act.endT = t_done;
        act.trackGroup = obsGroup;
        act.track = rank + 1; // tid 0 is the scheduler.
        act.args = {{"rays", std::to_string(chunk.rays)},
                    {"tiles", std::to_string(chunk.tiles.size())}};
        obs::TraceRing::global().recordActivity(std::move(act));
    }
}

void
RenderService::schedulerLoop()
{
    for (;;) {
        std::vector<TileJob> drained;
        bool stop_now = false;
        {
            std::unique_lock<std::mutex> lock(queueMtx);
            queueCv.wait(lock, [&] {
                return stopping || !deadlineQueue.empty() ||
                       !fifoQueue.empty() || !prefetchQueue.empty();
            });
            stop_now = stopping;
            if (stop_now) {
                // Take everything: demand tiles resolve Shutdown
                // below; speculative tiles are simply dropped.
                for (auto &kv : deadlineQueue)
                    drained.push_back(std::move(kv.second));
                deadlineQueue.clear();
                drained.insert(
                    drained.end(),
                    std::make_move_iterator(fifoQueue.begin()),
                    std::make_move_iterator(fifoQueue.end()));
                fifoQueue.clear();
                statPrefetchCancelled.fetch_add(
                    prefetchQueue.size(), std::memory_order_relaxed);
                prefetchQueue.clear();
            } else {
                // Budget-bounded pull in priority order: the EDF level
                // (earliest absolute deadline first) ahead of the FIFO
                // level, so an urgent late arrival overtakes queued
                // no-deadline tiles at the next pass. Speculative
                // tiles dispatch only when no demand tile is queued,
                // and at most one chunk's worth per pass so a demand
                // arrival waits behind a single prefetch chunk at
                // worst.
                const long budget =
                    static_cast<long>(pool->threadCount()) *
                    cfg.chunkRays;
                long rays = 0;
                while (!deadlineQueue.empty() && rays < budget) {
                    auto it = deadlineQueue.begin();
                    rays += static_cast<long>(it->second.tile.w) *
                            it->second.tile.h;
                    drained.push_back(std::move(it->second));
                    deadlineQueue.erase(it);
                }
                while (!fifoQueue.empty() && rays < budget) {
                    TileJob &front = fifoQueue.front();
                    rays += static_cast<long>(front.tile.w) *
                            front.tile.h;
                    drained.push_back(std::move(front));
                    fifoQueue.pop_front();
                }
                if (drained.empty()) {
                    long spec_rays = 0;
                    while (!prefetchQueue.empty() &&
                           spec_rays < cfg.chunkRays) {
                        TileJob &front = prefetchQueue.front();
                        spec_rays += static_cast<long>(front.tile.w) *
                                     front.tile.h;
                        drained.push_back(std::move(front));
                        prefetchQueue.pop_front();
                    }
                }
            }
            // outstandingTiles stays up: drained demand tiles are
            // still in flight until finishTile() retires them.
        }

        if (stop_now) {
            for (auto &job : drained) {
                if (!job.req)
                    continue;
                job.req->markFailed(RequestStatus::Shutdown);
                finishTile(job.req, false, false);
            }
            return;
        }

        // Armed in tests/benches to stall dispatch and let the
        // admission queue build up deterministically.
        fault::maybeDelay(fault::Point::SchedulerStall);

        const double t = now();
        std::vector<Chunk> chunks;
        // Open chunk per (scene, tier) coalescing key, so tiles from
        // different requests to the same model pack into one stream.
        // A pass is all-demand or all-speculative, so a chunk never
        // mixes the two classes.
        std::map<std::pair<ServedScene *, int>, size_t> open;
        auto packTile = [&](ServedScene *sc, QualityTier tier,
                            bool speculative, TileJob &&job) {
            const int tile_rays = job.tile.w * job.tile.h;
            auto ckey = std::make_pair(sc, static_cast<int>(tier));
            auto it = open.find(ckey);
            if (it == open.end() ||
                chunks[it->second].rays + tile_rays > cfg.chunkRays) {
                Chunk c;
                c.scene = sc;
                c.tier = tier;
                c.speculative = speculative;
                open[ckey] = chunks.size();
                chunks.push_back(std::move(c));
                it = open.find(ckey);
            }
            Chunk &c = chunks[it->second];
            c.rays += tile_rays;
            c.tiles.push_back(std::move(job));
        };

        for (auto &job : drained) {
            if (job.pre) {
                // Speculative tile: cancel (never render) when a newer
                // prediction for the viewer superseded this batch or
                // demand traffic already rendered the key.
                const auto &pb = *job.pre;
                TileKey key{pb.scene->id(), pb.generation,
                            pb.cameraKey, pb.spec, job.tile.x,
                            job.tile.y, job.tile.w, job.tile.h,
                            pb.tier};
                if (pb.superseded() || cache.contains(key)) {
                    statPrefetchCancelled.fetch_add(
                        1, std::memory_order_relaxed);
                    continue;
                }
                ServedScene *sc = pb.scene.get();
                packTile(sc, pb.tier, true, std::move(job));
                continue;
            }
            const auto &req = job.req;
            double expected = 0.0;
            if (req->firstDequeueT.compare_exchange_strong(
                    expected, t, std::memory_order_relaxed)) {
                // First dequeue of this request: its admission-queue
                // wait is settled.
                histQueueMs->record((t - req->submitT) * 1e3);
                if (req->trace) {
                    obs::TraceSpan span;
                    span.name = "serve.queue_wait";
                    span.beginT = req->submitT;
                    span.endT = t;
                    span.trackGroup = obsGroup;
                    span.track = 0; // Scheduler track.
                    req->trace->addSpan(std::move(span));
                }
            }

            if (req->failed()) {
                finishTile(req, false, false);
                continue;
            }
            if (req->deadlineMs > 0.0 &&
                (t - req->submitT) * 1e3 > req->deadlineMs) {
                req->markFailed(RequestStatus::DeadlineExceeded);
                finishTile(req, false, false);
                continue;
            }
            // Deadline-risk degradation, decided once per request at
            // its first dequeue. Only the scheduler thread runs this,
            // and the scheduler blocks in the dispatch below until the
            // pass's chunks complete -- so the tier (and the re-snap
            // onto its lattice) is settled before any of the request's
            // tiles dispatch, even when a large request's tiles pull
            // across several passes.
            if (!req->deadlineChecked) {
                req->deadlineChecked = true;
                if (cfg.degradeUnderLoad && req->deadlineMs > 0.0 &&
                    (t - req->submitT) * 1e3 >
                        cfg.deadlineRiskFraction * req->deadlineMs &&
                    req->servedTier < req->minTier) {
                    req->servedTier++;
                    const float lat = latticeFor(req->servedTier);
                    req->spec = req->rawSpec.quantized(lat);
                    req->cameraKey = req->rawSpec.hashKey(lat);
                    req->camera = req->spec.makeCamera();
                    statDeadlineDegraded.fetch_add(
                        1, std::memory_order_relaxed);
                    if (req->trace)
                        req->trace->note("deadline_degraded", "1");
                }
            }
            const QualityTier served =
                static_cast<QualityTier>(req->servedTier);

            TileKey key{req->scene->id(), req->generation,
                        req->cameraKey, req->spec, job.tile.x,
                        job.tile.y, job.tile.w, job.tile.h,
                        served};
            std::vector<Vec3> pixels;
            if (cache.lookup(key, pixels)) {
                for (int py = 0; py < job.tile.h; py++)
                    for (int px = 0; px < job.tile.w; px++)
                        req->image.at(
                            job.tile.x - req->roi.x + px,
                            job.tile.y - req->roi.y + py) =
                            pixels[static_cast<size_t>(py) *
                                       job.tile.w +
                                   px];
                statTilesCached.fetch_add(1,
                                          std::memory_order_relaxed);
                finishTile(req, false, true);
                continue;
            }

            ServedScene *sc = req->scene.get();
            packTile(sc, served, false, std::move(job));
        }

        const bool tracing = obs::enabled();
        if (!chunks.empty()) {
            for (const auto &c : chunks) {
                if (c.speculative)
                    continue; // Demand-side coalescing metrics only.
                statChunks.fetch_add(1, std::memory_order_relaxed);
                uint64_t distinct = 0;
                uint64_t last_id = 0;
                for (const auto &tj : c.tiles) {
                    if (distinct == 0 || tj.req->id != last_id) {
                        // Tiles of one request are queued contiguously
                        // (EDF keeps equal deadlines in arrival order),
                        // so id changes count distinct requests.
                        distinct++;
                        last_id = tj.req->id;
                    }
                }
                if (distinct > 1)
                    statCrossChunks.fetch_add(
                        1, std::memory_order_relaxed);
            }
            pool->parallelFor(
                static_cast<int>(chunks.size()),
                [&](int c, int rank) { renderChunk(chunks[c], rank); });
        }
        if (tracing && !drained.empty()) {
            obs::TraceSpan pass;
            pass.name = "serve.scheduler_pass";
            pass.beginT = t;
            pass.endT = now();
            pass.trackGroup = obsGroup;
            pass.track = 0;
            pass.args = {{"tiles", std::to_string(drained.size())},
                         {"chunks", std::to_string(chunks.size())}};
            obs::TraceRing::global().recordActivity(std::move(pass));
        }
    }
}

ServeStats
RenderService::stats() const
{
    ServeStats s;
    s.requestsAccepted = statAccepted.load(std::memory_order_relaxed);
    s.requestsCompleted = statCompleted.load(std::memory_order_relaxed);
    s.requestsRejected = statRejected.load(std::memory_order_relaxed);
    s.requestsDeadlineExceeded =
        statDeadline.load(std::memory_order_relaxed);
    s.requestsUnknownScene =
        statUnknownScene.load(std::memory_order_relaxed);
    s.requestsBadRequest =
        statBadRequest.load(std::memory_order_relaxed);
    s.requestsColdStart =
        statColdStart.load(std::memory_order_relaxed);
    s.requestsSceneUnavailable =
        statSceneUnavailable.load(std::memory_order_relaxed);
    s.tilesRendered = statTilesRendered.load(std::memory_order_relaxed);
    s.tilesFromCache = statTilesCached.load(std::memory_order_relaxed);
    s.raysRendered = statRays.load(std::memory_order_relaxed);
    s.chunksRendered = statChunks.load(std::memory_order_relaxed);
    s.crossRequestChunks =
        statCrossChunks.load(std::memory_order_relaxed);
    s.queueDepthHighwater =
        statQueueHighwater.load(std::memory_order_relaxed);
    s.requestsDegraded = statDegraded.load(std::memory_order_relaxed);
    s.admissionDegradations =
        statAdmissionDegraded.load(std::memory_order_relaxed);
    s.deadlineDegradations =
        statDeadlineDegraded.load(std::memory_order_relaxed);
    for (int t = 0; t < numQualityTiers; t++)
        s.requestsServedPerTier[t] =
            statServedTier[t].load(std::memory_order_relaxed);
    s.prefetchTilesEnqueued =
        statPrefetchEnqueued.load(std::memory_order_relaxed);
    s.prefetchTilesRendered =
        statPrefetchRendered.load(std::memory_order_relaxed);
    s.prefetchTilesCancelled =
        statPrefetchCancelled.load(std::memory_order_relaxed);
    s.prefetchRaysRendered =
        statPrefetchRays.load(std::memory_order_relaxed);
    const TileCache::Stats cs = cache.stats();
    for (int t = 0; t < numQualityTiers; t++) {
        s.cacheHitsPerTier[t] = cs.tierHits[t];
        s.cacheMissesPerTier[t] = cs.tierMisses[t];
    }
    s.prefetchHits = cs.prefetchHits;
    s.prefetchWasted = cs.prefetchWasted;
    return s;
}

} // namespace instant3d
