/**
 * @file
 * Fault-tolerant shard router: a fleet front end over N in-process
 * RenderService shards.
 *
 * One RenderService is one failure domain -- a crash or stall takes
 * every scene it serves down with it. The ShardRouter composes N
 * services into a fleet that survives shard death, stalls, and
 * overload:
 *
 *  - **Placement**: scenes are placed on R shards (replication factor)
 *    by rendezvous (highest-random-weight) consistent hashing, so
 *    placement is a pure function of (scene id, shard index) and
 *    adding or removing a shard moves only the scenes that must move.
 *    Replicas share one canonical ServedScene through the registry's
 *    ref-count seam (SceneRegistry::publishShared), so every replica
 *    serves bit-identical Full-tier pixels by construction.
 *  - **Health / circuit breaker**: each shard carries a three-state
 *    breaker (Closed -> Open after breakerFailureThreshold consecutive
 *    Failed/Timeout/Crashed outcomes -> HalfOpen after breakerOpenMs,
 *    admitting one probe -> Closed on probe success, Open on failure).
 *    Backpressure rejections never trip the breaker: a busy shard is
 *    not a sick shard.
 *  - **Failover / retry**: a failed attempt re-dispatches to the next
 *    live replica with exponential backoff, bounded by maxAttempts and
 *    the request deadline (deadline-aware: the router gives up with
 *    DeadlineExceeded rather than retrying into a dead deadline).
 *  - **Hedging** (optional): when a dispatch has produced no response
 *    after hedgeDelayMs, a second replica gets the same request and
 *    the first response wins; the loser is abandoned (its work is the
 *    classic hedging waste). Exactly one response reaches the client.
 *  - **Drain**: drainShard() stops new admissions to a shard, re-places
 *    its scenes on live replicas (restoring R where possible), lets
 *    every queued and in-flight tile complete, then stops the shard --
 *    no queued request is failed by a drain.
 *
 * Fleet fault points (`shard.fail`, `shard.stall`, `shard.crash`) are
 * threaded through the dispatch path, so failover, breaker
 * transitions, and hedge races replay deterministically under
 * INSTANT3D_FAULTS (see common/fault_injection.hh).
 *
 * Determinism contract: a scene's replicas are one shared model, and
 * every RenderService preserves the Full-tier bit-identity contract,
 * so a Full-tier pixel served through the router is bit-identical to
 * Trainer::renderImage regardless of replica choice, failover
 * history, hedging, or drain timing.
 */

#ifndef INSTANT3D_SERVE_SHARD_ROUTER_HH
#define INSTANT3D_SERVE_SHARD_ROUTER_HH

#include <atomic>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/render_service.hh"
#include "serve/scene_registry.hh"

namespace instant3d {

/** Fleet tuning knobs. */
struct ShardRouterConfig
{
    /** Number of RenderService shards (failure domains); max 32. */
    int numShards = 4;

    /** Replicas per scene; clamped to numShards at placement time. */
    int replication = 2;

    /**
     * Per-shard service configuration (workers, queue, cache,
     * per-tier camera lattices, speculative prefetch...). The
     * lattice/prefetch knobs flow through unchanged to every shard;
     * the router additionally keys its replica-affinity rotation on
     * the requested tier's lattice so one coarse preview cell sticks
     * to one replica's cache, and fleetStats() sums the per-shard
     * cache/prefetch counters fleet-wide.
     */
    RenderServiceConfig shard;

    /**
     * Per-shard registry capacity policy (byte budget, loader cap).
     * With a budget set, each shard evicts its own LRU scenes and
     * cold-starts them back on demand; the router fails requests over
     * to a warm replica while a cold one reloads. Defaults to
     * unlimited (the pre-capacity fleet behavior).
     */
    SceneRegistryConfig registry;

    /**
     * Router dispatcher threads. Each in-flight routed request
     * occupies one dispatcher for its whole retry/hedge state machine,
     * so this bounds router-level concurrency (shard-level concurrency
     * is the shards' own admission queues).
     */
    int routerThreads = 2;

    /** Dispatch attempts per request (first try + failovers). */
    int maxAttempts = 3;

    /**
     * Backoff before retry attempt k is retryBackoffMs << (k-1),
     * truncated to the request's remaining deadline.
     */
    int retryBackoffMs = 1;

    /**
     * Per-attempt shard timeout in ms; an attempt with no response in
     * time counts a Timeout outcome and fails over. 0 disables (the
     * router then waits on the shard indefinitely, or until the
     * request deadline).
     */
    double shardTimeoutMs = 0.0;

    /** Dispatch a hedge to a second replica after hedgeDelayMs. */
    bool hedgeRequests = false;
    double hedgeDelayMs = 20.0;

    /** Consecutive failures/timeouts that open a shard's breaker. */
    int breakerFailureThreshold = 3;

    /** Open -> HalfOpen cooldown in ms. */
    double breakerOpenMs = 100.0;
};

/**
 * The fleet front end. Owns N shards (each a SceneRegistry +
 * RenderService pair), a master registry of canonical scenes, and the
 * dispatcher threads running the routing state machine.
 */
class ShardRouter
{
  public:
    explicit ShardRouter(const ShardRouterConfig &router_config);
    ~ShardRouter();

    ShardRouter(const ShardRouter &) = delete;
    ShardRouter &operator=(const ShardRouter &) = delete;

    /**
     * Snapshot a live trainer and place the scene on R shards.
     * Returns the published generation (0 on failure).
     */
    uint64_t addScene(const std::string &id, Trainer &trainer);

    /** Checkpoint-file variant of addScene (same retry semantics as
     *  SceneRegistry::registerFromCheckpoint). */
    uint64_t addSceneFromCheckpoint(const std::string &id,
                                    const SceneSpec &spec,
                                    const std::string &path);

    /**
     * Current replica set of a scene, in rendezvous preference order.
     * Empty when the scene is unknown or every replica is gone.
     */
    std::vector<int> placement(const std::string &id) const;

    /**
     * Route a request: returns a future resolving once a replica
     * serves it, every attempt is exhausted, or the deadline passes.
     * Fleet-level failures surface as RequestStatus::Rejected with a
     * retry hint (the condition is retryable: breakers half-open,
     * crashed shards get their scenes re-placed).
     */
    std::future<RenderResponse> submit(const RenderRequest &request);

    /** Blocking convenience wrapper: submit() and wait. */
    RenderResponse render(const RenderRequest &request);

    /**
     * Gracefully drain shard `s`: stop new admissions, re-place its
     * scenes on live replicas, wait for its queued + in-flight tiles
     * to complete (no queued request is failed), then stop it. Blocks
     * until the shard is idle. False when `s` is already dead or
     * draining.
     */
    bool drainShard(int s);

    /**
     * Abrupt shard death (what the `shard.crash` fault point calls):
     * the service stops dead -- its queued requests resolve Shutdown
     * (the router's routing loop sees those as Crashed outcomes and
     * fails over) -- and its scenes are re-placed on live shards.
     */
    void killShard(int s);

    bool shardAlive(int s) const;
    BreakerState breakerState(int s) const;

    int numShards() const { return static_cast<int>(shards.size()); }

    /** The shard's service, for stats and tests; never null. */
    const RenderService &shardService(int s) const;

    /** The shard's registry (capacity stats, manual eviction -- an
     *  ops/test seam; placement itself stays router-driven). */
    SceneRegistry &shardRegistry(int s);

    FleetStats fleetStats() const;

  private:
    struct Shard;
    struct Job;
    struct Dispatch;

    void dispatcherLoop();
    RenderResponse routeOne(const RenderRequest &request,
                            double submit_t);
    int pickReplica(const std::vector<int> &order, uint32_t tried);
    Dispatch dispatchTo(int s, const RenderRequest &request);
    void recordOutcome(int s, ShardOutcome outcome);
    void crashShard(int s, bool count_crash);
    void replaceScenesOf(int s);
    void seedPlacement(const std::string &id);
    std::vector<int> rendezvousOrder(const std::string &id) const;
    std::vector<int> placementSnapshot(const std::string &id) const;

    ShardRouterConfig cfg;
    SceneRegistry master; //!< Canonical scenes (source for re-placement).

    std::vector<std::unique_ptr<Shard>> shards;

    mutable std::mutex placementMtx;
    std::unordered_map<std::string, std::vector<int>> placements;

    std::mutex jobMtx;
    std::condition_variable jobCv;
    std::deque<std::unique_ptr<Job>> jobs;
    bool jobStopping = false;
    std::atomic<bool> stopping{false};
    std::vector<std::thread> dispatchers;

    std::atomic<uint64_t> statRouted{0}, statFailovers{0},
        statRetries{0}, statHedgesIssued{0}, statHedgesWon{0},
        statCrashes{0}, statDrains{0}, statNoReplica{0},
        statColdStartFailovers{0};

    // Telemetry (src/obs/): the router's Perfetto track group, its
    // metrics-collector handle, and the routed-latency histogram.
    int obsGroup = 0;
    uint64_t obsCollector = 0;
    obs::LatencyHistogram *histRouteMs = nullptr;
};

} // namespace instant3d

#endif // INSTANT3D_SERVE_SHARD_ROUTER_HH
