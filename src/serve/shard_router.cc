#include "serve/shard_router.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/fault_injection.hh"
#include "common/stats.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"

namespace instant3d {

namespace {

/** FNV-1a over (scene id, shard index): the rendezvous weight. */
uint64_t
rendezvousWeight(const std::string &id, int s)
{
    uint64_t h = 1469598103934665603ULL;
    for (char c : id) {
        h ^= static_cast<uint8_t>(c);
        h *= 1099511628211ULL;
    }
    h ^= static_cast<uint64_t>(s) + 0x9e3779b97f4a7c15ULL;
    h *= 1099511628211ULL;
    h ^= h >> 29;
    return h;
}

constexpr auto pollInterval = std::chrono::microseconds(300);

} // namespace

/**
 * One failure domain: a private registry + service, plus the health
 * state the router tracks about it. `mtx` guards the mutable health
 * fields *and* serializes the submit handoff against drain/crash flag
 * flips (so a drain that has set `draining` is guaranteed no further
 * admissions). Lock order: placementMtx may be held while taking a
 * shard mtx, never the reverse; two shard mutexes are never held at
 * once.
 */
struct ShardRouter::Shard
{
    explicit Shard(const SceneRegistryConfig &registry_config)
        : registry(registry_config) {}

    SceneRegistry registry;
    std::unique_ptr<RenderService> service;

    mutable std::mutex mtx;
    bool alive = true;
    bool draining = false;
    BreakerState breaker = BreakerState::Closed;
    int consecutiveFailures = 0;
    double openedAt = 0.0;    //!< When the breaker last opened.
    bool probeInFlight = false;

    std::atomic<uint64_t> nDispatched{0}, nServed{0}, nFailed{0},
        nRejected{0}, nTimeouts{0}, nBreakerOpens{0},
        nBreakerHalfOpens{0}, nBreakerCloses{0}, nColdStarts{0};
};

/** One routed request waiting for a dispatcher. */
struct ShardRouter::Job
{
    std::promise<RenderResponse> promise;
    RenderRequest request;
    double submitT = 0.0;
    /** The router began request.trace (and so completes it). */
    bool ownsTrace = false;
};

/**
 * One router->shard dispatch. Either a live future from the shard's
 * service, or an immediately-faulted outcome (fault injection or a
 * dead/draining shard caught at handoff). `readyAfter` is the
 * shard.stall mask: the response is not *observable* before that
 * instant even if the future resolves earlier -- modeling a slow
 * replica without blocking a dispatcher thread in a sleep.
 */
struct ShardRouter::Dispatch
{
    int shard = -1;
    bool issued = false;
    std::future<RenderResponse> fut;
    double readyAfter = 0.0;
    ShardOutcome fault = ShardOutcome::Ok; //!< Valid when !issued.
    bool hedge = false;
    double startT = 0.0;
};

ShardRouter::ShardRouter(const ShardRouterConfig &router_config)
    : cfg(router_config)
{
    // The tried-set is a uint32_t bitmask, hence the 32-shard ceiling.
    cfg.numShards = std::min(32, std::max(1, cfg.numShards));
    cfg.replication = std::min(cfg.numShards,
                               std::max(1, cfg.replication));
    cfg.routerThreads = std::max(1, cfg.routerThreads);
    cfg.maxAttempts = std::max(1, cfg.maxAttempts);
    cfg.retryBackoffMs = std::max(0, cfg.retryBackoffMs);
    cfg.shardTimeoutMs = std::max(0.0, cfg.shardTimeoutMs);
    cfg.hedgeDelayMs = std::max(0.0, cfg.hedgeDelayMs);
    cfg.breakerFailureThreshold =
        std::max(1, cfg.breakerFailureThreshold);
    cfg.breakerOpenMs = std::max(0.0, cfg.breakerOpenMs);

    shards.reserve(static_cast<size_t>(cfg.numShards));
    for (int s = 0; s < cfg.numShards; s++) {
        auto shard = std::make_unique<Shard>(cfg.registry);
        shard->service = std::make_unique<RenderService>(
            shard->registry, cfg.shard);
        shards.push_back(std::move(shard));
    }

    obsGroup = obs::nextTrackGroup();
    obs::TraceRing::global().setTrackName(
        obsGroup, "shard-router-" + std::to_string(obsGroup));
    auto &metrics = obs::MetricsRegistry::global();
    histRouteMs = &metrics.histogram("router.total_ms");
    // The collector mirrors only the router's own atomics; per-shard
    // serve counters are already collected by each shard's service.
    obsCollector = metrics.addCollector([this](obs::MetricsSink &sink) {
        sink.counter("router.requests_routed", statRouted.load());
        sink.counter("router.failovers", statFailovers.load());
        sink.counter("router.retries", statRetries.load());
        sink.counter("router.hedges_issued", statHedgesIssued.load());
        sink.counter("router.hedges_won", statHedgesWon.load());
        sink.counter("router.shards_crashed", statCrashes.load());
        sink.counter("router.shards_drained", statDrains.load());
        sink.counter("router.no_replica_available",
                     statNoReplica.load());
        sink.counter("router.cold_start_failovers",
                     statColdStartFailovers.load());
    });

    dispatchers.reserve(static_cast<size_t>(cfg.routerThreads));
    for (int t = 0; t < cfg.routerThreads; t++)
        dispatchers.emplace_back([this] { dispatcherLoop(); });
}

ShardRouter::~ShardRouter()
{
    obs::MetricsRegistry::global().removeCollector(obsCollector);
    stopping.store(true, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lock(jobMtx);
        jobStopping = true;
    }
    jobCv.notify_all();
    for (auto &t : dispatchers)
        t.join();
    // Dispatchers drain the queue (routeOne answers Shutdown once
    // `stopping` is set); anything left never reached a dispatcher.
    for (auto &job : jobs) {
        RenderResponse resp;
        resp.status = RequestStatus::Shutdown;
        job->promise.set_value(std::move(resp));
    }
    // Shard services stop in their destructors (queued shard requests
    // resolve Shutdown; no router-side future is still waiting).
}

// ----------------------------------------------------------- scenes

uint64_t
ShardRouter::addScene(const std::string &id, Trainer &trainer)
{
    uint64_t gen = master.registerFromTrainer(id, trainer);
    if (gen == 0)
        return 0;
    seedPlacement(id);
    return gen;
}

uint64_t
ShardRouter::addSceneFromCheckpoint(const std::string &id,
                                    const SceneSpec &spec,
                                    const std::string &path)
{
    uint64_t gen = master.registerFromCheckpoint(id, spec, path);
    if (gen == 0)
        return 0;
    seedPlacement(id);
    return gen;
}

std::vector<int>
ShardRouter::rendezvousOrder(const std::string &id) const
{
    std::vector<int> order(shards.size());
    for (size_t s = 0; s < shards.size(); s++)
        order[s] = static_cast<int>(s);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        uint64_t wa = rendezvousWeight(id, a);
        uint64_t wb = rendezvousWeight(id, b);
        return wa != wb ? wa > wb : a < b;
    });
    return order;
}

void
ShardRouter::seedPlacement(const std::string &id)
{
    ServedScenePtr scene = master.acquire(id);
    if (!scene)
        return;
    std::vector<int> order = rendezvousOrder(id);

    std::lock_guard<std::mutex> place_lock(placementMtx);
    std::vector<int> placed;
    for (int s : order) {
        if (static_cast<int>(placed.size()) >= cfg.replication)
            break;
        Shard &shard = *shards[static_cast<size_t>(s)];
        {
            std::lock_guard<std::mutex> lock(shard.mtx);
            if (!shard.alive || shard.draining)
                continue;
        }
        shard.registry.publishShared(id, scene);
        placed.push_back(s);
    }
    placements[id] = std::move(placed);
}

std::vector<int>
ShardRouter::placementSnapshot(const std::string &id) const
{
    std::lock_guard<std::mutex> lock(placementMtx);
    auto it = placements.find(id);
    return it == placements.end() ? std::vector<int>{} : it->second;
}

std::vector<int>
ShardRouter::placement(const std::string &id) const
{
    return placementSnapshot(id);
}

void
ShardRouter::replaceScenesOf(int s)
{
    std::lock_guard<std::mutex> place_lock(placementMtx);
    for (auto &kv : placements) {
        auto &replicas = kv.second;
        auto pos = std::find(replicas.begin(), replicas.end(), s);
        if (pos == replicas.end())
            continue;
        replicas.erase(pos);

        // Restore the replication factor on the next live shard in
        // rendezvous preference order. Re-placement is a pointer
        // insert of the canonical scene, not a model copy or reload.
        for (int cand : rendezvousOrder(kv.first)) {
            if (std::find(replicas.begin(), replicas.end(), cand) !=
                replicas.end())
                continue;
            Shard &shard = *shards[static_cast<size_t>(cand)];
            {
                std::lock_guard<std::mutex> lock(shard.mtx);
                if (!shard.alive || shard.draining)
                    continue;
            }
            ServedScenePtr scene = master.acquire(kv.first);
            if (scene) {
                shard.registry.publishShared(kv.first, scene);
                replicas.push_back(cand);
            }
            break;
        }
    }
}

// ----------------------------------------------------------- health

void
ShardRouter::recordOutcome(int s, ShardOutcome outcome)
{
    Shard &shard = *shards[static_cast<size_t>(s)];
    switch (outcome) {
    case ShardOutcome::Ok: shard.nServed.fetch_add(1); break;
    case ShardOutcome::Rejected: shard.nRejected.fetch_add(1); break;
    case ShardOutcome::Timeout: shard.nTimeouts.fetch_add(1); break;
    case ShardOutcome::Failed:
    case ShardOutcome::Crashed: shard.nFailed.fetch_add(1); break;
    case ShardOutcome::ColdStart: shard.nColdStarts.fetch_add(1); break;
    }

    std::lock_guard<std::mutex> lock(shard.mtx);
    shard.probeInFlight = false;
    switch (outcome) {
    case ShardOutcome::Ok:
        shard.consecutiveFailures = 0;
        if (shard.breaker == BreakerState::HalfOpen) {
            shard.breaker = BreakerState::Closed;
            shard.nBreakerCloses.fetch_add(1);
        }
        break;
    case ShardOutcome::Rejected:
        // Backpressure is breaker-neutral: a busy shard is not a sick
        // shard. A rejected half-open probe neither closes nor reopens
        // the breaker -- the next candidate pass probes again.
        break;
    case ShardOutcome::ColdStart:
        // Breaker-neutral for the same reason: a shard reloading an
        // evicted scene is healthy, just cold for this scene. The
        // router fails over; the reload proceeds in the background.
        break;
    case ShardOutcome::Timeout:
    case ShardOutcome::Failed:
    case ShardOutcome::Crashed:
        shard.consecutiveFailures++;
        if (shard.breaker == BreakerState::HalfOpen ||
            (shard.breaker == BreakerState::Closed &&
             shard.consecutiveFailures >= cfg.breakerFailureThreshold)) {
            shard.breaker = BreakerState::Open;
            shard.openedAt = monotonicSeconds();
            shard.nBreakerOpens.fetch_add(1);
        }
        break;
    }
}

int
ShardRouter::pickReplica(const std::vector<int> &order, uint32_t tried)
{
    double now = monotonicSeconds();
    for (int s : order) {
        if (tried & (1u << s))
            continue;
        Shard &shard = *shards[static_cast<size_t>(s)];
        std::lock_guard<std::mutex> lock(shard.mtx);
        if (!shard.alive || shard.draining)
            continue;
        switch (shard.breaker) {
        case BreakerState::Closed:
            return s;
        case BreakerState::Open:
            // Lazy Open -> HalfOpen at candidate selection: the
            // cooldown has no timer thread; the first request to look
            // at the shard after breakerOpenMs becomes the probe.
            if (now - shard.openedAt >= cfg.breakerOpenMs / 1e3) {
                shard.breaker = BreakerState::HalfOpen;
                shard.nBreakerHalfOpens.fetch_add(1);
                shard.probeInFlight = true;
                return s;
            }
            break;
        case BreakerState::HalfOpen:
            if (!shard.probeInFlight) {
                shard.probeInFlight = true;
                return s;
            }
            break;
        }
    }
    return -1;
}

// --------------------------------------------------------- dispatch

ShardRouter::Dispatch
ShardRouter::dispatchTo(int s, const RenderRequest &request)
{
    Dispatch d;
    d.shard = s;
    d.startT = monotonicSeconds();

    // Fleet fault points, checked in dispatch order. A crash takes
    // the whole shard down (scenes re-place; queued shard requests
    // resolve Shutdown); a fail costs only this attempt; a stall
    // delays observability of the response without holding a thread.
    if (fault::shouldFire(fault::Point::ShardCrash)) {
        crashShard(s, true);
        d.fault = ShardOutcome::Crashed;
        return d;
    }
    if (fault::shouldFire(fault::Point::ShardFail)) {
        d.fault = ShardOutcome::Failed;
        return d;
    }
    bool stalled = fault::shouldFire(fault::Point::ShardStall);

    Shard &shard = *shards[static_cast<size_t>(s)];
    {
        // Submit under the shard mutex so a drain that has set
        // `draining` is guaranteed to see no later admissions.
        std::lock_guard<std::mutex> lock(shard.mtx);
        if (!shard.alive || shard.draining) {
            d.fault = ShardOutcome::Failed;
            return d;
        }
        d.fut = shard.service->submit(request);
    }
    shard.nDispatched.fetch_add(1);
    d.issued = true;
    if (stalled)
        d.readyAfter = d.startT +
            fault::armedDelayMs(fault::Point::ShardStall) / 1e3;
    return d;
}

namespace {

/** Router-side classification of a shard's response. */
ShardOutcome
classify(const RenderResponse &resp)
{
    switch (resp.status) {
    case RequestStatus::Ok: return ShardOutcome::Ok;
    case RequestStatus::Rejected: return ShardOutcome::Rejected;
    case RequestStatus::Shutdown: return ShardOutcome::Crashed;
    // UnknownScene from a *placed* replica is a placement anomaly,
    // not a client error: fail over to a replica that has the scene.
    case RequestStatus::UnknownScene: return ShardOutcome::Failed;
    // The replica evicted the scene and is reloading it: fail over to
    // a warm replica, breaker-neutral.
    case RequestStatus::ColdStart: return ShardOutcome::ColdStart;
    // Quarantined checkpoint on that replica: another replica's copy
    // (shared canonical model or its own file) may still serve it.
    case RequestStatus::SceneUnavailable: return ShardOutcome::Failed;
    // Client-terminal statuses pass through; the shard answered, so
    // they are health-neutral Ok outcomes for the breaker.
    case RequestStatus::BadRequest:
    case RequestStatus::DeadlineExceeded: return ShardOutcome::Ok;
    }
    return ShardOutcome::Failed;
}

bool
requestTerminal(const RenderResponse &resp)
{
    return resp.status == RequestStatus::Ok ||
           resp.status == RequestStatus::BadRequest ||
           resp.status == RequestStatus::DeadlineExceeded;
}

RenderResponse
statusResponse(RequestStatus status, double submit_t, int retry_ms)
{
    RenderResponse resp;
    resp.status = status;
    resp.retryAfterMs = retry_ms;
    resp.totalMs = (monotonicSeconds() - submit_t) * 1e3;
    return resp;
}

} // namespace

RenderResponse
ShardRouter::routeOne(const RenderRequest &request, double submit_t)
{
    // Router queue wait: client submit() to dispatcher pickup.
    if (request.trace) {
        obs::TraceSpan span;
        span.name = "router.queue_wait";
        span.beginT = submit_t;
        span.endT = monotonicSeconds();
        span.trackGroup = obsGroup;
        span.track = 0;
        request.trace->addSpan(std::move(span));
    }

    std::vector<int> order = placementSnapshot(request.sceneId);
    if (order.empty()) {
        if (!master.acquire(request.sceneId))
            return statusResponse(RequestStatus::UnknownScene,
                                  submit_t, 0);
        statNoReplica.fetch_add(1);
        return statusResponse(RequestStatus::Rejected, submit_t,
                              cfg.shard.retryAfterMs);
    }

    // Camera-keyed rotation of the replica preference order: the same
    // viewpoint lands on the same replica while replicas are healthy,
    // so the per-shard tile caches see coherent streams instead of
    // each camera spraying across all R caches. The key is hashed on
    // the requested tier's lattice (the same one the shard caches key
    // on), so with a coarse preview lattice every viewpoint in a cell
    // prefers the same replica -- a cell's cached tiles live in one
    // cache instead of being re-rendered in all R of them.
    const float route_lattice =
        cfg.shard.cameraLattice[static_cast<int>(request.quality)];
    std::rotate(order.begin(),
                order.begin() +
                    static_cast<long>(
                        request.camera.hashKey(route_lattice) %
                        order.size()),
                order.end());

    const double deadline_t = request.deadlineMs > 0.0
        ? submit_t + request.deadlineMs / 1e3
        : 0.0;
    uint32_t tried = 0;
    int attempts = 0;
    bool hedged = false;
    // Largest load-aware hint seen from a cold replica: if every
    // replica turns out cold, the client's Rejected carries a "come
    // back when a reload has plausibly finished" backoff.
    int cold_hint = 0;
    std::vector<Dispatch> active; // 1 primary + at most 1 hedge.
    active.reserve(2);

    auto expired = [&](double now) {
        return deadline_t > 0.0 && now >= deadline_t;
    };

    // One span per dispatch, closed when the router resolves it
    // (response, fault, timeout, or abandonment of a hedge loser).
    auto traceDispatch = [&](const Dispatch &d, const char *outcome) {
        if (!request.trace)
            return;
        obs::TraceSpan span;
        span.name = "router.dispatch";
        span.beginT = d.startT;
        span.endT = monotonicSeconds();
        span.trackGroup = obsGroup;
        span.track = 0;
        span.args = {{"shard", std::to_string(d.shard)},
                     {"attempt", std::to_string(attempts)},
                     {"outcome", outcome}};
        if (d.hedge)
            span.args.emplace_back("hedge", "1");
        request.trace->addSpan(std::move(span));
    };

    while (true) {
        if (stopping.load(std::memory_order_acquire))
            return statusResponse(RequestStatus::Shutdown, submit_t, 0);
        double now = monotonicSeconds();
        if (expired(now) && active.empty())
            return statusResponse(RequestStatus::DeadlineExceeded,
                                  submit_t, 0);

        if (active.empty()) {
            // (Re-)dispatch. Attempt k >= 2 backs off exponentially,
            // truncated to the remaining deadline.
            if (attempts >= cfg.maxAttempts)
                return statusResponse(
                    RequestStatus::Rejected, submit_t,
                    std::max(cfg.shard.retryAfterMs, cold_hint));
            if (attempts > 0 && cfg.retryBackoffMs > 0) {
                double backoff =
                    (cfg.retryBackoffMs << (attempts - 1)) / 1e3;
                if (deadline_t > 0.0)
                    backoff = std::min(backoff, deadline_t - now);
                if (backoff > 0.0)
                    std::this_thread::sleep_for(
                        std::chrono::duration<double>(backoff));
                if (expired(monotonicSeconds()))
                    return statusResponse(
                        RequestStatus::DeadlineExceeded, submit_t, 0);
            }
            int s = pickReplica(order, tried);
            if (s < 0) {
                // Placement may have shifted under us (a crash or
                // drain re-placed the scene); refresh the snapshot
                // once before giving up.
                order = placementSnapshot(request.sceneId);
                if (!order.empty())
                    std::rotate(
                        order.begin(),
                        order.begin() +
                            static_cast<long>(
                                request.camera.hashKey(
                                    route_lattice) %
                                order.size()),
                        order.end());
                s = pickReplica(order, tried);
            }
            if (s < 0) {
                statNoReplica.fetch_add(1);
                return statusResponse(
                    RequestStatus::Rejected, submit_t,
                    std::max(cfg.shard.retryAfterMs, cold_hint));
            }
            tried |= 1u << s;
            if (attempts > 0) {
                statRetries.fetch_add(1);
                statFailovers.fetch_add(1);
            }
            attempts++;
            Dispatch d = dispatchTo(s, request);
            if (!d.issued) {
                traceDispatch(d, shardOutcomeName(d.fault));
                recordOutcome(s, d.fault);
                continue;
            }
            active.push_back(std::move(d));
            continue;
        }

        // Poll the active dispatches (primary + possible hedge).
        for (size_t i = 0; i < active.size();) {
            Dispatch &d = active[i];
            bool ready = now >= d.readyAfter &&
                d.fut.wait_for(std::chrono::seconds(0)) ==
                    std::future_status::ready;
            if (ready) {
                RenderResponse resp = d.fut.get();
                ShardOutcome outcome = classify(resp);
                traceDispatch(d, shardOutcomeName(outcome));
                recordOutcome(d.shard, outcome);
                if (outcome == ShardOutcome::Crashed)
                    crashShard(d.shard, true);
                if (outcome == ShardOutcome::ColdStart) {
                    // The replica began (or joined) its reload when it
                    // answered; the failover below goes to a warm one.
                    statColdStartFailovers.fetch_add(1);
                    cold_hint = std::max(cold_hint, resp.retryAfterMs);
                }
                if (requestTerminal(resp)) {
                    if (request.trace) {
                        for (size_t j = 0; j < active.size(); j++)
                            if (j != i)
                                traceDispatch(active[j], "abandoned");
                        if (d.hedge)
                            request.trace->note("hedge_won", "1");
                        if (attempts > 1)
                            request.trace->note(
                                "failovers",
                                std::to_string(attempts - 1));
                    }
                    if (d.hedge)
                        statHedgesWon.fetch_add(1);
                    // Client-observed latency: the shard measured its
                    // own queue+render span, but the client also paid
                    // router queueing, backoff, failover, and the
                    // hedge delay.
                    resp.totalMs =
                        (monotonicSeconds() - submit_t) * 1e3;
                    // The losing dispatch (if any) is abandoned: its
                    // shard still renders it, the future is dropped.
                    return resp;
                }
                active.erase(active.begin() +
                             static_cast<long>(i));
                continue;
            }
            if (cfg.shardTimeoutMs > 0.0 &&
                now - d.startT >= cfg.shardTimeoutMs / 1e3) {
                traceDispatch(d, "timeout");
                recordOutcome(d.shard, ShardOutcome::Timeout);
                active.erase(active.begin() +
                             static_cast<long>(i));
                continue;
            }
            i++;
        }
        if (active.empty())
            continue; // Straight to the failover dispatch.

        // Hedge: one extra replica per request, launched when the
        // primary has produced nothing after hedgeDelayMs.
        if (cfg.hedgeRequests && !hedged && active.size() == 1 &&
            !active[0].hedge &&
            now - active[0].startT >= cfg.hedgeDelayMs / 1e3) {
            int s = pickReplica(order, tried);
            if (s >= 0) {
                tried |= 1u << s;
                hedged = true;
                Dispatch d = dispatchTo(s, request);
                if (d.issued) {
                    d.hedge = true;
                    statHedgesIssued.fetch_add(1);
                    active.push_back(std::move(d));
                } else {
                    recordOutcome(s, d.fault);
                }
            } else {
                hedged = true; // No spare replica; stop asking.
            }
        }

        std::this_thread::sleep_for(pollInterval);
    }
}

// ------------------------------------------------------- lifecycle

void
ShardRouter::crashShard(int s, bool count_crash)
{
    Shard &shard = *shards[static_cast<size_t>(s)];
    {
        std::lock_guard<std::mutex> lock(shard.mtx);
        if (!shard.alive)
            return;
        shard.alive = false;
    }
    if (count_crash)
        statCrashes.fetch_add(1);
    // Queued requests on the dead shard resolve Shutdown; routing
    // loops holding their futures classify that as Crashed and fail
    // over. The in-flight chunk renders to completion first.
    shard.service->stop();
    replaceScenesOf(s);
}

void
ShardRouter::killShard(int s)
{
    crashShard(s, true);
}

bool
ShardRouter::drainShard(int s)
{
    Shard &shard = *shards[static_cast<size_t>(s)];
    {
        std::lock_guard<std::mutex> lock(shard.mtx);
        if (!shard.alive || shard.draining)
            return false;
        shard.draining = true; // dispatchTo admits nothing from here on
    }
    statDrains.fetch_add(1);

    // Re-place first so requests routed during the drain already have
    // a full replica set to land on.
    replaceScenesOf(s);

    // Let every queued and in-flight tile complete -- a drain fails no
    // admitted request.
    while (shard.service->outstandingTileCount() > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    shard.service->stop();

    {
        std::lock_guard<std::mutex> lock(shard.mtx);
        shard.draining = false;
        shard.alive = false; // Fully drained.
    }
    return true;
}

bool
ShardRouter::shardAlive(int s) const
{
    Shard &shard = *shards[static_cast<size_t>(s)];
    std::lock_guard<std::mutex> lock(shard.mtx);
    return shard.alive;
}

const RenderService &
ShardRouter::shardService(int s) const
{
    return *shards[static_cast<size_t>(s)]->service;
}

SceneRegistry &
ShardRouter::shardRegistry(int s)
{
    return shards[static_cast<size_t>(s)]->registry;
}

BreakerState
ShardRouter::breakerState(int s) const
{
    Shard &shard = *shards[static_cast<size_t>(s)];
    std::lock_guard<std::mutex> lock(shard.mtx);
    return shard.breaker;
}

// ---------------------------------------------------------- client

std::future<RenderResponse>
ShardRouter::submit(const RenderRequest &request)
{
    statRouted.fetch_add(1);
    auto job = std::make_unique<Job>();
    job->request = request;
    // The router is the first tracing-aware layer for routed requests:
    // it begins the trace here and completes it in dispatcherLoop.
    // Shards it dispatches to see a non-null trace and only append.
    if (!job->request.trace) {
        job->request.trace = obs::beginTrace(request.sceneId);
        job->ownsTrace = job->request.trace != nullptr;
    }
    job->submitT = monotonicSeconds();
    std::future<RenderResponse> fut = job->promise.get_future();
    {
        std::lock_guard<std::mutex> lock(jobMtx);
        if (jobStopping) {
            RenderResponse resp;
            resp.status = RequestStatus::Shutdown;
            if (job->request.trace) {
                job->request.trace->note("status", "shutdown");
                if (job->ownsTrace)
                    obs::TraceRing::global().complete(
                        job->request.trace, 0.0);
            }
            job->promise.set_value(std::move(resp));
            return fut;
        }
        jobs.push_back(std::move(job));
    }
    jobCv.notify_one();
    return fut;
}

RenderResponse
ShardRouter::render(const RenderRequest &request)
{
    return submit(request).get();
}

void
ShardRouter::dispatcherLoop()
{
    while (true) {
        std::unique_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(jobMtx);
            jobCv.wait(lock, [this] {
                return jobStopping || !jobs.empty();
            });
            if (jobs.empty())
                return; // jobStopping and the queue is drained.
            job = std::move(jobs.front());
            jobs.pop_front();
        }
        RenderResponse resp = routeOne(job->request, job->submitT);
        histRouteMs->record(resp.totalMs);
        if (job->request.trace) {
            job->request.trace->note("status",
                                     requestStatusName(resp.status));
            if (job->ownsTrace)
                obs::TraceRing::global().complete(job->request.trace,
                                                  resp.totalMs);
        }
        job->promise.set_value(std::move(resp));
    }
}

// ----------------------------------------------------------- stats

FleetStats
ShardRouter::fleetStats() const
{
    FleetStats fs;
    fs.requestsRouted = statRouted.load();
    fs.failovers = statFailovers.load();
    fs.retries = statRetries.load();
    fs.hedgesIssued = statHedgesIssued.load();
    fs.hedgesWon = statHedgesWon.load();
    fs.shardsCrashed = statCrashes.load();
    fs.shardsDrained = statDrains.load();
    fs.noReplicaAvailable = statNoReplica.load();
    fs.coldStartFailovers = statColdStartFailovers.load();

    std::vector<size_t> sceneCounts(shards.size(), 0);
    {
        std::lock_guard<std::mutex> lock(placementMtx);
        for (const auto &kv : placements)
            for (int s : kv.second)
                sceneCounts[static_cast<size_t>(s)]++;
    }

    fs.shards.resize(shards.size());
    for (size_t s = 0; s < shards.size(); s++) {
        const Shard &shard = *shards[s];
        ShardStats &ss = fs.shards[s];
        {
            std::lock_guard<std::mutex> lock(shard.mtx);
            ss.alive = shard.alive;
            ss.draining = shard.draining;
            ss.breaker = shard.breaker;
        }
        ss.scenes = sceneCounts[s];
        ss.dispatched = shard.nDispatched.load();
        ss.served = shard.nServed.load();
        ss.failed = shard.nFailed.load();
        ss.rejected = shard.nRejected.load();
        ss.timeouts = shard.nTimeouts.load();
        ss.breakerOpens = shard.nBreakerOpens.load();
        ss.breakerHalfOpens = shard.nBreakerHalfOpens.load();
        ss.breakerCloses = shard.nBreakerCloses.load();
        ss.coldStarts = shard.nColdStarts.load();

        // Cache/prefetch passthrough: the per-tier lattice and the
        // speculative prefetch live inside each shard's service;
        // surface their counters as fleet-wide sums (stopped shards
        // stay queryable, so crashed/drained shards still report).
        const ServeStats svc = shard.service->stats();
        for (int t = 0; t < numQualityTiers; t++) {
            fs.cacheHitsPerTier[t] += svc.cacheHitsPerTier[t];
            fs.cacheMissesPerTier[t] += svc.cacheMissesPerTier[t];
        }
        fs.prefetchTilesEnqueued += svc.prefetchTilesEnqueued;
        fs.prefetchTilesRendered += svc.prefetchTilesRendered;
        fs.prefetchTilesCancelled += svc.prefetchTilesCancelled;
        fs.prefetchHits += svc.prefetchHits;
        fs.prefetchWasted += svc.prefetchWasted;
    }
    return fs;
}

} // namespace instant3d
