#include "serve/tile_cache.hh"

namespace instant3d {

bool
TileCache::lookup(const TileKey &key, std::vector<Vec3> &out)
{
    if (capacity == 0)
        return false;
    const int tier = static_cast<int>(key.quality);
    std::lock_guard<std::mutex> lock(mtx);
    auto it = index.find(key);
    if (it == index.end()) {
        misses++;
        tierMisses[tier]++;
        return false;
    }
    lru.splice(lru.begin(), lru, it->second);
    Entry &e = *it->second;
    out = e.pixels;
    hits++;
    tierHits[tier]++;
    if (e.prefetched && !e.everHit)
        prefetchHits++; // First demand hit on a speculative entry.
    e.everHit = true;
    return true;
}

bool
TileCache::contains(const TileKey &key) const
{
    if (capacity == 0)
        return false;
    std::lock_guard<std::mutex> lock(mtx);
    return index.find(key) != index.end();
}

void
TileCache::insert(const TileKey &key, std::vector<Vec3> pixels,
                  bool prefetched)
{
    if (capacity == 0)
        return;
    std::lock_guard<std::mutex> lock(mtx);
    auto it = index.find(key);
    if (it != index.end()) {
        // Deterministic rendering makes a re-render bit-identical;
        // just refresh recency (and keep the original entry's
        // prefetch accounting flags).
        lru.splice(lru.begin(), lru, it->second);
        return;
    }
    lru.push_front(Entry{key, std::move(pixels), prefetched, false});
    bytesHeld += entryBytes(lru.front());
    index[key] = lru.begin();
    insertions++;
    if (prefetched)
        prefetchInsertions++;
    evictOverflowLocked();
}

void
TileCache::noteDropLocked(const Entry &e)
{
    if (e.prefetched && !e.everHit)
        prefetchWasted++;
}

void
TileCache::evictOverflowLocked()
{
    // Evict while over either bound. An over-budget lone tile evicts
    // itself (holding one tile past the byte budget would defeat it).
    while (!lru.empty() &&
           (lru.size() > capacity ||
            (maxBytes > 0 && bytesHeld > maxBytes))) {
        noteDropLocked(lru.back());
        bytesHeld -= entryBytes(lru.back());
        index.erase(lru.back().key);
        lru.pop_back();
        evictions++;
    }
}

void
TileCache::invalidateScene(const std::string &scene_id)
{
    std::lock_guard<std::mutex> lock(mtx);
    for (auto it = lru.begin(); it != lru.end();) {
        if (it->key.sceneId == scene_id) {
            noteDropLocked(*it);
            bytesHeld -= entryBytes(*it);
            index.erase(it->key);
            it = lru.erase(it);
            invalidated++;
        } else {
            ++it;
        }
    }
}

void
TileCache::clear()
{
    std::lock_guard<std::mutex> lock(mtx);
    for (const Entry &e : lru)
        noteDropLocked(e);
    lru.clear();
    index.clear();
    bytesHeld = 0;
}

TileCache::Stats
TileCache::stats() const
{
    std::lock_guard<std::mutex> lock(mtx);
    Stats s;
    s.hits = hits;
    s.misses = misses;
    s.insertions = insertions;
    s.evictions = evictions;
    s.invalidated = invalidated;
    for (int t = 0; t < numQualityTiers; t++) {
        s.tierHits[t] = tierHits[t];
        s.tierMisses[t] = tierMisses[t];
    }
    s.prefetchInsertions = prefetchInsertions;
    s.prefetchHits = prefetchHits;
    s.prefetchWasted = prefetchWasted;
    s.entries = lru.size();
    s.capacity = capacity;
    s.bytesHeld = bytesHeld;
    s.maxBytes = maxBytes;
    return s;
}

} // namespace instant3d
