#include "serve/tile_cache.hh"

namespace instant3d {

bool
TileCache::lookup(const TileKey &key, std::vector<Vec3> &out)
{
    if (capacity == 0)
        return false;
    std::lock_guard<std::mutex> lock(mtx);
    auto it = index.find(key);
    if (it == index.end()) {
        misses++;
        return false;
    }
    lru.splice(lru.begin(), lru, it->second);
    out = it->second->second;
    hits++;
    return true;
}

void
TileCache::insert(const TileKey &key, std::vector<Vec3> pixels)
{
    if (capacity == 0)
        return;
    std::lock_guard<std::mutex> lock(mtx);
    auto it = index.find(key);
    if (it != index.end()) {
        // Deterministic rendering makes a re-render bit-identical;
        // just refresh recency.
        lru.splice(lru.begin(), lru, it->second);
        return;
    }
    lru.emplace_front(key, std::move(pixels));
    bytesHeld += entryBytes(lru.front());
    index[key] = lru.begin();
    insertions++;
    evictOverflowLocked();
}

void
TileCache::evictOverflowLocked()
{
    // Evict while over either bound. An over-budget lone tile evicts
    // itself (holding one tile past the byte budget would defeat it).
    while (!lru.empty() &&
           (lru.size() > capacity ||
            (maxBytes > 0 && bytesHeld > maxBytes))) {
        bytesHeld -= entryBytes(lru.back());
        index.erase(lru.back().first);
        lru.pop_back();
        evictions++;
    }
}

void
TileCache::invalidateScene(const std::string &scene_id)
{
    std::lock_guard<std::mutex> lock(mtx);
    for (auto it = lru.begin(); it != lru.end();) {
        if (it->first.sceneId == scene_id) {
            bytesHeld -= entryBytes(*it);
            index.erase(it->first);
            it = lru.erase(it);
            invalidated++;
        } else {
            ++it;
        }
    }
}

void
TileCache::clear()
{
    std::lock_guard<std::mutex> lock(mtx);
    lru.clear();
    index.clear();
    bytesHeld = 0;
}

TileCache::Stats
TileCache::stats() const
{
    std::lock_guard<std::mutex> lock(mtx);
    Stats s;
    s.hits = hits;
    s.misses = misses;
    s.insertions = insertions;
    s.evictions = evictions;
    s.invalidated = invalidated;
    s.entries = lru.size();
    s.capacity = capacity;
    s.bytesHeld = bytesHeld;
    s.maxBytes = maxBytes;
    return s;
}

} // namespace instant3d
