#include "serve/scene_registry.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/logging.hh"
#include "common/stats.hh"
#include "obs/telemetry.hh"

namespace instant3d {

namespace {

/** All registry timing rides the one process clock (common/stats.hh),
 *  so load latencies compare directly against serve/router spans. */
double
nowMs()
{
    return monotonicSeconds() * 1e3;
}

bool
structuralError(CheckpointError err)
{
    return err != CheckpointError::None && err != CheckpointError::Io;
}

} // namespace

ServedScene::ServedScene(std::string scene_id, uint64_t scene_generation,
                         const SceneSpec &scene_spec)
    : sceneId(std::move(scene_id)), gen(scene_generation),
      sceneSpec(scene_spec)
{
    fieldPtr = std::make_unique<NerfField>(sceneSpec.field,
                                           sceneSpec.seed);
    if (sceneSpec.useOccupancy)
        occPtr = std::make_unique<OccupancyGrid>(sceneSpec.occupancy);

    // Tier t halves samplesPerRay t times; tier Full keeps the
    // training-time renderer config and is the trainer-parity tier.
    renderers.reserve(numQualityTiers);
    for (int t = 0; t < numQualityTiers; t++) {
        RendererConfig rcfg = sceneSpec.renderer;
        rcfg.samplesPerRay = std::max(1, rcfg.samplesPerRay >> t);
        renderers.emplace_back(rcfg);
        renderers.back().setOccupancyGrid(occPtr.get());
    }
}

size_t
ServedScene::paramBytes()
{
    return fieldStorageBytes(*fieldPtr);
}

size_t
ServedScene::residentBytes()
{
    size_t bytes = fieldStorageBytes(*fieldPtr);
    if (occPtr)
        bytes += occPtr->numCells() * sizeof(float);
    return bytes;
}

SceneRegistry::SceneRegistry(const SceneRegistryConfig &registry_config)
    : cfg(registry_config)
{
    cfg.maxConcurrentLoads = std::max(1, cfg.maxConcurrentLoads);
}

SceneRegistry::~SceneRegistry()
{
    stop();
}

void
SceneRegistry::stop()
{
    std::vector<std::thread> join;
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
        // Abandon queued (not yet started) reloads so their entries
        // settle as cold instead of "loading forever".
        for (const std::string &id : loadQueue) {
            auto it = entries.find(id);
            if (it != entries.end())
                it->second.loading = false;
        }
        loadQueue.clear();
        join.swap(loaders);
        cv.notify_all();
    }
    for (std::thread &t : join)
        t.join();
}

CheckpointError
SceneRegistry::loadWithRetries(ServedScene &scene, const SceneSpec &spec,
                               const std::string &path)
{
    // Transient I/O errors (a loaded-down disk, an NFS hiccup) retry
    // with exponential backoff; structural errors (wrong shape, CRC
    // mismatch) are permanent and fail immediately. The backoff wait
    // is interruptible: stop() wakes it and the load aborts as Io
    // instead of hanging teardown for the rest of the schedule.
    CheckpointError err = CheckpointError::None;
    for (int attempt = 0;; attempt++) {
        {
            std::lock_guard<std::mutex> lock(mtx);
            if (stopping)
                return CheckpointError::Io;
        }
        err = loadCheckpoint(scene.field(), scene.occupancyForLoad(),
                             path);
        if (err != CheckpointError::Io || attempt >= spec.loadRetries)
            break;
        std::unique_lock<std::mutex> lock(mtx);
        cv.wait_for(lock,
                    std::chrono::milliseconds(
                        spec.loadRetryBackoffMs << attempt),
                    [&] { return stopping; });
        if (stopping)
            return CheckpointError::Io;
    }
    return err;
}

uint64_t
SceneRegistry::registerFromCheckpoint(const std::string &id,
                                      const SceneSpec &spec,
                                      const std::string &path)
{
    uint64_t gen;
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (stopping)
            return 0;
        gen = nextGen++;
    }
    auto scene = std::make_shared<ServedScene>(id, gen, spec);
    scene->setSourcePath(path);

    double t0 = nowMs();
    CheckpointError err = loadWithRetries(*scene, spec, path);
    if (err != CheckpointError::None) {
        warn("SceneRegistry: could not load checkpoint '" + path +
             "' for scene '" + id + "' (" +
             checkpointErrorName(err) + ")");
        return 0;
    }
    double ms = nowMs() - t0;
    obs::MetricsRegistry::global()
        .histogram("registry.load_ms")
        .record(ms);
    {
        std::lock_guard<std::mutex> lock(mtx);
        statLastLoadMs = ms;
        statEwmaLoadMs = statEwmaLoadMs <= 0.0
                             ? ms
                             : 0.7 * statEwmaLoadMs + 0.3 * ms;
    }
    return publish(id, std::move(scene));
}

uint64_t
SceneRegistry::registerFromTrainer(const std::string &id,
                                   Trainer &trainer)
{
    SceneSpec spec;
    spec.field = trainer.field().config();
    spec.renderer = trainer.renderer().config();
    const OccupancyGrid *tocc = trainer.occupancyGrid();
    if (tocc) {
        spec.useOccupancy = true;
        spec.occupancy = tocc->config();
    }

    uint64_t gen;
    {
        std::lock_guard<std::mutex> lock(mtx);
        gen = nextGen++;
    }
    auto scene = std::make_shared<ServedScene>(id, gen, spec);

    // Snapshot the settled parameter state (the sparse lazy optimizer
    // may owe catch-up updates until syncParams).
    trainer.syncParams();
    for (auto gid : trainer.field().paramGroups())
        scene->field().groupParams(gid) =
            trainer.field().groupParams(gid);
    if (tocc) {
        OccupancyGrid *occ = scene->occupancyForLoad();
        for (size_t c = 0; c < tocc->numCells(); c++)
            occ->setCellDensity(c, tocc->cellDensity(c));
    }
    return publish(id, std::move(scene));
}

uint64_t
SceneRegistry::publishShared(const std::string &id, ServedScenePtr scene)
{
    if (!scene)
        return 0;
    return publish(id, std::move(scene));
}

uint64_t
SceneRegistry::publish(const std::string &id, ServedScenePtr scene)
{
    uint64_t gen = scene->generation();
    // Evicted (and replaced) scenes are destroyed after the lock
    // drops: freeing a multi-megabyte model under the registry mutex
    // would stall every concurrent acquire.
    std::vector<ServedScenePtr> graveyard;
    {
        std::lock_guard<std::mutex> lock(mtx);
        // Externally-built generations (publishShared) must not
        // collide with ones this registry mints later.
        if (gen >= nextGen)
            nextGen = gen + 1;
        // Generations must only move forward: if a concurrent
        // registration of the same id already published a newer scene
        // (warm or cold stub) while this one was still loading, keep
        // the newer one and report supersession.
        auto it = entries.find(id);
        if (it != entries.end() && it->second.gen > gen)
            return 0;
        Entry &e = entries[id];
        if (e.scene) {
            bytesWarm -= e.bytes;
            graveyard.push_back(std::move(e.scene));
        }
        e.scene = std::move(scene);
        e.gen = gen;
        e.spec = e.scene->spec();
        e.path = e.scene->sourcePath();
        e.bytes = e.scene->residentBytes();
        e.quarantined = false;
        e.quarantineError = CheckpointError::None;
        bytesWarm += e.bytes;
        touchLocked(e);
        evictToFitLocked(id, graveyard);
        cv.notify_all();
    }
    return gen;
}

void
SceneRegistry::touchLocked(Entry &e)
{
    e.lastUsed = ++lruTick;
}

void
SceneRegistry::evictToFitLocked(const std::string &keep_id,
                                std::vector<ServedScenePtr> &graveyard)
{
    if (cfg.memoryBudgetBytes == 0)
        return;
    while (bytesWarm > cfg.memoryBudgetBytes) {
        // LRU among evictable warm scenes (checkpoint-backed, not the
        // one being published); idle scenes (no outstanding render
        // references) evict before referenced ones.
        auto pick = entries.end();
        bool pick_idle = false;
        for (auto it = entries.begin(); it != entries.end(); ++it) {
            Entry &e = it->second;
            if (!e.scene || e.path.empty() || it->first == keep_id)
                continue;
            bool idle = e.scene.use_count() == 1;
            bool better =
                pick == entries.end() || (idle && !pick_idle) ||
                (idle == pick_idle &&
                 e.lastUsed < pick->second.lastUsed);
            if (better) {
                pick = it;
                pick_idle = idle;
            }
        }
        if (pick == entries.end())
            break; // nothing evictable; serve over budget
        Entry &e = pick->second;
        statEvictions++;
        if (!pick_idle) {
            // An in-flight render still holds the scene: eviction
            // only drops the registry's reference -- the render's
            // shared_ptr keeps the model alive until it drains.
            statEvictionsWhileReferenced++;
        }
        bytesWarm -= e.bytes;
        e.bytes = 0;
        graveyard.push_back(std::move(e.scene));
        e.scene = nullptr; // cold stub: keeps path, spec, generation
    }
}

int
SceneRegistry::loadHintMsLocked(const std::string &id) const
{
    double per = statEwmaLoadMs > 0.0 ? statEwmaLoadMs : 10.0;
    // Scale by how many load "waves" precede this scene in the queue:
    // a scene 5 deep behind a 2-loader pool waits ~3 load times.
    double waves = 1.0;
    for (size_t i = 0; i < loadQueue.size(); i++) {
        if (loadQueue[i] == id) {
            waves += static_cast<double>(
                i / static_cast<size_t>(cfg.maxConcurrentLoads));
            break;
        }
    }
    return std::max(1, static_cast<int>(std::ceil(per * waves)));
}

void
SceneRegistry::ensureLoadersLocked()
{
    if (!loaders.empty() || stopping)
        return;
    loaders.reserve(static_cast<size_t>(cfg.maxConcurrentLoads));
    for (int i = 0; i < cfg.maxConcurrentLoads; i++)
        loaders.emplace_back([this] { loaderLoop(); });
}

void
SceneRegistry::loaderLoop()
{
    for (;;) {
        std::string id;
        {
            std::unique_lock<std::mutex> lock(mtx);
            cv.wait(lock,
                    [&] { return stopping || !loadQueue.empty(); });
            if (stopping)
                return;
            id = std::move(loadQueue.front());
            loadQueue.pop_front();
        }
        performLoad(id);
    }
}

void
SceneRegistry::performLoad(const std::string &id)
{
    SceneSpec spec;
    std::string path;
    uint64_t gen = 0;
    {
        std::lock_guard<std::mutex> lock(mtx);
        auto it = entries.find(id);
        if (it == entries.end())
            return; // unregistered while queued
        Entry &e = it->second;
        if (e.scene || e.quarantined || !e.loading) {
            // Superseded while queued (a direct publish warmed it, or
            // it was quarantined); nothing to load.
            e.loading = false;
            cv.notify_all();
            return;
        }
        spec = e.spec;
        path = e.path;
        gen = e.gen;
    }

    double t0 = nowMs();
    auto scene = std::make_shared<ServedScene>(id, gen, spec);
    scene->setSourcePath(path);
    CheckpointError err = loadWithRetries(*scene, spec, path);
    double ms = nowMs() - t0;
    if (err == CheckpointError::None)
        obs::MetricsRegistry::global()
            .histogram("registry.load_ms")
            .record(ms);

    std::vector<ServedScenePtr> graveyard;
    {
        std::lock_guard<std::mutex> lock(mtx);
        auto it = entries.find(id);
        if (it == entries.end()) {
            cv.notify_all();
            return; // unregistered mid-load; drop the model
        }
        Entry &e = it->second;
        e.loading = false;
        if (err == CheckpointError::None) {
            if (e.scene || e.gen > gen) {
                // A newer generation published while we loaded; the
                // incumbent wins and this load is discarded.
            } else {
                e.scene = std::move(scene);
                e.bytes = e.scene->residentBytes();
                bytesWarm += e.bytes;
                touchLocked(e);
                statReloads++;
                statLastLoadMs = ms;
                statEwmaLoadMs = statEwmaLoadMs <= 0.0
                                     ? ms
                                     : 0.7 * statEwmaLoadMs + 0.3 * ms;
                evictToFitLocked(id, graveyard);
            }
        } else if (structuralError(err)) {
            // A corrupt checkpoint can only produce this same error
            // again: quarantine the stub so concurrent demand cannot
            // fuel a reload storm. clearQuarantine() re-arms it.
            e.quarantined = true;
            e.quarantineError = err;
            warn("SceneRegistry: quarantined scene '" + id +
                 "' (checkpoint '" + path + "': " +
                 checkpointErrorName(err) + ")");
        } else {
            statLoadFailures++; // transient; stays cold for a retry
        }
        cv.notify_all();
    }
}

AcquireOutcome
SceneRegistry::acquireOrLoad(const std::string &id, double max_wait_ms)
{
    AcquireOutcome out;
    std::unique_lock<std::mutex> lock(mtx);
    auto it = entries.find(id);
    if (it == entries.end())
        return out; // Absent
    {
        Entry &e = it->second;
        if (e.scene) {
            touchLocked(e);
            out.scene = e.scene;
            out.state = SceneState::Warm;
            return out;
        }
        if (e.quarantined) {
            statQuarantineHits++;
            out.state = SceneState::Quarantined;
            out.error = e.quarantineError;
            return out;
        }
        if (!e.loading && !stopping && !e.path.empty()) {
            // Single-flight: this call owns the (one) reload; every
            // concurrent acquireOrLoad for the id joins it below.
            e.loading = true;
            loadQueue.push_back(id);
            statColdLoadsStarted++;
            out.startedLoad = true;
            ensureLoadersLocked();
            cv.notify_all();
        } else if (e.loading) {
            statSingleFlightJoins++;
        }
        out.state = e.loading ? SceneState::Loading : SceneState::Cold;
        out.retryAfterMs = loadHintMsLocked(id);
    }

    if (max_wait_ms <= 0.0 || out.state != SceneState::Loading)
        return out;

    // Bounded wait for the reload to settle (the caller's deadline is
    // the bound). Re-find the entry after every wake: the map may
    // rehash, and the id may be unregistered while we sleep.
    cv.wait_for(
        lock, std::chrono::duration<double, std::milli>(max_wait_ms),
        [&] {
            auto it2 = entries.find(id);
            return stopping || it2 == entries.end() ||
                   it2->second.scene != nullptr ||
                   !it2->second.loading || it2->second.quarantined;
        });
    auto it2 = entries.find(id);
    if (it2 == entries.end()) {
        out.scene = nullptr;
        out.state = SceneState::Absent;
        return out;
    }
    Entry &e = it2->second;
    if (e.scene) {
        touchLocked(e);
        out.scene = e.scene;
        out.state = SceneState::Warm;
    } else if (e.quarantined) {
        out.state = SceneState::Quarantined;
        out.error = e.quarantineError;
    } else {
        out.state = e.loading ? SceneState::Loading : SceneState::Cold;
        out.retryAfterMs = loadHintMsLocked(id);
    }
    return out;
}

ServedScenePtr
SceneRegistry::awaitWarm(const std::string &id, double max_wait_ms)
{
    std::unique_lock<std::mutex> lock(mtx);
    auto settled = [&] {
        auto it = entries.find(id);
        return stopping || it == entries.end() ||
               it->second.scene != nullptr || !it->second.loading ||
               it->second.quarantined;
    };
    if (max_wait_ms <= 0.0) {
        cv.wait(lock, settled);
    } else {
        cv.wait_for(
            lock,
            std::chrono::duration<double, std::milli>(max_wait_ms),
            settled);
    }
    auto it = entries.find(id);
    if (it == entries.end() || !it->second.scene)
        return nullptr;
    touchLocked(it->second);
    return it->second.scene;
}

bool
SceneRegistry::evictScene(const std::string &id)
{
    std::vector<ServedScenePtr> graveyard;
    {
        std::lock_guard<std::mutex> lock(mtx);
        auto it = entries.find(id);
        if (it == entries.end() || !it->second.scene ||
            it->second.path.empty())
            return false;
        Entry &e = it->second;
        statEvictions++;
        if (e.scene.use_count() > 1)
            statEvictionsWhileReferenced++;
        bytesWarm -= e.bytes;
        e.bytes = 0;
        graveyard.push_back(std::move(e.scene));
        e.scene = nullptr;
        cv.notify_all();
    }
    return true;
}

bool
SceneRegistry::clearQuarantine(const std::string &id)
{
    std::lock_guard<std::mutex> lock(mtx);
    auto it = entries.find(id);
    if (it == entries.end() || !it->second.quarantined)
        return false;
    it->second.quarantined = false;
    it->second.quarantineError = CheckpointError::None;
    cv.notify_all();
    return true;
}

ServedScenePtr
SceneRegistry::acquire(const std::string &id) const
{
    std::lock_guard<std::mutex> lock(mtx);
    auto it = entries.find(id);
    return it == entries.end() ? nullptr : it->second.scene;
}

bool
SceneRegistry::unregister(const std::string &id)
{
    ServedScenePtr doomed;
    {
        std::lock_guard<std::mutex> lock(mtx);
        auto it = entries.find(id);
        if (it == entries.end())
            return false;
        if (it->second.scene) {
            bytesWarm -= it->second.bytes;
            doomed = std::move(it->second.scene);
        }
        entries.erase(it);
        for (auto qit = loadQueue.begin(); qit != loadQueue.end();) {
            if (*qit == id)
                qit = loadQueue.erase(qit);
            else
                ++qit;
        }
        cv.notify_all();
    }
    return true;
}

uint64_t
SceneRegistry::generation(const std::string &id) const
{
    std::lock_guard<std::mutex> lock(mtx);
    auto it = entries.find(id);
    return it == entries.end() ? 0 : it->second.gen;
}

SceneState
SceneRegistry::state(const std::string &id) const
{
    std::lock_guard<std::mutex> lock(mtx);
    auto it = entries.find(id);
    if (it == entries.end())
        return SceneState::Absent;
    const Entry &e = it->second;
    if (e.scene)
        return SceneState::Warm;
    if (e.quarantined)
        return SceneState::Quarantined;
    return e.loading ? SceneState::Loading : SceneState::Cold;
}

std::vector<std::string>
SceneRegistry::sceneIds() const
{
    std::lock_guard<std::mutex> lock(mtx);
    std::vector<std::string> ids;
    ids.reserve(entries.size());
    for (const auto &kv : entries)
        ids.push_back(kv.first);
    return ids;
}

size_t
SceneRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return entries.size();
}

SceneRegistryStats
SceneRegistry::stats() const
{
    std::lock_guard<std::mutex> lock(mtx);
    SceneRegistryStats s;
    s.scenes = entries.size();
    for (const auto &kv : entries) {
        const Entry &e = kv.second;
        if (e.scene)
            s.warm++;
        else if (e.quarantined)
            s.quarantined++;
        else if (e.loading)
            s.loading++;
        else
            s.cold++;
    }
    s.bytesWarm = bytesWarm;
    s.budgetBytes = cfg.memoryBudgetBytes;
    s.evictions = statEvictions;
    s.evictionsWhileReferenced = statEvictionsWhileReferenced;
    s.coldLoadsStarted = statColdLoadsStarted;
    s.reloads = statReloads;
    s.singleFlightJoins = statSingleFlightJoins;
    s.loadFailures = statLoadFailures;
    s.quarantineHits = statQuarantineHits;
    s.lastLoadMs = statLastLoadMs;
    s.ewmaLoadMs = statEwmaLoadMs;
    return s;
}

} // namespace instant3d
