#include "serve/scene_registry.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/logging.hh"
#include "nerf/serialize.hh"

namespace instant3d {

ServedScene::ServedScene(std::string scene_id, uint64_t scene_generation,
                         const SceneSpec &scene_spec)
    : sceneId(std::move(scene_id)), gen(scene_generation),
      sceneSpec(scene_spec)
{
    fieldPtr = std::make_unique<NerfField>(sceneSpec.field,
                                           sceneSpec.seed);
    if (sceneSpec.useOccupancy)
        occPtr = std::make_unique<OccupancyGrid>(sceneSpec.occupancy);

    // Tier t halves samplesPerRay t times; tier Full keeps the
    // training-time renderer config and is the trainer-parity tier.
    renderers.reserve(numQualityTiers);
    for (int t = 0; t < numQualityTiers; t++) {
        RendererConfig rcfg = sceneSpec.renderer;
        rcfg.samplesPerRay = std::max(1, rcfg.samplesPerRay >> t);
        renderers.emplace_back(rcfg);
        renderers.back().setOccupancyGrid(occPtr.get());
    }
}

size_t
ServedScene::paramBytes()
{
    return fieldStorageBytes(*fieldPtr);
}

uint64_t
SceneRegistry::registerFromCheckpoint(const std::string &id,
                                      const SceneSpec &spec,
                                      const std::string &path)
{
    uint64_t gen;
    {
        std::lock_guard<std::mutex> lock(mtx);
        gen = nextGen++;
    }
    auto scene = std::make_shared<ServedScene>(id, gen, spec);

    // Transient I/O errors (a loaded-down disk, an NFS hiccup) retry
    // with exponential backoff; structural errors (wrong shape, CRC
    // mismatch) are permanent and fail immediately.
    CheckpointError err = CheckpointError::None;
    for (int attempt = 0;; attempt++) {
        err = loadCheckpoint(scene->field(), scene->occupancyForLoad(),
                             path);
        if (err != CheckpointError::Io || attempt >= spec.loadRetries)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(
            spec.loadRetryBackoffMs << attempt));
    }
    if (err != CheckpointError::None) {
        warn("SceneRegistry: could not load checkpoint '" + path +
             "' for scene '" + id + "' (" +
             checkpointErrorName(err) + ")");
        return 0;
    }
    return publish(id, std::move(scene));
}

uint64_t
SceneRegistry::registerFromTrainer(const std::string &id,
                                   Trainer &trainer)
{
    SceneSpec spec;
    spec.field = trainer.field().config();
    spec.renderer = trainer.renderer().config();
    const OccupancyGrid *tocc = trainer.occupancyGrid();
    if (tocc) {
        spec.useOccupancy = true;
        spec.occupancy = tocc->config();
    }

    uint64_t gen;
    {
        std::lock_guard<std::mutex> lock(mtx);
        gen = nextGen++;
    }
    auto scene = std::make_shared<ServedScene>(id, gen, spec);

    // Snapshot the settled parameter state (the sparse lazy optimizer
    // may owe catch-up updates until syncParams).
    trainer.syncParams();
    for (auto gid : trainer.field().paramGroups())
        scene->field().groupParams(gid) =
            trainer.field().groupParams(gid);
    if (tocc) {
        OccupancyGrid *occ = scene->occupancyForLoad();
        for (size_t c = 0; c < tocc->numCells(); c++)
            occ->setCellDensity(c, tocc->cellDensity(c));
    }
    return publish(id, std::move(scene));
}

uint64_t
SceneRegistry::publishShared(const std::string &id, ServedScenePtr scene)
{
    if (!scene)
        return 0;
    return publish(id, std::move(scene));
}

uint64_t
SceneRegistry::publish(const std::string &id, ServedScenePtr scene)
{
    uint64_t gen = scene->generation();
    std::lock_guard<std::mutex> lock(mtx);
    // Externally-built generations (publishShared) must not collide
    // with ones this registry mints later.
    if (gen >= nextGen)
        nextGen = gen + 1;
    // Generations must only move forward: if a concurrent registration
    // of the same id already published a newer scene while this one
    // was still loading, keep the newer one and report supersession.
    auto it = scenes.find(id);
    if (it != scenes.end() && it->second->generation() > gen)
        return 0;
    scenes[id] = std::move(scene); // old generation lives on via readers
    return gen;
}

ServedScenePtr
SceneRegistry::acquire(const std::string &id) const
{
    std::lock_guard<std::mutex> lock(mtx);
    auto it = scenes.find(id);
    return it == scenes.end() ? nullptr : it->second;
}

bool
SceneRegistry::unregister(const std::string &id)
{
    std::lock_guard<std::mutex> lock(mtx);
    return scenes.erase(id) > 0;
}

uint64_t
SceneRegistry::generation(const std::string &id) const
{
    std::lock_guard<std::mutex> lock(mtx);
    auto it = scenes.find(id);
    return it == scenes.end() ? 0 : it->second->generation();
}

std::vector<std::string>
SceneRegistry::sceneIds() const
{
    std::lock_guard<std::mutex> lock(mtx);
    std::vector<std::string> ids;
    ids.reserve(scenes.size());
    for (const auto &kv : scenes)
        ids.push_back(kv.first);
    return ids;
}

size_t
SceneRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return scenes.size();
}

} // namespace instant3d
