/**
 * @file
 * LRU cache of rendered tiles, keyed by
 * (scene id, scene generation, quantized camera, tile rect, quality).
 *
 * Because serving is deterministic, a cached tile is bit-identical to
 * a fresh render of the same key -- a hit changes latency, never
 * pixels. The camera in the key is quantized on the *serving tier's*
 * lattice (Full: 1/4096; preview tiers may be coarser), so nearby
 * viewpoints of a moving viewer collapse onto one preview key while
 * Full keys stay exact. The scene *generation* in the key makes every entry of a
 * re-registered scene unreachable immediately (the LRU then ages the
 * dead entries out); invalidateScene() additionally reclaims their
 * space eagerly.
 */

#ifndef INSTANT3D_SERVE_TILE_CACHE_HH
#define INSTANT3D_SERVE_TILE_CACHE_HH

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/vec3.hh"
#include "serve/serve_types.hh"

namespace instant3d {

/** Identity of one rendered tile. */
struct TileKey
{
    std::string sceneId;
    uint64_t generation = 0;
    uint64_t cameraKey = 0; //!< CameraSpec::hashKey() (bucket index).
    CameraSpec camera;      //!< The quantized spec itself: equality
                            //!< compares the real camera, so a 64-bit
                            //!< hash collision can never serve another
                            //!< viewpoint's pixels.
    int x = 0, y = 0, w = 0, h = 0;
    QualityTier quality = QualityTier::Full;

    bool
    operator==(const TileKey &o) const
    {
        auto veq = [](const Vec3 &a, const Vec3 &b) {
            return a.x == b.x && a.y == b.y && a.z == b.z;
        };
        return generation == o.generation && cameraKey == o.cameraKey &&
               x == o.x && y == o.y && w == o.w && h == o.h &&
               quality == o.quality &&
               veq(camera.eye, o.camera.eye) &&
               veq(camera.target, o.camera.target) &&
               veq(camera.up, o.camera.up) &&
               camera.vfovDeg == o.camera.vfovDeg &&
               camera.width == o.camera.width &&
               camera.height == o.camera.height &&
               sceneId == o.sceneId;
    }
};

struct TileKeyHash
{
    size_t
    operator()(const TileKey &k) const
    {
        uint64_t h = std::hash<std::string>{}(k.sceneId);
        auto mix = [&h](uint64_t v) {
            h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
        };
        mix(k.generation);
        mix(k.cameraKey);
        mix(static_cast<uint64_t>(k.x) << 32 |
            static_cast<uint32_t>(k.y));
        mix(static_cast<uint64_t>(k.w) << 32 |
            static_cast<uint32_t>(k.h));
        mix(static_cast<uint64_t>(k.quality));
        return static_cast<size_t>(h);
    }
};

/**
 * Thread-safe LRU over rendered tile pixel blocks. Capacity 0 disables
 * the cache entirely (every lookup misses, inserts are dropped).
 *
 * Two bounds evict together: `max_bytes` caps the held pixel payload
 * (tiles vary ~64x in size across roi/tier combinations, so a count
 * cap alone cannot bound memory) and `capacity_tiles` stays as a
 * secondary entry-count cap. max_bytes == 0 means "no byte bound". A
 * single tile larger than max_bytes is not retained at all.
 */
class TileCache
{
  public:
    explicit TileCache(size_t capacity_tiles, size_t max_bytes = 0)
        : capacity(capacity_tiles), maxBytes(max_bytes) {}

    /**
     * Copy the cached pixels for `key` into `out` (resized to w*h,
     * row-major) and mark the entry most-recently used. Returns false
     * on miss. Hit/miss counters are bucketed by `key.quality` as well
     * as aggregated; a first hit on a speculatively prefetched entry
     * counts it as a prefetch hit.
     */
    bool lookup(const TileKey &key, std::vector<Vec3> &out);

    /**
     * Insert (or refresh) a rendered tile, evicting LRU overflow.
     * `prefetched` marks a speculative insert for hit/waste
     * accounting: an entry inserted on the prefetch path that is later
     * dropped (evicted or invalidated) without ever serving a lookup
     * counts as wasted. Refreshing an existing entry keeps its flags.
     */
    void insert(const TileKey &key, std::vector<Vec3> pixels,
                bool prefetched = false);

    /**
     * Key-presence probe that neither touches LRU recency nor counts
     * toward hit/miss stats -- used by the prefetch scheduler to
     * cancel predicted tiles that demand traffic already rendered.
     */
    bool contains(const TileKey &key) const;

    /** Eagerly drop every entry of a scene (any generation). */
    void invalidateScene(const std::string &scene_id);

    void clear();

    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t insertions = 0;
        uint64_t evictions = 0;
        uint64_t invalidated = 0;
        /** Hits/misses bucketed by the looked-up key's quality tier
         *  (hits == sum of tierHits, likewise misses) -- the coarser
         *  preview lattices are measured per tier, not guessed. */
        uint64_t tierHits[numQualityTiers] = {0, 0, 0};
        uint64_t tierMisses[numQualityTiers] = {0, 0, 0};
        /** Entries inserted by the speculative prefetch path. */
        uint64_t prefetchInsertions = 0;
        /** Prefetched entries that served at least one lookup. */
        uint64_t prefetchHits = 0;
        /** Prefetched entries dropped (evicted/invalidated/cleared)
         *  without ever serving a lookup. */
        uint64_t prefetchWasted = 0;
        size_t entries = 0;
        size_t capacity = 0;
        size_t bytesHeld = 0; //!< Pixel payload currently resident.
        size_t maxBytes = 0;  //!< Byte budget (0 = unbounded).
    };

    Stats stats() const;

  private:
    struct Entry
    {
        TileKey key;
        std::vector<Vec3> pixels;
        bool prefetched = false; //!< Inserted by the prefetch path.
        bool everHit = false;    //!< Served at least one lookup.
    };

    static size_t entryBytes(const Entry &e)
    { return e.pixels.size() * sizeof(Vec3); }

    void evictOverflowLocked();
    void noteDropLocked(const Entry &e);

    size_t capacity;
    size_t maxBytes;
    size_t bytesHeld = 0;
    mutable std::mutex mtx;
    std::list<Entry> lru; //!< Front = most recently used.
    std::unordered_map<TileKey, std::list<Entry>::iterator, TileKeyHash>
        index;
    uint64_t hits = 0, misses = 0, insertions = 0, evictions = 0,
             invalidated = 0;
    uint64_t tierHits[numQualityTiers] = {0, 0, 0};
    uint64_t tierMisses[numQualityTiers] = {0, 0, 0};
    uint64_t prefetchInsertions = 0, prefetchHits = 0,
             prefetchWasted = 0;
};

} // namespace instant3d

#endif // INSTANT3D_SERVE_TILE_CACHE_HH
